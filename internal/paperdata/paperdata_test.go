package paperdata

import "testing"

// TestTablesComplete guards against a transcription slip: every table
// must carry a value for every benchmark size.
func TestTablesComplete(t *testing.T) {
	check := func(name string, m map[int]float64) {
		t.Helper()
		for _, size := range Sizes {
			v, ok := m[size]
			if !ok || v <= 0 {
				t.Errorf("%s missing size %d", name, size)
			}
		}
	}
	check("Table1.Ethernet", Table1.Ethernet)
	check("Table1.ATM", Table1.ATM)
	for row, m := range Table2 {
		check("Table2."+row, m)
	}
	for row, m := range Table3 {
		check("Table3."+row, m)
	}
	check("Table4.NoPrediction", Table4.NoPrediction)
	check("Table4.Prediction", Table4.Prediction)
	for row, m := range Table5 {
		check("Table5."+row, m)
	}
	check("Table6.Standard", Table6.Standard)
	check("Table6.Combined", Table6.Combined)
	check("Table7.Checksum", Table7.Checksum)
	check("Table7.NoChecksum", Table7.NoChecksum)
}

// TestInternalConsistency cross-checks relations the paper's own numbers
// satisfy, so a typo in one cell is caught by its neighbours.
func TestInternalConsistency(t *testing.T) {
	// Table 5: total = checksum + bcopy.
	for _, size := range Sizes {
		sum := Table5["ULTRIXChecksum"][size] + Table5["ULTRIXBcopy"][size]
		if tot := Table5["ULTRIXTotal"][size]; tot != sum {
			t.Errorf("Table5 total at %d: %v != %v+%v", size, tot,
				Table5["ULTRIXChecksum"][size], Table5["ULTRIXBcopy"][size])
		}
	}
	// Tables 4/6/7 share the baseline ATM column with Table 1.
	for _, size := range Sizes {
		if Table4.Prediction[size] != Table1.ATM[size] {
			t.Errorf("Table4 baseline at %d differs from Table1", size)
		}
		if Table6.Standard[size] != Table1.ATM[size] {
			t.Errorf("Table6 baseline at %d differs from Table1", size)
		}
		if Table7.Checksum[size] != Table1.ATM[size] {
			t.Errorf("Table7 baseline at %d differs from Table1", size)
		}
	}
	// ATM must beat Ethernet everywhere in the published data too.
	for _, size := range Sizes {
		if Table1.ATM[size] >= Table1.Ethernet[size] {
			t.Errorf("published ATM not faster at %d", size)
		}
	}
}
