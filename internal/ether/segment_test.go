package ether

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
)

// buildSegment assembles n stations on one shared segment with IP
// bindings, each with a protocol-99 sink.
func buildSegment(t *testing.T, env *sim.Env, n int) (*Segment, []*kern.Kernel, []*ip.Stack, []*Adapter, []*sink) {
	t.Helper()
	model := cost.DECstation5000()
	seg := NewSegment()
	kerns := make([]*kern.Kernel, n)
	ips := make([]*ip.Stack, n)
	adapters := make([]*Adapter, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		kerns[i] = kern.New(env, model, fmt.Sprintf("h%d", i))
		ips[i] = ip.NewStack(kerns[i], uint32(i+1))
		adapters[i] = NewAdapter(kerns[i], [6]byte{2, 0, 0, 0, 0, byte(i + 1)})
		seg.Attach(adapters[i])
		seg.BindIP(uint32(i+1), adapters[i])
		NewDriver(kerns[i], adapters[i], ips[i])
		sinks[i] = &sink{}
		ips[i].Register(99, sinks[i])
	}
	return seg, kerns, ips, adapters, sinks
}

func TestSegmentUnicastOnlyAddressedStation(t *testing.T) {
	env := sim.NewEnv()
	_, kerns, ips, adapters, sinks := buildSegment(t, env, 3)
	payload := make([]byte, 600)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := kerns[0].Pool.AllocCluster()
		m.Append(payload)
		ips[0].Output(p, 3, 99, m) // host 0 -> host 2
	}))
	env.Run()
	if len(sinks[2].got) != 1 || !bytes.Equal(sinks[2].got[0], payload) {
		t.Fatal("addressed station did not receive the frame intact")
	}
	if len(sinks[1].got) != 0 || adapters[1].FramesRecv != 0 {
		t.Fatal("unaddressed station received a unicast frame")
	}
}

func TestSegmentBroadcastReachesAllStations(t *testing.T) {
	env := sim.NewEnv()
	_, _, _, adapters, _ := buildSegment(t, env, 4)
	f := Encapsulate(Broadcast, adapters[0].Addr, EtherTypeIPv4, make([]byte, 100))
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { adapters[0].Transmit(f) }))
	env.Run()
	for i, a := range adapters[1:] {
		if a.FramesRecv != 1 {
			t.Fatalf("station %d received %d broadcast frames, want 1", i+1, a.FramesRecv)
		}
	}
	if adapters[0].FramesRecv != 0 {
		t.Fatal("sender received its own broadcast")
	}
}

func TestSegmentUnknownUnicastDropped(t *testing.T) {
	env := sim.NewEnv()
	seg, _, _, adapters, _ := buildSegment(t, env, 2)
	ghost := [6]byte{2, 0, 0, 0, 0, 0x7f}
	f := Encapsulate(ghost, adapters[0].Addr, EtherTypeIPv4, make([]byte, 80))
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { adapters[0].Transmit(f) }))
	env.Run()
	if adapters[1].FramesRecv != 0 {
		t.Fatal("frame for an unknown MAC was delivered")
	}
	if seg.UnknownUnicasts != 1 {
		t.Fatalf("UnknownUnicasts = %d, want 1", seg.UnknownUnicasts)
	}
}

func TestSegmentUnboundIPDroppedNotFlooded(t *testing.T) {
	// With ARP bindings installed, a datagram to an IP that resolves to
	// no station is a configuration error: dropped and counted at the
	// driver, never flooded into the other hosts' stacks.
	env := sim.NewEnv()
	_, kerns, ips, adapters, sinks := buildSegment(t, env, 3)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := kerns[0].Pool.Alloc()
		m.Append(make([]byte, 40))
		ips[0].Output(p, 0x7f, 99, m) // nobody answers for this address
	}))
	env.Run()
	for i, s := range sinks {
		if len(s.got) != 0 {
			t.Fatalf("host %d received a datagram for an unbound IP", i)
		}
	}
	if adapters[0].FramesSent != 0 {
		t.Fatal("unroutable datagram was transmitted")
	}
}

func TestSegmentAdapterFiltersMisdelivery(t *testing.T) {
	// The adapter's own address filter: a frame for someone else pushed
	// directly into a station is counted and dropped.
	env := sim.NewEnv()
	_, _, _, adapters, _ := buildSegment(t, env, 2)
	f := Encapsulate(adapters[0].Addr, adapters[0].Addr, EtherTypeIPv4, make([]byte, 80))
	adapters[1].receive(f)
	if adapters[1].Filtered != 1 || adapters[1].FramesRecv != 0 {
		t.Fatalf("filter missed: Filtered=%d FramesRecv=%d",
			adapters[1].Filtered, adapters[1].FramesRecv)
	}
}

func TestSegmentDuplicateMACPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate station address accepted")
		}
	}()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	k := kern.New(env, model, "k")
	seg := NewSegment()
	seg.Attach(NewAdapter(k, addrA))
	seg.Attach(NewAdapter(k, addrA))
}

func TestSegmentThreeHostDeterminism(t *testing.T) {
	// Three stations exchanging random payloads on the shared segment
	// must produce identical payloads and an identical final clock for a
	// fixed seed. CI runs this under the race detector.
	run := func() (sim.Time, [][]byte) {
		env := sim.NewEnv()
		env.Seed(13)
		_, kerns, ips, _, sinks := buildSegment(t, env, 3)
		for i := 0; i < 3; i++ {
			i := i
			env.Spawn(fmt.Sprintf("tx%d", i), sim.LoopN(4, func(p *sim.Proc, k int) {
				payload := make([]byte, 100+env.RNG().Intn(1200))
				env.RNG().Fill(payload)
				m := kerns[i].Pool.AllocCluster()
				m.Append(payload)
				ips[i].Output(p, uint32((i+1)%3+1), 99, m)
			}))
		}
		env.Run()
		var got [][]byte
		for _, s := range sinks {
			got = append(got, s.got...)
		}
		return env.Now(), got
	}
	end1, got1 := run()
	end2, got2 := run()
	if end1 != end2 {
		t.Fatalf("final clocks differ: %v vs %v", end1, end2)
	}
	if len(got1) != len(got2) || len(got1) != 3*4 {
		t.Fatalf("delivery counts differ or short: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if !bytes.Equal(got1[i], got2[i]) {
			t.Fatalf("delivery %d differs between runs", i)
		}
	}
}
