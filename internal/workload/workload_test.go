package workload

import (
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
)

func TestFanInATMSwitch(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 11}, 5)
	if l.Switch == nil {
		t.Fatal("5-host ATM topology did not build a switch")
	}
	res, err := FanIn{Size: 200, Requests: 10, Warmup: 1}.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*10 {
		t.Fatalf("measured %d requests, want 40", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d corrupt exchanges", res.Errors)
	}
	s := res.Sample()
	if s.Min() <= 0 {
		t.Fatalf("non-positive latency: min %.1f", s.Min())
	}
	q := s.Quantiles()
	t.Logf("fan-in 4 clients: mean %.0f p50 %.0f p95 %.0f p99 %.0f µs",
		s.Mean(), q.P50, q.P95, q.P99)
	if q.P50 > q.P95 || q.P95 > q.P99 {
		t.Fatalf("percentiles not monotone: %v", q)
	}
}

func TestFanInEtherSegment(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkEther, Seed: 4}, 4)
	if l.Segment == nil || l.Segment.NumStations() != 4 {
		t.Fatal("4-host Ethernet topology did not share one segment")
	}
	res, err := FanIn{Size: 100, Requests: 5, Warmup: 1}.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3*5 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
}

func TestFanInDeterministic(t *testing.T) {
	run := func() []sim.Time {
		l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 21}, 9)
		res, err := FanIn{Size: 200, Requests: 5, Warmup: 1}.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latencies
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("latency counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFanInFreshVsReusedBitIdentical is the reuse contract under the
// run-to-completion scheduler: a warm lab that already ran an unrelated
// trial — leaving per-socket and per-stack operation frames behind in
// their caches — must, after Reset, reproduce a fresh lab's fan-in
// latencies bit for bit.
func TestFanInFreshVsReusedBitIdentical(t *testing.T) {
	cfg := lab.Config{Link: lab.LinkATM, Seed: 17}
	gen := FanIn{Size: 200, Requests: 5, Warmup: 1}

	fresh, err := gen.Run(lab.NewTopology(cfg, 5))
	if err != nil {
		t.Fatal(err)
	}

	warm := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 3}, 5)
	if _, err := (Churn{Conns: 4, Size: 64}).Run(warm); err != nil {
		t.Fatal(err)
	}
	if err := warm.Reset(cfg, 0); err != nil {
		t.Fatal(err)
	}
	reused, err := gen.Run(warm)
	if err != nil {
		t.Fatal(err)
	}

	if len(fresh.Latencies) != len(reused.Latencies) {
		t.Fatalf("latency counts differ: fresh %d vs reused %d",
			len(fresh.Latencies), len(reused.Latencies))
	}
	for i := range fresh.Latencies {
		if fresh.Latencies[i] != reused.Latencies[i] {
			t.Fatalf("latency %d diverges: fresh %v vs reused %v",
				i, fresh.Latencies[i], reused.Latencies[i])
		}
	}
	if fresh.Elapsed != reused.Elapsed {
		t.Fatalf("elapsed diverges: fresh %v vs reused %v", fresh.Elapsed, reused.Elapsed)
	}
}

func TestChurnReleasesPCBs(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 8}, 3)
	res, err := Churn{Conns: 6, Size: 64}.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2*6 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	// Every cycle inserted and deleted real PCBs; after the event loop
	// drains (TIME_WAIT included) only the listener's PCB remains on the
	// server and none on the clients.
	if n := l.Hosts[0].TCP.Table.Len(); n != 1 {
		t.Fatalf("server table holds %d PCBs after churn, want 1 (listener)", n)
	}
	for i, h := range l.Hosts[1:] {
		if n := h.TCP.Table.Len(); n != 0 {
			t.Fatalf("client %d table holds %d PCBs after churn, want 0", i, n)
		}
	}
}

func TestBulkDeliversAllBytes(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 5}, 4)
	res, err := Bulk{Bytes: 40000, Chunk: 8000}.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d short transfers", res.Errors)
	}
	if res.Bytes != 3*40000 {
		t.Fatalf("server consumed %d bytes, want %d", res.Bytes, 3*40000)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestEchoMatchesLabBenchmark(t *testing.T) {
	// The echo generator must reproduce lab.RunEcho exactly: same
	// topology, same seed, same RTTs.
	direct := lab.New(lab.Config{Link: lab.LinkATM, Seed: 42})
	want, err := direct.RunEcho(200, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 42}, 2)
	res, err := Echo{Size: 200, Iterations: 10, Warmup: 2}.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != len(want.RTTs) {
		t.Fatalf("%d latencies vs %d RTTs", len(res.Latencies), len(want.RTTs))
	}
	for i := range want.RTTs {
		if res.Latencies[i] != want.RTTs[i] {
			t.Fatalf("iteration %d: workload %v vs lab %v", i, res.Latencies[i], want.RTTs[i])
		}
	}
}

func TestFanInHashBeatsListAtHighPopulation(t *testing.T) {
	// The §3 prediction under a live population: with 16 concurrent
	// connections interleaving at the server, the hash organization must
	// demultiplex cheaper than the linear list.
	run := func(hash bool) float64 {
		cfg := lab.Config{Link: lab.LinkATM, HashPCBs: hash, Seed: 33}
		l := lab.NewTopology(cfg, 17)
		res, err := FanIn{Size: 200, Requests: 8, Warmup: 1}.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sample().Mean()
	}
	list, hash := run(false), run(true)
	t.Logf("16-client fan-in: list %.0f µs, hash %.0f µs", list, hash)
	if hash >= list {
		t.Fatalf("hash PCBs (%.0f µs) did not beat the list (%.0f µs) under live fan-in", hash, list)
	}
}
