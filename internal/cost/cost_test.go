package cost

import (
	"testing"

	"repro/internal/sim"
)

func TestLinearCost(t *testing.T) {
	l := Linear{Fixed: sim.Micros(5), PerByte: 100} // 100 ns/byte
	if got := l.Cost(0); got != sim.Micros(5) {
		t.Fatalf("Cost(0) = %v", got)
	}
	if got := l.Cost(1000); got != sim.Micros(105) {
		t.Fatalf("Cost(1000) = %v", got)
	}
}

func TestWireTime(t *testing.T) {
	// 1250 bytes at 10 Mb/s = 1 ms.
	if got := WireTime(1250, 10e6); got != sim.Millisecond {
		t.Fatalf("WireTime = %v", got)
	}
	// One cell at 140 Mb/s ≈ 3.03 µs.
	ct := WireTime(53, 140e6)
	if ct < 3*sim.Microsecond || ct > 3100*sim.Nanosecond {
		t.Fatalf("cell time = %v", ct)
	}
}

func TestChecksumModeString(t *testing.T) {
	cases := map[ChecksumMode]string{
		ChecksumStandard:   "standard",
		ChecksumIntegrated: "integrated",
		ChecksumNone:       "none",
		ChecksumMode(9):    "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

// TestCalibrationAgainstTable5 pins the user-level cost curves to the
// paper's published measurements within 15% at every size, so an
// accidental edit to a constant fails loudly.
func TestCalibrationAgainstTable5(t *testing.T) {
	m := DECstation5000()
	table := []struct {
		curve Linear
		name  string
		pub   map[int]float64
	}{
		{m.UserChecksumULTRIX, "ULTRIX checksum",
			map[int]float64{4: 5, 200: 43, 1400: 283, 8000: 1605}},
		{m.UserBcopy, "bcopy",
			map[int]float64{200: 20, 1400: 124, 8000: 698}},
		{m.UserChecksumOpt, "optimized checksum",
			map[int]float64{200: 21, 1400: 134, 8000: 754}},
		{m.UserCopyChecksum, "integrated",
			map[int]float64{200: 24, 1400: 153, 8000: 864}},
	}
	for _, c := range table {
		for size, want := range c.pub {
			got := c.curve.Cost(size).Micros()
			if got < want*0.85 || got > want*1.15 {
				t.Errorf("%s at %d: %.1fµs vs paper %.1fµs", c.name, size, got, want)
			}
		}
	}
}

func TestKernelChecksumCalibration(t *testing.T) {
	// Table 2's checksum row: per segment over payload+40 header bytes.
	m := DECstation5000()
	pub := map[int]float64{4: 10, 500: 90, 1400: 209, 4000: 576}
	for size, want := range pub {
		got := m.TCPKernelChecksum.Cost(size + 40).Micros()
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("kernel checksum at %d: %.1fµs vs paper %.1f", size, got, want)
		}
	}
}

func TestPCBSearchCalibration(t *testing.T) {
	m := DECstation5000()
	if got := m.PCBLookupPerEntry.Micros(); got < 1.2 || got > 1.4 {
		t.Fatalf("per-entry cost %.2fµs, paper: just under 1.3", got)
	}
}

func TestATMLinkRatesSane(t *testing.T) {
	m := DECstation5000()
	if m.ATMLinkBitsPS <= m.EtherLinkBitsPS {
		t.Fatal("ATM must be faster than Ethernet")
	}
	if m.EtherLinkBitsPS != 10e6 {
		t.Fatalf("Ethernet rate %v, want 10 Mb/s", m.EtherLinkBitsPS)
	}
}

func TestIntegratedBreakEvenImpliedSize(t *testing.T) {
	// The model's integrated-mode parameters must place the RTT
	// break-even between 500 and 1400 bytes (Table 6: "the break-even
	// point occurs somewhere between 500 and 1400 bytes").
	m := DECstation5000()
	perByteSaving := (m.TCPKernelChecksum.PerByte - m.IntegratedTxPerByte) +
		(m.TCPKernelChecksum.PerByte - m.IntegratedRxPerByte)
	fixedCost := (m.IntegratedTxFixed + m.IntegratedRxFixed).Micros()
	breakEven := fixedCost * 1000 / perByteSaving
	if breakEven < 300 || breakEven > 1400 {
		t.Fatalf("implied break-even %.0f bytes, want between 500 and 1400", breakEven)
	}
}
