// Package stats provides the small statistical and table-formatting
// helpers shared by the experiment harness and the command-line tools:
// sample aggregation (mean, min, max, standard deviation, quantiles)
// and fixed-width text tables in the style of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates a set of float64 observations. The zero value is
// the exact aggregator the paper-scale tables rely on: it retains every
// observation and computes exact nearest-rank quantiles. NewSample with
// Config.Streaming builds the constant-memory variant instead (see
// streaming.go); the API is identical either way.
type Sample struct {
	values []float64
	stream *streamState
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	if s.stream != nil {
		s.stream.add(v)
		return
	}
	s.values = append(s.values, v)
}

// N returns the number of observations.
func (s *Sample) N() int {
	if s.stream != nil {
		return int(s.stream.n)
	}
	return len(s.values)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.stream != nil {
		if s.stream.n == 0 {
			return 0
		}
		return s.stream.mean
	}
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if s.stream != nil {
		if s.stream.n == 0 {
			return 0
		}
		return s.stream.min
	}
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if s.stream != nil {
		if s.stream.n == 0 {
			return 0
		}
		return s.stream.max
	}
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two observations.
func (s *Sample) StdDev() float64 {
	if s.stream != nil {
		if s.stream.n < 2 {
			return 0
		}
		return math.Sqrt(s.stream.m2 / float64(s.stream.n))
	}
	if len(s.values) < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}

// Percentile returns the p-th percentile (0 <= p <= 100): nearest-rank
// on a sorted copy of the observations in exact mode, nearest-rank over
// the reservoir in streaming mode. 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if s.stream != nil {
		return s.stream.percentile(p)
	}
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	return atRank(sorted, p)
}

// atRank is the nearest-rank cut shared by Percentile and Quantiles:
// one definition, so the two can never drift apart.
func atRank(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Quantiles is the p50/p95/p99 summary the latency reports print: the
// common case, the tail the paper's RPC discussion cares about, and the
// extreme tail that retransmission stalls dominate.
type Quantiles struct {
	P50, P95, P99 float64
}

// Quantiles returns the sample's p50/p95/p99, or zeros for an empty
// sample. Exact mode sorts one copy and serves all three cuts; streaming
// mode reads the three P² estimators.
func (s *Sample) Quantiles() Quantiles {
	if s.stream != nil {
		return Quantiles{
			P50: s.stream.q50.value(),
			P95: s.stream.q95.value(),
			P99: s.stream.q99.value(),
		}
	}
	if len(s.values) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	return Quantiles{
		P50: atRank(sorted, 50),
		P95: atRank(sorted, 95),
		P99: atRank(sorted, 99),
	}
}

// PercentDecrease returns the relative decrease from a to b in percent,
// the metric used throughout the paper's comparison tables (e.g. "ATM is
// 47% lower than Ethernet"). A zero baseline yields 0.
func PercentDecrease(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

// Table renders fixed-width text tables resembling the paper's layout.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells. Non-string values are formatted with %v;
// float64 values with one decimal place, matching the paper.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			s += fmt.Sprintf("%*s", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	for i := 0; i < total-2; i++ {
		out += "-"
	}
	out += "\n"
	for _, row := range t.rows {
		out += line(row)
	}
	return out
}
