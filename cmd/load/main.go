// Command load drives N-host topologies with the pluggable workload
// engine: request/response fan-in (M clients hammering one server),
// connection churn (open/close storms exercising real PCB insert and
// delete), one-way bulk transfer, and the paper's echo benchmark. Trials
// shard across the sweep-engine worker pool with grid-position-derived
// seeds, so output is bit-identical at any -parallel level.
//
// Examples:
//
//	load -workload fanin -hosts 17 -reqs 20       # 16 clients -> 1 server
//	load -workload fanin -hosts 17 -compare       # list vs hash PCBs
//	load -workload churn -hosts 9 -conns 25       # open/close storms
//	load -workload bulk -hosts 5 -bytes 262144    # concurrent bulk fan-in
//	load -workload fanin -trials 8 -loss 0.0005 -parallel 4  # repetitions under loss
//	load -workload fanin -hosts 17 -reqs 4 -shards 4     # host-sharded event loops
//	load -workload fanin -transport rudp -qdisc red      # reliable-UDP rival transport
//	load -workload loaded -burstloss 0.002 -crosstraffic 2   # TCP vs rUDP under load
//	load -workload faults -hosts 65 -crashat 500 -downtime 1000  # crash-recovery study
//	load -workload fanin -faults 2 -shards 4             # seeded link flaps, shard-safe
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// scaleHosts is where the harness flips from paper-scale to large-scale
// defaults: above it, -stream auto selects constant-memory streaming
// statistics and -stagger auto spaces client starts, because a 10,000-way
// simultaneous SYN storm against one listener mostly measures
// retransmission backoff, and retaining every latency mostly measures
// the host's RAM.
const scaleHosts = 1024

// fanInWarmup is the unmeasured per-client warmup requests cmd/load
// configures for the fan-in workload.
const fanInWarmup = 2

// autoStaggerFor is the per-client start spacing -stagger auto applies
// past scaleHosts. The spacing must exceed one client's total service
// time on the server's single simulated DECstation CPU — measured ~1ms
// to accept and close a connection plus ~1.5ms per request — or the
// server falls permanently behind, SYN retransmissions pile onto the
// queue, and the run collapses into an hours-long simulated
// retransmission storm. Spacing by the full per-client service time
// keeps the server below saturation at any -hosts; a 10,000-client
// single-request run holds a flat ~2ms per-request latency.
func autoStaggerFor(reqs int) sim.Time {
	return sim.Time(1000+1500*(reqs+fanInWarmup)) * sim.Microsecond
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	var (
		wl       = fs.String("workload", "fanin", "workload: fanin, churn, bulk, or echo")
		hosts    = fs.Int("hosts", 5, "topology size: one server plus hosts-1 clients")
		conns    = fs.Int("conns", 10, "churn: connection cycles per client")
		reqs     = fs.Int("reqs", 20, "fanin: requests per client; echo: iterations")
		size     = fs.Int("size", 0, "payload bytes per operation (0 = workload default)")
		bytesN   = fs.Int("bytes", 65536, "bulk: bytes streamed per client")
		link     = fs.String("link", "atm", "link type: atm or ether")
		loss     = fs.Float64("loss", 0, "ATM cell loss probability (what makes -trials vary)")
		hash     = fs.Bool("hashpcb", false, "use the hash-table PCB organization")
		compare  = fs.Bool("compare", false, "run every trial under both PCB organizations")
		trials   = fs.Int("trials", 1, "seeded repetitions of the workload")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		seed     = fs.Uint64("seed", 0, "base seed for per-trial RNG derivation (0 with -trials > 1 uses base 1)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of text")
		stream   = fs.String("stream", "auto", "fanin/churn latency statistics: on (constant-memory P²+reservoir), off (exact), or auto (on past -hosts 1024)")
		stagger  = fs.Int64("stagger", -1, "fanin: per-client start stagger in microseconds (-1 = auto: the per-client service estimate past -hosts 1024, else 0)")
		fabric   = fs.String("fabric", "hub", "ATM switch fabric: hub (one switch) or fattree (leaf switches trunked to a spine)")
		leaf     = fs.Int("leafports", 0, "fattree: hosts per leaf switch (0 = default 64)")
		shards   = fs.Int("shards", 0, "host-sharded trial execution: run each trial's event loop across N worker shards, bit-identical to serial (0 or 1 = serial)")
		transp   = fs.String("transport", "tcp", "fanin: transport under test, tcp or rudp (reliable UDP)")
		qdisc    = fs.String("qdisc", "none", "ATM egress queue discipline: none, droptail, red, or drr")
		burst    = fs.Float64("burstloss", 0, "Gilbert-Elliott burst loss: probability of entering the bad state per cell (0 = off)")
		crossN   = fs.Int("crosstraffic", 0, "fanin/loaded: background bounded-Pareto transfer flows contending with the workload")
		faultsN  = fs.Int("faults", 0, "fanin: seeded link flaps per client host during the run (shard-safe; 0 = none)")
		crashAt  = fs.Int64("crashat", 0, "faults: server crash time in milliseconds (0 = default 500)")
		downtime = fs.Int64("downtime", 0, "faults: crash-to-restart gap in milliseconds (0 = default 1000)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	if *hosts < 2 {
		return fmt.Errorf("-hosts %d too small (need a server and at least one client)", *hosts)
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1")
	}
	if *loss < 0 || *loss >= 1 {
		return fmt.Errorf("-loss %g out of range [0, 1)", *loss)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 0", *shards)
	}
	if *shards > 1 {
		if *link != "atm" {
			return fmt.Errorf("-shards applies to the ATM link only (ether is one broadcast domain with no cuttable link)")
		}
		if *loss > 0 {
			return fmt.Errorf("-shards cannot run with -loss: fault draws consume the serial RNG stream, which shards do not share")
		}
		if *burst > 0 {
			return fmt.Errorf("-shards cannot run with -burstloss: fault studies compare serial runs only")
		}
	}
	if *burst < 0 || *burst >= 1 {
		return fmt.Errorf("-burstloss %g out of range [0, 1)", *burst)
	}
	if *crossN < 0 {
		return fmt.Errorf("-crosstraffic %d must be >= 0", *crossN)
	}
	if *faultsN < 0 {
		return fmt.Errorf("-faults %d must be >= 0", *faultsN)
	}
	if *crashAt < 0 || *downtime < 0 {
		return fmt.Errorf("-crashat/-downtime must be >= 0")
	}
	if (*crashAt > 0 || *downtime > 0) && *wl != "faults" {
		return fmt.Errorf("-crashat/-downtime apply to -workload faults only")
	}
	qk, err := lab.ParseQdiscKind(*qdisc)
	if err != nil {
		return err
	}
	if *transp != workload.TransportTCP && *transp != workload.TransportRUDP {
		return fmt.Errorf("unknown transport %q (want tcp or rudp)", *transp)
	}
	cfg := lab.Config{HashPCBs: *hash, CellLossRate: *loss, LeafPorts: *leaf,
		Qdisc: lab.QdiscConfig{Kind: qk}, BurstLoss: burstGE(*burst)}
	switch *link {
	case "atm":
		cfg.Link = lab.LinkATM
	case "ether":
		cfg.Link = lab.LinkEther
		// Config.CellLossRate only drives ATM adapters; accepting it
		// here would silently measure a loss-free segment.
		if *loss > 0 {
			return fmt.Errorf("-loss applies to the ATM link only")
		}
		// Queue disciplines hang off ATM switch egress ports; the
		// Ethernet segment has no switch to install one on.
		if qk != lab.QdiscNone {
			return fmt.Errorf("-qdisc applies to the ATM link only")
		}
	default:
		return fmt.Errorf("unknown link %q", *link)
	}
	switch *fabric {
	case "hub":
		cfg.Fabric = lab.FabricHub
	case "fattree":
		cfg.Fabric = lab.FabricFatTree
		if cfg.Link != lab.LinkATM {
			return fmt.Errorf("-fabric fattree applies to the ATM link only")
		}
	default:
		return fmt.Errorf("unknown fabric %q (want hub or fattree)", *fabric)
	}

	if *wl == "loaded" {
		// The loaded study is self-contained: fan-in under the load
		// knobs, once per rival transport, rendered as a comparison.
		// Knobs it does not consume are rejected rather than silently
		// dropped, like the invalid combinations above.
		if cfg.Link != lab.LinkATM || cfg.Fabric != lab.FabricHub {
			return fmt.Errorf("-workload loaded runs on the hub ATM fabric")
		}
		if *transp != workload.TransportTCP {
			return fmt.Errorf("-transport does not apply to -workload loaded (it always runs both transports)")
		}
		if *loss > 0 {
			return fmt.Errorf("-loss does not apply to -workload loaded (use -burstloss)")
		}
		if *stream != "auto" {
			return fmt.Errorf("-stream does not apply to -workload loaded")
		}
		if *stagger >= 0 {
			return fmt.Errorf("-stagger does not apply to -workload loaded")
		}
		if *hash || *compare {
			return fmt.Errorf("-hashpcb/-compare do not apply to -workload loaded")
		}
		if *trials != 1 {
			return fmt.Errorf("-trials does not apply to -workload loaded")
		}
		if *faultsN > 0 {
			return fmt.Errorf("-faults applies to the fanin workload only")
		}
		res, err := core.RunLoadedStudy(core.LoadedOptions{
			Hosts: *hosts, Requests: *reqs, Size: *size,
			Qdisc:      cfg.Qdisc,
			BurstLoss:  cfg.BurstLoss,
			CrossFlows: *crossN,
			Shards:     *shards,
			Parallel:   *parallel,
			BaseSeed:   *seed,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(b))
			return nil
		}
		fmt.Fprint(w, res.Render())
		return nil
	}

	if *wl == "faults" {
		// The fault study is self-contained like loaded: the paced
		// fan-in with a mid-run server crash, once per rival transport,
		// rendered as a recovery comparison. Knobs it does not consume
		// are rejected rather than silently dropped.
		if cfg.Link != lab.LinkATM || cfg.Fabric != lab.FabricHub {
			return fmt.Errorf("-workload faults runs on the hub ATM fabric")
		}
		if *transp != workload.TransportTCP {
			return fmt.Errorf("-transport does not apply to -workload faults (it always runs both transports)")
		}
		if *loss > 0 || *burst > 0 {
			return fmt.Errorf("-loss/-burstloss do not apply to -workload faults (the fault schedule is the impairment)")
		}
		if qk != lab.QdiscNone {
			return fmt.Errorf("-qdisc does not apply to -workload faults")
		}
		if *crossN > 0 {
			return fmt.Errorf("-crosstraffic does not apply to -workload faults")
		}
		if *faultsN > 0 {
			return fmt.Errorf("-faults applies to the fanin workload only (-workload faults schedules its own crash)")
		}
		if *stream != "auto" {
			return fmt.Errorf("-stream does not apply to -workload faults")
		}
		if *stagger >= 0 {
			return fmt.Errorf("-stagger does not apply to -workload faults")
		}
		if *hash || *compare {
			return fmt.Errorf("-hashpcb/-compare do not apply to -workload faults")
		}
		if *trials != 1 {
			return fmt.Errorf("-trials does not apply to -workload faults")
		}
		if *shards > 1 {
			return fmt.Errorf("-shards does not apply to -workload faults (host crashes mutate cross-shard state; see docs/METHODOLOGY.md)")
		}
		res, err := core.RunFaultStudy(core.FaultOptions{
			Hosts: *hosts, Requests: *reqs, Size: *size,
			CrashAt:  sim.Time(*crashAt) * sim.Millisecond,
			Downtime: sim.Time(*downtime) * sim.Millisecond,
			Parallel: *parallel,
			BaseSeed: *seed,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(b))
			return nil
		}
		fmt.Fprint(w, res.Render())
		return nil
	}

	var stCfg stats.Config
	switch *stream {
	case "on":
		stCfg.Streaming = true
	case "off":
	case "auto":
		stCfg.Streaming = *hosts > scaleHosts
	default:
		return fmt.Errorf("unknown -stream %q (want on, off, or auto)", *stream)
	}
	stag := autoStaggerFor(*reqs)
	switch {
	case *stagger >= 0:
		stag = sim.Time(*stagger) * sim.Microsecond
	case *hosts <= scaleHosts:
		stag = 0
	}

	gen, err := makeGenerator(*wl, *size, *reqs, *conns, *bytesN, stCfg, stag, *transp, *crossN,
		*faultsN, *hosts, *seed)
	if err != nil {
		return err
	}

	orgs := []bool{*hash}
	if *compare {
		orgs = []bool{false, true}
	}
	var ts []runner.WorkloadTrial
	for t := 0; t < *trials; t++ {
		for _, h := range orgs {
			c := cfg
			c.HashPCBs = h
			org := "list"
			if h {
				org = "hash"
			}
			label := fmt.Sprintf("%s/%dc/%s", *wl, *hosts-1, org)
			if *trials > 1 {
				label += fmt.Sprintf("/t%d", t)
			}
			ts = append(ts, runner.WorkloadTrial{Label: label, Cfg: c, Hosts: *hosts, Gen: gen, Shards: *shards})
		}
	}

	// Without a base seed every trial's simulation would use the fixed
	// default seed and -trials would produce identical repetitions;
	// derive from base 1 so repetitions actually vary (still fully
	// deterministic).
	base := *seed
	if base == 0 && *trials > 1 {
		base = 1
	}
	outs, err := runner.RunWorkloadSweep(context.Background(), ts,
		runner.Options{Workers: *parallel, BaseSeed: base})
	if err != nil {
		return err
	}
	for _, o := range outs {
		if o.Error != "" {
			return fmt.Errorf("trial %s: %s", o.Label, o.Error)
		}
	}

	if *jsonOut {
		b, err := json.MarshalIndent(outs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
	title := fmt.Sprintf("Workload %s: %d host(s), %d trial(s)", *wl, *hosts, len(ts))
	fmt.Fprint(w, runner.RenderWorkloadOutcomes(title, outs))
	return nil
}

// burstGE expands the one-knob burst-loss flag into the Gilbert–Elliott
// chain it configures: entering the bad state with the given per-cell
// probability, leaving it with mean burst length 5 cells, and losing
// half the cells while bad.
func burstGE(pGoodBad float64) sim.GEParams {
	if pGoodBad <= 0 {
		return sim.GEParams{}
	}
	return sim.GEParams{PGoodBad: pGoodBad, PBadGood: 0.2, LossBad: 0.5}
}

// flapWindow and flapDowntime shape the -faults link flaps: each flap's
// start is drawn over the window from the host's own seeded stream, and
// each outage is short enough that TCP rides it out on retransmission
// backoff instead of giving up.
const (
	flapWindow   = 20 * sim.Millisecond
	flapDowntime = 500 * sim.Microsecond
)

// makeGenerator builds the named workload from the command-line knobs.
func makeGenerator(name string, size, reqs, conns, bytes int, st stats.Config, stagger sim.Time, transport string, crossFlows, faults, hosts int, seed uint64) (workload.Generator, error) {
	if name != "fanin" {
		if transport == workload.TransportRUDP {
			return nil, fmt.Errorf("-transport rudp applies to the fanin workload only")
		}
		if crossFlows > 0 {
			return nil, fmt.Errorf("-crosstraffic applies to the fanin and loaded workloads only")
		}
		if faults > 0 {
			return nil, fmt.Errorf("-faults applies to the fanin workload only")
		}
	}
	switch name {
	case "fanin":
		g := workload.FanIn{Size: size, Requests: reqs, Warmup: fanInWarmup,
			Stats: st, Stagger: stagger, Transport: transport}
		if crossFlows > 0 {
			g.Cross = &workload.CrossTraffic{Flows: crossFlows}
		}
		if faults > 0 {
			// The flap schedule derives from the base seed and host
			// indices alone (per-entity splitmix64 streams), so it is
			// identical serially and at any -shards level.
			clients := make([]int, 0, hosts-1)
			for i := 1; i < hosts; i++ {
				clients = append(clients, i)
			}
			g.Faults = sim.LinkFlaps(seed, clients, faults, flapWindow, flapDowntime)
		}
		return g, nil
	case "churn":
		return workload.Churn{Conns: conns, Size: size, Stats: st}, nil
	case "bulk":
		return workload.Bulk{Bytes: bytes}, nil
	case "echo":
		return workload.Echo{Size: size, Iterations: reqs}, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want fanin, churn, bulk, echo, loaded, or faults)", name)
}
