package tcp

import (
	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// output runs tcp_output until it decides there is nothing more to send.
// It is a frame call: the resumable outputOp is pushed onto p, so output
// must be the caller's last action before its Step returns.
//
// tcp_output is serialized per connection, the analogue of BSD running it
// at splnet: CPU charges inside the segment build yield to the event
// loop, so without the lock a user send (sosend's PRU_SEND) and
// input-side processing could both be inside tcp_output at once, each
// capturing the same snd_nxt and together consuming phantom sequence
// space no ACK could ever cover. A caller that finds output busy sleeps
// until the lock is free and then re-evaluates the send decision against
// current state, as a uniprocessor kernel blocking on the spl level
// would.
func (c *Conn) output(p *sim.Proc) {
	f := c.outOp
	if f != nil {
		c.outOp = nil
	} else {
		f = &outputOp{c: c}
	}
	f.pc = 0
	p.Call(f)
}

// outputOp is the resumable state of one output invocation: the splnet
// lock, the outputOnce send-decision loop, and the segment build
// (including mcopy and the checksum) flattened into one frame. Each
// connection caches one — per-connection outputs are serialized by the
// outBusy lock, so steady state allocates nothing; an overlapping caller
// parked on the lock falls back to a fresh frame.
type outputOp struct {
	c  *Conn
	pc int

	// One pass of the send decision, captured across parks.
	flags              uint8
	off, length, sbLen int
	win                int
	sendalot           bool
	th                 Header
	tagged             bool
	data, hm           *mbuf.Mbuf
	hdrLen             int
	ps                 checksum.Partial
	csM                *mbuf.Mbuf // integrated-checksum chain cursor
}

func (f *outputOp) Step(p *sim.Proc) {
	c := f.c
	k := c.K
	for {
		switch f.pc {
		case 0: // acquire the splnet lock, re-checking on every wake
			if c.outBusy {
				c.outWait.Wait(p)
				return
			}
			c.outBusy = true
			f.pc = 1

		case 1: // one pass of the BSD tcp_output send decision
			idle := c.sndMax == c.sndUna
			off := c.sndNxt.Diff(c.sndUna)
			if off < 0 {
				off = 0
			}
			win := min2(c.sndWnd, c.cwnd)
			flags := c.outputFlags()

			sbLen := c.so.Snd.Len()
			length := min2(sbLen-off, win-off)
			if length < 0 {
				length = 0
			}
			sendalot := false
			if length > c.mss {
				length = c.mss
				sendalot = true
			}
			// The FIN consumes sequence space after all data.
			if flags&FlagFIN != 0 && off+length < sbLen {
				flags &^= FlagFIN
			}

			send := false
			switch {
			case length == c.mss && length > 0:
				send = true
			case length > 0 && (idle || c.noDelay) && off+length == sbLen:
				// Nagle: a sub-MSS segment goes out only when nothing is
				// outstanding (or TCP_NODELAY) and it carries all queued
				// data.
				send = true
			case length > 0 && off+length == sbLen && flags&FlagFIN != 0:
				send = true
			}
			if flags&FlagSYN != 0 && c.sndNxt == c.iss {
				send = true
			}
			if flags&FlagFIN != 0 && (!c.finSent || c.sndNxt == c.sndUna) {
				send = true
			}
			if c.flagAckNow {
				send = true
			}
			// Window update: advertise when the window has opened by two
			// segments or half the buffer (BSD's receiver silly-window
			// rule). The opening must be strictly positive: with a tiny
			// socket buffer Hiwat/2 is zero, and a zero "opening" must not
			// qualify or every pass would send an update and the two ends
			// would chatter forever.
			rcvSpace := c.so.Rcv.Space()
			if c.state >= StateEstablished && rcvSpace > 0 {
				adv := c.rcvNxt.Add(rcvSpace).Diff(c.rcvAdv)
				if adv > 0 && (adv >= 2*c.mss || adv >= c.so.Rcv.Hiwat/2) {
					send = true
				}
			}
			if !send {
				f.pc = 11
				continue
			}
			f.flags, f.off, f.length = flags, off, length
			f.sbLen, f.win, f.sendalot = sbLen, win, sendalot

			// Segment build. The header is assembled before any charge so
			// the decision's snapshot is what goes on the wire.
			key := c.pcbEntry.Key
			th := Header{
				SrcPort: key.LocalPort,
				DstPort: key.RemotePort,
				Seq:     c.sndNxt,
				Ack:     c.rcvNxt,
				Flags:   flags,
				Win:     clampWin(c.so.Rcv.Space()),
			}
			if flags&FlagSYN != 0 {
				th.Seq = c.iss
				th.MSS = uint16(c.S.mtuMSS())
				if c.wantCksumOff {
					th.AltCksum = AltCksumNone
				}
			}
			if flags&FlagACK == 0 {
				th.Ack = 0
			}
			if length > 0 && off+length == c.so.Snd.Len() {
				th.Flags |= FlagPSH
			}
			f.th = th

			// Tag the process with this segment's on-wire identity for the
			// rest of the transmit path: every CPU charge from here down —
			// mcopy, output processing, checksum, ip_output, the driver —
			// attributes to this packet in the event stream. The tag nests,
			// so an ACK sent from inside tcp_input restores the inbound
			// segment's identity on pop. Tags exist only for that
			// attribution, so an untraced run skips the push — pushing
			// boxes the identity into an interface, one heap allocation per
			// segment on the hot path.
			f.tagged = k.Trace.PacketsEnabled()
			if f.tagged {
				pktID := trace.PacketID{
					Src:     key.LocalAddr,
					Dst:     key.RemoteAddr,
					SrcPort: key.LocalPort,
					DstPort: key.RemotePort,
					Seq:     uint32(th.Seq),
				}
				p.PushTag(pktID)
				k.Trace.Event(trace.Event{
					Kind: trace.EvTCPOutput, At: k.Now(), ID: pktID,
					Len: length, Aux: int64(th.Flags),
				})
			}

			// mcopy: the data sent is a copy of the socket buffer chain,
			// kept there for retransmission (§2.2.3: "the copy in mcopy
			// only occurs on sends, and is made from the mbuf chain for
			// retransmissions").
			f.pc = 2
			if length > 0 {
				var cs mbuf.CopyStats
				f.data, cs = k.Pool.Copy(c.so.Snd.Chain(), off, length)
				d := sim.Time(cs.MbufsAllocated)*(k.Cost.MbufAlloc+k.Cost.MbufCopyFix) +
					sim.Time(cs.ClustersRef)*k.Cost.ClusterRef +
					sim.Time(k.Cost.UserBcopy.PerByte*float64(cs.BytesCopied))
				if !k.Use(p, trace.LayerTCPMcopy, d) {
					return
				}
			}

		case 2: // remaining TCP output processing: the paper's "segment" row
			f.pc = 3
			if !k.Use(p, trace.LayerTCPSegmentTx, k.Cost.TCPOutputSegment.Cost(f.length)) {
				return
			}

		case 3: // header mbuf allocation charge
			f.pc = 4
			if !k.Use(p, trace.LayerTCPSegmentTx, k.Cost.MbufAlloc) {
				return
			}

		case 4: // build the header mbuf, then dispatch on checksum mode
			hm := k.Pool.Alloc()
			f.hm = hm
			f.hdrLen = f.th.Len()
			// Marshal scratch lives on the stack; Append copies it in.
			var hdr [maxHeaderLen]byte
			f.th.Marshal(hdr[:f.hdrLen])
			hm.Append(hdr[:f.hdrLen])
			hm.SetNext(f.data)

			// Checksum elimination applies only once negotiated and never
			// to SYN segments; a stack configured for elimination whose
			// peer did not agree falls back to the standard checksum, so
			// mismatched configurations interoperate instead of
			// blackholing.
			if c.cksumOff && f.flags&FlagSYN == 0 {
				f.pc = 9
				continue
			}
			if c.S.Mode == cost.ChecksumIntegrated {
				f.pc = 5
				if !k.Use(p, trace.LayerTCPCksumTx, k.Cost.IntegratedTxFixed) {
					return
				}
				continue
			}
			segLen := f.hdrLen + f.length
			nm := mbuf.ChainCount(hm)
			f.pc = 8
			if !k.Use(p, trace.LayerTCPCksumTx,
				k.Cost.TCPKernelChecksum.Cost(segLen)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf) {
				return
			}

		case 5: // integrated mode: pseudo-header plus freshly summed header
			// The data mbufs carry partial sums computed during copyin;
			// fold them with a freshly summed header (§4.1.1). Invalidated
			// stashes (segment boundaries that split an mbuf) fall back to
			// summing that mbuf's bytes.
			key := c.pcbEntry.Key
			f.ps = checksum.TCPPseudo(key.LocalAddr, key.RemoteAddr, f.hdrLen+f.length)
			f.ps.Add(f.hm.Bytes())
			f.csM = f.hm.Next()
			f.pc = 6
			if !k.Use(p, trace.LayerTCPCksumTx, k.Cost.TCPKernelChecksum.Cost(f.hdrLen)) {
				return
			}

		case 6: // integrated mode: per-mbuf charge for the next chain link
			m := f.csM
			if m == nil {
				storeChecksum(f.hm, f.ps.Checksum())
				f.pc = 9
				continue
			}
			var d sim.Time
			if m.CsumValid {
				d = k.Cost.ChecksumCombine
			} else {
				d = sim.Time(k.Cost.TCPKernelChecksum.PerByte * float64(m.Len()))
			}
			f.pc = 7
			if !k.Use(p, trace.LayerTCPCksumTx, d) {
				return
			}

		case 7: // integrated mode: fold the charged link, advance
			m := f.csM
			if m.CsumValid {
				f.ps.Combine(m.Csum)
			} else {
				f.ps.Add(m.Bytes())
			}
			f.csM = m.Next()
			f.pc = 6

		case 8: // standard mode: one charged pass over the real bytes
			key := c.pcbEntry.Key
			ps := checksum.TCPPseudo(key.LocalAddr, key.RemoteAddr, f.hdrLen+f.length)
			for m := f.hm; m != nil; m = m.Next() {
				ps.Add(m.Bytes())
			}
			storeChecksum(f.hm, ps.Checksum())
			f.pc = 9

		case 9: // hand the segment to IP
			c.S.Stats.SegsOut++
			f.pc = 10
			c.S.IP.Output(p, c.remoteAddr(), ip.ProtoTCP, f.hm)
			return

		case 10: // advance send state, then loop if outputOnce said to
			seqLen := f.length
			if f.flags&FlagSYN != 0 {
				seqLen++
			}
			if f.flags&FlagFIN != 0 {
				seqLen++
				c.finSent = true
			}
			c.sndNxt = c.sndNxt.Add(seqLen)
			if c.sndNxt.Gt(c.sndMax) {
				c.sndMax = c.sndNxt
				// Time this transmission for RTT if nothing is being timed.
				if !c.rtTiming && seqLen > 0 {
					c.rtTiming = true
					c.rtSeq = f.th.Seq
					c.rtStart = k.Now()
				}
			}
			if c.sndUna != c.sndMax {
				c.setRexmt()
			}
			// Record the advertised window edge for the update rule.
			adv := c.rcvNxt.Add(int(f.th.Win))
			if adv.Gt(c.rcvAdv) {
				c.rcvAdv = adv
			}
			c.flagAckNow = false
			c.flagDelAck = false
			if f.tagged {
				p.PopTag()
			}
			f.data, f.hm, f.csM = nil, nil, nil
			more := f.sbLen - (f.off + f.length)
			if f.sendalot && more > 0 && f.off+f.length < f.win {
				f.pc = 1
				continue
			}
			f.pc = 11

		case 11: // release the splnet lock and finish
			c.outBusy = false
			c.outWait.WakeAll()
			if c.outOp == nil {
				c.outOp = f
			}
			p.Return()
			return
		}
	}
}

// outputFlags returns the header flags implied by the connection state.
func (c *Conn) outputFlags() uint8 {
	switch c.state {
	case StateSynSent:
		return FlagSYN
	case StateSynRcvd:
		return FlagSYN | FlagACK
	case StateFinWait1, StateLastAck, StateClosing:
		return FlagFIN | FlagACK
	case StateClosed, StateListen:
		return FlagACK
	default:
		return FlagACK
	}
}

// storeChecksum writes ck into the checksum field of the header mbuf.
func storeChecksum(hm *mbuf.Mbuf, ck uint16) {
	b := hm.Bytes()
	b[16] = byte(ck >> 8)
	b[17] = byte(ck)
}

// clampWin narrows a window to the 16-bit header field.
func clampWin(w int) uint16 {
	if w < 0 {
		return 0
	}
	if w > 65535 {
		return 65535
	}
	return uint16(w)
}

// pseudoPartial builds the verification pseudo-header from a received IP
// header.
func pseudoPartial(h ip.Header, segLen int) checksum.Partial {
	return checksum.TCPPseudo(h.Src, h.Dst, segLen)
}
