package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LoadedOptions configures the loaded-network study: the fan-in
// workload re-run under congestion-era impairments — an egress queue
// discipline, Gilbert–Elliott burst loss, cell reordering, and
// heavy-tailed cross traffic — once per rival transport (TCP and the
// rely-style reliable UDP). The paper measured an unloaded testbed; this
// study asks how much of its latency attribution survives contention.
type LoadedOptions struct {
	// Hosts is the topology size: one server plus Hosts-1 clients
	// (default 6).
	Hosts int
	// Requests is the measured requests per client (default 8).
	Requests int
	// Size is the request/response payload in bytes (default 200).
	Size int
	// Qdisc is installed on every switch egress port (zero = the
	// built-in drop-tail depth).
	Qdisc lab.QdiscConfig
	// BurstLoss layers a Gilbert–Elliott chain on every link. Nonzero
	// forces serial execution (Shards is rejected by the lab).
	BurstLoss sim.GEParams
	// ReorderRate / ReorderDepth bound cell reordering (see lab.Config).
	ReorderRate  float64
	ReorderDepth int
	// CrossFlows adds that many background bounded-Pareto transfer
	// flows contending with the measured fan-in (0 = none).
	CrossFlows int
	// Shards runs each trial host-sharded (bit-identical to serial);
	// 0 or 1 is serial. Like Parallel it is execution machinery and is
	// excluded from the marshaled result.
	Shards int `json:"-"`
	// Parallel is the sweep worker-pool size (the two transports run as
	// independent jobs); BaseSeed derives per-job seeds as elsewhere.
	// Parallel is execution machinery, not experiment configuration, so
	// it is excluded from the marshaled result — JSON output must be
	// byte-identical at any -parallel level.
	Parallel int `json:"-"`
	BaseSeed uint64
}

func (o LoadedOptions) normalize() LoadedOptions {
	if o.Hosts < 2 {
		o.Hosts = 6
	}
	if o.Requests <= 0 {
		o.Requests = 8
	}
	if o.Size <= 0 {
		o.Size = 200
	}
	return o
}

// LoadedRow is one transport's outcome under the loaded configuration.
type LoadedRow struct {
	Transport     string
	Requests      int
	Errors        int
	MeanMicros    float64
	Quantiles     stats.Quantiles
	ElapsedMicros float64
	// ServerCPU attributes the server host's CPU microseconds over the
	// whole run to protocol layers, Tables 2/3 style.
	ServerCPU map[trace.Layer]float64
}

// LoadedResult is the study output: one row per transport, same
// impairments, same seeds.
type LoadedResult struct {
	Opts LoadedOptions
	Rows []LoadedRow
}

// loadedTransports fixes the row order (and thus each job's derived
// seed position).
var loadedTransports = []string{workload.TransportTCP, workload.TransportRUDP}

// RunLoadedStudy runs the fan-in workload once per transport under the
// configured load and returns latency statistics plus the server's
// per-layer CPU attribution for each.
func RunLoadedStudy(o LoadedOptions) (*LoadedResult, error) {
	o = o.normalize()
	var jobs []runner.Job
	for _, tr := range loadedTransports {
		tr := tr
		jobs = append(jobs, runner.Job{
			Label: "loaded/" + tr,
			RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
				cfg := seeded(lab.Config{
					Link: lab.LinkATM, PacketTrace: true,
					Qdisc:        o.Qdisc,
					BurstLoss:    o.BurstLoss,
					ReorderRate:  o.ReorderRate,
					ReorderDepth: o.ReorderDepth,
				}, seed)
				g := workload.FanIn{
					Transport: tr, Requests: o.Requests, Size: o.Size, Warmup: 1,
				}
				if o.CrossFlows > 0 {
					g.Cross = &workload.CrossTraffic{Flows: o.CrossFlows}
				}
				var r *workload.Result
				var err error
				if o.Shards > 1 {
					c, cerr := tb.Cluster(cfg, o.Hosts, o.Shards)
					if cerr != nil {
						return nil, cerr
					}
					r, err = workload.RunSharded(g, c)
				} else {
					r, err = g.Run(tb.Lab(cfg, o.Hosts))
				}
				if err != nil {
					return nil, err
				}
				return loadedRowFrom(tr, r), nil
			},
		})
	}
	outs, err := runner.Run(context.Background(), jobs,
		runner.Options{Workers: o.Parallel, BaseSeed: o.BaseSeed})
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	res := &LoadedResult{Opts: o}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.Value.(LoadedRow))
	}
	return res, nil
}

// loadedRowFrom reduces one workload result to a study row.
func loadedRowFrom(transport string, r *workload.Result) LoadedRow {
	var s stats.Sample
	for _, lat := range r.Latencies {
		s.Add(float64(lat) / float64(sim.Microsecond))
	}
	// The workload engine's server is host 0, which the trace layer
	// names "client" (the paper's echo pair fixed the names).
	cpu := trace.BreakdownFromEvents(r.Events, lab.HostName(0), 0, r.Elapsed)
	row := LoadedRow{
		Transport:     transport,
		Requests:      r.Requests,
		Errors:        r.Errors,
		MeanMicros:    s.Mean(),
		Quantiles:     s.Quantiles(),
		ElapsedMicros: float64(r.Elapsed) / float64(sim.Microsecond),
		ServerCPU:     make(map[trace.Layer]float64, len(cpu)),
	}
	for layer, d := range cpu {
		row.ServerCPU[layer] = float64(d) / float64(sim.Microsecond)
	}
	return row
}

// Render formats the study: the latency comparison, then the server CPU
// attribution table with one column per transport.
func (r *LoadedResult) Render() string {
	o := r.Opts
	load := []string{fmt.Sprintf("qdisc %s", o.Qdisc.Kind)}
	if o.BurstLoss.Enabled() {
		load = append(load, fmt.Sprintf("burst loss %.2g%%", o.BurstLoss.StationaryLoss()*100))
	}
	if o.ReorderRate > 0 {
		load = append(load, fmt.Sprintf("reorder %.2g%%", o.ReorderRate*100))
	}
	if o.CrossFlows > 0 {
		load = append(load, fmt.Sprintf("%d cross flows", o.CrossFlows))
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: loaded fan-in, TCP versus reliable UDP (%d clients, %s)",
			o.Hosts-1, strings.Join(load, ", ")),
		"Transport", "Reqs", "Errors", "Mean (µs)", "p50", "p95", "p99")
	for _, row := range r.Rows {
		t.AddRow(row.Transport, row.Requests, row.Errors, row.MeanMicros,
			row.Quantiles.P50, row.Quantiles.P95, row.Quantiles.P99)
	}
	var b strings.Builder
	b.WriteString(t.String())

	// The attribution table: layers ordered by combined CPU, so the
	// dominant costs lead, the way the paper's tables read.
	type layerRow struct {
		layer trace.Layer
		cols  []float64
		total float64
	}
	byLayer := map[trace.Layer]*layerRow{}
	for i, row := range r.Rows {
		for layer, us := range row.ServerCPU {
			lr := byLayer[layer]
			if lr == nil {
				lr = &layerRow{layer: layer, cols: make([]float64, len(r.Rows))}
				byLayer[layer] = lr
			}
			lr.cols[i] = us
			lr.total += us
		}
	}
	rows := make([]*layerRow, 0, len(byLayer))
	for _, lr := range byLayer {
		rows = append(rows, lr)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].layer < rows[j].layer
	})
	cols := []string{"Layer"}
	for _, row := range r.Rows {
		cols = append(cols, row.Transport+" (µs)")
	}
	ct := stats.NewTable("Server CPU attribution over the loaded run", cols...)
	for _, lr := range rows {
		cells := make([]any, 0, 1+len(lr.cols))
		cells = append(cells, string(lr.layer))
		for _, v := range lr.cols {
			cells = append(cells, v)
		}
		ct.AddRow(cells...)
	}
	b.WriteString(ct.String())
	b.WriteString(`Under load the attribution shifts from per-byte costs toward queueing
and recovery: TCP pays in segment processing and retransmission state,
the rely-style transport in per-message acks. The unloaded tables'
data-touching dominance is a light-load property, not a law.
`)
	return b.String()
}
