// Package repro reproduces "Latency Analysis of TCP on an ATM Network"
// (Wolman, Voelker, Thekkath; USENIX Winter 1994) as a deterministic
// discrete-event simulation of the paper's entire testbed: BSD 4.4 alpha
// TCP, the ULTRIX socket layer and mbufs, IP, the FORE TCA-100 ATM
// adapter with AAL3/4, a LANCE Ethernet, and the DECstation 5000/200 cost
// model the latencies are calibrated against.
//
// The library lives under internal/; see README.md for the layout, the
// quickstart, and how to regenerate each table and figure
// (paper-versus-measured output comes from cmd/tables),
// docs/ARCHITECTURE.md for the system design — the layer stack, sim
// engine, topology builder, workload engine, sweep engine, and the
// per-packet trace pipeline, with a diagram of a packet's life — and
// docs/METHODOLOGY.md for the measurement methodology: the exact
// command reproducing each published table, the §2.2 measurement
// windows, and the fixed-seed determinism contract. The benchmarks
// in bench_test.go regenerate every table and figure in the paper's
// evaluation, and internal/runner shards the experiment grid across a
// worker pool with bit-identical results at any worker count.
//
// The simulator itself is engineered for wall-clock speed without
// moving a single simulated result: a value-based 4-ary event heap in
// internal/sim, mbuf header and cluster-page free-lists in
// internal/mbuf, table-driven CRCs and reusable per-frame scratch in
// the drivers, and preallocated trace buffers. Testbeds are reusable:
// a lab's lifecycle spans many trials — lab.Lab.Reset rebinds the
// assembled topology to each new configuration with bit-identical
// initial state, and the sweep engine runs worker-affine, every worker
// recycling its own cache of warm labs (runner.Testbeds) through its
// share of the grid. docs/PERFORMANCE.md is the playbook — profiling
// commands, the hot-path map with measured numbers, the testbed-reuse
// contract, and the BENCH_wallclock.json regression gate behind
// bench_wallclock_test.go and cmd/benchdiff's -wallclock mode; golden
// SHA-256 tests in cmd/tables, cmd/load, and cmd/pkttrace pin the
// simulated outputs byte for byte across such changes.
//
// Beyond the paper's two-host pair, internal/lab builds N-host
// topologies (a shared Ethernet segment or an output-queued ATM cell
// switch with a full virtual-channel mesh) and internal/workload drives
// them with pluggable traffic generators — echo, bulk transfer,
// request/response fan-in, and connection churn — driven from cmd/load
// and the fan-in/churn study in internal/core.
//
// The measurement pipeline is itself a subsystem: internal/trace
// records typed per-packet events at every layer crossing, joins them
// by on-wire identity into span trees, and exports Chrome trace_event
// JSON via cmd/pkttrace; core.RunTimelineStudy proves the per-packet
// view re-derives the paper's breakdown tables exactly.
package repro
