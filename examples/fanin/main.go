// Fanin: the N-host topology and workload engine driving the §3
// demultiplexing argument on live connections. A growing population of
// clients hammers one server through an output-queued ATM switch, under
// both PCB organizations. With the linear list, every cache-missed
// demultiplex at the server walks the live connection population; the
// hash organization looks up in constant time — so the gap between the
// two columns widens as the fan-in grows, which is exactly the paper's
// prediction, produced here by real concurrent traffic instead of the
// synthetic ExtraPCBs knob.
//
// The study fans out through the sweep engine: the same grid runs
// serially first to verify that per-trial seeds derived from grid
// position make the parallel run bit-identical.
//
// Run with: go run ./examples/fanin
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"runtime"

	"repro/internal/core"
	"repro/internal/runner"
)

func main() {
	trials := core.FanInTrials([]int{1, 4, 8, 16}, 12)
	fmt.Printf("%d cells (workload × clients × PCB organization), %d workers\n\n",
		len(trials), runtime.GOMAXPROCS(0))

	serial, err := runner.RunWorkloadSweep(context.Background(), trials,
		runner.Options{Workers: 1, BaseSeed: 1994})
	if err != nil {
		log.Fatal(err)
	}

	parallel, err := runner.RunWorkloadSweep(context.Background(), trials,
		runner.Options{
			BaseSeed: 1994,
			Progress: func(done, total int) {
				fmt.Printf("\r%d/%d cells", done, total)
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if !reflect.DeepEqual(serial, parallel) {
		log.Fatal("parallel sweep diverged from the serial reference")
	}
	fmt.Println("parallel results bit-identical to the serial reference")
	fmt.Println()
	fmt.Print((&core.FanInResult{Outcomes: parallel}).Render())
	fmt.Println("\nReading: each fan-in cell is M clients with one live connection")
	fmt.Println("each; churn cells open and close connections continuously, so the")
	fmt.Println("population also exercises PCB insert/delete. The list column grows")
	fmt.Println("faster than the hash column with client count — the §3 effect on")
	fmt.Println("live populations.")
}
