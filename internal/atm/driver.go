package atm

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MTU is the datagram size the driver advertises to IP. The paper's ATM
// MTU is "close to 9K"; the AAL3/4 maximum here.
const MTU = MaxDatagram

// Driver is the ATM network driver: it implements ip.NetIf on the
// transmit side and runs a receive interrupt service process that drains
// the adapter FIFO, reassembles AAL3/4 frames, and hands datagrams to IP.
type Driver struct {
	K       *kern.Kernel
	Adapter *Adapter
	IP      *ip.Stack

	// Mode selects the receive-side checksum strategy. In
	// ChecksumIntegrated the driver fuses a partial TCP checksum into
	// its device-to-kernel copy and stashes it in the mbufs (§4.1.1:
	// "we have implemented the combined copy and checksum from the
	// device memory to kernel memory").
	Mode cost.ChecksumMode

	// seg carries traffic on the default PVC (the single VC of the
	// paper's switchless fiber); vcs maps destination IP addresses to
	// per-VC segmenters when a topology builder installed VCs.
	seg Segmenter
	vcs map[uint32]*Segmenter
	// reasms holds one reassembler per incoming VCI. Cells from
	// different sources arrive interleaved on distinct VCIs in switched
	// topologies; reassembly state must be per VC.
	reasms map[uint16]*Reassembler
	// rxStart notes, per VCI, when the driver popped the first cell of
	// the datagram currently reassembling — the start of that
	// datagram's driver-receive span in the packet trace.
	rxStart map[uint16]sim.Time

	// MTUOverride, when positive, lowers the MTU the driver advertises to
	// IP below the AAL3/4 maximum. TCP derives its MSS from it, so it is
	// the knob for sweeping segment size on the ATM link.
	MTUOverride int

	// HostCorruptRate flips one random bit of each reassembled datagram
	// during the device-to-host transfer — the paper's second error
	// source ("errors introduced by the network controllers in moving
	// data between host and controller memories", §4.2.1), which the
	// AAL CRC cannot see and only the TCP checksum can catch.
	HostCorruptRate float64

	// txBusy serializes Output, as splimp does around the real driver:
	// CPU charges yield to the event loop, so without the lock a user
	// send and a protocol-timer send could interleave cell pushes.
	txBusy bool
	txWait *sim.WaitQueue

	// lin and cells are the transmit path's scratch buffers (the
	// linearized datagram and its cells), reused across Output calls —
	// safe because txBusy serializes them.
	lin   []byte
	cells []Cell

	// FramesIn and FramesOut count successfully reassembled and
	// transmitted datagrams.
	FramesIn  int64
	FramesOut int64
	// ReassemblyErrors counts cells the AAL reassembler rejected.
	ReassemblyErrors int64
	// HECErrors counts cells discarded for a bad header checksum.
	HECErrors int64
	// HostCorruptions counts datagram bits flipped by HostCorruptRate.
	HostCorruptions int64
}

// DefaultVCI is the first non-reserved VCI, the single PVC of the
// paper's switchless lab.
const DefaultVCI = 32

// NewDriver creates the driver, wires it to the adapter and IP stack, and
// starts the receive service process.
func NewDriver(k *kern.Kernel, a *Adapter, ipStack *ip.Stack) *Driver {
	d := &Driver{K: k, Adapter: a, IP: ipStack}
	d.txWait = k.Env.NewWaitQueue(k.Name + ".atm.txlock")
	d.seg.VCI = DefaultVCI
	ipStack.Attach(d)
	k.Env.Spawn(k.Name+".atmintr", d.rxproc)
	return d
}

// Reset returns the driver to its just-constructed state for testbed
// reuse: every virtual channel's segmenter and reassembler rewinds
// (retaining scratch buffers and the VC table itself — routing is
// topology, not trial state), open receive spans and the transmit lock
// clear, configuration knobs return to defaults for the lab to re-apply,
// and counters zero. The receive service process stays parked on the
// adapter's RxReady queue.
func (d *Driver) Reset() {
	d.Mode = cost.ChecksumStandard
	d.MTUOverride = 0
	d.HostCorruptRate = 0
	d.txBusy = false
	d.seg.Reset()
	for _, s := range d.vcs {
		s.Reset()
	}
	for _, r := range d.reasms {
		r.Reset()
	}
	clear(d.rxStart)
	d.FramesIn, d.FramesOut = 0, 0
	d.ReassemblyErrors, d.HECErrors, d.HostCorruptions = 0, 0, 0
}

// AddVC installs a transmit-side virtual channel: datagrams addressed to
// dst leave on their own segmenter carrying vci. Topology builders call
// it once per reachable host; without any VCs every datagram rides the
// default PVC, preserving the two-host fiber behaviour.
func (d *Driver) AddVC(dst uint32, vci uint16) {
	if d.vcs == nil {
		d.vcs = make(map[uint32]*Segmenter)
	}
	d.vcs[dst] = &Segmenter{VCI: vci}
}

// segFor picks the segmenter for a datagram's destination address.
func (d *Driver) segFor(dst uint32) *Segmenter {
	if d.vcs == nil {
		return &d.seg
	}
	s, ok := d.vcs[dst]
	if !ok {
		panic(fmt.Sprintf("atm: no VC to destination %#x", dst))
	}
	return s
}

// reasmFor picks (lazily creating) the reassembler for an incoming VCI.
func (d *Driver) reasmFor(vci uint16) *Reassembler {
	if d.reasms == nil {
		d.reasms = make(map[uint16]*Reassembler)
	}
	r, ok := d.reasms[vci]
	if !ok {
		r = &Reassembler{}
		d.reasms[vci] = r
	}
	return r
}

// Name implements ip.NetIf.
func (d *Driver) Name() string { return d.K.Name + ".atm0" }

// MTU implements ip.NetIf.
func (d *Driver) MTU() int {
	if d.MTUOverride > 0 && d.MTUOverride < MTU {
		return d.MTUOverride
	}
	return MTU
}

// Output implements ip.NetIf: it segments the datagram into AAL3/4 cells
// and copies them into the transmit FIFO, blocking when the FIFO is full.
// Costs: a per-frame setup charge plus a per-cell compose-and-copy charge,
// all attributed to the ATM row. The span ends when the last cell has been
// written — the paper measures "up to when the ATM adapter is signaled to
// send the last byte of data", and on the TCA-100 writing the FIFO is the
// signal.
func (d *Driver) Output(p *sim.Proc, m *mbuf.Mbuf) {
	for d.txBusy {
		d.txWait.Wait(p)
	}
	d.txBusy = true
	txStart := d.K.Now()
	d.K.Use(p, trace.LayerATMTx, d.K.Cost.ATMTxFrameFixed)
	data := mbuf.LinearizeInto(d.lin[:0], m)
	d.lin = data
	cells := d.segFor(ip.Dst(data)).SegmentAppend(d.cells[:0], data)
	d.cells = cells
	for i := range cells {
		for d.Adapter.TxSpace() == 0 {
			waitStart := d.K.Now()
			d.Adapter.SpaceAvail.Wait(p)
			// Stalled on the FIFO: the driver spins on the status
			// register, which is time in the ATM row.
			d.K.Attribute(p, trace.LayerATMTx, waitStart, d.K.Now())
		}
		d.K.Use(p, trace.LayerATMTx, d.K.Cost.ATMTxPerCell)
		d.Adapter.PushTx(cells[i])
	}
	if d.K.Trace.PacketRecording() {
		id := d.K.PacketContext(p)
		d.K.Trace.Event(trace.Event{
			Kind: trace.EvDriverTx, At: txStart, Dur: d.K.Now() - txStart,
			ID: id, Len: len(data),
		})
		// The final cell is on its way to the wire; it clears the
		// transmit engine at TxIdleAt.
		d.K.Trace.Event(trace.Event{
			Kind: trace.EvWireDepart, At: d.Adapter.TxIdleAt(),
			ID: id, Len: len(data),
		})
	}
	d.FramesOut++
	d.K.FreeChain(p, trace.LayerMbuf, m)
	d.txBusy = false
	d.txWait.WakeAll()
}

// rxproc is the receive interrupt service process. It wakes on the
// adapter's end-of-frame interrupt, drains the receive FIFO charging the
// per-cell receive cost, pushes cells through the reassembler, and
// enqueues completed datagrams on the IP input queue.
func (d *Driver) rxproc(p *sim.Proc) {
	k := d.K
	for {
		// The TCA-100 model interrupts per completed frame, so the
		// driver sleeps until a frame-ending cell has landed, then
		// drains cells up to and including it. Cells of a later,
		// still-arriving frame stay in the FIFO until that frame's own
		// interrupt — which is what makes driver processing of one
		// segment overlap the wire arrival of the next at large
		// transfer sizes (the Table 3 ATM-row nonlinearity).
		for d.Adapter.FramesPending() == 0 && d.Adapter.RxAvail() < RxDrainThreshold {
			d.Adapter.RxReady.Wait(p)
		}
		// Drain up to one complete frame, or — when woken by the
		// occupancy threshold with no complete frame present — whatever
		// cells have accumulated, so an overflow can never wedge the
		// receive path.
		framePending := d.Adapter.FramesPending() > 0
		for {
			popAt := k.Now()
			c, ok := d.Adapter.PopRx()
			if !ok {
				break
			}
			k.Use(p, trace.LayerATMRx, k.Cost.ATMRxPerCell)
			if d.Mode == cost.ChecksumIntegrated {
				k.Use(p, trace.LayerATMRx,
					sim.Time(k.Cost.IntegratedRxPerByte*SARPayload))
			}
			h, err := ParseHeader(&c)
			if err != nil {
				// Header corruption: the HEC catches it and the cell
				// is discarded, surfacing later as a sequence gap. A
				// discarded frame-end must still consume the adapter's
				// pending-frame bookkeeping (count and arrival stamp),
				// or both would stay desynchronized forever.
				d.HECErrors++
				if IsFrameEnd(&c) {
					d.Adapter.ConsumeFrameEnd()
				}
				continue
			}
			if d.rxStart == nil {
				d.rxStart = make(map[uint16]sim.Time)
			}
			// A beginning cell always restarts the VCI's receive span:
			// the reassembler silently abandons a partial datagram when
			// a fresh BOM arrives mid-message (a loss pattern the
			// sequence numbers cannot catch), and that path reports no
			// error, so the open span would otherwise leak into the
			// next datagram's driver.rx duration.
			if st := c.Payload()[0] >> 6; st == segBOM || st == segSSM {
				d.rxStart[h.VCI] = popAt
			} else if _, open := d.rxStart[h.VCI]; !open {
				d.rxStart[h.VCI] = popAt
			}
			frameEnd := IsFrameEnd(&c)
			var arrivedAt sim.Time
			if frameEnd {
				arrivedAt = d.Adapter.ConsumeFrameEnd()
			}
			dg, err := d.reasmFor(h.VCI).Push(&c)
			if err != nil {
				d.ReassemblyErrors++
				delete(d.rxStart, h.VCI)
			} else if dg != nil {
				start := d.rxStart[h.VCI]
				delete(d.rxStart, h.VCI)
				d.deliver(p, dg, start, arrivedAt)
			}
			if frameEnd && framePending {
				break
			}
		}
	}
}

// deliver builds the mbuf chain for a reassembled datagram and enqueues it
// for IP. Layout: the IP header in its own normal mbuf, the rest in
// cluster mbufs (or normal mbufs for small frames), so that stripping the
// IP header cannot invalidate partial checksums stashed for the payload.
// start is when the driver popped the datagram's first cell and arrivedAt
// when its final cell reached the adapter from the wire; both stamp the
// packet trace.
func (d *Driver) deliver(p *sim.Proc, dg []byte, start, arrivedAt sim.Time) {
	k := d.K
	if len(dg) < ip.HeaderLen {
		d.ReassemblyErrors++
		return
	}
	// The on-wire identity, read before any host-side corruption is
	// injected below: the trace records what the wire carried. Untraced
	// runs skip the tag push (it boxes the identity — one allocation per
	// datagram on the hot path) along with the event.
	var pktID trace.PacketID
	if k.Trace.PacketsEnabled() {
		pktID = ip.PacketIDOf(dg)
		p.PushTag(pktID)
		defer p.PopTag()
		k.Trace.Event(trace.Event{
			Kind: trace.EvWireArrive, At: arrivedAt, ID: pktID, Len: len(dg),
		})
	}
	// Per-frame interrupt and reassembly-completion overhead.
	k.Use(p, trace.LayerATMRx, k.Cost.ATMRxFrameFixed)
	if d.HostCorruptRate > 0 && k.Env.RNG().Bool(d.HostCorruptRate) {
		bit := k.Env.RNG().Intn(len(dg) * 8)
		dg[bit/8] ^= 1 << (bit % 8)
		d.HostCorruptions++
	}
	if d.Mode == cost.ChecksumIntegrated {
		k.Use(p, trace.LayerATMRx, k.Cost.IntegratedRxFixed)
	}
	hm := k.AllocMbuf(p, trace.LayerATMRx)
	hm.Append(dg[:ip.HeaderLen])
	rest := dg[ip.HeaderLen:]
	chain := hm
	tail := hm
	for len(rest) > 0 {
		var m *mbuf.Mbuf
		if len(dg) > mbuf.ClusterThreshold {
			m = k.AllocCluster(p, trace.LayerATMRx)
		} else {
			m = k.AllocMbuf(p, trace.LayerATMRx)
		}
		n := m.Append(rest)
		if d.Mode == cost.ChecksumIntegrated {
			// The device-to-kernel copy computed this sum as a side
			// effect; stash it for tcp_input to fold.
			var cs checksum.Partial
			cs.Add(rest[:n])
			m.Csum, m.CsumValid = cs, true
		}
		rest = rest[n:]
		tail.SetNext(m)
		tail = m
	}
	d.FramesIn++
	k.Trace.Event(trace.Event{
		Kind: trace.EvDriverRx, At: start, Dur: k.Now() - start,
		ID: pktID, Len: len(dg),
	})
	d.IP.Enqueue(chain)
}
