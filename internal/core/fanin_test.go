package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestPCBLiveMatchesSynthetic is the satellite assertion: populations of
// equal size report the same per-entry search cost whether the entries
// are synthetic inserts or live established connections.
func TestPCBLiveMatchesSynthetic(t *testing.T) {
	syn := RunPCBExperiment()
	live := RunPCBLiveExperiment()
	t.Log("\n" + live.Render())
	if !live.Live {
		t.Fatal("live result not marked live")
	}
	if len(syn.Rows) != len(live.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(syn.Rows), len(live.Rows))
	}
	for i, s := range syn.Rows {
		l := live.Rows[i]
		if s != l {
			t.Errorf("entries %d: synthetic %+v vs live %+v", s.Entries, s, l)
		}
	}
	if syn.PerEntryMicros != live.PerEntryMicros {
		t.Errorf("per-entry slope differs: synthetic %.3f vs live %.3f",
			syn.PerEntryMicros, live.PerEntryMicros)
	}
}

func TestPCBPopulationEffectLive(t *testing.T) {
	rtts, err := PCBPopulationEffectLive([]int{0, 100, 400}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live population→RTT: %v", rtts)
	if !(rtts[0] < rtts[100] && rtts[100] < rtts[400]) {
		t.Error("RTT should grow with live PCB population when prediction is off")
	}
}

// TestFanInStudyParallelBitIdentical checks the study's JSON is
// identical at any worker count for the same base seed, and that the
// hash organization beats the list at the largest live population.
func TestFanInStudyParallelBitIdentical(t *testing.T) {
	runAt := func(workers int) *FanInResult {
		o := Options{Iterations: 6, Warmup: 2, Parallel: workers, BaseSeed: 1994}
		r, err := RunFanInStudy([]int{2, 16}, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := runAt(1)
	parallel := runAt(4)
	if !reflect.DeepEqual(serial, parallel) {
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(parallel)
		t.Fatalf("parallel study diverged from serial:\n%s\nvs\n%s", a, b)
	}

	t.Log("\n" + serial.Render())
	byLabel := map[string]float64{}
	for _, o := range serial.Outcomes {
		byLabel[o.Label] = o.MeanMicros
	}
	for _, wl := range []string{"fanin", "churn"} {
		list, hash := byLabel[wl+"/16c/list"], byLabel[wl+"/16c/hash"]
		if list == 0 || hash == 0 {
			t.Fatalf("%s: missing 16-client cells in %v", wl, byLabel)
		}
		if hash >= list {
			t.Errorf("%s at 16 clients: hash (%.0f µs) did not beat list (%.0f µs)",
				wl, hash, list)
		}
	}
}
