package checksum

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// refSum is a deliberately naive reference implementation: big-endian
// 16-bit words summed into a wide accumulator, folded at the end.
func refSum(b []byte) uint16 {
	var sum uint64
	for i := 0; i < len(b); i += 2 {
		w := uint64(b[i]) << 8
		if i+1 < len(b) {
			w |= uint64(b[i+1])
		}
		sum += w
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

func randBytes(r *sim.RNG, n int) []byte {
	b := make([]byte, n)
	r.Fill(b)
	return b
}

func TestKnownVector(t *testing.T) {
	// RFC 1071 §3 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
	// (before complement).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := SumULTRIX(b); got != 0xddf2 {
		t.Fatalf("SumULTRIX = %#x, want 0xddf2", got)
	}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x", got)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if SumULTRIX(nil) != 0 || SumOptimized(nil) != 0 {
		t.Fatal("empty sum not 0")
	}
	if got := SumULTRIX([]byte{0xab}); got != 0xab00 {
		t.Fatalf("single byte = %#x, want 0xab00", got)
	}
	if got := SumOptimized([]byte{0xab}); got != 0xab00 {
		t.Fatalf("single byte optimized = %#x", got)
	}
}

func TestAllImplementationsAgree(t *testing.T) {
	r := sim.NewRNG(101)
	f := func(n uint16) bool {
		b := randBytes(r, int(n%5000))
		want := refSum(b)
		if SumULTRIX(b) != want || SumOptimized(b) != want {
			return false
		}
		dst := make([]byte, len(b))
		if CopyAndSum(dst, b) != want {
			return false
		}
		return bytes.Equal(dst, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyAndSumCopies(t *testing.T) {
	r := sim.NewRNG(7)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1400, 8000} {
		src := randBytes(r, n)
		dst := make([]byte, n+3)
		sum := CopyAndSum(dst, src)
		if !bytes.Equal(dst[:n], src) {
			t.Fatalf("n=%d: copy mismatch", n)
		}
		if sum != refSum(src) {
			t.Fatalf("n=%d: sum mismatch", n)
		}
	}
}

func TestCopyAndSumShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short destination did not panic")
		}
	}()
	CopyAndSum(make([]byte, 3), make([]byte, 4))
}

func TestPartialMatchesWhole(t *testing.T) {
	r := sim.NewRNG(55)
	f := func(cuts []uint8) bool {
		// Build a buffer and split it at arbitrary (often odd) points.
		total := 0
		sizes := make([]int, 0, len(cuts)+1)
		for _, c := range cuts {
			sizes = append(sizes, int(c)%257)
			total += int(c) % 257
		}
		b := randBytes(r, total)
		var p Partial
		off := 0
		for _, s := range sizes {
			p.Add(b[off : off+s])
			off += s
		}
		return p.Sum16() == refSum(b) && p.Odd() == (total%2 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialCombine(t *testing.T) {
	r := sim.NewRNG(77)
	f := func(n1, n2, n3 uint16) bool {
		a := randBytes(r, int(n1%1000))
		b := randBytes(r, int(n2%1000))
		c := randBytes(r, int(n3%1000))
		whole := append(append(append([]byte{}, a...), b...), c...)

		var pa, pb, pc Partial
		pa.Add(a)
		pb.Add(b)
		pc.Add(c)
		pa.Combine(pb)
		pa.Combine(pc)
		return pa.Sum16() == refSum(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialAccumulatorNeverOverflows(t *testing.T) {
	// 1 MB of 0xff bytes would overflow a naive uint32 accumulator.
	var p Partial
	chunk := bytes.Repeat([]byte{0xff}, 4096)
	for i := 0; i < 256; i++ {
		p.Add(chunk)
	}
	if got := p.Sum16(); got != 0xffff {
		t.Fatalf("all-ones sum = %#x, want 0xffff", got)
	}
}

func TestAddWordPanicsAtOddOffset(t *testing.T) {
	var p Partial
	p.Add([]byte{1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddWord at odd offset did not panic")
		}
	}()
	p.AddWord(0x1234)
}

func TestVerifyRoundTrip(t *testing.T) {
	r := sim.NewRNG(99)
	f := func(n uint16) bool {
		// A "packet" with a checksum field at offset 2.
		b := randBytes(r, int(n%2000)+4)
		b[2], b[3] = 0, 0
		ck := Checksum(b)
		b[2], b[3] = byte(ck>>8), byte(ck)
		return Verify(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsSingleBitFlips(t *testing.T) {
	// A single bit flip can never turn a valid sum into another valid
	// sum (it cannot convert a 16-bit word between 0x0000 and 0xffff),
	// so detection must be 100%.
	r := sim.NewRNG(123)
	b := randBytes(r, 101)
	b[2], b[3] = 0, 0
	ck := Checksum(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	if !Verify(b) {
		t.Fatal("baseline packet does not verify")
	}
	for byteIdx := 0; byteIdx < len(b); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			b[byteIdx] ^= 1 << bit
			if Verify(b) {
				t.Fatalf("flip at byte %d bit %d undetected", byteIdx, bit)
			}
			b[byteIdx] ^= 1 << bit
		}
	}
}

func TestTCPPseudo(t *testing.T) {
	// Hand-computed pseudo-header sum.
	src := uint32(0xc0a80101) // 192.168.1.1
	dst := uint32(0xc0a80102)
	p := TCPPseudo(src, dst, 20)
	var want uint32 = 0xc0a8 + 0x0101 + 0xc0a8 + 0x0102 + 6 + 20
	for want>>16 != 0 {
		want = (want & 0xffff) + (want >> 16)
	}
	if got := p.Sum16(); got != uint16(want) {
		t.Fatalf("pseudo sum = %#x, want %#x", got, want)
	}
}

func TestFold(t *testing.T) {
	if got := Fold(0x1ffff); got != 1 {
		t.Fatalf("Fold(0x1ffff) = %#x, want 1", got)
	}
	if got := Fold(0xffff); got != 0xffff {
		t.Fatalf("Fold(0xffff) = %#x", got)
	}
	if got := Fold(0); got != 0 {
		t.Fatalf("Fold(0) = %#x", got)
	}
}
