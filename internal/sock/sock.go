// Package sock implements the BSD socket layer: send and receive socket
// buffers with high-water marks, sosend (the user-to-kernel copy with the
// ULTRIX mbuf sizing policy), soreceive (the kernel-to-user copy), and the
// sleep/wakeup protocol that produces the paper's Wakeup row.
//
// The socket layer is where two of the paper's experimental effects live:
//
//   - The normal-mbuf/cluster switch at 1 KB that causes the nonlinear
//     User and mcopy rows between 500 and 1400 bytes (§2.2.1). sosend
//     reproduces ULTRIX's policy: writes over 1 KB go into 4 KB cluster
//     mbufs, one protocol send per cluster — which is also why an
//     8000-byte transfer leaves as two TCP segments.
//   - The transmit half of the integrated copy-and-checksum (§4.1.1):
//     in that mode sosend folds the checksum into the copyin and stores
//     the partial sum in the mbuf for TCP to combine later.
package sock

import (
	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultHiwat is the socket buffer high-water mark. The paper's
// benchmark must have run with at least 8 KB of socket buffering: it
// observes the two segments of an 8000-byte transfer leaving back to back
// and overlapping at the receiver (Table 3's ATM row), which a 4 KB
// buffer would serialize behind a window update. 16 KB reproduces that
// behaviour; per-socket buffers remain adjustable via Buffer.Hiwat.
const DefaultHiwat = 16384

// Protocol is the interface the socket layer drives, the analogue of the
// BSD pr_usrreq entry points this stack needs.
type Protocol interface {
	// Send notifies the protocol that data was appended to the send
	// buffer (PRU_SEND).
	Send(p *sim.Proc)
	// Rcvd notifies the protocol that the application consumed receive
	// buffer space (PRU_RCVD), the window-update hook.
	Rcvd(p *sim.Proc)
	// Close begins an orderly release (PRU_DISCONNECT).
	Close(p *sim.Proc)
}

// Buffer is a socket buffer: an mbuf chain plus bookkeeping.
type Buffer struct {
	K     *kern.Kernel
	Hiwat int
	mb    *mbuf.Mbuf
	cc    int
	// WaitQ is where processes sleep for state changes (sbwait).
	WaitQ *sim.WaitQueue
}

// initBuffer prepares a buffer owned by kernel k.
func (b *Buffer) initBuffer(k *kern.Kernel, name string) {
	b.K = k
	b.Hiwat = DefaultHiwat
	b.WaitQ = k.Env.NewWaitQueue(name)
}

// Len returns the bytes queued.
func (b *Buffer) Len() int { return b.cc }

// Space returns the bytes of room below the high-water mark.
func (b *Buffer) Space() int { return b.Hiwat - b.cc }

// Chain returns the head of the buffered mbuf chain.
func (b *Buffer) Chain() *mbuf.Mbuf { return b.mb }

// Append adds a chain to the buffer (sbappend).
func (b *Buffer) Append(m *mbuf.Mbuf) {
	b.cc += mbuf.ChainLen(m)
	b.mb = mbuf.Concat(b.mb, m)
}

// Drop releases n bytes from the front (sbdrop), returning the mbufs to
// the pool.
func (b *Buffer) Drop(n int) {
	if n > b.cc {
		panic("sock: sbdrop more than buffered")
	}
	b.mb = b.K.Pool.Drop(b.mb, n)
	b.cc -= n
}

// Socket is a connected stream socket.
type Socket struct {
	K     *kern.Kernel
	Proto Protocol
	Snd   Buffer
	Rcv   Buffer

	// Mode selects the transmit-side checksum strategy for sosend.
	Mode cost.ChecksumMode

	// TraceID is the connection identity (4-tuple, Seq zero) stamped on
	// the socket's enqueue/dequeue trace events. The transport sets it
	// once the connection's addresses are known; until then socket
	// events record unattributed.
	TraceID trace.PacketID

	// Eof is set when the peer's FIN has been consumed.
	Eof bool
	// Err terminates operations with an error state (connection reset).
	Err error
	// Connected reflects protocol state; Recv/Send require it unless
	// data is already buffered.
	Connected bool

	// StateQ is where processes wait for connection state changes.
	StateQ *sim.WaitQueue
}

// New returns a socket owned by kernel k. The protocol must be attached
// by the transport before use.
func New(k *kern.Kernel) *Socket {
	so := &Socket{K: k, StateQ: k.Env.NewWaitQueue(k.Name + ".so.state")}
	so.Snd.initBuffer(k, k.Name+".so.snd")
	so.Rcv.initBuffer(k, k.Name+".so.rcv")
	return so
}

// chunkPolicy decides the mbuf type for a write of resid bytes, per the
// ULTRIX 4.2A rule: cluster mbufs once the transfer exceeds 1 KB.
func chunkPolicy(resid int) bool { return resid > mbuf.ClusterThreshold }

// Send implements sosend for a stream socket: block for buffer space,
// copy user data into mbufs (charging the User row), append, and kick the
// protocol once per chunk. It returns the number of bytes accepted, which
// is len(data) unless the connection fails.
func (so *Socket) Send(p *sim.Proc, data []byte) (int, error) {
	k := so.K
	k.Use(p, trace.LayerUserTx, k.Cost.WriteSyscall)
	useClusters := chunkPolicy(len(data))
	sent := 0
	for sent < len(data) {
		if so.Err != nil {
			return sent, so.Err
		}
		if so.Snd.Space() <= 0 {
			k.SleepOn(p, so.Snd.WaitQ)
			continue
		}
		resid := len(data) - sent
		space := so.Snd.Space()
		var chain *mbuf.Mbuf
		if useClusters {
			// One cluster per protocol send, as in ULTRIX sosend.
			m := k.AllocCluster(p, trace.LayerUserTx)
			n := min3(resid, mbuf.MCLBYTES, space)
			so.copyin(p, m, data[sent:sent+n])
			sent += n
			chain = m
		} else {
			// Fill normal mbufs up to the available space, one
			// protocol send for the chain.
			budget := min3(resid, space, resid)
			var tail *mbuf.Mbuf
			for budget > 0 {
				m := k.AllocMbuf(p, trace.LayerUserTx)
				n := budget
				if n > mbuf.MLEN {
					n = mbuf.MLEN
				}
				so.copyin(p, m, data[sent:sent+n])
				sent += n
				budget -= n
				if chain == nil {
					chain = m
				} else {
					tail.SetNext(m)
				}
				tail = m
			}
		}
		k.Use(p, trace.LayerUserTx,
			sim.Time(mbuf.ChainCount(chain))*k.Cost.SockAppend)
		recording := k.Trace.PacketRecording()
		var chainLen int
		if recording {
			chainLen = mbuf.ChainLen(chain)
		}
		so.Snd.Append(chain)
		if recording {
			k.Trace.Event(trace.Event{
				Kind: trace.EvSockEnqueue, At: k.Now(), ID: so.TraceID,
				Len: chainLen, Aux: int64(so.Snd.Len()),
			})
		}
		k.Use(p, trace.LayerUserTx, k.Cost.UsrreqDispatch)
		so.Proto.Send(p)
	}
	return sent, so.Err
}

// copyin moves user bytes into one mbuf, charging the copy and — in
// integrated mode — fusing the checksum into it and stashing the partial
// sum (§4.1.1: "we calculate the checksum for each chunk of data copied
// into an mbuf at the socket layer, and store the partial checksum in the
// mbuf header").
func (so *Socket) copyin(p *sim.Proc, m *mbuf.Mbuf, data []byte) {
	k := so.K
	perByte := k.Cost.CopyinPerByte
	if so.Mode == cost.ChecksumIntegrated {
		perByte += k.Cost.IntegratedTxPerByte
	}
	k.Use(p, trace.LayerUserTx,
		k.Cost.CopyinFixed+sim.Time(perByte*float64(len(data))))
	if m.Append(data) != len(data) {
		panic("sock: mbuf overflow in copyin")
	}
	if so.Mode == cost.ChecksumIntegrated {
		var cs checksum.Partial
		cs.Add(data)
		m.Csum, m.CsumValid = cs, true
	}
}

// Recv implements soreceive: block until data (or EOF or error), copy out
// up to len(buf) bytes, release the consumed mbufs, and give the protocol
// its window-update hook. It returns 0, nil at EOF.
func (so *Socket) Recv(p *sim.Proc, buf []byte) (int, error) {
	k := so.K
	for so.Rcv.Len() == 0 {
		if so.Err != nil {
			return 0, so.Err
		}
		if so.Eof {
			return 0, nil
		}
		k.SleepOn(p, so.Rcv.WaitQ)
	}
	k.Use(p, trace.LayerUserRx, k.Cost.ReadSyscall)
	n := len(buf)
	if n > so.Rcv.Len() {
		n = so.Rcv.Len()
	}
	// Copy out mbuf by mbuf, charging per-mbuf and per-byte costs.
	copied := 0
	m := so.Rcv.Chain()
	for copied < n {
		take := m.Len()
		if take > n-copied {
			take = n - copied
		}
		k.Use(p, trace.LayerUserRx,
			k.Cost.CopyoutFixed+sim.Time(k.Cost.CopyoutPerByte*float64(take)))
		copy(buf[copied:], m.Bytes()[:take])
		copied += take
		m = m.Next()
	}
	// Free the consumed mbufs; the paper charges mbuf bookkeeping
	// separately from the copy.
	freed := 0
	for c := so.Rcv.Chain(); c != nil && freed+c.Len() <= n; c = c.Next() {
		freed++
	}
	if freed > 0 {
		k.Use(p, trace.LayerMbuf, sim.Time(freed)*k.Cost.MbufFree)
	}
	so.Rcv.Drop(n)
	k.Trace.Event(trace.Event{
		Kind: trace.EvSockDequeue, At: k.Now(), ID: so.TraceID,
		Len: n, Aux: int64(so.Rcv.Len()),
	})
	k.Use(p, trace.LayerUserRx, k.Cost.UsrreqDispatch)
	so.Proto.Rcvd(p)
	return n, nil
}

// Close starts an orderly release.
func (so *Socket) Close(p *sim.Proc) {
	so.Proto.Close(p)
}

// --- Upcalls from the transport protocol. ---

// RcvWakeup wakes readers after the protocol appended data or EOF
// (sorwakeup).
func (so *Socket) RcvWakeup() { so.Rcv.WaitQ.WakeAll() }

// SndWakeup wakes writers after send-buffer space opened (sowwakeup).
func (so *Socket) SndWakeup() { so.Snd.WaitQ.WakeAll() }

// SetConnected marks the socket connected and wakes state waiters.
func (so *Socket) SetConnected() {
	so.Connected = true
	so.StateQ.WakeAll()
}

// SetEof marks the receive stream finished and wakes readers.
func (so *Socket) SetEof() {
	so.Eof = true
	so.RcvWakeup()
}

// SetError poisons the socket and wakes everyone.
func (so *Socket) SetError(err error) {
	so.Err = err
	so.Connected = false
	so.RcvWakeup()
	so.SndWakeup()
	so.StateQ.WakeAll()
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
