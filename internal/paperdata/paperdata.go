// Package paperdata embeds the published measurements from every table of
// "Latency Analysis of TCP on an ATM Network" (Wolman, Voelker, Thekkath;
// USENIX Winter 1994), so the experiment harness can print paper-versus-
// measured comparisons and the shape tests can assert that the
// reproduction preserves orderings, ratios and crossovers.
//
// All times are microseconds, exactly as printed in the paper.
package paperdata

// Sizes is the set of transfer sizes every round-trip table uses,
// chosen per §1.2.
var Sizes = []int{4, 20, 80, 200, 500, 1400, 4000, 8000}

// Table1 compares ATM and Ethernet round-trip times.
var Table1 = struct {
	Ethernet map[int]float64
	ATM      map[int]float64
}{
	Ethernet: map[int]float64{
		4: 1940, 20: 2337, 80: 2590, 200: 2804,
		500: 4101, 1400: 6554, 4000: 13168, 8000: 22141,
	},
	ATM: map[int]float64{
		4: 1021, 20: 1039, 80: 1289, 200: 1520,
		500: 2140, 1400: 2976, 4000: 5891, 8000: 10636,
	},
}

// Table2 is the transmit-side latency breakdown (BSD 4.4 alpha, ATM).
// Keyed by row label then size.
var Table2 = map[string]map[int]float64{
	"User":         {4: 45, 20: 45, 80: 48, 200: 67, 500: 121, 1400: 99, 4000: 174, 8000: 400},
	"TCP.checksum": {4: 10, 20: 12, 80: 23, 200: 42, 500: 90, 1400: 209, 4000: 576, 8000: 1149},
	"TCP.mcopy":    {4: 5.1, 20: 5.7, 80: 26, 200: 41, 500: 80, 1400: 29, 4000: 30, 8000: 41},
	"TCP.segment":  {4: 62, 20: 65, 80: 63, 200: 65, 500: 71, 1400: 63, 4000: 65, 8000: 72},
	"IP":           {4: 35, 20: 34, 80: 35, 200: 35, 500: 36, 1400: 36, 4000: 38, 8000: 36},
	"ATM":          {4: 23, 20: 24, 80: 39, 200: 47, 500: 71, 1400: 96, 4000: 215, 8000: 498},
	"Total":        {4: 180, 20: 184, 80: 234, 200: 297, 500: 469, 1400: 532, 4000: 1098, 8000: 2196},
}

// Table2TCPTotal is the TCP sub-total row of Table 2.
var Table2TCPTotal = map[int]float64{
	4: 77, 20: 81, 80: 112, 200: 148, 500: 241, 1400: 301, 4000: 671, 8000: 1262,
}

// Table3 is the receive-side latency breakdown (BSD 4.4 alpha, ATM).
var Table3 = map[string]map[int]float64{
	"ATM":          {4: 46, 20: 46, 80: 70, 200: 99, 500: 164, 1400: 363, 4000: 920, 8000: 1783},
	"IPQ":          {4: 22, 20: 22, 80: 22, 200: 22, 500: 23, 1400: 45, 4000: 46, 8000: 50},
	"IP":           {4: 40, 20: 40, 80: 62, 200: 62, 500: 62, 1400: 53, 4000: 54, 8000: 43},
	"TCP.checksum": {4: 10, 20: 12, 80: 23, 200: 40, 500: 82, 1400: 211, 4000: 578, 8000: 1172},
	"TCP.segment":  {4: 135, 20: 135, 80: 138, 200: 141, 500: 158, 1400: 142, 4000: 143, 8000: 59},
	"Wakeup":       {4: 46, 20: 47, 80: 47, 200: 50, 500: 49, 1400: 51, 4000: 58, 8000: 67},
	"User":         {4: 64, 20: 65, 80: 89, 200: 81, 500: 102, 1400: 124, 4000: 199, 8000: 468},
	"Total":        {4: 363, 20: 367, 80: 451, 200: 495, 500: 640, 1400: 989, 4000: 1998, 8000: 3642},
}

// Table3TCPTotal is the TCP sub-total row of Table 3.
var Table3TCPTotal = map[int]float64{
	4: 145, 20: 147, 80: 161, 200: 181, 500: 240, 1400: 353, 4000: 721, 8000: 1231,
}

// Table4 compares round trips with header prediction disabled and enabled
// (Figure 1 plots the same data).
var Table4 = struct {
	NoPrediction map[int]float64
	Prediction   map[int]float64
}{
	NoPrediction: map[int]float64{
		4: 1110, 20: 1127, 80: 1324, 200: 1560,
		500: 2186, 1400: 2962, 4000: 5950, 8000: 11477,
	},
	Prediction: map[int]float64{
		4: 1021, 20: 1039, 80: 1289, 200: 1520,
		500: 2140, 1400: 2976, 4000: 5891, 8000: 10636,
	},
}

// PCBSearch holds the §3 PCB lookup measurements: 20 entries cost 26 µs,
// 1000 entries cost 1280 µs, scaling linearly at just under 1.3 µs per
// entry on the DECstation 5000/200.
var PCBSearch = struct {
	Len20, Len1000 float64
	PerEntry       float64
}{Len20: 26, Len1000: 1280, PerEntry: 1.3}

// Table5 is the user-level copy and checksum study (Figure 2 plots it).
var Table5 = map[string]map[int]float64{
	"ULTRIXChecksum":    {4: 5, 20: 7, 80: 20, 200: 43, 500: 104, 1400: 283, 4000: 807, 8000: 1605},
	"ULTRIXBcopy":       {4: 4, 20: 5, 80: 11, 200: 20, 500: 47, 1400: 124, 4000: 350, 8000: 698},
	"ULTRIXTotal":       {4: 9, 20: 12, 80: 31, 200: 63, 500: 151, 1400: 407, 4000: 1157, 8000: 2303},
	"OptimizedChecksum": {4: 3, 20: 4, 80: 9, 200: 21, 500: 49, 1400: 134, 4000: 378, 8000: 754},
	"IntegratedCopyCk":  {4: 3, 20: 5, 80: 10, 200: 24, 500: 56, 1400: 153, 4000: 430, 8000: 864},
}

// Table5Savings is the published "Savings When Integrated (%)" column.
var Table5Savings = map[int]float64{
	4: 57, 20: 44, 80: 50, 200: 41, 500: 42, 1400: 41, 4000: 41, 8000: 40,
}

// Table6 compares round trips with the standard checksum against the
// combined copy-and-checksum kernel.
var Table6 = struct {
	Standard map[int]float64
	Combined map[int]float64
	Saving   map[int]float64 // percent; negative means slower
}{
	Standard: map[int]float64{
		4: 1021, 20: 1039, 80: 1289, 200: 1520,
		500: 2140, 1400: 2976, 4000: 5891, 8000: 10636,
	},
	Combined: map[int]float64{
		4: 1249, 20: 1256, 80: 1477, 200: 1707,
		500: 2222, 1400: 2691, 4000: 4644, 8000: 8062,
	},
	Saving: map[int]float64{
		4: -22, 20: -21, 80: -15, 200: -12,
		500: -3.8, 1400: 10, 4000: 21, 8000: 24,
	},
}

// Table7 compares round trips with and without the TCP checksum.
var Table7 = struct {
	Checksum   map[int]float64
	NoChecksum map[int]float64
	Saving     map[int]float64 // percent
}{
	Checksum: map[int]float64{
		4: 1021, 20: 1039, 80: 1289, 200: 1520,
		500: 2140, 1400: 2976, 4000: 5891, 8000: 10636,
	},
	NoChecksum: map[int]float64{
		4: 1020, 20: 1020, 80: 1233, 200: 1392,
		500: 1808, 1400: 2083, 4000: 3633, 8000: 6233,
	},
	Saving: map[int]float64{
		4: 0.1, 20: 1.8, 80: 4.3, 200: 8.4,
		500: 16, 1400: 30, 4000: 38, 8000: 41,
	},
}

// Sun3Comparison holds the §4.1 cross-platform data points: checksum,
// copy, and combined times for 1 KB of data on a Sun-3 (from Clark et al.)
// and on the DECstation 5000/200.
var Sun3Comparison = struct {
	Sun3Checksum, Sun3Copy, Sun3Combined float64
	DECChecksum, DECCopy, DECCombined    float64
}{
	Sun3Checksum: 130, Sun3Copy: 140, Sun3Combined: 200,
	DECChecksum: 96, DECCopy: 91, DECCombined: 111,
}

// MbufAllocFreeMicros is §2.2.1's measured mbuf allocate+free time.
const MbufAllocFreeMicros = 7.0

// CombinedBandwidthMBps is §4.1's observed bandwidth ceiling of the
// integrated copy-and-checksum loop on the DECstation 5000/200.
const CombinedBandwidthMBps = 9.0
