package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/cost"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/sock"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win, mss uint16, alt bool) bool {
		h := Header{
			SrcPort: sp, DstPort: dp,
			Seq: Seq(seq), Ack: Seq(ack),
			Flags: flags & 0x3f, Win: win, MSS: mss,
		}
		if alt {
			h.AltCksum = AltCksumNone
		}
		b := make([]byte, 28)
		n := h.Marshal(b)
		got, off, err := Parse(b[:n])
		if err != nil || off != n {
			return false
		}
		got.Cksum = h.Cksum // checksum written separately
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderParseErrors(t *testing.T) {
	if _, _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	b := make([]byte, 20)
	(&Header{}).Marshal(b)
	b[12] = 2 << 4 // data offset 8 bytes < 20
	if _, _, err := Parse(b); err == nil {
		t.Error("bad offset accepted")
	}
	b2 := make([]byte, 24)
	(&Header{MSS: 100}).Marshal(b2)
	b2[21] = 3 // malformed MSS option length
	if _, _, err := Parse(b2); err == nil {
		t.Error("malformed option accepted")
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(FlagSYN | FlagACK); got != "SYN|ACK" {
		t.Fatalf("FlagString = %q", got)
	}
	if got := FlagString(0); got != "none" {
		t.Fatalf("FlagString(0) = %q", got)
	}
}

func TestSeqArithmetic(t *testing.T) {
	a := Seq(0xfffffff0)
	b := a.Add(0x20) // wraps
	if !a.Lt(b) || !b.Gt(a) || !a.Leq(b) || !b.Geq(a) {
		t.Fatal("wrapped comparison broken")
	}
	if b.Diff(a) != 0x20 {
		t.Fatalf("Diff = %d", b.Diff(a))
	}
	if maxSeq(a, b) != b || minSeq(a, b) != a {
		t.Fatal("max/min broken across wrap")
	}
	if !a.Leq(a) || !a.Geq(a) || a.Lt(a) || a.Gt(a) {
		t.Fatal("reflexive comparisons broken")
	}
}

func TestSeqProperty(t *testing.T) {
	f := func(x uint32, d uint16) bool {
		a := Seq(x)
		b := a.Add(int(d))
		if d == 0 {
			return a == b
		}
		return a.Lt(b) && b.Diff(a) == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// pair is a two-host ATM testbed at the TCP level.
type pair struct {
	env    *sim.Env
	ka, kb *kern.Kernel
	sa, sb *Stack
	aa, ab *atm.Adapter
}

func newPair(t *testing.T, mode cost.ChecksumMode) *pair {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	p := &pair{env: env}
	p.ka = kern.New(env, model, "a")
	p.kb = kern.New(env, model, "b")
	ipa := ip.NewStack(p.ka, 1)
	ipb := ip.NewStack(p.kb, 2)
	p.aa, p.ab = atm.NewAdapter(p.ka), atm.NewAdapter(p.kb)
	atm.Connect(p.aa, p.ab)
	da := atm.NewDriver(p.ka, p.aa, ipa)
	db := atm.NewDriver(p.kb, p.ab, ipb)
	da.Mode, db.Mode = mode, mode
	p.sa = NewStack(p.ka, ipa)
	p.sb = NewStack(p.kb, ipb)
	p.sa.Mode, p.sb.Mode = mode, mode
	return p
}

// drainFrame accepts one connection and reads until EOF or error,
// appending everything read to *got (when non-nil) and reporting each
// read's length to each (when non-nil). done, if set, runs before the
// frame returns.
type drainFrame struct {
	ln   *Listener
	got  *[]byte
	conn **Conn
	each func(n int)
	done func()

	pc     int
	accept *AcceptOp
	so     *sock.Socket
	buf    []byte
	recv   *sock.RecvOp
}

func (f *drainFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.accept = f.ln.Accept(p)
			return
		case 1:
			f.so = f.accept.So
			if f.conn != nil {
				*f.conn = f.accept.C
			}
			f.buf = make([]byte, 4096)
			f.pc = 2
		case 2:
			f.pc = 3
			f.recv = f.so.Recv(p, f.buf)
			return
		case 3:
			if f.recv.Err != nil || f.recv.N == 0 {
				if f.done != nil {
					f.done()
				}
				p.Return()
				return
			}
			if f.got != nil {
				*f.got = append(*f.got, f.buf[:f.recv.N]...)
			}
			if f.each != nil {
				f.each(f.recv.N)
			}
			f.pc = 2
		}
	}
}

// echoFrame accepts one connection and echoes every read back to the
// sender until EOF or error.
type echoFrame struct {
	ln *Listener

	pc     int
	accept *AcceptOp
	so     *sock.Socket
	buf    []byte
	recv   *sock.RecvOp
	send   *sock.SendOp
}

func (f *echoFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.accept = f.ln.Accept(p)
			return
		case 1:
			f.so = f.accept.So
			f.accept.C.SetNoDelay(true)
			f.buf = make([]byte, 64)
			f.pc = 2
		case 2:
			f.pc = 3
			f.recv = f.so.Recv(p, f.buf)
			return
		case 3:
			if f.recv.Err != nil || f.recv.N == 0 {
				p.Return()
				return
			}
			f.pc = 4
			f.send = f.so.Send(p, f.buf[:f.recv.N])
			return
		case 4:
			if f.send.Err != nil {
				p.Return()
				return
			}
			f.pc = 2
		}
	}
}

// txFrame connects, optionally after a stagger delay, sends one payload,
// and closes the socket.
type txFrame struct {
	t       *testing.T
	s       *Stack
	payload []byte
	nodelay bool
	stagger sim.Time
	conn    **Conn

	pc   int
	op   *ConnectOp
	send *sock.SendOp
}

func (f *txFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			if f.stagger > 0 && !p.Sleep(f.stagger) {
				return
			}
		case 1:
			f.pc = 2
			f.op = f.s.Connect(p, 2, 80)
			return
		case 2:
			if f.op.Err != nil {
				f.t.Error(f.op.Err)
				p.Return()
				return
			}
			if f.conn != nil {
				*f.conn = f.op.C
			}
			f.op.C.SetNoDelay(f.nodelay)
			f.pc = 3
			f.send = f.op.So.Send(p, f.payload)
			return
		case 3:
			if f.send.Err != nil {
				f.t.Error(f.send.Err)
			}
			f.pc = 4
			f.op.So.Close(p)
			return
		case 4:
			p.Return()
			return
		}
	}
}

// rpcClientFrame connects and performs iters request/response exchanges
// of 64 bytes each against an echo server, then closes.
type rpcClientFrame struct {
	t     *testing.T
	s     *Stack
	iters int
	done  func()

	pc    int
	op    *ConnectOp
	so    *sock.Socket
	buf   []byte
	i     int
	total int
	recv  *sock.RecvOp
	send  *sock.SendOp
}

func (f *rpcClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.op = f.s.Connect(p, 2, 80)
			return
		case 1:
			if f.op.Err != nil {
				f.t.Error(f.op.Err)
				p.Return()
				return
			}
			f.so = f.op.So
			f.op.C.SetNoDelay(true)
			f.buf = make([]byte, 64)
			f.pc = 2
		case 2: // next exchange, or close once all are done
			if f.i == f.iters {
				f.pc = 5
				f.so.Close(p)
				return
			}
			f.i++
			f.total = 0
			f.pc = 3
			f.send = f.so.Send(p, f.buf)
			return
		case 3: // read the echo until the full 64 bytes are back
			if f.total >= 64 {
				f.pc = 2
				continue
			}
			f.pc = 4
			f.recv = f.so.Recv(p, f.buf[f.total:])
			return
		case 4:
			f.total += f.recv.N
			f.pc = 3
		case 5:
			if f.done != nil {
				f.done()
			}
			p.Return()
			return
		}
	}
}

func TestConnectEstablishes(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var clientConn, serverConn *Conn
	var accept *AcceptOp
	p.env.Spawn("server", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		func(pr *sim.Proc) { serverConn = accept.C },
	))
	var conn *ConnectOp
	p.env.Spawn("client", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				return
			}
			clientConn = conn.C
		},
	))
	p.env.Run()
	if clientConn == nil || serverConn == nil {
		t.Fatal("handshake incomplete")
	}
	if clientConn.State() != StateEstablished || serverConn.State() != StateEstablished {
		t.Fatalf("states: %v / %v", clientConn.State(), serverConn.State())
	}
	// MSS negotiated from the ATM MTU.
	wantMSS := atm.MTU - ip.HeaderLen - HeaderLen
	if clientConn.MSS() != wantMSS || serverConn.MSS() != wantMSS {
		t.Fatalf("MSS %d/%d, want %d", clientConn.MSS(), serverConn.MSS(), wantMSS)
	}
}

func TestListenPortConflict(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	if _, err := p.sb.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sb.Listen(80); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

// transfer sends payload a→b and returns what b received.
func transfer(t *testing.T, p *pair, payload []byte, nodelay bool) []byte {
	t.Helper()
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	p.env.Spawn("rx", &drainFrame{ln: ln, got: &got})
	p.env.Spawn("tx", &txFrame{t: t, s: p.sa, payload: payload, nodelay: nodelay})
	p.env.Run()
	return got
}

func TestTransferIntegritySizes(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1024, 1025, 4096, 8000, 20000, 60000} {
		p := newPair(t, cost.ChecksumStandard)
		payload := make([]byte, n)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: corrupted transfer (got %d bytes)", n, len(got))
		}
	}
}

func TestTransferIntegrityQuick(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		p := newPair(t, cost.ChecksumStandard)
		p.env.Seed(seed)
		payload := make([]byte, int(n)%20000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferAllChecksumModes(t *testing.T) {
	for _, mode := range []cost.ChecksumMode{
		cost.ChecksumStandard, cost.ChecksumIntegrated, cost.ChecksumNone,
	} {
		p := newPair(t, mode)
		payload := make([]byte, 10000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("mode %v: corrupted transfer", mode)
		}
	}
}

func TestRecoveryFromCellLoss(t *testing.T) {
	for _, mode := range []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone} {
		p := newPair(t, mode)
		p.ab.LossRate = 0.002
		p.env.Seed(11)
		payload := make([]byte, 60000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("mode %v: loss recovery failed (%d/%d bytes)", mode, len(got), len(payload))
		}
		if p.aa.CellsDropped+p.ab.CellsDropped == 0 {
			t.Fatalf("mode %v: no loss injected; test vacuous", mode)
		}
		if p.sa.Stats.Retransmits == 0 {
			t.Fatalf("mode %v: no retransmissions despite loss", mode)
		}
	}
}

func TestChecksumDetectsCorruptionAALOff(t *testing.T) {
	// End-to-end argument in action: corrupt a cell payload. The AAL
	// CRC-10 catches it first (frame discarded), TCP retransmits, and
	// the data still arrives intact.
	p := newPair(t, cost.ChecksumStandard)
	dropped := false
	payload := make([]byte, 9000)
	p.env.RNG().Fill(payload)
	// Corrupt by dropping one cell mid-stream.
	p.env.At(2*sim.Millisecond, "sabotage", func() {
		if !dropped {
			p.ab.DropNext = true
			dropped = true
		}
	})
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("recovery after mid-stream cell loss failed")
	}
}

func TestFastPathFailsForRPC(t *testing.T) {
	// Echo (bidirectional) traffic: header prediction's data case must
	// essentially never hit for single-segment exchanges, because every
	// data segment carries a piggybacked ACK of new data (§3).
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const iters = 20
	p.env.Spawn("server", &echoFrame{ln: ln})
	p.env.Spawn("client", &rpcClientFrame{t: t, s: p.sa, iters: iters})
	p.env.Run()
	data := p.sa.Stats.FastPathData + p.sb.Stats.FastPathData
	if data > 2 {
		t.Errorf("fast path data hits = %d for RPC traffic, expected ~0", data)
	}
	if p.sa.Stats.SlowPath+p.sb.Stats.SlowPath < iters {
		t.Error("slow path barely used; predicates suspect")
	}
}

func TestFastPathSucceedsForBulk(t *testing.T) {
	// Unidirectional transfer: the receiver should take the data fast
	// path for most segments (§3's "two common cases of unidirectional
	// data transfer").
	p := newPair(t, cost.ChecksumStandard)
	payload := make([]byte, 200000)
	p.env.RNG().Fill(payload)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("bulk transfer corrupted")
	}
	if p.sb.Stats.FastPathData < 10 {
		t.Errorf("receiver fast-path data hits = %d, expected many", p.sb.Stats.FastPathData)
	}
}

func TestFastPathPureAck(t *testing.T) {
	// The pure-ACK fast path requires an unchanged advertised window, so
	// drive the clean case: sub-MSS stop-and-wait sends to a receiver
	// that drains its buffer completely before the delayed ACK fires.
	// Each such ACK arrives with the window back at the high-water mark —
	// unchanged — and must take the sender's fast path.
	p := newPair(t, cost.ChecksumStandard)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	p.env.Spawn("rx", &drainFrame{ln: ln})
	var conn *ConnectOp
	var send *sock.SendOp
	msg := make([]byte, 512)
	p.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			conn.C.SetNoDelay(true)
			pr.Call(sim.LoopN(2*rounds, func(pr *sim.Proc, i int) {
				if i%2 == 0 {
					send = conn.So.Send(pr, msg)
				} else {
					if send.Err != nil {
						t.Error(send.Err)
					}
					// Wait out the peer's delayed ACK before the next send.
					pr.Sleep(300 * sim.Millisecond)
				}
			}))
		},
		func(pr *sim.Proc) { conn.So.Close(pr) },
	))
	p.env.Run()
	if p.sa.Stats.FastPathAck < rounds-1 {
		t.Errorf("sender fast-path ACK hits = %d, expected >= %d",
			p.sa.Stats.FastPathAck, rounds-1)
	}
}

func TestPredictionDisabledNeverFastPaths(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	p.sa.PredictionEnabled = false
	p.sb.PredictionEnabled = false
	payload := make([]byte, 100000)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("transfer corrupted")
	}
	if p.sa.Stats.FastPathData+p.sa.Stats.FastPathAck+
		p.sb.Stats.FastPathData+p.sb.Stats.FastPathAck != 0 {
		t.Fatal("fast path used despite prediction disabled")
	}
	if p.sa.Stats.PCBCacheHits+p.sb.Stats.PCBCacheHits != 0 {
		t.Fatal("PCB cache used despite prediction disabled")
	}
}

func TestNagleCoalesces(t *testing.T) {
	// With Nagle on, many tiny writes while an ACK is outstanding must
	// produce far fewer segments than writes.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const writes = 50
	var received int
	p.env.Spawn("rx", &drainFrame{ln: ln, each: func(n int) { received += n }})
	var conn *ConnectOp
	p.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			pr.Call(sim.LoopN(writes, func(pr *sim.Proc, i int) {
				conn.So.Send(pr, []byte{byte(i)})
			}))
		},
		func(pr *sim.Proc) { conn.So.Close(pr) },
	))
	p.env.Run()
	if received != writes {
		t.Fatalf("received %d bytes, want %d", received, writes)
	}
	dataSegs := p.sa.Stats.SegsOut
	if dataSegs >= writes {
		t.Errorf("Nagle sent %d segments for %d 1-byte writes; expected coalescing", dataSegs, writes)
	}
}

func TestCloseHandshakeStates(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	var server, client *Conn
	var srvEOF bool
	var accept *AcceptOp
	var srecv *sock.RecvOp
	p.env.Spawn("server", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		func(pr *sim.Proc) {
			server = accept.C
			srecv = accept.So.Recv(pr, make([]byte, 16))
		},
		func(pr *sim.Proc) {
			if srecv.Err != nil || srecv.N != 0 {
				t.Errorf("expected EOF, got n=%d err=%v", srecv.N, srecv.Err)
				pr.Return()
				return
			}
			srvEOF = true
			accept.So.Close(pr) // passive close
		},
	))
	var conn *ConnectOp
	p.env.Spawn("client", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			client = conn.C
			conn.So.Close(pr) // active close
		},
	))
	p.env.Run()
	if !srvEOF {
		t.Fatal("server never saw EOF")
	}
	if server.State() != StateClosed {
		t.Fatalf("server state %v, want CLOSED (after LAST_ACK)", server.State())
	}
	// The active closer passes through TIME_WAIT and is released by the
	// 2MSL timer, which has fired by the time Run drains the queue.
	if client.State() != StateClosed {
		t.Fatalf("client state %v, want CLOSED after TIME_WAIT", client.State())
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	payload := make([]byte, 50000)
	transfer(t, p, payload, true)
	// Find the client conn's SRTT via the stack: use a fresh echo-style
	// check instead; simplest: srtt must be positive and on the order of
	// the simulated RTT (hundreds of µs to a few ms).
	// The transfer helper closes the conn, so measure via a new pair.
	p2 := newPair(t, cost.ChecksumStandard)
	ln, _ := p2.sb.Listen(80)
	p2.env.Spawn("rx", &drainFrame{ln: ln})
	var srtt sim.Time
	var conn *ConnectOp
	p2.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = p2.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			conn.C.SetNoDelay(true)
			pr.Call(sim.LoopN(40, func(pr *sim.Proc, i int) {
				if i%2 == 0 {
					conn.So.Send(pr, make([]byte, 1000))
				} else {
					pr.Sleep(5 * sim.Millisecond)
				}
			}))
		},
		func(pr *sim.Proc) {
			srtt = conn.C.SRTT()
			conn.So.Close(pr)
		},
	))
	p2.env.Run()
	if srtt <= 0 || srtt > 50*sim.Millisecond {
		t.Fatalf("SRTT = %v, implausible", srtt)
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" {
		t.Fatal("state name broken")
	}
	if State(99).String() == "" {
		t.Fatal("unknown state unnamed")
	}
}

func TestAltChecksumNegotiation(t *testing.T) {
	// Both ends configured for elimination: negotiated off.
	p := newPair(t, cost.ChecksumNone)
	payload := make([]byte, 5000)
	p.env.RNG().Fill(payload)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("negotiated-off transfer corrupted")
	}
	if p.sa.Stats.ChecksumErrors+p.sb.Stats.ChecksumErrors != 0 {
		t.Fatal("checksum errors on a negotiated-off connection")
	}
}

func TestAltChecksumMismatchInteroperates(t *testing.T) {
	// Client wants elimination, server does not: the option must not
	// take effect, segments stay checksummed, and data flows — the
	// failure mode this guards against is a silent blackhole where one
	// end sends zero checksums the other drops.
	p := newPair(t, cost.ChecksumStandard)
	p.sa.Mode = cost.ChecksumNone // client offers; server stays standard
	payload := make([]byte, 5000)
	p.env.RNG().Fill(payload)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var serverConn, clientConn *Conn
	p.env.Spawn("rx", &drainFrame{ln: ln, got: &got, conn: &serverConn})
	p.env.Spawn("tx", &txFrame{t: t, s: p.sa, payload: payload, nodelay: true, conn: &clientConn})
	p.env.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("mismatched-mode transfer corrupted or blackholed")
	}
	if clientConn.ChecksumEliminated() || serverConn.ChecksumEliminated() {
		t.Fatal("one-sided offer negotiated the checksum off")
	}
	if p.sa.Stats.ChecksumErrors+p.sb.Stats.ChecksumErrors != 0 {
		t.Fatal("checksum errors under mismatch: zero-checksum segments leaked")
	}
}

func TestAltChecksumNegotiatedFlag(t *testing.T) {
	p := newPair(t, cost.ChecksumNone)
	ln, _ := p.sb.Listen(80)
	var sc, cc *Conn
	var accept *AcceptOp
	p.env.Spawn("s", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		func(pr *sim.Proc) { sc = accept.C },
	))
	var conn *ConnectOp
	p.env.Spawn("c", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				return
			}
			cc = conn.C
		},
	))
	p.env.Run()
	if cc == nil || sc == nil || !cc.ChecksumEliminated() || !sc.ChecksumEliminated() {
		t.Fatal("both-ends offer did not negotiate the checksum off")
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() int64 {
		p := newPair(t, cost.ChecksumStandard)
		p.env.Seed(5)
		payload := make([]byte, 30000)
		p.env.RNG().Fill(payload)
		transfer(t, p, payload, true)
		return int64(p.env.Now())
	}
	if run() != run() {
		t.Fatal("same seed produced different completion times")
	}
}

func TestMultipleConnectionsDemux(t *testing.T) {
	// Three concurrent connections to one listener: the PCB table must
	// demultiplex them and each stream must arrive intact.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const conns = 3
	payloads := make([][]byte, conns)
	results := make([][]byte, conns)
	for i := range payloads {
		payloads[i] = make([]byte, 3000+i*1000)
		p.env.RNG().Fill(payloads[i])
	}
	for i := 0; i < conns; i++ {
		got := new([]byte)
		p.env.Spawn("srv", &drainFrame{ln: ln, got: got, done: func() {
			// Identify the stream by its first byte tag.
			results[(*got)[0]] = *got
		}})
	}
	for i := 0; i < conns; i++ {
		payloads[i][0] = byte(i)
		p.env.Spawn("cli", &txFrame{
			t: t, s: p.sa, payload: payloads[i], nodelay: true,
			stagger: sim.Time(i) * 3 * sim.Millisecond, // stagger
		})
	}
	p.env.Run()
	for i := range payloads {
		if !bytes.Equal(results[i], payloads[i]) {
			t.Fatalf("stream %d corrupted or crossed (%d vs %d bytes)",
				i, len(results[i]), len(payloads[i]))
		}
	}
	if p.sb.Table.Len() < 1 {
		t.Fatal("PCB table empty")
	}
}

func TestPCBCacheThrashAcrossConnections(t *testing.T) {
	// Interleaved traffic on two connections defeats the single-entry
	// cache; hit rate must be well below a single-connection run.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	for i := 0; i < 2; i++ {
		p.env.Spawn("srv", &echoFrame{ln: ln})
	}
	done := 0
	for i := 0; i < 2; i++ {
		p.env.Spawn("cli", &rpcClientFrame{t: t, s: p.sa, iters: 15, done: func() { done++ }})
	}
	p.env.Run()
	if done != 2 {
		t.Fatal("clients did not finish")
	}
	lookups := p.sb.Stats.PCBCacheHits + p.sb.Stats.PCBListSearched
	if lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	// With two interleaved connections some lookups must miss the cache.
	if p.sb.Stats.PCBListSearched == 0 {
		t.Error("cache never missed despite interleaved connections")
	}
}

func TestDelayedAckTimerFires(t *testing.T) {
	// A receiver whose application never responds must still ACK within
	// the 200 ms fast-timer bound, or the sender would retransmit.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	var accept *AcceptOp
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		// Read but never reply: only the delayed-ACK timer can ACK.
		func(pr *sim.Proc) { accept.So.Recv(pr, make([]byte, 64)) },
	))
	var acked bool
	var conn *ConnectOp
	p.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			conn.C.SetNoDelay(true)
			conn.So.Send(pr, make([]byte, 64))
		},
		func(pr *sim.Proc) { pr.Sleep(400 * sim.Millisecond) },
		func(pr *sim.Proc) { acked = conn.C.sndUna == conn.C.sndMax },
	))
	p.env.RunUntil(2 * sim.Second)
	if !acked {
		t.Fatal("data not acknowledged within the delayed-ACK bound")
	}
	if p.sb.Stats.DelayedAcks == 0 {
		t.Fatal("delayed-ACK counter not incremented")
	}
	if p.sa.Stats.Retransmits != 0 {
		t.Fatal("sender retransmitted despite timely delayed ACK")
	}
}

func TestRSTDropsConnection(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	var srvConn *Conn
	var accept *AcceptOp
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		func(pr *sim.Proc) { srvConn = accept.C },
	))
	var clientErr error
	var conn *ConnectOp
	var recv *sock.RecvOp
	p.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			pr.Sleep(5 * sim.Millisecond)
		},
		func(pr *sim.Proc) {
			// Forge a RST from the server side by injecting it directly
			// into the client's input path.
			c := conn.C
			c.input(pr, Header{Flags: FlagRST, Seq: c.rcvNxt}, nil)
		},
		func(pr *sim.Proc) { recv = conn.So.Recv(pr, make([]byte, 8)) },
		func(pr *sim.Proc) { clientErr = recv.Err },
	))
	p.env.Run()
	if srvConn == nil {
		t.Fatal("handshake failed")
	}
	if clientErr != ErrReset {
		t.Fatalf("Recv error = %v, want ErrReset", clientErr)
	}
}

func TestSegmentationRespectsMSS(t *testing.T) {
	// Over Ethernet (MSS 1460) a 10000-byte transfer must produce
	// segments no larger than the MSS, and at least ceil(10000/1460).
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	var ea, eb [6]byte
	ea[5], eb[5] = 1, 2
	aa := ether.NewAdapter(ka, ea)
	ab := ether.NewAdapter(kb, eb)
	ether.Connect(aa, ab)
	ether.NewDriver(ka, aa, ipa)
	ether.NewDriver(kb, ab, ipb)
	sa := NewStack(ka, ipa)
	sb := NewStack(kb, ipb)

	ln, _ := sb.Listen(80)
	total := 0
	env.Spawn("rx", &drainFrame{ln: ln, each: func(n int) { total += n }})
	var conn *ConnectOp
	env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { conn = sa.Connect(pr, 2, 80) },
		func(pr *sim.Proc) {
			if conn.Err != nil {
				t.Error(conn.Err)
				pr.Return()
				return
			}
			if conn.C.MSS() != ether.MTU-ip.HeaderLen-HeaderLen {
				t.Errorf("Ethernet MSS = %d", conn.C.MSS())
			}
			conn.C.SetNoDelay(true)
			conn.So.Send(pr, make([]byte, 10000))
		},
	))
	env.Run()
	if total != 10000 {
		t.Fatalf("received %d of 10000", total)
	}
	if sa.Stats.SegsOut < 7 { // ceil(10000/1460) = 7 data segments minimum
		t.Fatalf("only %d segments for 10000 bytes over Ethernet", sa.Stats.SegsOut)
	}
}

// TestRexmtGiveUpAfterPeerVanishes pins BSD's TCP_MAXRXTSHIFT
// behaviour (at this simulation's raised threshold): when the peer's
// PCB disappears without an RST — here torn down silently, the way an
// expired TIME_WAIT entry vanishes — the sender's retransmissions go
// unanswered, and after maxRexmtShift backed-off timeouts the
// connection drops with ErrTimeout instead of probing forever. The
// event queue must fully drain: before the give-up existed this
// scenario kept the simulation alive eternally at maxRTO intervals.
func TestRexmtGiveUpAfterPeerVanishes(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var serverConn *Conn
	var accept *AcceptOp
	p.env.Spawn("server", sim.Steps(
		func(pr *sim.Proc) { accept = ln.Accept(pr) },
		func(pr *sim.Proc) { serverConn = accept.C },
	))
	var conn *ConnectOp
	p.env.Spawn("client", sim.Steps(
		func(pr *sim.Proc) { conn = p.sa.Connect(pr, 2, 80) },
	))
	p.env.Run()
	if conn.Err != nil || serverConn == nil {
		t.Fatalf("handshake failed: %v", conn.Err)
	}
	clientConn := conn.C

	// The peer vanishes silently: no RST, no FIN, just no PCB.
	serverConn.drop(nil)

	var send *sock.SendOp
	p.env.Spawn("tx", sim.Steps(
		func(pr *sim.Proc) { send = clientConn.Socket().Send(pr, []byte("hello?")) },
	))
	p.env.Run()

	if clientConn.State() != StateClosed {
		t.Errorf("client state %v after give-up, want CLOSED", clientConn.State())
	}
	if clientConn.Socket().Err != ErrTimeout {
		t.Errorf("socket error %v, want ErrTimeout", clientConn.Socket().Err)
	}
	_ = send
	if _, ok := p.env.NextEventAt(); ok {
		t.Error("events still pending after the connection gave up")
	}
}

// TestRTOBackoffSaturates checks the backoff shift saturates at maxRTO
// instead of overflowing: at maxRexmtShift 32 a raw base<<shift wraps
// int64 negative (the pre-first-sample base of 3s overflows at shift
// 22), and the minRTO clamp would then fire the slowest, most
// backed-off retries 64x faster than modeled.
func TestRTOBackoffSaturates(t *testing.T) {
	c := &Conn{}
	for shift := uint(0); shift <= maxRexmtShift; shift++ {
		c.rexmtShift = shift
		if d := c.rto(); d < minRTO || d > maxRTO {
			t.Fatalf("shift %d: rto %v outside [%v, %v]", shift, d, minRTO, maxRTO)
		}
	}
	c.rexmtShift = maxRexmtShift
	if d := c.rto(); d != maxRTO {
		t.Fatalf("rto at max shift = %v, want %v", d, maxRTO)
	}
}
