// Lossy: checksum elimination under cell loss — the paper's §4.2 system
// argument exercised end to end.
//
// The paper argues the TCP checksum can be eliminated on local-area ATM
// because the AAL3/4 layer already detects lost and corrupted cells, and
// TCP's retransmission provides recovery; the checksum adds latency but
// catches almost nothing the CRC does not. This example injects random
// cell loss, runs echoes with the checksum on and off, and shows both
// configurations deliver every byte intact — while the no-checksum runs
// are consistently faster.
//
// Run with: go run ./examples/lossy
package main

import (
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/lab"
)

func run(mode cost.ChecksumMode, lossRate float64) (median, mean float64, drops, reasmErrs, rexmt int64) {
	cfg := lab.Config{
		Link:         lab.LinkATM,
		Mode:         mode,
		CellLossRate: lossRate,
		Seed:         1994,
	}
	l := lab.New(cfg)
	res, err := l.RunEcho(1400, 200, 5)
	if err != nil {
		log.Fatal(err)
	}
	drops = l.Client.ATMAdapter.CellsDropped + l.Server.ATMAdapter.CellsDropped
	reasmErrs = l.Client.ATMDriver.ReassemblyErrors + l.Server.ATMDriver.ReassemblyErrors
	rexmt = l.Client.TCP.Stats.Retransmits + l.Server.TCP.Stats.Retransmits +
		l.Client.TCP.Stats.FastRetransmits + l.Server.TCP.Stats.FastRetransmits
	return res.MedianRTTMicros(), res.MeanRTTMicros(), drops, reasmErrs, rexmt
}

func main() {
	const loss = 0.0005 // one cell in two thousand
	fmt.Printf("1400-byte echo, 200 round trips, cell loss probability %.2f%%\n\n", loss*100)

	for _, mode := range []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone} {
		median, mean, drops, errs, rexmt := run(mode, loss)
		fmt.Printf("checksum=%s\n", mode)
		fmt.Printf("  median RTT               %8.1f µs (loss-free common case)\n", median)
		fmt.Printf("  mean RTT                 %8.1f µs (includes ~1s RTO stalls)\n", mean)
		fmt.Printf("  cells dropped            %8d\n", drops)
		fmt.Printf("  AAL3/4 cell-level errors %8d  <- loss detected below TCP\n", errs)
		fmt.Printf("  TCP retransmissions      %8d  <- recovery above it\n", rexmt)
		fmt.Println("  every echoed byte verified by the harness")
		fmt.Println()
	}

	fmt.Println("With a quiet fiber the checksum detects nothing the AAL misses;")
	fmt.Println("eliminating it trades no correctness for lower latency (§4.2).")
}
