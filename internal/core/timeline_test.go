package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/lab"
	"repro/internal/trace"
)

// TestTimelineStudyMatchesBreakdownTables is the acceptance gate for the
// per-packet attribution engine: at fixed seeds, re-deriving the
// breakdown tables from the measured per-packet event stream reproduces
// the span-based (cost-model-charged) tables exactly — every row and
// both totals, at small and multi-segment transfer sizes.
func TestTimelineStudyMatchesBreakdownTables(t *testing.T) {
	for _, size := range []int{4, 1400, 8000} {
		cfg := baseConfig()
		cfg.Seed = 1994
		r, err := RunTimelineStudy(cfg, size, 12, 4)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if r.MaxDeltaMicros != 0 {
			t.Errorf("size %d: packet-derived tables diverge from span-derived by %g µs\n%s",
				size, r.MaxDeltaMicros, r.Render())
		}
		if r.Packets == 0 || r.EventCount == 0 {
			t.Fatalf("size %d: empty trace (%d packets, %d events)",
				size, r.Packets, r.EventCount)
		}
		if r.Tx.Total <= 0 || r.Rx.Total <= 0 {
			t.Fatalf("size %d: degenerate totals tx=%g rx=%g",
				size, r.Tx.Total, r.Rx.Total)
		}
	}
}

// TestTimelineStudyEthernet runs the same agreement check on the
// comparison link, whose driver and wire events come from the LANCE
// model instead of the TCA-100.
func TestTimelineStudyEthernet(t *testing.T) {
	cfg := baseConfig()
	cfg.Link = lab.LinkEther
	cfg.Seed = 7
	r, err := RunTimelineStudy(cfg, 1400, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDeltaMicros != 0 {
		t.Fatalf("Ethernet divergence %g µs\n%s", r.MaxDeltaMicros, r.Render())
	}
}

// TestTracedEchoDeterministic asserts the packet trace itself is a pure
// function of the configuration and seed: two independently built and
// traced labs produce byte-identical timeline JSON.
func TestTracedEchoDeterministic(t *testing.T) {
	runOnce := func() []byte {
		cfg := baseConfig()
		cfg.Seed = 42
		cfg.PacketTrace = true
		l := lab.New(cfg)
		if _, err := l.RunEcho(200, 6, 2); err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(trace.BuildTimelines(l.PacketEvents()))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatal("traced runs differ at the same seed")
	}
	if len(a) < 100 {
		t.Fatalf("suspiciously small trace: %d bytes", len(a))
	}
}

// TestPacketTraceDoesNotPerturbTiming asserts the tracing engine's core
// bargain: arming per-packet events changes no virtual timestamp. The
// same configuration with and without PacketTrace yields identical
// round-trip samples.
func TestPacketTraceDoesNotPerturbTiming(t *testing.T) {
	run := func(traced bool) []float64 {
		cfg := baseConfig()
		cfg.Seed = 3
		cfg.PacketTrace = traced
		l := lab.New(cfg)
		res, err := l.RunEcho(1400, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res.RTTs))
		for i, v := range res.RTTs {
			out[i] = v.Micros()
		}
		return out
	}
	plain, traced := run(false), run(true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("iteration %d: untraced %g µs, traced %g µs", i, plain[i], traced[i])
		}
	}
}
