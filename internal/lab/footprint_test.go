package lab

import (
	"runtime"
	"testing"
)

// idleHeapBytes builds an idle nHosts fat-tree topology and returns the
// live heap it retains, measured as the HeapAlloc delta across the
// build. The lab is returned so the caller controls when it becomes
// garbage.
func idleHeapBytes(t *testing.T, nHosts int) (*Lab, uint64) {
	t.Helper()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	l := NewTopology(Config{Link: LinkATM, Fabric: FabricFatTree}, nHosts)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return l, m1.HeapAlloc - m0.HeapAlloc
}

// maxIdleHostBytes pins the per-host footprint of an idle topology. A
// host is a kernel, an IP/TCP/UDP stack, an adapter, and a driver —
// measured ~4 KiB before any traffic; the bound leaves ~4x headroom for
// runtime variation. What it has no headroom for is the eager-mesh
// regression this PR removed: a pre-installed full VC mesh costs
// O(hosts) per host (at 1024 hosts, ~100 KiB each just in transmit
// segmenters), which trips the bound by an order of magnitude.
const maxIdleHostBytes = 16 << 10

// TestIdleHostFootprint is the tentpole's memory contract: per-host cost
// of an idle topology is O(1) — no term that grows with the number of
// hosts. It measures the marginal bytes/host between a small and a large
// idle lab (subtracting out fixed overhead shared by both) and checks
// the large lab holds no per-pair state anywhere: switch tables, fabric
// routes, driver VC caches, and reassembler maps must all be empty
// until traffic creates them.
func TestIdleHostFootprint(t *testing.T) {
	small, smallBytes := idleHeapBytes(t, 64)
	runtime.KeepAlive(small)
	large, largeBytes := idleHeapBytes(t, 1024)

	perHost := (float64(largeBytes) - float64(smallBytes)) / float64(1024-64)
	t.Logf("idle footprint: %d hosts = %.1f MiB, marginal %.1f KiB/host",
		1024, float64(largeBytes)/(1<<20), perHost/(1<<10))
	if perHost > maxIdleHostBytes {
		t.Errorf("idle topology costs %.0f bytes/host, want <= %d — per-host state is growing with topology size",
			perHost, maxIdleHostBytes)
	}

	// Sparsity: nothing pairwise exists before traffic.
	if got := large.Fabric.TotalVCs(); got != 0 {
		t.Errorf("idle fabric holds %d switch VC entries, want 0", got)
	}
	if got := large.Fabric.NumRoutes(); got != 0 {
		t.Errorf("idle fabric holds %d routes, want 0", got)
	}
	for i, h := range large.Hosts {
		if h.ATMDriver.NumTxVCs() != 0 || h.ATMDriver.NumReassemblers() != 0 {
			t.Fatalf("idle host %d holds %d tx VCs, %d reassemblers; want 0",
				i, h.ATMDriver.NumTxVCs(), h.ATMDriver.NumReassemblers())
		}
	}
	runtime.KeepAlive(small)
	runtime.KeepAlive(large)
}

// TestFabricShapeGuardOnReset pins the testbed-reuse contract for routed
// fabrics: a warm lab can only be reset to a configuration with the same
// fabric shape — silently reusing a hub lab for a fat-tree trial would
// run the trial on the wrong wiring.
func TestFabricShapeGuardOnReset(t *testing.T) {
	l := NewTopology(Config{Link: LinkATM, Fabric: FabricHub}, 3)
	l.Env.Run() // drain startup events; Reset requires a quiet loop
	if err := l.Reset(Config{Link: LinkATM, Fabric: FabricFatTree}, 0); err == nil {
		t.Fatal("Reset accepted a fabric-shape change")
	}
	if err := l.Reset(Config{Link: LinkATM, Fabric: FabricHub, LeafPorts: 8}, 0); err == nil {
		t.Fatal("Reset accepted a leaf-port change")
	}
	if err := l.Reset(Config{Link: LinkATM, Fabric: FabricHub}, 0); err != nil {
		t.Fatalf("Reset rejected the matching shape: %v", err)
	}
}
