package atm

import (
	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FIFO capacities of the FORE TCA-100 (§1.1: "a memory mapped receive
// FIFO that stores up to 292 53-byte ATM cells, and a similar transmit
// FIFO that stores up to 36 cells").
const (
	TxFIFOCells = 36
	RxFIFOCells = 292
)

// RxDrainThreshold is the FIFO occupancy at which the adapter raises a
// receive interrupt even without a completed frame. Without it, a burst
// that overflows the FIFO and loses an end-of-frame cell would leave the
// FIFO permanently full and the driver permanently asleep; real adapters
// interrupt on occupancy thresholds for exactly this reason.
const RxDrainThreshold = 200

// cellSink is the far end of an adapter's fiber: either the peer adapter
// (the paper's switchless lab) or a switch port.
type cellSink interface {
	deliverCell(c Cell)
}

// cellQueue is a FIFO of cells with a head index, so popping neither
// shifts the backing array nor allocates: the array empties back to
// index zero whenever the queue drains, and compacts when the dead
// prefix dominates. It backs the adapter's FIFOs and in-flight queues.
type cellQueue struct {
	buf  []Cell
	head int
}

func (q *cellQueue) push(c Cell) { q.buf = append(q.buf, c) }

// reset empties the queue, retaining the backing array (cells are plain
// value arrays, so the dead tail holds no pointers).
func (q *cellQueue) reset() { q.buf, q.head = q.buf[:0], 0 }

func (q *cellQueue) len() int { return len(q.buf) - q.head }

func (q *cellQueue) pop() Cell {
	c := q.buf[q.head]
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf, q.head = q.buf[:0], 0
	case q.head >= 128 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
	return c
}

// Adapter models one TCA-100: the transmit FIFO feeding the wire and the
// receive FIFO filled from the wire. The transmit engine "starts reading
// from the transmit FIFO as soon as there is one complete cell in the
// FIFO" — there is no send doorbell; pushing a cell is the trigger.
type Adapter struct {
	K    *kern.Kernel
	link cellSink

	txCount       int      // cells currently in the transmit FIFO
	wireBusy      sim.Time // when the transmit engine finishes its current cell
	rxFIFO        cellQueue
	framesPending int        // frame-ending cells in the FIFO not yet consumed
	arrivals      []sim.Time // wire-arrival time of each pending frame end

	// txFIFO holds the cells awaiting the transmit engine and flight the
	// cells crossing the fiber. Together with cellOutFn/cellInFn — bound
	// once at construction — they let PushTx schedule both wire events
	// without allocating a closure per cell: the engine and the fiber
	// each drain their queue in FIFO order, which matches event order
	// because cell completion times are monotonic per adapter.
	txFIFO    cellQueue
	flight    cellQueue
	cellOutFn func()
	cellInFn  func()

	// cut, when set, marks the far end of this host's fiber — its switch
	// port — as living in another shard: PushTx stages each cell with the
	// cluster coordinator (scheduleAt = engine completion, at = far-end
	// arrival) instead of queueing it for local delivery, and cellOut
	// keeps only the FIFO accounting. See Port.SetCut.
	cut func(scheduleAt, at sim.Time, c Cell)

	// SpaceAvail is woken each time the transmit engine drains a cell,
	// unblocking a driver waiting for FIFO space.
	SpaceAvail *sim.WaitQueue
	// RxReady is woken when a frame-ending cell lands in the receive
	// FIFO: the adapter's receive interrupt.
	RxReady *sim.WaitQueue

	// LossRate drops each wire cell with this probability (fault
	// injection; the paper notes "the ATM network does not guarantee
	// freedom from cell loss").
	LossRate float64
	// DropNext forces the next wire cell to be lost, for deterministic
	// loss tests.
	DropNext bool
	// CorruptRate flips one random bit of each arriving cell with this
	// probability — link noise for the §4.2.1 error study. Header bits
	// are caught by the HEC, payload bits by the AAL3/4 CRC-10.
	CorruptRate float64

	// Link impairment layer, configured via SetImpairments: a
	// Gilbert–Elliott burst-loss chain and bounded cell reordering,
	// layered ahead of the Bernoulli LossRate knob. Both draw from
	// per-link RNGs seeded at configuration, never the environment's
	// stream, so enabling them perturbs no other random draw.
	ge           sim.GEChain
	reorderRate  float64
	reorderDepth int
	impRNG       sim.RNG
	held         Cell // cell held back for reordering
	heldValid    bool
	heldLeft     int    // deliveries remaining before the held cell is released
	heldGen      uint64 // hold generation, so a stale flush timer no-ops
	heldFlushFn  func(uint64)

	// down marks the host's access link failed (fault injection): every
	// arriving cell is dropped at the adapter until the link recovers.
	// Cells already accepted into the FIFOs stay parked — a link outage
	// loses wire traffic, not adapter memory — and the disarmed cost is
	// one boolean test on the receive path.
	down bool

	// Counters.
	CellsSent      int64
	CellsDropped   int64 // lost on the wire or to a full receive FIFO
	CellsCorrupted int64
	RxOverflows    int64
	GEDrops        int64 // subset of CellsDropped killed by the burst-loss chain
	CellsReordered int64
	DownDrops      int64 // subset of CellsDropped killed by link down-state
}

// NewAdapter returns an adapter attached to the given host kernel.
func NewAdapter(k *kern.Kernel) *Adapter {
	a := &Adapter{
		K:          k,
		SpaceAvail: k.Env.NewWaitQueue(k.Name + ".atm.space"),
		RxReady:    k.Env.NewWaitQueue(k.Name + ".atm.rx"),
	}
	// Bound once so the per-cell wire events reuse them (see PushTx).
	a.cellOutFn = a.cellOut
	a.cellInFn = a.cellIn
	a.heldFlushFn = a.heldFlush
	return a
}

// Reset returns the adapter to its just-constructed state for testbed
// reuse: FIFOs and in-flight queues emptied (retaining their backing
// arrays), the transmit engine idle at time zero, fault-injection knobs
// back to default, counters cleared. The wait queues survive with the
// driver's service process still parked on RxReady — part of the
// topology, not the trial.
func (a *Adapter) Reset() {
	a.txCount = 0
	a.wireBusy = 0
	a.rxFIFO.reset()
	a.txFIFO.reset()
	a.flight.reset()
	a.framesPending = 0
	a.arrivals = a.arrivals[:0]
	a.LossRate, a.DropNext, a.CorruptRate = 0, false, 0
	a.ge = sim.GEChain{}
	a.reorderRate, a.reorderDepth = 0, 0
	a.heldValid, a.heldLeft = false, 0
	a.down = false
	a.CellsSent, a.CellsDropped, a.CellsCorrupted, a.RxOverflows = 0, 0, 0, 0
	a.GEDrops, a.CellsReordered, a.DownDrops = 0, 0, 0
}

// SetDown flips the access link's fault state: while down, every cell
// arriving over the fiber is dropped before the impairment layer. Both
// ends of a link go down together (the lab flips the peer adapter or
// switch port), so the outage is symmetric.
func (a *Adapter) SetDown(down bool) { a.down = down }

// Down reports the link's fault state.
func (a *Adapter) Down() bool { return a.down }

// SetImpairments configures the link impairment layer: a Gilbert–Elliott
// burst-loss chain (p) and bounded reordering (each arriving cell is
// held back past the next depth deliveries with probability rate). Both
// are seeded per link from seed; a zero GEParams and zero rate disable
// the layer entirely, leaving the receive path byte-identical to an
// unimpaired adapter.
func (a *Adapter) SetImpairments(p sim.GEParams, rate float64, depth int, seed uint64) {
	a.ge.Init(p, seed)
	a.reorderRate = rate
	if depth <= 0 {
		depth = 1
	}
	a.reorderDepth = depth
	a.impRNG = *sim.NewRNG(seed ^ 0x5bf03635aca3c1ed)
	a.heldValid, a.heldLeft = false, 0
}

// cellOut fires when the transmit engine finishes clocking one cell into
// the wire: free the FIFO slot, wake any driver blocked on space, and
// start the cell's propagation across the fiber. When the fiber is cut
// at a shard boundary the cell was already staged by PushTx, so only the
// FIFO accounting remains.
func (a *Adapter) cellOut() {
	a.txCount--
	a.SpaceAvail.WakeAll()
	if a.cut != nil {
		return
	}
	a.flight.push(a.txFIFO.pop())
	a.K.Env.After(a.K.Cost.ATMPropagation, "atm.cellin", a.cellInFn)
}

// SetCut diverts this adapter's transmit fiber across a shard boundary
// (see Port.SetCut): staged times are exactly the wire events a serial
// run would schedule, so the cut is invisible to simulated time.
func (a *Adapter) SetCut(stage func(scheduleAt, at sim.Time, c Cell)) {
	a.cut = stage
}

// InjectCell delivers a cell that crossed a shard boundary into this
// adapter as if it had just arrived over the fiber.
func (a *Adapter) InjectCell(c Cell) { a.receive(c) }

// cellIn fires when a cell's propagation delay elapses: deliver it to
// the far end of the fiber.
func (a *Adapter) cellIn() {
	a.link.deliverCell(a.flight.pop())
}

// Connect joins two adapters with a duplex fiber — the switchless
// configuration of the paper's lab. Topologies with more than two hosts
// attach each adapter to a Switch port instead.
func Connect(a, b *Adapter) {
	a.link = b
	b.link = a
}

// deliverCell implements cellSink: a cell arriving over the fiber.
func (a *Adapter) deliverCell(c Cell) { a.receive(c) }

// CellTime returns the wire occupancy of one cell at the model's TAXI
// link rate.
func (a *Adapter) CellTime() sim.Time {
	return cost.WireTime(CellSize, a.K.Cost.ATMLinkBitsPS)
}

// TxSpace returns the free cell slots in the transmit FIFO.
func (a *Adapter) TxSpace() int { return TxFIFOCells - a.txCount }

// PushTx places one cell in the transmit FIFO. The caller (the driver)
// must have verified TxSpace; pushing into a full FIFO panics because on
// the real hardware it would corrupt the frame. The cell's two wire
// events (engine completion, far-end arrival) reuse the adapter's bound
// callbacks and FIFO queues, so transmission allocates nothing per cell.
func (a *Adapter) PushTx(c Cell) {
	if a.txCount >= TxFIFOCells {
		panic("atm: transmit FIFO overflow")
	}
	a.txCount++
	env := a.K.Env
	start := env.Now()
	if a.wireBusy > start {
		start = a.wireBusy
	}
	end := start + a.CellTime()
	a.wireBusy = end
	a.CellsSent++
	if a.cut != nil {
		// Far end lives in another shard: stage the delivery now with
		// the serial run's wire times; cellOut keeps the accounting.
		a.cut(end, end+a.K.Cost.ATMPropagation, c)
	} else {
		a.txFIFO.push(c)
	}
	env.At(end, "atm.cellout", a.cellOutFn)
}

// receive handles a cell arriving from the wire: the impairment layer
// (burst loss, then bounded reordering) runs first, then accept hands
// surviving cells to the FIFO. With no impairments configured the path
// is a direct call to accept — byte-identical to an unimpaired adapter.
func (a *Adapter) receive(c Cell) {
	if a.down {
		a.CellsDropped++
		a.DownDrops++
		return
	}
	if a.ge.Enabled() && a.ge.Drop() {
		a.CellsDropped++
		a.GEDrops++
		return
	}
	if a.reorderRate > 0 {
		if a.heldValid {
			// A cell is being held back: this arrival overtakes it, and
			// the held cell is released once its countdown expires.
			a.heldLeft--
			if a.heldLeft <= 0 {
				held := a.held
				a.heldValid = false
				a.accept(c)
				a.accept(held)
				return
			}
		} else if a.impRNG.Bool(a.reorderRate) {
			a.held = c
			a.heldValid = true
			a.heldLeft = a.reorderDepth
			a.heldGen++
			a.CellsReordered++
			// Backstop against stranding: if the held cell is the link's
			// last traffic, no later arrival will ever decrement the
			// countdown, so a timer releases it once the wire has been
			// quiet longer than a full back-to-back countdown would take.
			// Arrivals that complete the countdown first leave the timer
			// to no-op on a stale generation.
			wait := sim.Time(a.reorderDepth+1) * a.CellTime()
			a.K.Env.AfterArg(wait, "atm.reorder.flush", a.heldFlushFn, a.heldGen)
			return
		}
	}
	a.accept(c)
}

// heldFlush fires when a held cell's release timer elapses: if the hold
// is still pending (same generation, not released by later arrivals),
// deliver the cell rather than strand it as silent uncounted loss.
func (a *Adapter) heldFlush(gen uint64) {
	if !a.heldValid || gen != a.heldGen {
		return
	}
	a.heldValid = false
	a.accept(a.held)
}

// accept runs the adapter's legacy receive path: the deterministic and
// Bernoulli fault knobs, then FIFO admission and the frame-end
// interrupt.
func (a *Adapter) accept(c Cell) {
	if a.DropNext {
		a.DropNext = false
		a.CellsDropped++
		return
	}
	if a.LossRate > 0 && a.K.Env.RNG().Bool(a.LossRate) {
		a.CellsDropped++
		return
	}
	if a.CorruptRate > 0 && a.K.Env.RNG().Bool(a.CorruptRate) {
		bit := a.K.Env.RNG().Intn(CellSize * 8)
		c[bit/8] ^= 1 << (bit % 8)
		a.CellsCorrupted++
	}
	if a.rxFIFO.len() >= RxFIFOCells {
		a.RxOverflows++
		a.CellsDropped++
		return
	}
	a.rxFIFO.push(c)
	if IsFrameEnd(&c) {
		// Frame-ending cell: record the paper's receive-measurement
		// origin ("the arrival of the last group of ATM cells
		// comprising the last TCP segment") and raise the interrupt.
		// The arrival time queues alongside framesPending so the driver
		// can stamp the completed datagram's wire-arrival event.
		a.framesPending++
		a.arrivals = append(a.arrivals, a.K.Env.Now())
		a.K.Trace.Mark(trace.MarkFrameArrival, a.K.Env.Now())
		a.RxReady.Wake()
	} else if a.rxFIFO.len() >= RxDrainThreshold {
		// Occupancy interrupt: make the driver drain before overflow.
		a.RxReady.Wake()
	}
}

// IsFrameEnd reports whether the cell's segment type terminates an AAL3/4
// frame (EOM or SSM). The adapter interrupts per frame, not per cell.
func IsFrameEnd(c *Cell) bool {
	st := c.Payload()[0] >> 6
	return st == segEOM || st == segSSM
}

// FramesPending returns the number of complete frames whose cells are
// waiting in the receive FIFO.
func (a *Adapter) FramesPending() int { return a.framesPending }

// ConsumeFrameEnd is called by the driver when it pops a frame-ending
// cell, balancing the count incremented on arrival. It returns the
// virtual time that cell arrived from the wire — the receive-side
// measurement origin for the frame it terminates.
func (a *Adapter) ConsumeFrameEnd() sim.Time {
	a.framesPending--
	if a.framesPending < 0 {
		panic("atm: frame-pending underflow")
	}
	at := a.arrivals[0]
	copy(a.arrivals, a.arrivals[1:])
	a.arrivals = a.arrivals[:len(a.arrivals)-1]
	return at
}

// TxIdleAt returns the time the transmit engine finishes clocking out
// everything pushed so far — after the final cell of a frame is pushed,
// the instant that frame's last bit leaves for the wire.
func (a *Adapter) TxIdleAt() sim.Time { return a.wireBusy }

// RxAvail returns the number of cells waiting in the receive FIFO.
func (a *Adapter) RxAvail() int { return a.rxFIFO.len() }

// PopRx removes and returns the oldest cell in the receive FIFO.
func (a *Adapter) PopRx() (Cell, bool) {
	if a.rxFIFO.len() == 0 {
		return Cell{}, false
	}
	return a.rxFIFO.pop(), true
}
