// Command tcplat runs round-trip latency experiments on the simulated
// testbed: the echo benchmark of §1.2 under a chosen link, checksum
// mode, header-prediction setting, and transfer size — or a whole grid
// of them sharded across a worker pool.
//
// Examples:
//
//	tcplat -size 4                         # baseline ATM, 4-byte echo
//	tcplat -link ether -size 1400          # Ethernet comparison point
//	tcplat -mode none -size 8000           # checksum eliminated
//	tcplat -nopred -size 200               # header prediction disabled
//	tcplat -sweep                          # all paper sizes at once
//	tcplat -grid paper -parallel 8         # the paper's full grid, 8 workers
//	tcplat -grid ext -json                 # beyond-paper dimensions, JSON out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcplat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tcplat", flag.ContinueOnError)
	var (
		size     = fs.Int("size", 4, "transfer size in bytes")
		link     = fs.String("link", "atm", "link type: atm or ether")
		mode     = fs.String("mode", "standard", "checksum mode: standard, integrated, or none")
		noPred   = fs.Bool("nopred", false, "disable header prediction (PCB cache + fast path)")
		hash     = fs.Bool("hashpcb", false, "use the hash-table PCB organization")
		pcbs     = fs.Int("pcbs", 0, "extra idle PCBs inserted ahead of the benchmark connection")
		loss     = fs.Float64("loss", 0, "ATM cell loss probability")
		mtu      = fs.Int("mtu", 0, "MTU override (0 = link default)")
		sockbuf  = fs.Int("sockbuf", 0, "socket buffer high-water mark (0 = default)")
		iters    = fs.Int("iters", 100, "measured iterations")
		warmup   = fs.Int("warmup", 8, "warm-up iterations")
		seed     = fs.Uint64("seed", 0, "base RNG seed (single run: the simulation seed; grids: per-cell derivation base)")
		sweep    = fs.Bool("sweep", false, "run every paper transfer size")
		grid     = fs.String("grid", "", "run a predefined grid: paper or ext")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	// Predefined grids fix every configuration dimension themselves;
	// reject per-cell flags that would otherwise be silently ignored.
	if *grid != "" {
		var conflict []string
		cellFlags := map[string]bool{
			"size": true, "link": true, "mode": true, "nopred": true,
			"hashpcb": true, "pcbs": true, "loss": true, "mtu": true,
			"sockbuf": true, "sweep": true,
		}
		fs.Visit(func(f *flag.Flag) {
			if cellFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-grid %s fixes the cell configuration; remove %s",
				*grid, strings.Join(conflict, ", "))
		}
	}

	// The smallest useful MTU must hold the IP and TCP headers plus one
	// data byte; below that the stack cannot form a segment.
	if *mtu != 0 && *mtu < lab.MinMTU {
		return fmt.Errorf("-mtu %d too small (need 0 or >= %d)", *mtu, lab.MinMTU)
	}
	if *sockbuf < 0 {
		return fmt.Errorf("-sockbuf must be >= 0")
	}

	cfg := lab.Config{
		DisablePrediction: *noPred,
		HashPCBs:          *hash,
		ExtraPCBs:         *pcbs,
		CellLossRate:      *loss,
		MTU:               *mtu,
		SockBuf:           *sockbuf,
		Seed:              *seed,
	}
	switch *link {
	case "atm":
		cfg.Link = lab.LinkATM
	case "ether":
		cfg.Link = lab.LinkEther
	default:
		return fmt.Errorf("unknown link %q", *link)
	}
	switch *mode {
	case "standard":
		cfg.Mode = cost.ChecksumStandard
	case "integrated":
		cfg.Mode = cost.ChecksumIntegrated
	case "none":
		cfg.Mode = cost.ChecksumNone
	default:
		return fmt.Errorf("unknown checksum mode %q", *mode)
	}
	// An override at or above the link's native MTU would be silently
	// ignored by the driver while still appearing in the cell label.
	if *mtu != 0 && *mtu >= lab.MaxMTU(cfg.Link) {
		return fmt.Errorf("-mtu %d not below the %s native MTU %d (omit -mtu for the default)",
			*mtu, cfg.Link, lab.MaxMTU(cfg.Link))
	}

	// Build the trial list: a predefined grid, the paper's size sweep of
	// the flag-selected configuration, or a single cell.
	var trials []runner.EchoTrial
	switch *grid {
	case "paper":
		trials = runner.PaperGrid(core.Sizes, *iters, *warmup).Trials()
	case "ext":
		trials = runner.ExtendedGrid(*iters, *warmup).Trials()
	case "":
		sizes := []int{*size}
		if *sweep {
			sizes = core.Sizes
		}
		for _, s := range sizes {
			trials = append(trials, runner.EchoTrial{
				Label:      runner.TrialLabel(cfg, s),
				Cfg:        cfg,
				Size:       s,
				Iterations: *iters,
				Warmup:     *warmup,
			})
		}
	default:
		return fmt.Errorf("unknown grid %q (want paper or ext)", *grid)
	}

	ropts := runner.Options{Workers: *parallel}
	if *grid != "" {
		// For grids the seed is a derivation base, not a shared
		// simulation seed.
		ropts.BaseSeed = *seed
	}
	outs, err := runner.RunEchoSweep(context.Background(), trials, ropts)
	if err != nil {
		return err
	}
	for _, o := range outs {
		if o.Error != "" {
			return fmt.Errorf("cell %s: %s", o.Label, o.Error)
		}
	}

	if *jsonOut {
		b, err := json.MarshalIndent(outs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
	title := fmt.Sprintf("Round-trip latency (%d cells, %d iterations each)",
		len(outs), *iters)
	fmt.Fprint(w, runner.RenderEchoOutcomes(title, outs))
	return nil
}
