// Bulk: unidirectional transfer, the workload header prediction was
// designed for — and the contrast with the RPC example.
//
// The sender streams data one way; the receiver sees pure in-sequence
// data segments (fast path case b), the sender sees pure ACKs (case a).
// The example also demonstrates the famous TCP-over-ATM effect this
// substrate reproduces: the receive path processes cells at ~10 µs each
// while the 140 Mb/s TAXI wire delivers one every ~3 µs, so large bursts
// overflow the 292-cell receive FIFO, lose cells, and force TCP loss
// recovery (the Romanow/Floyd problem, contemporary with the paper).
//
// Run with: go run ./examples/bulk
package main

import (
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcp"
)

// sinkFrame drains the connection until total bytes have arrived, EOF,
// or error — a hand-rolled run-to-completion frame, the shape every
// simulated process takes under the continuation scheduler.
type sinkFrame struct {
	ln       *tcp.Listener
	total    int
	received *int

	pc     int
	so     *sock.Socket
	buf    []byte
	accept *tcp.AcceptOp
	recv   *sock.RecvOp
}

func (f *sinkFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // accept the one connection
			f.pc = 1
			f.accept = f.ln.Accept(p)
			return
		case 1: // read loop head
			if f.so == nil {
				f.so = f.accept.So
				f.buf = make([]byte, 8192)
			}
			if *f.received >= f.total {
				p.Return()
				return
			}
			f.pc = 2
			f.recv = f.so.Recv(p, f.buf)
			return
		case 2: // fold in one read
			if f.recv.Err != nil || f.recv.N == 0 {
				p.Return()
				return
			}
			*f.received += f.recv.N
			f.pc = 1
		}
	}
}

func main() {
	const total = 500 * 1000 // half a megabyte, one direction

	cfg := lab.Config{Link: lab.LinkATM}
	l := lab.New(cfg)

	ln, err := l.Server.TCP.Listen(9000)
	if err != nil {
		log.Fatal(err)
	}
	var received int
	l.Env.Spawn("sink", &sinkFrame{ln: ln, total: total, received: &received})

	// The source is straight-line: connect, one big send, close. Each
	// step ends with its blocking call in tail position, so sim.Steps
	// strings them together without a hand-rolled program counter.
	var start, end sim.Time
	var conn *tcp.ConnectOp
	var send *sock.SendOp
	var so *sock.Socket
	l.Env.Spawn("source", sim.Steps(
		func(p *sim.Proc) {
			conn = l.Client.TCP.Connect(p, lab.ServerAddr, 9000)
		},
		func(p *sim.Proc) {
			if conn.Err != nil {
				log.Fatal(conn.Err)
			}
			so = conn.So
			conn.C.SetNoDelay(true)
			payload := make([]byte, total)
			l.Env.RNG().Fill(payload)
			start = l.Env.Now()
			send = so.Send(p, payload)
		},
		func(p *sim.Proc) {
			if send.Err != nil {
				log.Fatal(send.Err)
			}
			end = l.Env.Now()
			so.Close(p)
		},
	))
	l.Env.Run()

	if received != total {
		log.Fatalf("received %d of %d bytes", received, total)
	}
	elapsed := end - start
	mbps := float64(total) * 8 / (float64(elapsed) / 1e9) / 1e6

	cs, ss := l.Client.TCP.Stats, l.Server.TCP.Stats
	fmt.Printf("Transferred %d bytes in %.1f ms: %.1f Mb/s\n", total, elapsed.Millis(), mbps)
	fmt.Println()
	fmt.Println("Header prediction on unidirectional traffic:")
	fmt.Printf("  receiver fast path (data) %6d segments\n", ss.FastPathData)
	fmt.Printf("  sender fast path (ACK)    %6d segments\n", cs.FastPathAck)
	fmt.Printf("  slow path (both hosts)    %6d segments\n", cs.SlowPath+ss.SlowPath)
	fmt.Println()
	fmt.Println("TCP-over-ATM cell loss at the receive FIFO:")
	fmt.Printf("  cells dropped             %6d\n", l.Server.ATMAdapter.CellsDropped)
	fmt.Printf("  AAL3/4 reassembly errors  %6d\n", l.Server.ATMDriver.ReassemblyErrors)
	fmt.Printf("  TCP retransmissions       %6d (timer) + %d (fast retransmit)\n",
		cs.Retransmits, cs.FastRetransmits)
	fmt.Println()
	fmt.Println("The wire runs at 140 Mb/s but goodput is driver-limited: the")
	fmt.Println("receive path costs ~10 µs/cell of CPU, i.e. ~35 Mb/s sustained,")
	fmt.Println("and bursts beyond the 292-cell FIFO are lost — why 1994 TCP/ATM")
	fmt.Println("deployments saw throughput collapse without link flow control.")
}
