// Package rudp is a reliable-UDP rival transport: sequenced,
// acknowledged, retransmitted message delivery over the UDP stack, in
// the style of game-networking reliability layers. Each message rides
// one datagram; a compact header carries a 16-bit sequence number, the
// latest received sequence, and a 32-bit acknowledgement bitfield
// covering the 32 sequences before it, so one ack names up to 33
// packets and a single surviving reply repairs a whole burst of lost
// acks. Retransmission uses the same Jacobson/Karn estimator machinery
// as the TCP stack, so a latency comparison between the two transports
// isolates protocol structure — ordering, acking, retransmit policy —
// from timer tuning.
package rudp

import "fmt"

// MaxHeaderBytes is the worst-case encoded header size: prefix, 2-byte
// sequence, 2-byte ack, 4 ackBits bytes.
const MaxHeaderBytes = 9

// Prefix bits. Bits 0–4 are compression flags; 5–6 carry packet kind;
// bit 7 marks an absent ack.
const (
	prefAckDiff  = 1 << 0 // ack encoded as a 1-byte diff from seq
	prefBitsByte = 1 << 1 // ackBits byte i is 0xFF and elided (bits 1–4)
	prefData     = 1 << 5 // packet consumes Seq and carries payload
	prefFin      = 1 << 6 // packet consumes Seq and marks end of stream
	prefNoAck    = 1 << 7 // sender has received nothing; Ack/AckBits elided
)

// Header is one rudp packet header. Data and Fin packets consume Seq
// (the receiver orders and acknowledges them); pure acks carry the
// sender's next sequence without consuming it.
type Header struct {
	// Seq is this packet's sequence number (Data/Fin), or the sender's
	// next unconsumed sequence (pure ack).
	Seq uint16
	// Ack is the latest sequence received from the peer.
	Ack uint16
	// AckBits acknowledges earlier sequences: bit i set means Ack-1-i
	// was received.
	AckBits uint32
	// AckNone marks a header from a sender that has received nothing
	// yet: Ack and AckBits are meaningless (zero) and acknowledge no
	// sequence. Without it, Ack's zero value is indistinguishable from
	// "I received seq 0", and a retransmission sent before the first
	// reception would silently retire the peer's seq 0.
	AckNone bool
	// Data marks a payload-bearing packet; Fin marks the sender's end
	// of stream (ordered like a zero-length message).
	Data bool
	Fin  bool
}

// MarshaledSize returns the encoded size of h in bytes.
func (h Header) MarshaledSize() int {
	if h.AckNone {
		return 3 // prefix + seq; no ack state to encode
	}
	n := 3 // prefix + seq
	if uint16(h.Seq-h.Ack) <= 0xFF {
		n++
	} else {
		n += 2
	}
	for i := 0; i < 4; i++ {
		if byte(h.AckBits>>(8*i)) != 0xFF {
			n++
		}
	}
	return n
}

// Marshal encodes h into b (at least MaxHeaderBytes long) and returns
// the encoded length. The layout follows the game-networking idiom:
// a prefix byte of compression flags, then big-endian fields with the
// ack compressed to a 1-byte difference from seq when close, and each
// all-ones ackBits byte elided (a healthy link acks solid runs, so the
// common bitfield is mostly 0xFF).
func (h Header) Marshal(b []byte) int {
	prefix := byte(0)
	if h.Data {
		prefix |= prefData
	}
	if h.Fin {
		prefix |= prefFin
	}
	if h.AckNone {
		// Nothing received yet: the ack fields carry no information, so
		// the flag replaces them entirely.
		b[0] = prefix | prefNoAck
		b[1] = byte(h.Seq >> 8)
		b[2] = byte(h.Seq)
		return 3
	}
	diff := uint16(h.Seq - h.Ack)
	if diff <= 0xFF {
		prefix |= prefAckDiff
	}
	for i := 0; i < 4; i++ {
		if byte(h.AckBits>>(8*i)) == 0xFF {
			prefix |= prefBitsByte << i
		}
	}
	b[0] = prefix
	b[1] = byte(h.Seq >> 8)
	b[2] = byte(h.Seq)
	n := 3
	if diff <= 0xFF {
		b[n] = byte(diff)
		n++
	} else {
		b[n] = byte(h.Ack >> 8)
		b[n+1] = byte(h.Ack)
		n += 2
	}
	for i := 0; i < 4; i++ {
		if prefix&(prefBitsByte<<i) == 0 {
			b[n] = byte(h.AckBits >> (8 * i))
			n++
		}
	}
	return n
}

// ParseHeader decodes a header from the front of b, returning it and
// the number of bytes consumed.
func ParseHeader(b []byte) (Header, int, error) {
	if len(b) < 3 {
		return Header{}, 0, fmt.Errorf("rudp: header truncated (%d bytes)", len(b))
	}
	prefix := b[0]
	if prefix&prefNoAck != 0 && prefix&(prefAckDiff|0x1E) != 0 {
		// Ack-compression bits alongside the no-ack flag have no
		// canonical encoding.
		return Header{}, 0, fmt.Errorf("rudp: bad prefix %#02x", prefix)
	}
	h := Header{
		Seq:     uint16(b[1])<<8 | uint16(b[2]),
		AckNone: prefix&prefNoAck != 0,
		Data:    prefix&prefData != 0,
		Fin:     prefix&prefFin != 0,
	}
	n := 3
	if h.AckNone {
		return h, n, nil
	}
	if prefix&prefAckDiff != 0 {
		if len(b) < n+1 {
			return Header{}, 0, fmt.Errorf("rudp: header truncated at ack")
		}
		h.Ack = h.Seq - uint16(b[n])
		n++
	} else {
		if len(b) < n+2 {
			return Header{}, 0, fmt.Errorf("rudp: header truncated at ack")
		}
		h.Ack = uint16(b[n])<<8 | uint16(b[n+1])
		n += 2
	}
	for i := 0; i < 4; i++ {
		if prefix&(prefBitsByte<<i) != 0 {
			h.AckBits |= 0xFF << (8 * i)
			continue
		}
		if len(b) < n+1 {
			return Header{}, 0, fmt.Errorf("rudp: header truncated at ackBits")
		}
		h.AckBits |= uint32(b[n]) << (8 * i)
		n++
	}
	return h, n, nil
}
