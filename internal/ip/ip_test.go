package ip

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(totalLen uint16, id uint16, ttl, proto uint8, src, dst uint32) bool {
		h := Header{
			TotalLen: int(totalLen)%9000 + HeaderLen,
			ID:       id, TTL: ttl, Proto: proto, Src: src, Dst: dst,
		}
		b := make([]byte, HeaderLen)
		h.Marshal(b)
		got, err := Parse(b)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	h := Header{TotalLen: 100, ID: 7, TTL: 64, Proto: 6, Src: 1, Dst: 2}
	b := make([]byte, HeaderLen)
	h.Marshal(b)
	for i := 0; i < HeaderLen; i++ {
		if i == 0 {
			continue // version corruption caught by the version check
		}
		b[i] ^= 0xff
		if _, err := Parse(b); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
		b[i] ^= 0xff
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	b := make([]byte, HeaderLen)
	(&Header{TotalLen: 20}).Marshal(b)
	b[0] = 0x46 // IHL 6: options unsupported
	if _, err := Parse(b); err == nil {
		t.Error("options header accepted")
	}
}

// fakeIf is a loopback interface delivering to another stack.
type fakeIf struct {
	mtu  int
	peer *Stack
	sent int
}

func (f *fakeIf) Output(p *sim.Proc, m *mbuf.Mbuf) {
	f.sent++
	f.peer.Enqueue(m)
}
func (f *fakeIf) MTU() int     { return f.mtu }
func (f *fakeIf) Name() string { return "fake0" }

type capture struct {
	payloads [][]byte
	headers  []Header
}

func (c *capture) Input(p *sim.Proc, h Header, m *mbuf.Mbuf) {
	c.headers = append(c.headers, h)
	c.payloads = append(c.payloads, mbuf.Linearize(m))
}

func newTwoStacks(t *testing.T) (*sim.Env, *kern.Kernel, *Stack, *Stack, *capture) {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	sa := NewStack(ka, 0x0a000001)
	sb := NewStack(kb, 0x0a000002)
	fa := &fakeIf{mtu: 9188, peer: sb}
	fb := &fakeIf{mtu: 9188, peer: sa}
	sa.Attach(fa)
	sb.Attach(fb)
	cap := &capture{}
	sb.Register(ProtoTCP, cap)
	return env, ka, sa, sb, cap
}

func TestOutputInputRoundTrip(t *testing.T) {
	env, ka, sa, _, cap := newTwoStacks(t)
	payload := make([]byte, 777)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		rest := payload
		cur := m
		for {
			n := cur.Append(rest)
			rest = rest[n:]
			if len(rest) == 0 {
				break
			}
			next := ka.Pool.Alloc()
			cur.SetNext(next)
			cur = next
		}
		sa.Output(p, 0x0a000002, ProtoTCP, m)
	}))
	env.Run()
	if len(cap.payloads) != 1 {
		t.Fatalf("delivered %d datagrams", len(cap.payloads))
	}
	if !bytes.Equal(cap.payloads[0], payload) {
		t.Fatal("payload corrupted")
	}
	h := cap.headers[0]
	if h.Src != 0x0a000001 || h.Dst != 0x0a000002 || h.Proto != ProtoTCP {
		t.Fatalf("header fields wrong: %+v", h)
	}
	if h.TotalLen != len(payload)+HeaderLen {
		t.Fatalf("TotalLen = %d", h.TotalLen)
	}
}

func TestOutputMTUPanic(t *testing.T) {
	env, ka, sa, _, _ := newTwoStacks(t)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.AllocCluster()
		m.Append(make([]byte, 4096))
		m2 := ka.Pool.AllocCluster()
		m2.Append(make([]byte, 4096))
		m3 := ka.Pool.AllocCluster()
		m3.Append(make([]byte, 4096))
		m.SetNext(m2)
		m2.SetNext(m3)
		sa.Output(p, 0x0a000002, ProtoTCP, m)
	}))
	// The output frame runs inside the event loop, so the panic surfaces
	// from Run, not from the spawning closure.
	defer func() {
		if recover() == nil {
			t.Error("oversize datagram did not panic")
		}
	}()
	env.Run()
}

func TestInputDropsUnknownProto(t *testing.T) {
	env, ka, sa, sb, _ := newTwoStacks(t)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append([]byte{1, 2, 3})
		sa.Output(p, 0x0a000002, 250, m) // unregistered protocol
	}))
	env.Run()
	if sb.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", sb.Drops)
	}
}

func TestInputDropsCorruptHeader(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	s := NewStack(k, 1)
	s.Attach(&fakeIf{mtu: 9000, peer: s})
	s.Register(ProtoTCP, &capture{})
	m := k.Pool.Alloc()
	hdr := make([]byte, HeaderLen)
	(&Header{TotalLen: 23, TTL: 4, Proto: ProtoTCP, Src: 9, Dst: 1}).Marshal(hdr)
	hdr[13] ^= 0x55 // corrupt after checksum computation
	m.Append(hdr)
	m.Append([]byte{1, 2, 3})
	s.Enqueue(m)
	env.Run()
	if s.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", s.Drops)
	}
}

func TestInputTrimsPadding(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	s := NewStack(k, 1)
	s.Attach(&fakeIf{mtu: 9000, peer: s})
	cap := &capture{}
	s.Register(ProtoTCP, cap)
	m := k.Pool.Alloc()
	hdr := make([]byte, HeaderLen)
	(&Header{TotalLen: HeaderLen + 3, TTL: 4, Proto: ProtoTCP, Src: 9, Dst: 1}).Marshal(hdr)
	m.Append(hdr)
	m.Append([]byte{7, 8, 9})
	m.Append(make([]byte, 20)) // link-level padding
	s.Enqueue(m)
	env.Run()
	if len(cap.payloads) != 1 || !bytes.Equal(cap.payloads[0], []byte{7, 8, 9}) {
		t.Fatalf("padding not trimmed: %v", cap.payloads)
	}
}

func TestIPQLatencyCharged(t *testing.T) {
	env, ka, sa, sb, _ := newTwoStacks(t)
	sb.K.Trace.Enable()
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 30))
		sa.Output(p, 0x0a000002, ProtoTCP, m)
	}))
	env.Run()
	var ipq sim.Time
	for _, s := range sb.K.Trace.Spans() {
		if s.Layer == trace.LayerIPQ {
			ipq += s.Duration()
		}
	}
	if ipq != sb.K.Cost.SoftintDispatch {
		t.Fatalf("IPQ charge %v, want %v", ipq, sb.K.Cost.SoftintDispatch)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	env, ka, sa, _, cap := newTwoStacks(t)
	env.Spawn("tx", sim.LoopN(5, func(p *sim.Proc, i int) {
		m := ka.Pool.Alloc()
		m.Append([]byte{byte(i)})
		sa.Output(p, 0x0a000002, ProtoTCP, m)
	}))
	env.Run()
	if len(cap.payloads) != 5 {
		t.Fatalf("delivered %d", len(cap.payloads))
	}
	for i, pl := range cap.payloads {
		if pl[0] != byte(i) {
			t.Fatalf("reordered: %v", cap.payloads)
		}
	}
}

func TestIDsIncrement(t *testing.T) {
	env, ka, sa, _, cap := newTwoStacks(t)
	env.Spawn("tx", sim.LoopN(3, func(p *sim.Proc, i int) {
		m := ka.Pool.Alloc()
		m.Append([]byte{1})
		sa.Output(p, 0x0a000002, ProtoTCP, m)
	}))
	env.Run()
	if len(cap.headers) != 3 {
		t.Fatal("missing datagrams")
	}
	for i := 1; i < 3; i++ {
		if cap.headers[i].ID != cap.headers[i-1].ID+1 {
			t.Fatalf("IDs not incrementing: %v %v", cap.headers[i-1].ID, cap.headers[i].ID)
		}
	}
}
