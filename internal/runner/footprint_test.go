package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGoroutineFootprintInsideRun pins the run-to-completion scheduler's
// resource contract at its sharpest point: mid-simulation, with a 17-host
// fan-in topology holding ~33 simulated processes (16 clients, 16
// per-connection servers, one accept loop) parked and runnable, the
// process count must not show up in runtime.NumGoroutine. Under a
// goroutine-per-proc design this sample reads tens of goroutines higher.
func TestGoroutineFootprintInsideRun(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 3}, 17)
	before := runtime.NumGoroutine()
	during := -1
	l.Env.At(sim.Millisecond, "sample", func() { during = runtime.NumGoroutine() })
	if _, err := (workload.FanIn{Size: 200, Requests: 4, Warmup: 1}).Run(l); err != nil {
		t.Fatal(err)
	}
	if during < 0 {
		t.Fatal("sample event never fired; fan-in finished before 1ms of virtual time")
	}
	if during > before+2 {
		t.Fatalf("goroutines mid-run = %d vs %d before: simulated procs are backed by goroutines",
			during, before)
	}
}

// TestGoroutineFootprintDuringSweep is the same contract at sweep scale:
// the live goroutine count tracks the worker pool, never the number of
// simulated processes. Each sample below is taken while the other
// workers are inside env.Run with ~33 procs each, so a goroutine-backed
// proc design would push the count up by roughly procs×workers.
func TestGoroutineFootprintDuringSweep(t *testing.T) {
	const workers = 4
	before := runtime.NumGoroutine()

	var mu sync.Mutex
	maxDuring := 0
	sample := func() {
		n := runtime.NumGoroutine()
		mu.Lock()
		if n > maxDuring {
			maxDuring = n
		}
		mu.Unlock()
	}

	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Label: fmt.Sprintf("fanin%d", i),
			Run: func(context.Context, uint64) (any, error) {
				l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 9}, 17)
				_, err := (workload.FanIn{Size: 64, Requests: 4, Warmup: 1}).Run(l)
				sample()
				return nil, err
			},
		}
	}
	outs, err := Run(context.Background(), jobs, Options{
		Workers:  workers,
		Progress: func(done, total int) { sample() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := FirstError(outs); e != nil {
		t.Fatal(e)
	}
	// Budget: the pre-existing goroutines, one per worker, the collector,
	// and slack for the runtime's own background goroutines.
	limit := before + workers + 4
	if maxDuring > limit {
		t.Fatalf("goroutines peaked at %d (started at %d, %d workers): count scales with procs, not workers",
			maxDuring, before, workers)
	}
}
