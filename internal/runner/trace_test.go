package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/lab"
	"repro/internal/workload"
)

// tracedFanInTrials is a small traced fan-in sweep: four seeded cells,
// each building its own 5-host topology with per-packet tracing armed.
func tracedFanInTrials() []WorkloadTrial {
	var ts []WorkloadTrial
	for i := 0; i < 4; i++ {
		ts = append(ts, WorkloadTrial{
			Label: fmt.Sprintf("fanin/traced/t%d", i),
			Cfg:   lab.Config{Link: lab.LinkATM, PacketTrace: true},
			Hosts: 5,
			Gen:   workload.FanIn{Size: 64, Requests: 3, Warmup: 1},
		})
	}
	return ts
}

// TestTracedSweepParallelBitIdentical is the traced-sweep determinism
// gate: the same traced fan-in sweep at -parallel 1 and -parallel 8
// marshals to byte-identical span JSON, trace payloads included. Packet
// identity, event order, and timeline reconstruction must all be pure
// functions of (configuration, seed) — never of worker scheduling.
func TestTracedSweepParallelBitIdentical(t *testing.T) {
	run := func(workers int) []byte {
		outs, err := RunWorkloadSweep(context.Background(), tracedFanInTrials(),
			Options{Workers: workers, BaseSeed: 1994})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if o.Error != "" {
				t.Fatalf("trial %s: %s", o.Label, o.Error)
			}
			if o.Trace == nil || len(o.Trace.Packets) == 0 {
				t.Fatalf("trial %s: no trace attached", o.Label)
			}
		}
		blob, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("traced sweep JSON differs between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)",
			len(serial), len(parallel))
	}
}

// TestUntracedSweepCarriesNoTrace pins the opt-in contract: without
// PacketTrace the outcome JSON is unchanged (no trace field at all), so
// existing consumers see bit-identical output.
func TestUntracedSweepCarriesNoTrace(t *testing.T) {
	ts := tracedFanInTrials()[:1]
	ts[0].Cfg.PacketTrace = false
	outs, err := RunWorkloadSweep(context.Background(), ts, Options{Workers: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Error != "" {
		t.Fatal(outs[0].Error)
	}
	if outs[0].Trace != nil {
		t.Fatal("untraced trial carries a trace")
	}
	blob, err := json.Marshal(outs[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte(`"trace"`)) {
		t.Fatal("trace key present in untraced outcome JSON")
	}
}
