// Package repro reproduces "Latency Analysis of TCP on an ATM Network"
// (Wolman, Voelker, Thekkath; USENIX Winter 1994) as a deterministic
// discrete-event simulation of the paper's entire testbed: BSD 4.4 alpha
// TCP, the ULTRIX socket layer and mbufs, IP, the FORE TCA-100 ATM
// adapter with AAL3/4, a LANCE Ethernet, and the DECstation 5000/200 cost
// model the latencies are calibrated against.
//
// The library lives under internal/; see README.md for the layout, the
// quickstart, and how to regenerate each table and figure
// (paper-versus-measured output comes from cmd/tables),
// docs/ARCHITECTURE.md for the system design — the layer stack, sim
// engine, topology builder, workload engine, sweep engine, and the
// per-packet trace pipeline, with a diagram of a packet's life — and
// docs/METHODOLOGY.md for the measurement methodology: the exact
// command reproducing each published table, the §2.2 measurement
// windows, and the fixed-seed determinism contract. The benchmarks
// in bench_test.go regenerate every table and figure in the paper's
// evaluation, and internal/runner shards the experiment grid across a
// worker pool with bit-identical results at any worker count.
//
// Beyond the paper's two-host pair, internal/lab builds N-host
// topologies (a shared Ethernet segment or an output-queued ATM cell
// switch with a full virtual-channel mesh) and internal/workload drives
// them with pluggable traffic generators — echo, bulk transfer,
// request/response fan-in, and connection churn — driven from cmd/load
// and the fan-in/churn study in internal/core.
//
// The measurement pipeline is itself a subsystem: internal/trace
// records typed per-packet events at every layer crossing, joins them
// by on-wire identity into span trees, and exports Chrome trace_event
// JSON via cmd/pkttrace; core.RunTimelineStudy proves the per-packet
// view re-derives the paper's breakdown tables exactly.
package repro
