package atm

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
)

// DefaultSwitchLatency is the fixed per-cell forwarding latency of the
// switch fabric, in the range of early TAXI-based ATM switches (a few
// cell times).
const DefaultSwitchLatency = 5 * sim.Microsecond

// DefaultPortQueueCells bounds each output port's queue. Output-queued
// switches drop on egress congestion; the default is deep enough that
// the experiments only drop under deliberately oversubscribed fan-in.
const DefaultPortQueueCells = 1024

// vcKey identifies a virtual channel arriving at the switch: the ingress
// port and the VCI the cell carries.
type vcKey struct {
	port int
	vci  uint16
}

// vcRoute is the egress side of a VC table entry: the output port and
// the VCI the cell leaves with (ATM switches rewrite VCIs per hop).
type vcRoute struct {
	port int
	vci  uint16
}

// Switch is a simple output-queued ATM cell switch: any number of hosts
// attach through ports, and a VC table maps (ingress port, VCI) to
// (egress port, VCI). Each egress port paces cells onto its fiber at the
// link rate, so concurrent senders to one destination queue at that
// port — the fan-in contention point of a hub topology.
type Switch struct {
	env *sim.Env

	// Latency is the fixed fabric forwarding latency per cell.
	Latency sim.Time
	// PortQueueCells is the egress queue bound; cells arriving at a full
	// queue are dropped (and counted in CellsDropped).
	PortQueueCells int

	ports []*Port
	vc    map[vcKey]vcRoute

	// Counters.
	CellsSwitched int64
	CellsUnrouted int64
	CellsDropped  int64
	HECErrors     int64
}

// NewSwitch returns an empty switch scheduling on env.
func NewSwitch(env *sim.Env) *Switch {
	return &Switch{
		env:            env,
		Latency:        DefaultSwitchLatency,
		PortQueueCells: DefaultPortQueueCells,
		vc:             make(map[vcKey]vcRoute),
	}
}

// Reset returns the switch to its just-constructed state for testbed
// reuse: every port's egress pacing rewinds to idle at time zero with
// its queues emptied (retaining backing arrays), and the counters clear.
// The VC table and port attachments survive — they are the topology.
func (sw *Switch) Reset() {
	for _, p := range sw.ports {
		p.busy = 0
		p.queued = 0
		p.egress.reset()
		p.flight.reset()
	}
	sw.CellsSwitched, sw.CellsUnrouted, sw.CellsDropped, sw.HECErrors = 0, 0, 0, 0
}

// Port is one switch port: the fiber to a single attached adapter plus
// the egress queue pacing state.
type Port struct {
	sw      *Switch
	index   int
	adapter *Adapter

	busy   sim.Time // when the egress link finishes its current cell
	queued int      // cells committed to the egress queue

	// egress holds cells committed to the port's output pacing and
	// flight the cells crossing the fiber; outFn/inFn are bound once so
	// forwarding a cell schedules its two wire events without closure
	// allocations (egress completion times are monotonic per port, so
	// FIFO order matches event order).
	egress cellQueue
	flight cellQueue
	outFn  func()
	inFn   func()
}

// Index returns the port's number on the switch.
func (p *Port) Index() int { return p.index }

// AttachPort connects an adapter to a new port and returns its index.
func (sw *Switch) AttachPort(a *Adapter) int {
	p := &Port{sw: sw, index: len(sw.ports), adapter: a}
	p.outFn = p.cellOut
	p.inFn = p.cellIn
	sw.ports = append(sw.ports, p)
	a.link = p
	return p.index
}

// cellOut fires when the egress link finishes clocking one cell onto the
// port's fiber: release the queue slot and start the propagation delay.
func (p *Port) cellOut() {
	p.queued--
	p.flight.push(p.egress.pop())
	p.sw.env.After(p.adapter.K.Cost.ATMPropagation, "atmsw.cellin", p.inFn)
}

// cellIn fires when the cell reaches the attached adapter.
func (p *Port) cellIn() {
	p.adapter.receive(p.flight.pop())
}

// NumPorts returns the number of attached ports.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// AddVC installs a unidirectional VC table entry: cells arriving on
// inPort with inVCI leave outPort carrying outVCI.
func (sw *Switch) AddVC(inPort int, inVCI uint16, outPort int, outVCI uint16) {
	if inPort < 0 || inPort >= len(sw.ports) || outPort < 0 || outPort >= len(sw.ports) {
		panic(fmt.Sprintf("atm: VC %d:%d -> %d:%d references a missing port",
			inPort, inVCI, outPort, outVCI))
	}
	sw.vc[vcKey{inPort, inVCI}] = vcRoute{outPort, outVCI}
}

// deliverCell implements cellSink for a port: a cell arriving from the
// attached host enters the fabric.
func (p *Port) deliverCell(c Cell) { p.sw.forward(p, c) }

// forward looks the cell up in the VC table, rewrites the VCI, and
// queues it on the egress port. The egress link paces cells back to back
// at the link rate; the fabric adds its fixed latency up front.
func (sw *Switch) forward(from *Port, c Cell) {
	h, err := ParseHeader(&c)
	if err != nil {
		// Header corruption on the ingress fiber: the switch's own HEC
		// check discards the cell, surfacing later as a sequence gap.
		sw.HECErrors++
		return
	}
	route, ok := sw.vc[vcKey{from.index, h.VCI}]
	if !ok {
		sw.CellsUnrouted++
		return
	}
	out := sw.ports[route.port]
	if out.queued >= sw.PortQueueCells {
		sw.CellsDropped++
		return
	}
	h.VCI = route.vci
	h.Marshal(&c) // rewrites the VCI and recomputes the HEC

	env := sw.env
	start := env.Now() + sw.Latency
	if out.busy > start {
		start = out.busy
	}
	end := start + cost.WireTime(CellSize, out.adapter.K.Cost.ATMLinkBitsPS)
	out.busy = end
	out.queued++
	sw.CellsSwitched++
	out.egress.push(c)
	env.At(end, "atmsw.cellout", out.outFn)
}
