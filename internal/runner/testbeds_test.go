package runner

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/workload"
)

// TestTestbedsReuse pins the cache mechanics: a drained same-shape lab
// is reused, a different shape builds a new one, an undrained lab is
// never reused, and a nil cache always builds fresh.
func TestTestbedsReuse(t *testing.T) {
	drain := func(l *lab.Lab) {
		t.Helper()
		if _, err := l.RunEcho(4, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	tb := &Testbeds{}
	a := tb.Lab(lab.Config{Link: lab.LinkATM, Seed: 1}, 2)
	drain(a)
	b := tb.Lab(lab.Config{Link: lab.LinkATM, Mode: cost.ChecksumNone, Seed: 2}, 2)
	if a != b {
		t.Error("same-shape acquisition did not reuse the warm lab")
	}
	drain(b)
	c := tb.Lab(lab.Config{Link: lab.LinkEther, Seed: 3}, 2)
	if c == a {
		t.Error("different link kind handed back the same lab")
	}
	d := tb.Lab(lab.Config{Link: lab.LinkATM, Seed: 4}, 5)
	if d == a {
		t.Error("different host count handed back the same lab")
	}
	if tb.Built != 3 || tb.Reused != 1 {
		t.Errorf("built %d, reused %d; want 3 built, 1 reused", tb.Built, tb.Reused)
	}
	if got := tb.Lab(lab.Config{Link: lab.LinkATM, Seed: 5}, 2); got != a {
		t.Error("warm ATM pair lab was not reused on the third acquisition")
	}
	// The Ethernet lab was never run, so its spawn events are still
	// pending: reuse must refuse it and build fresh rather than strand
	// scheduled work.
	if got := tb.Lab(lab.Config{Link: lab.LinkEther, Seed: 6}, 2); got == c {
		t.Error("undrained lab was reused")
	}
	var nilTB *Testbeds
	if l := nilTB.Lab(lab.Config{Link: lab.LinkATM}, 2); l == nil {
		t.Error("nil Testbeds did not build a fresh lab")
	}
	if got := nilTB.Lab(lab.Config{Link: lab.LinkATM}, 1); len(got.Hosts) != 2 {
		t.Errorf("host floor not applied: %d hosts", len(got.Hosts))
	}
}

// TestTestbedsLeakGateFailsLoudly pins the CheckLeaks contract on the
// reuse path: a leaked mbuf chain must fail the next same-shape
// acquisition (a panic runOne converts into a labeled job error), not
// silently degrade into a cache miss.
func TestTestbedsLeakGateFailsLoudly(t *testing.T) {
	tb := &Testbeds{}
	cfg := lab.Config{Link: lab.LinkATM, CheckLeaks: true, Seed: 1}
	l := tb.Lab(cfg, 2)
	if _, err := l.RunEcho(4, 2, 0); err != nil {
		t.Fatal(err)
	}
	// Manufacture the leak the gate exists to catch.
	l.Hosts[0].Kern.Pool.Alloc()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("leaked chain did not fail the next acquisition")
		}
	}()
	tb.Lab(cfg, 2)
}

// TestEchoTrialReuseByteIdentical is the sweep-level reuse-determinism
// contract: the same grid cell run on a fresh testbed and on a testbed
// previously used for a DIFFERENT cell (different checksum mode, size,
// socket buffer, and seed) must serialize to byte-identical JSON.
func TestEchoTrialReuseByteIdentical(t *testing.T) {
	cell := EchoTrial{
		Label:      "cell-under-test",
		Cfg:        lab.Config{Link: lab.LinkATM},
		Size:       1400,
		Iterations: 8,
		Warmup:     2,
	}
	const seed = 424242

	fresh, err := runEchoTrial(nil, cell, seed)
	if err != nil {
		t.Fatal(err)
	}

	tb := &Testbeds{}
	other := EchoTrial{
		Label:      "unrelated-cell",
		Cfg:        lab.Config{Link: lab.LinkATM, Mode: cost.ChecksumNone, SockBuf: 4096},
		Size:       200,
		Iterations: 5,
		Warmup:     1,
	}
	if _, err := runEchoTrial(tb, other, 99); err != nil {
		t.Fatal(err)
	}
	reused, err := runEchoTrial(tb, cell, seed)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Reused != 1 {
		t.Fatalf("second trial did not reuse the warm lab (reused=%d)", tb.Reused)
	}

	fj, _ := json.Marshal(fresh)
	rj, _ := json.Marshal(reused)
	if string(fj) != string(rj) {
		t.Errorf("fresh vs reused outcome JSON differs:\nfresh:  %s\nreused: %s", fj, rj)
	}
}

// TestSweepReuseMatchesFreshPerTrial cross-checks the whole grid: every
// outcome of a sweep on the reuse path equals the outcome of the same
// trial run alone on a fresh testbed, at one worker and at several.
func TestSweepReuseMatchesFreshPerTrial(t *testing.T) {
	g := Grid{
		Modes:      []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone},
		Sizes:      []int{20, 1400, 8000},
		SockBufs:   []int{0, 4096},
		Iterations: 5,
		Warmup:     1,
	}
	trials := g.Trials()
	const base = 1994

	// The fresh-lab references are worker-independent; compute them once.
	fresh := make([]EchoOutcome, len(trials))
	for i, tr := range trials {
		v, err := runEchoTrial(nil, tr, SeedFor(base, i))
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = v.(EchoOutcome)
	}

	for _, workers := range []int{1, 3} {
		outs, err := RunEchoSweep(context.Background(), trials,
			Options{Workers: workers, BaseSeed: base})
		if err != nil {
			t.Fatal(err)
		}
		for i, out := range outs {
			if out.Error != "" {
				t.Fatalf("workers=%d cell %s: %s", workers, out.Label, out.Error)
			}
			want := fresh[i]
			want.Label, want.Index, want.Seed = out.Label, out.Index, out.Seed
			fj, _ := json.Marshal(want)
			rj, _ := json.Marshal(out)
			if string(fj) != string(rj) {
				t.Errorf("workers=%d cell %s: reuse-path outcome differs from fresh-lab outcome\nfresh: %s\nsweep: %s",
					workers, out.Label, fj, rj)
			}
		}
	}
}

// TestWorkloadTrialReuseByteIdentical extends the contract to the
// workload engine: a fan-in cell run on a testbed previously used for a
// different workload and host count must match a fresh run exactly.
func TestWorkloadTrialReuseByteIdentical(t *testing.T) {
	cell := WorkloadTrial{
		Label: "fanin-cell",
		Cfg:   lab.Config{Link: lab.LinkATM, HashPCBs: true},
		Hosts: 5,
		Gen:   workload.FanIn{Size: 200, Requests: 4, Warmup: 1},
	}
	const seed = 777

	fresh, err := runWorkloadTrial(nil, cell, seed)
	if err != nil {
		t.Fatal(err)
	}

	tb := &Testbeds{}
	other := WorkloadTrial{
		Label: "churn-cell",
		Cfg:   lab.Config{Link: lab.LinkATM},
		Hosts: 5,
		Gen:   workload.Churn{Conns: 3, Size: 64},
	}
	if _, err := runWorkloadTrial(tb, other, 3); err != nil {
		t.Fatal(err)
	}
	reused, err := runWorkloadTrial(tb, cell, seed)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Reused != 1 {
		t.Fatalf("workload trial did not reuse the warm topology (reused=%d)", tb.Reused)
	}

	fj, _ := json.Marshal(fresh)
	rj, _ := json.Marshal(reused)
	if string(fj) != string(rj) {
		t.Errorf("fresh vs reused workload outcome JSON differs:\nfresh:  %s\nreused: %s", fj, rj)
	}
}
