package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1_ATMvsEthernet-8   	       1	  51724260 ns/op	       470.1 sim-µs/rtt4B-atm	       894.7 sim-µs/rtt4B-ether
BenchmarkTable4_HeaderPrediction-8	       1	  49000000 ns/op	         3.100 %improvement-4B
BenchmarkSweepParallel-8          	       1	 860884515 ns/op	        40.00 cells	         8.000 workers
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTable1_ATMvsEthernet/sim-µs/rtt4B-atm":   470.1,
		"BenchmarkTable1_ATMvsEthernet/sim-µs/rtt4B-ether": 894.7,
		"BenchmarkTable4_HeaderPrediction/%improvement-4B": 3.1,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestWriteThenCompareClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	var out bytes.Buffer
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(sampleBench, "470.1", "520.3", 1)
	var out bytes.Buffer
	err := run([]string{"-baseline", path}, strings.NewReader(drifted), &out)
	if err == nil {
		t.Fatalf("drift not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") ||
		!strings.Contains(out.String(), "rtt4B-atm") {
		t.Fatalf("drift report missing:\n%s", out.String())
	}
}

func TestCompareFlagsMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	truncated := strings.SplitAfter(sampleBench, "rtt4B-ether\n")[0] + "PASS\n"
	var out bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(truncated), &out); err == nil {
		t.Fatalf("missing metric not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("missing report absent:\n%s", out.String())
	}
}

func TestEmptyInputRejected(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

const sampleWallclock = `goos: linux
goarch: amd64
pkg: repro
BenchmarkWallclockSweepSerial-8   	       2	 288152656 ns/op	        40.00 cells	         1.000 workers	33812764 B/op	   28784 allocs/op
BenchmarkWallclockEchoSteady-8    	       2	  20063557 ns/op	        12.21 allocs/rtt	 2755016 B/op	    1696 allocs/op
BenchmarkSweepSerial-8            	       2	 289856962 ns/op	        40.00 cells	   28787 allocs/op
PASS
`

func TestParseWallclock(t *testing.T) {
	got, sweeps, _, err := parseWallclock(strings.NewReader(sampleWallclock))
	if err != nil {
		t.Fatal(err)
	}
	// Only the Wallclock tier counts, B/op is gated alongside the
	// allocation counts, and the machine metadata rides along under meta/.
	want := map[string]float64{
		"BenchmarkWallclockSweepSerial/ns/op":     288152656,
		"BenchmarkWallclockSweepSerial/B/op":      33812764,
		"BenchmarkWallclockSweepSerial/allocs/op": 28784,
		"BenchmarkWallclockEchoSteady/ns/op":      20063557,
		"BenchmarkWallclockEchoSteady/allocs/rtt": 12.21,
		"BenchmarkWallclockEchoSteady/B/op":       2755016,
		"BenchmarkWallclockEchoSteady/allocs/op":  1696,
		"meta/gomaxprocs":                         8,
		"meta/sweep_workers":                      1,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if len(sweeps) != 1 || sweeps[0].name != "Serial" || sweeps[0].procs != 8 {
		t.Errorf("sweep samples = %+v, want one Serial sample at procs 8", sweeps)
	}
}

// sampleScaling is the sweep pair run under -cpu=1,2: slower in parallel
// on one CPU (expected, noted) and faster on two (healthy scaling).
const sampleScaling = `goos: linux
BenchmarkWallclockSweepSerial     	       2	 200000000 ns/op	        40.00 cells	         1.000 workers	 3502981 B/op	    4010 allocs/op
BenchmarkWallclockSweepSerial-2   	       2	 210000000 ns/op	        40.00 cells	         1.000 workers	 3502981 B/op	    4010 allocs/op
BenchmarkWallclockSweepParallel   	       2	 208000000 ns/op	        40.00 cells	         1.000 workers	 3502720 B/op	    4008 allocs/op
BenchmarkWallclockSweepParallel-2 	       2	 126000000 ns/op	        40.00 cells	         2.000 workers	 3502720 B/op	    4300 allocs/op
PASS
`

func TestScalingReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "2"},
		strings.NewReader(sampleScaling), &out); err != nil {
		t.Fatalf("scaling report failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "ratio 1.040 at GOMAXPROCS=1") ||
		!strings.Contains(s, "ratio 0.600 at GOMAXPROCS=2") {
		t.Errorf("per-GOMAXPROCS ratios missing:\n%s", s)
	}
	if !strings.Contains(s, "GOMAXPROCS=1 cannot show a speedup") {
		t.Errorf("single-CPU note missing:\n%s", s)
	}
	if strings.Contains(s, "WARNING") {
		t.Errorf("healthy 2-CPU scaling should not warn:\n%s", s)
	}
}

func TestScalingWarnsWhenParallelSlower(t *testing.T) {
	inverted := strings.Replace(sampleScaling, "126000000", "230000000", 1)
	var out bytes.Buffer
	// Non-fatal: the run must still succeed.
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "2"},
		strings.NewReader(inverted), &out); err != nil {
		t.Fatalf("scaling warning must be non-fatal: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "WARNING scaling: parallel sweep is not faster") {
		t.Errorf("missing warning for parallel >= serial at GOMAXPROCS=2:\n%s", out.String())
	}
}

func TestScalingOversubscribedIsNoteNotWarning(t *testing.T) {
	// The same inverted sample on a one-CPU machine: GOMAXPROCS=2 over one
	// core cannot be faster, so the slow ratio gets an explanatory note and
	// no warning.
	inverted := strings.Replace(sampleScaling, "126000000", "230000000", 1)
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "1"},
		strings.NewReader(inverted), &out); err != nil {
		t.Fatalf("oversubscribed scaling report failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "GOMAXPROCS=2 exceeds this machine's 1 CPU(s)") {
		t.Errorf("missing oversubscription note:\n%s", s)
	}
	if strings.Contains(s, "WARNING") {
		t.Errorf("oversubscribed run must not warn:\n%s", s)
	}
}

// sampleShardScaling is the fan-in pair run under -cpu=1,2: sharded is
// slower on one CPU (barrier overhead, noted) and faster on two.
const sampleShardScaling = `goos: linux
BenchmarkWallclockFanIn10k     	       1	2400000000 ns/op	       108.0 peak-heap-MB	370000000 B/op	 2000000 allocs/op
BenchmarkWallclockFanIn10k-2   	       1	2400000000 ns/op	       108.0 peak-heap-MB	370000000 B/op	 2000000 allocs/op
BenchmarkWallclockFanIn10kSharded     	       1	3900000000 ns/op	       108.0 peak-heap-MB	    879574 rounds	470000000 B/op	 3800000 allocs/op
BenchmarkWallclockFanIn10kSharded-2   	       1	1560000000 ns/op	       108.0 peak-heap-MB	    879574 rounds	470000000 B/op	 3800000 allocs/op
PASS
`

func TestShardScalingReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "2"},
		strings.NewReader(sampleShardScaling), &out); err != nil {
		t.Fatalf("shard scaling report failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "sharded/serial fan-in ns/op ratio 1.625 at GOMAXPROCS=1") ||
		!strings.Contains(s, "sharded/serial fan-in ns/op ratio 0.650 at GOMAXPROCS=2") {
		t.Errorf("per-GOMAXPROCS shard ratios missing:\n%s", s)
	}
	if !strings.Contains(s, "GOMAXPROCS=1 cannot show a sharded speedup") {
		t.Errorf("single-CPU note missing:\n%s", s)
	}
	if strings.Contains(s, "WARNING") {
		t.Errorf("healthy 2-CPU shard scaling should not warn:\n%s", s)
	}
}

func TestShardScalingWarnsAndNotes(t *testing.T) {
	// Sharded slower at GOMAXPROCS=2 with two real CPUs: warn, non-fatally.
	slower := strings.Replace(sampleShardScaling, "1560000000", "3900000000", 1)
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "2"},
		strings.NewReader(slower), &out); err != nil {
		t.Fatalf("shard scaling warning must be non-fatal: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "WARNING scaling: sharded fan-in is not faster") {
		t.Errorf("missing warning for sharded >= serial at GOMAXPROCS=2:\n%s", out.String())
	}
	// The same numbers on a one-CPU machine: an explanatory note, no warning.
	out.Reset()
	if err := run([]string{"-wallclock", "-scaling", "-cpus", "1"},
		strings.NewReader(slower), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "GOMAXPROCS=2 exceeds this machine's 1 CPU(s)") {
		t.Errorf("missing oversubscription note:\n%s", s)
	}
	if strings.Contains(s, "WARNING") {
		t.Errorf("oversubscribed shard run must not warn:\n%s", s)
	}
}

func TestShardedRoundsMetricGated(t *testing.T) {
	got, _, shards, err := parseWallclock(strings.NewReader(sampleShardScaling))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkWallclockFanIn10kSharded/rounds"] != 879574 {
		t.Fatalf("rounds not parsed as a gated metric: %v", got)
	}
	if len(shards) != 4 {
		t.Fatalf("shard samples = %+v, want 4", shards)
	}
	// Rounds are deterministic: a 30% swing means the horizon algorithm
	// changed, which must force a deliberate re-baseline.
	path := filepath.Join(t.TempDir(), "wall.json")
	if err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(sampleShardScaling), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	swollen := strings.ReplaceAll(sampleShardScaling, "879574 rounds", "1143446 rounds")
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-cpus", "1", "-baseline", path},
		strings.NewReader(swollen), &out); err == nil {
		t.Fatalf("30%% round-count swing not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") || !strings.Contains(out.String(), "rounds") {
		t.Fatalf("rounds drift report missing:\n%s", out.String())
	}
}

func TestWallclockMetaRecordedAndExcluded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wall.json")
	if err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(sampleWallclock), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "meta/gomaxprocs") ||
		!strings.Contains(string(b), "meta/sweep_workers") {
		t.Fatalf("baseline missing machine metadata:\n%s", b)
	}
	// A run on different hardware (other GOMAXPROCS) notes the mismatch
	// without failing, and the meta keys never count as drift.
	other := strings.ReplaceAll(sampleWallclock, "-8", "-2")
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(other), &out); err != nil {
		t.Fatalf("meta mismatch must be non-fatal: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "note: baseline meta/gomaxprocs=8 but this run has 2") {
		t.Errorf("missing machine-mismatch note:\n%s", out.String())
	}
	if strings.Contains(out.String(), "DRIFT   meta/") || strings.Contains(out.String(), "MISSING meta/") {
		t.Errorf("meta keys leaked into the drift comparison:\n%s", out.String())
	}
}

func TestWallclockToleranceBands(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wall.json")
	if err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(sampleWallclock), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A 30% ns/op swing stays inside the wide ns/op band.
	slower := strings.Replace(sampleWallclock, "288152656", "374598452", 1)
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(slower), &out); err != nil {
		t.Fatalf("30%% ns/op swing should pass: %v\n%s", err, out.String())
	}
	// A 30% allocation regression breaks the tight allocation band.
	leaky := strings.Replace(sampleWallclock, "   28784 allocs/op", "   37419 allocs/op", 1)
	out.Reset()
	err := run([]string{"-wallclock", "-baseline", path}, strings.NewReader(leaky), &out)
	if err == nil {
		t.Fatalf("allocation regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") ||
		!strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("drift report missing:\n%s", out.String())
	}
}

func TestWallclockWriteRejectsMissingAllocs(t *testing.T) {
	// Forgetting -benchmem yields ns/op-only input; writing that as a
	// baseline would disable the allocation gate, so it must refuse.
	noAllocs := "BenchmarkWallclockSweepSerial-8   2   288152656 ns/op\nPASS\n"
	path := filepath.Join(t.TempDir(), "wall.json")
	err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(noAllocs), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("ns/op-only wallclock baseline accepted: %v", err)
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("baseline file written despite rejection")
	}
}

// sampleScale is the 10k fan-in scale benchmark's output shape: B/op
// rides the gate with its own band and peak-heap-MB lands in the
// baseline as machine metadata.
const sampleScale = `goos: linux
BenchmarkWallclockFanIn10k-2   	       1	31000000000 ns/op	        62.00 peak-heap-MB	 9800000000 B/op	  61000000 allocs/op
PASS
`

func TestWallclockBytesBandAndPeakHeapMeta(t *testing.T) {
	got, _, _, err := parseWallclock(strings.NewReader(sampleScale))
	if err != nil {
		t.Fatal(err)
	}
	if got["meta/peak_heap_mb"] != 62 {
		t.Fatalf("peak-heap-MB not recorded as metadata: %v", got)
	}
	if got["BenchmarkWallclockFanIn10k/B/op"] != 9800000000 {
		t.Fatalf("B/op not parsed: %v", got)
	}

	path := filepath.Join(t.TempDir(), "wall.json")
	if err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(sampleScale), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A 25% B/op swing stays inside the default 35% band.
	swung := strings.Replace(sampleScale, " 9800000000 B/op", "12250000000 B/op", 1)
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(swung), &out); err != nil {
		t.Fatalf("25%% B/op swing should pass: %v\n%s", err, out.String())
	}
	// A 2x B/op regression — per-request latency retention creeping back
	// in — breaks it.
	bloated := strings.Replace(sampleScale, " 9800000000 B/op", "19600000000 B/op", 1)
	out.Reset()
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(bloated), &out); err == nil {
		t.Fatalf("2x B/op regression not detected:\n%s", out.String())
	}
	// -tol-bytes widens the band explicitly.
	out.Reset()
	if err := run([]string{"-wallclock", "-tol-bytes", "0.6", "-baseline", path},
		strings.NewReader(bloated), &out); err != nil {
		t.Fatalf("-tol-bytes=0.6 should admit the 2x swing (rel diff 0.5): %v\n%s", err, out.String())
	}
	// Peak heap from a different machine is a note, never drift.
	other := strings.Replace(sampleScale, "62.00 peak-heap-MB", "91.00 peak-heap-MB", 1)
	out.Reset()
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(other), &out); err != nil {
		t.Fatalf("peak-heap mismatch must be non-fatal: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "note: baseline meta/peak_heap_mb=62 but this run has 91") {
		t.Errorf("missing peak-heap note:\n%s", out.String())
	}
}
