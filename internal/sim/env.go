// The event loop. See the package comment (time.go) for the design
// contract: the 4-ary value heap is a wall-clock optimization with zero
// effect on simulated time.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled callback. Events with equal timestamps fire in the
// order they were scheduled (seq breaks ties), which keeps runs
// deterministic. Stored by value in the heap slice — never individually
// heap-allocated. A callback is either fn, or argFn applied to arg: the
// arg-carrying form lets repeat schedulers (TCP's retransmit and
// delayed-ACK timers) use one bound method per connection plus a
// generation number in the event, instead of allocating a fresh closure
// per arming.
type event struct {
	at    Time
	seq   uint64
	arg   uint64
	name  string
	fn    func()
	argFn func(uint64)
}

// eventHeap is a 4-ary min-heap of events ordered by (at, seq), stored by
// value with the minimum at index 0. A 4-ary layout halves the tree depth
// of a binary heap, trading a few extra comparisons per level for fewer
// cache-missing levels — the standard shape for hot discrete-event
// queues. The backing slice doubles as the event free-list: pop clears
// the vacated tail slot (releasing the closure for GC) and push reuses
// it, so a simulation allocates queue memory only while growing beyond
// its high-water mark.
type eventHeap []event

// before reports whether a fires before b: earlier timestamp, or equal
// timestamps in scheduling order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	// Sift up, moving parents down into the hole rather than swapping.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
	*h = q
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the closure and name for GC
	q = q[:n]
	*h = q
	if n > 0 {
		// Sift the displaced last element down from the root.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for j := first + 1; j < end; j++ {
				if q[j].before(&q[min]) {
					min = j
				}
			}
			if !q[min].before(&last) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = last
	}
	return top
}

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	current *Proc // the proc currently executing, if any
	procs   int   // live (unfinished) procs
	rng     *RNG

	// horizon bounds how far this environment may advance on its own:
	// RunWindow executes only events strictly before it, and SleepUntil's
	// in-place fast path refuses to move the clock to or past it. A
	// stand-alone environment keeps the horizon at MaxTime, which makes
	// both restrictions vacuous; sharded execution (lab.Cluster) lowers it
	// to the conservative-lookahead safe time each round, so events that
	// a cross-shard message could still precede stay pending.
	horizon Time

	// wd, when non-nil, is the no-progress watchdog polled by Step. The
	// disarmed cost is one pointer comparison per event; armed, the poll
	// runs only when the clock reaches wdNext, so the per-event cost stays
	// one extra Time comparison. Cluster shards may share one Watchdog.
	wd     *Watchdog
	wdNext Time
}

// NewEnv returns a fresh simulation environment with its clock at zero
// and a deterministic default random seed.
func NewEnv() *Env {
	return &Env{rng: NewRNG(1), horizon: MaxTime}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Reset returns the environment to its just-constructed state — clock at
// zero, sequence counter at zero, default RNG seed — while retaining the
// event heap's backing storage, so a reused environment schedules without
// regrowing to its high-water mark. Processes blocked on WaitQueues are
// untouched: a drained simulation leaves its persistent service loops
// (netisr, driver interrupt handlers, protocol timers) parked exactly
// where a fresh environment's would park after their spawn events run, so
// reuse is invisible to simulated time. Resetting with events still
// pending panics: it would strand scheduled work and silently corrupt the
// next run's measurements.
func (e *Env) Reset() {
	if len(e.events) != 0 {
		panic(fmt.Sprintf("sim: Reset with %d events pending", len(e.events)))
	}
	e.now = 0
	e.seq = 0
	e.rng = NewRNG(1)
	e.horizon = MaxTime
	e.wd = nil
	e.wdNext = 0
}

// RNG returns the environment's random number generator.
func (e *Env) RNG() *RNG { return e.rng }

// Seed reseeds the environment's random number generator.
func (e *Env) Seed(s uint64) { e.rng = NewRNG(s) }

// schedule is the single scheduling primitive every public variant folds
// into: it stamps the event with the next sequence number (the
// deterministic tie-break for equal timestamps) and inserts it into the
// heap. Scheduling in the past panics: it would violate causality and
// silently corrupt measurements. The callback is either fn, or argFn
// applied to arg — exactly one must be set; see the event comment.
func (e *Env) schedule(t Time, name string, fn func(), argFn func(uint64), arg uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, name: name, fn: fn, argFn: argFn, arg: arg})
}

// At schedules fn to run at absolute virtual time t.
func (e *Env) At(t Time, name string, fn func()) {
	e.schedule(t, name, fn, nil, 0)
}

// After schedules fn to run d after the current time. A negative delay
// panics.
func (e *Env) After(d Time, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	e.schedule(e.now+d, name, fn, nil, 0)
}

// AtArg schedules fn(arg) at absolute virtual time t. It is At for
// callbacks that need one word of context: the function can be bound
// once and reused across schedulings, with arg (typically a generation
// counter) riding in the event itself — no closure allocation per call.
func (e *Env) AtArg(t Time, name string, fn func(uint64), arg uint64) {
	e.schedule(t, name, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time. A negative
// delay panics.
func (e *Env) AfterArg(d Time, name string, fn func(uint64), arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	e.schedule(e.now+d, name, nil, fn, arg)
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports whether an event was run. With a watchdog armed, Step
// refuses to run further events once the watchdog fires, so every run
// loop built on Step (Run, RunUntil, RunWindow) stops instead of
// executing a livelocked simulation forever.
func (e *Env) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	if e.wd != nil && e.events[0].at >= e.wdNext {
		if e.wd.check(e, e.events[0].at) {
			return false
		}
		e.wdNext = e.events[0].at + e.wd.pollEvery()
	}
	ev := e.events.pop()
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.argFn(ev.arg)
	}
	return true
}

// Run processes events until none remain.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps at or before deadline and then
// advances the clock to the deadline. Later events remain pending.
func (e *Env) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		if !e.Step() {
			return // watchdog fired: leave the clock where it stopped
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of scheduled events not yet run.
func (e *Env) Pending() int { return len(e.events) }

// SetHorizon sets the safe-time bound for windowed execution: RunWindow
// stops before the first event at or past t, and SleepUntil's in-place
// fast path parks instead of advancing the clock to or past t. MaxTime
// (the default) disables the bound.
func (e *Env) SetHorizon(t Time) { e.horizon = t }

// Horizon returns the current safe-time bound.
func (e *Env) Horizon() Time { return e.horizon }

// NextEventAt returns the timestamp of the earliest pending event, and
// whether one exists. Sharded execution uses it to compute each round's
// global minimum next-event time without popping anything.
func (e *Env) NextEventAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunWindow processes every pending event with a timestamp strictly
// before the horizon, leaving later events pending. Unlike RunUntil it
// does not advance the clock to the bound afterwards: a cross-shard
// message may still arrive anywhere in [now, horizon), so the clock must
// stay where the last executed event left it.
func (e *Env) RunWindow() {
	for len(e.events) > 0 && e.events[0].at < e.horizon {
		if !e.Step() {
			return // watchdog fired: the coordinator surfaces the abort
		}
	}
}

// SetWatchdog arms the no-progress watchdog (nil disarms). Sharded
// execution arms every shard's environment with the same Watchdog, whose
// internal lock makes the shared state safe across worker goroutines.
func (e *Env) SetWatchdog(w *Watchdog) {
	e.wd = w
	e.wdNext = 0
}

// WatchdogErr returns the armed watchdog's abort diagnostic, or nil if
// no watchdog is armed or it has not fired.
func (e *Env) WatchdogErr() error {
	if e.wd == nil {
		return nil
	}
	return e.wd.Err()
}

// PendingSummary returns a histogram of pending event names — at most
// max entries, most frequent first — for watchdog diagnostics: a
// livelocked run's heap is typically thousands of copies of the same few
// timer events, and naming them identifies the spinning subsystem.
func (e *Env) PendingSummary(max int) string {
	counts := make(map[string]int)
	for i := range e.events {
		counts[e.events[i].name]++
	}
	type entry struct {
		name string
		n    int
	}
	ordered := make([]entry, 0, len(counts))
	for name, n := range counts {
		ordered = append(ordered, entry{name, n})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].n != ordered[j].n {
			return ordered[i].n > ordered[j].n
		}
		return ordered[i].name < ordered[j].name
	})
	if len(ordered) > max {
		ordered = ordered[:max]
	}
	parts := make([]string, len(ordered))
	for i, en := range ordered {
		parts[i] = fmt.Sprintf("%s×%d", en.name, en.n)
	}
	return strings.Join(parts, " ")
}
