// Reliable-UDP transport for the fan-in workload: the same
// request/response pattern as the TCP path, carried by internal/rudp's
// message stream instead of a TCP byte stream. The frames mirror their
// TCP counterparts one for one — accept loop, per-connection echo
// server, client exchange loop — so a TCP-vs-rUDP comparison at equal
// load isolates the transports, not the harness.
package workload

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/rudp"
	"repro/internal/sim"
)

// TransportTCP and TransportRUDP name FanIn.Transport values.
const (
	TransportTCP  = "tcp"
	TransportRUDP = "rudp"
)

// checkTransport validates a FanIn transport selection against the
// message-size cap (one rudp message rides one datagram).
func checkTransport(transport string, size int) error {
	switch transport {
	case "", TransportTCP:
		return nil
	case TransportRUDP:
		if size > rudp.MaxMessage {
			return fmt.Errorf("workload: rudp transport caps messages at %d bytes, got %d",
				rudp.MaxMessage, size)
		}
		return nil
	}
	return fmt.Errorf("workload: unknown transport %q (tcp, rudp)", transport)
}

// rudpAcceptLoopFrame accepts n rudp connections, spawning an echo
// server for each.
type rudpAcceptLoopFrame struct {
	e   *rudp.Endpoint
	env *sim.Env
	n   int

	pc int
	i  int
	op *rudp.AcceptOp
}

// Step drives the accept loop.
func (f *rudpAcceptLoopFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // accept the next connection
			if f.i >= f.n {
				p.Return()
				return
			}
			f.pc = 1
			f.op = f.e.Accept(p)
			return
		case 1: // spawn its echo server
			if f.op.Err != nil {
				// The endpoint died under the accept (host crash); the
				// restart supervisor spawns the successor loop.
				p.Return()
				return
			}
			c := f.op.C
			f.op = nil
			f.env.Spawn(fmt.Sprintf("server.fanin.rconn%d", f.i),
				&rudpServeEchoFrame{c: c})
			f.i++
			f.pc = 0
		}
	}
}

// rudpServeEchoFrame echoes each message back until the client's fin.
type rudpServeEchoFrame struct {
	c *rudp.Conn

	pc   int
	buf  []byte
	n    int
	recv *rudp.RecvOp
	send *rudp.SendOp
}

// Step drives the echo handler.
func (f *rudpServeEchoFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // read the next message
			if f.buf == nil {
				f.buf = make([]byte, rudp.MaxMessage)
			}
			f.pc = 1
			f.recv = f.c.Recv(p, f.buf)
			return
		case 1: // echo it back, or close at end of stream
			if f.recv.Err != nil || f.recv.N == 0 {
				f.pc = 3
				f.c.Close(p)
				return
			}
			f.n = f.recv.N
			f.recv = nil
			f.pc = 2
			f.send = f.c.Send(p, f.buf[:f.n])
			return
		case 2: // next message, unless the send failed
			if f.send.Err != nil {
				p.Return()
				return
			}
			f.send = nil
			f.pc = 0
		case 3: // closed; done
			p.Return()
			return
		}
	}
}

// rudpFanInClientFrame is one fan-in client on the rudp transport:
// stagger, dial, warm+reqs message exchanges, close. Shard-agnostic
// like its TCP twin — all state flows through p.Env() and per-client
// accumulators.
type rudpFanInClientFrame struct {
	host             *lab.Host
	ci, si           int
	size, warm, reqs int
	startAt          sim.Time
	sink             *latSink
	last             *sim.Time
	r                *Result
	fail             func(error)

	pc       int
	c        *rudp.Conn
	msg, buf []byte
	i        int
	start    sim.Time
	send     *rudp.SendOp
	recv     *rudp.RecvOp
}

// Step drives the client.
func (f *rudpFanInClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // wait for the stagger slot
			f.pc = 1
			if f.startAt > 0 && !p.SleepUntil(f.startAt) {
				return
			}
		case 1: // dial and prepare buffers
			c, err := rudp.Dial(f.host.Kern, f.host.UDP, lab.HostAddr(0), Port)
			if err != nil {
				f.fail(err)
				p.Return()
				return
			}
			f.c = c
			f.msg = make([]byte, f.size)
			p.Env().RNG().Fill(f.msg)
			f.buf = make([]byte, rudp.MaxMessage)
			f.pc = 2
		case 2: // request loop head: send
			if f.i >= f.warm+f.reqs {
				f.pc = 5
				f.c.Close(p)
				return
			}
			f.start = p.Env().Now()
			f.pc = 3
			f.send = f.c.Send(p, f.msg)
			return
		case 3: // sent; read the response message
			if f.send.Err != nil {
				f.fail(fmt.Errorf("client %d request %d: %w", f.ci, f.i, f.send.Err))
				p.Return()
				return
			}
			f.send = nil
			f.pc = 4
			f.recv = f.c.Recv(p, f.buf)
			return
		case 4: // fold in one exchange's result
			if f.recv.Err != nil {
				f.fail(fmt.Errorf("client %d request %d: %w", f.ci, f.i, f.recv.Err))
				p.Return()
				return
			}
			if f.recv.N != f.size {
				f.fail(fmt.Errorf("client %d request %d: %d-byte response, want %d",
					f.ci, f.i, f.recv.N, f.size))
				p.Return()
				return
			}
			f.recv = nil
			if f.i >= f.warm {
				now := p.Env().Now()
				lat := now - f.start
				f.sink.record(f.si, lat, now)
				if now > *f.last {
					*f.last = now
				}
				if !bytesEqual(f.buf[:f.size], f.msg) {
					f.r.Errors++
				}
			}
			f.i++
			f.pc = 2
		case 5: // closed; done
			p.Return()
			return
		}
	}
}
