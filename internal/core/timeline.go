package core

import (
	"fmt"
	"math"

	"repro/internal/lab"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TimelineStudyResult compares two routes to the paper's breakdown
// tables for one transfer size: the span route (Recorder.Breakdown over
// the cost-model charges — what Tables 2 and 3 ship) and the packet
// route (the same windows applied to the typed per-packet event stream,
// reconstructed into timelines first). The two must agree exactly: both
// record the same CPU charges, so any divergence means an
// instrumentation point lost or double-counted a charge.
type TimelineStudyResult struct {
	Size int `json:"size"`
	// Packets is the number of distinct on-wire identities observed;
	// EventCount the total typed events recorded.
	Packets    int `json:"packets"`
	EventCount int `json:"events"`

	// Tx and Rx are re-derived from the measured per-packet event
	// stream; RefTx and RefRx are the span-based tables.
	Tx    Breakdown `json:"tx"`
	Rx    Breakdown `json:"rx"`
	RefTx Breakdown `json:"ref_tx"`
	RefRx Breakdown `json:"ref_rx"`

	// MaxDeltaMicros is the largest absolute row or total divergence
	// between the two derivations, in microseconds.
	MaxDeltaMicros float64 `json:"max_delta_us"`
}

// RunTimelineStudy runs the echo benchmark twice at the same fixed
// configuration and seed — once untraced for the span-based reference
// tables, once with per-packet tracing armed — and re-derives the
// transmit- and receive-side breakdowns from the event stream using the
// paper's measurement windows (§2.2): write entry to write return for
// transmit, last wire arrival to read return for receive. Packet
// tracing charges no simulated time, so the runs are bit-identical in
// timing and the derivations must match to the last charge.
func RunTimelineStudy(cfg lab.Config, size, iterations, warmup int) (*TimelineStudyResult, error) {
	refTx, refRx, err := MeasureBreakdowns(cfg, size, iterations, warmup)
	if err != nil {
		return nil, fmt.Errorf("core: reference breakdown: %w", err)
	}

	cfg.PacketTrace = true
	l := lab.New(cfg)
	res, err := l.RunEcho(size, iterations, warmup)
	if err != nil {
		return nil, fmt.Errorf("core: traced echo: %w", err)
	}
	evs := l.PacketEvents()
	set := trace.BuildTimelines(evs)
	host := l.Client.Kern.Name

	tx := Breakdown{Size: size, Rows: map[trace.Layer]float64{}}
	rx := Breakdown{Size: size, Rows: map[trace.Layer]float64{}}
	n := float64(len(res.Windows))
	for _, w := range res.Windows {
		txRows := trace.BreakdownFromEvents(evs, host, w.WriteStart, w.WriteEnd)
		for layer, d := range txRows {
			tx.Rows[layer] += d.Micros() / n
		}
		tx.Total += (w.WriteEnd - w.WriteStart).Micros() / n

		origin, ok := trace.LastArrival(evs, host, w.ReadReturn)
		if !ok || origin < w.WriteEnd {
			return nil, fmt.Errorf("core: no wire-arrival event for iteration")
		}
		rxRows := trace.BreakdownFromEvents(evs, host, origin, w.ReadReturn)
		for layer, d := range rxRows {
			rx.Rows[layer] += d.Micros() / n
		}
		rx.Total += (w.ReadReturn - origin).Micros() / n
	}
	tx.Other = unattributed(tx, TxLayers)
	rx.Other = unattributed(rx, RxLayers)

	r := &TimelineStudyResult{
		Size:       size,
		Packets:    len(set.Packets),
		EventCount: len(evs),
		Tx:         tx,
		Rx:         rx,
		RefTx:      refTx,
		RefRx:      refRx,
	}
	r.MaxDeltaMicros = math.Max(breakdownDelta(tx, refTx), breakdownDelta(rx, refRx))
	return r, nil
}

// breakdownDelta returns the largest absolute per-row (or total)
// divergence between two breakdowns, in microseconds.
func breakdownDelta(a, b Breakdown) float64 {
	max := math.Abs(a.Total - b.Total)
	seen := map[trace.Layer]bool{}
	for layer, v := range a.Rows {
		seen[layer] = true
		if d := math.Abs(v - b.Rows[layer]); d > max {
			max = d
		}
	}
	for layer, v := range b.Rows {
		if !seen[layer] {
			if d := math.Abs(v); d > max {
				max = d
			}
		}
	}
	return max
}

// Render formats the study as a side-by-side table: each presentation
// row of Tables 2 and 3 with the packet-derived and span-derived values
// and their divergence.
func (r *TimelineStudyResult) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Timeline study: breakdown re-derived from %d packets, %d events (size %d, µs)",
			r.Packets, r.EventCount, r.Size),
		"Row", "packets", "spans", "|Δ|")
	add := func(side string, layers []trace.Layer, ev, ref Breakdown) {
		for _, layer := range layers {
			t.AddRow(side+" "+string(layer), ev.Rows[layer], ref.Rows[layer],
				math.Abs(ev.Rows[layer]-ref.Rows[layer]))
		}
		t.AddRow(side+" Total", ev.Total, ref.Total, math.Abs(ev.Total-ref.Total))
	}
	add("tx", TxLayers, r.Tx, r.RefTx)
	add("rx", RxLayers, r.Rx, r.RefRx)
	return t.String()
}
