// Transports: the paper's introductory question — "Can we provide
// evidence that TCP is a viable option for a transport layer for RPC?" —
// answered by racing the same echo workload over TCP and over UDP (the
// datagram transport an RPC system would otherwise use) on the same
// simulated ATM testbed.
//
// Run with: go run ./examples/transports
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
)

func main() {
	r, err := core.RunTransportComparison(cost.ChecksumStandard,
		core.Options{Iterations: 50, Warmup: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Render())
	fmt.Println()

	// The same comparison with checksums eliminated on both transports
	// (UDP's has been optional since RFC 768; TCP's via the negotiated
	// elimination of §4.2): the gap narrows further because the
	// remaining costs are mostly shared data movement.
	r2, err := core.RunTransportComparison(cost.ChecksumNone,
		core.Options{Iterations: 50, Warmup: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r2.Render())
}
