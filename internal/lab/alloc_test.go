package lab

import (
	"runtime"
	"testing"
)

// echoAllocs runs one 1400-byte ATM echo lab to completion and returns
// how many Go heap allocations it performed.
func echoAllocs(t *testing.T, iters int) uint64 {
	t.Helper()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	l := New(Config{Link: LinkATM, Seed: 1994})
	res, err := l.RunEcho(1400, iters, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptEchoes != 0 {
		// A recycled mbuf or cluster aliasing an in-flight segment would
		// corrupt echoed payloads end to end; zero proves the pool never
		// hands live storage to a new writer under real traffic.
		t.Fatalf("echo corrupted %d times — pool aliasing?", res.CorruptEchoes)
	}
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestEchoSteadyStateAllocs pins the hot-path overhaul's allocation
// contract end to end: the marginal cost of an extra steady-state echo
// round trip — event scheduling, mbuf traffic, cell segmentation and
// reassembly, trace spans — must stay two orders of magnitude below the
// pre-overhaul ~880 allocations per round trip. The bound (176, an 80%
// drop) is deliberately loose against the measured ~12 so unrelated
// runtime changes do not flake it; a reintroduced per-event or
// per-packet allocation moves the number by hundreds and trips it
// immediately.
func TestEchoSteadyStateAllocs(t *testing.T) {
	short := echoAllocs(t, 8)
	long := echoAllocs(t, 108)
	perRTT := float64(long-short) / 100
	t.Logf("steady-state echo: %.1f allocs per round trip", perRTT)
	if perRTT > 176 {
		t.Fatalf("steady-state echo allocates %.1f per round trip, want <= 176", perRTT)
	}
}
