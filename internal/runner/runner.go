// Package runner is the concurrent experiment-sweep engine. The paper's
// evaluation is a grid — link kind × checksum mode × PCB organization ×
// transfer size — of mutually independent trials, each of which builds
// its own simulated testbed (its own sim.Env) and runs to completion.
// That independence makes the sweep embarrassingly parallel, and this
// package shards the grid across a worker pool while keeping the results
// bit-identical to a serial run:
//
//   - Each job receives a deterministic RNG seed derived only from the
//     sweep's base seed and the job's position in the grid (SeedFor), so
//     scheduling order cannot perturb any simulation.
//   - Each job runs on one goroutine with its own sim.Env; environments
//     are never shared between workers.
//   - Outcomes are collected by grid index, so aggregation sees them in
//     grid order regardless of completion order.
//
// Execution is worker-affine: every worker owns a Testbeds cache of warm
// labs keyed by topology shape, and jobs that set Job.RunOn acquire
// their lab through it — a trial rebinds an already-assembled topology
// (lab.Lab.Reset) instead of reconstructing kernels, mbuf pools, and
// event heaps per grid cell, which is where most of a sweep's wall-clock
// time and allocation volume used to go (see docs/PERFORMANCE.md). The
// reset restores bit-identical initial state, so reuse is invisible to
// every outcome.
//
// Run(ctx, jobs, Options{Workers: 1}) is the serial reference; any other
// worker count produces exactly the same outcomes, only faster.
//
// The guarantee extends to traced sweeps: a WorkloadTrial whose Cfg
// sets lab.Config.PacketTrace carries its per-packet timeline
// reconstruction inside the outcome (WorkloadOutcome.Trace), built from
// that trial's own lab, so even full span JSON is byte-identical at any
// worker count (TestTracedSweepParallelBitIdentical).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// SeedFor derives the per-job RNG seed for the job at grid index i under
// base. It is a splitmix64 step over the pair, so seeds depend only on
// (base, index) — never on worker count or completion order — which is
// what makes parallel sweeps bit-identical to serial ones. A zero result
// is remapped so it cannot collide with "no seed requested".
func SeedFor(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}

// Job is one independent unit of sweep work. Run receives the context
// (observe it for cancellation in long jobs) and the seed derived for the
// job's grid index — zero when the sweep did not request derived seeds,
// in which case the job keeps whatever seeding its configuration carries.
//
// RunOn, when non-nil, takes precedence over Run and additionally
// receives the executing worker's warm-testbed cache (Testbeds): jobs
// that build a lab should acquire it through tb.Lab so consecutive
// trials on one worker reuse an assembled topology instead of
// reconstructing it. Because every reused lab is reset to bit-identical
// initial state and every seed derives from grid position alone, RunOn
// jobs keep the sweep's contract: outcomes are byte-identical at any
// worker count, and identical whether a trial ran on a cold or warm
// testbed.
type Job struct {
	Label string
	Run   func(ctx context.Context, seed uint64) (any, error)
	RunOn func(ctx context.Context, tb *Testbeds, seed uint64) (any, error)
}

// Outcome is one job's result, reported at the job's grid index.
type Outcome struct {
	Index int
	Label string
	Seed  uint64
	Value any
	Err   error
}

// Options controls a sweep.
type Options struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS, 1 forces
	// the serial reference execution.
	Workers int
	// BaseSeed, when nonzero, derives a per-job seed (SeedFor) passed to
	// each job; zero passes 0, leaving per-job seeding untouched.
	BaseSeed uint64
	// Progress, when set, is called after each job completes with the
	// number done and the total. Calls are serialized.
	Progress func(done, total int)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs across the worker pool and returns their outcomes
// indexed by grid position. Job errors (including recovered panics) are
// recorded per outcome, not returned; the returned error is non-nil only
// when ctx is cancelled, in which case outcomes of jobs that never
// started carry the context error.
func Run(ctx context.Context, jobs []Job, o Options) ([]Outcome, error) {
	outs := make([]Outcome, len(jobs))
	for i, j := range jobs {
		outs[i] = Outcome{Index: i, Label: j.Label}
		if o.BaseSeed != 0 {
			outs[i].Seed = SeedFor(o.BaseSeed, i)
		}
	}
	if len(jobs) == 0 {
		return outs, ctx.Err()
	}

	workers := o.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idxc := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The worker's private warm-testbed cache: labs are
			// single-threaded simulations, so affinity to one goroutine
			// is what makes reuse safe without any locking.
			tb := &Testbeds{}
			for i := range idxc {
				outs[i].Value, outs[i].Err = runOne(ctx, jobs[i], tb, outs[i].Seed)
				if o.Progress != nil {
					mu.Lock()
					done++
					o.Progress(done, len(jobs))
					mu.Unlock()
				}
			}
		}()
	}

feed:
	for i := range jobs {
		select {
		case idxc <- i:
		case <-ctx.Done():
			for j := i; j < len(jobs); j++ {
				if outs[j].Value == nil && outs[j].Err == nil {
					outs[j].Err = ctx.Err()
				}
			}
			break feed
		}
	}
	close(idxc)
	wg.Wait()
	return outs, ctx.Err()
}

// runOne executes one job, converting a panic in the simulation into an
// error so a bad cell cannot take down the whole sweep.
func runOne(ctx context.Context, j Job, tb *Testbeds, seed uint64) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %q panicked: %v", j.Label, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if j.RunOn != nil {
		return j.RunOn(ctx, tb, seed)
	}
	return j.Run(ctx, seed)
}

// FirstError returns the first job error in grid order, or nil.
func FirstError(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Label, o.Err)
		}
	}
	return nil
}
