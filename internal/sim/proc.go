package sim

import "fmt"

// Proc is a simulated process: a function that runs on its own goroutine
// but executes strictly interleaved with the event loop. A Proc may block
// on virtual time (Sleep, SleepUntil) or on a WaitQueue; while it is
// blocked the event loop runs other events. Exactly one goroutine — either
// the event loop or one Proc — is ever runnable at a time, so simulations
// are deterministic.
//
// Procs model both user processes (the echo client and server) and
// persistent kernel service loops (the ATM receive interrupt handler and
// the IP software interrupt).
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	tags   []interface{}

	// runFn and wakeName are bound once at Spawn so that the hot
	// SleepUntil/Wake paths can schedule the process's resumption
	// without allocating a fresh closure or concatenating an event
	// name per wakeup — every CPU charge in the testbed sleeps.
	runFn    func()
	wakeName string
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a process and schedules it to start at the current virtual
// time. The body runs on its own goroutine, interleaved with the event loop.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		env:      e,
		name:     name,
		resume:   make(chan struct{}),
		yield:    make(chan struct{}),
		wakeName: "wake:" + name,
	}
	p.runFn = p.run
	e.procs++
	go func() {
		<-p.resume // wait for the start event
		defer func() {
			p.done = true
			e.procs--
			p.yield <- struct{}{}
		}()
		body(p)
	}()
	e.After(0, "spawn:"+name, p.runFn)
	return p
}

// run transfers control to the process goroutine and waits for it to block
// or finish. It must be called from the event loop.
func (p *Proc) run() {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished proc %q", p.name))
	}
	prev := p.env.current
	p.env.current = p
	p.resume <- struct{}{}
	<-p.yield
	p.env.current = prev
}

// block suspends the process until something schedules its resumption.
// It must be called from the process goroutine.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// SleepUntil blocks the process until virtual time t. Sleeping into the
// past is a no-op.
//
// Fast path: when the sleeping process is the one currently executing
// and no queued event fires before t, nothing can run in the interval —
// events are only created by running code, and all of it is suspended
// until this process resumes. The clock advances to t directly, skipping
// the park/handoff/resume round trip through the event loop (two
// goroutine switches per CPU charge otherwise). An event queued exactly
// at t still forces the slow path: it was scheduled earlier, so the
// total order says it runs first. Skipping the wake event shifts later
// sequence numbers uniformly, which preserves every tie-break — the
// queue's total order, and therefore simulated time, is unchanged.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	if p.env.current == p && (len(p.env.events) == 0 || p.env.events[0].at > t) {
		p.env.now = t
		return
	}
	p.env.At(t, p.wakeName, p.runFn)
	p.block()
}

// Sleep blocks the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) { p.SleepUntil(p.env.now + d) }

// PushTag pushes an annotation onto the process's tag stack. Tags mark
// the logical unit of work the process is currently performing — the
// trace instrumentation pushes a packet identity around each segment's
// processing, so CPU time charged while the tag is live attributes to
// that packet even though the charge itself happens layers below.
// The stack nests: a TCP input handler that transmits an ACK pushes the
// ACK's identity on top and pops back to the inbound segment's.
//
// The stack is per process, not per host: two processes on one host
// (the echo client inside tcp_output and the netisr inside tcp_input,
// say) interleave in virtual time, and a host-global context would
// bleed one packet's identity into the other's charges.
func (p *Proc) PushTag(v interface{}) { p.tags = append(p.tags, v) }

// PopTag removes the top tag. Popping an empty stack is a no-op so
// instrumentation may enable mid-run without unbalancing anything.
func (p *Proc) PopTag() {
	if n := len(p.tags); n > 0 {
		p.tags = p.tags[:n-1]
	}
}

// Tag returns the top of the tag stack, or nil when empty.
func (p *Proc) Tag() interface{} {
	if n := len(p.tags); n > 0 {
		return p.tags[n-1]
	}
	return nil
}

// Current returns the process currently executing, or nil when called from
// plain event context.
func (e *Env) Current() *Proc { return e.current }

// WaitQueue is a FIFO queue of blocked processes, analogous to a kernel
// sleep channel. Wake moves the process at the head of the queue back onto
// the event queue at the current time; WakeAll drains the queue.
type WaitQueue struct {
	env      *Env
	name     string
	wakeName string // "wakeq:"+name, precomputed off the wake hot path
	procs    []*Proc
}

// NewWaitQueue returns an empty wait queue.
func (e *Env) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{env: e, name: name, wakeName: "wakeq:" + name}
}

// Len returns the number of processes blocked on the queue.
func (w *WaitQueue) Len() int { return len(w.procs) }

// Wait blocks p until another part of the simulation calls Wake or WakeAll.
func (w *WaitQueue) Wait(p *Proc) {
	w.procs = append(w.procs, p)
	p.block()
}

// Wake schedules the longest-waiting process, if any, to resume at the
// current virtual time. It reports whether a process was woken.
func (w *WaitQueue) Wake() bool {
	if len(w.procs) == 0 {
		return false
	}
	p := w.procs[0]
	copy(w.procs, w.procs[1:])
	w.procs = w.procs[:len(w.procs)-1]
	w.env.After(0, w.wakeName, p.runFn)
	return true
}

// WakeAll wakes every waiting process, preserving FIFO order.
func (w *WaitQueue) WakeAll() {
	for w.Wake() {
	}
}

// WakeAt schedules the longest-waiting process, if any, to resume at
// absolute time t. It reports whether a process was scheduled.
func (w *WaitQueue) WakeAt(t Time) bool {
	if len(w.procs) == 0 {
		return false
	}
	p := w.procs[0]
	copy(w.procs, w.procs[1:])
	w.procs = w.procs[:len(w.procs)-1]
	w.env.At(t, w.wakeName, p.runFn)
	return true
}
