package atm

import (
	"fmt"

	"repro/internal/sim"
)

// Qdisc is a pluggable queue discipline for one switch egress port. The
// switch consults it instead of its built-in drop-tail depth when one is
// installed (Port.SetQdisc): every cell the VC table routes to the port
// is offered to Enqueue — which may refuse it, the discipline's drop
// decision — and the egress link asks Dequeue for the next cell each
// time it goes idle, which is where non-FIFO disciplines reorder.
//
// Disciplines must be deterministic: any randomness (RED's drop lottery)
// comes from a private RNG seeded at construction, never from the
// simulation environment's stream, so installing a qdisc perturbs no
// other random draw and sharded runs stay bit-identical to serial.
type Qdisc interface {
	// Enqueue offers a cell routed to this port; flow is the cell's
	// egress VCI, the flow key of VC-switched traffic. It returns false
	// to drop the cell.
	Enqueue(c Cell, flow uint16) bool
	// Dequeue returns the next cell to transmit, in the discipline's
	// service order; ok is false when the queue is empty.
	Dequeue() (c Cell, ok bool)
	// Len returns the cells currently queued.
	Len() int
	// Reset returns the discipline to its just-constructed state —
	// including reseeding any private RNG — for testbed reuse.
	Reset()
}

// DropTail is the classic FIFO with a hard depth bound: the qdisc-shaped
// twin of the switch's built-in egress depth, useful as the explicit
// baseline in qdisc comparisons.
type DropTail struct {
	limit int
	q     cellQueue
}

// NewDropTail returns a FIFO dropping arrivals beyond limit cells.
func NewDropTail(limit int) *DropTail {
	if limit <= 0 {
		limit = DefaultPortQueueCells
	}
	return &DropTail{limit: limit}
}

// Enqueue implements Qdisc.
func (d *DropTail) Enqueue(c Cell, _ uint16) bool {
	if d.q.len() >= d.limit {
		return false
	}
	d.q.push(c)
	return true
}

// Dequeue implements Qdisc.
func (d *DropTail) Dequeue() (Cell, bool) {
	if d.q.len() == 0 {
		return Cell{}, false
	}
	return d.q.pop(), true
}

// Len implements Qdisc.
func (d *DropTail) Len() int { return d.q.len() }

// Reset implements Qdisc.
func (d *DropTail) Reset() { d.q.reset() }

// RED is random early detection (Floyd & Jacobson 1993) on a cell FIFO:
// an EWMA of the queue depth is updated on every arrival, and arrivals
// are dropped probabilistically once the average crosses MinTh — before
// the queue is actually full — so sources back off early instead of
// synchronizing on tail drops. Below MinTh nothing is ever dropped;
// at or above MaxTh (or the hard Limit) everything is.
type RED struct {
	MinTh  int     // no early drops while avg < MinTh
	MaxTh  int     // all arrivals dropped while avg >= MaxTh
	MaxP   float64 // drop probability as avg approaches MaxTh
	Weight float64 // EWMA weight per arrival
	Limit  int     // hard physical bound (cells)

	seed  uint64
	rng   sim.RNG
	avg   float64
	count int // arrivals since the last early drop, for drop spreading
	q     cellQueue
}

// Default RED parameters: thresholds bracketing a fraction of the
// physical queue, the classic 2% max drop probability, and the 0.002
// EWMA weight from the RED paper.
const (
	DefaultREDMaxP   = 0.02
	DefaultREDWeight = 0.002
)

// NewRED returns a RED discipline with its private drop-lottery RNG
// seeded by seed. Zero parameters take defaults: limit
// DefaultPortQueueCells, thresholds at 1/4 and 3/4 of the limit.
func NewRED(minTh, maxTh int, maxP, weight float64, limit int, seed uint64) *RED {
	if limit <= 0 {
		limit = DefaultPortQueueCells
	}
	if minTh <= 0 {
		minTh = limit / 4
	}
	if maxTh <= 0 {
		maxTh = limit * 3 / 4
	}
	if maxTh <= minTh {
		panic(fmt.Sprintf("atm: RED MaxTh %d must exceed MinTh %d", maxTh, minTh))
	}
	if maxP <= 0 {
		maxP = DefaultREDMaxP
	}
	if weight <= 0 {
		weight = DefaultREDWeight
	}
	r := &RED{MinTh: minTh, MaxTh: maxTh, MaxP: maxP, Weight: weight,
		Limit: limit, seed: seed}
	r.Reset()
	return r
}

// Enqueue implements Qdisc: update the average, then gate the arrival.
func (r *RED) Enqueue(c Cell, _ uint16) bool {
	r.avg = (1-r.Weight)*r.avg + r.Weight*float64(r.q.len())
	switch {
	case r.q.len() >= r.Limit || r.avg >= float64(r.MaxTh):
		// Forced drop: physically full, or the average says sustained
		// congestion.
		r.count = 0
		return false
	case r.avg < float64(r.MinTh):
		r.count = -1
	default:
		// Early-drop band: probability ramps from 0 at MinTh to MaxP at
		// MaxTh, spread by the count of arrivals since the last drop so
		// drops land roughly uniformly rather than in clumps.
		r.count++
		pb := r.MaxP * (r.avg - float64(r.MinTh)) / float64(r.MaxTh-r.MinTh)
		pa := pb
		if d := 1 - float64(r.count)*pb; d > 0 {
			pa = pb / d
		} else {
			pa = 1
		}
		if r.rng.Float64() < pa {
			r.count = 0
			return false
		}
	}
	r.q.push(c)
	return true
}

// Dequeue implements Qdisc.
func (r *RED) Dequeue() (Cell, bool) {
	if r.q.len() == 0 {
		return Cell{}, false
	}
	return r.q.pop(), true
}

// Len implements Qdisc.
func (r *RED) Len() int { return r.q.len() }

// AvgQueue exposes the EWMA for tests.
func (r *RED) AvgQueue() float64 { return r.avg }

// Reset implements Qdisc: empty the queue, zero the average, reseed.
func (r *RED) Reset() {
	r.q.reset()
	r.avg = 0
	r.count = -1
	r.rng = *sim.NewRNG(r.seed)
}

// DRR is deficit round robin (Shreedhar & Varghese 1995) keyed by egress
// VCI: each backlogged flow gets Quantum bytes of credit per round and
// transmits head cells while its deficit covers them, so competing flows
// share the link in proportion to quanta — byte-fair within one quantum
// regardless of arrival pattern — instead of in arrival (FIFO) order.
type DRR struct {
	Quantum int // bytes of credit per flow per round (>= CellSize)
	Limit   int // aggregate bound across all flow queues (cells)

	flows  map[uint16]*drrFlow
	active []uint16 // backlogged flows in round-robin order
	total  int
}

// drrFlow is one VCI's queue and deficit counter.
type drrFlow struct {
	q       cellQueue
	deficit int
	active  bool
}

// NewDRR returns a DRR discipline. Quantum below one cell is raised to
// CellSize (the classic requirement that a flow with a full quantum can
// always send its head packet); limit zero takes DefaultPortQueueCells.
func NewDRR(quantum, limit int) *DRR {
	if quantum < CellSize {
		quantum = CellSize
	}
	if limit <= 0 {
		limit = DefaultPortQueueCells
	}
	return &DRR{Quantum: quantum, Limit: limit, flows: make(map[uint16]*drrFlow)}
}

// Enqueue implements Qdisc: append to the flow's queue, activating the
// flow at the back of the round if it was idle. Arrivals beyond the
// aggregate limit drop (drop-from-tail of the offered cell, the simplest
// bound; per-flow accounting still isolates service order).
func (d *DRR) Enqueue(c Cell, flow uint16) bool {
	if d.total >= d.Limit {
		return false
	}
	f := d.flows[flow]
	if f == nil {
		f = &drrFlow{}
		d.flows[flow] = f
	}
	if !f.active {
		f.active = true
		f.deficit = 0
		d.active = append(d.active, flow)
	}
	f.q.push(c)
	d.total++
	return true
}

// Dequeue implements Qdisc: serve the head of the active list, renewing
// its deficit by one quantum when exhausted and rotating it to the back
// of the round.
func (d *DRR) Dequeue() (Cell, bool) {
	for len(d.active) > 0 {
		key := d.active[0]
		f := d.flows[key]
		if f.deficit < CellSize {
			// New round for this flow: grant the quantum and rotate.
			f.deficit += d.Quantum
			d.active = append(d.active[1:], key)
			continue
		}
		f.deficit -= CellSize
		c := f.q.pop()
		d.total--
		if f.q.len() == 0 {
			f.active = false
			f.deficit = 0
			d.active = d.active[1:]
		}
		return c, true
	}
	return Cell{}, false
}

// Len implements Qdisc.
func (d *DRR) Len() int { return d.total }

// Reset implements Qdisc.
func (d *DRR) Reset() {
	for k := range d.flows {
		delete(d.flows, k)
	}
	d.active = d.active[:0]
	d.total = 0
}
