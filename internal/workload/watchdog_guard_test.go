package workload

import (
	"strings"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
)

// These are the watchdog revert-guard tests: they re-create the two
// configurations that historically hung the suite — by reverting the
// fixes via the DisableGiveUp / NoSbCompress knobs — and assert the
// no-progress watchdog converts each livelock into a failing run whose
// diagnostic names the stuck connections, instead of a run that never
// returns. If a future change reintroduces either livelock with the
// fixes nominally in place, the same watchdog (armed by default in
// every generator) fails the affected test with the same diagnostic.

// disableGiveUp reverts every host to the historical
// retransmit-forever behaviour.
func disableGiveUp(l *lab.Lab) {
	for _, h := range l.Hosts {
		h.TCP.DisableGiveUp = true
	}
}

// assertWatchdogDiag checks the error is the watchdog abort with the
// full diagnostic: the stall headline, the pending-event histogram, and
// at least one stuck connection with its retransmission backoff.
func assertWatchdogDiag(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("run completed; want the watchdog to abort the livelock")
	}
	for _, want := range []string{
		"watchdog", "no workload progress", "pending events", "rexmt-shift",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("watchdog diagnostic missing %q:\n%v", want, err)
		}
	}
}

// orphanedTeardownCfg is the PR 9 orphaned-teardown livelock
// configuration, verbatim from the loaded-study regression test
// (core/loaded_test.go): RED on the switch ports, Gilbert–Elliott burst
// loss on the links, cross traffic beside the measured fan-in, seed 0.
// Burst loss plus RED kills whole teardown exchanges; before transport
// give-up the orphaned closer retransmitted its FIN forever.
func orphanedTeardownCfg() lab.Config {
	return lab.Config{
		Link: lab.LinkATM, Seed: 0, PacketTrace: true,
		Qdisc:     lab.QdiscConfig{Kind: lab.QdiscRED},
		BurstLoss: sim.GEParams{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.5},
	}
}

// TestWatchdogCatchesOrphanedTeardownLivelock reverts transport give-up
// and runs the orphaned-teardown config: the watchdog must abort with a
// diagnostic rather than hang. The measured requests all complete — the
// livelock is pure post-completion teardown — so only the watchdog
// stands between this configuration and an infinite run.
func TestWatchdogCatchesOrphanedTeardownLivelock(t *testing.T) {
	l := lab.NewTopology(orphanedTeardownCfg(), 5)
	disableGiveUp(l)
	g := FanIn{Requests: 2, Warmup: 1, Cross: &CrossTraffic{Flows: 2}}
	_, err := g.Run(l)
	assertWatchdogDiag(t, err)
}

// TestGiveUpDrainsOrphanedTeardown is the control: the identical
// configuration with give-up in place (the fix) drains the orphaned
// teardown within the transport's bounded backoff, well inside the
// default watchdog horizon — the run completes and the watchdog stays
// quiet.
func TestGiveUpDrainsOrphanedTeardown(t *testing.T) {
	l := lab.NewTopology(orphanedTeardownCfg(), 5)
	g := FanIn{Requests: 2, Warmup: 1, Cross: &CrossTraffic{Flows: 2}}
	r, err := g.Run(l)
	if err != nil {
		t.Fatalf("give-up should bound the teardown drain: %v", err)
	}
	if r.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", r.Errors)
	}
}

// TestWatchdogCatchesSubMSSBulkCollapse reverts both PR 9 fixes —
// sbcompress (kern.NoSbCompress) and transport give-up — and runs the
// sub-MSS bulk shape scaled to the cliff: sixteen clients streaming
// one-byte writes. Without sbcompress every write stays its own mbuf
// and each (re)transmission pays mcopy's per-mbuf charge, overloading
// the server into the synchronized-RTO storm whose close phase then
// wedges without give-up: the historical hang. The watchdog converts it
// into a failing run naming the connections still spinning in teardown.
// (The same shape at bulk_submss_test.go's sizes, with the fixes in
// place, completes in seconds of simulated time.)
func TestWatchdogCatchesSubMSSBulkCollapse(t *testing.T) {
	cfg := lab.Config{Link: lab.LinkATM, Seed: 1, PacketTrace: true}
	l := lab.NewTopology(cfg, 17)
	disableGiveUp(l)
	for _, h := range l.Hosts {
		h.Kern.NoSbCompress = true
	}
	g := Bulk{Bytes: 16384, Chunk: 1}
	_, err := g.Run(l)
	assertWatchdogDiag(t, err)
}
