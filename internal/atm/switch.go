package atm

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
)

// DefaultSwitchLatency is the fixed per-cell forwarding latency of the
// switch fabric, in the range of early TAXI-based ATM switches (a few
// cell times).
const DefaultSwitchLatency = 5 * sim.Microsecond

// DefaultPortQueueCells bounds each output port's queue. Output-queued
// switches drop on egress congestion; the default is deep enough that
// the experiments only drop under deliberately oversubscribed fan-in.
const DefaultPortQueueCells = 1024

// vcKey identifies a virtual channel arriving at the switch: the ingress
// port and the VCI the cell carries.
type vcKey struct {
	port int
	vci  uint16
}

// vcRoute is the egress side of a VC table entry: the output port and
// the VCI the cell leaves with (ATM switches rewrite VCIs per hop).
type vcRoute struct {
	port int
	vci  uint16
}

// Switch is a simple output-queued ATM cell switch: hosts attach through
// ports, other switches attach through trunk ports (ConnectTrunk), and a
// VC table maps (ingress port, VCI) to (egress port, VCI). Each egress
// port paces cells onto its fiber at the link rate, so concurrent
// senders to one destination queue at that port — the fan-in contention
// point of a hub topology.
//
// The VC table starts empty and is populated on demand by a Fabric
// (routed topologies install a flow's path when its first datagram is
// segmented) or eagerly by a test harness via AddVC. Its size is
// therefore O(active flows crossing this switch), never O(hosts²).
type Switch struct {
	env *sim.Env

	// Latency is the fixed fabric forwarding latency per cell.
	Latency sim.Time
	// PortQueueCells is the egress queue bound; cells arriving at a full
	// queue are dropped (and counted in CellsDropped).
	PortQueueCells int

	ports []*Port
	vc    map[vcKey]vcRoute

	// Counters.
	CellsSwitched int64
	CellsUnrouted int64
	CellsDropped  int64
	HECErrors     int64
}

// NewSwitch returns an empty switch scheduling on env.
func NewSwitch(env *sim.Env) *Switch {
	return &Switch{
		env:            env,
		Latency:        DefaultSwitchLatency,
		PortQueueCells: DefaultPortQueueCells,
		vc:             make(map[vcKey]vcRoute),
	}
}

// Reset returns the switch to its just-constructed state for testbed
// reuse: every port's egress pacing rewinds to idle at time zero with
// its queues emptied (retaining backing arrays), and the counters clear.
// Port attachments and the VC table survive — attachments are the
// topology, and VC entries (whether installed eagerly or on demand) name
// the same routes a fresh lab would install for the same flows, so
// keeping them is invisible to simulated behaviour.
func (sw *Switch) Reset() {
	for _, p := range sw.ports {
		p.busy = 0
		p.queued = 0
		p.egress.reset()
		p.flight.reset()
		p.pre.reset()
		p.qdServing = false
		if p.qd != nil {
			p.qd.Reset()
		}
		p.down = false
		p.DownDrops = 0
	}
	sw.CellsSwitched, sw.CellsUnrouted, sw.CellsDropped, sw.HECErrors = 0, 0, 0, 0
}

// Port is one switch port: the fiber to a single far end — an attached
// host adapter or a peer switch's trunk port — plus the egress queue
// pacing state and, for trunk ports, the egress link's VCI allocator.
type Port struct {
	sw    *Switch
	index int
	// out is the far end of the fiber (an *Adapter or a peer *Port);
	// bits and prop are the link's rate and one-way propagation delay,
	// taken from the attached adapter's cost model for host ports and
	// from the model handed to ConnectTrunk for trunk ports.
	out  cellSink
	bits float64
	prop sim.Time

	busy   sim.Time // when the egress link finishes its current cell
	queued int      // cells committed to the egress queue

	// vci allocates per-flow VCIs on this egress link for routed
	// fabrics; nil on host-facing ports, whose egress VCI is fixed by
	// the source-naming convention (DefaultVCI + source host index).
	vci *vciAlloc

	// egress holds cells committed to the port's output pacing and
	// flight the cells crossing the fiber; outFn/inFn are bound once so
	// forwarding a cell schedules its two wire events without closure
	// allocations (egress completion times are monotonic per port, so
	// FIFO order matches event order).
	egress cellQueue
	flight cellQueue
	outFn  func()
	inFn   func()

	// cut, when set, marks the far end of this fiber as living in another
	// shard: instead of queueing the cell locally and scheduling its
	// arrival, forward hands it to the cluster coordinator with the two
	// wire times serial execution would have used (scheduleAt = egress
	// engine completion, at = far-end arrival), and the local cellout
	// event — cutFn, bound by SetCut — only releases the queue slot.
	cut   func(scheduleAt, at sim.Time, c Cell)
	cutFn func()

	// qd, when installed, replaces the built-in drop-tail depth with a
	// pluggable queue discipline. The qdisc path separates the fabric
	// pipeline (fixed Latency, modeled by the pre queue and qdInFn event)
	// from link service (one cell at a time, picked by qd.Dequeue), so
	// disciplines that reorder — DRR — actually control transmission
	// order, which the legacy precomputed-busy-time path cannot allow.
	// A nil qd leaves the legacy path byte-identical.
	qd        Qdisc
	pre       cellQueue // cells crossing the fabric toward the qdisc
	qdServing bool      // link currently clocking a cell out
	qdInFn    func()
	qdOutFn   func()

	// down marks the port failed (fault injection): cells arriving over
	// its fiber are dropped before the VC lookup until recovery. Cells
	// already committed to the egress queue stay parked and transmit
	// after recovery — a port failure loses wire traffic, not queue
	// memory. The disarmed cost is one boolean test per forwarded cell.
	down bool

	// DownDrops counts cells the down-state discarded.
	DownDrops int64
}

// Index returns the port's number on the switch.
func (p *Port) Index() int { return p.index }

// SetDown flips the port's fault state: while down, cells arriving over
// the port's fiber are dropped at ingress.
func (p *Port) SetDown(down bool) { p.down = down }

// Down reports the port's fault state.
func (p *Port) Down() bool { return p.down }

// SetQdisc installs a queue discipline on the port's egress, replacing
// the built-in drop-tail depth. Install before traffic flows; nil
// restores the legacy path.
func (p *Port) SetQdisc(q Qdisc) {
	p.qd = q
	if q != nil && p.qdInFn == nil {
		p.qdInFn = p.qdIn
		p.qdOutFn = p.qdCellOut
	}
}

// Qdisc returns the installed discipline (nil for the legacy drop-tail
// depth).
func (p *Port) Qdisc() Qdisc { return p.qd }

// Port returns the port at index i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// qdIn fires when a cell finishes crossing the fabric toward a
// qdisc-managed egress port: offer it to the discipline and start link
// service if the link is idle.
func (p *Port) qdIn() {
	c := p.pre.pop()
	h, err := ParseHeader(&c)
	if err != nil {
		p.sw.HECErrors++
		return
	}
	if !p.qd.Enqueue(c, h.VCI) {
		p.sw.CellsDropped++
		return
	}
	p.sw.CellsSwitched++
	p.queued++
	p.qdKick()
}

// qdKick starts transmitting the discipline's next cell if the link is
// idle and the queue non-empty. On a cut port the delivery is staged
// with the coordinator here, at commit time — arrival is one cell
// serialization plus propagation away, exactly the cluster's lookahead
// floor, so deferring the stage to transmission completion (as the
// local path may) would under-run the conservative horizon.
func (p *Port) qdKick() {
	if p.qdServing {
		return
	}
	c, ok := p.qd.Dequeue()
	if !ok {
		return
	}
	p.qdServing = true
	env := p.sw.env
	start := env.Now()
	if p.busy > start {
		start = p.busy
	}
	end := start + cost.WireTime(CellSize, p.bits)
	p.busy = end
	if p.cut != nil {
		p.cut(end, end+p.prop, c)
	} else {
		p.egress.push(c)
	}
	env.At(end, "atmsw.cellout", p.qdOutFn)
}

// qdCellOut fires when the link finishes clocking a qdisc-scheduled cell
// onto the fiber: release the slot, deliver (cut ports already staged at
// commit time), and start the next cell.
func (p *Port) qdCellOut() {
	p.qdServing = false
	p.queued--
	if p.cut == nil {
		c := p.egress.pop()
		p.flight.push(c)
		p.sw.env.After(p.prop, "atmsw.cellin", p.inFn)
	}
	p.qdKick()
}

// newPort wires one port's queues and bound callbacks.
func (sw *Switch) newPort(out cellSink, bits float64, prop sim.Time) *Port {
	p := &Port{sw: sw, index: len(sw.ports), out: out, bits: bits, prop: prop}
	p.outFn = p.cellOut
	p.inFn = p.cellIn
	sw.ports = append(sw.ports, p)
	return p
}

// AttachPort connects an adapter to a new port and returns its index.
func (sw *Switch) AttachPort(a *Adapter) int {
	p := sw.newPort(a, a.K.Cost.ATMLinkBitsPS, a.K.Cost.ATMPropagation)
	a.link = p
	return p.index
}

// ConnectTrunk joins two switches with a duplex inter-switch fiber at
// the model's link rate and returns the new port index on each. Trunk
// ports carry many flows, so each side gets a VCI allocator for its
// egress direction of the link.
func ConnectTrunk(a, b *Switch, model *cost.Model) (aPort, bPort int) {
	pa := a.newPort(nil, model.ATMLinkBitsPS, model.ATMPropagation)
	pb := b.newPort(nil, model.ATMLinkBitsPS, model.ATMPropagation)
	pa.out, pb.out = pb, pa
	pa.vci, pb.vci = &vciAlloc{}, &vciAlloc{}
	return pa.index, pb.index
}

// SetCut diverts this port's egress across a shard boundary: every cell
// forwarded out of it is staged with the cluster coordinator instead of
// being delivered locally. The egress pacing, queue accounting, and
// counters are untouched — only the delivery leg moves — so the staged
// (scheduleAt, at) times are exactly the event times a serial run would
// have scheduled.
func (p *Port) SetCut(stage func(scheduleAt, at sim.Time, c Cell)) {
	p.cut = stage
	p.cutFn = func() { p.queued-- }
}

// InjectCell delivers a cell that crossed a shard boundary into this
// port as if it had just arrived over the fiber. The cluster coordinator
// schedules the injection in this switch's environment at the staged
// arrival time, mirroring the peer's cellIn.
func (p *Port) InjectCell(c Cell) { p.sw.forward(p, c) }

// cellOut fires when the egress link finishes clocking one cell onto the
// port's fiber: release the queue slot and start the propagation delay.
func (p *Port) cellOut() {
	p.queued--
	p.flight.push(p.egress.pop())
	p.sw.env.After(p.prop, "atmsw.cellin", p.inFn)
}

// cellIn fires when the cell reaches the far end of the fiber.
func (p *Port) cellIn() {
	p.out.deliverCell(p.flight.pop())
}

// NumPorts returns the number of attached ports.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// NumVCs returns the number of installed VC table entries — O(active
// flows) in routed fabrics, the quantity the state-sparsity tests pin.
func (sw *Switch) NumVCs() int { return len(sw.vc) }

// AddVC installs a unidirectional VC table entry: cells arriving on
// inPort with inVCI leave outPort carrying outVCI.
func (sw *Switch) AddVC(inPort int, inVCI uint16, outPort int, outVCI uint16) {
	if inPort < 0 || inPort >= len(sw.ports) || outPort < 0 || outPort >= len(sw.ports) {
		panic(fmt.Sprintf("atm: VC %d:%d -> %d:%d references a missing port",
			inPort, inVCI, outPort, outVCI))
	}
	sw.vc[vcKey{inPort, inVCI}] = vcRoute{outPort, outVCI}
}

// RemoveVC tears one VC table entry down (idle-VC reclamation); removing
// a missing entry is a no-op.
func (sw *Switch) RemoveVC(inPort int, inVCI uint16) {
	delete(sw.vc, vcKey{inPort, inVCI})
}

// deliverCell implements cellSink for a port: a cell arriving over the
// fiber — from an attached host or a peer switch — enters the fabric.
func (p *Port) deliverCell(c Cell) { p.sw.forward(p, c) }

// forward looks the cell up in the VC table, rewrites the VCI, and
// queues it on the egress port. The egress link paces cells back to back
// at the link rate; the fabric adds its fixed latency up front.
func (sw *Switch) forward(from *Port, c Cell) {
	if from.down {
		// Failed ingress: the fiber is dark, the cell never enters the
		// fabric. (The egress direction of the same outage is dropped at
		// the far-end adapter's own down flag.)
		from.DownDrops++
		return
	}
	h, err := ParseHeader(&c)
	if err != nil {
		// Header corruption on the ingress fiber: the switch's own HEC
		// check discards the cell, surfacing later as a sequence gap.
		sw.HECErrors++
		return
	}
	route, ok := sw.vc[vcKey{from.index, h.VCI}]
	if !ok {
		sw.CellsUnrouted++
		return
	}
	out := sw.ports[route.port]
	if out.qd != nil {
		// Qdisc path: the cell crosses the fabric pipeline (fixed
		// Latency), is offered to the discipline — whose Enqueue makes
		// the drop decision — and waits for the egress link to pick it
		// in the discipline's service order.
		h.VCI = route.vci
		h.Marshal(&c)
		out.pre.push(c)
		sw.env.After(sw.Latency, "atmsw.qdin", out.qdInFn)
		return
	}
	if out.queued >= sw.PortQueueCells {
		sw.CellsDropped++
		return
	}
	h.VCI = route.vci
	h.Marshal(&c) // rewrites the VCI and recomputes the HEC

	env := sw.env
	start := env.Now() + sw.Latency
	if out.busy > start {
		start = out.busy
	}
	end := start + cost.WireTime(CellSize, out.bits)
	out.busy = end
	out.queued++
	sw.CellsSwitched++
	if out.cut != nil {
		// Far end lives in another shard: stage the delivery with the
		// coordinator and keep only the queue-slot release local.
		out.cut(end, end+out.prop, c)
		env.At(end, "atmsw.cellout", out.cutFn)
		return
	}
	out.egress.push(c)
	env.At(end, "atmsw.cellout", out.outFn)
}

// vciAlloc hands out per-flow VCIs on one egress direction of a trunk
// link, recycling torn-down values so the 16-bit space bounds the number
// of *simultaneous* flows on the link, not the number ever set up.
type vciAlloc struct {
	next uint16
	free []uint16
}

// get allocates the next VCI on the link.
func (a *vciAlloc) get() uint16 {
	if n := len(a.free); n > 0 {
		v := a.free[n-1]
		a.free = a.free[:n-1]
		return v
	}
	if a.next == 0 {
		a.next = DefaultVCI
	}
	v := a.next
	if v == 0xffff {
		panic("atm: trunk link out of VCIs (65503 simultaneous flows); reclaim idle VCs")
	}
	a.next++
	return v
}

// put returns a torn-down VCI to the link's pool.
func (a *vciAlloc) put(v uint16) { a.free = append(a.free, v) }
