// Command breakdown regenerates the paper's per-layer latency
// decompositions: Table 2 (transmit side) and Table 3 (receive side),
// with the published values printed alongside for comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		side  = flag.String("side", "both", "which table: tx, rx, or both")
		iters = flag.Int("iters", 100, "measured iterations per size")
	)
	flag.Parse()
	opts := core.Options{Iterations: *iters, Warmup: 8}

	if *side == "tx" || *side == "both" {
		r, err := core.RunTable2(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "breakdown:", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
	}
	if *side == "rx" || *side == "both" {
		r, err := core.RunTable3(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "breakdown:", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
	}
}
