package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/paperdata"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CompareRow is one size's paper-versus-measured pair in a two-series
// experiment (ATM vs Ethernet, prediction on vs off, and so on).
type CompareRow struct {
	Size            int
	A, B            float64 // measured, µs (series meaning depends on table)
	DecreasePercent float64 // relative change the paper reports
}

// CompareResult is a regenerated two-series round-trip table.
type CompareResult struct {
	Title  string
	ALabel string
	BLabel string
	Rows   []CompareRow
	PaperA map[int]float64
	PaperB map[int]float64
}

// Render formats the table with paper values alongside measured ones.
func (r *CompareResult) Render() string {
	t := stats.NewTable(r.Title,
		"Size", r.ALabel, "paper", r.BLabel, "paper", "Δ%", "paperΔ%")
	for _, row := range r.Rows {
		paperDelta := stats.PercentDecrease(r.PaperA[row.Size], r.PaperB[row.Size])
		t.AddRow(row.Size, row.A, r.PaperA[row.Size], row.B, r.PaperB[row.Size],
			row.DecreasePercent, paperDelta)
	}
	return t.String()
}

// runCompare measures two configurations across all sizes, fanning the
// 2×len(Sizes) independent trials out over the sweep engine. The grid
// order (size-major, then series A/B) fixes each trial's index and so its
// derived seed: the rows are bit-identical at any worker count.
func runCompare(cfgA, cfgB lab.Config, o Options) ([]CompareRow, error) {
	o = o.normalize()
	jobs := make([]runner.Job, 0, 2*len(Sizes))
	for _, size := range Sizes {
		for si, cfg := range [2]lab.Config{cfgA, cfgB} {
			size, cfg := size, cfg
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("size %d (%c)", size, 'A'+si),
				RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
					return MeasureRTTOn(tb, seeded(cfg, seed), size, o)
				},
			})
		}
	}
	outs, err := runner.Run(context.Background(), jobs, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	rows := make([]CompareRow, 0, len(Sizes))
	for i, size := range Sizes {
		a := outs[2*i].Value.(float64)
		b := outs[2*i+1].Value.(float64)
		rows = append(rows, CompareRow{
			Size: size, A: a, B: b,
			DecreasePercent: stats.PercentDecrease(a, b),
		})
	}
	return rows, nil
}

// RunTable1 regenerates Table 1: ATM versus Ethernet round-trip latency.
func RunTable1(o Options) (*CompareResult, error) {
	eth := baseConfig()
	eth.Link = lab.LinkEther
	rows, err := runCompare(eth, baseConfig(), o)
	if err != nil {
		return nil, err
	}
	return &CompareResult{
		Title:  "Table 1: ATM versus Ethernet round-trip latency (µs)",
		ALabel: "Ethernet", BLabel: "ATM",
		Rows:   rows,
		PaperA: paperdata.Table1.Ethernet,
		PaperB: paperdata.Table1.ATM,
	}, nil
}

// BreakdownResult is a regenerated Table 2 or Table 3.
type BreakdownResult struct {
	Title  string
	Side   string // "transmit" or "receive"
	Layers []trace.Layer
	Labels []string // presentation row labels matching Layers
	// PerSize maps transfer size to the measured breakdown.
	PerSize map[int]Breakdown
	Paper   map[string]map[int]float64
}

// Render formats the breakdown with one column per transfer size, paper
// values in parentheses.
func (r *BreakdownResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-14s", "Layer")
	for _, size := range Sizes {
		fmt.Fprintf(&b, "%14d", size)
	}
	b.WriteString("\n")
	line := 14 + 14*len(Sizes)
	b.WriteString(strings.Repeat("-", line) + "\n")
	for i, layer := range r.Layers {
		label := r.Labels[i]
		fmt.Fprintf(&b, "%-14s", label)
		for _, size := range Sizes {
			meas := r.PerSize[size].Rows[layer]
			paper := r.Paper[label][size]
			fmt.Fprintf(&b, "%7.0f(%4.0f)", meas, paper)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-14s", "Total")
	for _, size := range Sizes {
		fmt.Fprintf(&b, "%7.0f(%4.0f)", r.PerSize[size].Total, r.Paper["Total"][size])
	}
	b.WriteString("\n")
	return b.String()
}

// RunTable2 regenerates Table 2: the transmit-side latency breakdown.
func RunTable2(o Options) (*BreakdownResult, error) {
	return runBreakdown(o, "transmit")
}

// RunTable3 regenerates Table 3: the receive-side latency breakdown.
func RunTable3(o Options) (*BreakdownResult, error) {
	return runBreakdown(o, "receive")
}

func runBreakdown(o Options, side string) (*BreakdownResult, error) {
	o = o.normalize()
	res := &BreakdownResult{
		Side:    side,
		PerSize: map[int]Breakdown{},
	}
	if side == "transmit" {
		res.Title = "Table 2: Breakdown of Transmit Side Latency (µs, paper in parens)"
		res.Layers = TxLayers
		res.Labels = []string{"User", "TCP.checksum", "TCP.mcopy", "TCP.segment", "IP", "ATM"}
		res.Paper = paperdata.Table2
	} else {
		res.Title = "Table 3: Breakdown of Receive Side Latency (µs, paper in parens)"
		res.Layers = RxLayers
		res.Labels = []string{"ATM", "IPQ", "IP", "TCP.checksum", "TCP.segment", "Wakeup", "User"}
		res.Paper = paperdata.Table3
	}
	type pair struct{ tx, rx Breakdown }
	jobs := make([]runner.Job, 0, len(Sizes))
	for _, size := range Sizes {
		size := size
		jobs = append(jobs, runner.Job{
			Label: fmt.Sprintf("breakdown size %d", size),
			RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
				tx, rx, err := MeasureBreakdownsOn(tb, seeded(baseConfig(), seed),
					size, o.Iterations, o.Warmup)
				if err != nil {
					return nil, err
				}
				return pair{tx, rx}, nil
			},
		})
	}
	outs, err := runner.Run(context.Background(), jobs, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	for i, size := range Sizes {
		p := outs[i].Value.(pair)
		if side == "transmit" {
			res.PerSize[size] = p.tx
		} else {
			res.PerSize[size] = p.rx
		}
	}
	return res, nil
}

// RunTable4 regenerates Table 4 (and Figure 1's series): round trips with
// header prediction disabled versus enabled.
func RunTable4(o Options) (*CompareResult, error) {
	noPred := baseConfig()
	noPred.DisablePrediction = true
	rows, err := runCompare(noPred, baseConfig(), o)
	if err != nil {
		return nil, err
	}
	return &CompareResult{
		Title:  "Table 4 / Figure 1: Effects of Header Prediction (µs)",
		ALabel: "NoPred", BLabel: "Pred",
		Rows:   rows,
		PaperA: paperdata.Table4.NoPrediction,
		PaperB: paperdata.Table4.Prediction,
	}, nil
}

// RunTable6 regenerates Table 6: the standard checksum versus the
// combined copy-and-checksum kernel.
func RunTable6(o Options) (*CompareResult, error) {
	comb := baseConfig()
	comb.Mode = cost.ChecksumIntegrated
	rows, err := runCompare(baseConfig(), comb, o)
	if err != nil {
		return nil, err
	}
	return &CompareResult{
		Title:  "Table 6: Standard checksum versus combined copy+checksum (µs)",
		ALabel: "Standard", BLabel: "Combined",
		Rows:   rows,
		PaperA: paperdata.Table6.Standard,
		PaperB: paperdata.Table6.Combined,
	}, nil
}

// RunTable7 regenerates Table 7: round trips with and without the TCP
// checksum.
func RunTable7(o Options) (*CompareResult, error) {
	none := baseConfig()
	none.Mode = cost.ChecksumNone
	rows, err := runCompare(baseConfig(), none, o)
	if err != nil {
		return nil, err
	}
	return &CompareResult{
		Title:  "Table 7: Round trips with and without the TCP checksum (µs)",
		ALabel: "Checksum", BLabel: "NoChecksum",
		Rows:   rows,
		PaperA: paperdata.Table7.Checksum,
		PaperB: paperdata.Table7.NoChecksum,
	}, nil
}
