package trace

import (
	"testing"

	"repro/internal/sim"
)

func TestDisabledRecorderIsNoop(t *testing.T) {
	var r Recorder
	r.Span(LayerUserTx, 0, 100)
	r.Mark("m", 50)
	if len(r.Spans()) != 0 || len(r.Marks()) != 0 {
		t.Fatal("disabled recorder stored records")
	}
	if r.Enabled() {
		t.Fatal("zero value enabled")
	}
	var nilR *Recorder
	if nilR.Enabled() {
		t.Fatal("nil recorder enabled")
	}
}

func TestEnableDisableReset(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Span(LayerIPTx, 10, 20)
	r.Disable()
	r.Span(LayerIPTx, 20, 30) // dropped
	if len(r.Spans()) != 1 {
		t.Fatalf("spans = %d", len(r.Spans()))
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset kept spans")
	}
}

func TestInvertedSpanPanics(t *testing.T) {
	var r Recorder
	r.Enable()
	defer func() {
		if recover() == nil {
			t.Fatal("inverted span accepted")
		}
	}()
	r.Span(LayerIPTx, 100, 50)
}

func TestBreakdownClipsToWindow(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Span(LayerUserTx, 0, 100)   // 50 inside
	r.Span(LayerIPTx, 60, 80)     // fully inside
	r.Span(LayerATMTx, 140, 200)  // 10 inside
	r.Span(LayerWakeup, 300, 400) // outside
	b := r.Breakdown(50, 150)
	if b[LayerUserTx] != 50 || b[LayerIPTx] != 20 || b[LayerATMTx] != 10 {
		t.Fatalf("breakdown %v", b)
	}
	if _, ok := b[LayerWakeup]; ok {
		t.Fatal("outside span included")
	}
}

func TestBreakdownSumsMultipleSpans(t *testing.T) {
	var r Recorder
	r.Enable()
	for i := sim.Time(0); i < 5; i++ {
		r.Span(LayerIPQ, i*100, i*100+10)
	}
	b := r.Breakdown(0, 1000)
	if b[LayerIPQ] != 50 {
		t.Fatalf("IPQ sum = %v", b[LayerIPQ])
	}
}

func TestLastMark(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Mark(MarkFrameArrival, 100)
	r.Mark(MarkFrameArrival, 300)
	r.Mark("other", 400)
	r.Mark(MarkFrameArrival, 500)
	if at, ok := r.LastMark(MarkFrameArrival, 450); !ok || at != 300 {
		t.Fatalf("LastMark = %v,%v", at, ok)
	}
	if at, ok := r.LastMark(MarkFrameArrival, 600); !ok || at != 500 {
		t.Fatalf("LastMark = %v,%v", at, ok)
	}
	if _, ok := r.LastMark(MarkFrameArrival, 50); ok {
		t.Fatal("found a mark before any exist")
	}
	if _, ok := r.LastMark("absent", 1000); ok {
		t.Fatal("found a mark that was never recorded")
	}
}

func TestFirstMarkAfter(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Mark("x", 100)
	r.Mark("x", 300)
	if at, ok := r.FirstMarkAfter("x", 150); !ok || at != 300 {
		t.Fatalf("FirstMarkAfter = %v,%v", at, ok)
	}
	if at, ok := r.FirstMarkAfter("x", 100); !ok || at != 100 {
		t.Fatalf("FirstMarkAfter inclusive = %v,%v", at, ok)
	}
	if _, ok := r.FirstMarkAfter("x", 301); ok {
		t.Fatal("found mark after the last")
	}
}

func TestWindowSpans(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Span(LayerUserRx, 0, 100)
	r.Span(LayerIPRx, 200, 300)
	got := r.WindowSpans(50, 250)
	if len(got) != 2 {
		t.Fatalf("WindowSpans = %v", got)
	}
	if got[0].Start != 50 || got[0].End != 100 {
		t.Fatalf("first clipped to [%v,%v]", got[0].Start, got[0].End)
	}
	if got[1].Start != 200 || got[1].End != 250 {
		t.Fatalf("second clipped to [%v,%v]", got[1].Start, got[1].End)
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Layer: LayerIPTx, Start: 10, End: 35}
	if s.Duration() != 25 {
		t.Fatalf("Duration = %v", s.Duration())
	}
}
