package atm

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MTU is the datagram size the driver advertises to IP. The paper's ATM
// MTU is "close to 9K"; the AAL3/4 maximum here.
const MTU = MaxDatagram

// Driver is the ATM network driver: it implements ip.NetIf on the
// transmit side and runs a receive interrupt service process that drains
// the adapter FIFO, reassembles AAL3/4 frames, and hands datagrams to IP.
type Driver struct {
	K       *kern.Kernel
	Adapter *Adapter
	IP      *ip.Stack

	// Mode selects the receive-side checksum strategy. In
	// ChecksumIntegrated the driver fuses a partial TCP checksum into
	// its device-to-kernel copy and stashes it in the mbufs (§4.1.1:
	// "we have implemented the combined copy and checksum from the
	// device memory to kernel memory").
	Mode cost.ChecksumMode

	// seg carries traffic on the default PVC (the single VC of the
	// paper's switchless fiber); vcs maps destination IP addresses to
	// per-VC transmit state, installed either eagerly by a test harness
	// (AddVC) or on demand through SetupVC when the first datagram to a
	// destination is segmented.
	seg Segmenter
	vcs map[uint32]*txVC

	// SetupVC, when set, is consulted on a transmit-side VC miss: the
	// routed fabric installs the switch path for (this host → dst) and
	// returns the VCI the host transmits on. Signaling is modeled as
	// instantaneous — it charges no simulated time — so an on-demand
	// topology is timing-identical to one with every VC pre-installed.
	// TeardownVC is the inverse, called when the driver reclaims an idle
	// VC under TxVCLimit.
	SetupVC    func(dst uint32) (vci uint16, ok bool)
	TeardownVC func(dst uint32)

	// TxVCLimit, when positive, bounds the transmit VC cache: installing
	// a VC beyond the limit evicts the least-recently-used other entry
	// (ties broken by lowest destination address, so eviction order is
	// deterministic) and tears its path down. Zero means unlimited.
	TxVCLimit int
	// reasms holds one reassembler per incoming VCI. Cells from
	// different sources arrive interleaved on distinct VCIs in switched
	// topologies; reassembly state must be per VC.
	reasms map[uint16]*Reassembler
	// rxStart notes, per VCI, when the driver popped the first cell of
	// the datagram currently reassembling — the start of that
	// datagram's driver-receive span in the packet trace.
	rxStart map[uint16]sim.Time

	// MTUOverride, when positive, lowers the MTU the driver advertises to
	// IP below the AAL3/4 maximum. TCP derives its MSS from it, so it is
	// the knob for sweeping segment size on the ATM link.
	MTUOverride int

	// HostCorruptRate flips one random bit of each reassembled datagram
	// during the device-to-host transfer — the paper's second error
	// source ("errors introduced by the network controllers in moving
	// data between host and controller memories", §4.2.1), which the
	// AAL CRC cannot see and only the TCP checksum can catch.
	HostCorruptRate float64

	// txBusy serializes Output, as splimp does around the real driver:
	// CPU charges yield to the event loop, so without the lock a user
	// send and a protocol-timer send could interleave cell pushes.
	txBusy bool
	txWait *sim.WaitQueue

	// lin and cells are the transmit path's scratch buffers (the
	// linearized datagram and its cells), reused across Output calls —
	// safe because txBusy serializes them.
	lin   []byte
	cells []Cell

	// outOp caches the transmit frame; txBusy serializes Output, so one
	// cached frame covers the steady state (overlapping callers park on
	// txWait with a fresh frame).
	outOp *outputOp

	// FramesIn and FramesOut count successfully reassembled and
	// transmitted datagrams.
	FramesIn  int64
	FramesOut int64
	// ReassemblyErrors counts cells the AAL reassembler rejected.
	ReassemblyErrors int64
	// HECErrors counts cells discarded for a bad header checksum.
	HECErrors int64
	// HostCorruptions counts datagram bits flipped by HostCorruptRate.
	HostCorruptions int64
}

// DefaultVCI is the first non-reserved VCI, the single PVC of the
// paper's switchless lab.
const DefaultVCI = 32

// NewDriver creates the driver, wires it to the adapter and IP stack, and
// starts the receive service process.
func NewDriver(k *kern.Kernel, a *Adapter, ipStack *ip.Stack) *Driver {
	d := &Driver{K: k, Adapter: a, IP: ipStack}
	d.txWait = k.Env.NewWaitQueue(k.Name + ".atm.txlock")
	d.seg.VCI = DefaultVCI
	ipStack.Attach(d)
	k.Env.Spawn(k.Name+".atmintr", &rxprocFrame{d: d})
	return d
}

// Reset returns the driver to its just-constructed state for testbed
// reuse: every virtual channel's segmenter and reassembler rewinds
// (retaining scratch buffers and the VC table itself — routing is
// topology, not trial state), open receive spans and the transmit lock
// clear, configuration knobs return to defaults for the lab to re-apply,
// and counters zero. The receive service process stays parked on the
// adapter's RxReady queue.
func (d *Driver) Reset() {
	d.Mode = cost.ChecksumStandard
	d.MTUOverride = 0
	d.HostCorruptRate = 0
	d.txBusy = false
	d.seg.Reset()
	for dst, vc := range d.vcs {
		if vc.demand {
			// On-demand entries are trial state, not topology: dropping
			// them restores the exact fresh-build contract (the next
			// datagram re-installs through SetupVC, and the fabric
			// returns the already-routed path, so the wire bytes and
			// timing match a brand-new lab).
			delete(d.vcs, dst)
			continue
		}
		vc.seg.Reset()
		vc.lastUse = 0
	}
	for _, r := range d.reasms {
		r.Reset()
	}
	clear(d.rxStart)
	d.FramesIn, d.FramesOut = 0, 0
	d.ReassemblyErrors, d.HECErrors, d.HostCorruptions = 0, 0, 0
}

// txVC is the transmit side of one virtual channel: its segmenter, the
// last time a datagram used it (for LRU reclamation), and whether it was
// installed on demand (trial state) or eagerly (topology).
type txVC struct {
	seg     Segmenter
	lastUse sim.Time
	demand  bool
}

// AddVC installs a transmit-side virtual channel eagerly: datagrams
// addressed to dst leave on their own segmenter carrying vci. Test
// harnesses call it per reachable host; without any VCs and without a
// SetupVC hook every datagram rides the default PVC, preserving the
// two-host fiber behaviour. Routed fabrics do not call it — they install
// VCs lazily through SetupVC.
func (d *Driver) AddVC(dst uint32, vci uint16) {
	if d.vcs == nil {
		d.vcs = make(map[uint32]*txVC)
	}
	d.vcs[dst] = &txVC{seg: Segmenter{VCI: vci}}
}

// NumTxVCs returns how many transmit VCs are installed — O(peers this
// host has sent to) under on-demand setup, the quantity the
// state-sparsity tests pin.
func (d *Driver) NumTxVCs() int { return len(d.vcs) }

// NumReassemblers returns how many receive-side reassembly contexts
// exist — O(peers that have sent to this host).
func (d *Driver) NumReassemblers() int { return len(d.reasms) }

// segFor picks the segmenter for a datagram's destination address,
// installing the VC on demand when a routed fabric is attached. The miss
// path charges no simulated time (signaling is instantaneous), so lazily
// built topologies behave bit-identically to eagerly meshed ones.
func (d *Driver) segFor(now sim.Time, dst uint32) *Segmenter {
	if d.vcs == nil && d.SetupVC == nil {
		return &d.seg
	}
	if vc, ok := d.vcs[dst]; ok {
		vc.lastUse = now
		return &vc.seg
	}
	if d.SetupVC == nil {
		panic(fmt.Sprintf("atm: no VC to destination %#x", dst))
	}
	vci, ok := d.SetupVC(dst)
	if !ok {
		panic(fmt.Sprintf("atm: fabric has no route to destination %#x", dst))
	}
	if d.vcs == nil {
		d.vcs = make(map[uint32]*txVC)
	}
	vc := &txVC{seg: Segmenter{VCI: vci}, lastUse: now, demand: true}
	d.vcs[dst] = vc
	if d.TxVCLimit > 0 && len(d.vcs) > d.TxVCLimit {
		d.evictIdleVC(dst)
	}
	return &vc.seg
}

// evictIdleVC tears down the least-recently-used on-demand VC other than
// keep. The scan is O(installed VCs), which TxVCLimit itself bounds; ties
// on lastUse break toward the lowest destination address so that eviction
// is a pure function of simulated history.
func (d *Driver) evictIdleVC(keep uint32) {
	var (
		victim uint32
		oldest sim.Time
		found  bool
	)
	for dst, vc := range d.vcs {
		if dst == keep || !vc.demand {
			continue
		}
		if !found || vc.lastUse < oldest || (vc.lastUse == oldest && dst < victim) {
			victim, oldest, found = dst, vc.lastUse, true
		}
	}
	if !found {
		return
	}
	delete(d.vcs, victim)
	if d.TeardownVC != nil {
		d.TeardownVC(victim)
	}
}

// DropRx reclaims the reassembly context for an incoming VCI, returning
// false (and keeping it) if a datagram is mid-reassembly on that channel.
func (d *Driver) DropRx(vci uint16) bool {
	r, ok := d.reasms[vci]
	if !ok {
		return true
	}
	if !r.Idle() {
		return false
	}
	delete(d.reasms, vci)
	delete(d.rxStart, vci)
	return true
}

// reasmFor picks (lazily creating) the reassembler for an incoming VCI.
func (d *Driver) reasmFor(vci uint16) *Reassembler {
	if d.reasms == nil {
		d.reasms = make(map[uint16]*Reassembler)
	}
	r, ok := d.reasms[vci]
	if !ok {
		r = &Reassembler{}
		d.reasms[vci] = r
	}
	return r
}

// Name implements ip.NetIf.
func (d *Driver) Name() string { return d.K.Name + ".atm0" }

// MTU implements ip.NetIf.
func (d *Driver) MTU() int {
	if d.MTUOverride > 0 && d.MTUOverride < MTU {
		return d.MTUOverride
	}
	return MTU
}

// Output implements ip.NetIf as a frame call (tail position): it segments
// the datagram into AAL3/4 cells and copies them into the transmit FIFO,
// blocking when the FIFO is full. Costs: a per-frame setup charge plus a
// per-cell compose-and-copy charge, all attributed to the ATM row. The
// span ends when the last cell has been written — the paper measures "up
// to when the ATM adapter is signaled to send the last byte of data", and
// on the TCA-100 writing the FIFO is the signal.
func (d *Driver) Output(p *sim.Proc, m *mbuf.Mbuf) {
	f := d.outOp
	if f != nil {
		d.outOp = nil
	} else {
		f = &outputOp{d: d}
	}
	f.pc = 0
	f.m = m
	p.Call(f)
}

// outputOp is the frame behind Driver.Output: the transmit-lock wait, the
// per-frame setup charge, the cell-push loop with its FIFO-full stalls,
// and the chain release.
type outputOp struct {
	d  *Driver
	pc int

	m         *mbuf.Mbuf
	txStart   sim.Time
	waitStart sim.Time
	i         int // next cell to push
}

// Step drives the transmit state machine.
func (f *outputOp) Step(p *sim.Proc) {
	d := f.d
	k := d.K
	for {
		switch f.pc {
		case 0: // acquire the transmit lock, charge per-frame setup
			if d.txBusy {
				d.txWait.Wait(p)
				return
			}
			d.txBusy = true
			f.txStart = k.Now()
			f.pc = 1
			if !k.Use(p, trace.LayerATMTx, k.Cost.ATMTxFrameFixed) {
				return
			}
		case 1: // linearize and segment into the scratch buffers
			data := mbuf.LinearizeInto(d.lin[:0], f.m)
			d.lin = data
			d.cells = d.segFor(k.Now(), ip.Dst(data)).SegmentAppend(d.cells[:0], data)
			f.i = 0
			f.pc = 2
		case 2: // cell-loop head: stall on a full FIFO or charge the push
			if f.i >= len(d.cells) {
				f.pc = 5
				continue
			}
			if d.Adapter.TxSpace() == 0 {
				f.waitStart = k.Now()
				f.pc = 3
				d.Adapter.SpaceAvail.Wait(p)
				return
			}
			f.pc = 4
			if !k.Use(p, trace.LayerATMTx, k.Cost.ATMTxPerCell) {
				return
			}
		case 3: // woken from a FIFO stall: the driver spins on the status
			// register, which is time in the ATM row.
			k.Attribute(p, trace.LayerATMTx, f.waitStart, k.Now())
			f.pc = 2
		case 4: // push the charged cell
			d.Adapter.PushTx(d.cells[f.i])
			f.i++
			f.pc = 2
		case 5: // trace events, then charge the chain free
			if k.Trace.PacketRecording() {
				id := k.PacketContext(p)
				k.Trace.Event(trace.Event{
					Kind: trace.EvDriverTx, At: f.txStart, Dur: k.Now() - f.txStart,
					ID: id, Len: len(d.lin),
				})
				// The final cell is on its way to the wire; it clears
				// the transmit engine at TxIdleAt.
				k.Trace.Event(trace.Event{
					Kind: trace.EvWireDepart, At: d.Adapter.TxIdleAt(),
					ID: id, Len: len(d.lin),
				})
			}
			d.FramesOut++
			f.pc = 6
			if c := k.FreeChainCost(f.m); c > 0 {
				if !k.Use(p, trace.LayerMbuf, c) {
					return
				}
			}
		case 6: // release the chain and the lock
			if f.m != nil {
				k.Pool.Free(f.m)
				f.m = nil
			}
			d.txBusy = false
			d.txWait.WakeAll()
			if d.outOp == nil {
				d.outOp = f
			}
			p.Return()
			return
		}
	}
}

// rxprocFrame is the receive interrupt service process. It wakes on the
// adapter's end-of-frame interrupt, drains the receive FIFO charging the
// per-cell receive cost, pushes cells through the reassembler, and — via
// its inlined deliver states — builds the mbuf chain for each completed
// datagram and enqueues it on the IP input queue.
type rxprocFrame struct {
	d  *Driver
	pc int

	// Drain-loop state.
	framePending bool
	popAt        sim.Time
	c            Cell
	frameEnd     bool
	arrivedAt    sim.Time

	// Deliver state (one datagram at a time).
	dg          []byte
	start       sim.Time
	pktID       trace.PacketID
	tagged      bool
	rest        []byte
	chain, tail *mbuf.Mbuf
}

// Step drives the receive service loop. The TCA-100 model interrupts per
// completed frame, so the driver sleeps until a frame-ending cell has
// landed, then drains cells up to and including it. Cells of a later,
// still-arriving frame stay in the FIFO until that frame's own interrupt
// — which is what makes driver processing of one segment overlap the
// wire arrival of the next at large transfer sizes (the Table 3 ATM-row
// nonlinearity).
func (f *rxprocFrame) Step(p *sim.Proc) {
	d := f.d
	k := d.K
	for {
		switch f.pc {
		case 0: // wait for a completed frame or the occupancy threshold
			if d.Adapter.FramesPending() == 0 && d.Adapter.RxAvail() < RxDrainThreshold {
				d.Adapter.RxReady.Wait(p)
				return
			}
			// Drain up to one complete frame, or — when woken by the
			// occupancy threshold with no complete frame present —
			// whatever cells have accumulated, so an overflow can never
			// wedge the receive path.
			f.framePending = d.Adapter.FramesPending() > 0
			f.pc = 1
		case 1: // pop the next cell and charge its receive cost
			f.popAt = k.Now()
			c, ok := d.Adapter.PopRx()
			if !ok {
				f.pc = 0
				continue
			}
			f.c = c
			f.pc = 2
			if !k.Use(p, trace.LayerATMRx, k.Cost.ATMRxPerCell) {
				return
			}
		case 2: // integrated mode fuses a checksum into the cell copy
			if d.Mode == cost.ChecksumIntegrated {
				f.pc = 3
				if !k.Use(p, trace.LayerATMRx,
					sim.Time(k.Cost.IntegratedRxPerByte*SARPayload)) {
					return
				}
			} else {
				f.pc = 3
			}
		case 3: // parse, reassemble, and detect a completed datagram
			h, err := ParseHeader(&f.c)
			if err != nil {
				// Header corruption: the HEC catches it and the cell
				// is discarded, surfacing later as a sequence gap. A
				// discarded frame-end must still consume the adapter's
				// pending-frame bookkeeping (count and arrival stamp),
				// or both would stay desynchronized forever.
				d.HECErrors++
				if IsFrameEnd(&f.c) {
					d.Adapter.ConsumeFrameEnd()
				}
				f.pc = 1
				continue
			}
			if d.rxStart == nil {
				d.rxStart = make(map[uint16]sim.Time)
			}
			// A beginning cell always restarts the VCI's receive span:
			// the reassembler silently abandons a partial datagram when
			// a fresh BOM arrives mid-message (a loss pattern the
			// sequence numbers cannot catch), and that path reports no
			// error, so the open span would otherwise leak into the
			// next datagram's driver.rx duration.
			if st := f.c.Payload()[0] >> 6; st == segBOM || st == segSSM {
				d.rxStart[h.VCI] = f.popAt
			} else if _, open := d.rxStart[h.VCI]; !open {
				d.rxStart[h.VCI] = f.popAt
			}
			f.frameEnd = IsFrameEnd(&f.c)
			f.arrivedAt = 0
			if f.frameEnd {
				f.arrivedAt = d.Adapter.ConsumeFrameEnd()
			}
			dg, err := d.reasmFor(h.VCI).Push(&f.c)
			if err != nil {
				d.ReassemblyErrors++
				delete(d.rxStart, h.VCI)
				f.pc = 9
				continue
			}
			if dg == nil {
				f.pc = 9
				continue
			}
			f.dg = dg
			f.start = d.rxStart[h.VCI]
			delete(d.rxStart, h.VCI)
			f.pc = 4
		case 4: // deliver: stamp the on-wire identity, charge per-frame RX
			if len(f.dg) < ip.HeaderLen {
				d.ReassemblyErrors++
				f.dg = nil
				f.pc = 9
				continue
			}
			// The on-wire identity, read before any host-side corruption
			// is injected below: the trace records what the wire carried.
			// Untraced runs skip the tag push (it boxes the identity —
			// one allocation per datagram on the hot path) along with
			// the event.
			f.pktID, f.tagged = trace.PacketID{}, false
			if k.Trace.PacketsEnabled() {
				f.pktID = ip.PacketIDOf(f.dg)
				p.PushTag(f.pktID)
				f.tagged = true
				k.Trace.Event(trace.Event{
					Kind: trace.EvWireArrive, At: f.arrivedAt, ID: f.pktID, Len: len(f.dg),
				})
			}
			// Per-frame interrupt and reassembly-completion overhead.
			f.pc = 5
			if !k.Use(p, trace.LayerATMRx, k.Cost.ATMRxFrameFixed) {
				return
			}
		case 5: // host-side corruption draw, then integrated fixed charge
			if d.HostCorruptRate > 0 && k.Env.RNG().Bool(d.HostCorruptRate) {
				bit := k.Env.RNG().Intn(len(f.dg) * 8)
				f.dg[bit/8] ^= 1 << (bit % 8)
				d.HostCorruptions++
			}
			if d.Mode == cost.ChecksumIntegrated {
				f.pc = 6
				if !k.Use(p, trace.LayerATMRx, k.Cost.IntegratedRxFixed) {
					return
				}
			} else {
				f.pc = 6
			}
		case 6: // charge the IP-header mbuf allocation
			f.pc = 7
			if !k.Use(p, trace.LayerATMRx, k.Cost.MbufAlloc) {
				return
			}
		case 7: // build the header mbuf; charge the first payload mbuf.
			// Layout: the IP header in its own normal mbuf, the rest in
			// cluster mbufs (or normal mbufs for small frames), so that
			// stripping the IP header cannot invalidate partial checksums
			// stashed for the payload.
			hm := k.Pool.Alloc()
			hm.Append(f.dg[:ip.HeaderLen])
			f.rest = f.dg[ip.HeaderLen:]
			f.chain, f.tail = hm, hm
			if len(f.rest) > 0 {
				f.pc = 8
				if !k.Use(p, trace.LayerATMRx, f.payloadAllocCost()) {
					return
				}
			} else {
				f.pc = 9
				continue
			}
		case 8: // fill one payload mbuf; charge the next or finish
			var m *mbuf.Mbuf
			if len(f.dg) > mbuf.ClusterThreshold {
				m = k.Pool.AllocCluster()
			} else {
				m = k.Pool.Alloc()
			}
			n := m.Append(f.rest)
			if d.Mode == cost.ChecksumIntegrated {
				// The device-to-kernel copy computed this sum as a side
				// effect; stash it for tcp_input to fold.
				var cs checksum.Partial
				cs.Add(f.rest[:n])
				m.Csum, m.CsumValid = cs, true
			}
			f.rest = f.rest[n:]
			f.tail.SetNext(m)
			f.tail = m
			if len(f.rest) > 0 {
				f.pc = 8
				if !k.Use(p, trace.LayerATMRx, f.payloadAllocCost()) {
					return
				}
			} else {
				f.pc = 9
			}
		case 9: // finish the cell: enqueue any delivered datagram, then
			// either drain the next cell or go back to sleep.
			if f.chain != nil {
				d.FramesIn++
				k.Trace.Event(trace.Event{
					Kind: trace.EvDriverRx, At: f.start, Dur: k.Now() - f.start,
					ID: f.pktID, Len: len(f.dg),
				})
				d.IP.Enqueue(f.chain)
				f.chain, f.tail = nil, nil
			}
			if f.tagged {
				p.PopTag()
				f.tagged = false
			}
			f.dg, f.rest = nil, nil
			if f.frameEnd && f.framePending {
				f.pc = 0
			} else {
				f.pc = 1
			}
		}
	}
}

// payloadAllocCost returns the charge for the next payload mbuf of the
// datagram being delivered.
func (f *rxprocFrame) payloadAllocCost() sim.Time {
	if len(f.dg) > mbuf.ClusterThreshold {
		return f.d.K.Cost.ClusterAlloc
	}
	return f.d.K.Cost.MbufAlloc
}
