package sim

import "fmt"

// Proc is a simulated process: a stack of resumable Frames driven by the
// event loop itself. A Proc may block on virtual time (Sleep, SleepUntil)
// or on a WaitQueue; blocking parks the frame stack — a small struct, not
// a goroutine — and the event loop runs other events until a scheduled
// wake-up re-enters the stack. Exactly one frame is ever executing at a
// time, so simulations are deterministic, and a CPU charge that does not
// need to wait is an ordinary function call with no scheduling at all.
//
// Procs model both user processes (the echo client and server) and
// persistent kernel service loops (the ATM receive interrupt handler and
// the IP software interrupt).
//
// # Writing frames
//
// A Frame's Step method runs the frame until it either finishes
// (p.Return()), blocks (a parking Sleep/SleepUntil/WaitQueue.Wait — the
// caller must return immediately afterwards), or invokes another frame
// (p.Call(f), again in tail position). If Step returns without doing any
// of these, the trampoline re-invokes it — so a service loop can be
// written as "do one unit of work per Step" with no explicit loop, and a
// frame resumed after a sub-call naturally re-enters Step to continue
// from its recorded state. Frames that interleave CPU charges with
// mutations keep an explicit program counter: set the resume state
// *before* a potentially-parking call, and return if it parked.
type Proc struct {
	env  *Env
	name string
	done bool
	tags []any

	stack []Frame
	op    ctlOp

	// hook, when armed, runs before the next wake-up re-enters the frame
	// stack; kern.SleepOn charges the scheduler's wakeup path there. It is
	// one-shot: cleared before it runs, so a hook whose own charge parks
	// resumes straight into the frame stack.
	hook func(*Proc) bool

	// stepFn and wakeName are bound once at Spawn so that the hot
	// park/wake paths can schedule the process's resumption without
	// allocating a fresh closure or concatenating an event name per
	// wakeup — every CPU charge that waits for the CPU parks.
	stepFn   func()
	wakeName string
}

// Frame is one resumable activation record of a simulated process. See
// the Proc comment for the Step protocol.
type Frame interface {
	Step(p *Proc)
}

// ctlOp is the directive a frame leaves for the trampoline when its Step
// method returns.
type ctlOp uint8

const (
	ctlNone   ctlOp = iota // nothing noted: re-enter the same frame
	ctlReturn              // frame finished: pop it, resume the caller
	ctlCall                // a frame was pushed: enter it
	ctlPark                // the proc blocked: leave the trampoline
)

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Done reports whether the process's frame stack has emptied.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a process with root as its initial frame and schedules it
// to start at the current virtual time.
func (e *Env) Spawn(name string, root Frame) *Proc {
	p := &Proc{
		env:      e,
		name:     name,
		stack:    make([]Frame, 1, 8),
		wakeName: "wake:" + name,
	}
	p.stack[0] = root
	p.stepFn = p.step
	e.procs++
	e.After(0, "spawn:"+name, p.stepFn)
	return p
}

// step is the trampoline: it drives the top frame until the process
// parks or its stack empties. It runs in event context — spawn events,
// wake events and wait-queue wakes all schedule this one bound method.
func (p *Proc) step() {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished proc %q", p.name))
	}
	e := p.env
	prev := e.current
	e.current = p
	if h := p.hook; h != nil {
		p.hook = nil // one-shot: a parked hook resumes into the stack
		if !h(p) {
			e.current = prev
			return
		}
	}
	for {
		n := len(p.stack)
		if n == 0 {
			p.done = true
			e.procs--
			break
		}
		p.op = ctlNone
		p.stack[n-1].Step(p)
		switch p.op {
		case ctlReturn:
			p.stack[n-1] = nil
			p.stack = p.stack[:n-1]
		case ctlPark:
			e.current = prev
			return
		}
		// ctlNone re-enters the same frame; ctlCall enters the new top.
	}
	e.current = prev
}

// Call pushes f onto the process's frame stack and runs it; the calling
// frame's Step is re-invoked after f returns. Call must be the frame's
// last action before Step returns.
func (p *Proc) Call(f Frame) {
	p.stack = append(p.stack, f)
	p.op = ctlCall
}

// Return pops the frame when its Step method returns: the frame is
// finished and control resumes in its caller (or the process exits if
// this was the root frame).
func (p *Proc) Return() { p.op = ctlReturn }

// park suspends the process; something must already have arranged its
// resumption (a scheduled wake event or a WaitQueue entry).
func (p *Proc) park() { p.op = ctlPark }

// OnWake arms fn to run when the process next resumes, before its frame
// stack re-enters. The hook returns false if it parked the process again
// (its own CPU charge had to wait); it is cleared either way.
func (p *Proc) OnWake(fn func(*Proc) bool) { p.hook = fn }

// SleepUntil advances the process to virtual time t and reports whether
// it completed without parking. Sleeping into the past is a no-op.
//
// Fast path: when no queued event fires before t, nothing can run in the
// interval — events are only created by running code, and all of it is
// suspended until this process resumes. The clock advances to t directly
// and SleepUntil returns true: the charge was an ordinary function call.
// An event queued exactly at t still forces the slow path: it was
// scheduled earlier, so the total order says it runs first. Skipping the
// wake event shifts later sequence numbers uniformly, which preserves
// every tie-break — the queue's total order, and therefore simulated
// time, is unchanged.
//
// Slow path: a wake event is scheduled at t and the process parks;
// SleepUntil returns false and the frame must immediately return from
// Step, having recorded the state to resume at.
func (p *Proc) SleepUntil(t Time) bool {
	e := p.env
	if t <= e.now {
		return true
	}
	// The fast path additionally requires t to lie inside the safe-time
	// horizon: in a sharded run, a cross-shard message may still be
	// delivered anywhere in [now, horizon∞), so advancing the clock past
	// the horizon in place could jump over an arrival. Parking instead
	// adds one wake event, which shifts later sequence numbers uniformly —
	// every tie-break, and therefore simulated time, is unchanged.
	if e.current == p && t < e.horizon && (len(e.events) == 0 || e.events[0].at > t) {
		e.now = t
		return true
	}
	e.At(t, p.wakeName, p.stepFn)
	p.park()
	return false
}

// Sleep advances the process by duration d of virtual time, reporting
// whether it completed without parking (see SleepUntil).
func (p *Proc) Sleep(d Time) bool { return p.SleepUntil(p.env.now + d) }

// PushTag pushes an annotation onto the process's tag stack. Tags mark
// the logical unit of work the process is currently performing — the
// trace instrumentation pushes a packet identity around each segment's
// processing, so CPU time charged while the tag is live attributes to
// that packet even though the charge itself happens layers below.
// The stack nests: a TCP input handler that transmits an ACK pushes the
// ACK's identity on top and pops back to the inbound segment's.
//
// The stack is per process, not per host: two processes on one host
// (the echo client inside tcp_output and the netisr inside tcp_input,
// say) interleave in virtual time, and a host-global context would
// bleed one packet's identity into the other's charges.
func (p *Proc) PushTag(v any) { p.tags = append(p.tags, v) }

// PopTag removes the top tag. Popping an empty stack is a no-op so
// instrumentation may enable mid-run without unbalancing anything.
func (p *Proc) PopTag() {
	if n := len(p.tags); n > 0 {
		p.tags = p.tags[:n-1]
	}
}

// Tag returns the top of the tag stack, or nil when empty.
func (p *Proc) Tag() any {
	if n := len(p.tags); n > 0 {
		return p.tags[n-1]
	}
	return nil
}

// Current returns the process currently executing, or nil when called from
// plain event context.
func (e *Env) Current() *Proc { return e.current }

// WaitQueue is a FIFO queue of blocked processes, analogous to a kernel
// sleep channel. Wake moves the process at the head of the queue back onto
// the event queue at the current time; WakeAll drains the queue.
type WaitQueue struct {
	env      *Env
	name     string
	wakeName string // "wakeq:"+name, precomputed off the wake hot path
	procs    []*Proc
}

// NewWaitQueue returns an empty wait queue.
func (e *Env) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{env: e, name: name, wakeName: "wakeq:" + name}
}

// Len returns the number of processes blocked on the queue.
func (w *WaitQueue) Len() int { return len(w.procs) }

// Wait parks p until another part of the simulation calls Wake or
// WakeAll. The calling frame must return from Step immediately; its Step
// re-enters — from the state it recorded — when the wake event fires.
func (w *WaitQueue) Wait(p *Proc) {
	w.procs = append(w.procs, p)
	p.park()
}

// wake dequeues the longest-waiting process, if any, and schedules its
// resumption at absolute time t. It reports whether a process was woken.
func (w *WaitQueue) wake(t Time) bool {
	if len(w.procs) == 0 {
		return false
	}
	p := w.procs[0]
	copy(w.procs, w.procs[1:])
	n := len(w.procs) - 1
	w.procs[n] = nil // release for GC
	w.procs = w.procs[:n]
	w.env.At(t, w.wakeName, p.stepFn)
	return true
}

// Wake schedules the longest-waiting process, if any, to resume at the
// current virtual time. It reports whether a process was woken.
func (w *WaitQueue) Wake() bool { return w.wake(w.env.now) }

// WakeAll wakes every waiting process, preserving FIFO order.
func (w *WaitQueue) WakeAll() {
	for w.Wake() {
	}
}

// WakeAt schedules the longest-waiting process, if any, to resume at
// absolute time t. It reports whether a process was scheduled.
func (w *WaitQueue) WakeAt(t Time) bool { return w.wake(t) }
