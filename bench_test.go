// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus wall-clock benchmarks of the real checksum routines
// and ablations of the harness design choices documented in README.md's
// fidelity notes. The simulator's own wall-clock tier lives in
// bench_wallclock_test.go (see docs/PERFORMANCE.md).
//
// The table benchmarks report simulated microseconds via b.ReportMetric
// (suffix "sim-µs/..."); ns/op for those measures the simulator itself,
// not the DECstation. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/checksum"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts keeps per-iteration cost low; the simulation is deterministic
// so small counts are exact.
var benchOpts = core.Options{Iterations: 10, Warmup: 2}

// BenchmarkTable1_ATMvsEthernet regenerates Table 1 and reports the
// 4-byte round-trip times for both links.
func BenchmarkTable1_ATMvsEthernet(b *testing.B) {
	var atm4, eth4 float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Size == 4 {
				eth4, atm4 = row.A, row.B
			}
		}
	}
	b.ReportMetric(atm4, "sim-µs/rtt4B-atm")
	b.ReportMetric(eth4, "sim-µs/rtt4B-ether")
}

// BenchmarkTable2_TransmitBreakdown regenerates the transmit-side
// decomposition and reports the 8000-byte checksum row.
func BenchmarkTable2_TransmitBreakdown(b *testing.B) {
	var ck float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		ck = r.PerSize[8000].Rows[core.TxLayers[1]]
	}
	b.ReportMetric(ck, "sim-µs/cksum8000B")
}

// BenchmarkTable3_ReceiveBreakdown regenerates the receive-side
// decomposition and reports the 4000-byte ATM row.
func BenchmarkTable3_ReceiveBreakdown(b *testing.B) {
	var atm float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		atm = r.PerSize[4000].Rows[core.RxLayers[0]]
	}
	b.ReportMetric(atm, "sim-µs/atmrx4000B")
}

// BenchmarkTable4_HeaderPrediction regenerates Table 4 / Figure 1 and
// reports the 4-byte improvement percentage.
func BenchmarkTable4_HeaderPrediction(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		pct = r.Rows[0].DecreasePercent
	}
	b.ReportMetric(pct, "%improvement-4B")
}

// BenchmarkPCBLookupScaling regenerates the §3 search study and reports
// the fitted per-entry slope (the paper measures ~1.3 µs/entry).
func BenchmarkPCBLookupScaling(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		slope = core.RunPCBExperiment().PerEntryMicros
	}
	b.ReportMetric(slope, "sim-µs/entry")
}

// BenchmarkTable5_CopyChecksum regenerates the user-level copy/checksum
// study (Table 5 / Figure 2) and reports the integrated saving at 8 KB.
func BenchmarkTable5_CopyChecksum(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		saving = r.Rows[len(r.Rows)-1].SavingsPercent
	}
	b.ReportMetric(saving, "%savings-8000B")
}

// BenchmarkTable6_IntegratedKernel regenerates Table 6 and reports the
// 8000-byte improvement of the combined copy-and-checksum kernel.
func BenchmarkTable6_IntegratedKernel(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		pct = r.Rows[len(r.Rows)-1].DecreasePercent
	}
	b.ReportMetric(pct, "%improvement-8000B")
}

// BenchmarkTable7_NoChecksum regenerates Table 7 and reports the
// 8000-byte saving from eliminating the checksum.
func BenchmarkTable7_NoChecksum(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunTable7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		pct = r.Rows[len(r.Rows)-1].DecreasePercent
	}
	b.ReportMetric(pct, "%savings-8000B")
}

// --- The sweep engine: serial reference versus the worker pool. ---

// sweepBenchTrials is the 40-cell grid (2 modes × 2 prediction ×
// 5 sizes × 2 socket buffers) with enough per-cell work that sharding
// dominates scheduling overhead.
func sweepBenchTrials() []runner.EchoTrial {
	g := runner.Grid{
		Modes:      []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone},
		NoPred:     []bool{false, true},
		Sizes:      []int{20, 200, 1400, 4000, 8000},
		SockBufs:   []int{0, 8192},
		Iterations: 20,
		Warmup:     2,
	}
	return g.Trials()
}

func benchSweep(b *testing.B, workers int) {
	trials := sweepBenchTrials()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := runner.RunEchoSweep(context.Background(), trials,
			runner.Options{Workers: workers, BaseSeed: 1994})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Error != "" {
				b.Fatalf("cell %s: %s", o.Label, o.Error)
			}
		}
	}
	b.ReportMetric(float64(len(trials)), "cells")
	b.ReportMetric(float64(workersOrMax(workers)), "workers")
}

func workersOrMax(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// BenchmarkSweepSerial is the single-worker reference execution of the
// benchmark grid.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel shards the same grid across GOMAXPROCS workers;
// the trials are independent simulations, so ns/op here versus
// BenchmarkSweepSerial shows near-linear speedup on multi-core hardware
// (the outputs are bit-identical either way, asserted by
// TestSerialParallelIdentical and cmd/tcplat's sweep test).
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkFanIn regenerates the 16-client fan-in cell of the topology
// study under both PCB organizations and reports the mean request
// latency of each — the §3 list-versus-hash prediction measured on a
// live connection population. The gap between the two metrics is the
// demultiplexing cost the hash table erases.
func BenchmarkFanIn(b *testing.B) {
	run := func(hash bool) float64 {
		l := lab.NewTopology(lab.Config{Link: lab.LinkATM, HashPCBs: hash, Seed: 1994}, 17)
		res, err := workload.FanIn{Size: 200, Requests: 8, Warmup: 1}.Run(l)
		if err != nil {
			b.Fatal(err)
		}
		return res.Sample().Mean()
	}
	var list, hash float64
	for i := 0; i < b.N; i++ {
		list = run(false)
		hash = run(true)
	}
	b.ReportMetric(list, "sim-µs/fanin16-list")
	b.ReportMetric(hash, "sim-µs/fanin16-hash")
}

// --- Wall-clock benchmarks of the real routines (Figure 2's shape on the
// machine running the tests; absolute values are of course not the
// DECstation's). ---

func benchBuf(n int) []byte {
	buf := make([]byte, n)
	sim.NewRNG(42).Fill(buf)
	return buf
}

func BenchmarkChecksumULTRIX8000(b *testing.B) {
	buf := benchBuf(8000)
	b.SetBytes(8000)
	var s uint16
	for i := 0; i < b.N; i++ {
		s = checksum.SumULTRIX(buf)
	}
	_ = s
}

func BenchmarkChecksumOptimized8000(b *testing.B) {
	buf := benchBuf(8000)
	b.SetBytes(8000)
	var s uint16
	for i := 0; i < b.N; i++ {
		s = checksum.SumOptimized(buf)
	}
	_ = s
}

func BenchmarkBcopy8000(b *testing.B) {
	buf := benchBuf(8000)
	dst := make([]byte, 8000)
	b.SetBytes(8000)
	for i := 0; i < b.N; i++ {
		copy(dst, buf)
	}
}

func BenchmarkCopyAndSum8000(b *testing.B) {
	// The integrated routine: one pass instead of copy + sum. Its
	// throughput should beat SumOptimized + copy run separately.
	buf := benchBuf(8000)
	dst := make([]byte, 8000)
	b.SetBytes(8000)
	var s uint16
	for i := 0; i < b.N; i++ {
		s = checksum.CopyAndSum(dst, buf)
	}
	_ = s
}

func BenchmarkSeparateCopyThenSum8000(b *testing.B) {
	buf := benchBuf(8000)
	dst := make([]byte, 8000)
	b.SetBytes(8000)
	var s uint16
	for i := 0; i < b.N; i++ {
		copy(dst, buf)
		s = checksum.SumOptimized(dst)
	}
	_ = s
}

// --- Ablations of the harness design choices (README fidelity notes). ---

// BenchmarkAblation_PCBHashVsList contrasts the end-to-end RTT effect of
// the two PCB organizations under a 500-entry table with prediction off —
// quantifying the paper's "a simple hash table implementation could
// eliminate the lookup problem entirely".
func BenchmarkAblation_PCBHashVsList(b *testing.B) {
	run := func(hash bool) float64 {
		cfg := lab.Config{
			Link:              lab.LinkATM,
			DisablePrediction: true,
			ExtraPCBs:         500,
			HashPCBs:          hash,
		}
		rtt, err := core.MeasureRTT(cfg, 4, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		return rtt
	}
	var list, hash float64
	for i := 0; i < b.N; i++ {
		list = run(false)
		hash = run(true)
	}
	b.ReportMetric(list, "sim-µs/list500")
	b.ReportMetric(hash, "sim-µs/hash500")
}

// BenchmarkAblation_NagleRPC contrasts RPC latency with Nagle on and off;
// single-write RPCs are unaffected, validating that the harness default
// (off) is not distorting the tables.
func BenchmarkAblation_NagleRPC(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		var err error
		off, err = core.MeasureRTT(lab.Config{Link: lab.LinkATM}, 200, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		on, err = core.MeasureRTT(lab.Config{Link: lab.LinkATM, Nagle: true}, 200, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(off, "sim-µs/nodelay")
	b.ReportMetric(on, "sim-µs/nagle")
}

// BenchmarkAblation_ChecksumModes reports the three kernel checksum
// configurations side by side at 4000 bytes.
func BenchmarkAblation_ChecksumModes(b *testing.B) {
	vals := map[cost.ChecksumMode]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range []cost.ChecksumMode{
			cost.ChecksumStandard, cost.ChecksumIntegrated, cost.ChecksumNone,
		} {
			rtt, err := core.MeasureRTT(lab.Config{Link: lab.LinkATM, Mode: m}, 4000, benchOpts)
			if err != nil {
				b.Fatal(err)
			}
			vals[m] = rtt
		}
	}
	b.ReportMetric(vals[cost.ChecksumStandard], "sim-µs/standard")
	b.ReportMetric(vals[cost.ChecksumIntegrated], "sim-µs/integrated")
	b.ReportMetric(vals[cost.ChecksumNone], "sim-µs/none")
}

// BenchmarkSimulatorSpeed measures the simulator's own performance: wall
// time per simulated 200-byte round trip, including stack setup.
func BenchmarkSimulatorSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := lab.New(lab.Config{Link: lab.LinkATM})
		if _, err := l.RunEcho(200, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TCPvsUDP reports the same echo workload over both
// transports — the extension experiment behind examples/transports.
func BenchmarkAblation_TCPvsUDP(b *testing.B) {
	var tcpRTT, udpRTT float64
	for i := 0; i < b.N; i++ {
		var err error
		tcpRTT, err = core.MeasureRTT(lab.Config{Link: lab.LinkATM}, 200, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		l := lab.New(lab.Config{Link: lab.LinkATM})
		res, err := l.RunUDPEcho(200, benchOpts.Iterations, benchOpts.Warmup)
		if err != nil {
			b.Fatal(err)
		}
		udpRTT = res.MeanRTTMicros()
	}
	b.ReportMetric(tcpRTT, "sim-µs/tcp200B")
	b.ReportMetric(udpRTT, "sim-µs/udp200B")
}
