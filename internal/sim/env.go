package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal timestamps fire in the
// order they were scheduled (seq breaks ties), which keeps runs deterministic.
type event struct {
	at   Time
	seq  uint64
	name string
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	current *Proc // the proc currently executing, if any
	procs   int   // live (unfinished) procs
	rng     *RNG
}

// NewEnv returns a fresh simulation environment with its clock at zero
// and a deterministic default random seed.
func NewEnv() *Env {
	return &Env{rng: NewRNG(1)}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// RNG returns the environment's random number generator.
func (e *Env) RNG() *RNG { return e.rng }

// Seed reseeds the environment's random number generator.
func (e *Env) Seed(s uint64) { e.rng = NewRNG(s) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would violate causality and silently corrupt measurements.
func (e *Env) At(t Time, name string, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, name: name, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Env) After(d Time, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	e.At(e.now+d, name, fn)
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports whether an event was run.
func (e *Env) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until none remain.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps at or before deadline and then
// advances the clock to the deadline. Later events remain pending.
func (e *Env) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of scheduled events not yet run.
func (e *Env) Pending() int { return len(e.events) }
