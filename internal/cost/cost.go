// Package cost defines the CPU cost model that gives the simulated
// DECstation 5000/200 its timing behaviour.
//
// The paper's latency tables are, at bottom, sums of code-path execution
// times on a 25 MHz MIPS R3000 plus queueing and wire delays. This package
// captures those execution times as a set of named constants — fixed
// per-operation costs and per-byte rates — calibrated against the numbers
// the paper publishes (Table 5 for the user-level copy/checksum routines,
// Tables 2 and 3 for the kernel path constants, §3 for PCB lookup). The
// protocol implementations in the other packages charge these costs to a
// simulated CPU as they execute the corresponding real operations on real
// bytes, so the *structure* of the latency (what overlaps, what waits, what
// scales per byte versus per packet versus per cell) emerges from the
// simulation while the magnitudes come from calibration.
package cost

import "repro/internal/sim"

// ChecksumMode selects how the stack handles the TCP checksum, the
// experimental variable of the paper's §4.
type ChecksumMode int

const (
	// ChecksumStandard computes the checksum in tcp_output/tcp_input as
	// stock BSD does. This is the baseline configuration.
	ChecksumStandard ChecksumMode = iota
	// ChecksumIntegrated fuses the checksum with a data copy: on
	// transmit with the user-to-kernel copy at the socket layer (partial
	// sums stored per mbuf), on receive with the device-to-kernel copy
	// in the driver (§4.1.1, Table 6).
	ChecksumIntegrated
	// ChecksumNone eliminates the TCP checksum entirely, relying on the
	// AAL3/4 CRC for error detection (§4.2, Table 7). Both ends must
	// agree, which the paper models with the Alternate Checksum Option.
	ChecksumNone
)

// String returns the mode name used in reports.
func (m ChecksumMode) String() string {
	switch m {
	case ChecksumStandard:
		return "standard"
	case ChecksumIntegrated:
		return "integrated"
	case ChecksumNone:
		return "none"
	}
	return "unknown"
}

// Linear is an affine cost curve: Fixed + PerByte×n, the form the paper's
// own measurements take ("the results scaled linearly", §3).
type Linear struct {
	Fixed   sim.Time // per-invocation cost
	PerByte float64  // nanoseconds per byte
}

// Cost returns the cost of applying the operation to n bytes.
func (l Linear) Cost(n int) sim.Time {
	return l.Fixed + sim.Time(l.PerByte*float64(n))
}

// Model holds every constant the simulated kernel and drivers charge.
// Field groups follow the structure of the paper's breakdown tables.
// All values describe a DECstation 5000/200 unless a caller overrides them.
type Model struct {
	// User-level copy and checksum routines (Table 5). These are charged
	// by the user-level microbenchmark harness; the same algorithms run
	// for real in internal/checksum.
	UserChecksumULTRIX Linear // ULTRIX 4.2A halfword checksum
	UserChecksumOpt    Linear // word-at-a-time, unrolled checksum
	UserBcopy          Linear // plain memory-to-memory copy
	UserCopyChecksum   Linear // fused copy + checksum

	// Syscall entry/exit and user/kernel copies (the User rows of
	// Tables 2 and 3).
	WriteSyscall   sim.Time // write(2) entry to sosend
	ReadSyscall    sim.Time // read(2) entry/exit + soreceive bookkeeping
	CopyinFixed    sim.Time // per-mbuf fixed cost of copying user data in
	CopyinPerByte  float64  // ns/byte, user space to mbuf
	CopyoutFixed   sim.Time // per-mbuf fixed cost of copying data out
	CopyoutPerByte float64  // ns/byte, mbuf to user space
	SockAppend     sim.Time // sbappend per mbuf
	UsrreqDispatch sim.Time // protocol user-request dispatch (PRU_SEND etc.)

	// Mbuf management (§2.2.1: "just over 7µs" to allocate and free).
	MbufAlloc    sim.Time
	MbufFree     sim.Time
	ClusterAlloc sim.Time
	ClusterFree  sim.Time
	ClusterRef   sim.Time // reference-count copy of a cluster mbuf
	MbufCopyFix  sim.Time // per-mbuf fixed cost inside m_copy

	// TCP protocol processing (Tables 2 and 3, §3).
	TCPOutputSegment  Linear   // per-segment output processing (the "segment" row)
	TCPInputSlow      sim.Time // full tcp_input path per segment
	TCPInputFast      sim.Time // header-prediction fast path per segment
	TCPKernelChecksum Linear   // in-kernel checksum per segment over header+data
	TCPCksumPerMbuf   sim.Time // mbuf-chain walk overhead per mbuf
	PCBCacheHit       sim.Time // single-entry PCB cache hit
	PCBLookupFixed    sim.Time // in_pcblookup call overhead
	PCBLookupPerEntry sim.Time // per list entry (§3: "just less than 1.3µs")
	PCBHashLookup     sim.Time // hash-table alternative, constant time

	// Integrated copy-and-checksum kernel path (§4.1.1, Table 6). The
	// initial BSD implementation the paper measured pays fixed
	// bookkeeping costs (partial checksums stored per mbuf on send, a
	// modified driver receive loop) in exchange for touching each byte
	// once instead of twice.
	IntegratedTxFixed   sim.Time // per-segment partial-checksum bookkeeping
	IntegratedTxPerByte float64  // ns/byte added to copyin when fusing the sum
	IntegratedRxFixed   sim.Time // per-frame driver receive bookkeeping
	IntegratedRxPerByte float64  // ns/byte added to the driver copy when fusing
	ChecksumCombine     sim.Time // folding stored partial sums into a segment sum

	// IP and software-interrupt scheduling.
	IPOutput        sim.Time // ip_output per packet
	IPInput         sim.Time // ip_input per packet
	SoftintDispatch sim.Time // raise-to-run latency of the IP softint (IPQ row)

	// Process scheduling (the Wakeup row).
	Wakeup sim.Time // sowakeup to user process running

	// FORE TCA-100 ATM adapter and driver.
	ATMTxFrameFixed sim.Time // per-frame driver setup on transmit
	ATMTxPerCell    sim.Time // compose + copy one cell into the transmit FIFO
	ATMRxFrameFixed sim.Time // per-frame interrupt + reassembly overhead
	ATMRxPerCell    sim.Time // drain + validate + copy one cell from the FIFO
	ATMLinkBitsPS   float64  // TAXI link rate, bits/second
	ATMPropagation  sim.Time // one-way propagation (switchless private network)

	// LANCE Ethernet adapter and driver.
	EtherTx          Linear  // driver output per frame
	EtherRx          Linear  // driver input per frame
	EtherLinkBitsPS  float64 // 10 Mb/s
	EtherPropagation sim.Time
	EtherIFG         sim.Time // inter-frame gap
}

// DECstation5000 returns the cost model calibrated against the paper's
// published measurements of a DECstation 5000/200 (25 MHz MIPS R3000,
// TurboChannel, FORE TCA-100, LANCE Ethernet). Calibration sources:
//
//   - Table 5 fits the four user-level routines to within a few percent
//     at every size (e.g. ULTRIX checksum 1605µs at 8000 bytes →
//     4.3µs + 0.2002µs/byte).
//   - Table 2/3 checksum rows fit 4µs + 0.142µs/byte per segment over
//     payload+40 header bytes (576µs at 4000 bytes, ×2 segments = 1149µs
//     at 8000).
//   - §2.2.1 gives mbuf allocate+free ≈ 7µs.
//   - §3 gives PCB search ≈ 1.3µs per list entry.
//   - The ATM receive rows give ≈10µs per cell + 36µs per frame
//     (46µs for 1 cell at 4 bytes, 920µs for 92 cells at 4000 bytes).
func DECstation5000() *Model {
	return &Model{
		UserChecksumULTRIX: Linear{Fixed: sim.Micros(4.3), PerByte: 200.2},
		UserChecksumOpt:    Linear{Fixed: sim.Micros(3.2), PerByte: 93.9},
		UserBcopy:          Linear{Fixed: sim.Micros(4.2), PerByte: 86.8},
		UserCopyChecksum:   Linear{Fixed: sim.Micros(3.4), PerByte: 107.6},

		WriteSyscall:   sim.Micros(28),
		ReadSyscall:    sim.Micros(55),
		CopyinFixed:    sim.Micros(6),
		CopyinPerByte:  33.5,
		CopyoutFixed:   sim.Micros(2),
		CopyoutPerByte: 45,
		SockAppend:     sim.Micros(3),
		UsrreqDispatch: sim.Micros(4),

		MbufAlloc:    sim.Micros(4.5),
		MbufFree:     sim.Micros(2.7),
		ClusterAlloc: sim.Micros(7),
		ClusterFree:  sim.Micros(3),
		ClusterRef:   sim.Micros(7),
		MbufCopyFix:  sim.Micros(1),

		TCPOutputSegment:  Linear{Fixed: sim.Micros(62), PerByte: 0.8},
		TCPInputSlow:      sim.Micros(128),
		TCPInputFast:      sim.Micros(52),
		TCPKernelChecksum: Linear{Fixed: sim.Micros(4), PerByte: 142},
		TCPCksumPerMbuf:   sim.Micros(1),
		PCBCacheHit:       sim.Micros(4),
		PCBLookupFixed:    sim.Micros(35),
		PCBLookupPerEntry: sim.Micros(1.3),
		PCBHashLookup:     sim.Micros(8),

		IntegratedTxFixed:   sim.Micros(27),
		IntegratedTxPerByte: 74,
		IntegratedRxFixed:   sim.Micros(28),
		IntegratedRxPerByte: 60,
		ChecksumCombine:     sim.Micros(3),

		IPOutput:        sim.Micros(35),
		IPInput:         sim.Micros(48),
		SoftintDispatch: sim.Micros(22),

		Wakeup: sim.Micros(47),

		ATMTxFrameFixed: sim.Micros(20),
		ATMTxPerCell:    sim.Micros(2.2),
		ATMRxFrameFixed: sim.Micros(36),
		ATMRxPerCell:    sim.Micros(10),
		ATMLinkBitsPS:   140e6, // TAXI
		ATMPropagation:  sim.Micros(1),

		EtherTx:          Linear{Fixed: sim.Micros(100), PerByte: 60},
		EtherRx:          Linear{Fixed: sim.Micros(200), PerByte: 100},
		EtherLinkBitsPS:  10e6,
		EtherPropagation: sim.Micros(1),
		EtherIFG:         sim.Micros(9.6),
	}
}

// MbufAllocFree returns the combined cost of allocating and later freeing
// one normal mbuf. The paper reports this as "just over 7µs" (§2.2.1).
func (m *Model) MbufAllocFree() sim.Time { return m.MbufAlloc + m.MbufFree }

// WireTime returns the time n bytes occupy a link of rate bitsPerSec.
func WireTime(n int, bitsPerSec float64) sim.Time {
	return sim.Time(float64(n) * 8 / bitsPerSec * 1e9)
}
