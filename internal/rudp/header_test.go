package rudp

import (
	"bytes"
	"testing"
)

// TestHeaderSizes pins the rely-style compression: the header spends
// bytes only on the parts of the ack state that are not the common
// case (a close ack over a solid bitfield).
func TestHeaderSizes(t *testing.T) {
	cases := []struct {
		name string
		h    Header
		want int
	}{
		// Far ack, no solid bitfield bytes: everything spelled out.
		{"worst", Header{Seq: 1000, Ack: 100, AckBits: 0}, 9},
		// Far ack, one solid byte elided.
		{"one-solid", Header{Seq: 1000, Ack: 100, AckBits: 0xFEFEFFFE}, 8},
		// Close ack, one hole in the bitfield.
		{"close-one-hole", Header{Seq: 200, Ack: 190, AckBits: 0xFFFEFFFF}, 5},
		// Close ack over a solid bitfield: the ideal steady state.
		{"ideal", Header{Seq: 200, Ack: 190, AckBits: 0xFFFFFFFF}, 4},
		// Nothing received yet: the flag replaces the ack state.
		{"no-ack", Header{Seq: 7, AckNone: true, Data: true}, 3},
	}
	for _, tc := range cases {
		var b [MaxHeaderBytes]byte
		n := tc.h.Marshal(b[:])
		if n != tc.want {
			t.Errorf("%s: Marshal wrote %d bytes, want %d", tc.name, n, tc.want)
		}
		if s := tc.h.MarshaledSize(); s != n {
			t.Errorf("%s: MarshaledSize %d != Marshal %d", tc.name, s, n)
		}
		got, m, err := ParseHeader(b[:n])
		if err != nil {
			t.Fatalf("%s: ParseHeader: %v", tc.name, err)
		}
		if m != n {
			t.Errorf("%s: ParseHeader consumed %d of %d bytes", tc.name, m, n)
		}
		if got != tc.h {
			t.Errorf("%s: round trip %+v != %+v", tc.name, got, tc.h)
		}
	}
}

// TestHeaderFlags checks Data/Fin survive the round trip and that the
// flag bits do not perturb the size.
func TestHeaderFlags(t *testing.T) {
	for _, h := range []Header{
		{Seq: 5, Ack: 3, AckBits: 0xFFFFFFFF, Data: true},
		{Seq: 5, Ack: 3, AckBits: 0xFFFFFFFF, Fin: true},
		{Seq: 5, Ack: 3, AckBits: 0xFFFFFFFF, Data: true, Fin: true},
	} {
		var b [MaxHeaderBytes]byte
		n := h.Marshal(b[:])
		if n != 4 {
			t.Errorf("%+v: %d bytes, want 4", h, n)
		}
		got, _, err := ParseHeader(b[:n])
		if err != nil || got != h {
			t.Errorf("round trip %+v -> %+v (%v)", h, got, err)
		}
	}
}

// TestHeaderNoAckPrefix checks the no-ack flag's canonical encoding:
// ack-compression bits alongside it are rejected, since an AckNone
// header has no ack state to compress.
func TestHeaderNoAckPrefix(t *testing.T) {
	for _, bad := range []byte{
		prefNoAck | prefAckDiff,
		prefNoAck | prefBitsByte,
		prefNoAck | prefBitsByte<<3,
	} {
		if _, _, err := ParseHeader([]byte{bad, 0, 1}); err == nil {
			t.Errorf("ParseHeader accepted prefix %#02x", bad)
		}
	}
}

// TestHeaderTruncated checks every truncation point errors rather than
// mis-parsing.
func TestHeaderTruncated(t *testing.T) {
	h := Header{Seq: 1000, Ack: 100, AckBits: 0x00FF00FF}
	var b [MaxHeaderBytes]byte
	n := h.Marshal(b[:])
	for i := 0; i < n; i++ {
		if _, _, err := ParseHeader(b[:i]); err == nil {
			t.Errorf("ParseHeader accepted %d of %d bytes", i, n)
		}
	}
}

// FuzzHeaderRoundTrip throws arbitrary header fields at the encoder and
// requires an exact round trip, and throws arbitrary bytes at the
// parser and requires re-encoding to reproduce them.
func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint32(0), false, false, false)
	f.Add(uint16(65535), uint16(0), uint32(0xFFFFFFFF), true, false, false)
	f.Add(uint16(100), uint16(300), uint32(0xFF00FF00), false, true, false)
	f.Add(uint16(0), uint16(0), uint32(0), true, false, true)
	f.Fuzz(func(t *testing.T, seq, ack uint16, bits uint32, data, fin, ackNone bool) {
		h := Header{Seq: seq, Ack: ack, AckBits: bits, Data: data, Fin: fin}
		if ackNone {
			// AckNone headers carry no ack state; canonical form zeroes it.
			h = Header{Seq: seq, AckNone: true, Data: data, Fin: fin}
		}
		var b [MaxHeaderBytes]byte
		n := h.Marshal(b[:])
		if n < 3 || n > MaxHeaderBytes {
			t.Fatalf("Marshal wrote %d bytes", n)
		}
		got, m, err := ParseHeader(b[:n])
		if err != nil {
			t.Fatalf("ParseHeader(%x): %v", b[:n], err)
		}
		if m != n || got != h {
			t.Fatalf("round trip %+v (%d bytes) -> %+v (%d bytes)", h, n, got, m)
		}
		// Parse-then-marshal is the identity on valid encodings.
		var b2 [MaxHeaderBytes]byte
		n2 := got.Marshal(b2[:])
		if !bytes.Equal(b[:n], b2[:n2]) {
			t.Fatalf("re-encode %x != %x", b2[:n2], b[:n])
		}
	})
}
