package sock

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// loopProto is a loopback protocol: Send moves the send buffer's contents
// straight into the receive buffer of a peer socket.
type loopProto struct {
	self, peer *Socket
	sends      int
	rcvds      int
	closes     int
}

func (lp *loopProto) Send(p *sim.Proc) {
	lp.sends++
	n := lp.self.Snd.Len()
	if n == 0 {
		return
	}
	chain := lp.self.Snd.Chain()
	dup, _ := lp.self.K.Pool.Copy(chain, 0, n)
	lp.self.Snd.Drop(n)
	lp.peer.Rcv.Append(dup)
	lp.peer.RcvWakeup()
	lp.self.SndWakeup()
}

func (lp *loopProto) Rcvd(p *sim.Proc)  { lp.rcvds++ }
func (lp *loopProto) Close(p *sim.Proc) { lp.closes++; lp.peer.SetEof() }

func newLoopPair(env *sim.Env) (*Socket, *Socket, *loopProto) {
	k := kern.New(env, cost.DECstation5000(), "h")
	a, b := New(k), New(k)
	pa := &loopProto{self: a, peer: b}
	pb := &loopProto{self: b, peer: a}
	a.Proto, b.Proto = pa, pb
	a.Connected, b.Connected = true, true
	return a, b, pa
}

// recvLoopFrame reads from so repeatedly until total reaches want,
// handing each read's length to the each callback.
type recvLoopFrame struct {
	t    *testing.T
	so   *Socket
	want int
	buf  []byte
	each func(n int)

	pc, total int
	recv      *RecvOp
}

func (f *recvLoopFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			if f.total >= f.want {
				p.Return()
				return
			}
			f.pc = 1
			f.recv = f.so.Recv(p, f.buf)
			return
		case 1:
			if f.recv.Err != nil {
				f.t.Error(f.recv.Err)
				p.Return()
				return
			}
			f.each(f.recv.N)
			f.total += f.recv.N
			f.recv = nil
			f.pc = 0
		}
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	a, b, _ := newLoopPair(env)
	payload := make([]byte, 3000)
	env.RNG().Fill(payload)
	var got []byte
	buf := make([]byte, 1024)
	env.Spawn("rx", &recvLoopFrame{t: t, so: b, want: len(payload), buf: buf,
		each: func(n int) { got = append(got, buf[:n]...) }})
	var send *SendOp
	env.Spawn("tx", sim.Steps(
		func(p *sim.Proc) { send = a.Send(p, payload) },
		func(p *sim.Proc) {
			if send.Err != nil || send.N != len(payload) {
				t.Errorf("Send = %d, %v", send.N, send.Err)
			}
		},
	))
	env.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted through socket layer")
	}
}

func TestSendUsesClustersAboveThreshold(t *testing.T) {
	env := sim.NewEnv()
	a, _, _ := newLoopPair(env)
	k := a.K
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		a.Send(p, make([]byte, 2000))
	}))
	env.Run()
	if k.Pool.Stats.ClusterAllocs == 0 {
		t.Fatal("2000-byte write did not use clusters")
	}
	// Small writes use normal mbufs only.
	env2 := sim.NewEnv()
	k2 := kern.New(env2, cost.DECstation5000(), "h2")
	a2 := New(k2)
	a2.Proto = &funcProto{}
	a2.Connected = true
	env2.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		a2.Send(p, make([]byte, 500))
	}))
	env2.Run()
	if k2.Pool.Stats.ClusterAllocs != 0 {
		t.Fatal("500-byte write used clusters")
	}
	// ceil(500/108) = 5 normal mbufs, the paper's "one to eight mbufs
	// are used for transfers of less than 1KB".
	if k2.Pool.Stats.MbufAllocs != 5 {
		t.Fatalf("500-byte write used %d mbufs, want 5", k2.Pool.Stats.MbufAllocs)
	}
}

func TestSendBlocksOnFullBuffer(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	so := New(k)
	drained := false
	// A protocol that never drains until poked.
	so.Proto = &funcProto{
		send: func(p *sim.Proc) {},
	}
	so.Connected = true
	sent := 0
	var send *SendOp
	env.Spawn("tx", sim.Steps(
		func(p *sim.Proc) { send = so.Send(p, make([]byte, DefaultHiwat+100)) },
		func(p *sim.Proc) { sent = send.N },
	))
	env.Spawn("drainer", sim.Steps(
		func(p *sim.Proc) { p.Sleep(10 * sim.Millisecond) },
		func(p *sim.Proc) {
			// Free exactly enough space for the tail of the write.
			so.Snd.Drop(200)
			drained = true
			so.SndWakeup()
		},
	))
	env.Run()
	if !drained {
		t.Fatal("drainer never ran")
	}
	if sent != DefaultHiwat+100 {
		t.Fatalf("Send returned %d, want %d", sent, DefaultHiwat+100)
	}
}

type funcProto struct {
	send  func(p *sim.Proc)
	rcvd  func(p *sim.Proc)
	close func(p *sim.Proc)
}

func (f *funcProto) Send(p *sim.Proc) {
	if f.send != nil {
		f.send(p)
	}
}
func (f *funcProto) Rcvd(p *sim.Proc) {
	if f.rcvd != nil {
		f.rcvd(p)
	}
}
func (f *funcProto) Close(p *sim.Proc) {
	if f.close != nil {
		f.close(p)
	}
}

func TestRecvEOF(t *testing.T) {
	env := sim.NewEnv()
	a, b, _ := newLoopPair(env)
	var n1, n2 int
	var r1, r2 *RecvOp
	buf := make([]byte, 10)
	env.Spawn("rx", sim.Steps(
		func(p *sim.Proc) { r1 = b.Recv(p, buf) },
		func(p *sim.Proc) { n1 = r1.N; r2 = b.Recv(p, buf) },
		func(p *sim.Proc) { n2 = r2.N },
	))
	env.Spawn("tx", sim.Steps(
		func(p *sim.Proc) { a.Send(p, []byte("hi")) },
		func(p *sim.Proc) { p.Sleep(sim.Millisecond) },
		func(p *sim.Proc) { a.Close(p) },
	))
	env.Run()
	if n1 != 2 || n2 != 0 {
		t.Fatalf("Recv = %d then %d, want 2 then 0 (EOF)", n1, n2)
	}
}

func TestRecvError(t *testing.T) {
	env := sim.NewEnv()
	_, b, _ := newLoopPair(env)
	boom := errors.New("boom")
	var err error
	var recv *RecvOp
	env.Spawn("rx", sim.Steps(
		func(p *sim.Proc) { recv = b.Recv(p, make([]byte, 4)) },
		func(p *sim.Proc) { err = recv.Err },
	))
	env.Spawn("killer", sim.Steps(
		func(p *sim.Proc) { p.Sleep(sim.Millisecond) },
		func(p *sim.Proc) { b.SetError(boom) },
	))
	env.Run()
	if err != boom {
		t.Fatalf("Recv err = %v, want boom", err)
	}
}

func TestSendErrorInterrupts(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	so := New(k)
	so.Proto = &funcProto{}
	so.Connected = true
	boom := errors.New("reset")
	var err error
	var send *SendOp
	env.Spawn("tx", sim.Steps(
		// Fill the buffer, then block; the error must unblock us.
		func(p *sim.Proc) { send = so.Send(p, make([]byte, DefaultHiwat*2)) },
		func(p *sim.Proc) { err = send.Err },
	))
	env.Spawn("killer", sim.Steps(
		func(p *sim.Proc) { p.Sleep(sim.Millisecond) },
		func(p *sim.Proc) { so.SetError(boom) },
	))
	env.Run()
	if err != boom {
		t.Fatalf("Send err = %v, want reset", err)
	}
}

func TestIntegratedModeStashesChecksums(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	so := New(k)
	so.Mode = cost.ChecksumIntegrated
	var captured *mbuf.Mbuf
	so.Proto = &funcProto{send: func(p *sim.Proc) {
		captured = so.Snd.Chain()
	}}
	so.Connected = true
	payload := make([]byte, 2000)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { so.Send(p, payload) }))
	env.Run()
	if captured == nil {
		t.Fatal("no chain captured")
	}
	for m := captured; m != nil; m = m.Next() {
		if !m.CsumValid {
			t.Fatal("integrated copyin did not stash a partial checksum")
		}
	}
}

func TestStandardModeNoStash(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	so := New(k)
	var captured *mbuf.Mbuf
	so.Proto = &funcProto{send: func(p *sim.Proc) { captured = so.Snd.Chain() }}
	so.Connected = true
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { so.Send(p, make([]byte, 100)) }))
	env.Run()
	if captured.CsumValid {
		t.Fatal("standard mode stashed a checksum")
	}
}

func TestBufferDropPanicsBeyondContent(t *testing.T) {
	env := sim.NewEnv()
	k := kern.New(env, cost.DECstation5000(), "h")
	var b Buffer
	b.initBuffer(k, "t")
	defer func() {
		if recover() == nil {
			t.Fatal("over-drop did not panic")
		}
	}()
	b.Drop(1)
}

func TestUserLayerCharged(t *testing.T) {
	env := sim.NewEnv()
	a, b, _ := newLoopPair(env)
	a.K.Trace.Enable()
	env.Spawn("rx", sim.Steps(func(p *sim.Proc) {
		b.Recv(p, make([]byte, 64))
	}))
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { a.Send(p, make([]byte, 64)) }))
	env.Run()
	var tx, rx sim.Time
	for _, s := range a.K.Trace.Spans() {
		switch s.Layer {
		case trace.LayerUserTx:
			tx += s.Duration()
		case trace.LayerUserRx:
			rx += s.Duration()
		}
	}
	if tx == 0 || rx == 0 {
		t.Fatalf("User layers uncharged: tx=%v rx=%v", tx, rx)
	}
}

func TestRecvPartialReads(t *testing.T) {
	env := sim.NewEnv()
	a, b, _ := newLoopPair(env)
	payload := []byte("0123456789")
	var reads []string
	buf := make([]byte, 3)
	env.Spawn("rx", &recvLoopFrame{t: t, so: b, want: len(payload), buf: buf,
		each: func(n int) { reads = append(reads, string(buf[:n])) }})
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) { a.Send(p, payload) }))
	env.Run()
	joined := ""
	for _, r := range reads {
		joined += r
	}
	if joined != string(payload) {
		t.Fatalf("partial reads reassembled %q", joined)
	}
}
