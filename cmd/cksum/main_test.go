package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-parallel", "2", "-seed", "99"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 5", "PCB lookup cost", "Sun-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSubsets(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-pcb=false", "-sun3=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "PCB lookup") || strings.Contains(out, "Sun-3") {
		t.Fatalf("disabled sections rendered:\n%s", out)
	}
	if !strings.Contains(out, "Table 5") {
		t.Fatal("table 5 missing")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Table5 struct {
			Rows []struct{ Size int }
		} `json:"table5"`
		PCB struct {
			PerEntryMicros float64
		} `json:"pcb"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(payload.Table5.Rows) == 0 || payload.PCB.PerEntryMicros <= 0 {
		t.Fatalf("JSON payload empty: %+v", payload)
	}
}
