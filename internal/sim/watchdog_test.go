package sim

import (
	"strings"
	"testing"
)

// spin schedules a self-rescheduling timer: ticks of the given period,
// at most n of them (the bound keeps a broken watchdog from hanging the
// test), invoking fn on each tick when non-nil.
func spin(e *Env, period Time, n int, fn func()) {
	var tick func()
	tick = func() {
		if fn != nil {
			fn()
		}
		if n--; n > 0 {
			e.After(period, "spin.tick", tick)
		}
	}
	e.After(period, "spin.tick", tick)
}

// TestWatchdogFiresOnStall pins the core contract: virtual time
// advancing past the horizon with zero progress reports aborts the run
// with a diagnostic, instead of executing the livelock to completion.
func TestWatchdogFiresOnStall(t *testing.T) {
	e := NewEnv()
	w := NewWatchdog(100 * Millisecond)
	w.OnFire(func(fe *Env) string {
		if fe != e {
			t.Errorf("OnFire env = %p, want the stalled env %p", fe, e)
		}
		return "\n  DIAG: " + fe.PendingSummary(4)
	})
	e.SetWatchdog(w)
	spin(e, 10*Millisecond, 1000, nil) // would run to 10s unchecked
	e.Run()

	if !w.Fired() {
		t.Fatal("watchdog did not fire on a 10s no-progress spin with a 100ms horizon")
	}
	err := e.WatchdogErr()
	if err == nil {
		t.Fatal("WatchdogErr = nil after firing")
	}
	for _, want := range []string{"no workload progress", "DIAG:", "spin.tick"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic %q missing %q", err, want)
		}
	}
	if e.Now() >= 10*Second {
		t.Fatalf("run executed to completion (clock %v); watchdog should have stopped it", e.Now())
	}
	// Firing is permanent: further stepping stays refused.
	if e.Step() {
		t.Fatal("Step ran an event after the watchdog fired")
	}
}

// TestWatchdogProgressDefersFiring pins the other half: a run that
// keeps reporting progress never fires, no matter how long it gets.
func TestWatchdogProgressDefersFiring(t *testing.T) {
	e := NewEnv()
	w := NewWatchdog(100 * Millisecond)
	e.SetWatchdog(w)
	spin(e, 10*Millisecond, 1000, w.Progress) // 10s of steady progress
	e.Run()

	if w.Fired() {
		t.Fatalf("watchdog fired on a run with progress every tick: %v", w.Err())
	}
	if e.Now() != 10*Second {
		t.Fatalf("clock = %v, want 10s (run to completion)", e.Now())
	}
	if err := e.WatchdogErr(); err != nil {
		t.Fatalf("WatchdogErr = %v, want nil", err)
	}
}

// TestWatchdogQuietStretchWithinHorizon: legitimate quiet periods
// shorter than the horizon (fault downtime, backoff recovery) pass
// untouched.
func TestWatchdogQuietStretchWithinHorizon(t *testing.T) {
	e := NewEnv()
	w := NewWatchdog(Second)
	e.SetWatchdog(w)
	e.At(10*Millisecond, "work", w.Progress)
	// 900ms of silence — inside the 1s horizon — then more work.
	e.At(910*Millisecond, "work", w.Progress)
	e.Run()
	if w.Fired() {
		t.Fatalf("watchdog fired across a sub-horizon quiet stretch: %v", w.Err())
	}
}

// TestWatchdogDefaultHorizon pins the default: one simulated hour,
// selected by a zero horizon.
func TestWatchdogDefaultHorizon(t *testing.T) {
	if DefaultWatchdogHorizon != Time(3600)*Second {
		t.Fatalf("DefaultWatchdogHorizon = %v, want 1h", DefaultWatchdogHorizon)
	}
	if w := NewWatchdog(0); w.horizon != DefaultWatchdogHorizon {
		t.Fatalf("NewWatchdog(0) horizon = %v, want default", w.horizon)
	}
}

// TestCrashScheduleShape pins the canonical recovery plan: crash then
// restart, not shard-safe.
func TestCrashScheduleShape(t *testing.T) {
	s := CrashSchedule(3, 500*Millisecond, Second)
	want := FaultSchedule{
		{At: 500 * Millisecond, Kind: FaultHostCrash, Host: 3},
		{At: 1500 * Millisecond, Kind: FaultHostRestart, Host: 3},
	}
	if len(s) != len(want) {
		t.Fatalf("schedule = %v, want %v", s, want)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, s[i], want[i])
		}
	}
	if s.ShardSafe() {
		t.Fatal("host crashes must not be shard-safe")
	}
	if err := s.Validate(4); err != nil {
		t.Fatalf("Validate(4) = %v", err)
	}
	if err := s.Validate(3); err == nil {
		t.Fatal("Validate(3) accepted an out-of-range host")
	}
}

// TestLinkFlapsDeterministic pins the per-entity stream construction:
// same base seed and hosts give a byte-identical schedule; each host's
// flaps come from its private stream, so listing hosts in a different
// order changes nothing.
func TestLinkFlapsDeterministic(t *testing.T) {
	mk := func(base uint64, hosts []int) FaultSchedule {
		return LinkFlaps(base, hosts, 3, 20*Millisecond, 500*Microsecond)
	}
	a := mk(42, []int{1, 2, 3})
	b := mk(42, []int{3, 1, 2}) // construction order must not matter
	if len(a) != 18 {
		t.Fatalf("len = %d, want 18 (3 hosts x 3 flaps x down+up)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across host orderings: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(43, []int{1, 2, 3})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different base seeds produced identical schedules")
	}
	// Canonical order: non-decreasing time, ties by host then kind.
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.At > q.At || (p.At == q.At && p.Host > q.Host) ||
			(p.At == q.At && p.Host == q.Host && p.Kind > q.Kind) {
			t.Fatalf("schedule not in canonical order at %d: %v then %v", i, p, q)
		}
	}
	if !a.ShardSafe() {
		t.Fatal("link flaps must be shard-safe")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if err := (FaultSchedule{{At: -1, Kind: FaultLinkDown, Host: 0}}).Validate(1); err == nil {
		t.Fatal("Validate accepted a negative-time event")
	}
}
