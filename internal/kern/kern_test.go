package kern

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newKernel() (*sim.Env, *Kernel) {
	env := sim.NewEnv()
	k := New(env, cost.DECstation5000(), "host")
	return env, k
}

func TestUseAdvancesBusyCursor(t *testing.T) {
	env, k := newKernel()
	var s1, e1, s2, e2 sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		s1, e1 = k.Use(p, trace.LayerIPTx, 100*sim.Microsecond)
		s2, e2 = k.Use(p, trace.LayerIPTx, 50*sim.Microsecond)
	})
	env.Run()
	if s1 != 0 || e1 != 100*sim.Microsecond {
		t.Fatalf("first charge [%v,%v]", s1, e1)
	}
	if s2 != e1 || e2 != e1+50*sim.Microsecond {
		t.Fatalf("second charge [%v,%v]", s2, e2)
	}
	if k.BusyUntil() != e2 {
		t.Fatalf("BusyUntil = %v", k.BusyUntil())
	}
}

func TestUseSerializesAcrossProcs(t *testing.T) {
	env, k := newKernel()
	var endA, startB sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		_, endA = k.Use(p, trace.LayerIPTx, 200*sim.Microsecond)
	})
	env.Spawn("b", func(p *sim.Proc) {
		startB, _ = k.Use(p, trace.LayerIPRx, 10*sim.Microsecond)
	})
	env.Run()
	// b spawned second at t=0: its charge must start when a's ends.
	if startB != endA {
		t.Fatalf("b started at %v, a ended at %v: CPU not serialized", startB, endA)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	env, k := newKernel()
	env.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative charge did not panic")
			}
		}()
		k.Use(p, trace.LayerIPTx, -1)
	})
	env.Run()
}

func TestSleepOnChargesWakeup(t *testing.T) {
	env, k := newKernel()
	k.Trace.Enable()
	wq := env.NewWaitQueue("w")
	var resumed sim.Time
	env.Spawn("sleeper", func(p *sim.Proc) {
		k.SleepOn(p, wq)
		resumed = env.Now()
	})
	env.Spawn("waker", func(p *sim.Proc) {
		p.Sleep(1 * sim.Millisecond)
		wq.Wake()
	})
	env.Run()
	want := 1*sim.Millisecond + k.Cost.Wakeup
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
	found := false
	for _, s := range k.Trace.Spans() {
		if s.Layer == trace.LayerWakeup && s.Duration() == k.Cost.Wakeup {
			found = true
		}
	}
	if !found {
		t.Fatal("Wakeup span not recorded")
	}
}

func TestAllocChargesAndCounts(t *testing.T) {
	env, k := newKernel()
	k.Trace.Enable()
	env.Spawn("p", func(p *sim.Proc) {
		m := k.AllocMbuf(p, trace.LayerUserTx)
		c := k.AllocCluster(p, trace.LayerUserTx)
		m.SetNext(c)
		k.FreeChain(p, trace.LayerMbuf, m)
	})
	env.Run()
	st := k.Pool.Stats
	if st.MbufAllocs != 2 || st.MbufFrees != 2 || st.ClusterAllocs != 1 || st.ClusterFrees != 1 {
		t.Fatalf("stats %+v", st)
	}
	if k.BusyUntil() != k.Cost.MbufAlloc+k.Cost.ClusterAlloc+2*k.Cost.MbufFree {
		t.Fatalf("charge total %v", k.BusyUntil())
	}
}

func TestFreeChainNilIsNoop(t *testing.T) {
	env, k := newKernel()
	env.Spawn("p", func(p *sim.Proc) {
		k.FreeChain(p, trace.LayerMbuf, nil)
	})
	env.Run()
	if k.BusyUntil() != 0 {
		t.Fatal("freeing nil charged time")
	}
}

func TestMbufAllocFreeCostMatchesPaper(t *testing.T) {
	// §2.2.1: "the measured time to allocate and free an mbuf ... is
	// just over 7µs".
	m := cost.DECstation5000()
	got := m.MbufAllocFree().Micros()
	if got < 7.0 || got > 7.5 {
		t.Fatalf("mbuf alloc+free = %.2fµs, paper says just over 7", got)
	}
}
