package workload_test

import (
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestBulkSubMSSChunksComplete is the regression test for ROADMAP 3b:
// workload.Bulk with chunk sizes below the MSS and multiple concurrent
// clients used to drive the stack into what looked like a retransmission
// livelock that never completed. The diagnosis: the socket buffer had no
// sbcompress, so every sub-MSS write became its own mbuf. A 16 KB send
// buffer of 1-byte mbufs made each sbappend walk a 16k-long chain
// (quadratic wall-clock time), and TCP output's mcopy charged per source
// mbuf — carving one 9148-byte MSS out of 1-byte mbufs cost ~50 ms of
// simulated CPU, paid again on every retransmission, which stretched
// multi-client runs into simulated (and wall-clock) hours. With
// sbcompress in sock.Buffer.Append the same runs finish in under ten
// simulated seconds; this test pins that down to sharp bounds so a
// regression shows up as a timeout or an elapsed-time assertion, not a
// hung fuzz worker.
func TestBulkSubMSSChunksComplete(t *testing.T) {
	for _, tc := range []struct {
		hosts, chunk int
	}{
		{5, 1},    // pathological: one mbuf per byte before the fix
		{5, 512},  // typical sub-MSS application write
		{9, 5},    // previously hung for minutes of wall-clock time
		{7, 2048}, // sub-MSS but above the cluster threshold
	} {
		cfg := lab.Config{Link: lab.LinkATM, Seed: 1, PacketTrace: true}
		l := lab.NewTopology(cfg, tc.hosts)
		g := workload.Bulk{Bytes: 16384, Chunk: tc.chunk}
		r, err := g.Run(l)
		if err != nil {
			t.Fatalf("hosts=%d chunk=%d: %v", tc.hosts, tc.chunk, err)
		}
		wantBytes := int64((tc.hosts - 1) * 16384)
		if r.Bytes != wantBytes {
			t.Errorf("hosts=%d chunk=%d: transferred %d bytes, want %d",
				tc.hosts, tc.chunk, r.Bytes, wantBytes)
		}
		// The transfers ride synchronized RTOs when the server's receive
		// FIFO overflows, so they are not fast — but they must stay in
		// the seconds range, not the simulated hours the livelock
		// produced.
		if limit := 30 * sim.Second; r.Elapsed > limit {
			t.Errorf("hosts=%d chunk=%d: took %v simulated, want < %v",
				tc.hosts, tc.chunk, r.Elapsed, limit)
		}
	}
}
