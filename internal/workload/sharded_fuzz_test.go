package workload_test

import (
	"encoding/json"
	"testing"

	"repro/internal/lab"
	"repro/internal/workload"
)

// fuzzTrial derives a topology/workload/shard configuration from raw
// fuzz bytes, clamped to shapes a trial can finish quickly, and returns
// the generator plus the lab config and host count.
func fuzzTrial(fabric, leafPorts, hosts, wl uint8, seed uint16) (workload.Generator, lab.Config, int) {
	cfg := lab.Config{Link: lab.LinkATM, PacketTrace: true, Seed: uint64(seed) + 1}
	n := 3 + int(hosts%7) // 3..9 hosts
	if fabric%2 == 1 {
		cfg.Fabric = lab.FabricFatTree
		cfg.LeafPorts = 1 + int(leafPorts%4)
	}
	var g workload.Generator
	switch wl % 4 {
	case 0:
		g = workload.Echo{Iterations: 4, Warmup: 1}
	case 1:
		g = workload.FanIn{Requests: 3, Size: 64}
	case 2:
		g = workload.Churn{Conns: 2, Size: 48}
	default:
		// Sub-MSS chunks included: they exercise the sbcompress path in
		// the socket buffer (the ROADMAP 3b livelock fix) on top of the
		// shard-identity property this harness is hunting.
		g = workload.Bulk{Bytes: 16384, Chunk: 1 + int(seed%8192)}
	}
	return g, cfg, n
}

// FuzzShardedBitIdentity throws randomized topology, workload, and
// shard-count combinations at the sharded executor and requires every
// one to reproduce its serial run byte-for-byte — the metamorphic matrix
// test with the corners chosen adversarially instead of by hand.
func FuzzShardedBitIdentity(f *testing.F) {
	// Seed corpus: one per workload, both fabrics, awkward shard counts
	// (1 = degenerate, clamped, prime, and power-of-two splits).
	f.Add(uint8(0), uint8(0), uint8(6), uint8(0), uint8(2), uint16(1994))
	f.Add(uint8(1), uint8(0), uint8(0), uint8(0), uint8(3), uint16(7))
	f.Add(uint8(0), uint8(0), uint8(4), uint8(1), uint8(4), uint16(21))
	f.Add(uint8(1), uint8(1), uint8(6), uint8(1), uint8(7), uint16(3))
	f.Add(uint8(0), uint8(0), uint8(3), uint8(2), uint8(5), uint16(12))
	f.Add(uint8(1), uint8(2), uint8(5), uint8(2), uint8(1), uint16(9))
	f.Add(uint8(0), uint8(0), uint8(2), uint8(3), uint8(8), uint16(40))
	f.Add(uint8(1), uint8(3), uint8(6), uint8(3), uint8(2), uint16(5))

	f.Fuzz(func(t *testing.T, fabric, leafPorts, hosts, wl, shards uint8, seed uint16) {
		g, cfg, n := fuzzTrial(fabric, leafPorts, hosts, wl, seed)
		nShards := 1 + int(shards%8)

		serialLab := lab.NewTopology(cfg, n)
		want, err := g.Run(serialLab)
		if err != nil {
			t.Fatalf("serial run failed: %v", err)
		}
		wantJSON, _ := json.Marshal(want)

		c, err := lab.NewCluster(cfg, n, nShards)
		if err != nil {
			t.Fatalf("NewCluster(%+v, %d, %d): %v", cfg, n, nShards, err)
		}
		got, err := workload.RunSharded(g, c)
		if err != nil {
			t.Fatalf("sharded run failed: %v", err)
		}
		gotJSON, _ := json.Marshal(got)
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("%s on %d hosts (fabric %v, leaf %d), %d shards (eff %d): diverged from serial\nserial:  %.200s\nsharded: %.200s",
				g.Name(), n, cfg.Fabric, cfg.LeafPorts, nShards, c.NumShards(),
				wantJSON, gotJSON)
		}
	})
}
