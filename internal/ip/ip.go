// Package ip implements the IPv4 layer of the simulated stack: real header
// marshaling and parsing (with a real header checksum), the output path,
// and the input path's software-interrupt queue — the IPQ whose scheduling
// latency the paper reports as its own row in Table 3.
//
// Routing is the trivial two-host case the paper measures (a private,
// switchless network): every datagram goes out the single attached
// interface. Fragmentation is unnecessary because TCP segments to the
// interface MSS; Output enforces this with a panic rather than silently
// producing wrong timing.
package ip

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HeaderLen is the length of an IPv4 header without options.
const HeaderLen = 20

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// Header is a parsed IPv4 header (no options).
type Header struct {
	TotalLen int
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst uint32
}

// Marshal writes the header, including a freshly computed header checksum,
// into b, which must be at least HeaderLen bytes.
func (h *Header) Marshal(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0
	b[2] = byte(h.TotalLen >> 8)
	b[3] = byte(h.TotalLen)
	b[4] = byte(h.ID >> 8)
	b[5] = byte(h.ID)
	b[6], b[7] = 0, 0 // no fragmentation
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	b[12] = byte(h.Src >> 24)
	b[13] = byte(h.Src >> 16)
	b[14] = byte(h.Src >> 8)
	b[15] = byte(h.Src)
	b[16] = byte(h.Dst >> 24)
	b[17] = byte(h.Dst >> 16)
	b[18] = byte(h.Dst >> 8)
	b[19] = byte(h.Dst)
	ck := checksum.Checksum(b[:HeaderLen])
	b[10] = byte(ck >> 8)
	b[11] = byte(ck)
}

// Parse reads and validates a header from b. It returns an error for a bad
// version, short buffer, or checksum mismatch.
func Parse(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("ip: short header (%d bytes)", len(b))
	}
	if b[0] != 0x45 {
		return h, fmt.Errorf("ip: unsupported version/IHL %#x", b[0])
	}
	if !checksum.Verify(b[:HeaderLen]) {
		return h, fmt.Errorf("ip: header checksum mismatch")
	}
	h.TotalLen = int(b[2])<<8 | int(b[3])
	h.ID = uint16(b[4])<<8 | uint16(b[5])
	h.TTL = b[8]
	h.Proto = b[9]
	h.Src = uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	h.Dst = uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19])
	return h, nil
}

// Dst reads the destination address out of a marshaled header without
// validating anything — the cheap decode drivers use on the transmit
// path to resolve a link-layer destination. A short buffer returns 0.
func Dst(b []byte) uint32 {
	if len(b) < HeaderLen {
		return 0
	}
	return uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19])
}

// PacketIDOf derives the trace identity of a marshaled datagram the way
// a packet capture would: addresses from the IP header and, for TCP,
// ports and sequence number from the transport header behind it. Short
// or non-TCP datagrams yield an identity with only the fields that
// exist (UDP traffic traces address-level; a truncated buffer yields
// the zero identity). Drivers use it to label their typed events, since
// the wire bytes are the only identity the lowest layers ever see.
func PacketIDOf(dg []byte) trace.PacketID {
	if len(dg) < HeaderLen {
		return trace.PacketID{}
	}
	id := trace.PacketID{
		Src: uint32(dg[12])<<24 | uint32(dg[13])<<16 | uint32(dg[14])<<8 | uint32(dg[15]),
		Dst: uint32(dg[16])<<24 | uint32(dg[17])<<16 | uint32(dg[18])<<8 | uint32(dg[19]),
	}
	if dg[9] == ProtoTCP && len(dg) >= HeaderLen+8 {
		t := dg[HeaderLen:]
		id.SrcPort = uint16(t[0])<<8 | uint16(t[1])
		id.DstPort = uint16(t[2])<<8 | uint16(t[3])
		id.Seq = uint32(t[4])<<24 | uint32(t[5])<<16 | uint32(t[6])<<8 | uint32(t[7])
	}
	return id
}

// NetIf is a network interface as IP sees it: something that can transmit
// a complete IP datagram. The ATM and Ethernet drivers implement it.
type NetIf interface {
	// Output transmits the datagram in process context, charging its own
	// driver costs. The chain includes the IP header. It is a frame call:
	// it may push a frame onto p, so it must be the caller's last action
	// before its Step returns.
	Output(p *sim.Proc, m *mbuf.Mbuf)
	// MTU returns the maximum datagram size the interface accepts.
	MTU() int
	// Name identifies the interface in diagnostics.
	Name() string
}

// Handler receives demultiplexed datagram payloads (header stripped).
// Input is a frame call: it may push a frame onto p, so it must be the
// caller's last action before its Step returns.
type Handler interface {
	Input(p *sim.Proc, h Header, m *mbuf.Mbuf)
}

// queued is one datagram waiting on the IP input queue.
type queued struct {
	m  *mbuf.Mbuf
	at sim.Time       // enqueue time, the start of the IPQ span
	id trace.PacketID // identity captured at enqueue, for attribution
}

// Stack is one host's IP layer.
type Stack struct {
	K    *kern.Kernel
	If   NetIf
	Addr uint32

	handlers map[uint8]Handler
	q        []queued
	wq       *sim.WaitQueue
	nextID   uint16
	out      *outOp // cached output frame (nil while in use)

	// Drops counts datagrams discarded on input (bad header, no handler),
	// for tests and fault-injection experiments.
	Drops int64
}

// NewStack creates the IP layer for a host with the given address and
// starts its software-interrupt service process (the netisr).
func NewStack(k *kern.Kernel, addr uint32) *Stack {
	s := &Stack{
		K:        k,
		Addr:     addr,
		handlers: make(map[uint8]Handler),
		wq:       k.Env.NewWaitQueue(k.Name + ".ipq"),
	}
	s.out = &outOp{s: s}
	k.Env.Spawn(k.Name+".netisr", &netisrFrame{s: s})
	return s
}

// Attach sets the interface datagrams are routed out of.
func (s *Stack) Attach(nif NetIf) { s.If = nif }

// Reset returns the stack to its just-constructed state for testbed
// reuse: empty input queue, datagram IDs restarting from zero, counters
// cleared. The registered protocol handlers, the attached interface, and
// the netisr service process (parked on the input queue's wait queue)
// all survive — they are the topology, not the trial.
func (s *Stack) Reset() {
	for i := range s.q {
		s.q[i] = queued{}
	}
	s.q = s.q[:0]
	s.nextID = 0
	s.Drops = 0
}

// Register installs the handler for an IP protocol number.
func (s *Stack) Register(proto uint8, h Handler) { s.handlers[proto] = h }

// Output encapsulates the transport payload m (e.g. a TCP segment) in an
// IP datagram to dst and hands it to the interface. It charges the
// ip_output processing cost and panics if the datagram exceeds the MTU,
// since this stack deliberately omits fragmentation. It is a frame call:
// it pushes the output frame onto p, so it must be the caller's last
// action before its Step returns.
func (s *Stack) Output(p *sim.Proc, dst uint32, proto uint8, m *mbuf.Mbuf) {
	f := s.out
	if f != nil {
		s.out = nil
	} else {
		f = &outOp{s: s}
	}
	f.pc, f.dst, f.proto, f.m = 0, dst, proto, m
	p.Call(f)
}

// outOp is the resumable state of one Output call. The stack caches one:
// outputs on a host are serialized in practice (one CPU), so steady state
// allocates nothing; a rare overlap falls back to a fresh frame.
type outOp struct {
	s     *Stack
	pc    int
	dst   uint32
	proto uint8
	m     *mbuf.Mbuf
}

func (f *outOp) Step(p *sim.Proc) {
	s := f.s
	switch f.pc {
	case 0:
		f.pc = 1
		if !s.K.Use(p, trace.LayerIPTx, s.K.Cost.IPOutput) {
			return
		}
		fallthrough
	case 1:
		m := f.m
		total := mbuf.ChainLen(m) + HeaderLen
		if total > s.If.MTU() {
			panic(fmt.Sprintf("ip: datagram of %d bytes exceeds MTU %d", total, s.If.MTU()))
		}
		s.nextID++
		h := Header{TotalLen: total, ID: s.nextID, TTL: 64, Proto: f.proto, Src: s.Addr, Dst: f.dst}
		head, hdr, _ := s.K.Pool.PrependHeader(m, HeaderLen)
		h.Marshal(hdr)
		s.K.Trace.Event(trace.Event{
			Kind: trace.EvIPSend, At: s.K.Now(),
			ID: s.K.PacketContext(p), Len: total,
		})
		f.pc = 2
		s.If.Output(p, head)
	case 2:
		f.m = nil
		if s.out == nil {
			s.out = f
		}
		p.Return()
	}
}

// Enqueue places a received datagram on the IP input queue and signals the
// software interrupt. Drivers call it from interrupt context; the paper's
// IPQ row measures the latency from this call to the netisr removing the
// datagram. The enqueueing process's packet tag is captured with the
// datagram so the dequeue attributes the wait to the right packet.
func (s *Stack) Enqueue(m *mbuf.Mbuf) {
	id := s.K.PacketContext(s.K.Env.Current())
	s.q = append(s.q, queued{m: m, at: s.K.Now(), id: id})
	s.K.Trace.Event(trace.Event{
		Kind: trace.EvIPEnqueue, At: s.K.Now(), ID: id, Aux: int64(len(s.q)),
	})
	s.wq.Wake()
}

// QueueLen returns the number of datagrams waiting on the input queue.
func (s *Stack) QueueLen() int { return len(s.q) }

// netisrFrame is the IP software-interrupt service loop: the stack's one
// persistent process. Each pass dequeues one datagram, runs ip_input on
// it, and hands the payload up; with the queue empty it parks on the
// input queue's wait queue. As the root frame of a persistent process it
// never returns, so the service loop allocates no frames in steady state.
type netisrFrame struct {
	s      *Stack
	pc     int
	head   queued
	tagged bool
}

func (f *netisrFrame) Step(p *sim.Proc) {
	s := f.s
	for {
		switch f.pc {
		case 0:
			if len(s.q) == 0 {
				s.wq.Wait(p)
				return
			}
			// Software-interrupt dispatch: CPU time spent getting from the
			// signal to the dequeue, attributed to the IPQ row. Queueing
			// delay behind a busy CPU is not re-attributed here — the work
			// occupying the CPU (typically the driver copying a later
			// segment's cells) already owns those spans. The head datagram's
			// identity tags the process before the charge so the dispatch
			// cost attributes to the packet being dequeued.
			f.head = s.q[0]
			// The tag exists only for trace attribution; untraced runs skip
			// the push (it boxes the identity, one allocation per datagram).
			f.tagged = s.K.Trace.PacketsEnabled()
			if f.tagged {
				p.PushTag(f.head.id)
			}
			f.pc = 1
			if !s.K.Use(p, trace.LayerIPQ, s.K.Cost.SoftintDispatch) {
				return
			}
		case 1:
			copy(s.q, s.q[1:])
			s.q = s.q[:len(s.q)-1]
			s.K.Trace.Event(trace.Event{
				Kind: trace.EvIPDequeue, At: f.head.at, Dur: s.K.Now() - f.head.at,
				ID: f.head.id, Aux: int64(len(s.q)),
			})
			// ip_input: charge processing, then parse, verify and deliver.
			f.pc = 2
			if !s.K.Use(p, trace.LayerIPRx, s.K.Cost.IPInput) {
				return
			}
		case 2:
			m := f.head.m
			// Header scratch on the stack: Parse copies what it keeps, so
			// this must not escape (the per-datagram path allocates nothing).
			var raw [HeaderLen]byte
			if mbuf.CopyBytesTo(m, 0, HeaderLen, raw[:]) != HeaderLen {
				s.Drops++
				s.K.Pool.Free(m)
				f.pc = 3
				continue
			}
			h, err := Parse(raw[:])
			if err != nil {
				s.Drops++
				s.K.Pool.Free(m)
				f.pc = 3
				continue
			}
			// Trim to the datagram's stated length (drivers may deliver
			// padding, e.g. Ethernet minimum-frame padding) and strip the
			// header.
			excess := mbuf.ChainLen(m) - h.TotalLen
			if excess < 0 {
				s.Drops++
				s.K.Pool.Free(m)
				f.pc = 3
				continue
			}
			m = s.K.Pool.Drop(m, HeaderLen)
			if excess > 0 {
				m = trimTail(s.K.Pool, m, excess)
			}
			hd, ok := s.handlers[h.Proto]
			if !ok {
				s.Drops++
				s.K.Pool.Free(m)
				f.pc = 3
				continue
			}
			s.K.Trace.Event(trace.Event{
				Kind: trace.EvIPDeliver, At: s.K.Now(),
				ID: s.K.PacketContext(p), Len: h.TotalLen, Aux: int64(h.Proto),
			})
			f.pc = 3
			hd.Input(p, h, m)
			return
		case 3:
			if f.tagged {
				p.PopTag()
			}
			f.head = queued{}
			f.pc = 0
		}
	}
}

// trimTail removes n bytes from the end of the chain, freeing emptied
// mbufs.
func trimTail(pool *mbuf.Pool, m *mbuf.Mbuf, n int) *mbuf.Mbuf {
	keep := mbuf.ChainLen(m) - n
	front, back := pool.Split(m, keep)
	if back != nil {
		pool.Free(back)
	}
	return front
}
