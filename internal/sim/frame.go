package sim

// Frame combinators for cold paths and tests. Hot paths hand-roll frames
// with explicit program counters; simple process bodies — test drivers,
// populate loops — compose these instead.

// stepsFrame runs a fixed sequence of functions, one per resumption.
type stepsFrame struct {
	pc  int
	fns []func(p *Proc)
}

// Steps returns a frame that runs each function once, in order. A step
// may end with at most one potentially-blocking action (a parking Sleep,
// a WaitQueue.Wait, a Call) in tail position; the next step runs when it
// completes. Steps with no blocking action run back to back at the same
// virtual time, exactly as straight-line code would.
func Steps(fns ...func(p *Proc)) Frame { return &stepsFrame{fns: fns} }

func (f *stepsFrame) Step(p *Proc) {
	if f.pc == len(f.fns) {
		p.Return()
		return
	}
	fn := f.fns[f.pc]
	f.pc++
	fn(p)
}

// loopFrame runs a body n times, one iteration per resumption.
type loopFrame struct {
	i, n int
	body func(p *Proc, i int)
}

// LoopN returns a frame that runs body with i = 0..n-1. Each iteration
// may end with one potentially-blocking action in tail position.
func LoopN(n int, body func(p *Proc, i int)) Frame {
	return &loopFrame{n: n, body: body}
}

func (f *loopFrame) Step(p *Proc) {
	if f.i == f.n {
		p.Return()
		return
	}
	i := f.i
	f.i++
	f.body(p, i)
}

// whileFrame runs a body until its condition goes false.
type whileFrame struct {
	cond func() bool
	body func(p *Proc)
}

// While returns a frame that runs body as long as cond() holds, checking
// cond before each iteration. Each iteration may end with one
// potentially-blocking action in tail position.
func While(cond func() bool, body func(p *Proc)) Frame {
	return &whileFrame{cond: cond, body: body}
}

func (f *whileFrame) Step(p *Proc) {
	if !f.cond() {
		p.Return()
		return
	}
	f.body(p)
}
