package core

import (
	"fmt"
	"strings"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/paperdata"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CksumRow is one size's user-level copy/checksum measurements (Table 5,
// Figure 2), in microseconds of simulated DECstation time. The real Go
// routines also execute over real buffers so the arithmetic is validated
// as a side effect of generating the table.
type CksumRow struct {
	Size              int
	ULTRIXChecksum    float64
	ULTRIXBcopy       float64
	ULTRIXTotal       float64
	OptimizedChecksum float64
	IntegratedCopyCk  float64
	SavingsPercent    float64 // separate (optimized+copy) versus integrated
}

// CksumResult is the regenerated Table 5.
type CksumResult struct {
	Rows []CksumRow
}

// RunTable5 regenerates Table 5: the user-level copy and checksum study.
// The simulated times come from the calibrated cost curves; the checksums
// themselves are computed for real, and the result is cross-checked so a
// broken implementation cannot silently produce the table.
func RunTable5() (*CksumResult, error) { return RunTable5Seeded(0) }

// RunTable5Seeded is RunTable5 with a caller-chosen seed for the
// validation buffers (0 uses the default). The reported times come from
// the cost model, so the seed changes only which random bytes the real
// checksum routines are validated against.
func RunTable5Seeded(seed uint64) (*CksumResult, error) {
	model := cost.DECstation5000()
	if seed == 0 {
		seed = 0x7a51e5
	}
	rng := sim.NewRNG(seed)
	res := &CksumResult{}
	for _, size := range Sizes {
		buf := make([]byte, size)
		rng.Fill(buf)
		dst := make([]byte, size)

		// Execute the real routines and verify they agree.
		su := checksum.SumULTRIX(buf)
		so := checksum.SumOptimized(buf)
		si := checksum.CopyAndSum(dst, buf)
		if su != so || so != si {
			return nil, fmt.Errorf("core: checksum implementations disagree at size %d", size)
		}
		for i := range buf {
			if dst[i] != buf[i] {
				return nil, fmt.Errorf("core: integrated copy corrupted byte %d", i)
			}
		}

		row := CksumRow{
			Size:              size,
			ULTRIXChecksum:    model.UserChecksumULTRIX.Cost(size).Micros(),
			ULTRIXBcopy:       model.UserBcopy.Cost(size).Micros(),
			OptimizedChecksum: model.UserChecksumOpt.Cost(size).Micros(),
			IntegratedCopyCk:  model.UserCopyChecksum.Cost(size).Micros(),
		}
		row.ULTRIXTotal = row.ULTRIXChecksum + row.ULTRIXBcopy
		separate := row.OptimizedChecksum + row.ULTRIXBcopy
		row.SavingsPercent = stats.PercentDecrease(separate, row.IntegratedCopyCk)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Table 5 with paper values.
func (r *CksumResult) Render() string {
	t := stats.NewTable(
		"Table 5 / Figure 2: Copy and Checksum Measurements (µs, paper in parens)",
		"Size", "ULTRIX cksum", "bcopy", "total", "optimized", "integrated", "savings%")
	p := paperdata.Table5
	cell := func(v, paper float64) string { return fmt.Sprintf("%.0f(%.0f)", v, paper) }
	for _, row := range r.Rows {
		t.AddRow(row.Size,
			cell(row.ULTRIXChecksum, p["ULTRIXChecksum"][row.Size]),
			cell(row.ULTRIXBcopy, p["ULTRIXBcopy"][row.Size]),
			cell(row.ULTRIXTotal, p["ULTRIXTotal"][row.Size]),
			cell(row.OptimizedChecksum, p["OptimizedChecksum"][row.Size]),
			cell(row.IntegratedCopyCk, p["IntegratedCopyCk"][row.Size]),
			fmt.Sprintf("%.0f(%.0f)", row.SavingsPercent, paperdata.Table5Savings[row.Size]))
	}
	return t.String()
}

// Sun3Result is the §4.1 cross-platform comparison: the relative saving
// of the integrated copy+checksum on the Sun-3 (from Clark et al.) versus
// the DECstation 5000/200.
type Sun3Result struct {
	Sun3SavingPercent float64
	DECSavingPercent  float64
}

// RunSun3Comparison computes the §4.1 comparison from the published
// constants and this model's 1 KB costs.
func RunSun3Comparison() Sun3Result {
	p := paperdata.Sun3Comparison
	model := cost.DECstation5000()
	const oneKB = 1024
	decSep := model.UserChecksumOpt.Cost(oneKB).Micros() + model.UserBcopy.Cost(oneKB).Micros()
	decComb := model.UserCopyChecksum.Cost(oneKB).Micros()
	return Sun3Result{
		Sun3SavingPercent: (p.Sun3Checksum + p.Sun3Copy - p.Sun3Combined) / p.Sun3Combined * 100,
		DECSavingPercent:  (decSep - decComb) / decComb * 100,
	}
}

// Render formats the Sun-3 comparison.
func (r Sun3Result) Render() string {
	var b strings.Builder
	b.WriteString("§4.1 Sun-3 versus DECstation 5000/200 integrated copy+checksum saving\n")
	fmt.Fprintf(&b, "Sun-3 (published): %.0f%% (paper: 35%%)\n", r.Sun3SavingPercent)
	fmt.Fprintf(&b, "DECstation (model): %.0f%% (paper: 68%%)\n", r.DECSavingPercent)
	return b.String()
}
