package runner

import (
	"context"
	"fmt"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/stats"
)

// EchoTrial is one grid cell of the round-trip sweep: a complete testbed
// configuration plus a transfer size and iteration counts.
type EchoTrial struct {
	Label      string
	Cfg        lab.Config
	Size       int
	Iterations int
	Warmup     int
	// UDP runs the datagram echo instead of the TCP one.
	UDP bool
}

// EchoOutcome is the aggregated result of one echo trial.
type EchoOutcome struct {
	Label string `json:"label"`
	Index int    `json:"index"`
	Seed  uint64 `json:"seed,omitempty"`
	Size  int    `json:"size"`
	N     int    `json:"n"`

	MeanMicros   float64 `json:"mean_us"`
	MedianMicros float64 `json:"median_us"`
	P95Micros    float64 `json:"p95_us"`
	P99Micros    float64 `json:"p99_us"`
	MinMicros    float64 `json:"min_us"`
	MaxMicros    float64 `json:"max_us"`
	StdDevMicros float64 `json:"stddev_us"`

	CorruptEchoes int    `json:"corrupt_echoes,omitempty"`
	Error         string `json:"error,omitempty"`
}

// RunEchoSweep executes the trials through the worker pool and aggregates
// each trial's round-trip samples through internal/stats. Outcomes come
// back in grid order; per-trial failures are recorded in Outcome.Error so
// one bad cell does not abort the sweep.
func RunEchoSweep(ctx context.Context, trials []EchoTrial, o Options) ([]EchoOutcome, error) {
	jobs := make([]Job, len(trials))
	for i, t := range trials {
		t := t
		jobs[i] = Job{
			Label: t.Label,
			RunOn: func(ctx context.Context, tb *Testbeds, seed uint64) (any, error) {
				return runEchoTrial(tb, t, seed)
			},
		}
	}
	outs, err := Run(ctx, jobs, o)
	res := make([]EchoOutcome, len(outs))
	for i, out := range outs {
		eo := EchoOutcome{
			Label: out.Label,
			Index: out.Index,
			Seed:  out.Seed,
			Size:  trials[i].Size,
		}
		if out.Err != nil {
			eo.Error = out.Err.Error()
		} else if agg, ok := out.Value.(EchoOutcome); ok {
			agg.Label, agg.Index, agg.Seed = eo.Label, eo.Index, eo.Seed
			eo = agg
		}
		res[i] = eo
	}
	return res, err
}

// ApplySeed returns cfg with a derived trial seed applied, or unchanged
// when seed is zero (the sweep did not request derived seeds).
func ApplySeed(cfg lab.Config, seed uint64) lab.Config {
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg
}

// runEchoTrial acquires the trial's testbed — warm from the worker's
// cache when one of the right shape exists, freshly built otherwise —
// and runs the echo benchmark, returning the aggregated outcome.
func runEchoTrial(tb *Testbeds, t EchoTrial, seed uint64) (any, error) {
	cfg := ApplySeed(t.Cfg, seed)
	iters, warm := t.Iterations, t.Warmup
	if iters <= 0 {
		iters = 100
	}
	if warm < 0 {
		warm = 0
	}
	l := tb.Lab(cfg, 2)
	var (
		res *lab.EchoResult
		err error
	)
	if t.UDP {
		res, err = l.RunUDPEcho(t.Size, iters, warm)
	} else {
		res, err = l.RunEcho(t.Size, iters, warm)
	}
	if err != nil {
		return nil, err
	}
	var s stats.Sample
	for _, rtt := range res.RTTs {
		s.Add(rtt.Micros())
	}
	q := s.Quantiles()
	return EchoOutcome{
		Size:          t.Size,
		N:             s.N(),
		MeanMicros:    s.Mean(),
		MedianMicros:  q.P50,
		P95Micros:     q.P95,
		P99Micros:     q.P99,
		MinMicros:     s.Min(),
		MaxMicros:     s.Max(),
		StdDevMicros:  s.StdDev(),
		CorruptEchoes: res.CorruptEchoes,
	}, nil
}

// Grid describes a sweep as the cartesian product of its dimensions.
// Empty dimensions collapse to the paper's baseline value, so the zero
// grid (plus Sizes) is the baseline ATM configuration at each size.
type Grid struct {
	Links     []lab.LinkKind
	Modes     []cost.ChecksumMode
	NoPred    []bool // true disables header prediction
	Sizes     []int
	MTUs      []int     // 0 means the link default
	SockBufs  []int     // 0 means sock.DefaultHiwat
	LossRates []float64 // ATM cell-loss probabilities

	Iterations int
	Warmup     int
}

func defLinks(v []lab.LinkKind) []lab.LinkKind {
	if len(v) == 0 {
		return []lab.LinkKind{lab.LinkATM}
	}
	return v
}

func defModes(v []cost.ChecksumMode) []cost.ChecksumMode {
	if len(v) == 0 {
		return []cost.ChecksumMode{cost.ChecksumStandard}
	}
	return v
}

func defBools(v []bool) []bool {
	if len(v) == 0 {
		return []bool{false}
	}
	return v
}

func defInts(v []int, d int) []int {
	if len(v) == 0 {
		return []int{d}
	}
	return v
}

func defFloats(v []float64) []float64 {
	if len(v) == 0 {
		return []float64{0}
	}
	return v
}

// Trials expands the grid into its cells in a fixed nesting order (link,
// mode, prediction, MTU, socket buffer, loss rate, size), which fixes
// each cell's index and therefore its derived seed.
func (g Grid) Trials() []EchoTrial {
	var out []EchoTrial
	for _, link := range defLinks(g.Links) {
		for _, mode := range defModes(g.Modes) {
			for _, noPred := range defBools(g.NoPred) {
				for _, mtu := range defInts(g.MTUs, 0) {
					for _, buf := range defInts(g.SockBufs, 0) {
						for _, loss := range defFloats(g.LossRates) {
							for _, size := range defInts(g.Sizes, 4) {
								cfg := lab.Config{
									Link:              link,
									Mode:              mode,
									DisablePrediction: noPred,
									MTU:               mtu,
									SockBuf:           buf,
									CellLossRate:      loss,
								}
								out = append(out, EchoTrial{
									Label:      TrialLabel(cfg, size),
									Cfg:        cfg,
									Size:       size,
									Iterations: g.Iterations,
									Warmup:     g.Warmup,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// TrialLabel names a cell compactly and uniquely: the link and checksum
// mode always, then only the knobs that deviate from the baseline.
func TrialLabel(cfg lab.Config, size int) string {
	l := fmt.Sprintf("%s/%s", cfg.Link, cfg.Mode)
	if cfg.DisablePrediction {
		l += "/nopred"
	}
	if cfg.HashPCBs {
		l += "/hashpcb"
	}
	if cfg.ExtraPCBs > 0 {
		l += fmt.Sprintf("/pcbs=%d", cfg.ExtraPCBs)
	}
	if cfg.LivePCBs > 0 {
		l += fmt.Sprintf("/livepcbs=%d", cfg.LivePCBs)
	}
	if cfg.MTU > 0 {
		l += fmt.Sprintf("/mtu=%d", cfg.MTU)
	}
	if cfg.SockBuf > 0 {
		l += fmt.Sprintf("/buf=%d", cfg.SockBuf)
	}
	if cfg.CellLossRate > 0 {
		l += fmt.Sprintf("/loss=%g", cfg.CellLossRate)
	}
	return fmt.Sprintf("%s/%dB", l, size)
}

// PaperGrid is the paper's own experiment grid: both links, all three
// checksum modes, prediction on and off, every transfer size of §1.2.
func PaperGrid(sizes []int, iterations, warmup int) Grid {
	return Grid{
		Links:      []lab.LinkKind{lab.LinkATM, lab.LinkEther},
		Modes:      []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumIntegrated, cost.ChecksumNone},
		NoPred:     []bool{false, true},
		Sizes:      sizes,
		Iterations: iterations,
		Warmup:     warmup,
	}
}

// ExtendedGrid sweeps the dimensions the testbed supports but the paper
// never varies: the ATM MTU (segment size via the negotiated MSS), the
// socket-buffer high-water mark (back-to-back segments versus window-
// update stalls), and cell loss in the spirit of examples/lossy.
func ExtendedGrid(iterations, warmup int) Grid {
	return Grid{
		Links:      []lab.LinkKind{lab.LinkATM},
		Modes:      []cost.ChecksumMode{cost.ChecksumStandard},
		Sizes:      []int{200, 1400, 8000},
		MTUs:       []int{0, 1500, 4000},
		SockBufs:   []int{0, 4096},
		LossRates:  []float64{0, 0.0005},
		Iterations: iterations,
		Warmup:     warmup,
	}
}

// RenderEchoOutcomes formats sweep outcomes as a fixed-width table.
func RenderEchoOutcomes(title string, outs []EchoOutcome) string {
	t := stats.NewTable(title,
		"Cell", "N", "Mean (µs)", "p50", "p95", "p99", "Min (µs)", "Max (µs)", "StdDev")
	for _, o := range outs {
		if o.Error != "" {
			t.AddRow(o.Label, 0, "error: "+o.Error, "", "", "", "", "", "")
			continue
		}
		t.AddRow(o.Label, o.N, o.MeanMicros, o.MedianMicros, o.P95Micros,
			o.P99Micros, o.MinMicros, o.MaxMicros, o.StdDevMicros)
	}
	return t.String()
}
