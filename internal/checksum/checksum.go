// Package checksum implements the Internet (RFC 1071) one's-complement
// checksum in the three styles the paper compares (§4.1):
//
//   - SumULTRIX: the straightforward halfword-at-a-time loop used by
//     ULTRIX 4.2A.
//   - SumOptimized: the word-accumulating, unrolled loop the paper (and
//     Kay & Pasquale) propose, which eliminates halfword accesses.
//   - CopyAndSum: the integrated copy-and-checksum that touches each byte
//     once, the basis of the paper's combined kernel path (§4.1.1).
//
// All three produce identical sums; they differ only in memory access
// pattern, which is what the cost model prices differently. The package
// also provides Partial, the incremental partial-sum type the combined
// kernel path needs: the socket layer checksums each chunk as it is copied
// into an mbuf and TCP later folds the per-mbuf partial sums into a
// segment checksum (the paper stores partial checksums in the mbuf header).
package checksum

// Fold reduces a 32-bit intermediate sum to 16 bits by repeatedly adding
// the carries back in, per RFC 1071.
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// SumULTRIX computes the one's-complement sum of b (not complemented),
// processing one big-endian halfword per iteration exactly as the ULTRIX
// in_cksum inner loop does. An odd trailing byte is padded with a zero low
// byte.
func SumULTRIX(b []byte) uint16 {
	var sum uint32
	i := 0
	for ; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < len(b) {
		sum += uint32(b[i]) << 8
	}
	return Fold(sum)
}

// SumOptimized computes the same one's-complement sum with an unrolled,
// word-accumulating loop (the optimization of §4.1). The result is always
// identical to SumULTRIX; only the access pattern differs.
func SumOptimized(b []byte) uint16 {
	var sum uint64
	i := 0
	// Unrolled by 16 bytes: eight halfword adds per iteration, no
	// per-halfword loop overhead. A uint64 accumulator absorbs carries.
	for ; i+16 <= len(b); i += 16 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
		sum += uint64(b[i+2])<<8 | uint64(b[i+3])
		sum += uint64(b[i+4])<<8 | uint64(b[i+5])
		sum += uint64(b[i+6])<<8 | uint64(b[i+7])
		sum += uint64(b[i+8])<<8 | uint64(b[i+9])
		sum += uint64(b[i+10])<<8 | uint64(b[i+11])
		sum += uint64(b[i+12])<<8 | uint64(b[i+13])
		sum += uint64(b[i+14])<<8 | uint64(b[i+15])
	}
	for ; i+1 < len(b); i += 2 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if i < len(b) {
		sum += uint64(b[i]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// CopyAndSum copies src into dst and returns the one's-complement sum of
// the bytes in a single pass, touching each byte once. dst must be at
// least as long as src.
func CopyAndSum(dst, src []byte) uint16 {
	if len(dst) < len(src) {
		panic("checksum: CopyAndSum destination too short")
	}
	var sum uint64
	i := 0
	for ; i+8 <= len(src); i += 8 {
		dst[i] = src[i]
		dst[i+1] = src[i+1]
		dst[i+2] = src[i+2]
		dst[i+3] = src[i+3]
		dst[i+4] = src[i+4]
		dst[i+5] = src[i+5]
		dst[i+6] = src[i+6]
		dst[i+7] = src[i+7]
		sum += uint64(src[i])<<8 | uint64(src[i+1])
		sum += uint64(src[i+2])<<8 | uint64(src[i+3])
		sum += uint64(src[i+4])<<8 | uint64(src[i+5])
		sum += uint64(src[i+6])<<8 | uint64(src[i+7])
	}
	for ; i+1 < len(src); i += 2 {
		dst[i], dst[i+1] = src[i], src[i+1]
		sum += uint64(src[i])<<8 | uint64(src[i+1])
	}
	if i < len(src) {
		dst[i] = src[i]
		sum += uint64(src[i]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// Checksum returns the Internet checksum of b: the one's complement of the
// one's-complement sum, as stored in IP/TCP header checksum fields.
func Checksum(b []byte) uint16 { return ^SumOptimized(b) }

// Verify reports whether a byte range that includes its own checksum field
// sums to the all-ones value, i.e. the data is intact.
func Verify(b []byte) bool { return SumOptimized(b) == 0xffff }

// Partial is an incremental one's-complement sum that tracks byte parity,
// so chunks of any length — including odd lengths, which occur whenever an
// mbuf holds an odd number of bytes — can be appended or combined and
// still yield exactly the sum of the concatenated data.
type Partial struct {
	sum uint32
	odd bool // total bytes added so far is odd
}

// Add appends the bytes of b to the running sum.
func (p *Partial) Add(b []byte) {
	i := 0
	if p.odd && len(b) > 0 {
		// The dangling high byte from the previous chunk pairs with
		// b[0] as its low byte; the high byte was already added.
		p.sum += uint32(b[0])
		i = 1
		p.odd = false
	}
	for ; i+1 < len(b); i += 2 {
		p.sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < len(b) {
		p.sum += uint32(b[i]) << 8
		p.odd = true
	}
	// Keep the accumulator from ever overflowing 32 bits.
	if p.sum >= 0xffff0000 {
		p.sum = uint32(Fold(p.sum))
	}
}

// AddWord appends a big-endian 16-bit word. It must only be used at even
// byte parity (it panics otherwise), which is how the pseudo-header fields
// are summed.
func (p *Partial) AddWord(w uint16) {
	if p.odd {
		panic("checksum: AddWord at odd offset")
	}
	p.sum += uint32(w)
}

// Combine appends another partial sum as if its underlying bytes followed
// p's. If p currently ends at an odd offset, q's sum is byte-swapped, the
// standard trick for combining checksums computed at different alignments.
func (p *Partial) Combine(q Partial) {
	s := Fold(q.sum)
	if p.odd {
		s = s>>8 | s<<8
	}
	p.sum += uint32(s)
	p.odd = p.odd != q.odd
	if p.sum >= 0xffff0000 {
		p.sum = uint32(Fold(p.sum))
	}
}

// Sum16 returns the folded (not complemented) 16-bit sum so far.
func (p *Partial) Sum16() uint16 { return Fold(p.sum) }

// Checksum returns the complemented checksum of everything added so far.
func (p *Partial) Checksum() uint16 { return ^Fold(p.sum) }

// Odd reports whether an odd number of bytes has been added.
func (p *Partial) Odd() bool { return p.odd }

// TCPPseudo returns a Partial primed with the TCP pseudo-header for the
// given source and destination IPv4 addresses and TCP segment length
// (header + payload), per RFC 793.
func TCPPseudo(src, dst uint32, tcpLen int) Partial {
	var p Partial
	p.AddWord(uint16(src >> 16))
	p.AddWord(uint16(src))
	p.AddWord(uint16(dst >> 16))
	p.AddWord(uint16(dst))
	p.AddWord(6) // protocol number: TCP
	p.AddWord(uint16(tcpLen))
	return p
}
