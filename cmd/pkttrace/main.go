// Command pkttrace runs one traced workload on the simulated testbed
// and emits its per-packet latency attribution: every layer crossing of
// every TCP segment (socket enqueue, tcp_output, ip_output, driver,
// wire, and the receive path back up), joined by on-wire identity
// (connection 4-tuple plus sequence number) into per-packet span trees.
//
// Two output formats, both JSON and both deterministic at a fixed seed:
//
//   - -format spans (the default): the reconstructed timelines — one
//     record per packet with its events and span tree, plus any
//     unattributed events.
//   - -format chrome: Chrome trace_event format; load the file in
//     chrome://tracing or https://ui.perfetto.dev for flamegraph-style
//     inspection, one process lane per host.
//
// Examples:
//
//	pkttrace -size 1400                       # one traced echo, span JSON
//	pkttrace -format chrome -o echo.json      # the same, for chrome://tracing
//	pkttrace -workload fanin -hosts 5         # 4 clients -> 1 server
//	pkttrace -workload churn -link ether      # open/close storms, Ethernet
//
// See docs/METHODOLOGY.md for how these traces relate to the paper's
// measurement windows and docs/ARCHITECTURE.md for the trace pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lab"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pkttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("pkttrace", flag.ContinueOnError)
	var (
		wl     = fs.String("workload", "echo", "workload: echo, fanin, churn, or bulk")
		hosts  = fs.Int("hosts", 0, "topology size (0 = 2 for echo, 5 otherwise)")
		size   = fs.Int("size", 0, "payload bytes per operation (0 = workload default)")
		iters  = fs.Int("iters", 4, "echo: measured iterations; fanin: requests per client")
		warmup = fs.Int("warmup", 2, "echo: untraced warm-up iterations")
		conns  = fs.Int("conns", 3, "churn: connection cycles per client")
		bytesN = fs.Int("bytes", 32768, "bulk: bytes streamed per client")
		link   = fs.String("link", "atm", "link type: atm or ether")
		seed   = fs.Uint64("seed", 0, "simulation RNG seed (0 = default)")
		format = fs.String("format", "spans", "output format: spans or chrome")
		out    = fs.String("o", "", "write the trace to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	cfg := lab.Config{PacketTrace: true, Seed: *seed}
	switch *link {
	case "atm":
		cfg.Link = lab.LinkATM
	case "ether":
		cfg.Link = lab.LinkEther
	default:
		return fmt.Errorf("unknown link %q (want atm or ether)", *link)
	}
	if *format != "spans" && *format != "chrome" {
		return fmt.Errorf("unknown format %q (want spans or chrome)", *format)
	}

	var gen workload.Generator
	n := *hosts
	switch *wl {
	case "echo":
		gen = workload.Echo{Size: *size, Iterations: *iters, Warmup: *warmup}
		if n == 0 {
			n = 2
		}
	case "fanin":
		gen = workload.FanIn{Size: *size, Requests: *iters, Warmup: 1}
		if n == 0 {
			n = 5
		}
	case "churn":
		gen = workload.Churn{Conns: *conns, Size: *size}
		if n == 0 {
			n = 5
		}
	case "bulk":
		gen = workload.Bulk{Bytes: *bytesN}
		if n == 0 {
			n = 5
		}
	default:
		return fmt.Errorf("unknown workload %q (want echo, fanin, churn, or bulk)", *wl)
	}
	if n < 2 {
		return fmt.Errorf("-hosts %d too small (need a server and at least one client)", n)
	}

	l := lab.NewTopology(cfg, n)
	res, err := gen.Run(l)
	if err != nil {
		return err
	}

	var blob []byte
	switch *format {
	case "spans":
		blob, err = json.MarshalIndent(trace.BuildTimelines(res.Events), "", " ")
	case "chrome":
		blob, err = trace.ChromeTrace(res.Events)
	}
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, append(blob, '\n'), 0o644)
	}
	_, err = fmt.Fprintln(w, string(blob))
	return err
}
