package rudp

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/sim"
)

// testConn builds a bare connection wired to a throwaway environment,
// enough for the pure receive/ack bookkeeping under test.
func testConn(t *testing.T) *Conn {
	t.Helper()
	env := sim.NewEnv()
	c := &Conn{
		e:     &Endpoint{K: kern.New(env, cost.DECstation5000(), "t")},
		seen:  make(map[uint16]struct{}),
		oo:    make(map[uint16]ooSlot),
		sndWq: env.NewWaitQueue("t.snd"),
		rcvWq: env.NewWaitQueue("t.rcv"),
	}
	c.rexmtCb = func(uint64) {}
	return c
}

// TestAckBitsTracking drives arrivals through the receiver's ack
// bookkeeping — in order, out of order, duplicated — and checks the
// (latest, bitfield) pair names exactly the received set.
func TestAckBitsTracking(t *testing.T) {
	c := testConn(t)
	if c.ackBits() != 0 {
		t.Fatalf("fresh conn ackBits %#x, want 0", c.ackBits())
	}
	for _, seq := range []uint16{0, 1, 3} {
		c.recordArrival(seq)
	}
	if c.rcvLatest != 3 {
		t.Fatalf("rcvLatest %d, want 3", c.rcvLatest)
	}
	// Behind latest=3: bit0 = seq2 (missing), bit1 = seq1, bit2 = seq0.
	if bits := c.ackBits(); bits != 0b110 {
		t.Fatalf("ackBits %#b, want 0b110", bits)
	}
	// The straggler fills its hole without moving latest.
	c.recordArrival(2)
	if c.rcvLatest != 3 {
		t.Fatalf("rcvLatest moved to %d on old arrival", c.rcvLatest)
	}
	if bits := c.ackBits(); bits != 0b111 {
		t.Fatalf("ackBits %#b after straggler, want 0b111", bits)
	}
	// Duplicates are idempotent.
	c.recordArrival(2)
	if bits := c.ackBits(); bits != 0b111 {
		t.Fatalf("ackBits %#b after duplicate, want 0b111", bits)
	}
}

// TestProcessAck checks ack/bitfield retirement: covered entries retire
// (including through the bitfield), uncovered ones survive, and the
// window head slides past the retired prefix.
func TestProcessAck(t *testing.T) {
	c := testConn(t)
	for seq := uint16(0); seq < 5; seq++ {
		c.unacked = append(c.unacked, &sndEntry{seq: seq})
	}
	// Peer acks latest=3 with bits for 2 and 0 (not 1): retires 0, 2, 3.
	h := Header{Ack: 3, AckBits: 1<<0 | 1<<2}
	if !c.processAck(h) {
		t.Fatal("processAck reported nothing retired")
	}
	// Entry 0 retired, so the window slides to 1; 1 and 4 survive.
	if len(c.unacked) != 4 {
		t.Fatalf("unacked len %d, want 4 (slid past seq 0)", len(c.unacked))
	}
	if c.unacked[0].seq != 1 || c.unacked[0].acked {
		t.Fatalf("window head %+v, want unacked seq 1", c.unacked[0])
	}
	if !c.unacked[1].acked || !c.unacked[2].acked {
		t.Fatal("bitfield-covered entries 2 and 3 not retired")
	}
	if c.unacked[3].acked {
		t.Fatal("seq 4 retired without coverage")
	}
	// A duplicate of the same ack retires nothing further.
	if c.processAck(h) {
		t.Fatal("duplicate ack reported new retirement")
	}
	// Acking 1 slides the window past the whole retired prefix to 4.
	if !c.processAck(Header{Ack: 4, AckBits: 1 << 2}) {
		t.Fatal("second ack retired nothing")
	}
	if len(c.unacked) != 0 {
		t.Fatalf("unacked len %d after full coverage, want 0", len(c.unacked))
	}
}

// TestAckNoneDoesNotRetire pins the fix for the seq-0 ack ambiguity:
// under burst loss, a client whose first send's replies were all lost
// retransmits before receiving anything, and that retransmission's
// header must not read as "seq 0 received" — it would retire the
// server's lost echo (seq 0) without delivery, nothing would ever
// retransmit it, and the client would park in Recv forever.
func TestAckNoneDoesNotRetire(t *testing.T) {
	server := testConn(t)
	server.unacked = append(server.unacked, &sndEntry{seq: 0, payload: []byte("echo")})
	client := testConn(t)
	h := client.header()
	if !h.AckNone {
		t.Fatal("header before first reception does not carry AckNone")
	}
	if server.processAck(h) {
		t.Fatal("AckNone header retired an entry")
	}
	if server.unacked[0].acked {
		t.Fatal("seq 0 marked acked by a peer that received nothing")
	}
	// Once the client has received something, acks flow normally.
	client.recordArrival(0)
	h = client.header()
	if h.AckNone {
		t.Fatal("header still AckNone after a reception")
	}
	if !server.processAck(h) {
		t.Fatal("real ack of seq 0 retired nothing")
	}
}

// TestRTOBackoffSaturates checks the backoff shift saturates at maxRTO
// instead of overflowing: at maxRexmtShift 32 a raw base<<shift wraps
// int64 negative, and the minRTO clamp would turn the slowest, most
// backed-off retries into the fastest.
func TestRTOBackoffSaturates(t *testing.T) {
	c := testConn(t)
	for shift := uint(0); shift <= maxRexmtShift; shift++ {
		c.rexmtShift = shift
		if d := c.rto(); d < minRTO || d > maxRTO {
			t.Fatalf("shift %d: rto %v outside [%v, %v]", shift, d, minRTO, maxRTO)
		}
	}
	c.rexmtShift = maxRexmtShift
	if d := c.rto(); d != maxRTO {
		t.Fatalf("rto at max shift = %v, want %v", d, maxRTO)
	}
}

// TestDeliverOrdering checks ordered delivery with out-of-order
// arrival, duplication, and the fin's end-of-stream position.
func TestDeliverOrdering(t *testing.T) {
	c := testConn(t)
	c.deliver(Header{Seq: 1, Data: true}, []byte("b"))
	if len(c.rdy) != 0 {
		t.Fatalf("out-of-order message delivered early: %q", c.rdy)
	}
	c.deliver(Header{Seq: 0, Data: true}, []byte("a"))
	if len(c.rdy) != 2 || string(c.rdy[0]) != "a" || string(c.rdy[1]) != "b" {
		t.Fatalf("rdy %q, want [a b]", c.rdy)
	}
	// Duplicates of delivered sequences are dropped.
	c.deliver(Header{Seq: 0, Data: true}, []byte("a")) // below rcvNxt
	c.deliver(Header{Seq: 1, Data: true}, []byte("b"))
	if len(c.rdy) != 2 {
		t.Fatalf("duplicate delivery grew rdy to %d", len(c.rdy))
	}
	// The fin is ordered like data: it marks EOF only once 2 delivers.
	c.deliver(Header{Seq: 3, Fin: true}, nil)
	if c.rcvFin {
		t.Fatal("fin took effect ahead of the sequence gap")
	}
	c.deliver(Header{Seq: 2, Data: true}, []byte("c"))
	if !c.rcvFin {
		t.Fatal("fin not delivered after gap filled")
	}
	if len(c.rdy) != 3 || string(c.rdy[2]) != "c" {
		t.Fatalf("rdy %q, want [a b c]", c.rdy)
	}
}

// TestSeqWraparound checks the circular comparisons near the 16-bit
// boundary.
func TestSeqWraparound(t *testing.T) {
	c := testConn(t)
	c.rcvNxt = 0xFFFE
	c.rcvLatest = 0xFFFD
	c.rcvAny = true
	c.deliver(Header{Seq: 0xFFFE, Data: true}, []byte("x"))
	c.deliver(Header{Seq: 0xFFFF, Data: true}, []byte("y"))
	c.deliver(Header{Seq: 0x0000, Data: true}, []byte("z"))
	if len(c.rdy) != 3 {
		t.Fatalf("rdy len %d across wrap, want 3", len(c.rdy))
	}
	if c.rcvNxt != 1 {
		t.Fatalf("rcvNxt %#x, want 1", c.rcvNxt)
	}
	c.recordArrival(0xFFFF)
	c.recordArrival(0x0000)
	if c.rcvLatest != 0 {
		t.Fatalf("rcvLatest %#x across wrap, want 0", c.rcvLatest)
	}
}

// TestRexmtGiveUp pins the retransmission give-up: at maxRexmtShift
// consecutive timeouts the stream aborts — unacked window discarded,
// timer cancelled, stream closed in both directions — instead of
// retransmitting forever to a peer whose endpoint has vanished
// (datagrams to nobody drop silently, so no reply will ever arrive and
// an un-bounded timer would keep the event loop alive eternally).
func TestRexmtGiveUp(t *testing.T) {
	c := testConn(t)
	c.unacked = append(c.unacked, &sndEntry{seq: 0, payload: []byte("x")})
	c.rexmtShift = maxRexmtShift
	gen := c.rexmtGen
	c.rexmtFire(nil)
	if !c.closed {
		t.Error("stream not closed after give-up")
	}
	if !c.rcvFin {
		t.Error("receive side not ended after give-up")
	}
	if len(c.unacked) != 0 {
		t.Errorf("%d entries still unacked after give-up", len(c.unacked))
	}
	if c.rexmtGen == gen {
		t.Error("retransmit timer not cancelled by give-up")
	}
}
