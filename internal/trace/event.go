package trace

import (
	"fmt"

	"repro/internal/sim"
)

// PacketID identifies one TCP segment on the wire: the connection
// 4-tuple plus the segment's sequence number. Every layer derives the
// same identity independently from the bytes it handles (the way a
// packet capture would), so events recorded at different layers — and on
// different hosts — join into one per-packet timeline without any shared
// pointer or side channel. A retransmission carries the same PacketID as
// the original transmission and lands in the same timeline, which is
// exactly what a latency investigation wants to see.
//
// Events that belong to a connection but not to a specific segment
// (socket enqueue/dequeue, which operate on the byte stream before
// segmentation) carry a PacketID with Seq zero; events that belong to no
// connection at all (scheduler wakeups, idle interrupt work) carry the
// zero PacketID and are reported as unattributed.
type PacketID struct {
	Src     uint32 `json:"src"`
	Dst     uint32 `json:"dst"`
	SrcPort uint16 `json:"sport"`
	DstPort uint16 `json:"dport"`
	Seq     uint32 `json:"seq"`
}

// IsZero reports whether the identity is entirely unknown.
func (id PacketID) IsZero() bool { return id == PacketID{} }

// String renders the identity the way tcpdump would:
// "192.168.1.1:1025>192.168.1.2:7#64001".
func (id PacketID) String() string {
	return fmt.Sprintf("%s:%d>%s:%d#%d",
		ipString(id.Src), id.SrcPort, ipString(id.Dst), id.DstPort, id.Seq)
}

func ipString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// EventKind names a layer crossing in a packet's life. The kinds form a
// fixed vocabulary so tools can switch on them; the leading component
// (before the dot) groups kinds by layer for display categorization.
type EventKind string

// The layer crossings the stack emits, in the order a transmitted
// segment encounters them and then the order its receiver does.
const (
	// EvCPU is a CPU charge: some interval of processor time attributed
	// to a breakdown row (Event.Layer) and — when the processing belongs
	// to an identifiable segment — to that packet. EvCPU events are the
	// raw material of the paper's Tables 2 and 3: summing their durations
	// per layer inside a measurement window reproduces the breakdown
	// exactly (see core.RunTimelineStudy).
	EvCPU EventKind = "cpu"

	// EvSockEnqueue marks sosend appending user bytes to the send socket
	// buffer (Len bytes; Aux is the buffer occupancy after the append).
	// Socket events are connection-scoped (PacketID.Seq is zero): the
	// byte stream has not been segmented yet.
	EvSockEnqueue EventKind = "sock.enqueue"
	// EvSockDequeue marks soreceive copying bytes out to user space
	// (Len bytes; Aux is the occupancy after the copy).
	EvSockDequeue EventKind = "sock.dequeue"

	// EvTCPOutput marks tcp_output committing to send one segment:
	// Len is the payload length, Aux the header flags.
	EvTCPOutput EventKind = "tcp.output"
	// EvTCPInput marks tcp_input accepting one demultiplexed segment:
	// Len is the segment length (header + data), Aux the header flags.
	EvTCPInput EventKind = "tcp.input"
	// EvPCBLookup marks the demultiplexing lookup for an inbound
	// segment. Aux is the number of table entries searched, or -1 for a
	// hit in the one-entry header-prediction cache (§3).
	EvPCBLookup EventKind = "tcp.pcblookup"

	// EvIPSend marks ip_output handing a datagram to the interface
	// (Len is the datagram length including the IP header).
	EvIPSend EventKind = "ip.send"
	// EvIPEnqueue marks a driver placing a received datagram on the IP
	// input queue from interrupt context (Aux is the queue depth after
	// the append).
	EvIPEnqueue EventKind = "ip.enqueue"
	// EvIPDequeue spans the datagram's residence on the IP input queue:
	// At is the enqueue time and Dur the wait until the software
	// interrupt dequeued it — the measured form of the paper's IPQ row.
	EvIPDequeue EventKind = "ip.dequeue"
	// EvIPDeliver marks ip_input handing the verified payload to the
	// transport protocol (Aux is the IP protocol number).
	EvIPDeliver EventKind = "ip.deliver"

	// EvDriverTx spans the network driver's transmit processing for one
	// datagram, from entering the driver to the last byte handed to the
	// adapter (Len is the datagram length).
	EvDriverTx EventKind = "driver.tx"
	// EvDriverRx spans the driver's receive processing for one datagram:
	// for ATM, from popping its first cell off the adapter FIFO to
	// enqueueing the reassembled datagram for IP; for Ethernet, from
	// popping the frame to the enqueue.
	EvDriverRx EventKind = "driver.rx"

	// EvWireDepart marks the instant the adapter finishes clocking the
	// datagram's final bit (ATM: final cell) onto the physical link.
	EvWireDepart EventKind = "wire.depart"
	// EvWireArrive marks the instant the datagram's final cell (ATM) or
	// the frame itself (Ethernet) reaches the receiving adapter — the
	// origin of the paper's receive-side measurements, the event form of
	// MarkFrameArrival.
	EvWireArrive EventKind = "wire.arrive"
)

// Event is one typed record in a packet trace. At and Dur are virtual
// time; Dur is zero for instantaneous crossings. ID is the packet (or
// connection) the event belongs to, zero when unknown. Layer is set on
// EvCPU events only. Len and Aux carry kind-specific detail documented
// on each kind.
type Event struct {
	Kind  EventKind `json:"kind"`
	Layer Layer     `json:"layer,omitempty"`
	At    sim.Time  `json:"at_ns"`
	Dur   sim.Time  `json:"dur_ns,omitempty"`
	ID    PacketID  `json:"id"`
	Len   int       `json:"len,omitempty"`
	Aux   int64     `json:"aux,omitempty"`
}

// End returns the event's end time (At for instantaneous events).
func (e Event) End() sim.Time { return e.At + e.Dur }

// EnablePackets arms per-packet event recording on the recorder. Events
// are recorded only while the recorder is also Enabled, so the
// experiment harness keeps its existing warmup/measured toggle and
// packet tracing rides along with it. Packet tracing records host-memory
// data only — it charges no simulated time — so a traced run is
// bit-identical in timing to an untraced one.
func (r *Recorder) EnablePackets() { r.packets = true }

// DisablePackets disarms per-packet event recording. Testbed reuse needs
// it: a lab whose previous trial traced packets must behave exactly like
// a freshly built untraced one when its next trial does not.
func (r *Recorder) DisablePackets() { r.packets = false }

// PacketsEnabled reports whether the recorder is armed for per-packet
// events (regardless of whether recording is currently on).
func (r *Recorder) PacketsEnabled() bool { return r != nil && r.packets }

// PacketRecording reports whether per-packet events are being recorded
// right now. Instrumentation sites use it to skip identity parsing when
// tracing is off.
func (r *Recorder) PacketRecording() bool { return r.Enabled() && r.packets }

// Event appends a typed event. Calls while packet recording is off are
// cheap no-ops, mirroring Span and Mark.
func (r *Recorder) Event(e Event) {
	if !r.PacketRecording() {
		return
	}
	if e.Dur < 0 {
		panic("trace: event ends before it starts")
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []Event { return r.events }
