package runner

import (
	"errors"

	"repro/internal/lab"
)

// topoKey is the shape of a testbed: the parts of a trial configuration
// that name physical machines and wiring rather than trial knobs. Labs
// of the same shape are interchangeable through lab.Lab.Reset; labs of
// different shapes never are.
type topoKey struct {
	link      lab.LinkKind
	hosts     int
	fabric    lab.FabricKind
	leafPorts int
}

// maxWarmLabs bounds how many warm labs one worker keeps. Real sweeps
// use one to three shapes (two-host ATM, two-host Ethernet, one fan-in
// mesh); the bound only matters for a pathological grid that varies
// host count per cell, which simply stops caching past the bound.
const maxWarmLabs = 4

// Testbeds is one worker's cache of warm labs, the worker-affine half of
// testbed reuse: every worker owns its Testbeds outright (labs are
// single-threaded simulations), runs its share of the grid through
// them, and resets a warm lab to each new trial's configuration instead
// of rebuilding kernels, pools, and event heaps from scratch.
//
// Reuse cannot perturb results: lab.Reset rewinds every piece of
// per-trial state to what a fresh construction would hold (the
// bit-identity contract its tests pin against the golden outputs), and
// each trial's seed still derives from its grid position alone — so the
// outcome of a cell is independent of which worker ran it and of
// whatever that worker's labs ran before.
//
// The reset happens on acquisition, not on release: after a job
// finishes, its lab still holds that trial's trace records and counters,
// which study code reads after the run returns. The records stay valid
// until the worker starts its next trial of the same shape.
type Testbeds struct {
	labs map[topoKey]*lab.Lab

	// clusters caches sharded testbeds separately, keyed by shape AND
	// shard count: a 4-shard cluster and a serial lab of the same shape
	// are different machines (hosts live on different event loops), so
	// they must never satisfy each other's acquisitions. lab.Lab.Reset
	// backstops this — it rejects any lab owned by a multi-shard cluster.
	clusters map[clusterKey]*lab.Cluster

	// Built and Reused count cache misses and hits, for the reuse tests.
	Built  int
	Reused int
}

// clusterKey is a sharded testbed's shape: the serial shape plus the
// requested shard count.
type clusterKey struct {
	topoKey
	shards int
}

// Lab returns a testbed for cfg with nHosts hosts (values below 2 are
// raised to 2, the lab minimum): a warm lab reset to cfg when the
// worker holds one of the right shape, otherwise a freshly built lab
// that joins the cache. A nil *Testbeds always builds fresh, so code
// paths that opt out of reuse need no second call form.
func (tb *Testbeds) Lab(cfg lab.Config, nHosts int) *lab.Lab {
	if nHosts < 2 {
		nHosts = 2
	}
	if tb == nil {
		return lab.NewTopology(cfg, nHosts)
	}
	key := topoKey{link: cfg.Link, hosts: nHosts, fabric: cfg.Fabric, leafPorts: cfg.LeafPorts}
	if l := tb.labs[key]; l != nil {
		err := l.Reset(cfg, 0)
		if err == nil {
			tb.Reused++
			return l
		}
		if errors.Is(err, lab.ErrPoolLeak) {
			// The CheckLeaks gate tripped: the previous trial on this
			// worker leaked mbuf chains. That is a stack bug the gate
			// exists to surface — fail the trial loudly (runOne converts
			// the panic into a labeled job error) instead of quietly
			// building a fresh lab over it.
			panic(err)
		}
		// Any other failed reset (an undrained event loop from an
		// errored trial) just makes the warm lab unusable; drop it and
		// fall through to a fresh build.
		delete(tb.labs, key)
	}
	l := lab.NewTopology(cfg, nHosts)
	tb.Built++
	if tb.labs == nil {
		tb.labs = make(map[topoKey]*lab.Lab, maxWarmLabs)
	}
	if len(tb.labs) < maxWarmLabs {
		tb.labs[key] = l
	}
	return l
}

// Cluster returns a sharded testbed for cfg, reusing a warm cluster of
// the same shape and shard count when the worker holds one. The reuse
// contract matches Lab: Cluster.Reset rewinds every shard's event loop,
// RNG, and host state to what a fresh NewCluster would hold, and its own
// tests pin fresh-vs-reused bit-identity. Construction and reset errors
// propagate — the caller fails the trial rather than silently degrading
// to serial.
func (tb *Testbeds) Cluster(cfg lab.Config, nHosts, shards int) (*lab.Cluster, error) {
	if nHosts < 2 {
		nHosts = 2
	}
	if tb == nil {
		return lab.NewCluster(cfg, nHosts, shards)
	}
	key := clusterKey{
		topoKey: topoKey{link: cfg.Link, hosts: nHosts, fabric: cfg.Fabric, leafPorts: cfg.LeafPorts},
		shards:  shards,
	}
	if c := tb.clusters[key]; c != nil {
		err := c.Reset(cfg, 0)
		if err == nil {
			tb.Reused++
			return c, nil
		}
		if errors.Is(err, lab.ErrPoolLeak) {
			panic(err)
		}
		delete(tb.clusters, key)
	}
	c, err := lab.NewCluster(cfg, nHosts, shards)
	if err != nil {
		return nil, err
	}
	tb.Built++
	if tb.clusters == nil {
		tb.clusters = make(map[clusterKey]*lab.Cluster, maxWarmLabs)
	}
	if len(tb.clusters) < maxWarmLabs {
		tb.clusters[key] = c
	}
	return c, nil
}
