// Command tables regenerates every table and figure in the paper's
// evaluation — Tables 1 through 7, the §3 PCB study, Figures 1 and 2 —
// with published values alongside measured ones, and optionally writes
// the result to a file (the content of EXPERIMENTS.md's data section).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		iters   = flag.Int("iters", 100, "measured iterations per configuration")
		out     = flag.String("o", "", "also write the report to this file")
		figures = flag.Bool("figures", true, "render ASCII figures 1 and 2")
	)
	flag.Parse()

	rep, err := core.RunAll(core.Options{Iterations: *iters, Warmup: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	text := rep.Render()
	if *figures {
		text += "\n" + core.RenderFigure1(rep.Table4) + "\n" + core.RenderFigure2(rep.Table5)
	}
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
}
