package workload

import (
	"reflect"
	"testing"

	"repro/internal/atm"
	"repro/internal/lab"
)

// TestOnDemandVCsEventIdentical is the end-to-end bit-identity contract
// behind the routed-fabric rewrite: because VC signaling charges no
// simulated time, a topology whose VCs are installed lazily by the first
// datagram must produce the exact event stream of one with every VC
// pre-installed. It runs the same traced fan-in twice — once on the
// fabric's on-demand path, once after manually pre-meshing every driver
// and switch table the way the old eager builder did — and requires the
// latencies and the full per-packet trace to match event for event.
func TestOnDemandVCsEventIdentical(t *testing.T) {
	cfg := lab.Config{Link: lab.LinkATM, Seed: 17, PacketTrace: true}
	const hosts = 9

	onDemand := lab.NewTopology(cfg, hosts)
	got, err := FanIn{Size: 200, Requests: 5, Warmup: 1}.Run(onDemand)
	if err != nil {
		t.Fatal(err)
	}

	preMeshed := lab.NewTopology(cfg, hosts)
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i == j {
				continue
			}
			// The eager mesh the sparse fabric replaced: host i reaches
			// host j on VCI 32+j, rewritten at the switch to 32+i.
			preMeshed.Hosts[i].ATMDriver.AddVC(lab.HostAddr(j), atm.DefaultVCI+uint16(j))
			preMeshed.Switch.AddVC(i, atm.DefaultVCI+uint16(j), j, atm.DefaultVCI+uint16(i))
		}
	}
	want, err := FanIn{Size: 200, Requests: 5, Warmup: 1}.Run(preMeshed)
	if err != nil {
		t.Fatal(err)
	}

	if onDemand.Fabric.VCsSetUp == 0 {
		t.Fatal("on-demand lab installed no VCs — the test compared two pre-meshed runs")
	}
	if preMeshed.Fabric.VCsSetUp != 0 {
		t.Fatal("pre-meshed lab still set up VCs on demand")
	}
	if !reflect.DeepEqual(got.Latencies, want.Latencies) {
		t.Error("latencies diverge between on-demand and pre-installed VCs")
	}
	if got.Elapsed != want.Elapsed || got.Requests != want.Requests {
		t.Errorf("run shape diverges: elapsed %v/%v, requests %d/%d",
			got.Elapsed, want.Elapsed, got.Requests, want.Requests)
	}
	if len(got.Events) == 0 {
		t.Fatal("traced run recorded no events")
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Errorf("packet traces diverge: %d vs %d events", len(got.Events), len(want.Events))
	}
}
