// Sharded workload execution: the same generators, run across a
// lab.Cluster's per-shard event loops instead of one serial loop.
//
// The contract is the cluster's — bit-identity with the serial run — so
// this file changes only WHERE processes run and HOW their observations
// merge, never what they do:
//
//   - Each client's frame is spawned on the event loop that owns its
//     host (Cluster.EnvOf), so every clock read inside the frame is the
//     host's own shard clock. The frames themselves are shard-agnostic:
//     they read p.Env(), which under serial execution is the same loop
//     Lab.Env names.
//   - Shared accumulators become per-client: each client gets its own
//     single-slot latSink, last-completion stamp, Result scratch (for
//     the payload-mismatch Errors counter) and fail closure. Nothing is
//     written cross-shard during the run; the coordinator merges after
//     every loop has drained.
//   - Merging is canonical. Exact-mode latencies concatenate
//     client-major — precisely the serial emission order. Streaming
//     aggregates replay the flattened (completion time, client) stream
//     in sorted order, reproducing the serial fold. Elapsed is the max
//     completion stamp; Errors sum; the first error is the one a serial
//     run would have hit first (earliest virtual time, server before
//     clients on ties).
//
// Server-side processes (accept loop, per-connection echo/sink frames)
// stay on shard 0, which owns host 0 by construction.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/lab"
	"repro/internal/rudp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// RunSharded runs a generator across the cluster's shards and returns a
// result byte-identical (through JSON encoding) to g.Run on a serial lab
// with the same configuration and seed. A single-shard cluster delegates
// to the serial path outright.
func RunSharded(g Generator, c *lab.Cluster) (*Result, error) {
	if c.NumShards() == 1 {
		return g.Run(c.Lab)
	}
	switch gen := g.(type) {
	case Echo:
		return runEchoSharded(gen, c)
	case *Echo:
		return runEchoSharded(*gen, c)
	case FanIn:
		return runFanInSharded(gen, c)
	case *FanIn:
		return runFanInSharded(*gen, c)
	case Churn:
		return runChurnSharded(gen, c)
	case *Churn:
		return runChurnSharded(*gen, c)
	case Bulk:
		return runBulkSharded(gen, c)
	case *Bulk:
		return runBulkSharded(*gen, c)
	default:
		return nil, fmt.Errorf("workload: generator %q does not support sharded execution", g.Name())
	}
}

// shardParticipant is one process group's private accumulator set: a
// client (or the server) records failures and measurements here, and
// only the owning shard's goroutine ever touches it while shards run.
type shardParticipant struct {
	sink  *latSink
	last  sim.Time
	res   Result
	err   error
	errAt sim.Time
}

// failFn builds the participant's failure callback, stamping the owning
// shard's clock so the coordinator can reconstruct which failure a
// serial run would have reported (its runErr keeps the first in event
// order).
func (sp *shardParticipant) failFn(env *sim.Env) func(error) {
	return func(err error) {
		if sp.err == nil {
			sp.err = err
			sp.errAt = env.Now()
		}
	}
}

// firstError returns the failure a serial run would have recorded:
// earliest virtual time wins, and the server's processes (which a serial
// loop schedules ahead of client frames spawned later) win exact ties.
func firstError(server *shardParticipant, clients []*shardParticipant) error {
	best, bestAt := server.err, server.errAt
	for _, sp := range clients {
		if sp.err != nil && (best == nil || sp.errAt < bestAt) {
			best, bestAt = sp.err, sp.errAt
		}
	}
	return best
}

// mergeShardSinks folds the per-client sinks into the result exactly as
// the serial shared sink would have: validate counts, then either
// concatenate client-major (exact mode — the serial emission order) or
// replay the completion-ordered stream into a fresh streaming aggregate.
func mergeShardSinks(r *Result, clients []*shardParticipant, want int, unit string, cfg stats.Config) error {
	for ci, sp := range clients {
		if n := sp.sink.counts[0]; n != want {
			return fmt.Errorf("workload: client %d measured %d of %d %s",
				ci, n, want, unit)
		}
	}
	if cfg.Streaming {
		type rec struct {
			at, lat sim.Time
			ci      int
		}
		var recs []rec
		for ci, sp := range clients {
			lats, ats := sp.sink.perClient[0], sp.sink.times[0]
			for k := range lats {
				recs = append(recs, rec{at: ats[k], ci: ci, lat: lats[k]})
			}
		}
		sort.SliceStable(recs, func(i, j int) bool {
			if recs[i].at != recs[j].at {
				return recs[i].at < recs[j].at
			}
			return recs[i].ci < recs[j].ci
		})
		agg := stats.NewSample(cfg)
		for _, rc := range recs {
			agg.Add(rc.lat.Micros())
		}
		r.agg = agg
		r.Requests = agg.N()
		return nil
	}
	for _, sp := range clients {
		r.Latencies = append(r.Latencies, sp.sink.perClient[0]...)
	}
	r.Requests = len(r.Latencies)
	return nil
}

// mergeShardScalars folds Errors and Elapsed across participants.
func mergeShardScalars(r *Result, clients []*shardParticipant) {
	for _, sp := range clients {
		r.Errors += sp.res.Errors
		if sp.last > r.Elapsed {
			r.Elapsed = sp.last
		}
	}
}

// runEchoSharded delegates to the cluster's echo driver (which manages
// the warmup tracing flip across shards) and shapes the result.
func runEchoSharded(g Echo, c *lab.Cluster) (*Result, error) {
	size, iters, warm := defInt(g.Size, 4), defInt(g.Iterations, 100), defInt(g.Warmup, 8)
	res, err := c.RunEcho(size, iters, warm)
	if err != nil {
		return nil, err
	}
	return echoResult(c.Lab, size, res), nil
}

// runFanInSharded mirrors FanIn.Run with per-client participants; cross
// flows become participants of their own (each runs on the shard owning
// its originating host, with a private fail slot), and the sink's
// processes stay on shard 0 with the server's.
func runFanInSharded(g FanIn, c *lab.Cluster) (*Result, error) {
	l := c.Lab
	size, reqs, warm := defInt(g.Size, 200), defInt(g.Requests, 20), defInt(g.Warmup, 2)
	if err := checkTransport(g.Transport, size); err != nil {
		return nil, err
	}
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "fanin"}
	server := &shardParticipant{}

	if len(g.Faults) > 0 {
		if err := c.ScheduleFaults(g.Faults); err != nil {
			return nil, err
		}
	}
	wd := armClusterWatchdog(c)
	startTrace(l)
	if g.Transport == TransportRUDP {
		e, err := rudp.Listen(l.Hosts[0].Kern, l.Hosts[0].UDP, Port)
		if err != nil {
			return nil, err
		}
		l.Env.Spawn("server.fanin",
			&rudpAcceptLoopFrame{e: e, env: l.Env, n: clients})
	} else {
		ln, err := l.Hosts[0].TCP.Listen(Port)
		if err != nil {
			return nil, err
		}
		l.Env.Spawn("server.fanin", &acceptLoopFrame{
			ln: ln, n: clients,
			accepted: func(i int, op *tcp.AcceptOp) bool {
				op.C.SetNoDelay(true)
				l.Env.Spawn(fmt.Sprintf("server.fanin.conn%d", i),
					&serveEchoFrame{so: op.So})
				return true
			},
		})
	}
	var crossParts []*shardParticipant
	if g.Cross != nil {
		if err := g.Cross.spawnSink(l, server.failFn(l.Env)); err != nil {
			return nil, err
		}
		ctc := g.Cross.withDefaults()
		crossParts = make([]*shardParticipant, ctc.Flows)
		for f := 0; f < ctc.Flows; f++ {
			hi := ctc.flowHost(f, clients)
			env := c.EnvOf(hi)
			sp := &shardParticipant{}
			crossParts[f] = sp
			g.Cross.spawnFlow(env, l.Hosts[hi], f, sp.failFn(env))
		}
	}

	parts := make([]*shardParticipant, clients)
	for ci := 0; ci < clients; ci++ {
		env := c.EnvOf(ci + 1)
		sp := &shardParticipant{sink: newShardSink(g.Stats.Streaming)}
		sp.sink.wd = wd
		parts[ci] = sp
		if g.Transport == TransportRUDP {
			env.Spawn(fmt.Sprintf("client%d.fanin", ci), &rudpFanInClientFrame{
				host: l.Hosts[ci+1], ci: ci, si: 0, size: size, warm: warm, reqs: reqs,
				startAt: sim.Time(ci) * g.Stagger,
				sink:    sp.sink, last: &sp.last, r: &sp.res, fail: sp.failFn(env),
			})
			continue
		}
		env.Spawn(fmt.Sprintf("client%d.fanin", ci), &fanInClientFrame{
			host: l.Hosts[ci+1], ci: ci, si: 0, size: size, warm: warm, reqs: reqs,
			startAt: sim.Time(ci) * g.Stagger,
			sink:    sp.sink, last: &sp.last, r: &sp.res, fail: sp.failFn(env),
		})
	}

	c.Run()
	if err := firstError(server, parts); err != nil {
		return nil, err
	}
	if err := firstError(server, crossParts); err != nil {
		return nil, err
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	if err := mergeShardSinks(r, parts, reqs, "requests", g.Stats); err != nil {
		return nil, err
	}
	r.Bytes = int64(r.Requests) * int64(size) * 2
	mergeShardScalars(r, parts)
	collectTrace(l, r)
	return r, nil
}

// runChurnSharded mirrors Churn.Run with per-client participants.
func runChurnSharded(g Churn, c *lab.Cluster) (*Result, error) {
	l := c.Lab
	conns, size := defInt(g.Conns, 10), defInt(g.Size, 64)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "churn"}
	server := &shardParticipant{}

	wd := armClusterWatchdog(c)
	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	l.Env.Spawn("server.churn", &acceptLoopFrame{
		ln: ln, n: clients * conns,
		accepted: func(i int, op *tcp.AcceptOp) bool {
			op.C.SetNoDelay(true)
			l.Env.Spawn(fmt.Sprintf("server.churn.conn%d", i),
				&serveEchoFrame{so: op.So})
			return true
		},
	})

	parts := make([]*shardParticipant, clients)
	for ci := 0; ci < clients; ci++ {
		env := c.EnvOf(ci + 1)
		sp := &shardParticipant{sink: newShardSink(g.Stats.Streaming)}
		sp.sink.wd = wd
		parts[ci] = sp
		env.Spawn(fmt.Sprintf("client%d.churn", ci), &churnClientFrame{
			host: l.Hosts[ci+1], ci: ci, si: 0, size: size, conns: conns,
			sink: sp.sink, last: &sp.last, r: &sp.res, fail: sp.failFn(env),
		})
	}

	c.Run()
	if err := firstError(server, parts); err != nil {
		return nil, err
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	if err := mergeShardSinks(r, parts, conns, "cycles", g.Stats); err != nil {
		return nil, err
	}
	r.Bytes = int64(r.Requests) * int64(size) * 2
	mergeShardScalars(r, parts)
	collectTrace(l, r)
	return r, nil
}

// runBulkSharded mirrors Bulk.Run. The shared starts/dones/received
// arrays survive sharding as-is: starts[ci] is written only by client
// ci's shard, dones[ci] and received[ci] only by the server's (the
// per-connection sink frames run on shard 0), and the postamble reads
// them after every loop has drained.
func runBulkSharded(g Bulk, c *lab.Cluster) (*Result, error) {
	l := c.Lab
	total, chunk := defInt(g.Bytes, 65536), defInt(g.Chunk, 8192)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "bulk"}
	server := &shardParticipant{}
	serverFail := server.failFn(l.Env)

	starts := make([]sim.Time, clients)
	dones := make([]sim.Time, clients)
	received := make([]int, clients)

	wd := armClusterWatchdog(c)
	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	l.Env.Spawn("server.bulk", &acceptLoopFrame{
		ln: ln, n: clients,
		accepted: func(_ int, op *tcp.AcceptOp) bool {
			i := int(op.C.Key().RemoteAddr - lab.HostAddr(1))
			if i < 0 || i >= clients {
				serverFail(fmt.Errorf("workload: bulk connection from unexpected address %#x",
					op.C.Key().RemoteAddr))
				return false
			}
			l.Env.Spawn(fmt.Sprintf("server.bulk.conn%d", i),
				&bulkConnFrame{so: op.So, i: i, dones: dones,
					received: received, fail: serverFail, wd: wd})
			return true
		},
	})

	parts := make([]*shardParticipant, clients)
	for ci := 0; ci < clients; ci++ {
		env := c.EnvOf(ci + 1)
		sp := &shardParticipant{}
		parts[ci] = sp
		env.Spawn(fmt.Sprintf("client%d.bulk", ci), &bulkClientFrame{
			host: l.Hosts[ci+1], ci: ci, total: total, chunk: chunk,
			starts: starts, fail: sp.failFn(env),
		})
	}

	c.Run()
	if err := firstError(server, parts); err != nil {
		return nil, err
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		if received[ci] != total {
			r.Errors++
		}
		r.Latencies = append(r.Latencies, dones[ci]-starts[ci])
		r.Bytes += int64(received[ci])
		if dones[ci] > last {
			last = dones[ci]
		}
	}
	r.Requests = clients
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}
