package sim

// RNG is a small, fast, deterministic random number generator
// (xorshift64*). The simulation cannot use math/rand's global state
// because reproducibility across runs and across packages is a hard
// requirement for the latency experiments.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with s. A zero seed is remapped to a
// fixed nonzero constant, since xorshift has an all-zero fixed point.
func NewRNG(s uint64) *RNG {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &RNG{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fill fills b with pseudo-random bytes.
func (r *RNG) Fill(b []byte) {
	for i := range b {
		if i%8 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(b); j++ {
				b[i+j] = byte(v >> (8 * j))
			}
		}
	}
}
