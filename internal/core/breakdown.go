// Package core is the paper's measurement study as a library: it runs the
// round-trip benchmark of §1.2 on the simulated testbed in every
// configuration the paper evaluates, extracts per-layer latency
// breakdowns the way the paper's instrumentation does, and regenerates
// every table and figure (Tables 1–7, Figures 1 and 2) with
// paper-versus-measured comparisons.
package core

import (
	"fmt"
	"sort"

	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Breakdown is a per-layer latency decomposition for one transfer size,
// averaged over the measured iterations. Rows are microseconds, keyed by
// trace layer; Total is the measured window length; Other is window time
// not attributed to any reported row (for the receive side this includes,
// for example, ACK transmission triggered during input processing).
type Breakdown struct {
	Size  int
	Rows  map[trace.Layer]float64
	Total float64
	Other float64
}

// TxLayers are the rows of the paper's transmit-side table (Table 2), in
// presentation order, for the ATM configuration.
var TxLayers = []trace.Layer{
	trace.LayerUserTx,
	trace.LayerTCPCksumTx,
	trace.LayerTCPMcopy,
	trace.LayerTCPSegmentTx,
	trace.LayerIPTx,
	trace.LayerATMTx,
}

// RxLayers are the rows of the paper's receive-side table (Table 3).
var RxLayers = []trace.Layer{
	trace.LayerATMRx,
	trace.LayerIPQ,
	trace.LayerIPRx,
	trace.LayerTCPCksumRx,
	trace.LayerTCPSegmentRx,
	trace.LayerWakeup,
	trace.LayerUserRx,
}

// MeasureBreakdowns runs the echo benchmark and produces the paper's two
// decompositions for one size:
//
//   - transmit: the client's spans between entering write(2) and write
//     returning — by construction everything up to the last byte being
//     handed to the adapter, since the whole output path runs in process
//     context (§2.2's transmit measurement).
//   - receive: the client's spans between the arrival of the final cell
//     group of the last segment of the echoed response and the read
//     returning — the paper's rule that only processing after the last
//     arrival contributes to latency (§2.2's receive measurement).
func MeasureBreakdowns(cfg lab.Config, size, iterations, warmup int) (tx, rx Breakdown, err error) {
	return MeasureBreakdownsOn(nil, cfg, size, iterations, warmup)
}

// MeasureBreakdownsOn is MeasureBreakdowns on the testbed-reuse path:
// the lab comes from the worker's warm cache when tb holds one of the
// right shape. The trace records read below belong to the trial just
// run; they stay valid because a warm lab is reset when the NEXT trial
// acquires it, not when this one releases it.
func MeasureBreakdownsOn(tb *runner.Testbeds, cfg lab.Config, size, iterations, warmup int) (tx, rx Breakdown, err error) {
	l := tb.Lab(cfg, 2)
	res, err := l.RunEcho(size, iterations, warmup)
	if err != nil {
		return tx, rx, err
	}
	rec := l.Client.Trace()

	tx = Breakdown{Size: size, Rows: map[trace.Layer]float64{}}
	rx = Breakdown{Size: size, Rows: map[trace.Layer]float64{}}
	n := float64(len(res.Windows))
	for _, w := range res.Windows {
		// Transmit side.
		txRows := rec.Breakdown(w.WriteStart, w.WriteEnd)
		for layer, d := range txRows {
			tx.Rows[layer] += d.Micros() / n
		}
		tx.Total += (w.WriteEnd - w.WriteStart).Micros() / n

		// Receive side: origin is the last frame arrival before the
		// read returned.
		origin, ok := rec.LastMark(trace.MarkFrameArrival, w.ReadReturn)
		if !ok || origin < w.WriteEnd {
			// No response frame marked (should not happen).
			return tx, rx, fmt.Errorf("core: no frame-arrival mark for iteration")
		}
		rxRows := rec.Breakdown(origin, w.ReadReturn)
		for layer, d := range rxRows {
			rx.Rows[layer] += d.Micros() / n
		}
		rx.Total += (w.ReadReturn - origin).Micros() / n
	}
	tx.Other = unattributed(tx, TxLayers)
	rx.Other = unattributed(rx, RxLayers)
	return tx, rx, nil
}

// unattributed computes window time outside the presented rows.
func unattributed(b Breakdown, layers []trace.Layer) float64 {
	sum := 0.0
	for _, l := range layers {
		sum += b.Rows[l]
	}
	rest := b.Total - sum
	if rest < 0 {
		rest = 0
	}
	return rest
}

// sortedLayers returns the layers present in a breakdown, for debugging.
func sortedLayers(b Breakdown) []trace.Layer {
	out := make([]trace.Layer, 0, len(b.Rows))
	for l := range b.Rows {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
