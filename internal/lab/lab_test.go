package lab

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
)

func TestEchoATMBasic(t *testing.T) {
	l := New(Config{Link: LinkATM})
	res, err := l.RunEcho(4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	rtt := res.MeanRTTMicros()
	t.Logf("4-byte ATM RTT = %.1f µs", rtt)
	// The paper measures 1021 µs; require the right ballpark.
	if rtt < 500 || rtt > 2000 {
		t.Fatalf("4-byte ATM RTT = %.1f µs, expected ~1000", rtt)
	}
}

func TestEchoATMSizes(t *testing.T) {
	var prev float64
	for _, size := range []int{4, 20, 80, 200, 500, 1400, 4000, 8000} {
		l := New(Config{Link: LinkATM})
		res, err := l.RunEcho(size, 5, 2)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		rtt := res.MeanRTTMicros()
		t.Logf("size %5d: RTT %8.1f µs", size, rtt)
		if rtt <= prev {
			t.Fatalf("RTT not monotonically increasing at size %d", size)
		}
		prev = rtt
	}
}

func TestEchoEther(t *testing.T) {
	l := New(Config{Link: LinkEther})
	res, err := l.RunEcho(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	rtt := res.MeanRTTMicros()
	t.Logf("4-byte Ethernet RTT = %.1f µs", rtt)
	if rtt < 1000 || rtt > 4000 {
		t.Fatalf("4-byte Ethernet RTT = %.1f µs, expected ~1940", rtt)
	}
}

func TestEchoDataIntegrity(t *testing.T) {
	// The harness itself verifies the echoed bytes arrive; run a larger
	// multi-segment case over both links.
	for _, link := range []LinkKind{LinkATM, LinkEther} {
		l := New(Config{Link: link})
		if _, err := l.RunEcho(8000, 3, 1); err != nil {
			t.Fatalf("%v: %v", link, err)
		}
	}
}

func TestEchoDeterminism(t *testing.T) {
	run := func() []sim.Time {
		l := New(Config{Link: LinkATM, Seed: 42})
		res, err := l.RunEcho(200, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.RTTs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEchoChecksumModes(t *testing.T) {
	rtt := func(m cost.ChecksumMode, size int) float64 {
		l := New(Config{Link: LinkATM, Mode: m})
		res, err := l.RunEcho(size, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanRTTMicros()
	}
	std := rtt(cost.ChecksumStandard, 8000)
	none := rtt(cost.ChecksumNone, 8000)
	integ := rtt(cost.ChecksumIntegrated, 8000)
	t.Logf("8000B: standard %.0f, integrated %.0f, none %.0f", std, integ, none)
	if !(none < integ && integ < std) {
		t.Fatalf("expected none < integrated < standard at 8000 bytes: %0.f %0.f %0.f",
			none, integ, std)
	}
	// At 4 bytes the integrated path must LOSE (the paper's -22%).
	std4 := rtt(cost.ChecksumStandard, 4)
	integ4 := rtt(cost.ChecksumIntegrated, 4)
	t.Logf("4B: standard %.0f, integrated %.0f", std4, integ4)
	if integ4 <= std4 {
		t.Fatal("integrated mode should be slower at 4 bytes")
	}
}

func TestEchoCellLossRecovery(t *testing.T) {
	l := New(Config{Link: LinkATM, Seed: 7, CellLossRate: 0.001})
	res, err := l.RunEcho(4000, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRTT() <= 0 {
		t.Fatal("no RTTs measured")
	}
	errs := l.Client.ATMDriver.ReassemblyErrors + l.Server.ATMDriver.ReassemblyErrors
	drops := l.Client.ATMAdapter.CellsDropped + l.Server.ATMAdapter.CellsDropped
	t.Logf("drops=%d reassembly errors=%d retransmits=%d",
		drops, errs, l.Client.TCP.Stats.Retransmits+l.Server.TCP.Stats.Retransmits)
	if drops == 0 {
		t.Skip("no cells dropped at this seed; loss injection untested")
	}
	// All 30 echoes completed despite loss: recovery works by definition
	// of reaching here.
}

func TestUDPEcho(t *testing.T) {
	l := New(Config{Link: LinkATM})
	res, err := l.RunUDPEcho(200, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptEchoes != 0 {
		t.Fatal("UDP echo corrupted")
	}
	rtt := res.MeanRTTMicros()
	t.Logf("200-byte UDP RTT = %.1f µs", rtt)
	if rtt <= 0 || rtt > 2000 {
		t.Fatalf("implausible UDP RTT %.1f", rtt)
	}
	// UDP must beat TCP for the same workload.
	l2 := New(Config{Link: LinkATM})
	tcpRes, err := l2.RunEcho(200, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rtt >= tcpRes.MeanRTTMicros() {
		t.Fatalf("UDP (%.0f) not faster than TCP (%.0f)", rtt, tcpRes.MeanRTTMicros())
	}
}

func TestEchoVerifiesPayload(t *testing.T) {
	// Host-side corruption with the checksum eliminated must be counted
	// by the harness (and only then). The rate stays below 1.0 because
	// SYN segments are always checksummed: with every datagram corrupted
	// the handshake could never complete.
	l := New(Config{Link: LinkATM, Mode: cost.ChecksumNone, HostCorruptRate: 0.2, Seed: 3})
	res, err := l.RunEcho(500, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptEchoes == 0 {
		t.Fatal("harness failed to detect corrupted echoes")
	}
	l2 := New(Config{Link: LinkATM, Seed: 3})
	res2, err := l2.RunEcho(500, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CorruptEchoes != 0 {
		t.Fatal("clean run reported corruption")
	}
}

func TestWireCorruptionRecovered(t *testing.T) {
	// Wire noise: AAL CRC drops frames, TCP retransmits, zero corrupt
	// echoes regardless of checksum mode.
	for _, mode := range []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone} {
		l := New(Config{Link: LinkATM, Mode: mode, CellCorruptRate: 0.001, Seed: 5})
		res, err := l.RunEcho(1400, 40, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.CorruptEchoes != 0 {
			t.Fatalf("%v: corruption reached the application", mode)
		}
	}
}

func TestMedianRTT(t *testing.T) {
	l := New(Config{Link: LinkATM})
	res, err := l.RunEcho(4, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	med := res.MedianRTTMicros()
	if med <= 0 || med > res.MeanRTTMicros()*2 {
		t.Fatalf("median %.1f implausible vs mean %.1f", med, res.MeanRTTMicros())
	}
}

func TestHashPCBConfig(t *testing.T) {
	// End to end: with many PCBs and no prediction, the hash-table
	// organization must erase the list-search penalty.
	rtt := func(hash bool) float64 {
		l := New(Config{Link: LinkATM, DisablePrediction: true, ExtraPCBs: 800, HashPCBs: hash})
		res, err := l.RunEcho(4, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanRTTMicros()
	}
	list, hash := rtt(false), rtt(true)
	t.Logf("800 PCBs, no prediction: list %.0f µs, hash %.0f µs", list, hash)
	if hash >= list {
		t.Fatal("hash PCBs did not beat the list")
	}
	if list-hash < 1000 {
		t.Fatalf("expected ~2µs/entry/packet × 800 entries of savings, got %.0f µs", list-hash)
	}
}

func TestEtherEchoDeterminism(t *testing.T) {
	run := func() sim.Time {
		l := New(Config{Link: LinkEther, Seed: 9})
		res, err := l.RunEcho(1400, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanRTT()
	}
	if run() != run() {
		t.Fatal("Ethernet echo not deterministic")
	}
}

func TestTopologyTwoHostAliases(t *testing.T) {
	l := New(Config{Link: LinkATM})
	if len(l.Hosts) != 2 || l.Client != l.Hosts[0] || l.Server != l.Hosts[1] {
		t.Fatal("two-host lab does not alias Hosts[0]/Hosts[1]")
	}
	if l.Switch != nil {
		t.Fatal("two-host ATM lab should use the switchless fiber")
	}
	if HostAddr(0) != ClientAddr || HostAddr(1) != ServerAddr {
		t.Fatal("HostAddr disagrees with the two-host constants")
	}
}

func TestTopologyEchoThroughSwitch(t *testing.T) {
	// The echo pair still works when it reaches its peer through the
	// switch of a larger topology; the switch adds fabric latency, so
	// the RTT must exceed the switchless fiber's.
	direct := New(Config{Link: LinkATM})
	dres, err := direct.RunEcho(200, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := NewTopology(Config{Link: LinkATM}, 4)
	if l.Switch == nil {
		t.Fatal("4-host ATM topology missing its switch")
	}
	res, err := l.RunEcho(200, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptEchoes != 0 {
		t.Fatal("echo through the switch corrupted")
	}
	if res.MeanRTT() <= dres.MeanRTT() {
		t.Fatalf("switched RTT %v not above switchless %v", res.MeanRTT(), dres.MeanRTT())
	}
	if l.Switch.CellsSwitched == 0 {
		t.Fatal("echo cells did not traverse the switch")
	}
}

func TestTopologyEtherSharedSegment(t *testing.T) {
	l := NewTopology(Config{Link: LinkEther}, 3)
	if l.Segment == nil || l.Segment.NumStations() != 3 {
		t.Fatal("3-host Ethernet topology not on one shared segment")
	}
	if _, err := l.RunEcho(200, 3, 1); err != nil {
		t.Fatal(err)
	}
	// Unicast filtering: the third host must see none of the echo pair's
	// frames.
	if got := l.Hosts[2].EthAdapter.FramesRecv; got != 0 {
		t.Fatalf("bystander station received %d frames", got)
	}
}

func TestLivePCBPopulationSlowsLookup(t *testing.T) {
	// The live-population knob must reproduce the synthetic one's
	// end-to-end effect: more entries ahead of the benchmark connection,
	// slower demultiplexing with prediction off.
	rtt := func(live int) float64 {
		l := New(Config{Link: LinkATM, DisablePrediction: true, LivePCBs: live})
		res, err := l.RunEcho(4, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanRTTMicros()
	}
	base, populated := rtt(0), rtt(400)
	t.Logf("live population 0: %.0f µs, 400: %.0f µs", base, populated)
	if populated <= base {
		t.Fatal("live PCB population did not slow demultiplexing")
	}
}

func TestMTUBelowFloorIgnored(t *testing.T) {
	// Config.MTU below MinMTU cannot hold the protocol headers; the lab
	// must fall back to the link default instead of building a stack
	// whose MSS is zero or negative.
	l := New(Config{Link: LinkATM, MTU: MinMTU - 1})
	if _, err := l.RunEcho(200, 2, 0); err != nil {
		t.Fatal(err)
	}
}
