package core

import (
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/paperdata"
	"repro/internal/trace"
)

// fastOpts keeps unit-test runtime low; the simulation is deterministic,
// so small iteration counts are stable.
func fastOpts() Options { return Options{Iterations: 6, Warmup: 2} }

func TestTable1Shape(t *testing.T) {
	r, err := RunTable1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		// ATM must beat Ethernet at every size (the paper's 45-55%).
		if row.B >= row.A {
			t.Errorf("size %d: ATM (%.0f) not faster than Ethernet (%.0f)",
				row.Size, row.B, row.A)
		}
		if row.DecreasePercent < 25 || row.DecreasePercent > 70 {
			t.Errorf("size %d: decrease %.0f%% outside the paper's band (45-55%%, tolerance 25-70)",
				row.Size, row.DecreasePercent)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := RunTable2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// Checksum dominates TCP processing at large sizes.
	b8000 := r.PerSize[8000]
	if b8000.Rows[trace.LayerTCPCksumTx] < b8000.Rows[trace.LayerTCPSegmentTx] {
		t.Error("8000B: checksum should dominate segment processing")
	}
	// The mcopy row must drop between 500 and 1400 bytes (cluster
	// refcount copies), the paper's §2.2.1 nonlinearity.
	if r.PerSize[1400].Rows[trace.LayerTCPMcopy] >= r.PerSize[500].Rows[trace.LayerTCPMcopy] {
		t.Error("mcopy did not drop at the cluster switch (500→1400)")
	}
	// Totals within 2x of the paper at every size.
	for _, size := range Sizes {
		meas := r.PerSize[size].Total
		paper := paperdata.Table2["Total"][size]
		if meas < paper/2 || meas > paper*2 {
			t.Errorf("size %d: transmit total %.0f vs paper %.0f (out of 2x band)",
				size, meas, paper)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// At 8000 bytes both segments' processing lands after the final
	// arrival: the checksum row must cover two segments (the paper
	// measures 1172 = 2x578) while the ATM row stays at least one
	// segment's worth. (The paper's 1783 ATM row reflects a driver
	// overlap our timeline only partially reproduces; the README's
	// fidelity notes record the deviation.)
	ck4000 := r.PerSize[4000].Rows[trace.LayerTCPCksumRx]
	ck8000 := r.PerSize[8000].Rows[trace.LayerTCPCksumRx]
	if ck8000 < ck4000*1.7 {
		t.Errorf("receive checksum row: 8000B (%.0f) should be ~2x 4000B (%.0f)",
			ck8000, ck4000)
	}
	atm4000 := r.PerSize[4000].Rows[trace.LayerATMRx]
	atm8000 := r.PerSize[8000].Rows[trace.LayerATMRx]
	if atm8000 < atm4000*0.9 {
		t.Errorf("receive ATM row: 8000B (%.0f) collapsed below 4000B (%.0f)",
			atm8000, atm4000)
	}
	// At 8000 bytes the two segments leave back to back (§2.2.1), and in
	// this timeline the driver's per-cell processing of the first segment
	// outlasts the second segment's wire time, so both segments' TCP
	// input — one slow-path (the data+ACK first segment), one fast-path
	// (the final pure-data segment) — lands after the final arrival. The
	// row is therefore bounded by one slow plus one fast input. (The
	// paper's 59 µs reflects TCA-100 DMA/host overlap this model
	// reproduces only partially, the same deviation recorded for the ATM
	// row.)
	seg4000 := r.PerSize[4000].Rows[trace.LayerTCPSegmentRx]
	seg8000 := r.PerSize[8000].Rows[trace.LayerTCPSegmentRx]
	if seg8000 < seg4000 || seg8000 > seg4000*1.7 {
		t.Errorf("receive TCP segment row at 8000B (%.0f) outside [1x, 1.7x] of 4000B (%.0f)",
			seg8000, seg4000)
	}
	for _, size := range Sizes {
		meas := r.PerSize[size].Total
		paper := paperdata.Table3["Total"][size]
		if meas < paper/2 || meas > paper*2 {
			t.Errorf("size %d: receive total %.0f vs paper %.0f (out of 2x band)",
				size, meas, paper)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	r, err := RunTable4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		// Prediction must never lose, and the improvement must be small
		// (the paper: 0-8%, "basically independent of data size").
		if row.B > row.A {
			t.Errorf("size %d: prediction slower (%.0f vs %.0f)", row.Size, row.B, row.A)
		}
		if row.DecreasePercent > 15 {
			t.Errorf("size %d: prediction improvement %.0f%% implausibly large",
				row.Size, row.DecreasePercent)
		}
	}
}

func TestTable5Values(t *testing.T) {
	r, err := RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		paper := paperdata.Table5
		within := func(name string, got, want float64) {
			tol := want * 0.25
			if tol < 2 {
				tol = 2
			}
			if got < want-tol || got > want+tol {
				t.Errorf("size %d %s: %.1f vs paper %.1f", row.Size, name, got, want)
			}
		}
		within("ULTRIX checksum", row.ULTRIXChecksum, paper["ULTRIXChecksum"][row.Size])
		within("bcopy", row.ULTRIXBcopy, paper["ULTRIXBcopy"][row.Size])
		within("optimized", row.OptimizedChecksum, paper["OptimizedChecksum"][row.Size])
		within("integrated", row.IntegratedCopyCk, paper["IntegratedCopyCk"][row.Size])
		// Integrated must beat separate at every size.
		if row.IntegratedCopyCk >= row.OptimizedChecksum+row.ULTRIXBcopy {
			t.Errorf("size %d: integrated not faster than separate", row.Size)
		}
	}
}

func TestTable6Crossover(t *testing.T) {
	r, err := RunTable6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	bys := map[int]CompareRow{}
	for _, row := range r.Rows {
		bys[row.Size] = row
	}
	// Small sizes: combined must LOSE (paper: -22% at 4 bytes).
	if bys[4].DecreasePercent >= 0 {
		t.Error("combined copy+checksum should be slower at 4 bytes")
	}
	// Large sizes: combined must WIN (paper: +21%/+24% at 4000/8000).
	if bys[4000].DecreasePercent <= 0 || bys[8000].DecreasePercent <= 0 {
		t.Error("combined copy+checksum should be faster at 4000/8000 bytes")
	}
	// Break-even between 500 and 1400 bytes.
	if bys[500].DecreasePercent > 5 {
		t.Errorf("500B should be at or below break-even, got %.1f%%", bys[500].DecreasePercent)
	}
	if bys[1400].DecreasePercent < 0 {
		t.Errorf("1400B should be past break-even, got %.1f%%", bys[1400].DecreasePercent)
	}
}

func TestTable7Shape(t *testing.T) {
	r, err := RunTable7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	var prev float64 = -1
	for _, row := range r.Rows {
		if row.B > row.A {
			t.Errorf("size %d: eliminating the checksum made latency worse", row.Size)
		}
		// Savings must grow with size (paper: 0.1% → 41%); allow a
		// small dip at 8000 where the two-segment pipeline shifts
		// which costs sit on the critical path.
		if row.DecreasePercent < prev-5 {
			t.Errorf("size %d: savings %.1f%% not growing (prev %.1f%%)",
				row.Size, row.DecreasePercent, prev)
		}
		prev = row.DecreasePercent
	}
	last := r.Rows[len(r.Rows)-1]
	if last.DecreasePercent < 25 {
		t.Errorf("8000B saving %.1f%% too small (paper: 41%%)", last.DecreasePercent)
	}
}

func TestPCBExperiment(t *testing.T) {
	r := RunPCBExperiment()
	t.Log("\n" + r.Render())
	// Linear slope near the paper's 1.3 µs/entry.
	if r.PerEntryMicros < 1.0 || r.PerEntryMicros > 1.6 {
		t.Errorf("slope %.2f µs/entry, paper ~1.3", r.PerEntryMicros)
	}
	for _, row := range r.Rows {
		// The hash and cache organizations must be flat and cheap.
		if row.HashMicros > 20 || row.CacheMicros > 20 {
			t.Errorf("entries %d: hash %.1f / cache %.1f µs not constant-time",
				row.Entries, row.HashMicros, row.CacheMicros)
		}
		if row.Entries >= 100 && row.ListMicros <= row.HashMicros {
			t.Errorf("entries %d: list (%.1f) should cost more than hash (%.1f)",
				row.Entries, row.ListMicros, row.HashMicros)
		}
	}
}

func TestPCBPopulationEffect(t *testing.T) {
	rtts, err := PCBPopulationEffect([]int{0, 250, 1000}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("population→RTT: %v", rtts)
	if !(rtts[0] < rtts[250] && rtts[250] < rtts[1000]) {
		t.Error("RTT should grow with PCB population when prediction is off")
	}
}

func TestSun3Comparison(t *testing.T) {
	r := RunSun3Comparison()
	t.Log("\n" + r.Render())
	if r.Sun3SavingPercent < 30 || r.Sun3SavingPercent > 40 {
		t.Errorf("Sun-3 saving %.0f%%, paper 35%%", r.Sun3SavingPercent)
	}
	if r.DECSavingPercent < 50 || r.DECSavingPercent > 85 {
		t.Errorf("DEC saving %.0f%%, paper 68%%", r.DECSavingPercent)
	}
}

func TestMeasureBreakdownsConsistency(t *testing.T) {
	tx, rx, err := MeasureBreakdowns(lab.Config{Link: lab.LinkATM}, 200, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Total <= 0 || rx.Total <= 0 {
		t.Fatal("empty breakdown windows")
	}
	// Attributed rows must not exceed the window (no double counting
	// beyond the documented overlap classes).
	sumTx := 0.0
	for _, l := range TxLayers {
		sumTx += tx.Rows[l]
	}
	if sumTx > tx.Total*1.05 {
		t.Errorf("transmit rows (%.0f) exceed window (%.0f)", sumTx, tx.Total)
	}
}

func TestErrorStudy(t *testing.T) {
	r, err := RunErrorStudy(120, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	rows := map[string]ErrorStudyRow{}
	for _, row := range r.Rows {
		rows[row.Label] = row
	}

	wireOn := rows["wire noise, checksum on"]
	if wireOn.WireCorrupted == 0 {
		t.Fatal("no wire corruption injected; study vacuous")
	}
	if wireOn.HECDrops+wireOn.AALDrops == 0 {
		t.Error("wire noise not caught below TCP")
	}
	if wireOn.TCPCksumDrops != 0 {
		t.Errorf("TCP checksum caught %d wire errors the AAL should have caught",
			wireOn.TCPCksumDrops)
	}
	if wireOn.CorruptEchoes != 0 {
		t.Error("wire noise reached the application with the checksum on")
	}

	wireOff := rows["wire noise, checksum off"]
	if wireOff.CorruptEchoes != 0 {
		t.Error("wire noise reached the application with the checksum off: AAL insufficient")
	}

	ctlOn := rows["buggy controller, checksum on"]
	if ctlOn.HostCorrupted == 0 {
		t.Fatal("no host corruption injected; study vacuous")
	}
	if ctlOn.TCPCksumDrops == 0 {
		t.Error("TCP checksum missed host-side corruption")
	}
	if ctlOn.CorruptEchoes != 0 {
		t.Error("host corruption reached the application despite the checksum")
	}

	ctlOff := rows["buggy controller, checksum off"]
	if ctlOff.CorruptEchoes == 0 {
		t.Error("expected corruption to reach the application with checksum off and a buggy controller")
	}
}

func TestTransportComparison(t *testing.T) {
	r, err := RunTransportComparison(cost.ChecksumStandard, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		if row.UDPMicros >= row.TCPMicros {
			t.Errorf("size %d: UDP (%.0f) not faster than TCP (%.0f)",
				row.Size, row.UDPMicros, row.TCPMicros)
		}
		if row.TCPOverheadPct > 100 {
			t.Errorf("size %d: TCP overhead %.0f%% implausibly large",
				row.Size, row.TCPOverheadPct)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	t4, err := RunTable4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	f1 := RenderFigure1(t4)
	if len(f1) < 100 || !containsAll(f1, "Figure 1", "With Prediction", "#") {
		t.Fatalf("figure 1 render suspect:\n%s", f1)
	}
	t5, err := RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	f2 := RenderFigure2(t5)
	if len(f2) < 100 || !containsAll(f2, "Figure 2", "Integrated", "#") {
		t.Fatalf("figure 2 render suspect:\n%s", f2)
	}
}

// TestParallelBitIdentical is the sweep engine's acceptance check at the
// table level: for the same base seed, the parallel path must render
// byte-for-byte the same tables as the serial reference, for both the
// compare-style tables and the per-layer breakdowns.
func TestParallelBitIdentical(t *testing.T) {
	serial := Options{Iterations: 5, Warmup: 1, Parallel: 1, BaseSeed: 0x5eed}
	parallel := serial
	parallel.Parallel = 8

	s1, err := RunTable1(serial)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := RunTable1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Render() != p1.Render() {
		t.Errorf("Table 1 diverged between serial and 8 workers:\n--- serial\n%s\n--- parallel\n%s",
			s1.Render(), p1.Render())
	}

	s3, err := RunTable3(serial)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := RunTable3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Render() != p3.Render() {
		t.Errorf("Table 3 diverged between serial and 8 workers:\n--- serial\n%s\n--- parallel\n%s",
			s3.Render(), p3.Render())
	}

	se, err := RunExtendedSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := RunExtendedSweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(se, pe) {
		t.Error("extended sweep diverged between serial and 8 workers")
	}
}

// TestExtendedSweepShape sanity-checks the beyond-paper grid: every cell
// completes, and the MTU and socket-buffer dimensions visibly shift the
// large-transfer cells.
func TestExtendedSweepShape(t *testing.T) {
	outs, err := RunExtendedSweep(Options{Iterations: 4, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, o := range outs {
		if o.N == 0 {
			t.Fatalf("cell %s measured nothing", o.Label)
		}
		byLabel[o.Label] = o.MeanMicros
	}
	base := byLabel["ATM/standard/8000B"]
	if base == 0 {
		t.Fatalf("baseline 8000B cell missing; labels: %v", byLabel)
	}
	if v := byLabel["ATM/standard/mtu=1500/8000B"]; v <= base {
		t.Errorf("mtu=1500 cell %.0fµs not above baseline %.0fµs", v, base)
	}
	if v := byLabel["ATM/standard/buf=4096/8000B"]; v <= base {
		t.Errorf("buf=4096 cell %.0fµs not above baseline %.0fµs", v, base)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
