// Command docscheck keeps the documentation executable: it extracts
// every `go run ./...` and `go test ...` command line quoted in the
// given Markdown files (fenced code blocks and inline code spans),
// reduces each to a quick smoke configuration, runs it, and fails if
// any command errors — which is what happens when a documented flag
// drifts from a tool's real flag set. CI runs it via `make docs-check`.
//
// Smoke mode appends per-tool iteration-reducing flags (the Go flag
// package lets a later flag override an earlier one), so a quoted
// `-iters 100` executes as `-iters 2`: the check validates flags and
// basic behaviour, not full-length output. Redirections and pipes in
// quoted lines are stripped — stdout is discarded anyway.
//
// `go test` lines get their own smoke treatment, sized for the
// benchmark and profiling commands docs/PERFORMANCE.md quotes: a
// command that selects benchmarks (-bench) is reduced to one iteration
// of each (-benchtime=1x) with unit tests skipped (-run ^$), and any
// -cpuprofile/-memprofile output path is redirected into the system
// temp directory so a docs run never litters the working tree. Plain
// `go test` lines (a specific -run selection quoted in a doc) execute
// as written — and FAIL if the selection matches nothing (`go test`
// exits 0 with "[no tests to run]" when a documented test name has
// drifted, so docscheck scans for the marker). Drift in documented
// *benchmark* names is caught by the other gate: a renamed benchmark
// turns up as a MISSING metric in `make bench-wallclock` or `make
// benchdiff`. `go tool pprof` lines are not extracted: they are
// interactive.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
}

// smokeFlags maps a tool's package path to the flags appended in smoke
// mode. Appending wins: the flag package takes the last occurrence.
var smokeFlags = map[string][]string{
	"./cmd/tables":    {"-iters", "2", "-parallel", "2"},
	"./cmd/breakdown": {"-iters", "2", "-parallel", "2"},
	"./cmd/tcplat":    {"-iters", "2", "-warmup", "1"},
	"./cmd/load":      {"-reqs", "2", "-conns", "2"},
	"./cmd/pkttrace":  {"-iters", "2"},
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("docscheck", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "print the extracted commands without running them")
		smoke   = fs.Bool("smoke", true, "append per-tool iteration-reducing flags")
		timeout = fs.Duration("timeout", 3*time.Minute, "per-command time limit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"README.md", "docs"}
	}

	files, err := markdownFiles(paths)
	if err != nil {
		return err
	}
	var cmds []string
	seen := map[string]bool{}
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		for _, c := range extractCommands(string(blob)) {
			if !seen[c] {
				seen[c] = true
				cmds = append(cmds, c)
			}
		}
	}
	if len(cmds) == 0 {
		return fmt.Errorf("no `go run` commands found in %s", strings.Join(files, ", "))
	}

	failures := 0
	for _, c := range cmds {
		argv := commandArgs(c, *smoke)
		if *list {
			fmt.Fprintln(w, strings.Join(argv, " "))
			continue
		}
		fmt.Fprintf(w, "docscheck: %s\n", c)
		if err := execute(argv, *timeout, isPlainGoTest(argv)); err != nil {
			failures++
			fmt.Fprintf(w, "docscheck: FAIL %s\n%v\n", c, err)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d documented commands failed", failures, len(cmds))
	}
	if !*list {
		fmt.Fprintf(w, "docscheck: %d documented commands OK (%d files)\n", len(cmds), len(files))
	}
	return nil
}

// markdownFiles expands the path arguments: files stay, directories
// contribute their .md entries, sorted for a stable run order.
func markdownFiles(paths []string) ([]string, error) {
	var out []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				out = append(out, filepath.Join(p, e.Name()))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

var inlineRun = regexp.MustCompile("`(go (?:run \\./|test )[^`]+)`")

// extractCommands pulls `go run ./...` and `go test ...` command lines
// out of Markdown: whole lines inside fenced code blocks, plus inline
// code spans. Trailing shell comments are stripped; docscheck itself is
// excluded (running it from inside itself would recurse).
func extractCommands(md string) []string {
	var out []string
	add := func(c string) {
		c = strings.TrimSpace(c)
		if i := strings.Index(c, " #"); i >= 0 {
			c = strings.TrimSpace(c[:i])
		}
		if (strings.HasPrefix(c, "go run ./") || strings.HasPrefix(c, "go test ")) &&
			!strings.Contains(c, "./cmd/docscheck") {
			out = append(out, c)
		}
	}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			add(trimmed)
			continue
		}
		for _, m := range inlineRun.FindAllStringSubmatch(line, -1) {
			add(m[1])
		}
	}
	return out
}

// commandArgs turns one extracted command line into an argv: shell
// redirections and pipes are dropped (output is discarded anyway), and
// smoke flags for the tool are appended so long-running invocations
// shrink to a flag-validity check.
func commandArgs(c string, smoke bool) []string {
	fields := strings.Fields(c)
	var argv []string
	for _, f := range fields {
		if f == "|" || strings.HasPrefix(f, ">") {
			break
		}
		argv = append(argv, f)
	}
	if !smoke || len(argv) < 2 {
		return argv
	}
	if argv[1] == "test" {
		return smokeTestArgs(argv)
	}
	if len(argv) >= 3 {
		if extra, ok := smokeFlags[argv[2]]; ok {
			argv = append(argv, extra...)
		}
	}
	return argv
}

// isBenchFlag reports whether one argv token selects benchmarks, in
// any of the flag spellings `go test` accepts.
func isBenchFlag(f string) bool {
	return f == "-bench" || f == "--bench" ||
		strings.HasPrefix(f, "-bench=") || strings.HasPrefix(f, "--bench=")
}

// smokeTestArgs reduces a documented `go test` line: benchmark
// selections run one iteration with unit tests skipped, and profile
// outputs land in the temp directory instead of the working tree.
func smokeTestArgs(argv []string) []string {
	hasBench := false
	for i, f := range argv {
		switch {
		case isBenchFlag(f):
			hasBench = true
		case f == "-cpuprofile" || f == "-memprofile":
			if i+1 < len(argv) {
				argv[i+1] = filepath.Join(os.TempDir(), filepath.Base(argv[i+1]))
			}
		case strings.HasPrefix(f, "-cpuprofile=") || strings.HasPrefix(f, "-memprofile="):
			flag, val, _ := strings.Cut(f, "=")
			argv[i] = flag + "=" + filepath.Join(os.TempDir(), filepath.Base(val))
		}
	}
	if hasBench {
		argv = append(argv, "-run", "^$", "-benchtime", "1x")
	}
	return argv
}

// isPlainGoTest reports whether argv is a `go test` invocation with no
// benchmark selection — the case whose output must be scanned for the
// "[no tests to run]" marker, because a drifted test name exits 0.
func isPlainGoTest(argv []string) bool {
	if len(argv) < 2 || argv[1] != "test" {
		return false
	}
	for _, f := range argv {
		if isBenchFlag(f) {
			return false
		}
	}
	return true
}

// execute runs one command with stdout discarded (or, for plain `go
// test` lines, scanned for the zero-tests marker), returning an error
// carrying stderr on failure. The command runs in its own process
// group so a timeout kills the documented tool itself, not just the
// `go run` wrapper in front of it.
func execute(argv []string, timeout time.Duration, scanNoTests bool) error {
	cmd := exec.Command(argv[0], argv[1:]...)
	var stdout strings.Builder
	if scanNoTests {
		cmd.Stdout = &stdout
	} else {
		cmd.Stdout = io.Discard
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%w\n%s", err, strings.TrimSpace(stderr.String()))
		}
		if scanNoTests && strings.Contains(stdout.String(), "no tests to run") {
			return fmt.Errorf("documented test selection matched no tests")
		}
		return nil
	case <-time.After(timeout):
		_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		<-done
		return fmt.Errorf("timed out after %v", timeout)
	}
}
