// Package workload implements the pluggable traffic generators that
// drive lab topologies: the paper's echo benchmark, one-way bulk
// transfer, request/response fan-in (M clients hammering one server),
// and connection churn (open/close storms that exercise real PCB insert
// and delete under live populations). A Generator is pure configuration;
// Run spawns its processes on a freshly built (or freshly reset —
// lab.Lab.Reset restores bit-identical initial state) Lab and consumes
// that lab's event loop, so each run needs its own pristine topology —
// exactly the shape the sweep engine (internal/runner) parallelizes
// over and its worker-affine testbed cache recycles.
//
// Every generator participates in per-packet tracing: when the lab was
// built with lab.Config.PacketTrace, Run returns the merged event
// stream in Result.Events. The echo generator traces exactly the
// paper's measured iterations; the others trace the whole run so
// timelines include connection setup. See docs/METHODOLOGY.md.
package workload

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/rudp"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Port is the well-known port every workload server listens on.
const Port = 9007

// Result is the outcome of one workload run.
type Result struct {
	Workload string
	// Requests counts completed measured operations (echo round trips,
	// fan-in requests, churn connection cycles, bulk transfers).
	Requests int
	// Errors counts harness-visible failures: payload mismatches and
	// short transfers.
	Errors int
	// Bytes is the application payload carried by measured operations.
	Bytes int64
	// Elapsed is the virtual time from the start of the run to the last
	// measured completion (teardown timers excluded).
	Elapsed sim.Time
	// Latencies holds one per-operation latency per measured operation,
	// in deterministic order: client index major, operation index minor.
	// Nil when the generator ran with streaming statistics — then the
	// per-operation stream was folded into constant-memory aggregates as
	// it happened (see Sample) instead of being retained.
	Latencies []sim.Time
	// Events is the merged per-packet trace of the run, present only
	// when the topology was built with lab.Config.PacketTrace. For the
	// echo workload it covers the measured iterations (matching the
	// paper's instrumentation window); for the other generators it
	// covers the whole run including connection setup.
	Events []trace.HostEvent
	// Recoveries holds one sample per client-visible outage the fault
	// workload survived: the virtual time from a client first detecting
	// its server gone to its first completed request afterwards. Nil for
	// every other generator. Order is deterministic: client-major.
	Recoveries []sim.Time

	// agg is the streaming aggregate when the generator ran with
	// stats.Config.Streaming; nil in exact mode.
	agg *stats.Sample
}

// Sample aggregates the latencies in microseconds: exact runs build the
// sample from the retained Latencies; streaming runs return the
// constant-memory aggregate that absorbed each latency as it completed.
func (r *Result) Sample() *stats.Sample {
	if r.agg != nil {
		return r.agg
	}
	var s stats.Sample
	for _, v := range r.Latencies {
		s.Add(v.Micros())
	}
	return &s
}

// Generator produces traffic on an assembled topology. Host 0 is the
// server; every other host is a client. Run consumes the lab's event
// loop and must be called once per freshly built Lab.
type Generator interface {
	Name() string
	Run(l *lab.Lab) (*Result, error)
}

// Echo is the paper's §1.2 round-trip benchmark, delegated to
// lab.RunEcho so workload-engine runs reproduce the paper tables'
// numbers exactly. It uses Hosts[0] and Hosts[1]; extra hosts idle.
type Echo struct {
	Size       int // payload bytes per round trip (default 4)
	Iterations int // measured round trips (default 100)
	Warmup     int // unmeasured round trips (default 8)
}

// Name implements Generator.
func (Echo) Name() string { return "echo" }

// Run implements Generator.
func (g Echo) Run(l *lab.Lab) (*Result, error) {
	size, iters, warm := defInt(g.Size, 4), defInt(g.Iterations, 100), defInt(g.Warmup, 8)
	res, err := l.RunEcho(size, iters, warm)
	if err != nil {
		return nil, err
	}
	return echoResult(l, size, res), nil
}

// echoResult folds a lab echo run into the workload result shape. Shared
// by the serial path above and the sharded path (Cluster.RunEcho returns
// the same lab.EchoResult).
func echoResult(l *lab.Lab, size int, res *lab.EchoResult) *Result {
	r := &Result{
		Workload:  "echo",
		Requests:  len(res.RTTs),
		Errors:    res.CorruptEchoes,
		Bytes:     int64(size) * int64(len(res.RTTs)),
		Latencies: res.RTTs,
	}
	// Last measured completion, not Env.Now(): RunEcho's event loop has
	// already drained teardown timers by the time it returns.
	if len(res.Windows) > 0 {
		r.Elapsed = res.Windows[len(res.Windows)-1].ReadReturn
	}
	collectTrace(l, r)
	return r
}

// collectTrace attaches the merged packet-event stream to a result when
// the topology was built with tracing armed.
func collectTrace(l *lab.Lab, r *Result) {
	if l.Config.PacketTrace {
		r.Events = l.PacketEvents()
	}
}

// startTrace turns recording on at the head of a traced run. The echo
// generator does not use it — lab.RunEcho flips tracing at its measured
// iterations, preserving the paper's warmup exclusion — but the other
// generators trace from the first handshake so timelines show the whole
// connection life.
func startTrace(l *lab.Lab) {
	if l.Config.PacketTrace {
		l.EnableTracing()
	}
}

// armWatchdog arms the lab's no-progress watchdog for a generator run —
// unless the caller armed one already (a test choosing a short horizon).
// Every multi-client generator arms it by default: a run that stops
// completing operations aborts with a diagnostic naming the stuck
// connections instead of spinning its event loop forever. A disarmed
// healthy run and an armed one produce identical results — the watchdog
// schedules no events and draws no randomness.
func armWatchdog(l *lab.Lab) *sim.Watchdog {
	if w := l.Watchdog(); w != nil {
		return w
	}
	return l.ArmWatchdog(0)
}

// armClusterWatchdog is armWatchdog for the sharded path: one shared
// watchdog spanning every shard's event loop.
func armClusterWatchdog(c *lab.Cluster) *sim.Watchdog {
	if w := c.Lab.Watchdog(); w != nil {
		return w
	}
	return c.ArmWatchdog(0)
}

// latSink collects per-operation latencies for the multi-client
// generators. In exact mode (the zero stats.Config) it retains every
// latency per client, exactly as the generators always have, and emits
// them client-major into Result.Latencies. With stats.Config.Streaming
// it folds each latency into a constant-memory aggregate in completion
// order instead — deterministic (the event loop is), but unordered
// per client, which only the reservoir's contents can observe; the
// per-client counts are still tracked so short-changed clients fail
// loudly either way.
type latSink struct {
	counts    []int
	perClient [][]sim.Time
	// times retains each operation's completion time alongside perClient.
	// Only sharded streaming runs arm it: they must buffer per client and
	// replay the stream into the aggregate in canonical completion order
	// afterwards, since shards complete operations concurrently.
	times [][]sim.Time
	agg   *stats.Sample
	// wd, when armed, receives a progress report per recorded operation,
	// so the no-progress watchdog distinguishes a run that is merely slow
	// from one that has stopped completing work.
	wd *sim.Watchdog
}

// newLatSink sizes a sink for the client count per the stats config.
func newLatSink(clients int, cfg stats.Config) *latSink {
	s := &latSink{counts: make([]int, clients)}
	if cfg.Streaming {
		s.agg = stats.NewSample(cfg)
	} else {
		s.perClient = make([][]sim.Time, clients)
	}
	return s
}

// newShardSink builds a single-slot sink for one client of a sharded
// run: always per-client retention (an order-independent collection the
// merge step folds canonically), with completion times kept when a
// streaming aggregate will be replayed afterwards.
func newShardSink(retainTimes bool) *latSink {
	s := &latSink{counts: make([]int, 1), perClient: make([][]sim.Time, 1)}
	if retainTimes {
		s.times = make([][]sim.Time, 1)
	}
	return s
}

// record folds in one measured operation for client ci completing at at.
func (s *latSink) record(ci int, lat, at sim.Time) {
	if s.wd != nil {
		s.wd.Progress()
	}
	s.counts[ci]++
	if s.agg != nil {
		s.agg.Add(lat.Micros())
		return
	}
	s.perClient[ci] = append(s.perClient[ci], lat)
	if s.times != nil {
		s.times[ci] = append(s.times[ci], at)
	}
}

// finish validates that every client measured want operations and moves
// the collected latencies into the result.
func (s *latSink) finish(r *Result, want int, unit string) error {
	for ci, n := range s.counts {
		if n != want {
			return fmt.Errorf("workload: client %d measured %d of %d %s",
				ci, n, want, unit)
		}
	}
	if s.agg != nil {
		r.agg = s.agg
		r.Requests = s.agg.N()
		return nil
	}
	for _, lats := range s.perClient {
		r.Latencies = append(r.Latencies, lats...)
	}
	r.Requests = len(r.Latencies)
	return nil
}

// FanIn is the hub workload: every client host opens one connection to
// the server and issues request/response exchanges concurrently, so the
// server demultiplexes interleaved segments across a live connection
// population — the situation §3's PCB discussion is about, with real
// connections instead of the synthetic ExtraPCBs knob.
type FanIn struct {
	Size     int // request and response payload bytes (default 200)
	Requests int // measured requests per client (default 20)
	Warmup   int // unmeasured requests per client (default 2)
	// Stagger spaces client start times: client i connects at i×Stagger
	// of virtual time. Zero — the default, and the golden-output
	// setting — starts every client at time zero, an unmetered SYN
	// storm; at thousands of hosts a stagger in the RTT range keeps the
	// handshake backlog from collapsing into retransmission cascades.
	Stagger sim.Time
	// Stats selects the latency aggregation: the zero value retains
	// every observation (exact quantiles, required for golden outputs);
	// Streaming folds latencies into constant-memory estimators, the
	// 10,000-host setting.
	Stats stats.Config
	// Cross, when non-nil, runs heavy-tailed background flows beside the
	// measured clients (see CrossTraffic) — the loaded regime. Cross
	// flows share client adapters and the server's CPU but connect to
	// their own sink port, so they contend without being measured.
	Cross *CrossTraffic
	// Transport selects the measured connections' transport: "tcp" (the
	// default) or "rudp", the reliable-UDP rival stack (internal/rudp).
	// Cross traffic always rides TCP either way.
	Transport string
	// Faults schedules deterministic fault events against the topology
	// before traffic starts (see sim.FaultSchedule): link flaps stall
	// clients behind retransmission backoff without failing them. The
	// sharded path accepts only the shard-safe kinds (link flips).
	Faults sim.FaultSchedule
}

// Name implements Generator.
func (FanIn) Name() string { return "fanin" }

// Run implements Generator.
func (g FanIn) Run(l *lab.Lab) (*Result, error) {
	size, reqs, warm := defInt(g.Size, 200), defInt(g.Requests, 20), defInt(g.Warmup, 2)
	if err := checkTransport(g.Transport, size); err != nil {
		return nil, err
	}
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "fanin"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	if len(g.Faults) > 0 {
		if err := l.ScheduleFaults(g.Faults); err != nil {
			return nil, err
		}
	}
	wd := armWatchdog(l)
	startTrace(l)
	if g.Transport == TransportRUDP {
		e, err := rudp.Listen(l.Hosts[0].Kern, l.Hosts[0].UDP, Port)
		if err != nil {
			return nil, err
		}
		l.Env.Spawn("server.fanin",
			&rudpAcceptLoopFrame{e: e, env: l.Env, n: clients})
	} else {
		ln, err := l.Hosts[0].TCP.Listen(Port)
		if err != nil {
			return nil, err
		}
		l.Env.Spawn("server.fanin", &acceptLoopFrame{
			ln: ln, n: clients,
			accepted: func(i int, op *tcp.AcceptOp) bool {
				op.C.SetNoDelay(true)
				l.Env.Spawn(fmt.Sprintf("server.fanin.conn%d", i),
					&serveEchoFrame{so: op.So})
				return true
			},
		})
	}
	if g.Cross != nil {
		if err := g.Cross.spawn(l, fail); err != nil {
			return nil, err
		}
	}

	sink := newLatSink(clients, g.Stats)
	sink.wd = wd
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		host := l.Hosts[ci+1]
		if g.Transport == TransportRUDP {
			l.Env.Spawn(fmt.Sprintf("client%d.fanin", ci), &rudpFanInClientFrame{
				host: host, ci: ci, si: ci, size: size, warm: warm, reqs: reqs,
				startAt: sim.Time(ci) * g.Stagger,
				sink:    sink, last: &last, r: r, fail: fail,
			})
			continue
		}
		l.Env.Spawn(fmt.Sprintf("client%d.fanin", ci), &fanInClientFrame{
			host: host, ci: ci, si: ci, size: size, warm: warm, reqs: reqs,
			startAt: sim.Time(ci) * g.Stagger,
			sink:    sink, last: &last, r: r, fail: fail,
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	if err := sink.finish(r, reqs, "requests"); err != nil {
		return nil, err
	}
	r.Bytes = int64(r.Requests) * int64(size) * 2
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// Churn is the open/close storm: every client host repeatedly opens a
// connection to the server, performs one request/response exchange, and
// closes — real PCB insert and delete at both ends, with TIME_WAIT
// entries accumulating ahead of live connections on the BSD
// head-inserted list. One measured operation is a full cycle from
// connect to response.
type Churn struct {
	Conns int // connection cycles per client (default 10)
	Size  int // payload bytes exchanged per connection (default 64)
	// Stats selects the latency aggregation (see FanIn.Stats).
	Stats stats.Config
}

// Name implements Generator.
func (Churn) Name() string { return "churn" }

// Run implements Generator.
func (g Churn) Run(l *lab.Lab) (*Result, error) {
	conns, size := defInt(g.Conns, 10), defInt(g.Size, 64)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "churn"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	wd := armWatchdog(l)
	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	l.Env.Spawn("server.churn", &acceptLoopFrame{
		ln: ln, n: clients * conns,
		accepted: func(i int, op *tcp.AcceptOp) bool {
			op.C.SetNoDelay(true)
			l.Env.Spawn(fmt.Sprintf("server.churn.conn%d", i),
				&serveEchoFrame{so: op.So})
			return true
		},
	})

	sink := newLatSink(clients, g.Stats)
	sink.wd = wd
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		host := l.Hosts[ci+1]
		l.Env.Spawn(fmt.Sprintf("client%d.churn", ci), &churnClientFrame{
			host: host, ci: ci, si: ci, size: size, conns: conns,
			sink: sink, last: &last, r: r, fail: fail,
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	if err := sink.finish(r, conns, "cycles"); err != nil {
		return nil, err
	}
	r.Bytes = int64(r.Requests) * int64(size) * 2
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// Bulk is the one-way throughput workload: every client streams Bytes to
// the server and closes; the measured latency of one operation is the
// time from the client's first write to the server consuming the final
// byte (EOF), so it includes delivery, not just buffering.
type Bulk struct {
	Bytes int // payload per client (default 65536)
	Chunk int // client write size (default 8192)
}

// Name implements Generator.
func (Bulk) Name() string { return "bulk" }

// Run implements Generator.
func (g Bulk) Run(l *lab.Lab) (*Result, error) {
	total, chunk := defInt(g.Bytes, 65536), defInt(g.Chunk, 8192)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "bulk"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	starts := make([]sim.Time, clients)
	dones := make([]sim.Time, clients)
	received := make([]int, clients)

	wd := armWatchdog(l)
	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	// Connections may be accepted in any order (loss can delay one
	// client's handshake past another's), so the accepted connection's
	// remote address — not the accept order — identifies the transfer.
	l.Env.Spawn("server.bulk", &acceptLoopFrame{
		ln: ln, n: clients,
		accepted: func(_ int, op *tcp.AcceptOp) bool {
			i := int(op.C.Key().RemoteAddr - lab.HostAddr(1))
			if i < 0 || i >= clients {
				fail(fmt.Errorf("workload: bulk connection from unexpected address %#x",
					op.C.Key().RemoteAddr))
				return false
			}
			l.Env.Spawn(fmt.Sprintf("server.bulk.conn%d", i),
				&bulkConnFrame{so: op.So, i: i, dones: dones,
					received: received, fail: fail, wd: wd})
			return true
		},
	})

	for ci := 0; ci < clients; ci++ {
		host := l.Hosts[ci+1]
		l.Env.Spawn(fmt.Sprintf("client%d.bulk", ci), &bulkClientFrame{
			host: host, ci: ci, total: total, chunk: chunk,
			starts: starts, fail: fail,
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		if received[ci] != total {
			r.Errors++
		}
		r.Latencies = append(r.Latencies, dones[ci]-starts[ci])
		r.Bytes += int64(received[ci])
		if dones[ci] > last {
			last = dones[ci]
		}
	}
	r.Requests = clients
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// acceptLoopFrame accepts n connections, invoking the accepted callback
// (which typically spawns a per-connection server process) for each.
// The callback returns false to abandon the loop after recording an
// error. A failed accept — the listener died under it when its host
// crashed — ends the loop; a restart supervisor spawns the successor.
type acceptLoopFrame struct {
	ln       *tcp.Listener
	n        int
	accepted func(i int, op *tcp.AcceptOp) bool

	pc int
	i  int
	op *tcp.AcceptOp
}

// Step drives the accept loop.
func (f *acceptLoopFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // accept the next connection
			if f.i >= f.n {
				p.Return()
				return
			}
			f.pc = 1
			f.op = f.ln.Accept(p)
			return
		case 1: // hand it to the callback
			op := f.op
			f.op = nil
			if op.Err != nil {
				p.Return()
				return
			}
			if !f.accepted(f.i, op) {
				p.Return()
				return
			}
			f.i++
			f.pc = 0
		}
	}
}

// serveEchoFrame is the streaming echo handler shared by the fan-in and
// churn servers: write back whatever arrives, until EOF, then close.
type serveEchoFrame struct {
	so *sock.Socket

	pc   int
	buf  []byte
	n    int
	recv *sock.RecvOp
	send *sock.SendOp
}

// Step drives the echo handler.
func (f *serveEchoFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // read the next chunk
			if f.buf == nil {
				f.buf = make([]byte, 16384)
			}
			f.pc = 1
			f.recv = f.so.Recv(p, f.buf)
			return
		case 1: // echo it back, or close on EOF/error
			if f.recv.Err != nil || f.recv.N == 0 {
				f.pc = 3
				f.so.Close(p)
				return
			}
			f.n = f.recv.N
			f.recv = nil
			f.pc = 2
			f.send = f.so.Send(p, f.buf[:f.n])
			return
		case 2: // next chunk, unless the write failed
			if f.send.Err != nil {
				p.Return()
				return
			}
			f.send = nil
			f.pc = 0
		case 3: // closed; done
			p.Return()
			return
		}
	}
}

// exchangeFrame sends msg and receives exactly len(buf) bytes back; Err
// carries the failure, if any, once the frame returns.
type exchangeFrame struct {
	so       *sock.Socket
	msg, buf []byte

	pc    int
	total int
	recv  *sock.RecvOp
	send  *sock.SendOp

	Err error
}

// Step drives the request/response exchange.
func (f *exchangeFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // write the request
			f.pc = 1
			f.send = f.so.Send(p, f.msg)
			return
		case 1: // request written; read the response
			if f.send.Err != nil {
				f.Err = f.send.Err
				p.Return()
				return
			}
			f.send = nil
			f.total = 0
			f.pc = 2
		case 2: // read loop head
			if f.total >= len(f.buf) {
				p.Return()
				return
			}
			f.pc = 3
			f.recv = f.so.Recv(p, f.buf[f.total:])
			return
		case 3: // fold in one read's result
			if f.recv.Err != nil {
				f.Err = f.recv.Err
				p.Return()
				return
			}
			if f.recv.N == 0 {
				f.Err = fmt.Errorf("workload: unexpected EOF after %d of %d bytes",
					f.total, len(f.buf))
				p.Return()
				return
			}
			f.total += f.recv.N
			f.recv = nil
			f.pc = 2
		}
	}
}

// fanInClientFrame is one fan-in client: wait out its stagger slot,
// connect once, then run warm+reqs request/response exchanges, measuring
// the post-warmup ones. All simulation state flows through p.Env() —
// the client's own shard in a sharded run, the lab's only env serially
// — and all shared accumulators (sink slot si, last, r, fail) are
// per-client in sharded runs, so the frame itself is shard-agnostic.
type fanInClientFrame struct {
	host             *lab.Host
	ci, si           int
	size, warm, reqs int
	startAt          sim.Time
	sink             *latSink
	last             *sim.Time
	r                *Result
	fail             func(error)

	pc       int
	conn     *tcp.ConnectOp
	so       *sock.Socket
	msg, buf []byte
	i        int
	start    sim.Time
	ex       *exchangeFrame
}

// Step drives the fan-in client.
func (f *fanInClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // wait for the stagger slot (a no-op at the default 0)
			f.pc = 1
			if f.startAt > 0 && !p.SleepUntil(f.startAt) {
				return
			}
		case 1: // connect to the server
			f.pc = 2
			f.conn = f.host.TCP.Connect(p, lab.HostAddr(0), Port)
			return
		case 2: // configure and prepare buffers
			if f.conn.Err != nil {
				f.fail(f.conn.Err)
				p.Return()
				return
			}
			f.so = f.conn.So
			f.conn.C.SetNoDelay(true)
			f.conn = nil
			f.msg = make([]byte, f.size)
			p.Env().RNG().Fill(f.msg)
			f.buf = make([]byte, f.size)
			f.pc = 3
		case 3: // request loop head
			if f.i >= f.warm+f.reqs {
				f.pc = 5
				f.so.Close(p)
				return
			}
			f.start = p.Env().Now()
			f.ex = &exchangeFrame{so: f.so, msg: f.msg, buf: f.buf}
			f.pc = 4
			p.Call(f.ex)
			return
		case 4: // fold in one exchange's result
			if f.ex.Err != nil {
				f.fail(fmt.Errorf("client %d request %d: %w", f.ci, f.i, f.ex.Err))
				p.Return()
				return
			}
			f.ex = nil
			if f.i >= f.warm {
				now := p.Env().Now()
				lat := now - f.start
				f.sink.record(f.si, lat, now)
				if now > *f.last {
					*f.last = now
				}
				if !bytesEqual(f.buf, f.msg) {
					f.r.Errors++
				}
			}
			f.i++
			f.pc = 3
		case 5: // closed; done
			p.Return()
			return
		}
	}
}

// churnClientFrame is one churn client: each cycle connects, exchanges
// once, and closes; the whole cycle is the measured operation. Like the
// fan-in client it is shard-agnostic: p.Env() and per-client
// accumulators are all it touches.
type churnClientFrame struct {
	host        *lab.Host
	ci, si      int
	size, conns int
	sink        *latSink
	last        *sim.Time
	r           *Result
	fail        func(error)

	pc       int
	conn     *tcp.ConnectOp
	so       *sock.Socket
	msg, buf []byte
	k        int
	start    sim.Time
	ex       *exchangeFrame
}

// Step drives the churn client.
func (f *churnClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // prepare buffers
			f.msg = make([]byte, f.size)
			p.Env().RNG().Fill(f.msg)
			f.buf = make([]byte, f.size)
			f.pc = 1
		case 1: // cycle head: connect
			if f.k >= f.conns {
				p.Return()
				return
			}
			f.start = p.Env().Now()
			f.pc = 2
			f.conn = f.host.TCP.Connect(p, lab.HostAddr(0), Port)
			return
		case 2: // connected; run the exchange
			if f.conn.Err != nil {
				f.fail(fmt.Errorf("client %d cycle %d: %w", f.ci, f.k, f.conn.Err))
				p.Return()
				return
			}
			f.so = f.conn.So
			f.conn.C.SetNoDelay(true)
			f.conn = nil
			f.ex = &exchangeFrame{so: f.so, msg: f.msg, buf: f.buf}
			f.pc = 3
			p.Call(f.ex)
			return
		case 3: // record the cycle and close
			if f.ex.Err != nil {
				f.fail(fmt.Errorf("client %d cycle %d: %w", f.ci, f.k, f.ex.Err))
				p.Return()
				return
			}
			f.ex = nil
			now := p.Env().Now()
			lat := now - f.start
			f.sink.record(f.si, lat, now)
			if now > *f.last {
				*f.last = now
			}
			if !bytesEqual(f.buf, f.msg) {
				f.r.Errors++
			}
			f.pc = 4
			f.so.Close(p)
			return
		case 4: // next cycle
			f.so = nil
			f.k++
			f.pc = 1
		}
	}
}

// bulkConnFrame is the bulk server's per-connection sink: drain until
// EOF, stamping the completion time.
type bulkConnFrame struct {
	so       *sock.Socket
	i        int
	dones    []sim.Time
	received []int
	fail     func(error)
	wd       *sim.Watchdog

	pc   int
	buf  []byte
	recv *sock.RecvOp
}

// Step drives the sink.
func (f *bulkConnFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // read the next chunk
			if f.buf == nil {
				f.buf = make([]byte, 16384)
			}
			f.pc = 1
			f.recv = f.so.Recv(p, f.buf)
			return
		case 1: // account for it, or finish at EOF
			if f.recv.Err != nil {
				f.fail(f.recv.Err)
				p.Return()
				return
			}
			if f.recv.N == 0 {
				f.dones[f.i] = p.Env().Now()
				f.recv = nil
				f.pc = 2
				f.so.Close(p)
				return
			}
			f.received[f.i] += f.recv.N
			if f.wd != nil {
				f.wd.Progress()
			}
			f.recv = nil
			f.pc = 0
		case 2: // closed; done
			p.Return()
			return
		}
	}
}

// bulkClientFrame streams total bytes to the server in chunk-sized
// writes, then closes.
type bulkClientFrame struct {
	host         *lab.Host
	ci           int
	total, chunk int
	starts       []sim.Time
	fail         func(error)

	pc   int
	conn *tcp.ConnectOp
	so   *sock.Socket
	msg  []byte
	sent int
	n    int
	send *sock.SendOp
}

// Step drives the source.
func (f *bulkClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // connect
			f.pc = 1
			f.conn = f.host.TCP.Connect(p, lab.HostAddr(0), Port)
			return
		case 1: // prepare the payload and start the clock
			if f.conn.Err != nil {
				f.fail(f.conn.Err)
				p.Return()
				return
			}
			f.so = f.conn.So
			f.conn = nil
			f.msg = make([]byte, f.chunk)
			p.Env().RNG().Fill(f.msg)
			f.starts[f.ci] = p.Env().Now()
			f.sent = 0
			f.pc = 2
		case 2: // write loop head
			if f.sent >= f.total {
				f.pc = 4
				f.so.Close(p)
				return
			}
			f.n = f.chunk
			if f.n > f.total-f.sent {
				f.n = f.total - f.sent
			}
			f.pc = 3
			f.send = f.so.Send(p, f.msg[:f.n])
			return
		case 3: // fold in one write's result
			if f.send.Err != nil {
				f.fail(f.send.Err)
				p.Return()
				return
			}
			f.send = nil
			f.sent += f.n
			f.pc = 2
		case 4: // closed; done
			p.Return()
			return
		}
	}
}

func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
