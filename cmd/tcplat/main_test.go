package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-size", "200", "-iters", "4", "-warmup", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ATM/standard/200B") {
		t.Fatalf("missing cell row:\n%s", out)
	}
}

func TestRunSweepParallelMatchesSerial(t *testing.T) {
	args := []string{"-sweep", "-iters", "3", "-warmup", "1", "-seed", "42"}
	var serial, parallel bytes.Buffer
	if err := run(append(args, "-parallel", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-parallel", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("sweep output diverged between worker counts:\n--- serial\n%s\n--- parallel\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunExtGridJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-grid", "ext", "-iters", "3", "-warmup", "1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var outs []struct {
		Label  string  `json:"label"`
		MeanUS float64 `json:"mean_us"`
	}
	if err := json.Unmarshal(buf.Bytes(), &outs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(outs) != 36 {
		t.Fatalf("extended grid produced %d cells, want 36", len(outs))
	}
	for _, o := range outs {
		if o.MeanUS <= 0 {
			t.Fatalf("cell %s measured nothing", o.Label)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-link", "tokenring"},
		{"-mode", "double"},
		{"-grid", "bogus"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
