package trace

import (
	"encoding/json"
	"strings"
)

// chromeEvent is one record of the Chrome trace_event format (the
// "JSON Array Format" consumed by chrome://tracing and Perfetto).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace_event container.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders a merged event stream in Chrome trace_event
// format: one process per host (named by a process_name metadata
// record), duration events ("ph":"X") for spans, thread-scoped instant
// events ("ph":"i") for point crossings, and the owning packet identity
// in each event's args. The output is deterministic: hosts take process
// ids in order of first appearance and args maps marshal with sorted
// keys, so byte-identical inputs produce byte-identical bytes.
func ChromeTrace(evs []HostEvent) ([]byte, error) {
	pids := make(map[string]int)
	var file chromeFile
	for _, e := range evs {
		pid, ok := pids[e.Host]
		if !ok {
			pid = len(pids) + 1
			pids[e.Host] = pid
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  pid,
				Args: map[string]any{"name": e.Host},
			})
		}
		ce := chromeEvent{
			Name: leafName(e.Event),
			Cat:  chromeCategory(e.Event),
			Ts:   e.At.Micros(),
			Pid:  pid,
			Args: map[string]any{},
		}
		if !e.ID.IsZero() {
			ce.Args["packet"] = e.ID.String()
		}
		if e.Len != 0 {
			ce.Args["len"] = e.Len
		}
		if e.Aux != 0 {
			ce.Args["aux"] = e.Aux
		}
		if len(ce.Args) == 0 {
			ce.Args = nil
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = e.Dur.Micros()
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		file.TraceEvents = append(file.TraceEvents, ce)
	}
	return json.MarshalIndent(&file, "", " ")
}

// chromeCategory groups kinds by their layer family (the component
// before the first dot; EvCPU events categorize as "cpu").
func chromeCategory(e Event) string {
	k := string(e.Kind)
	if i := strings.IndexByte(k, '.'); i > 0 {
		return k[:i]
	}
	return k
}
