// Command breakdown regenerates the paper's per-layer latency
// decompositions: Table 2 (transmit side) and Table 3 (receive side),
// with the published values printed alongside for comparison. The
// per-size measurements shard across a worker pool (-parallel); -seed
// derives deterministic per-trial seeds and -json emits the structured
// results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "breakdown:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("breakdown", flag.ContinueOnError)
	var (
		side     = fs.String("side", "both", "which table: tx, rx, or both")
		iters    = fs.Int("iters", 100, "measured iterations per size")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		seed     = fs.Uint64("seed", 0, "base seed for per-trial RNG derivation (0 = defaults)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *side != "tx" && *side != "rx" && *side != "both" {
		return fmt.Errorf("unknown -side %q (want tx, rx, or both)", *side)
	}
	opts := core.Options{
		Iterations: *iters,
		Warmup:     8,
		Parallel:   *parallel,
		BaseSeed:   *seed,
	}

	var results []*core.BreakdownResult
	if *side == "tx" || *side == "both" {
		r, err := core.RunTable2(opts)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	if *side == "rx" || *side == "both" {
		r, err := core.RunTable3(opts)
		if err != nil {
			return err
		}
		results = append(results, r)
	}

	if *jsonOut {
		b, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
	for _, r := range results {
		fmt.Fprintln(w, r.Render())
	}
	return nil
}
