package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FanInResult is the fan-in/churn study: server-side request latency
// percentiles versus client count and PCB organization, measured on live
// connection populations through the workload engine. It is the §3
// demultiplexing argument run forward: as the concurrent population
// grows, the linear list's per-entry search cost surfaces in the
// latency distribution while the hash organization stays flat.
type FanInResult struct {
	// Outcomes come back in grid order: workload (fan-in, churn) major,
	// then client count, then PCB organization (list, hash).
	Outcomes []runner.WorkloadOutcome
}

// FanInClientCounts is the default client-count axis.
var FanInClientCounts = []int{1, 4, 8, 16}

// FanInTrials expands the study grid in a fixed nesting order (workload,
// client count, organization), which fixes each cell's index and
// therefore its derived seed.
func FanInTrials(clientCounts []int, reqsPerClient int) []runner.WorkloadTrial {
	if reqsPerClient <= 0 {
		reqsPerClient = 12
	}
	var out []runner.WorkloadTrial
	for _, wl := range []string{"fanin", "churn"} {
		for _, clients := range clientCounts {
			for _, hash := range []bool{false, true} {
				org := "list"
				if hash {
					org = "hash"
				}
				var gen workload.Generator
				if wl == "fanin" {
					gen = workload.FanIn{Size: 200, Requests: reqsPerClient, Warmup: 2}
				} else {
					gen = workload.Churn{Conns: reqsPerClient, Size: 64}
				}
				out = append(out, runner.WorkloadTrial{
					Label: fmt.Sprintf("%s/%dc/%s", wl, clients, org),
					Cfg:   lab.Config{Link: lab.LinkATM, HashPCBs: hash},
					Hosts: clients + 1,
					Gen:   gen,
				})
			}
		}
	}
	return out
}

// RunFanInStudy runs the study grid through the sweep engine. Every cell
// runs on its own pristine topology (reused across a worker's cells via
// lab.Lab.Reset) with a grid-position-derived seed, so results are
// bit-identical at any worker count.
func RunFanInStudy(clientCounts []int, reqsPerClient int, o Options) (*FanInResult, error) {
	o = o.normalize()
	if len(clientCounts) == 0 {
		clientCounts = FanInClientCounts
	}
	trials := FanInTrials(clientCounts, reqsPerClient)
	outs, err := runner.RunWorkloadSweep(context.Background(), trials, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		if out.Error != "" {
			return nil, fmt.Errorf("cell %s: %s", out.Label, out.Error)
		}
	}
	return &FanInResult{Outcomes: outs}, nil
}

// Render formats the study with the hash-versus-list comparison the §3
// discussion predicts.
func (r *FanInResult) Render() string {
	var b strings.Builder
	b.WriteString(runner.RenderWorkloadOutcomes(
		"Extension: fan-in/churn study (live PCB populations, client count × organization)",
		r.Outcomes))
	// Summarize the list-to-hash improvement at the largest fan-in cell.
	var list, hash *runner.WorkloadOutcome
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Workload != "fanin" {
			continue
		}
		if strings.HasSuffix(o.Label, "/list") {
			if list == nil || o.Hosts > list.Hosts {
				list = o
			}
		}
		if strings.HasSuffix(o.Label, "/hash") {
			if hash == nil || o.Hosts > hash.Hosts {
				hash = o
			}
		}
	}
	if list != nil && hash != nil && list.Hosts == hash.Hosts {
		fmt.Fprintf(&b, "At %d clients the hash organization cuts mean demux latency %.1f%% (p99: %.0f -> %.0f µs),\n",
			list.Hosts-1, stats.PercentDecrease(list.MeanMicros, hash.MeanMicros),
			list.P99Micros, hash.P99Micros)
		b.WriteString("the paper's §3 prediction under a live connection population.\n")
	}
	return b.String()
}
