package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/cost"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win, mss uint16, alt bool) bool {
		h := Header{
			SrcPort: sp, DstPort: dp,
			Seq: Seq(seq), Ack: Seq(ack),
			Flags: flags & 0x3f, Win: win, MSS: mss,
		}
		if alt {
			h.AltCksum = AltCksumNone
		}
		b := make([]byte, 28)
		n := h.Marshal(b)
		got, off, err := Parse(b[:n])
		if err != nil || off != n {
			return false
		}
		got.Cksum = h.Cksum // checksum written separately
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderParseErrors(t *testing.T) {
	if _, _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	b := make([]byte, 20)
	(&Header{}).Marshal(b)
	b[12] = 2 << 4 // data offset 8 bytes < 20
	if _, _, err := Parse(b); err == nil {
		t.Error("bad offset accepted")
	}
	b2 := make([]byte, 24)
	(&Header{MSS: 100}).Marshal(b2)
	b2[21] = 3 // malformed MSS option length
	if _, _, err := Parse(b2); err == nil {
		t.Error("malformed option accepted")
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(FlagSYN | FlagACK); got != "SYN|ACK" {
		t.Fatalf("FlagString = %q", got)
	}
	if got := FlagString(0); got != "none" {
		t.Fatalf("FlagString(0) = %q", got)
	}
}

func TestSeqArithmetic(t *testing.T) {
	a := Seq(0xfffffff0)
	b := a.Add(0x20) // wraps
	if !a.Lt(b) || !b.Gt(a) || !a.Leq(b) || !b.Geq(a) {
		t.Fatal("wrapped comparison broken")
	}
	if b.Diff(a) != 0x20 {
		t.Fatalf("Diff = %d", b.Diff(a))
	}
	if maxSeq(a, b) != b || minSeq(a, b) != a {
		t.Fatal("max/min broken across wrap")
	}
	if !a.Leq(a) || !a.Geq(a) || a.Lt(a) || a.Gt(a) {
		t.Fatal("reflexive comparisons broken")
	}
}

func TestSeqProperty(t *testing.T) {
	f := func(x uint32, d uint16) bool {
		a := Seq(x)
		b := a.Add(int(d))
		if d == 0 {
			return a == b
		}
		return a.Lt(b) && b.Diff(a) == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// pair is a two-host ATM testbed at the TCP level.
type pair struct {
	env    *sim.Env
	ka, kb *kern.Kernel
	sa, sb *Stack
	aa, ab *atm.Adapter
}

func newPair(t *testing.T, mode cost.ChecksumMode) *pair {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	p := &pair{env: env}
	p.ka = kern.New(env, model, "a")
	p.kb = kern.New(env, model, "b")
	ipa := ip.NewStack(p.ka, 1)
	ipb := ip.NewStack(p.kb, 2)
	p.aa, p.ab = atm.NewAdapter(p.ka), atm.NewAdapter(p.kb)
	atm.Connect(p.aa, p.ab)
	da := atm.NewDriver(p.ka, p.aa, ipa)
	db := atm.NewDriver(p.kb, p.ab, ipb)
	da.Mode, db.Mode = mode, mode
	p.sa = NewStack(p.ka, ipa)
	p.sb = NewStack(p.kb, ipb)
	p.sa.Mode, p.sb.Mode = mode, mode
	return p
}

func TestConnectEstablishes(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var clientConn, serverConn *Conn
	p.env.Spawn("server", func(pr *sim.Proc) {
		_, serverConn = ln.Accept(pr)
	})
	p.env.Spawn("client", func(pr *sim.Proc) {
		_, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		clientConn = c
	})
	p.env.Run()
	if clientConn == nil || serverConn == nil {
		t.Fatal("handshake incomplete")
	}
	if clientConn.State() != StateEstablished || serverConn.State() != StateEstablished {
		t.Fatalf("states: %v / %v", clientConn.State(), serverConn.State())
	}
	// MSS negotiated from the ATM MTU.
	wantMSS := atm.MTU - ip.HeaderLen - HeaderLen
	if clientConn.MSS() != wantMSS || serverConn.MSS() != wantMSS {
		t.Fatalf("MSS %d/%d, want %d", clientConn.MSS(), serverConn.MSS(), wantMSS)
	}
}

func TestListenPortConflict(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	if _, err := p.sb.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sb.Listen(80); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

// transfer sends payload a→b and returns what b received.
func transfer(t *testing.T, p *pair, payload []byte, nodelay bool) []byte {
	t.Helper()
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	p.env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 4096)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(nodelay)
		if _, err := so.Send(pr, payload); err != nil {
			t.Error(err)
			return
		}
		so.Close(pr)
	})
	p.env.Run()
	return got
}

func TestTransferIntegritySizes(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1024, 1025, 4096, 8000, 20000, 60000} {
		p := newPair(t, cost.ChecksumStandard)
		payload := make([]byte, n)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: corrupted transfer (got %d bytes)", n, len(got))
		}
	}
}

func TestTransferIntegrityQuick(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		p := newPair(t, cost.ChecksumStandard)
		p.env.Seed(seed)
		payload := make([]byte, int(n)%20000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferAllChecksumModes(t *testing.T) {
	for _, mode := range []cost.ChecksumMode{
		cost.ChecksumStandard, cost.ChecksumIntegrated, cost.ChecksumNone,
	} {
		p := newPair(t, mode)
		payload := make([]byte, 10000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("mode %v: corrupted transfer", mode)
		}
	}
}

func TestRecoveryFromCellLoss(t *testing.T) {
	for _, mode := range []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone} {
		p := newPair(t, mode)
		p.ab.LossRate = 0.002
		p.env.Seed(11)
		payload := make([]byte, 60000)
		p.env.RNG().Fill(payload)
		got := transfer(t, p, payload, true)
		if !bytes.Equal(got, payload) {
			t.Fatalf("mode %v: loss recovery failed (%d/%d bytes)", mode, len(got), len(payload))
		}
		if p.aa.CellsDropped+p.ab.CellsDropped == 0 {
			t.Fatalf("mode %v: no loss injected; test vacuous", mode)
		}
		if p.sa.Stats.Retransmits == 0 {
			t.Fatalf("mode %v: no retransmissions despite loss", mode)
		}
	}
}

func TestChecksumDetectsCorruptionAALOff(t *testing.T) {
	// End-to-end argument in action: corrupt a cell payload. The AAL
	// CRC-10 catches it first (frame discarded), TCP retransmits, and
	// the data still arrives intact.
	p := newPair(t, cost.ChecksumStandard)
	dropped := false
	payload := make([]byte, 9000)
	p.env.RNG().Fill(payload)
	// Corrupt by dropping one cell mid-stream.
	p.env.At(2*sim.Millisecond, "sabotage", func() {
		if !dropped {
			p.ab.DropNext = true
			dropped = true
		}
	})
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("recovery after mid-stream cell loss failed")
	}
}

func TestFastPathFailsForRPC(t *testing.T) {
	// Echo (bidirectional) traffic: header prediction's data case must
	// essentially never hit for single-segment exchanges, because every
	// data segment carries a piggybacked ACK of new data (§3).
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const iters = 20
	p.env.Spawn("server", func(pr *sim.Proc) {
		so, c := ln.Accept(pr)
		c.SetNoDelay(true)
		buf := make([]byte, 64)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
			if _, err := so.Send(pr, buf[:n]); err != nil {
				return
			}
		}
	})
	p.env.Spawn("client", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(true)
		buf := make([]byte, 64)
		for i := 0; i < iters; i++ {
			so.Send(pr, buf)
			total := 0
			for total < 64 {
				n, _ := so.Recv(pr, buf[total:])
				total += n
			}
		}
		so.Close(pr)
	})
	p.env.Run()
	data := p.sa.Stats.FastPathData + p.sb.Stats.FastPathData
	if data > 2 {
		t.Errorf("fast path data hits = %d for RPC traffic, expected ~0", data)
	}
	if p.sa.Stats.SlowPath+p.sb.Stats.SlowPath < iters {
		t.Error("slow path barely used; predicates suspect")
	}
}

func TestFastPathSucceedsForBulk(t *testing.T) {
	// Unidirectional transfer: the receiver should take the data fast
	// path for most segments (§3's "two common cases of unidirectional
	// data transfer").
	p := newPair(t, cost.ChecksumStandard)
	payload := make([]byte, 200000)
	p.env.RNG().Fill(payload)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("bulk transfer corrupted")
	}
	if p.sb.Stats.FastPathData < 10 {
		t.Errorf("receiver fast-path data hits = %d, expected many", p.sb.Stats.FastPathData)
	}
}

func TestFastPathPureAck(t *testing.T) {
	// The pure-ACK fast path requires an unchanged advertised window, so
	// drive the clean case: sub-MSS stop-and-wait sends to a receiver
	// that drains its buffer completely before the delayed ACK fires.
	// Each such ACK arrives with the window back at the high-water mark —
	// unchanged — and must take the sender's fast path.
	p := newPair(t, cost.ChecksumStandard)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	p.env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 4096)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
		}
	})
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(true)
		msg := make([]byte, 512)
		for i := 0; i < rounds; i++ {
			if _, err := so.Send(pr, msg); err != nil {
				t.Error(err)
				return
			}
			// Wait out the peer's delayed ACK before the next send.
			pr.Sleep(300 * sim.Millisecond)
		}
		so.Close(pr)
	})
	p.env.Run()
	if p.sa.Stats.FastPathAck < rounds-1 {
		t.Errorf("sender fast-path ACK hits = %d, expected >= %d",
			p.sa.Stats.FastPathAck, rounds-1)
	}
}

func TestPredictionDisabledNeverFastPaths(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	p.sa.PredictionEnabled = false
	p.sb.PredictionEnabled = false
	payload := make([]byte, 100000)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("transfer corrupted")
	}
	if p.sa.Stats.FastPathData+p.sa.Stats.FastPathAck+
		p.sb.Stats.FastPathData+p.sb.Stats.FastPathAck != 0 {
		t.Fatal("fast path used despite prediction disabled")
	}
	if p.sa.Stats.PCBCacheHits+p.sb.Stats.PCBCacheHits != 0 {
		t.Fatal("PCB cache used despite prediction disabled")
	}
}

func TestNagleCoalesces(t *testing.T) {
	// With Nagle on, many tiny writes while an ACK is outstanding must
	// produce far fewer segments than writes.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const writes = 50
	var received int
	p.env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 4096)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
			received += n
		}
	})
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, _, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < writes; i++ {
			so.Send(pr, []byte{byte(i)})
		}
		so.Close(pr)
	})
	p.env.Run()
	if received != writes {
		t.Fatalf("received %d bytes, want %d", received, writes)
	}
	dataSegs := p.sa.Stats.SegsOut
	if dataSegs >= writes {
		t.Errorf("Nagle sent %d segments for %d 1-byte writes; expected coalescing", dataSegs, writes)
	}
}

func TestCloseHandshakeStates(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	var server, client *Conn
	var srvEOF bool
	p.env.Spawn("server", func(pr *sim.Proc) {
		so, c := ln.Accept(pr)
		server = c
		buf := make([]byte, 16)
		n, err := so.Recv(pr, buf)
		if err != nil || n != 0 {
			t.Errorf("expected EOF, got n=%d err=%v", n, err)
			return
		}
		srvEOF = true
		so.Close(pr) // passive close
	})
	p.env.Spawn("client", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		client = c
		so.Close(pr) // active close
	})
	p.env.Run()
	if !srvEOF {
		t.Fatal("server never saw EOF")
	}
	if server.State() != StateClosed {
		t.Fatalf("server state %v, want CLOSED (after LAST_ACK)", server.State())
	}
	// The active closer passes through TIME_WAIT and is released by the
	// 2MSL timer, which has fired by the time Run drains the queue.
	if client.State() != StateClosed {
		t.Fatalf("client state %v, want CLOSED after TIME_WAIT", client.State())
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	payload := make([]byte, 50000)
	transfer(t, p, payload, true)
	// Find the client conn's SRTT via the stack: use a fresh echo-style
	// check instead; simplest: srtt must be positive and on the order of
	// the simulated RTT (hundreds of µs to a few ms).
	// The transfer helper closes the conn, so measure via a new pair.
	p2 := newPair(t, cost.ChecksumStandard)
	ln, _ := p2.sb.Listen(80)
	p2.env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 4096)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
		}
	})
	var srtt sim.Time
	p2.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p2.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(true)
		for i := 0; i < 20; i++ {
			so.Send(pr, make([]byte, 1000))
			pr.Sleep(5 * sim.Millisecond)
		}
		srtt = c.SRTT()
		so.Close(pr)
	})
	p2.env.Run()
	if srtt <= 0 || srtt > 50*sim.Millisecond {
		t.Fatalf("SRTT = %v, implausible", srtt)
	}
}

func TestStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" {
		t.Fatal("state name broken")
	}
	if State(99).String() == "" {
		t.Fatal("unknown state unnamed")
	}
}

func TestAltChecksumNegotiation(t *testing.T) {
	// Both ends configured for elimination: negotiated off.
	p := newPair(t, cost.ChecksumNone)
	payload := make([]byte, 5000)
	p.env.RNG().Fill(payload)
	got := transfer(t, p, payload, true)
	if !bytes.Equal(got, payload) {
		t.Fatal("negotiated-off transfer corrupted")
	}
	if p.sa.Stats.ChecksumErrors+p.sb.Stats.ChecksumErrors != 0 {
		t.Fatal("checksum errors on a negotiated-off connection")
	}
}

func TestAltChecksumMismatchInteroperates(t *testing.T) {
	// Client wants elimination, server does not: the option must not
	// take effect, segments stay checksummed, and data flows — the
	// failure mode this guards against is a silent blackhole where one
	// end sends zero checksums the other drops.
	p := newPair(t, cost.ChecksumStandard)
	p.sa.Mode = cost.ChecksumNone // client offers; server stays standard
	payload := make([]byte, 5000)
	p.env.RNG().Fill(payload)
	ln, err := p.sb.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var serverConn *Conn
	p.env.Spawn("rx", func(pr *sim.Proc) {
		so, c := ln.Accept(pr)
		serverConn = c
		buf := make([]byte, 4096)
		for {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	var clientConn *Conn
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		clientConn = c
		c.SetNoDelay(true)
		so.Send(pr, payload)
		so.Close(pr)
	})
	p.env.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("mismatched-mode transfer corrupted or blackholed")
	}
	if clientConn.ChecksumEliminated() || serverConn.ChecksumEliminated() {
		t.Fatal("one-sided offer negotiated the checksum off")
	}
	if p.sa.Stats.ChecksumErrors+p.sb.Stats.ChecksumErrors != 0 {
		t.Fatal("checksum errors under mismatch: zero-checksum segments leaked")
	}
}

func TestAltChecksumNegotiatedFlag(t *testing.T) {
	p := newPair(t, cost.ChecksumNone)
	ln, _ := p.sb.Listen(80)
	var sc, cc *Conn
	p.env.Spawn("s", func(pr *sim.Proc) { _, sc = ln.Accept(pr) })
	p.env.Spawn("c", func(pr *sim.Proc) {
		_, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
		}
		cc = c
	})
	p.env.Run()
	if cc == nil || sc == nil || !cc.ChecksumEliminated() || !sc.ChecksumEliminated() {
		t.Fatal("both-ends offer did not negotiate the checksum off")
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() int64 {
		p := newPair(t, cost.ChecksumStandard)
		p.env.Seed(5)
		payload := make([]byte, 30000)
		p.env.RNG().Fill(payload)
		transfer(t, p, payload, true)
		return int64(p.env.Now())
	}
	if run() != run() {
		t.Fatal("same seed produced different completion times")
	}
}

func TestMultipleConnectionsDemux(t *testing.T) {
	// Three concurrent connections to one listener: the PCB table must
	// demultiplex them and each stream must arrive intact.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	const conns = 3
	payloads := make([][]byte, conns)
	results := make([][]byte, conns)
	for i := range payloads {
		payloads[i] = make([]byte, 3000+i*1000)
		p.env.RNG().Fill(payloads[i])
	}
	for i := 0; i < conns; i++ {
		p.env.Spawn("srv", func(pr *sim.Proc) {
			so, _ := ln.Accept(pr)
			buf := make([]byte, 4096)
			var got []byte
			for {
				n, err := so.Recv(pr, buf)
				if err != nil || n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			// Identify the stream by its first byte tag.
			results[got[0]] = got
		})
	}
	for i := 0; i < conns; i++ {
		i := i
		payloads[i][0] = byte(i)
		p.env.Spawn("cli", func(pr *sim.Proc) {
			pr.Sleep(sim.Time(i) * 3 * sim.Millisecond) // stagger
			so, c, err := p.sa.Connect(pr, 2, 80)
			if err != nil {
				t.Error(err)
				return
			}
			c.SetNoDelay(true)
			so.Send(pr, payloads[i])
			so.Close(pr)
		})
	}
	p.env.Run()
	for i := range payloads {
		if !bytes.Equal(results[i], payloads[i]) {
			t.Fatalf("stream %d corrupted or crossed (%d vs %d bytes)",
				i, len(results[i]), len(payloads[i]))
		}
	}
	if p.sb.Table.Len() < 1 {
		t.Fatal("PCB table empty")
	}
}

func TestPCBCacheThrashAcrossConnections(t *testing.T) {
	// Interleaved traffic on two connections defeats the single-entry
	// cache; hit rate must be well below a single-connection run.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	for i := 0; i < 2; i++ {
		p.env.Spawn("srv", func(pr *sim.Proc) {
			so, c := ln.Accept(pr)
			c.SetNoDelay(true)
			buf := make([]byte, 64)
			for {
				n, err := so.Recv(pr, buf)
				if err != nil || n == 0 {
					return
				}
				so.Send(pr, buf[:n])
			}
		})
	}
	done := 0
	for i := 0; i < 2; i++ {
		p.env.Spawn("cli", func(pr *sim.Proc) {
			so, c, err := p.sa.Connect(pr, 2, 80)
			if err != nil {
				t.Error(err)
				return
			}
			c.SetNoDelay(true)
			buf := make([]byte, 64)
			for j := 0; j < 15; j++ {
				so.Send(pr, buf)
				total := 0
				for total < 64 {
					n, _ := so.Recv(pr, buf[total:])
					total += n
				}
			}
			so.Close(pr)
			done++
		})
	}
	p.env.Run()
	if done != 2 {
		t.Fatal("clients did not finish")
	}
	lookups := p.sb.Stats.PCBCacheHits + p.sb.Stats.PCBListSearched
	if lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	// With two interleaved connections some lookups must miss the cache.
	if p.sb.Stats.PCBListSearched == 0 {
		t.Error("cache never missed despite interleaved connections")
	}
}

func TestDelayedAckTimerFires(t *testing.T) {
	// A receiver whose application never responds must still ACK within
	// the 200 ms fast-timer bound, or the sender would retransmit.
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	p.env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 64)
		so.Recv(pr, buf)
		// Read but never reply: only the delayed-ACK timer can ACK.
	})
	var acked bool
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetNoDelay(true)
		so.Send(pr, make([]byte, 64))
		pr.Sleep(400 * sim.Millisecond)
		acked = c.sndUna == c.sndMax
	})
	p.env.RunUntil(2 * sim.Second)
	if !acked {
		t.Fatal("data not acknowledged within the delayed-ACK bound")
	}
	if p.sb.Stats.DelayedAcks == 0 {
		t.Fatal("delayed-ACK counter not incremented")
	}
	if p.sa.Stats.Retransmits != 0 {
		t.Fatal("sender retransmitted despite timely delayed ACK")
	}
}

func TestRSTDropsConnection(t *testing.T) {
	p := newPair(t, cost.ChecksumStandard)
	ln, _ := p.sb.Listen(80)
	var srvConn *Conn
	p.env.Spawn("rx", func(pr *sim.Proc) {
		_, srvConn = ln.Accept(pr)
	})
	var clientErr error
	p.env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := p.sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		pr.Sleep(5 * sim.Millisecond)
		// Forge a RST from the server side by injecting it directly
		// into the client's input path.
		c.input(pr, Header{Flags: FlagRST, Seq: c.rcvNxt}, nil)
		_, clientErr = so.Recv(pr, make([]byte, 8))
	})
	p.env.Run()
	if srvConn == nil {
		t.Fatal("handshake failed")
	}
	if clientErr != ErrReset {
		t.Fatalf("Recv error = %v, want ErrReset", clientErr)
	}
}

func TestSegmentationRespectsMSS(t *testing.T) {
	// Over Ethernet (MSS 1460) a 10000-byte transfer must produce
	// segments no larger than the MSS, and at least ceil(10000/1460).
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	var ea, eb [6]byte
	ea[5], eb[5] = 1, 2
	aa := ether.NewAdapter(ka, ea)
	ab := ether.NewAdapter(kb, eb)
	ether.Connect(aa, ab)
	ether.NewDriver(ka, aa, ipa)
	ether.NewDriver(kb, ab, ipb)
	sa := NewStack(ka, ipa)
	sb := NewStack(kb, ipb)

	ln, _ := sb.Listen(80)
	total := 0
	env.Spawn("rx", func(pr *sim.Proc) {
		so, _ := ln.Accept(pr)
		buf := make([]byte, 4096)
		for total < 10000 {
			n, err := so.Recv(pr, buf)
			if err != nil || n == 0 {
				return
			}
			total += n
		}
	})
	env.Spawn("tx", func(pr *sim.Proc) {
		so, c, err := sa.Connect(pr, 2, 80)
		if err != nil {
			t.Error(err)
			return
		}
		if c.MSS() != ether.MTU-ip.HeaderLen-HeaderLen {
			t.Errorf("Ethernet MSS = %d", c.MSS())
		}
		c.SetNoDelay(true)
		so.Send(pr, make([]byte, 10000))
	})
	env.Run()
	if total != 10000 {
		t.Fatalf("received %d of 10000", total)
	}
	if sa.Stats.SegsOut < 7 { // ceil(10000/1460) = 7 data segments minimum
		t.Fatalf("only %d segments for 10000 bytes over Ethernet", sa.Stats.SegsOut)
	}
}
