package trace

import (
	"sort"

	"repro/internal/sim"
)

// HostEvent is an Event tagged with the host whose recorder emitted it.
// A merged stream of HostEvents is the unit the timeline reconstructor
// and the exporters consume.
type HostEvent struct {
	Host string `json:"host"`
	Event
}

// MergeEvents joins per-host event streams into one stream ordered by
// time. hosts and recs are parallel slices in a caller-fixed order
// (lab.Lab uses host-address order); ties in At resolve by that order
// and then by emission order, so the merged stream is a pure function of
// the simulation — never of scheduling, worker count, or map iteration.
func MergeEvents(hosts []string, recs []*Recorder) []HostEvent {
	if len(hosts) != len(recs) {
		panic("trace: MergeEvents host/recorder length mismatch")
	}
	var out []HostEvent
	for i, r := range recs {
		if r == nil {
			continue
		}
		for _, e := range r.Events() {
			out = append(out, HostEvent{Host: hosts[i], Event: e})
		}
	}
	// Events are not monotonic per host (EvIPDequeue backdates to the
	// enqueue, EvWireDepart stamps the scheduled wire end), so sort by
	// At; the stable sort preserves (host, emission) order for ties.
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// SpanNode is one node of a packet's reconstructed span tree. Leaf nodes
// are individual events; interior nodes group a host's processing or a
// wire flight, and the root covers the packet's whole observed life.
type SpanNode struct {
	Name     string      `json:"name"`
	Host     string      `json:"host,omitempty"`
	StartNS  int64       `json:"start_ns"`
	EndNS    int64       `json:"end_ns"`
	Children []*SpanNode `json:"children,omitempty"`
}

// grow widens the node to cover [start, end].
func (n *SpanNode) grow(start, end sim.Time) {
	if len(n.Children) == 0 && n.StartNS == 0 && n.EndNS == 0 {
		n.StartNS, n.EndNS = int64(start), int64(end)
		return
	}
	if int64(start) < n.StartNS {
		n.StartNS = int64(start)
	}
	if int64(end) > n.EndNS {
		n.EndNS = int64(end)
	}
}

// PacketTimeline is the reconstructed life of one TCP segment (or, for
// socket-level events with Seq zero, one connection's stream
// operations): every event that named its PacketID, in time order, plus
// the span tree built from them.
type PacketTimeline struct {
	ID     PacketID    `json:"id"`
	Label  string      `json:"label"`
	Events []HostEvent `json:"events"`
	Spans  *SpanNode   `json:"spans"`
}

// TimelineSet is a full per-packet reconstruction of a traced run.
// Packets appear in order of first observation; Unattributed holds
// events (idle-time scheduler work, warmup leftovers) that carried no
// packet identity.
type TimelineSet struct {
	Packets      []*PacketTimeline `json:"packets"`
	Unattributed []HostEvent       `json:"unattributed,omitempty"`
}

// BuildTimelines groups a merged event stream by packet identity and
// reconstructs each packet's span tree. The input must already be merged
// (MergeEvents); the output is deterministic for a deterministic input.
func BuildTimelines(evs []HostEvent) *TimelineSet {
	set := &TimelineSet{}
	byID := make(map[PacketID]*PacketTimeline)
	for _, e := range evs {
		if e.ID.IsZero() {
			set.Unattributed = append(set.Unattributed, e)
			continue
		}
		tl, ok := byID[e.ID]
		if !ok {
			tl = &PacketTimeline{ID: e.ID, Label: e.ID.String()}
			byID[e.ID] = tl
			set.Packets = append(set.Packets, tl)
		}
		tl.Events = append(tl.Events, e)
	}
	for _, tl := range set.Packets {
		tl.Spans = buildSpanTree(tl)
	}
	return set
}

// buildSpanTree arranges a packet's events into a three-level tree:
// the root covers the packet's observed life; its children are one node
// per host visit (a maximal run of events on one host) interleaved with
// one node per wire flight (EvWireDepart to the next EvWireArrive); the
// leaves are the events themselves.
func buildSpanTree(tl *PacketTimeline) *SpanNode {
	root := &SpanNode{Name: "packet " + tl.Label}
	var hostNode *SpanNode
	var wireNode *SpanNode // open wire flight awaiting its arrival
	for _, e := range tl.Events {
		start, end := e.At, e.End()
		root.grow(start, end)
		switch e.Kind {
		case EvWireDepart:
			wireNode = &SpanNode{Name: "wire", StartNS: int64(e.At), EndNS: int64(e.At)}
			root.Children = append(root.Children, wireNode)
			hostNode = nil
			continue
		case EvWireArrive:
			if wireNode != nil {
				wireNode.grow(sim.Time(wireNode.StartNS), e.At)
				wireNode = nil
			}
			hostNode = nil
			// The arrival itself becomes the first leaf of the
			// receiving host's visit, so fall through.
		}
		if hostNode == nil || hostNode.Host != e.Host {
			hostNode = &SpanNode{Name: e.Host, Host: e.Host, StartNS: int64(start), EndNS: int64(end)}
			root.Children = append(root.Children, hostNode)
		}
		hostNode.grow(start, end)
		hostNode.Children = append(hostNode.Children, &SpanNode{
			Name:    leafName(e.Event),
			Host:    e.Host,
			StartNS: int64(start),
			EndNS:   int64(end),
		})
	}
	return root
}

// leafName labels a leaf span: CPU charges by their breakdown row,
// everything else by its kind.
func leafName(e Event) string {
	if e.Kind == EvCPU {
		return string(e.Layer)
	}
	return string(e.Kind)
}

// BreakdownFromEvents re-derives a per-layer breakdown — a Tables 2/3
// row set — from the event stream: the durations of one host's EvCPU
// events, clipped to the window [start, end], summed per layer. It is
// the event-stream analogue of Recorder.Breakdown and must agree with it
// exactly, since both record the same CPU charges; core.RunTimelineStudy
// asserts that equality at fixed seeds.
func BreakdownFromEvents(evs []HostEvent, host string, start, end sim.Time) map[Layer]sim.Time {
	out := make(map[Layer]sim.Time)
	for _, e := range evs {
		if e.Host != host || e.Kind != EvCPU {
			continue
		}
		lo, hi := e.At, e.End()
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			out[e.Layer] += hi - lo
		}
	}
	return out
}

// LastArrival returns the latest EvWireArrive on the given host at or
// before limit — the event-stream analogue of
// Recorder.LastMark(MarkFrameArrival, limit), and the origin of the
// receive-side measurement window.
func LastArrival(evs []HostEvent, host string, limit sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, e := range evs {
		if e.Host == host && e.Kind == EvWireArrive && e.At <= limit && (!found || e.At > best) {
			best = e.At
			found = true
		}
	}
	return best, found
}
