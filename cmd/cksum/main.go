// Command cksum regenerates the user-level copy and checksum study
// (Table 5 / Figure 2) and the §3 PCB lookup experiment. The checksum
// routines execute for real over random buffers; the reported times come
// from the DECstation 5000/200 cost calibration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	pcb := flag.Bool("pcb", true, "include the PCB lookup experiment")
	sun := flag.Bool("sun3", true, "include the §4.1 Sun-3 comparison")
	flag.Parse()

	r, err := core.RunTable5()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cksum:", err)
		os.Exit(1)
	}
	fmt.Println(r.Render())

	if *pcb {
		fmt.Println(core.RunPCBExperiment().Render())
	}
	if *sun {
		fmt.Println(core.RunSun3Comparison().Render())
	}
}
