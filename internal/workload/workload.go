// Package workload implements the pluggable traffic generators that
// drive lab topologies: the paper's echo benchmark, one-way bulk
// transfer, request/response fan-in (M clients hammering one server),
// and connection churn (open/close storms that exercise real PCB insert
// and delete under live populations). A Generator is pure configuration;
// Run spawns its processes on a freshly built (or freshly reset —
// lab.Lab.Reset restores bit-identical initial state) Lab and consumes
// that lab's event loop, so each run needs its own pristine topology —
// exactly the shape the sweep engine (internal/runner) parallelizes
// over and its worker-affine testbed cache recycles.
//
// Every generator participates in per-packet tracing: when the lab was
// built with lab.Config.PacketTrace, Run returns the merged event
// stream in Result.Events. The echo generator traces exactly the
// paper's measured iterations; the others trace the whole run so
// timelines include connection setup. See docs/METHODOLOGY.md.
package workload

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Port is the well-known port every workload server listens on.
const Port = 9007

// Result is the outcome of one workload run.
type Result struct {
	Workload string
	// Requests counts completed measured operations (echo round trips,
	// fan-in requests, churn connection cycles, bulk transfers).
	Requests int
	// Errors counts harness-visible failures: payload mismatches and
	// short transfers.
	Errors int
	// Bytes is the application payload carried by measured operations.
	Bytes int64
	// Elapsed is the virtual time from the start of the run to the last
	// measured completion (teardown timers excluded).
	Elapsed sim.Time
	// Latencies holds one per-operation latency per measured operation,
	// in deterministic order: client index major, operation index minor.
	Latencies []sim.Time
	// Events is the merged per-packet trace of the run, present only
	// when the topology was built with lab.Config.PacketTrace. For the
	// echo workload it covers the measured iterations (matching the
	// paper's instrumentation window); for the other generators it
	// covers the whole run including connection setup.
	Events []trace.HostEvent
}

// Sample aggregates the latencies in microseconds.
func (r *Result) Sample() *stats.Sample {
	var s stats.Sample
	for _, v := range r.Latencies {
		s.Add(v.Micros())
	}
	return &s
}

// Generator produces traffic on an assembled topology. Host 0 is the
// server; every other host is a client. Run consumes the lab's event
// loop and must be called once per freshly built Lab.
type Generator interface {
	Name() string
	Run(l *lab.Lab) (*Result, error)
}

// Echo is the paper's §1.2 round-trip benchmark, delegated to
// lab.RunEcho so workload-engine runs reproduce the paper tables'
// numbers exactly. It uses Hosts[0] and Hosts[1]; extra hosts idle.
type Echo struct {
	Size       int // payload bytes per round trip (default 4)
	Iterations int // measured round trips (default 100)
	Warmup     int // unmeasured round trips (default 8)
}

// Name implements Generator.
func (Echo) Name() string { return "echo" }

// Run implements Generator.
func (g Echo) Run(l *lab.Lab) (*Result, error) {
	size, iters, warm := defInt(g.Size, 4), defInt(g.Iterations, 100), defInt(g.Warmup, 8)
	res, err := l.RunEcho(size, iters, warm)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Workload:  "echo",
		Requests:  len(res.RTTs),
		Errors:    res.CorruptEchoes,
		Bytes:     int64(size) * int64(len(res.RTTs)),
		Latencies: res.RTTs,
	}
	// Last measured completion, not Env.Now(): RunEcho's event loop has
	// already drained teardown timers by the time it returns.
	if len(res.Windows) > 0 {
		r.Elapsed = res.Windows[len(res.Windows)-1].ReadReturn
	}
	collectTrace(l, r)
	return r, nil
}

// collectTrace attaches the merged packet-event stream to a result when
// the topology was built with tracing armed.
func collectTrace(l *lab.Lab, r *Result) {
	if l.Config.PacketTrace {
		r.Events = l.PacketEvents()
	}
}

// startTrace turns recording on at the head of a traced run. The echo
// generator does not use it — lab.RunEcho flips tracing at its measured
// iterations, preserving the paper's warmup exclusion — but the other
// generators trace from the first handshake so timelines show the whole
// connection life.
func startTrace(l *lab.Lab) {
	if l.Config.PacketTrace {
		l.EnableTracing()
	}
}

// FanIn is the hub workload: every client host opens one connection to
// the server and issues request/response exchanges concurrently, so the
// server demultiplexes interleaved segments across a live connection
// population — the situation §3's PCB discussion is about, with real
// connections instead of the synthetic ExtraPCBs knob.
type FanIn struct {
	Size     int // request and response payload bytes (default 200)
	Requests int // measured requests per client (default 20)
	Warmup   int // unmeasured requests per client (default 2)
}

// Name implements Generator.
func (FanIn) Name() string { return "fanin" }

// Run implements Generator.
func (g FanIn) Run(l *lab.Lab) (*Result, error) {
	size, reqs, warm := defInt(g.Size, 200), defInt(g.Requests, 20), defInt(g.Warmup, 2)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "fanin"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	l.Env.Spawn("server.fanin", func(p *sim.Proc) {
		for i := 0; i < clients; i++ {
			so, conn := ln.Accept(p)
			conn.SetNoDelay(true)
			l.Env.Spawn(fmt.Sprintf("server.fanin.conn%d", i), func(p *sim.Proc) {
				serveEcho(p, so)
			})
		}
	})

	perClient := make([][]sim.Time, clients)
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		ci := ci
		host := l.Hosts[ci+1]
		l.Env.Spawn(fmt.Sprintf("client%d.fanin", ci), func(p *sim.Proc) {
			so, conn, err := host.TCP.Connect(p, lab.HostAddr(0), Port)
			if err != nil {
				fail(err)
				return
			}
			conn.SetNoDelay(true)
			msg := make([]byte, size)
			l.Env.RNG().Fill(msg)
			buf := make([]byte, size)
			for i := 0; i < warm+reqs; i++ {
				start := l.Env.Now()
				if err := exchange(p, so, msg, buf); err != nil {
					fail(fmt.Errorf("client %d request %d: %w", ci, i, err))
					return
				}
				if i >= warm {
					lat := l.Env.Now() - start
					perClient[ci] = append(perClient[ci], lat)
					if l.Env.Now() > last {
						last = l.Env.Now()
					}
					if !bytesEqual(buf, msg) {
						r.Errors++
					}
				}
			}
			so.Close(p)
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	for ci := 0; ci < clients; ci++ {
		if len(perClient[ci]) != reqs {
			return nil, fmt.Errorf("workload: client %d measured %d of %d requests",
				ci, len(perClient[ci]), reqs)
		}
		r.Latencies = append(r.Latencies, perClient[ci]...)
	}
	r.Requests = len(r.Latencies)
	r.Bytes = int64(r.Requests) * int64(size) * 2
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// Churn is the open/close storm: every client host repeatedly opens a
// connection to the server, performs one request/response exchange, and
// closes — real PCB insert and delete at both ends, with TIME_WAIT
// entries accumulating ahead of live connections on the BSD
// head-inserted list. One measured operation is a full cycle from
// connect to response.
type Churn struct {
	Conns int // connection cycles per client (default 10)
	Size  int // payload bytes exchanged per connection (default 64)
}

// Name implements Generator.
func (Churn) Name() string { return "churn" }

// Run implements Generator.
func (g Churn) Run(l *lab.Lab) (*Result, error) {
	conns, size := defInt(g.Conns, 10), defInt(g.Size, 64)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "churn"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	l.Env.Spawn("server.churn", func(p *sim.Proc) {
		for i := 0; i < clients*conns; i++ {
			so, conn := ln.Accept(p)
			conn.SetNoDelay(true)
			l.Env.Spawn(fmt.Sprintf("server.churn.conn%d", i), func(p *sim.Proc) {
				serveEcho(p, so)
			})
		}
	})

	perClient := make([][]sim.Time, clients)
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		ci := ci
		host := l.Hosts[ci+1]
		l.Env.Spawn(fmt.Sprintf("client%d.churn", ci), func(p *sim.Proc) {
			msg := make([]byte, size)
			l.Env.RNG().Fill(msg)
			buf := make([]byte, size)
			for k := 0; k < conns; k++ {
				start := l.Env.Now()
				so, conn, err := host.TCP.Connect(p, lab.HostAddr(0), Port)
				if err != nil {
					fail(fmt.Errorf("client %d cycle %d: %w", ci, k, err))
					return
				}
				conn.SetNoDelay(true)
				if err := exchange(p, so, msg, buf); err != nil {
					fail(fmt.Errorf("client %d cycle %d: %w", ci, k, err))
					return
				}
				lat := l.Env.Now() - start
				perClient[ci] = append(perClient[ci], lat)
				if l.Env.Now() > last {
					last = l.Env.Now()
				}
				if !bytesEqual(buf, msg) {
					r.Errors++
				}
				so.Close(p)
			}
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	for ci := 0; ci < clients; ci++ {
		if len(perClient[ci]) != conns {
			return nil, fmt.Errorf("workload: client %d completed %d of %d cycles",
				ci, len(perClient[ci]), conns)
		}
		r.Latencies = append(r.Latencies, perClient[ci]...)
	}
	r.Requests = len(r.Latencies)
	r.Bytes = int64(r.Requests) * int64(size) * 2
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// Bulk is the one-way throughput workload: every client streams Bytes to
// the server and closes; the measured latency of one operation is the
// time from the client's first write to the server consuming the final
// byte (EOF), so it includes delivery, not just buffering.
type Bulk struct {
	Bytes int // payload per client (default 65536)
	Chunk int // client write size (default 8192)
}

// Name implements Generator.
func (Bulk) Name() string { return "bulk" }

// Run implements Generator.
func (g Bulk) Run(l *lab.Lab) (*Result, error) {
	total, chunk := defInt(g.Bytes, 65536), defInt(g.Chunk, 8192)
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "bulk"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	starts := make([]sim.Time, clients)
	dones := make([]sim.Time, clients)
	received := make([]int, clients)

	startTrace(l)
	ln, err := l.Hosts[0].TCP.Listen(Port)
	if err != nil {
		return nil, err
	}
	// Connections may be accepted in any order (loss can delay one
	// client's handshake past another's), so the accepted connection's
	// remote address — not the accept order — identifies the transfer.
	l.Env.Spawn("server.bulk", func(p *sim.Proc) {
		for k := 0; k < clients; k++ {
			so, conn := ln.Accept(p)
			i := int(conn.Key().RemoteAddr - lab.HostAddr(1))
			if i < 0 || i >= clients {
				fail(fmt.Errorf("workload: bulk connection from unexpected address %#x",
					conn.Key().RemoteAddr))
				return
			}
			l.Env.Spawn(fmt.Sprintf("server.bulk.conn%d", i), func(p *sim.Proc) {
				buf := make([]byte, 16384)
				for {
					n, err := so.Recv(p, buf)
					if err != nil {
						fail(err)
						return
					}
					if n == 0 {
						dones[i] = l.Env.Now()
						so.Close(p)
						return
					}
					received[i] += n
				}
			})
		}
	})

	for ci := 0; ci < clients; ci++ {
		ci := ci
		host := l.Hosts[ci+1]
		l.Env.Spawn(fmt.Sprintf("client%d.bulk", ci), func(p *sim.Proc) {
			so, _, err := host.TCP.Connect(p, lab.HostAddr(0), Port)
			if err != nil {
				fail(err)
				return
			}
			msg := make([]byte, chunk)
			l.Env.RNG().Fill(msg)
			starts[ci] = l.Env.Now()
			for sent := 0; sent < total; {
				n := chunk
				if n > total-sent {
					n = total - sent
				}
				if _, err := so.Send(p, msg[:n]); err != nil {
					fail(err)
					return
				}
				sent += n
			}
			so.Close(p)
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		if received[ci] != total {
			r.Errors++
		}
		r.Latencies = append(r.Latencies, dones[ci]-starts[ci])
		r.Bytes += int64(received[ci])
		if dones[ci] > last {
			last = dones[ci]
		}
	}
	r.Requests = clients
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// serveEcho is the streaming echo handler shared by the fan-in and churn
// servers: write back whatever arrives, until EOF, then close.
func serveEcho(p *sim.Proc, so *sock.Socket) {
	buf := make([]byte, 16384)
	for {
		n, err := so.Recv(p, buf)
		if err != nil || n == 0 {
			so.Close(p)
			return
		}
		if _, err := so.Send(p, buf[:n]); err != nil {
			return
		}
	}
}

// exchange sends msg and receives exactly len(buf) bytes back.
func exchange(p *sim.Proc, so *sock.Socket, msg, buf []byte) error {
	if _, err := so.Send(p, msg); err != nil {
		return err
	}
	total := 0
	for total < len(buf) {
		n, err := so.Recv(p, buf[total:])
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("workload: unexpected EOF after %d of %d bytes", total, len(buf))
		}
		total += n
	}
	return nil
}

func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
