package mbuf

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/checksum"
	"repro/internal/sim"
)

func fill(r *sim.RNG, n int) []byte {
	b := make([]byte, n)
	r.Fill(b)
	return b
}

// buildChain appends data across mbufs the way the ULTRIX socket layer
// does: normal mbufs for small transfers, clusters above the threshold.
func buildChain(p *Pool, data []byte) *Mbuf {
	var head, tail *Mbuf
	rest := data
	for len(rest) > 0 {
		var m *Mbuf
		if len(data) > ClusterThreshold {
			m = p.AllocCluster()
		} else {
			m = p.Alloc()
		}
		n := m.Append(rest)
		rest = rest[n:]
		if head == nil {
			head = m
		} else {
			tail.SetNext(m)
		}
		tail = m
	}
	return head
}

func TestAppendAndLen(t *testing.T) {
	var p Pool
	m := p.Alloc()
	if m.Len() != 0 || m.Cap() != MLEN {
		t.Fatalf("fresh mbuf len=%d cap=%d", m.Len(), m.Cap())
	}
	n := m.Append(bytes.Repeat([]byte{1}, 200))
	if n != MLEN {
		t.Fatalf("Append consumed %d, want %d", n, MLEN)
	}
	if m.Cap() != 0 {
		t.Fatalf("Cap = %d after fill", m.Cap())
	}
}

func TestClusterCapacity(t *testing.T) {
	var p Pool
	m := p.AllocCluster()
	if !m.IsCluster() {
		t.Fatal("AllocCluster not a cluster")
	}
	n := m.Append(make([]byte, MCLBYTES+1))
	if n != MCLBYTES {
		t.Fatalf("cluster Append = %d, want %d", n, MCLBYTES)
	}
}

func TestChainRoundTrip(t *testing.T) {
	r := sim.NewRNG(3)
	var p Pool
	for _, n := range []int{0, 1, 4, 107, 108, 109, 500, 1024, 1025, 4000, 8000} {
		data := fill(r, n)
		c := buildChain(&p, data)
		if ChainLen(c) != n {
			t.Fatalf("n=%d: ChainLen = %d", n, ChainLen(c))
		}
		if !bytes.Equal(Linearize(c), data) {
			t.Fatalf("n=%d: linearize mismatch", n)
		}
		p.Free(c)
	}
}

func TestChainMbufCounts(t *testing.T) {
	var p Pool
	// 500 bytes on normal mbufs: ceil(500/108) = 5 mbufs (paper: "one to
	// eight mbufs are used for transfers of less than 1KB").
	c := buildChain(&p, make([]byte, 500))
	if got := ChainCount(c); got != 5 {
		t.Fatalf("500B chain has %d mbufs, want 5", got)
	}
	// 1400 bytes switches to clusters: 1 cluster.
	c2 := buildChain(&p, make([]byte, 1400))
	if got := ChainCount(c2); got != 1 {
		t.Fatalf("1400B chain has %d mbufs, want 1", got)
	}
	if !c2.IsCluster() {
		t.Fatal("1400B chain not on a cluster")
	}
	// 8000 bytes: 2 clusters.
	c3 := buildChain(&p, make([]byte, 8000))
	if got := ChainCount(c3); got != 2 {
		t.Fatalf("8000B chain has %d mbufs, want 2", got)
	}
}

func TestCopySemanticsNormalVsCluster(t *testing.T) {
	r := sim.NewRNG(5)
	var p Pool

	// Normal mbufs: physical copy.
	small := fill(r, 500)
	c := buildChain(&p, small)
	dup, cs := p.Copy(c, 0, 500)
	if cs.BytesCopied != 500 {
		t.Fatalf("normal copy moved %d bytes, want 500", cs.BytesCopied)
	}
	if cs.ClustersRef != 0 {
		t.Fatalf("normal copy ref'd %d clusters", cs.ClustersRef)
	}
	if !bytes.Equal(Linearize(dup), small) {
		t.Fatal("normal copy data mismatch")
	}

	// Clusters: reference count, zero bytes moved.
	big := fill(r, 4000)
	c2 := buildChain(&p, big)
	dup2, cs2 := p.Copy(c2, 0, 4000)
	if cs2.BytesCopied != 0 {
		t.Fatalf("cluster copy moved %d bytes, want 0", cs2.BytesCopied)
	}
	if cs2.ClustersRef != 1 {
		t.Fatalf("cluster copy ref'd %d clusters, want 1", cs2.ClustersRef)
	}
	if !bytes.Equal(Linearize(dup2), big) {
		t.Fatal("cluster copy data mismatch")
	}
}

func TestCopyPartialRange(t *testing.T) {
	r := sim.NewRNG(11)
	var p Pool
	f := func(n, offRaw, lenRaw uint16) bool {
		size := int(n%3000) + 1
		data := fill(r, size)
		c := buildChain(&p, data)
		off := int(offRaw) % size
		ln := int(lenRaw) % (size - off)
		dup, _ := p.Copy(c, off, ln)
		return bytes.Equal(Linearize(dup), data[off:off+ln])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesClusterRefs(t *testing.T) {
	var p Pool
	c := buildChain(&p, make([]byte, 4000))
	dup, _ := p.Copy(c, 0, 4000)
	p.Free(c)
	if p.Stats.ClusterFrees != 0 {
		t.Fatal("cluster freed while still referenced")
	}
	p.Free(dup)
	if p.Stats.ClusterFrees != 1 {
		t.Fatalf("ClusterFrees = %d, want 1", p.Stats.ClusterFrees)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	var p Pool
	c := buildChain(&p, make([]byte, 4000))
	dup, _ := p.Copy(c, 0, 4000)
	// Capture the page reference before Free clears it from the header.
	cl, buf := dup.clust, dup.data
	p.Free(c)
	p.Free(dup)
	defer func() {
		if recover() == nil {
			t.Fatal("refcount underflow did not panic")
		}
	}()
	p.Free(&Mbuf{clust: cl, data: buf})
}

func TestPrependHeader(t *testing.T) {
	var p Pool
	m := p.AllocCluster()
	m.Append(make([]byte, 100))
	head, hdr, allocated := p.PrependHeader(m, 40)
	if !allocated {
		t.Fatal("cluster with no leading space should need a header mbuf")
	}
	if len(hdr) != 40 {
		t.Fatalf("hdr len = %d", len(hdr))
	}
	if ChainLen(head) != 140 {
		t.Fatalf("ChainLen = %d, want 140", ChainLen(head))
	}
	// A second prepend can reuse the leading space of the header mbuf.
	head2, hdr2, allocated2 := p.PrependHeader(head, 20)
	if allocated2 {
		t.Fatal("second prepend should reuse leading space")
	}
	if head2 != head || len(hdr2) != 20 {
		t.Fatal("second prepend wrong shape")
	}
	if ChainLen(head2) != 160 {
		t.Fatalf("ChainLen = %d, want 160", ChainLen(head2))
	}
}

func TestTrim(t *testing.T) {
	var p Pool
	m := p.Alloc()
	m.Append([]byte{1, 2, 3, 4, 5})
	m.TrimHead(2)
	m.TrimTail(1)
	if !bytes.Equal(m.Bytes(), []byte{3, 4}) {
		t.Fatalf("after trim: %v", m.Bytes())
	}
}

func TestTrimPanics(t *testing.T) {
	var p Pool
	m := p.Alloc()
	m.Append([]byte{1})
	for _, f := range []func(){func() { m.TrimHead(2) }, func() { m.TrimTail(2) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("over-trim did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSplit(t *testing.T) {
	r := sim.NewRNG(21)
	var p Pool
	f := func(n, at uint16) bool {
		size := int(n%4000) + 2
		cut := int(at) % size
		data := fill(r, size)
		c := buildChain(&p, data)
		front, back := p.Split(c, cut)
		return bytes.Equal(Linearize(front), data[:cut]) &&
			bytes.Equal(Linearize(back), data[cut:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEdges(t *testing.T) {
	var p Pool
	c := buildChain(&p, make([]byte, 100))
	front, back := p.Split(c, 0)
	if front != nil || ChainLen(back) != 100 {
		t.Fatal("split at 0 wrong")
	}
	front, back = p.Split(back, 100)
	if ChainLen(front) != 100 || back != nil {
		t.Fatal("split at end wrong")
	}
}

func TestConcat(t *testing.T) {
	var p Pool
	a := buildChain(&p, []byte{1, 2})
	b := buildChain(&p, []byte{3, 4})
	c := Concat(a, b)
	if !bytes.Equal(Linearize(c), []byte{1, 2, 3, 4}) {
		t.Fatal("concat mismatch")
	}
	if Concat(nil, a) != a {
		t.Fatal("concat nil head")
	}
}

func TestCopyBytesTo(t *testing.T) {
	r := sim.NewRNG(31)
	var p Pool
	data := fill(r, 1000)
	c := buildChain(&p, data)
	dst := make([]byte, 300)
	n := CopyBytesTo(c, 150, 300, dst)
	if n != 300 || !bytes.Equal(dst, data[150:450]) {
		t.Fatal("CopyBytesTo mismatch")
	}
	// Reading past the end returns a short count.
	n = CopyBytesTo(c, 900, 300, dst)
	if n != 100 {
		t.Fatalf("short read = %d, want 100", n)
	}
}

func TestPartialChecksumSurvivesClusterCopy(t *testing.T) {
	r := sim.NewRNG(41)
	var p Pool
	data := fill(r, 2000)
	m := p.AllocCluster()
	m.Append(data)
	var cs checksum.Partial
	cs.Add(data)
	m.Csum, m.CsumValid = cs, true

	dup, _ := p.Copy(m, 0, 2000)
	if !dup.CsumValid {
		t.Fatal("whole-cluster copy lost the partial checksum")
	}
	if dup.Csum.Sum16() != cs.Sum16() {
		t.Fatal("partial checksum value changed")
	}

	// A partial-range copy must invalidate the stashed checksum.
	dup2, _ := p.Copy(m, 10, 100)
	if dup2.CsumValid {
		t.Fatal("partial copy kept a stale checksum")
	}
}

func TestStatsCounting(t *testing.T) {
	var p Pool
	c := buildChain(&p, make([]byte, 500))
	if p.Stats.MbufAllocs != 5 {
		t.Fatalf("MbufAllocs = %d, want 5", p.Stats.MbufAllocs)
	}
	p.Free(c)
	if p.Stats.MbufFrees != 5 {
		t.Fatalf("MbufFrees = %d, want 5", p.Stats.MbufFrees)
	}
}

func TestAllocLeading(t *testing.T) {
	var p Pool
	m := p.AllocLeading(40)
	if m.LeadingSpace() != 40 {
		t.Fatalf("LeadingSpace = %d", m.LeadingSpace())
	}
	hdr := m.Prepend(40)
	if len(hdr) != 40 || m.Len() != 40 {
		t.Fatal("prepend into leading space failed")
	}
}

func TestPrependPanicsWithoutSpace(t *testing.T) {
	var p Pool
	m := p.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("Prepend without space did not panic")
		}
	}()
	m.Prepend(1)
}
