package tcp

import (
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// input processes one inbound segment for an existing connection. The
// chain m holds the segment data (header already parsed and stripped);
// it may be nil for a pure ACK.
func (c *Conn) input(p *sim.Proc, th Header, m *mbuf.Mbuf) {
	k := c.K
	dlen := mbuf.ChainLen(m)

	// Header prediction (§3). BSD 4.4 alpha precomputes the expected
	// next header and takes a fast path when the incoming segment
	// matches: ESTABLISHED, no unusual flags, in-sequence, window
	// unchanged, and not retransmitting. Within that, exactly two cases
	// exist — the two common cases of *unidirectional* transfer:
	//
	//   (a) a pure ACK that acknowledges new data (the sender's side);
	//   (b) a pure in-sequence data segment acknowledging nothing new
	//       (the receiver's side).
	//
	// An RPC-style exchange delivers data *with* a piggybacked ACK of
	// new data, which fits neither case — the paper's central
	// observation about why header prediction does not help
	// request-response traffic.
	if c.S.PredictionEnabled && c.state == StateEstablished &&
		th.Flags&(FlagSYN|FlagFIN|FlagRST|FlagURG) == 0 &&
		th.Flags&FlagACK != 0 &&
		th.Seq == c.rcvNxt &&
		int(th.Win) == c.sndWnd &&
		c.sndNxt == c.sndMax {

		if dlen == 0 && th.Ack.Gt(c.sndUna) && th.Ack.Leq(c.sndMax) {
			// Case (a): pure ACK for outstanding data.
			k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast)
			c.S.Stats.FastPathAck++
			c.processAck(th.Ack)
			c.so.SndWakeup()
			if c.so.Snd.Len() > c.sndNxt.Diff(c.sndUna) {
				c.output(p)
			}
			return
		}
		if dlen > 0 && th.Ack == c.sndUna && len(c.reass) == 0 &&
			dlen <= c.so.Rcv.Space() {
			// Case (b): pure in-sequence data, nothing new acked.
			k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast)
			c.S.Stats.FastPathData++
			c.rcvNxt = c.rcvNxt.Add(dlen)
			c.so.Rcv.Append(m)
			c.so.RcvWakeup()
			c.ackPolicy(p)
			return
		}
	}

	// Slow path: the full tcp_input processing.
	k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputSlow)
	c.S.Stats.SlowPath++
	c.slowInput(p, th, m, dlen)
}

// ackPolicy implements BSD's receive-side ACK strategy: delay the first
// ACK, force one on every second unacknowledged segment.
func (c *Conn) ackPolicy(p *sim.Proc) {
	if c.flagDelAck {
		c.flagDelAck = false
		c.flagAckNow = true
		c.output(p)
		return
	}
	c.flagDelAck = true
	c.scheduleDelack()
}

// processAck advances the send window for an acceptable new ACK.
func (c *Conn) processAck(ack Seq) {
	acked := ack.Diff(c.sndUna)
	if acked <= 0 {
		return
	}
	// Congestion window growth: slow start below ssthresh, linear
	// (per-ACK mss*mss/cwnd) above.
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss
	} else {
		c.cwnd += c.mss * c.mss / c.cwnd
		if c.cwnd > 65535 {
			c.cwnd = 65535
		}
	}
	// RTT sample if the timed sequence number is covered (Karn's rule
	// is handled by rtTiming being cleared on retransmission).
	if c.rtTiming && ack.Gt(c.rtSeq) {
		c.rttUpdate(c.K.Now() - c.rtStart)
		c.rtTiming = false
	}
	// Release acknowledged bytes (the FIN and SYN occupy sequence space
	// but no buffer bytes).
	drop := acked
	if drop > c.so.Snd.Len() {
		drop = c.so.Snd.Len()
	}
	if drop > 0 {
		c.so.Snd.Drop(drop)
	}
	c.sndUna = ack
	if c.sndNxt.Lt(c.sndUna) {
		c.sndNxt = c.sndUna
	}
	c.rexmtShift = 0
	if c.sndUna == c.sndMax {
		c.clearRexmt()
	} else {
		c.setRexmt()
	}
}

// slowInput is the full state-machine processing for segments the fast
// path rejected.
func (c *Conn) slowInput(p *sim.Proc, th Header, m *mbuf.Mbuf, dlen int) {
	k := c.K

	if th.Flags&FlagRST != 0 {
		k.Pool.Free(m)
		c.drop(ErrReset)
		return
	}

	switch c.state {
	case StateSynSent:
		k.Pool.Free(m)
		if th.Flags&(FlagSYN|FlagACK) != FlagSYN|FlagACK ||
			!th.Ack.Gt(c.iss) || !th.Ack.Leq(c.sndMax) {
			return
		}
		c.irs = th.Seq
		c.rcvNxt = th.Seq.Add(1)
		if th.MSS != 0 && int(th.MSS) < c.mss {
			c.mss = int(th.MSS)
		}
		if th.AltCksum == AltCksumNone && c.wantCksumOff {
			c.cksumOff = true
		}
		c.cwnd = c.mss
		c.sndWnd = int(th.Win)
		c.processAck(th.Ack)
		c.state = StateEstablished
		c.flagAckNow = true
		c.so.SetConnected()
		c.output(p)
		return
	case StateClosed, StateListen:
		k.Pool.Free(m)
		return
	}

	// Trim duplicate data at the front (retransmissions overlapping
	// what we already have).
	if th.Seq.Lt(c.rcvNxt) {
		todrop := c.rcvNxt.Diff(th.Seq)
		if th.Flags&FlagSYN != 0 {
			th.Flags &^= FlagSYN
			th.Seq = th.Seq.Add(1)
			todrop--
		}
		if todrop >= dlen {
			// Entirely duplicate: ACK it and drop the data, but
			// still process the ACK field below.
			c.S.Stats.DupSegs++
			c.flagAckNow = true
			k.Pool.Free(m)
			m, dlen = nil, 0
			th.Flags &^= FlagFIN
			th.Seq = c.rcvNxt
		} else {
			m = k.Pool.Drop(m, todrop)
			th.Seq = th.Seq.Add(todrop)
			dlen -= todrop
		}
	}

	// ACK processing.
	if th.Flags&FlagACK != 0 {
		if c.state == StateSynRcvd {
			if th.Ack.Gt(c.iss) && th.Ack.Leq(c.sndMax) {
				c.state = StateEstablished
				c.so.SetConnected()
				if c.listener != nil {
					c.listener.backlog = append(c.listener.backlog, c)
					c.listener.wq.WakeAll()
				}
			}
		}
		switch {
		case th.Ack == c.sndUna && dlen == 0 && c.sndUna != c.sndMax &&
			int(th.Win) == c.sndWnd:
			// Duplicate ACK while data is outstanding: after three,
			// assume the segment at snd_una was lost and retransmit it
			// without waiting for the timer (BSD 4.4 fast retransmit).
			c.dupAcks++
			if c.dupAcks == 3 {
				flight := c.sndMax.Diff(c.sndUna)
				half := min2(flight, c.sndWnd) / 2
				if half < 2*c.mss {
					half = 2 * c.mss
				}
				c.ssthresh = half
				c.cwnd = c.mss
				saved := c.sndNxt
				c.sndNxt = c.sndUna
				c.rtTiming = false
				c.flagAckNow = true
				c.S.Stats.FastRetransmits++
				c.output(p)
				if saved.Gt(c.sndNxt) {
					c.sndNxt = saved
				}
			}
		case th.Ack.Gt(c.sndUna) && th.Ack.Leq(c.sndMax):
			c.dupAcks = 0
			finWasOutstanding := c.finSent && c.sndMax == th.Ack
			c.processAck(th.Ack)
			c.so.SndWakeup()
			if finWasOutstanding && c.sndUna == c.sndMax {
				switch c.state {
				case StateFinWait1:
					c.state = StateFinWait2
				case StateClosing:
					c.enterTimeWait()
				case StateLastAck:
					c.drop(nil)
					k.Pool.Free(m)
					return
				}
			}
		}
		// Window update from the most recent segment.
		c.sndWnd = int(th.Win)
	}

	// Data processing.
	if dlen > 0 {
		switch c.state {
		case StateEstablished, StateFinWait1, StateFinWait2:
			if th.Seq == c.rcvNxt && len(c.reass) == 0 {
				c.rcvNxt = c.rcvNxt.Add(dlen)
				c.so.Rcv.Append(m)
				m = nil
				c.so.RcvWakeup()
				if c.flagDelAck {
					c.flagDelAck = false
					c.flagAckNow = true
				} else {
					c.flagDelAck = true
					c.scheduleDelack()
				}
			} else {
				// Out of order: queue for reassembly, ACK now to
				// trigger the peer's recovery.
				c.S.Stats.OutOfOrderSegs++
				c.insertReass(th.Seq, m)
				m = nil
				c.pullReass()
				c.flagAckNow = true
			}
		default:
			k.Pool.Free(m)
			m = nil
		}
	} else if m != nil {
		k.Pool.Free(m)
		m = nil
	}

	// FIN processing (only once all data up to the FIN has arrived).
	if th.Flags&FlagFIN != 0 && th.Seq.Add(dlen) == c.rcvNxt && len(c.reass) == 0 {
		c.rcvNxt = c.rcvNxt.Add(1)
		c.flagAckNow = true
		c.so.SetEof()
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait1:
			// Our FIN is unacknowledged: simultaneous close.
			c.state = StateClosing
		case StateFinWait2:
			c.enterTimeWait()
		}
	}

	if c.flagAckNow || c.flagDelAck {
		// flagDelAck alone waits for the fast timer; AckNow sends.
		if c.flagAckNow {
			c.output(p)
		}
	} else {
		c.output(p)
	}
}

// enterTimeWait moves the connection into TIME_WAIT and schedules the
// 2MSL release.
func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.flagAckNow = true
	c.clearRexmt()
	c.K.Env.After(2*msl, "tcp.2msl", func() {
		if c.state == StateTimeWait {
			c.S.dispatch(func(p *sim.Proc) {
				if c.state == StateTimeWait {
					c.drop(nil)
				}
			})
		}
	})
}

// insertReass adds an out-of-order segment to the reassembly queue,
// keeping it sorted and non-overlapping.
func (c *Conn) insertReass(seq Seq, m *mbuf.Mbuf) {
	dlen := mbuf.ChainLen(m)
	// Discard anything that duplicates queued data wholesale; partial
	// overlaps trim the incoming segment.
	for _, r := range c.reass {
		rl := mbuf.ChainLen(r.m)
		if seq.Geq(r.seq) && seq.Add(dlen).Leq(r.seq.Add(rl)) {
			c.K.Pool.Free(m)
			return
		}
	}
	// Trim overlap with rcv_nxt already handled by caller. Insert in
	// sequence order.
	idx := len(c.reass)
	for i, r := range c.reass {
		if seq.Lt(r.seq) {
			idx = i
			break
		}
	}
	c.reass = append(c.reass, reassSeg{})
	copy(c.reass[idx+1:], c.reass[idx:])
	c.reass[idx] = reassSeg{seq: seq, m: m}
}

// pullReass appends any now-contiguous queued segments to the receive
// buffer.
func (c *Conn) pullReass() {
	woke := false
	for len(c.reass) > 0 {
		r := c.reass[0]
		rl := mbuf.ChainLen(r.m)
		if r.seq.Gt(c.rcvNxt) {
			break
		}
		// Trim any duplicated prefix.
		if r.seq.Lt(c.rcvNxt) {
			over := c.rcvNxt.Diff(r.seq)
			if over >= rl {
				c.K.Pool.Free(r.m)
				c.reass = c.reass[1:]
				continue
			}
			r.m = c.K.Pool.Drop(r.m, over)
			rl -= over
		}
		c.rcvNxt = c.rcvNxt.Add(rl)
		c.so.Rcv.Append(r.m)
		woke = true
		c.reass = c.reass[1:]
	}
	if woke {
		c.so.RcvWakeup()
	}
}
