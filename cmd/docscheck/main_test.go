package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

const sampleDoc = "# Title\n" +
	"Inline: `go run ./cmd/tcplat -sweep` and also `go run ./cmd/cksum`.\n" +
	"Not a command: `-link ether` or `make tables`.\n" +
	"```sh\n" +
	"go run ./cmd/tables -iters 100 -parallel 8   # full report\n" +
	"go run ./cmd/load -workload fanin -hosts 17 -json > /dev/null\n" +
	"make test\n" +
	"```\n" +
	"```go\n" +
	"fmt.Println(\"go run ./cmd/fake\") // prose, but starts mid-line so skipped\n" +
	"```\n" +
	"And `go run ./cmd/docscheck -list` must never recurse.\n"

func TestExtractCommands(t *testing.T) {
	got := extractCommands(sampleDoc)
	want := []string{
		"go run ./cmd/tcplat -sweep",
		"go run ./cmd/cksum",
		"go run ./cmd/tables -iters 100 -parallel 8",
		"go run ./cmd/load -workload fanin -hosts 17 -json > /dev/null",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extractCommands:\n got %q\nwant %q", got, want)
	}
}

func TestCommandArgsSmokeAndRedirects(t *testing.T) {
	got := commandArgs("go run ./cmd/tables -iters 100 -parallel 8", true)
	want := []string{"go", "run", "./cmd/tables", "-iters", "100", "-parallel", "8",
		"-iters", "2", "-parallel", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("smoke args = %q, want %q", got, want)
	}
	got = commandArgs("go run ./cmd/load -json > /dev/null", true)
	want = []string{"go", "run", "./cmd/load", "-json", "-reqs", "2", "-conns", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("redirect args = %q, want %q", got, want)
	}
	// No smoke entry: command passes through minus redirections.
	got = commandArgs("go run ./examples/sweep | head", false)
	want = []string{"go", "run", "./examples/sweep"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pipe args = %q, want %q", got, want)
	}
}

func TestListModeAgainstRepoDocs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "DOC.md")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-list", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"go run ./cmd/tcplat -sweep -iters 2 -warmup 1",
		"go run ./cmd/tables -iters 100 -parallel 8 -iters 2 -parallel 2",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if bytes.Contains([]byte(out), []byte("docscheck -list")) {
		t.Fatal("docscheck would recurse into itself")
	}
}

func TestNoCommandsIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "EMPTY.md")
	if err := os.WriteFile(path, []byte("nothing here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-list", path}, &buf); err == nil {
		t.Fatal("empty doc set accepted")
	}
}

const sampleBenchDoc = "# Profiling\n" +
	"```sh\n" +
	"go test -run='^$' -bench=Sweep -benchtime=2x -cpuprofile cpu.out .\n" +
	"go test -run='^$' -bench=Wallclock -benchmem -benchtime=2x . | go run ./cmd/benchdiff -wallclock -baseline BENCH_wallclock.json\n" +
	"go tool pprof -top cpu.out\n" +
	"```\n" +
	"Inline: `go test ./internal/core -run TimelineStudy -v`.\n"

func TestExtractGoTestCommands(t *testing.T) {
	got := extractCommands(sampleBenchDoc)
	want := []string{
		"go test -run='^$' -bench=Sweep -benchtime=2x -cpuprofile cpu.out .",
		"go test -run='^$' -bench=Wallclock -benchmem -benchtime=2x . | go run ./cmd/benchdiff -wallclock -baseline BENCH_wallclock.json",
		"go test ./internal/core -run TimelineStudy -v",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extractCommands:\n got %q\nwant %q", got, want)
	}
}

func TestSmokeTestArgs(t *testing.T) {
	// Bench command: profiles land in the temp dir, unit tests are
	// skipped, and the benchtime reduction is appended last so it wins.
	got := commandArgs("go test -run='^$' -bench=Sweep -benchtime=2x -cpuprofile cpu.out .", true)
	want := []string{"go", "test", "-run='^$'", "-bench=Sweep", "-benchtime=2x",
		"-cpuprofile", filepath.Join(os.TempDir(), "cpu.out"), ".",
		"-run", "^$", "-benchtime", "1x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bench smoke args:\n got %q\nwant %q", got, want)
	}
	// The pipe into benchdiff is stripped with the rest of the shell.
	got = commandArgs("go test -bench=Wallclock . | go run ./cmd/benchdiff -wallclock", true)
	want = []string{"go", "test", "-bench=Wallclock", ".", "-run", "^$", "-benchtime", "1x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("piped bench args:\n got %q\nwant %q", got, want)
	}
	// A plain -run selection executes as written.
	got = commandArgs("go test ./internal/core -run TimelineStudy -v", true)
	want = []string{"go", "test", "./internal/core", "-run", "TimelineStudy", "-v"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plain test args:\n got %q\nwant %q", got, want)
	}
}

func TestPlainGoTestDetection(t *testing.T) {
	if !isPlainGoTest([]string{"go", "test", "./internal/lab", "-run", "X", "-v"}) {
		t.Fatal("plain -run selection not detected")
	}
	if isPlainGoTest([]string{"go", "test", "-run=^$", "-bench=Wallclock", "."}) {
		t.Fatal("bench command misclassified as plain go test")
	}
	if isPlainGoTest([]string{"go", "run", "./cmd/tables"}) {
		t.Fatal("go run misclassified as go test")
	}
}

func TestDriftedTestNameFails(t *testing.T) {
	// A documented -run selection that matches nothing must fail even
	// though `go test` itself exits 0 with "[no tests to run]".
	err := execute([]string{"go", "test", "repro/internal/pcb",
		"-run", "NoSuchTestEver"}, 2*time.Minute, true)
	if err == nil {
		t.Fatal("zero-match test selection accepted")
	}
	if !strings.Contains(err.Error(), "matched no tests") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same selection with a real test passes.
	if err := execute([]string{"go", "test", "repro/internal/pcb",
		"-run", "TestLookupExact"}, 2*time.Minute, true); err != nil {
		t.Fatalf("real selection failed: %v", err)
	}
}
