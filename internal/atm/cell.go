// Package atm implements the ATM substrate of the reproduction: 53-byte
// cells with real header encoding and HEC, the AAL3/4 adaptation layer
// (segmentation and reassembly with BOM/COM/EOM cell types, sequence
// numbers, Btag/Etag and length validation, and a real CRC-10), a model of
// the FORE TCA-100 adapter (36-cell transmit FIFO, 292-cell receive FIFO,
// wire pacing, per-frame receive interrupt), and the network driver that
// connects the adapter to the IP layer.
//
// The paper's ATM rows are produced by this code path: the driver charges
// per-cell and per-frame CPU costs as it moves real bytes through real
// cells, and the adapter's FIFO/wire model supplies the transmission and
// overlap timing.
package atm

import "fmt"

// CellSize is the size of an ATM cell: 5 header + 48 payload bytes.
const CellSize = 53

// PayloadSize is the ATM cell payload (the AAL SAR-PDU).
const PayloadSize = 48

// Cell is one raw ATM cell as it appears on the wire.
type Cell [CellSize]byte

// CellHeader is the decoded 5-byte ATM cell header (UNI format).
type CellHeader struct {
	GFC uint8  // generic flow control (4 bits)
	VPI uint8  // virtual path identifier (8 bits)
	VCI uint16 // virtual channel identifier (16 bits)
	PT  uint8  // payload type (3 bits)
	CLP bool   // cell loss priority
}

// hecTable drives the byte-at-a-time HEC CRC-8; entry v is the bitwise
// CRC of the single byte v (filled at init from hecBitwise, which the
// tests compare against).
var hecTable [256]byte

func init() {
	for v := 0; v < 256; v++ {
		hecTable[v] = hecBitwise([]byte{byte(v)})
	}
}

// hecBitwise is the reference CRC-8 with polynomial x^8+x^2+x+1 (0x07),
// one bit at a time.
func hecBitwise(b []byte) byte {
	var crc byte
	for _, v := range b {
		crc ^= v
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// hec computes the ATM Header Error Control byte: CRC-8 over the first
// four header bytes, table-driven.
func hec(b []byte) byte {
	var crc byte
	for _, v := range b[:4] {
		crc = hecTable[crc^v]
	}
	return crc
}

// Marshal encodes the header (computing the HEC) into the cell.
func (h CellHeader) Marshal(c *Cell) {
	c[0] = h.GFC<<4 | h.VPI>>4
	c[1] = h.VPI<<4 | byte(h.VCI>>12)
	c[2] = byte(h.VCI >> 4)
	c[3] = byte(h.VCI)<<4 | h.PT<<1
	if h.CLP {
		c[3] |= 1
	}
	c[4] = hec(c[:4])
}

// ParseHeader decodes and validates the cell header. It returns an error
// if the HEC does not match, which is how header corruption is detected.
func ParseHeader(c *Cell) (CellHeader, error) {
	if hec(c[:4]) != c[4] {
		return CellHeader{}, fmt.Errorf("atm: HEC mismatch")
	}
	var h CellHeader
	h.GFC = c[0] >> 4
	h.VPI = c[0]<<4 | c[1]>>4
	h.VCI = uint16(c[1]&0x0f)<<12 | uint16(c[2])<<4 | uint16(c[3])>>4
	h.PT = c[3] >> 1 & 0x7
	h.CLP = c[3]&1 != 0
	return h, nil
}

// Payload returns the cell's 48-byte payload region.
func (c *Cell) Payload() []byte { return c[5:] }
