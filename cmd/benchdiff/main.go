// Command benchdiff guards the paper metrics against regressions. The
// benchmark suite reports its headline numbers as custom metrics in
// simulated microseconds (unit "sim-µs/...") or percentages (unit
// "%..."); those are produced by the deterministic simulation, so they
// are exactly reproducible on any machine, unlike ns/op. benchdiff
// extracts them from `go test -bench` output and compares them against a
// committed baseline, failing on drift beyond a tolerance.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x | benchdiff -baseline BENCH_baseline.json
//	go test -run='^$' -bench=. -benchtime=1x | benchdiff -write BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baseline = fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
		write    = fs.String("write", "", "write a new baseline to this file instead of comparing")
		tol      = fs.Float64("tol", 0.001, "relative tolerance before a difference is a failure")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no paper metrics found in the bench output")
	}

	if *write != "" {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*write, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: wrote %d metrics to %s\n", len(got), *write)
		return nil
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	return compare(w, base, got, *tol)
}

// parseBench extracts the deterministic paper metrics from `go test
// -bench` output: every "value unit" pair whose unit starts with
// "sim-µs" or "%". Keys are "BenchName/unit" with the -GOMAXPROCS
// suffix stripped so baselines are machine-independent.
func parseBench(in io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if !strings.HasPrefix(unit, "sim-µs") && !strings.HasPrefix(unit, "%") {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			out[name+"/"+unit] = v
		}
	}
	return out, sc.Err()
}

func readBaseline(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]float64
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// compare reports metrics that drifted beyond tol, disappeared, or
// appeared without a baseline entry. New metrics are advisory; drift and
// disappearance fail.
func compare(w io.Writer, base, got map[string]float64, tol float64) error {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failures := 0
	for _, k := range keys {
		want := base[k]
		v, ok := got[k]
		if !ok {
			fmt.Fprintf(w, "MISSING %s (baseline %.4g)\n", k, want)
			failures++
			continue
		}
		if relDiff(v, want) > tol {
			if want != 0 {
				fmt.Fprintf(w, "DRIFT   %s: %.4g vs baseline %.4g (%+.2f%%)\n",
					k, v, want, (v-want)/want*100)
			} else {
				fmt.Fprintf(w, "DRIFT   %s: %.4g vs baseline 0\n", k, v)
			}
			failures++
		}
	}
	news := 0
	for k := range got {
		if _, ok := base[k]; !ok {
			fmt.Fprintf(w, "NEW     %s = %.4g (not in baseline; add with -write)\n", k, got[k])
			news++
		}
	}
	fmt.Fprintf(w, "benchdiff: %d baseline metrics, %d failures, %d new\n",
		len(keys), failures, news)
	if failures > 0 {
		return fmt.Errorf("%d metric(s) regressed", failures)
	}
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
