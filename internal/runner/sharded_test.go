package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/workload"
)

// trialJSON runs one workload trial (serial or sharded per t.Shards) on
// a fresh testbed and returns the outcome's JSON encoding — the exact
// bytes a sweep would persist, including the per-packet timeline.
func trialJSON(t *testing.T, trial WorkloadTrial) []byte {
	t.Helper()
	out, err := runWorkloadTrial(nil, trial, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedBitIdentityMatrix is the tentpole's metamorphic contract,
// run as a full matrix: every workload × every fabric × shard counts
// 1, 2, 4, and 7 must produce outcome JSON byte-identical to the serial
// run — same latencies in the same order, same elapsed, same per-packet
// event stream. Any scheduling divergence between the per-shard event
// loops and the serial loop shows up here as a byte diff.
func TestShardedBitIdentityMatrix(t *testing.T) {
	fabrics := []struct {
		name  string
		cfg   lab.Config
		hosts int
	}{
		{
			name:  "hub",
			cfg:   lab.Config{Link: lab.LinkATM, PacketTrace: true, Seed: 1994},
			hosts: 9,
		},
		{
			name: "fattree",
			cfg: lab.Config{Link: lab.LinkATM, PacketTrace: true, Seed: 1994,
				Fabric: lab.FabricFatTree, LeafPorts: 2},
			hosts: 9,
		},
		{
			// The loaded tier's shardable slice: every egress port behind
			// a RED discipline, whose lazy dequeue path stages cut cells
			// at commit time rather than transmit completion.
			name: "hub-red",
			cfg: lab.Config{Link: lab.LinkATM, PacketTrace: true, Seed: 1994,
				Qdisc: lab.QdiscConfig{Kind: lab.QdiscRED}},
			hosts: 9,
		},
	}
	gens := []workload.Generator{
		workload.Echo{Iterations: 8, Warmup: 2},
		workload.FanIn{Requests: 4},
		workload.Churn{Conns: 3},
		workload.Bulk{Bytes: 16384},
		// Cross traffic rides the fan-in: background flows span shards
		// and contend for the server egress, the case that forces
		// equal-time cut arrivals staged in different barrier rounds.
		workload.FanIn{Requests: 4, Cross: &workload.CrossTraffic{Flows: 2, Transfers: 2, MaxBytes: 32768}},
		// Link flaps ride the fan-in: the shard-safe fault subset flips
		// per-host adapter state on the host's owning shard and the
		// matching port state on the port's owner, mid-run retransmission
		// recovery included, and must not perturb bit identity.
		workload.FanIn{Requests: 4,
			Faults: sim.LinkFlaps(1994, []int{1, 2, 3}, 2, 20*sim.Millisecond, 500*sim.Microsecond)},
	}
	for _, fab := range fabrics {
		for _, gen := range gens {
			t.Run(fab.name+"/"+gen.Name(), func(t *testing.T) {
				hosts := fab.hosts
				if gen.Name() == "echo" && fab.cfg.Fabric == lab.FabricFatTree {
					// Echo uses hosts 0 and 1 only; one port per leaf
					// forces them onto different leaves so the trial
					// actually crosses a shard cut.
					hosts = 3
					fab.cfg.LeafPorts = 1
				}
				serial := trialJSON(t, WorkloadTrial{Cfg: fab.cfg, Hosts: hosts, Gen: gen})
				for _, shards := range []int{1, 2, 4, 7} {
					sharded := trialJSON(t, WorkloadTrial{
						Cfg: fab.cfg, Hosts: hosts, Gen: gen, Shards: shards,
					})
					if string(sharded) != string(serial) {
						t.Errorf("shards=%d: outcome diverged from serial\nserial:  %.220s\nsharded: %.220s",
							shards, serial, sharded)
					}
				}
			})
		}
	}
}

// TestShardedTestbedReuse pins the worker-affine cluster cache: the
// second trial of the same shape and shard count reuses the warm
// cluster, the outcome stays byte-identical to a fresh build, and a
// different shard count never satisfies the acquisition (a 4-shard
// cluster and a serial lab of the same shape are different machines).
func TestShardedTestbedReuse(t *testing.T) {
	cfg := lab.Config{Link: lab.LinkATM, PacketTrace: true, Seed: 21}
	trial := WorkloadTrial{Cfg: cfg, Hosts: 9, Gen: workload.FanIn{Requests: 4}, Shards: 4}

	fresh := trialJSON(t, trial)

	tb := &Testbeds{}
	// Warm the cache with an unrelated trial of the same shape.
	warm := trial
	warm.Cfg.Seed = 99
	warm.Gen = workload.Churn{Conns: 2}
	if _, err := runWorkloadTrial(tb, warm, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Built != 1 || tb.Reused != 0 {
		t.Fatalf("after warm trial: built=%d reused=%d, want 1/0", tb.Built, tb.Reused)
	}

	out, err := runWorkloadTrial(tb, trial, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Built != 1 || tb.Reused != 1 {
		t.Fatalf("after reused trial: built=%d reused=%d, want 1/1", tb.Built, tb.Reused)
	}
	b, _ := json.Marshal(out)
	if string(b) != string(fresh) {
		t.Error("reused cluster outcome diverged from fresh build")
	}

	// Same shape, different shard count: a distinct testbed.
	other := trial
	other.Shards = 2
	if _, err := runWorkloadTrial(tb, other, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Built != 2 {
		t.Fatalf("2-shard trial reused the 4-shard cluster (built=%d)", tb.Built)
	}
	// And the serial path must not see the sharded cache at all.
	serial := trial
	serial.Shards = 0
	if _, err := runWorkloadTrial(tb, serial, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Built != 3 {
		t.Fatalf("serial trial reused a sharded cluster (built=%d)", tb.Built)
	}
}

// TestShardedSweepDeterminism runs a small sharded sweep through the
// worker pool at 1 and 4 workers and requires byte-identical outcome
// sets — the PR 5 worker-count contract extended to sharded trials.
func TestShardedSweepDeterminism(t *testing.T) {
	var trials []WorkloadTrial
	for i, shards := range []int{1, 2, 4} {
		trials = append(trials, WorkloadTrial{
			Label:  fmt.Sprintf("cell%d", i),
			Cfg:    lab.Config{Link: lab.LinkATM, Seed: 1994},
			Hosts:  7,
			Gen:    workload.FanIn{Requests: 3},
			Shards: shards,
		})
	}
	run := func(workers int) []byte {
		outs, err := RunWorkloadSweep(context.Background(), trials, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(outs)
		return b
	}
	if got, want := run(4), run(1); string(got) != string(want) {
		t.Error("sharded sweep outcomes depend on worker count")
	}
	// Every cell ran the same simulation: shard count must not change
	// the physics, so all three outcomes agree on everything but labels.
	outs, err := RunWorkloadSweep(context.Background(), trials, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outs); i++ {
		a, b := outs[0], outs[i]
		if a.P50Micros != b.P50Micros || a.ElapsedMicros != b.ElapsedMicros ||
			a.Requests != b.Requests {
			t.Errorf("cell %d (shards=%d) diverged from cell 0: %+v vs %+v",
				i, trials[i].Shards, b, a)
		}
	}
}
