// The fault-recovery workload: fan-in traffic that survives a mid-run
// server crash. The server host crashes at a scheduled time (its TCP
// stack resets, in-flight state is lost, the access link goes dark) and
// restarts after a scheduled downtime; a supervisor re-listens on
// restart. Clients detect the outage with a response deadline, abort
// the dead connection, and reconnect under a bounded-retry policy,
// recording one recovery-time sample per survived outage — the metric
// core.RunFaultStudy compares across transports. The no-progress
// watchdog is armed like every multi-client generator, so a recovery
// that never happens aborts with a diagnostic instead of hanging.
package workload

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/rudp"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// faultAcceptMax is the accept-loop bound for the fault servers: clients
// reconnect an unknowable number of times, so the loop accepts until the
// listener dies (crash) or the run drains with the acceptor parked.
const faultAcceptMax = 1 << 30

// FaultRecovery is the crash-study generator. Every client paces
// requests at Interval so the configured crash lands mid-stream, then
// rides out the outage: deadline-abort, backoff, reconnect, retry the
// interrupted request. Host crashes mutate cross-shard state, so the
// generator is serial-only (lab.ScheduleFaults enforces this).
type FaultRecovery struct {
	Size     int      // request/response payload bytes (default 200)
	Requests int      // measured requests per client (default 20)
	Interval sim.Time // per-client request pacing (default 50ms)
	CrashAt  sim.Time // server crash time (default 500ms)
	Downtime sim.Time // crash-to-restart gap (default 1s)
	// Deadline bounds each connect attempt and each request/response
	// exchange; on expiry the client aborts the connection and treats
	// the operation as failed (default 250ms).
	Deadline sim.Time
	// Retries bounds consecutive failed reconnect attempts before the
	// client gives up and fails the run (default 16).
	Retries int
	// Backoff is the pause before each reconnect attempt (default 100ms).
	Backoff sim.Time
	// Transport selects "tcp" (default) or "rudp"; both ride the same
	// fault schedule, seeds, and recovery policy.
	Transport string
}

// Name implements Generator.
func (FaultRecovery) Name() string { return "faults" }

// withDefaults fills zero knobs.
func (g FaultRecovery) withDefaults() FaultRecovery {
	g.Size = defInt(g.Size, 200)
	g.Requests = defInt(g.Requests, 20)
	g.Interval = defDur(g.Interval, 50*sim.Millisecond)
	g.CrashAt = defDur(g.CrashAt, 500*sim.Millisecond)
	g.Downtime = defDur(g.Downtime, sim.Second)
	g.Deadline = defDur(g.Deadline, 250*sim.Millisecond)
	g.Retries = defInt(g.Retries, 16)
	g.Backoff = defDur(g.Backoff, 100*sim.Millisecond)
	return g
}

// Run implements Generator.
func (g FaultRecovery) Run(l *lab.Lab) (*Result, error) {
	g = g.withDefaults()
	if err := checkTransport(g.Transport, g.Size); err != nil {
		return nil, err
	}
	clients := len(l.Hosts) - 1
	r := &Result{Workload: "faults"}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	if err := l.ScheduleFaults(sim.CrashSchedule(0, g.CrashAt, g.Downtime)); err != nil {
		return nil, err
	}
	wd := armWatchdog(l)
	startTrace(l)

	// The server: listen, serve echoes, and — via the restart hook —
	// come back after the crash. The rudp path also needs a crash hook:
	// the lab resets the TCP stack itself, but a workload-owned rudp
	// endpoint is invisible to it.
	if g.Transport == TransportRUDP {
		var cur *rudp.Endpoint
		listen := func() error {
			e, err := rudp.Listen(l.Hosts[0].Kern, l.Hosts[0].UDP, Port)
			if err != nil {
				return err
			}
			cur = e
			l.Env.Spawn("server.faults",
				&rudpAcceptLoopFrame{e: e, env: l.Env, n: faultAcceptMax})
			return nil
		}
		if err := listen(); err != nil {
			return nil, err
		}
		l.OnHostCrash(0, func() {
			if cur != nil {
				cur.Crash()
				cur = nil
			}
		})
		l.OnHostRestart(0, func() {
			if err := listen(); err != nil {
				fail(err)
			}
		})
	} else {
		listen := func() error {
			ln, err := l.Hosts[0].TCP.Listen(Port)
			if err != nil {
				return err
			}
			l.Env.Spawn("server.faults", &acceptLoopFrame{
				ln: ln, n: faultAcceptMax,
				accepted: func(i int, op *tcp.AcceptOp) bool {
					op.C.SetNoDelay(true)
					l.Env.Spawn(fmt.Sprintf("server.faults.conn%d", i),
						&serveEchoFrame{so: op.So})
					return true
				},
			})
			return nil
		}
		if err := listen(); err != nil {
			return nil, err
		}
		l.OnHostRestart(0, func() {
			if err := listen(); err != nil {
				fail(err)
			}
		})
	}

	sink := newLatSink(clients, stats.Config{})
	sink.wd = wd
	recov := make([][]sim.Time, clients)
	var last sim.Time
	for ci := 0; ci < clients; ci++ {
		host := l.Hosts[ci+1]
		if g.Transport == TransportRUDP {
			l.Env.Spawn(fmt.Sprintf("client%d.faults", ci), &rudpFaultClientFrame{
				host: host, ci: ci, g: g,
				sink: sink, recov: &recov[ci], last: &last, r: r, fail: fail,
			})
			continue
		}
		l.Env.Spawn(fmt.Sprintf("client%d.faults", ci), &faultClientFrame{
			host: host, ci: ci, g: g,
			sink: sink, recov: &recov[ci], last: &last, r: r, fail: fail,
		})
	}

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := wd.Err(); err != nil {
		return nil, err
	}
	if err := sink.finish(r, g.Requests, "requests"); err != nil {
		return nil, err
	}
	for _, rs := range recov {
		r.Recoveries = append(r.Recoveries, rs...)
	}
	r.Bytes = int64(r.Requests) * int64(g.Size) * 2
	r.Elapsed = last
	collectTrace(l, r)
	return r, nil
}

// faultClientFrame is one TCP client of the fault workload: paced
// requests, a deadline on every connect and exchange, bounded-retry
// reconnects, one recovery sample per survived outage.
type faultClientFrame struct {
	host  *lab.Host
	ci    int
	g     FaultRecovery
	sink  *latSink
	recov *[]sim.Time
	last  *sim.Time
	r     *Result
	fail  func(error)

	pc       int
	env      *sim.Env
	gen      uint64 // deadline generation; a bump disarms pending timers
	attempts int    // consecutive failed connect attempts
	down     sim.Time
	conn     *tcp.ConnectOp
	so       *sock.Socket
	c        *tcp.Conn
	msg, buf []byte
	i        int
	start    sim.Time
	ex       *exchangeFrame
}

// deadline fires when an armed operation deadline elapses; a stale
// generation means the operation completed and disarmed it since.
func (f *faultClientFrame) deadline(gen uint64) {
	if gen != f.gen {
		return
	}
	if f.conn != nil {
		f.conn.Abort()
		return
	}
	if f.c != nil {
		f.c.Abort()
	}
}

// arm schedules the operation deadline under a fresh generation.
func (f *faultClientFrame) arm() {
	f.gen++
	f.env.AfterArg(f.g.Deadline, "faults.deadline", f.deadline, f.gen)
}

// reap returns the dead socket's buffered chains to the pool: the
// connection is closed and no operation of ours is parked on it, so the
// buffers are safe to release — without this every outage would strand
// the aborted request's mbufs for the run's lifetime.
func (f *faultClientFrame) reap() {
	f.so.Snd.Drop(f.so.Snd.Len())
	f.so.Rcv.Drop(f.so.Rcv.Len())
	f.so, f.c = nil, nil
}

// Step drives the client.
func (f *faultClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // prepare buffers
			f.env = p.Env()
			f.msg = make([]byte, f.g.Size)
			f.env.RNG().Fill(f.msg)
			f.buf = make([]byte, f.g.Size)
			f.pc = 1
		case 1: // connect attempt, deadline armed
			f.arm()
			f.pc = 2
			f.conn = f.host.TCP.Connect(p, lab.HostAddr(0), Port)
			return
		case 2: // connect result
			f.gen++ // disarm
			conn := f.conn
			f.conn = nil
			if conn.Err != nil {
				f.attempts++
				if f.attempts > f.g.Retries {
					f.fail(fmt.Errorf("client %d: gave up after %d reconnect attempts: %w",
						f.ci, f.attempts, conn.Err))
					p.Return()
					return
				}
				f.pc = 1
				if !p.Sleep(f.g.Backoff) {
					return
				}
				continue
			}
			f.so, f.c = conn.So, conn.C
			f.c.SetNoDelay(true)
			f.attempts = 0
			f.pc = 3
		case 3: // request loop head: pace to the request's slot
			if f.i >= f.g.Requests {
				f.pc = 6
				f.so.Close(p)
				return
			}
			f.pc = 4
			if target := sim.Time(f.i) * f.g.Interval; f.env.Now() < target {
				if !p.SleepUntil(target) {
					return
				}
			}
		case 4: // one exchange, deadline armed
			f.start = f.env.Now()
			f.arm()
			f.ex = &exchangeFrame{so: f.so, msg: f.msg, buf: f.buf}
			f.pc = 5
			p.Call(f.ex)
			return
		case 5: // exchange result
			f.gen++ // disarm
			ex := f.ex
			f.ex = nil
			if ex.Err != nil {
				// Outage detected: stamp its start (first detection only),
				// reap the dead connection, back off, reconnect, and retry
				// this same request.
				if f.down == 0 {
					f.down = f.env.Now()
				}
				f.reap()
				f.pc = 1
				if !p.Sleep(f.g.Backoff) {
					return
				}
				continue
			}
			now := f.env.Now()
			if f.down != 0 {
				*f.recov = append(*f.recov, now-f.down)
				f.down = 0
			}
			f.sink.record(f.ci, now-f.start, now)
			if now > *f.last {
				*f.last = now
			}
			if !bytesEqual(f.buf, f.msg) {
				f.r.Errors++
			}
			f.i++
			f.pc = 3
		case 6: // closed; done
			p.Return()
			return
		}
	}
}

// rudpFaultClientFrame is the rudp twin: redial instead of reconnect
// (rudp dialing is immediate — the first data packet carries setup), the
// same deadline/backoff/retry policy.
type rudpFaultClientFrame struct {
	host  *lab.Host
	ci    int
	g     FaultRecovery
	sink  *latSink
	recov *[]sim.Time
	last  *sim.Time
	r     *Result
	fail  func(error)

	pc       int
	env      *sim.Env
	gen      uint64
	attempts int
	down     sim.Time
	c        *rudp.Conn
	msg, buf []byte
	i        int
	start    sim.Time
	send     *rudp.SendOp
	recv     *rudp.RecvOp
}

// deadline aborts the in-flight exchange's connection on expiry.
func (f *rudpFaultClientFrame) deadline(gen uint64) {
	if gen != f.gen {
		return
	}
	if f.c != nil {
		f.c.Abort()
	}
}

// failExchange handles one failed send/recv: stamp the outage start,
// abort the stream (idempotent if the deadline already did), and drop
// the connection so the next attempt redials.
func (f *rudpFaultClientFrame) failExchange() {
	if f.down == 0 {
		f.down = f.env.Now()
	}
	f.c.Abort()
	f.c = nil
}

// Step drives the client.
func (f *rudpFaultClientFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // prepare buffers
			f.env = p.Env()
			f.msg = make([]byte, f.g.Size)
			f.env.RNG().Fill(f.msg)
			f.buf = make([]byte, rudp.MaxMessage)
			f.pc = 1
		case 1: // dial (bounded attempts, though rudp dialing is local)
			c, err := rudp.Dial(f.host.Kern, f.host.UDP, lab.HostAddr(0), Port)
			if err != nil {
				f.attempts++
				if f.attempts > f.g.Retries {
					f.fail(fmt.Errorf("client %d: gave up after %d redials: %w",
						f.ci, f.attempts, err))
					p.Return()
					return
				}
				f.pc = 1
				if !p.Sleep(f.g.Backoff) {
					return
				}
				continue
			}
			f.c = c
			f.attempts = 0
			f.pc = 2
		case 2: // request loop head: pace to the request's slot
			if f.i >= f.g.Requests {
				f.pc = 7
				f.c.Close(p)
				return
			}
			f.pc = 3
			if target := sim.Time(f.i) * f.g.Interval; f.env.Now() < target {
				if !p.SleepUntil(target) {
					return
				}
			}
		case 3: // send the request; the deadline covers send through reply
			f.start = f.env.Now()
			f.gen++
			f.env.AfterArg(f.g.Deadline, "faults.deadline", f.deadline, f.gen)
			f.pc = 4
			f.send = f.c.Send(p, f.msg)
			return
		case 4: // sent; read the response
			send := f.send
			f.send = nil
			if send.Err != nil {
				f.gen++ // disarm
				f.failExchange()
				f.pc = 1
				if !p.Sleep(f.g.Backoff) {
					return
				}
				continue
			}
			f.pc = 5
			f.recv = f.c.Recv(p, f.buf)
			return
		case 5: // exchange result
			f.gen++ // disarm
			recv := f.recv
			f.recv = nil
			if recv.Err != nil || recv.N != f.g.Size {
				// An aborted stream surfaces as end-of-stream (N 0); any
				// short reply counts as the same outage.
				f.failExchange()
				f.pc = 1
				if !p.Sleep(f.g.Backoff) {
					return
				}
				continue
			}
			now := f.env.Now()
			if f.down != 0 {
				*f.recov = append(*f.recov, now-f.down)
				f.down = 0
			}
			f.sink.record(f.ci, now-f.start, now)
			if now > *f.last {
				*f.last = now
			}
			if !bytesEqual(f.buf[:f.g.Size], f.msg) {
				f.r.Errors++
			}
			f.i++
			f.pc = 2
		case 7: // closed; done
			p.Return()
			return
		}
	}
}

// defDur is defInt for durations.
func defDur(v, d sim.Time) sim.Time {
	if v <= 0 {
		return d
	}
	return v
}
