package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample not zero")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	want := math.Sqrt((1 + 9 + 9 + 1) / 4.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 99: 99, 100: 100}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	var empty Sample
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		got := s.Percentile(float64(p % 101))
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentDecrease(t *testing.T) {
	if got := PercentDecrease(200, 100); got != 50 {
		t.Fatalf("PercentDecrease(200,100) = %v", got)
	}
	if got := PercentDecrease(100, 122); got != -22 {
		t.Fatalf("negative decrease = %v", got)
	}
	if got := PercentDecrease(0, 5); got != 0 {
		t.Fatalf("zero baseline = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Size", "RTT")
	tb.AddRow(4, 1021.0)
	tb.AddRow("big", "many")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "1021.0") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same width.
	if len(lines[3]) != len(lines[1]) && len(lines[4]) != len(lines[1]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title produced blank line")
	}
}
