package tcp

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/pcb"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/trace"
)

// Stats counts protocol events across a stack, for tests and reports.
type Stats struct {
	SegsIn          int64
	SegsOut         int64
	FastPathData    int64 // header-prediction hits, pure-data case
	FastPathAck     int64 // header-prediction hits, pure-ACK case
	SlowPath        int64
	ChecksumErrors  int64
	Retransmits     int64
	FastRetransmits int64
	DelayedAcks     int64
	DupSegs         int64
	OutOfOrderSegs  int64
	PCBCacheHits    int64
	PCBListSearched int64
}

// Stack is one host's TCP layer. It implements ip.Handler.
type Stack struct {
	K  *kern.Kernel
	IP *ip.Stack

	// Table demultiplexes incoming segments. Its organization (list
	// versus hash, cache on or off) is the §3 experimental variable.
	Table pcb.Table

	// PredictionEnabled controls both halves of header prediction: the
	// PCB cache and the tcp_input fast path. The paper's "no prediction"
	// kernel disables both.
	PredictionEnabled bool

	// Mode is the checksum configuration (§4). Both ends of a
	// connection must agree, which the paper arranges with the
	// Alternate Checksum Option at connection setup.
	Mode cost.ChecksumMode

	// SockBuf, when positive, overrides the send and receive socket
	// buffer high-water marks of every socket the stack creates — the
	// buffering knob behind the paper's back-to-back-segments
	// observation (sock.DefaultHiwat reproduces it; smaller values
	// serialize large transfers behind window updates).
	SockBuf int

	// DisableGiveUp removes the maxRexmtShift drop, restoring the
	// historical behaviour where a connection whose peer silently
	// vanished retransmits forever. Only the watchdog revert-guard
	// tests set it: they prove the no-progress watchdog converts that
	// livelock into a failing run with a diagnostic.
	DisableGiveUp bool

	Stats Stats

	listeners map[uint16]*Listener
	nextPort  uint16
	nextISS   Seq

	// deferred protocol work (timer expirations) executed by the
	// stack's service process, which can block on driver FIFOs.
	due   []func(p *sim.Proc)
	workQ *sim.WaitQueue

	// crashed holds the connections dropped by Crash until ReapCrashed
	// can safely return their buffered mbuf chains to the pool.
	crashed []*Conn

	inOp *inputOp // cached input frame (nil while in use)
}

// NewStack creates the TCP layer for a host, registers it with IP, and
// starts its timer service process.
func NewStack(k *kern.Kernel, ipStack *ip.Stack) *Stack {
	s := &Stack{
		K:                 k,
		IP:                ipStack,
		PredictionEnabled: true,
		listeners:         make(map[uint16]*Listener),
		nextPort:          1024,
		nextISS:           1, // deterministic ISS: reproducibility over security
		workQ:             k.Env.NewWaitQueue(k.Name + ".tcp.work"),
	}
	ipStack.Register(ip.ProtoTCP, s)
	s.inOp = &inputOp{s: s}
	k.Env.Spawn(k.Name+".tcptimer", &workLoopFrame{s: s})
	return s
}

// Reset returns the stack to its just-constructed state for testbed
// reuse: demultiplexing table emptied (retaining its hash buckets),
// listeners and connections discarded, the deterministic port and ISS
// counters rewound, statistics and deferred work cleared. The timer
// service process stays parked on its wait queue, exactly where a fresh
// stack's lands after its spawn event. Configuration knobs the lab
// applies after construction (Mode, SockBuf, PredictionEnabled,
// Table.UseHash) are reset to their constructed defaults; the caller
// re-applies the trial's values afterwards, as it would on a new stack.
func (s *Stack) Reset() {
	s.Table.Reset()
	clear(s.listeners)
	s.nextPort = 1024
	s.nextISS = 1
	s.Stats = Stats{}
	s.PredictionEnabled = true
	s.Mode = cost.ChecksumStandard
	s.SockBuf = 0
	s.DisableGiveUp = false
	for i := range s.due {
		s.due[i] = nil
	}
	s.due = s.due[:0]
	s.ReapCrashed()
}

// Crash simulates a kernel crash mid-run: every connection's PCB and
// timer state is discarded locally — no FIN, no RST, the peer learns
// nothing until its own timers fire — every listener closes (parked
// Accepts fail with ErrCrashed), and deferred timer work dies with the
// kernel. Sockets are poisoned with ErrCrashed so blocked readers and
// writers wake and unwind. The dropped connections' buffered mbuf
// chains are NOT freed here: a reader or writer parked mid-copy still
// holds a cursor into them, so the sweep is deferred to ReapCrashed,
// which the lab runs at host restart (microseconds after the crash
// every such op has resumed and unwound; restarts come seconds later).
func (s *Stack) Crash() {
	for _, ent := range s.Table.Entries() {
		switch owner := ent.Owner.(type) {
		case *Conn:
			owner.abortWith(ErrCrashed)
			s.crashed = append(s.crashed, owner)
		case *Listener:
			owner.err = ErrCrashed
			owner.backlog = nil // the embryonic conns are dropped above
			s.Table.Remove(ent)
			owner.wq.WakeAll()
		default:
			panic("tcp: unknown PCB owner")
		}
	}
	clear(s.listeners)
	for i := range s.due {
		s.due[i] = nil
	}
	s.due = s.due[:0]
}

// ReapCrashed frees the socket buffers of connections dropped by Crash
// (their reassembly queues were freed at abort), returning the mbufs to
// the pool so a crash trial stays leak-free under the Config.CheckLeaks
// gate. Callers must invoke it only once every operation blocked on a
// crashed socket has unwound — at host restart, or at stack Reset.
func (s *Stack) ReapCrashed() {
	for i, c := range s.crashed {
		so := c.so
		so.Snd.Drop(so.Snd.Len())
		so.Rcv.Drop(so.Rcv.Len())
		s.crashed[i] = nil
	}
	s.crashed = s.crashed[:0]
}

// dispatch queues protocol work for the service process. Timer events use
// it because event callbacks cannot block on FIFO space.
func (s *Stack) dispatch(fn func(p *sim.Proc)) {
	s.due = append(s.due, fn)
	s.workQ.Wake()
}

// workLoopFrame is the timer service process: each Step either parks on
// the work queue or pops and runs one deferred function. A function that
// needs to transmit pushes the connection's output frame as its last
// action; the loop resumes — and drains the next item — when that frame
// pops.
type workLoopFrame struct {
	s *Stack
}

func (f *workLoopFrame) Step(p *sim.Proc) {
	s := f.s
	if len(s.due) == 0 {
		s.workQ.Wait(p)
		return
	}
	fn := s.due[0]
	copy(s.due, s.due[1:])
	s.due[len(s.due)-1] = nil
	s.due = s.due[:len(s.due)-1]
	fn(p)
}

// allocPort returns a fresh ephemeral port.
func (s *Stack) allocPort() uint16 {
	s.nextPort++
	return s.nextPort
}

// newConn builds a connection bound to a fresh socket.
func (s *Stack) newConn() *Conn {
	so := sock.New(s.K)
	so.Mode = s.Mode
	if s.SockBuf > 0 {
		so.Snd.Hiwat = s.SockBuf
		so.Rcv.Hiwat = s.SockBuf
	}
	c := &Conn{
		S:            s,
		K:            s.K,
		so:           so,
		state:        StateClosed,
		mss:          defaultMSS,
		wantCksumOff: s.Mode == cost.ChecksumNone,
		outWait:      s.K.Env.NewWaitQueue(s.K.Name + ".tcp.outlock"),
	}
	c.rexmtCb = c.rexmtTimer
	c.delackCb = c.delackTimer
	so.Proto = c
	return c
}

// mtuMSS derives the MSS from the attached interface.
func (s *Stack) mtuMSS() int {
	return s.IP.If.MTU() - ip.HeaderLen - HeaderLen
}

// Connect opens a connection to dst:port. It is a frame call: the
// returned op is pushed onto p and must be Connect's caller's last
// action before its Step returns; the op's So/C/Err fields are valid
// when the caller's Step next resumes.
func (s *Stack) Connect(p *sim.Proc, dst uint32, port uint16) *ConnectOp {
	f := &ConnectOp{s: s, dst: dst, port: port}
	p.Call(f)
	return f
}

// ConnectOp is the resumable state of one Connect call: send the SYN,
// then park on the socket's state queue until establishment completes
// (or fails). Connection setup is a cold path, so the frame is allocated
// per call.
type ConnectOp struct {
	s    *Stack
	pc   int
	dst  uint32
	port uint16
	c    *Conn

	// Results, valid once the op returns.
	So  *sock.Socket
	C   *Conn
	Err error
}

func (f *ConnectOp) Step(p *sim.Proc) {
	s := f.s
	switch f.pc {
	case 0:
		c := s.newConn()
		key := pcb.Key{
			LocalAddr:  s.IP.Addr,
			RemoteAddr: f.dst,
			LocalPort:  s.allocPort(),
			RemotePort: f.port,
		}
		c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
		c.so.TraceID = connTraceID(key)
		s.Table.Insert(c.pcbEntry)
		s.nextISS += 64000
		c.iss = s.nextISS
		c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
		c.mss = s.mtuMSS()
		c.cwnd = c.mss
		c.ssthresh = 65535
		c.state = StateSynSent
		f.c = c
		f.pc = 1
		c.output(p)
	case 1:
		c := f.c
		if !c.so.Connected && c.so.Err == nil {
			c.so.StateQ.Wait(p)
			return
		}
		if c.so.Err != nil {
			f.Err = c.so.Err
		} else {
			f.So, f.C = c.so, c
		}
		p.Return()
	}
}

// Abort cancels an in-flight connect: the half-open connection is torn
// down and the op completes with ErrAborted. A no-op before the op
// starts or once establishment has completed either way. It is how a
// client bounds connection setup with its own deadline — the SYN
// retransmission schedule alone takes minutes to give up.
func (f *ConnectOp) Abort() {
	if f.c != nil && !f.c.so.Connected && f.c.so.Err == nil {
		f.c.abortWith(ErrAborted)
	}
}

// InsertIdlePCB inserts a synthetic inactive connection into the
// demultiplexing table. The §3 experiments use it to control the PCB list
// length the lookup must search, standing in for the paper's population of
// daemon connections.
func (s *Stack) InsertIdlePCB(remoteAddr uint32, remotePort uint16) {
	c := s.newConn()
	key := pcb.Key{
		LocalAddr:  s.IP.Addr,
		RemoteAddr: remoteAddr,
		LocalPort:  s.allocPort(),
		RemotePort: remotePort,
	}
	c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
	s.Table.Insert(c.pcbEntry)
}

// Listener accepts incoming connections on a port.
type Listener struct {
	s       *Stack
	port    uint16
	pcbEnt  *pcb.PCB
	backlog []*Conn
	wq      *sim.WaitQueue
	err     error // set when the listener dies (host crash); fails Accepts
}

// Listen starts accepting connections on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if _, busy := s.listeners[port]; busy {
		return nil, fmt.Errorf("tcp: port %d already listening", port)
	}
	l := &Listener{
		s:    s,
		port: port,
		wq:   s.K.Env.NewWaitQueue(fmt.Sprintf("%s.tcp.accept:%d", s.K.Name, port)),
	}
	l.pcbEnt = &pcb.PCB{Key: pcb.Key{LocalPort: port}, Owner: l}
	s.Table.Insert(l.pcbEnt)
	s.listeners[port] = l
	return l, nil
}

// Accept waits until a connection is established and delivers its
// socket. It is a frame call: the returned op is pushed onto p and must
// be Accept's caller's last action before its Step returns; the op's
// So/C fields are valid when the caller's Step next resumes.
func (l *Listener) Accept(p *sim.Proc) *AcceptOp {
	f := &AcceptOp{l: l}
	p.Call(f)
	return f
}

// AcceptOp is the resumable state of one Accept call. Accepting is a
// cold path, so the frame is allocated per call.
type AcceptOp struct {
	l *Listener

	// Results, valid once the op returns: So/C on success, Err when the
	// listener died (host crash) before a connection arrived.
	So  *sock.Socket
	C   *Conn
	Err error
}

func (f *AcceptOp) Step(p *sim.Proc) {
	l := f.l
	if l.err != nil {
		f.Err = l.err
		p.Return()
		return
	}
	if len(l.backlog) == 0 {
		l.wq.Wait(p)
		return
	}
	c := l.backlog[0]
	copy(l.backlog, l.backlog[1:])
	l.backlog[len(l.backlog)-1] = nil
	l.backlog = l.backlog[:len(l.backlog)-1]
	f.So, f.C = c.so, c
	p.Return()
}

// Input implements ip.Handler: checksum verification, PCB demultiplexing
// (with the single-entry cache), header prediction, and the slow path.
// The mbuf chain m holds the TCP segment (header plus data). It is a
// frame call: the input frame is pushed onto p, so Input must be the
// caller's last action before its Step returns.
func (s *Stack) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	f := s.inOp
	if f != nil {
		s.inOp = nil
	} else {
		f = &inputOp{s: s}
	}
	f.pc, f.h, f.m, f.tagged = 0, h, m, false
	p.Call(f)
}

// inputOp is the resumable state of one segment's input processing:
// parse, PCB lookup, checksum verification, and dispatch to the owning
// connection or listener. The stack caches one — input runs from the
// netisr, which processes one datagram at a time.
type inputOp struct {
	s      *Stack
	pc     int
	h      ip.Header
	m      *mbuf.Mbuf
	th     Header
	off    int
	segLen int
	pktID  trace.PacketID
	tagged bool
	ent    *pcb.PCB
	ps     checksum.Partial
	csM    *mbuf.Mbuf // integrated-verification chain cursor
	ok     bool       // checksum verdict
}

func (f *inputOp) Step(p *sim.Proc) {
	s := f.s
	k := s.K
	for {
		switch f.pc {
		case 0: // parse, tag, PCB demultiplex (cache, then list or hash)
			s.Stats.SegsIn++
			f.segLen = mbuf.ChainLen(f.m)

			// Header scratch on the stack (20 bytes plus the two options
			// this stack uses); Parse copies what it keeps, so this must
			// not escape.
			var raw [maxHeaderLen]byte
			nn := mbuf.CopyBytesTo(f.m, 0, maxHeaderLen, raw[:])
			th, off, err := Parse(raw[:nn])
			if err != nil {
				k.Pool.Free(f.m)
				f.pc = 7
				continue
			}
			f.th, f.off = th, off

			// Tag the process with the segment's on-wire identity for the
			// rest of input processing: the PCB lookup, checksum
			// verification, and tcp_input charges all attribute to this
			// packet in the event stream. (A response transmitted from
			// inside input pushes its own identity on top.) Untraced runs
			// skip the push — the tag stack exists only for trace
			// attribution and pushing boxes the identity, one heap
			// allocation per segment.
			f.pktID = trace.PacketID{}
			if k.Trace.PacketsEnabled() {
				f.pktID = trace.PacketID{
					Src:     f.h.Src,
					Dst:     f.h.Dst,
					SrcPort: th.SrcPort,
					DstPort: th.DstPort,
					Seq:     uint32(th.Seq),
				}
				f.tagged = true
				p.PushTag(f.pktID)
				k.Trace.Event(trace.Event{
					Kind: trace.EvTCPInput, At: k.Now(), ID: f.pktID,
					Len: f.segLen, Aux: int64(th.Flags),
				})
			}

			probe := pcb.Key{
				LocalAddr:  f.h.Dst,
				RemoteAddr: f.h.Src,
				LocalPort:  th.DstPort,
				RemotePort: th.SrcPort,
			}
			s.Table.CacheDisabled = !s.PredictionEnabled
			ent, res := s.Table.Lookup(probe)
			f.ent = ent
			if k.Trace.PacketRecording() {
				searched := int64(res.Searched)
				if res.CacheHit {
					searched = -1
				}
				k.Trace.Event(trace.Event{
					Kind: trace.EvPCBLookup, At: k.Now(), ID: f.pktID, Aux: searched,
				})
			}
			f.pc = 1
			if res.CacheHit {
				s.Stats.PCBCacheHits++
				if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.PCBCacheHit) {
					return
				}
			} else {
				s.Stats.PCBListSearched += int64(res.Searched)
				var searchCost sim.Time
				if s.Table.UseHash {
					searchCost = k.Cost.PCBHashLookup
				} else {
					searchCost = k.Cost.PCBLookupFixed +
						sim.Time(res.Searched)*k.Cost.PCBLookupPerEntry
				}
				if !k.Use(p, trace.LayerTCPSegmentRx, searchCost) {
					return
				}
			}

		case 1: // lookup result; decide whether the checksum applies
			if f.ent == nil {
				// No connection: drop (a full stack would send RST).
				k.Pool.Free(f.m)
				f.pc = 7
				continue
			}
			// Checksum verification. BSD verifies before the PCB lookup;
			// with the Alternate Checksum Option the mode is per
			// connection, so the lookup has to come first. A segment whose
			// corrupted ports demux to the wrong (or no) connection is
			// still dropped — here, by that connection's own checksum, or
			// by the sequence checks. Whether the checksum applies: never
			// for SYNs (negotiation is not complete), and not when both
			// ends negotiated it off.
			verify := true
			if conn, isConn := f.ent.Owner.(*Conn); isConn &&
				conn.cksumOff && f.th.Flags&FlagSYN == 0 {
				verify = false
			}
			if !verify {
				f.ok = true
				f.pc = 5
				continue
			}
			if s.Mode == cost.ChecksumIntegrated {
				// Verify using the partial sums the ATM driver stashed
				// during its device-to-kernel copy.
				f.ps = pseudoPartial(f.h, f.segLen)
				f.csM = f.m
				f.pc = 2
				continue
			}
			nm := mbuf.ChainCount(f.m)
			f.pc = 4
			if !k.Use(p, trace.LayerTCPCksumRx,
				k.Cost.TCPKernelChecksum.Cost(f.segLen)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf) {
				return
			}

		case 2: // integrated verification: per-mbuf charge for the next link
			m := f.csM
			if m == nil {
				f.ok = f.ps.Sum16() == 0xffff
				f.pc = 5
				continue
			}
			var d sim.Time
			if m.CsumValid {
				d = k.Cost.ChecksumCombine
			} else {
				d = sim.Time(k.Cost.TCPKernelChecksum.PerByte * float64(m.Len()))
			}
			f.pc = 3
			if !k.Use(p, trace.LayerTCPCksumRx, d) {
				return
			}

		case 3: // integrated verification: fold the charged link, advance
			m := f.csM
			if m.CsumValid {
				f.ps.Combine(m.Csum)
			} else {
				f.ps.Add(m.Bytes())
			}
			f.csM = m.Next()
			f.pc = 2

		case 4: // standard verification: one charged pass over real bytes
			ps := pseudoPartial(f.h, f.segLen)
			for c := f.m; c != nil; c = c.Next() {
				ps.Add(c.Bytes())
			}
			f.ok = ps.Sum16() == 0xffff
			f.pc = 5

		case 5: // checksum verdict, strip header, dispatch to the owner
			if !f.ok {
				s.Stats.ChecksumErrors++
				k.Pool.Free(f.m)
				f.pc = 7
				continue
			}
			// Strip the TCP header; the remaining chain is the data.
			f.m = k.Pool.Drop(f.m, f.off)
			switch owner := f.ent.Owner.(type) {
			case *Listener:
				k.Pool.Free(f.m)
				f.m = nil
				f.pc = 6
				if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputSlow) {
					return
				}
			case *Conn:
				f.pc = 7
				owner.input(p, f.th, f.m)
				f.m = nil
				return
			default:
				panic("tcp: unknown PCB owner")
			}

		case 6: // listener input: a SYN creates an embryonic connection
			s.Stats.SlowPath++
			l := f.ent.Owner.(*Listener)
			th := f.th
			if th.Flags&FlagSYN == 0 || th.Flags&FlagACK != 0 {
				f.pc = 7
				continue
			}
			c := s.newConn()
			key := pcb.Key{
				LocalAddr:  s.IP.Addr,
				RemoteAddr: f.h.Src,
				LocalPort:  l.port,
				RemotePort: th.SrcPort,
			}
			c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
			c.so.TraceID = connTraceID(key)
			s.Table.Insert(c.pcbEntry)
			c.listener = l
			s.nextISS += 64000
			c.iss = s.nextISS
			c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
			c.irs = th.Seq
			c.rcvNxt = th.Seq.Add(1)
			c.mss = s.mtuMSS()
			if th.MSS != 0 && int(th.MSS) < c.mss {
				c.mss = int(th.MSS)
			}
			if th.AltCksum == AltCksumNone && c.wantCksumOff {
				c.cksumOff = true
			}
			c.cwnd = c.mss
			c.ssthresh = 65535
			c.sndWnd = int(th.Win)
			c.state = StateSynRcvd
			c.flagAckNow = true
			f.pc = 7
			c.output(p)
			return

		case 7: // finish: restore the tag, recycle the frame
			if f.tagged {
				p.PopTag()
			}
			f.m, f.ent, f.csM = nil, nil, nil
			if s.inOp == nil {
				s.inOp = f
			}
			p.Return()
			return
		}
	}
}

// connTraceID is the connection-scoped trace identity (4-tuple, Seq
// zero) socket-layer events are stamped with.
func connTraceID(key pcb.Key) trace.PacketID {
	return trace.PacketID{
		Src:     key.LocalAddr,
		Dst:     key.RemoteAddr,
		SrcPort: key.LocalPort,
		DstPort: key.RemotePort,
	}
}
