// Package udp implements a UDP layer on the simulated stack. The paper
// leans on UDP context twice: §4.2 opens from the observation that "it is
// already common practice to eliminate the UDP checksum for local area
// NFS traffic" (UDP's checksum has been optional since RFC 768 — a zero
// checksum field means "not computed"), and the Digital OSF comparison in
// §4.1.1 concerns a combined copy-and-checksum on the UDP receive path.
//
// Having UDP in the testbed also answers the question the paper's
// introduction poses — "can we provide evidence that TCP is a viable
// option for a transport layer for RPC?" — by providing the datagram
// baseline an RPC system would otherwise use; the extension experiment in
// internal/core compares echo latency over both transports.
package udp

import (
	"fmt"

	"repro/internal/checksum"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HeaderLen is the UDP header length.
const HeaderLen = 8

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Header is a parsed UDP header.
type Header struct {
	SrcPort, DstPort uint16
	Length           int // header + payload
	Cksum            uint16
}

// Marshal encodes the header with a zero checksum field.
func (h *Header) Marshal(b []byte) {
	b[0] = byte(h.SrcPort >> 8)
	b[1] = byte(h.SrcPort)
	b[2] = byte(h.DstPort >> 8)
	b[3] = byte(h.DstPort)
	b[4] = byte(h.Length >> 8)
	b[5] = byte(h.Length)
	b[6], b[7] = 0, 0
}

// ParseHeader decodes a header from b.
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("udp: short header (%d bytes)", len(b))
	}
	h.SrcPort = uint16(b[0])<<8 | uint16(b[1])
	h.DstPort = uint16(b[2])<<8 | uint16(b[3])
	h.Length = int(b[4])<<8 | int(b[5])
	h.Cksum = uint16(b[6])<<8 | uint16(b[7])
	return h, nil
}

// Datagram is one received datagram.
type Datagram struct {
	Src     uint32
	SrcPort uint16
	Data    []byte
}

// Endpoint is a bound UDP port: a receive queue plus send capability.
type Endpoint struct {
	s    *Stack
	port uint16
	q    []Datagram
	wq   *sim.WaitQueue
}

// Stack is one host's UDP layer. It implements ip.Handler.
type Stack struct {
	K  *kern.Kernel
	IP *ip.Stack

	// ChecksumOff sends datagrams with a zero (absent) checksum, the
	// local-area NFS configuration. Reception always honours the wire:
	// a zero checksum field is accepted unverified, a nonzero one is
	// verified (RFC 768 semantics).
	ChecksumOff bool

	ports    map[uint16]*Endpoint
	nextPort uint16

	// Stats.
	DatagramsIn    int64
	DatagramsOut   int64
	ChecksumErrors int64
	NoPortDrops    int64
}

// NewStack creates the UDP layer and registers it with IP.
func NewStack(k *kern.Kernel, ipStack *ip.Stack) *Stack {
	s := &Stack{K: k, IP: ipStack, ports: make(map[uint16]*Endpoint), nextPort: 2048}
	ipStack.Register(ProtoUDP, s)
	return s
}

// Reset returns the stack to its just-constructed state for testbed
// reuse: bound ports released, the ephemeral port counter rewound, the
// checksum policy back to default, statistics cleared. The IP
// registration survives — it is part of the topology.
func (s *Stack) Reset() {
	clear(s.ports)
	s.nextPort = 2048
	s.ChecksumOff = false
	s.DatagramsIn, s.DatagramsOut, s.ChecksumErrors, s.NoPortDrops = 0, 0, 0, 0
}

// Bind claims a port (0 means an ephemeral one) and returns its endpoint.
func (s *Stack) Bind(port uint16) (*Endpoint, error) {
	if port == 0 {
		s.nextPort++
		port = s.nextPort
	}
	if _, busy := s.ports[port]; busy {
		return nil, fmt.Errorf("udp: port %d in use", port)
	}
	e := &Endpoint{
		s:    s,
		port: port,
		wq:   s.K.Env.NewWaitQueue(fmt.Sprintf("%s.udp:%d", s.K.Name, port)),
	}
	s.ports[port] = e
	return e, nil
}

// Port returns the endpoint's bound port.
func (e *Endpoint) Port() uint16 { return e.port }

// SendTo transmits one datagram. The cost structure mirrors the TCP
// output path minus connection state: syscall + copyin under the User
// row, checksum under TCP.checksum (the paper's tables use that row for
// transport checksums generally), and a light protocol-processing charge.
func (e *Endpoint) SendTo(p *sim.Proc, dst uint32, dstPort uint16, data []byte) {
	k := e.s.K
	k.Use(p, trace.LayerUserTx, k.Cost.WriteSyscall)

	// Copy user data into mbufs with the same sizing policy as sosend.
	var chain, tail *mbuf.Mbuf
	rest := data
	useClusters := len(data) > mbuf.ClusterThreshold
	for len(rest) > 0 || chain == nil {
		var m *mbuf.Mbuf
		if useClusters {
			m = k.AllocCluster(p, trace.LayerUserTx)
		} else {
			m = k.AllocMbuf(p, trace.LayerUserTx)
		}
		n := m.Append(rest)
		rest = rest[n:]
		k.Use(p, trace.LayerUserTx,
			k.Cost.CopyinFixed+sim.Time(k.Cost.CopyinPerByte*float64(n)))
		if chain == nil {
			chain = m
		} else {
			tail.SetNext(m)
		}
		tail = m
		if len(rest) == 0 {
			break
		}
	}

	// Header + optional checksum over real bytes.
	hm := k.AllocMbuf(p, trace.LayerTCPSegmentTx)
	h := Header{SrcPort: e.port, DstPort: dstPort, Length: HeaderLen + len(data)}
	hdr := make([]byte, HeaderLen)
	h.Marshal(hdr)
	hm.Append(hdr)
	hm.SetNext(chain)
	k.Use(p, trace.LayerTCPSegmentTx, k.Cost.UsrreqDispatch+k.Cost.TCPOutputSegment.Fixed/2)
	if !e.s.ChecksumOff {
		nm := mbuf.ChainCount(hm)
		k.Use(p, trace.LayerTCPCksumTx,
			k.Cost.TCPKernelChecksum.Cost(h.Length)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf)
		ps := udpPseudo(e.s.IP.Addr, dst, h.Length)
		for m := hm; m != nil; m = m.Next() {
			ps.Add(m.Bytes())
		}
		ck := ps.Checksum()
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted as all ones
		}
		b := hm.Bytes()
		b[6] = byte(ck >> 8)
		b[7] = byte(ck)
	}
	e.s.DatagramsOut++
	e.s.IP.Output(p, dst, ProtoUDP, hm)
}

// RecvFrom blocks until a datagram arrives and returns it.
func (e *Endpoint) RecvFrom(p *sim.Proc) Datagram {
	k := e.s.K
	for len(e.q) == 0 {
		k.SleepOn(p, e.wq)
	}
	k.Use(p, trace.LayerUserRx, k.Cost.ReadSyscall)
	d := e.q[0]
	copy(e.q, e.q[1:])
	e.q = e.q[:len(e.q)-1]
	k.Use(p, trace.LayerUserRx,
		k.Cost.CopyoutFixed+sim.Time(k.Cost.CopyoutPerByte*float64(len(d.Data))))
	return d
}

// Pending returns the number of queued datagrams.
func (e *Endpoint) Pending() int { return len(e.q) }

// Input implements ip.Handler.
func (s *Stack) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	k := s.K
	defer k.Pool.Free(m)
	raw := make([]byte, HeaderLen)
	if mbuf.CopyBytesTo(m, 0, HeaderLen, raw) != HeaderLen {
		return
	}
	uh, err := ParseHeader(raw)
	if err != nil || uh.Length != mbuf.ChainLen(m) {
		return
	}
	k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast)
	if uh.Cksum != 0 {
		// A nonzero checksum field must verify (RFC 768).
		nm := mbuf.ChainCount(m)
		k.Use(p, trace.LayerTCPCksumRx,
			k.Cost.TCPKernelChecksum.Cost(uh.Length)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf)
		ps := udpPseudo(h.Src, h.Dst, uh.Length)
		for c := m; c != nil; c = c.Next() {
			ps.Add(c.Bytes())
		}
		if ps.Sum16() != 0xffff {
			s.ChecksumErrors++
			return
		}
	}
	ep, ok := s.ports[uh.DstPort]
	if !ok {
		s.NoPortDrops++
		return
	}
	data := make([]byte, uh.Length-HeaderLen)
	mbuf.CopyBytesTo(m, HeaderLen, len(data), data)
	s.DatagramsIn++
	ep.q = append(ep.q, Datagram{Src: h.Src, SrcPort: uh.SrcPort, Data: data})
	ep.wq.WakeAll()
}

// udpPseudo primes a partial sum with the UDP pseudo-header.
func udpPseudo(src, dst uint32, length int) checksum.Partial {
	var p checksum.Partial
	p.AddWord(uint16(src >> 16))
	p.AddWord(uint16(src))
	p.AddWord(uint16(dst >> 16))
	p.AddWord(uint16(dst))
	p.AddWord(ProtoUDP)
	p.AddWord(uint16(length))
	return p
}
