// Cross traffic: deterministic background load that shares the fabric
// with a measured workload, so the measured flows compete for switch
// egress queues and server CPU the way real traffic does — the loaded
// regime the qdisc and burst-loss knobs exist to study.
//
// Transfer sizes are heavy-tailed (bounded Pareto), the classic shape of
// observed flow-size distributions: most transfers are mice, a few are
// elephants that stand on a switch queue for many cell times. Every
// size is a pure function of (Seed, flow, transfer) through a splitmix
// hash — no draw touches any environment RNG stream — and each flow
// runs a fixed number of transfers, so cross traffic neither perturbs
// the measured workload's random draws nor needs a stop flag a sharded
// run couldn't share.
package workload

import (
	"fmt"
	"math"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/tcp"
)

// CrossPort is the well-known port the cross-traffic sink listens on,
// beside the measured workload's Port.
const CrossPort = 9008

// CrossTraffic configures background load. The zero value of each field
// takes a default; a nil *CrossTraffic on a workload means no load.
type CrossTraffic struct {
	// Flows is the number of concurrent background flows (default 2).
	// Flow f originates on client host 1 + f mod (hosts-1), so flows
	// share adapters and switch ports with measured clients.
	Flows int
	// Transfers is the fixed number of transfers per flow (default 4).
	Transfers int
	// MinBytes / MaxBytes bound the per-transfer size (defaults 512 and
	// 262144): the bounded-Pareto support [L, H].
	MinBytes int
	MaxBytes int
	// Alpha is the Pareto tail index (default 1.3; smaller = heavier).
	Alpha float64
	// Gap is the idle time between one flow's transfers (default 2ms).
	Gap sim.Time
	// Seed seeds the size-draw hash stream (default 1).
	Seed uint64
}

// withDefaults returns the configuration with zero fields defaulted.
func (ct CrossTraffic) withDefaults() CrossTraffic {
	ct.Flows = defInt(ct.Flows, 2)
	ct.Transfers = defInt(ct.Transfers, 4)
	ct.MinBytes = defInt(ct.MinBytes, 512)
	ct.MaxBytes = defInt(ct.MaxBytes, 262144)
	if ct.MaxBytes < ct.MinBytes {
		ct.MaxBytes = ct.MinBytes
	}
	if ct.Alpha <= 0 {
		ct.Alpha = 1.3
	}
	if ct.Gap <= 0 {
		ct.Gap = 2 * sim.Millisecond
	}
	if ct.Seed == 0 {
		ct.Seed = 1
	}
	return ct
}

// crossHash is a splitmix64-style finalizer over the (seed, flow,
// transfer) triple: one independent 64-bit draw per transfer, with no
// sequential state to share or reset.
func crossHash(seed, flow, k uint64) uint64 {
	z := seed + flow*0x9e3779b97f4a7c15 + k*0xc2b2ae3d27d4eb4f
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// SizeOf returns flow f's k-th transfer size: the bounded-Pareto inverse
// CDF x = L / (1 - u·(1-(L/H)^α))^(1/α) at a hash-derived uniform u.
func (ct CrossTraffic) SizeOf(f, k int) int {
	c := ct.withDefaults()
	u := float64(crossHash(c.Seed, uint64(f), uint64(k))>>11) / float64(1<<53)
	l, h := float64(c.MinBytes), float64(c.MaxBytes)
	if l == h {
		return c.MinBytes
	}
	x := l / math.Pow(1-u*(1-math.Pow(l/h, c.Alpha)), 1/c.Alpha)
	if n := int(x); n < c.MaxBytes {
		return n
	}
	return c.MaxBytes
}

// flowHost maps flow f to the client host index it originates on.
func (ct CrossTraffic) flowHost(f, clients int) int { return 1 + f%clients }

// spawnSink starts the cross-traffic sink on host 0: a listener on
// CrossPort whose accept loop drains every background connection to EOF.
func (ct CrossTraffic) spawnSink(l *lab.Lab, fail func(error)) error {
	c := ct.withDefaults()
	ln, err := l.Hosts[0].TCP.Listen(CrossPort)
	if err != nil {
		return err
	}
	l.Env.Spawn("server.cross", &acceptLoopFrame{
		ln: ln, n: c.Flows * c.Transfers,
		accepted: func(i int, op *tcp.AcceptOp) bool {
			l.Env.Spawn(fmt.Sprintf("server.cross.conn%d", i),
				&crossSinkFrame{so: op.So, fail: fail})
			return true
		},
	})
	return nil
}

// spawnFlow starts background flow f on env (the owning shard's loop in
// a sharded run, the lab's only loop serially).
func (ct CrossTraffic) spawnFlow(env *sim.Env, host *lab.Host, f int, fail func(error)) {
	c := ct.withDefaults()
	env.Spawn(fmt.Sprintf("cross.flow%d", f), &crossFlowFrame{
		host: host, ct: c, f: f, fail: fail,
	})
}

// spawn arms the whole background load on a serial lab: the sink plus
// every flow, all on the lab's event loop.
func (ct CrossTraffic) spawn(l *lab.Lab, fail func(error)) error {
	if err := ct.spawnSink(l, fail); err != nil {
		return err
	}
	c := ct.withDefaults()
	clients := len(l.Hosts) - 1
	for f := 0; f < c.Flows; f++ {
		ct.spawnFlow(l.Env, l.Hosts[c.flowHost(f, clients)], f, fail)
	}
	return nil
}

// crossSinkFrame drains one background connection to EOF and closes.
type crossSinkFrame struct {
	so   *sock.Socket
	fail func(error)

	pc   int
	buf  []byte
	recv *sock.RecvOp
}

// Step drives the sink.
func (f *crossSinkFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // read the next chunk
			if f.buf == nil {
				f.buf = make([]byte, 16384)
			}
			f.pc = 1
			f.recv = f.so.Recv(p, f.buf)
			return
		case 1: // discard it, or close at EOF
			if f.recv.Err != nil {
				f.fail(f.recv.Err)
				p.Return()
				return
			}
			if f.recv.N == 0 {
				f.recv = nil
				f.pc = 2
				f.so.Close(p)
				return
			}
			f.recv = nil
			f.pc = 0
		case 2: // closed; done
			p.Return()
			return
		}
	}
}

// crossFlowFrame runs one background flow: Transfers times, connect to
// the sink, stream the hash-drawn size in chunked writes, close, and
// idle for Gap. Flow f's first transfer waits out f gaps so flows do
// not start in lockstep.
type crossFlowFrame struct {
	host *lab.Host
	ct   CrossTraffic
	f    int
	fail func(error)

	pc    int
	k     int
	total int
	sent  int
	n     int
	conn  *tcp.ConnectOp
	so    *sock.Socket
	msg   []byte
	send  *sock.SendOp
}

// Step drives the flow.
func (f *crossFlowFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // desynchronize flow starts
			f.pc = 1
			if at := sim.Time(f.f) * f.ct.Gap; at > 0 && !p.SleepUntil(at) {
				return
			}
		case 1: // transfer loop head: connect
			if f.k >= f.ct.Transfers {
				p.Return()
				return
			}
			f.pc = 2
			f.conn = f.host.TCP.Connect(p, lab.HostAddr(0), CrossPort)
			return
		case 2: // connected; prepare this transfer
			if f.conn.Err != nil {
				f.fail(fmt.Errorf("cross flow %d transfer %d: %w", f.f, f.k, f.conn.Err))
				p.Return()
				return
			}
			f.so = f.conn.So
			f.conn = nil
			if f.msg == nil {
				f.msg = make([]byte, 8192)
				p.Env().RNG().Fill(f.msg)
			}
			f.total = f.ct.SizeOf(f.f, f.k)
			f.sent = 0
			f.pc = 3
		case 3: // write loop head
			if f.sent >= f.total {
				f.pc = 5
				f.so.Close(p)
				return
			}
			f.n = len(f.msg)
			if f.n > f.total-f.sent {
				f.n = f.total - f.sent
			}
			f.pc = 4
			f.send = f.so.Send(p, f.msg[:f.n])
			return
		case 4: // fold in one write's result
			if f.send.Err != nil {
				f.fail(fmt.Errorf("cross flow %d transfer %d: %w", f.f, f.k, f.send.Err))
				p.Return()
				return
			}
			f.send = nil
			f.sent += f.n
			f.pc = 3
		case 5: // closed; idle out the gap, then next transfer
			f.so = nil
			f.k++
			f.pc = 1
			if !p.Sleep(f.ct.Gap) {
				return
			}
		}
	}
}
