// Command benchdiff guards the benchmark metrics against regressions,
// in two modes.
//
// The default mode guards the PAPER metrics: the benchmark suite
// reports its headline numbers as custom metrics in simulated
// microseconds (unit "sim-µs/...") or percentages (unit "%..."); those
// are produced by the deterministic simulation, so they are exactly
// reproducible on any machine, unlike ns/op, and the default tolerance
// is correspondingly strict (0.1%).
//
// The -wallclock mode guards the SIMULATOR's own speed: it extracts
// ns/op, B/op, allocs/op, and the custom allocs/rtt metric from the
// Wallclock benchmark tier and compares them against BENCH_wallclock.json
// with a tolerance band — wide for ns/op (machine and load dependent),
// medium for B/op (GC timing and map growth add noise allocation counts
// do not have), tight for allocation counts (near-deterministic). This
// is the gate that fails CI when a change quietly reintroduces per-event
// or per-packet allocations the hot-path overhaul removed, or per-host
// state that bloats the bytes-per-op of the scale benchmarks (see
// docs/PERFORMANCE.md).
//
// The wallclock mode also reports the sweep engine's parallel/serial
// ns/op scaling ratio per GOMAXPROCS value present in the input, warning
// (non-fatally) when the parallel sweep was not faster on a multi-core
// run; -scaling prints only that report, for a -cpu=1,2 invocation of
// the sweep pair with no baseline gate. The sharded fan-in pair
// (BenchmarkWallclockFanIn10k vs ...Sharded — one simulation split
// across shard event loops, not many trials across workers) gets the
// same treatment: a sharded/serial ratio per GOMAXPROCS, a warning only
// when real parallelism was available and unused, and an explanatory
// note when GOMAXPROCS exceeds the machine's CPUs. Baselines written by
// -write carry the recording machine's GOMAXPROCS and sweep worker
// count as meta/ keys, excluded from the drift comparison but surfaced
// as a note when a baseline from different hardware is compared.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x | benchdiff -baseline BENCH_baseline.json
//	go test -run='^$' -bench=. -benchtime=1x | benchdiff -write BENCH_baseline.json
//	go test -run='^$' -bench=Wallclock -benchmem -benchtime=2x | benchdiff -wallclock -baseline BENCH_wallclock.json
//	go test -run='^$' -bench=Wallclock -benchmem -benchtime=2x | benchdiff -wallclock -write BENCH_wallclock.json
//	go test -run='^$' -bench=WallclockSweep -benchmem -benchtime=2x -cpu=1,2 | benchdiff -wallclock -scaling
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
		write     = fs.String("write", "", "write a new baseline to this file instead of comparing")
		tol       = fs.Float64("tol", 0.001, "relative tolerance before a difference is a failure")
		wallclock = fs.Bool("wallclock", false, "compare wall-clock metrics (ns/op, allocs) instead of paper metrics")
		tolNs     = fs.Float64("tol-ns", 0.5, "wallclock: relative tolerance for ns/op (machine dependent)")
		tolAlloc  = fs.Float64("tol-alloc", 0.15, "wallclock: relative tolerance for allocation counts")
		tolBytes  = fs.Float64("tol-bytes", 0.35, "wallclock: relative tolerance for B/op (GC timing and map growth add noise)")
		scaling   = fs.Bool("scaling", false, "wallclock: report the parallel/serial sweep scaling ratio only, without a baseline comparison")
		cpus      = fs.Int("cpus", runtime.NumCPU(), "wallclock: physical CPUs assumed by the scaling report (default: this machine's)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *scaling && !*wallclock {
		// Checked before reading any input: wallclock bench output fed
		// to the paper-metric parser would otherwise die first with a
		// misleading "no metrics found".
		return fmt.Errorf("-scaling requires -wallclock")
	}

	var got map[string]float64
	var sweeps, shards []sweepSample
	var err error
	if *wallclock {
		got, sweeps, shards, err = parseWallclock(in)
	} else {
		got, err = parseBench(in)
	}
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no metrics found in the bench output")
	}
	if *wallclock {
		reportScaling(w, sweeps, *cpus)
		reportShardScaling(w, shards, *cpus)
	}
	if *scaling {
		return nil
	}

	if *write != "" {
		if *wallclock && !hasAllocMetric(got) {
			// An ns/op-only baseline would make the allocation gate —
			// the one CI relies on — pass vacuously forever. The usual
			// cause is forgetting -benchmem on the bench invocation.
			return fmt.Errorf("wallclock input has no allocation metrics; run the benchmarks with -benchmem")
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*write, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: wrote %d metrics to %s\n", len(got), *write)
		return nil
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	if *wallclock {
		reportMetaMismatch(w, base, got)
	}
	tolFor := func(string) float64 { return *tol }
	if *wallclock {
		tolFor = func(key string) float64 {
			switch {
			case strings.HasSuffix(key, "/ns/op"):
				return *tolNs
			case strings.HasSuffix(key, "/B/op"):
				return *tolBytes
			}
			return *tolAlloc
		}
	}
	return compare(w, base, got, tolFor)
}

// metaPrefix marks baseline entries that describe the machine the
// baseline was recorded on, not measurements: they are written alongside
// the metrics, excluded from the drift comparison, and surfaced as a
// non-fatal note when they differ — so baselines from different machines
// are never silently compared as if the hardware were equal.
const metaPrefix = "meta/"

// sweepSample is one sweep benchmark's ns/op at one GOMAXPROCS setting,
// the raw material of the parallel/serial scaling report.
type sweepSample struct {
	name  string // "Serial" or "Parallel"
	procs int    // GOMAXPROCS suffix of the run (1 when unsuffixed)
	nsOp  float64
}

// reportScaling prints the parallel/serial wall-clock ratio of the sweep
// pair for every GOMAXPROCS value both variants ran at, and warns —
// non-fatally; machine load can cause it — when the parallel sweep was
// not faster. A run whose GOMAXPROCS exceeds cpus (the machine's
// physical CPU count) gets a note instead of a warning: extra scheduler
// threads on the same core cannot speed anything up, so a ratio above
// 1.0 there measures context-switch overhead, not a sharding
// regression. The ratio is the headline number of the worker-affine
// sweep engine: below 1.0 means sharding the grid pays.
func reportScaling(w io.Writer, sweeps []sweepSample, cpus int) {
	byProcs := map[int]map[string]float64{}
	procsSeen := []int{}
	for _, s := range sweeps {
		if byProcs[s.procs] == nil {
			byProcs[s.procs] = map[string]float64{}
			procsSeen = append(procsSeen, s.procs)
		}
		byProcs[s.procs][s.name] = s.nsOp
	}
	sort.Ints(procsSeen)
	for _, procs := range procsSeen {
		serial, okS := byProcs[procs]["Serial"]
		parallel, okP := byProcs[procs]["Parallel"]
		if !okS || !okP || serial == 0 {
			continue
		}
		ratio := parallel / serial
		fmt.Fprintf(w, "scaling: parallel/serial sweep ns/op ratio %.3f at GOMAXPROCS=%d\n", ratio, procs)
		switch {
		case procs == 1:
			fmt.Fprintf(w, "scaling: note: GOMAXPROCS=1 cannot show a speedup; ratio near 1.0 is expected\n")
		case procs > cpus:
			fmt.Fprintf(w, "scaling: note: GOMAXPROCS=%d exceeds this machine's %d CPU(s); a speedup is impossible and a ratio above 1.0 measures thread context switching, not a regression\n", procs, cpus)
		case ratio >= 1:
			fmt.Fprintf(w, "WARNING scaling: parallel sweep is not faster than serial (ratio %.3f at GOMAXPROCS=%d)\n", ratio, procs)
		}
	}
}

// reportShardScaling prints the sharded/serial wall-clock ratio of the
// 10k fan-in pair for every GOMAXPROCS value both variants ran at. Where
// the sweep pair measures trial-level parallelism (independent
// simulations on worker goroutines), this pair measures event-level
// parallelism: ONE simulation's event loop split across host shards
// under conservative lookahead, bit-identical to serial by contract.
// The warning discipline matches reportScaling: non-fatal, and a run
// whose GOMAXPROCS exceeds the machine's CPUs gets an explanatory note
// instead — on one core the ratio measures barrier and goroutine-switch
// overhead, not a sharding regression.
func reportShardScaling(w io.Writer, shards []sweepSample, cpus int) {
	byProcs := map[int]map[string]float64{}
	procsSeen := []int{}
	for _, s := range shards {
		if byProcs[s.procs] == nil {
			byProcs[s.procs] = map[string]float64{}
			procsSeen = append(procsSeen, s.procs)
		}
		byProcs[s.procs][s.name] = s.nsOp
	}
	sort.Ints(procsSeen)
	for _, procs := range procsSeen {
		serial, okS := byProcs[procs]["Serial"]
		sharded, okH := byProcs[procs]["Sharded"]
		if !okS || !okH || serial == 0 {
			continue
		}
		ratio := sharded / serial
		fmt.Fprintf(w, "scaling: sharded/serial fan-in ns/op ratio %.3f at GOMAXPROCS=%d\n", ratio, procs)
		switch {
		case procs == 1:
			fmt.Fprintf(w, "scaling: note: GOMAXPROCS=1 cannot show a sharded speedup; the ratio measures barrier overhead\n")
		case procs > cpus:
			fmt.Fprintf(w, "scaling: note: GOMAXPROCS=%d exceeds this machine's %d CPU(s); a sharded speedup is impossible and the ratio measures barrier and context-switch overhead, not a regression\n", procs, cpus)
		case ratio >= 1:
			fmt.Fprintf(w, "WARNING scaling: sharded fan-in is not faster than serial (ratio %.3f at GOMAXPROCS=%d)\n", ratio, procs)
		}
	}
}

// reportMetaMismatch prints a non-fatal note when the baseline's
// recorded machine metadata differs from this run's.
func reportMetaMismatch(w io.Writer, base, got map[string]float64) {
	keys := make([]string, 0, len(base))
	for k := range base {
		if strings.HasPrefix(k, metaPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if g, ok := got[k]; ok && g != base[k] {
			fmt.Fprintf(w, "note: baseline %s=%.0f but this run has %.0f — ns/op drift may reflect the machine, not the code\n",
				k, base[k], g)
		}
	}
}

// parseBench extracts the deterministic paper metrics from `go test
// -bench` output: every "value unit" pair whose unit starts with
// "sim-µs" or "%". Keys are "BenchName/unit" with the -GOMAXPROCS
// suffix stripped so baselines are machine-independent.
func parseBench(in io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if !strings.HasPrefix(unit, "sim-µs") && !strings.HasPrefix(unit, "%") {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			out[name+"/"+unit] = v
		}
	}
	return out, sc.Err()
}

// parseWallclock extracts the wall-clock metrics of the Wallclock
// benchmark tier: the standard ns/op, B/op, and allocs/op columns plus
// the custom allocs/rtt metric. Keys are "BenchName/unit" with the
// -GOMAXPROCS suffix stripped (a -cpu=1,2 run therefore keeps the last
// variant's values under the plain key). B/op gets its own wider
// tolerance (-tol-bytes): byte counts swing with GC timing and map
// growth in ways allocation counts do not, but they are the metric that
// catches per-host state regressions — an eager VC mesh or retained
// per-request latencies move the scale benchmarks' B/op by integer
// factors, far past any noise band.
//
// Machine-metadata keys ride along under the meta/ prefix:
// meta/gomaxprocs (the -N suffix of the benchmark lines),
// meta/sweep_workers (the sweep pair's custom "workers" metric), and
// meta/peak_heap_mb (the fan-in scale benchmark's peak-heap-MB metric —
// live heap is a property of the whole process, so it is recorded for
// the record rather than gated). The sharded fan-in's "rounds" metric —
// barrier rounds per run, a deterministic property of the simulation —
// is gated like an allocation count: it moves only when the horizon
// algorithm changes. They are written into baselines and compared only
// informationally, so a baseline recorded on one machine is never
// silently treated as equivalent on another. Per-GOMAXPROCS ns/op
// samples of the sweep pair and the sharded fan-in pair are returned
// separately for the two scaling reports.
func parseWallclock(in io.Reader) (map[string]float64, []sweepSample, []sweepSample, error) {
	out := map[string]float64{}
	var sweeps, shards []sweepSample
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "BenchmarkWallclock") {
			continue
		}
		name := fields[0]
		procs := 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				procs = n
			}
		}
		out["meta/gomaxprocs"] = float64(procs)
		sweepVariant := strings.TrimPrefix(name, "BenchmarkWallclockSweep")
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if unit == "workers" && sweepVariant != name {
				out["meta/sweep_workers"] = v
				continue
			}
			if unit == "peak-heap-MB" {
				out["meta/peak_heap_mb"] = v
				continue
			}
			switch unit {
			case "ns/op", "B/op", "allocs/op", "allocs/rtt", "rounds":
			default:
				continue
			}
			if (unit == "allocs/op" || unit == "B/op") && sweepVariant == "Parallel" {
				// The parallel sweep's allocation count and bytes scale
				// with the worker count (each worker builds its own warm
				// testbed cache), so they are machine-dependent in a way
				// no tolerance band fixes. The serial variant carries the
				// allocation contract; worker count is recorded in
				// meta/sweep_workers.
				continue
			}
			out[name+"/"+unit] = v
			if unit == "ns/op" && (sweepVariant == "Serial" || sweepVariant == "Parallel") {
				sweeps = append(sweeps, sweepSample{name: sweepVariant, procs: procs, nsOp: v})
			}
			if unit == "ns/op" {
				switch name {
				case "BenchmarkWallclockFanIn10k":
					shards = append(shards, sweepSample{name: "Serial", procs: procs, nsOp: v})
				case "BenchmarkWallclockFanIn10kSharded":
					shards = append(shards, sweepSample{name: "Sharded", procs: procs, nsOp: v})
				}
			}
		}
	}
	return out, sweeps, shards, sc.Err()
}

// hasAllocMetric reports whether any parsed metric is an allocation
// count (allocs/op or allocs/rtt).
func hasAllocMetric(m map[string]float64) bool {
	for k := range m {
		if strings.HasSuffix(k, "/allocs/op") || strings.HasSuffix(k, "/allocs/rtt") {
			return true
		}
	}
	return false
}

func readBaseline(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]float64
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// compare reports metrics that drifted beyond their tolerance,
// disappeared, or appeared without a baseline entry. New metrics are
// advisory; drift and disappearance fail. tolFor maps a metric key to
// its tolerance, letting the wall-clock mode band ns/op loosely and
// allocation counts tightly. Machine-metadata keys (meta/) are excluded
// on both sides: they describe hardware, not measurements, and are
// reported separately by reportMetaMismatch.
func compare(w io.Writer, base, got map[string]float64, tolFor func(string) float64) error {
	keys := make([]string, 0, len(base))
	for k := range base {
		if !strings.HasPrefix(k, metaPrefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	failures := 0
	for _, k := range keys {
		want := base[k]
		v, ok := got[k]
		if !ok {
			fmt.Fprintf(w, "MISSING %s (baseline %.4g)\n", k, want)
			failures++
			continue
		}
		if relDiff(v, want) > tolFor(k) {
			if want != 0 {
				fmt.Fprintf(w, "DRIFT   %s: %.4g vs baseline %.4g (%+.2f%%)\n",
					k, v, want, (v-want)/want*100)
			} else {
				fmt.Fprintf(w, "DRIFT   %s: %.4g vs baseline 0\n", k, v)
			}
			failures++
		}
	}
	news := 0
	for k := range got {
		if strings.HasPrefix(k, metaPrefix) {
			continue
		}
		if _, ok := base[k]; !ok {
			fmt.Fprintf(w, "NEW     %s = %.4g (not in baseline; add with -write)\n", k, got[k])
			news++
		}
	}
	fmt.Fprintf(w, "benchdiff: %d baseline metrics, %d failures, %d new\n",
		len(keys), failures, news)
	if failures > 0 {
		return fmt.Errorf("%d metric(s) regressed", failures)
	}
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
