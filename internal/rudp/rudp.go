package rudp

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/udp"
)

// ErrCrashed fails the parked Accepts of an endpoint that suffered a
// simulated kernel crash (Endpoint.Crash).
var ErrCrashed = errors.New("rudp: host crashed")

const (
	// MaxMessage is the largest message Send accepts: one message rides
	// one datagram, so there is no segmentation layer to reassemble.
	MaxMessage = 4096
	// maxWindow bounds unacknowledged messages in flight. At 32 the
	// 32-bit ack bitfield always covers the whole outstanding span, so
	// one surviving ack repairs every earlier loss.
	maxWindow = 32
	// seenSpan is how far behind the latest received sequence the
	// receiver remembers arrivals (for duplicate detection and bitfield
	// construction); it comfortably exceeds ack coverage + window.
	seenSpan = 128
	// maxRexmtShift is the retransmission give-up threshold, TCP's
	// TCP_MAXRXTSHIFT: after this many consecutive backed-off timeouts
	// the stream is aborted rather than probed forever. It matches the
	// TCP stack's raised value so the rival-transport comparison holds
	// give-up patience equal: in a large unstaggered run whose lock-step
	// retry waves need ~26 simulated minutes to drain, rudp must not
	// abort measured flows where TCP survives.
	maxRexmtShift = 32

	minRTO = 1 * sim.Second
	maxRTO = 64 * sim.Second
)

// seqLT reports a < b in 16-bit circular sequence space.
func seqLT(a, b uint16) bool { return int16(a-b) < 0 }

// connKey identifies a peer (remote address, remote port).
type connKey struct {
	addr uint32
	port uint16
}

// Endpoint is one bound rudp port: the UDP endpoint, the demultiplexing
// table of per-peer connections, and the two service processes every
// endpoint runs — the receive pump (parse, ack, deliver, wake) and the
// timer work loop (retransmissions dispatch here, mirroring the TCP
// stack's deferred-work pattern).
type Endpoint struct {
	K *kern.Kernel
	U *udp.Stack

	ep        *udp.Endpoint
	conns     map[connKey]*Conn
	listening bool
	backlog   []*Conn
	acceptWq  *sim.WaitQueue
	err       error // set when the endpoint dies (host crash); fails Accepts

	due    []func(p *sim.Proc)
	workWq *sim.WaitQueue

	// DisableGiveUp removes the maxRexmtShift abort, restoring the
	// historical probe-forever behaviour for the watchdog revert-guard
	// tests (the TCP stack has the same knob).
	DisableGiveUp bool

	// Stats.
	PacketsIn   int64
	PacketsOut  int64
	HeaderBytes int64
	BadHeaders  int64
	Retransmits int64
}

// newEndpoint binds port (0 = ephemeral) and spawns the service
// processes.
func newEndpoint(k *kern.Kernel, u *udp.Stack, port uint16, listening bool) (*Endpoint, error) {
	ep, err := u.Bind(port)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		K: k, U: u, ep: ep,
		conns:     make(map[connKey]*Conn),
		listening: listening,
		acceptWq:  k.Env.NewWaitQueue(fmt.Sprintf("%s.rudp:%d.accept", k.Name, ep.Port())),
		workWq:    k.Env.NewWaitQueue(fmt.Sprintf("%s.rudp:%d.work", k.Name, ep.Port())),
	}
	k.Env.Spawn(fmt.Sprintf("%s.rudp:%d.pump", k.Name, ep.Port()), &pumpFrame{e: e})
	k.Env.Spawn(fmt.Sprintf("%s.rudp:%d.timer", k.Name, ep.Port()), &workLoopFrame{e: e})
	return e, nil
}

// Listen binds port and accepts a connection per peer that sends to it.
func Listen(k *kern.Kernel, u *udp.Stack, port uint16) (*Endpoint, error) {
	return newEndpoint(k, u, port, true)
}

// Dial binds an ephemeral port and returns a connection to the remote
// endpoint. There is no handshake: the connection exists as soon as
// both sides have state for it, and the remote side materializes its
// half when the first packet arrives.
func Dial(k *kern.Kernel, u *udp.Stack, raddr uint32, rport uint16) (*Conn, error) {
	e, err := newEndpoint(k, u, 0, false)
	if err != nil {
		return nil, err
	}
	return e.conn(connKey{addr: raddr, port: rport}), nil
}

// conn returns (creating if needed) the connection to key.
func (e *Endpoint) conn(key connKey) *Conn {
	if c := e.conns[key]; c != nil {
		return c
	}
	c := &Conn{
		e: e, raddr: key.addr, rport: key.port,
		seen:  make(map[uint16]struct{}),
		oo:    make(map[uint16]ooSlot),
		sndWq: e.K.Env.NewWaitQueue(fmt.Sprintf("%s.rudp.snd", e.K.Name)),
		rcvWq: e.K.Env.NewWaitQueue(fmt.Sprintf("%s.rudp.rcv", e.K.Name)),
	}
	c.rexmtCb = c.rexmtTimer
	e.conns[key] = c
	return c
}

// Accept blocks until a peer's first packet creates a connection, then
// returns it (as a frame call; read op.C when the frame pops).
func (e *Endpoint) Accept(p *sim.Proc) *AcceptOp {
	op := &AcceptOp{e: e}
	p.Call(op)
	return op
}

// AcceptOp is the frame behind Accept.
type AcceptOp struct {
	e  *Endpoint
	pc int

	// C is the accepted connection, valid once the frame returns; Err is
	// set instead when the endpoint died (host crash) while waiting.
	C   *Conn
	Err error
}

// Step waits for the backlog to fill.
func (f *AcceptOp) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0:
			if f.e.err != nil {
				f.Err = f.e.err
				p.Return()
				return
			}
			if len(f.e.backlog) == 0 {
				f.e.K.SleepOn(p, f.e.acceptWq)
				return
			}
			f.C = f.e.backlog[0]
			copy(f.e.backlog, f.e.backlog[1:])
			f.e.backlog = f.e.backlog[:len(f.e.backlog)-1]
			f.pc = 1
		case 1:
			p.Return()
			return
		}
	}
}

// Crash simulates a kernel crash: every stream aborts locally (blocked
// senders and receivers wake and unwind), parked Accepts fail with
// ErrCrashed, deferred timer work dies with the kernel, and the UDP
// port unbinds so a restarted application can Listen on it again.
// Nothing is transmitted; peers discover the death through their own
// timers, like the TCP stack's Crash.
func (e *Endpoint) Crash() {
	keys := make([]connKey, 0, len(e.conns))
	for k := range e.conns {
		keys = append(keys, k)
	}
	// The conns map iterates in random order; aborts wake processes in
	// wake-queue order, so a deterministic crash sorts first.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		return keys[i].port < keys[j].port
	})
	for _, k := range keys {
		e.conns[k].abort()
	}
	clear(e.conns)
	e.backlog = nil
	e.err = ErrCrashed
	e.acceptWq.WakeAll()
	for i := range e.due {
		e.due[i] = nil
	}
	e.due = e.due[:0]
	e.ep.Close()
}

// dispatch queues deferred work (a timer's retransmission) for the work
// loop, exactly like the TCP stack's timer service.
func (e *Endpoint) dispatch(fn func(p *sim.Proc)) {
	e.due = append(e.due, fn)
	e.workWq.Wake()
}

// workLoopFrame pops and runs one deferred function per Step.
type workLoopFrame struct {
	e *Endpoint
}

// Step drives the timer service process.
func (f *workLoopFrame) Step(p *sim.Proc) {
	e := f.e
	if len(e.due) == 0 {
		e.workWq.Wait(p)
		return
	}
	fn := e.due[0]
	copy(e.due, e.due[1:])
	e.due[len(e.due)-1] = nil
	e.due = e.due[:len(e.due)-1]
	fn(p)
}

// sndEntry is one unacknowledged message.
type sndEntry struct {
	seq     uint16
	payload []byte
	fin     bool
	sentAt  sim.Time
	rexmted bool
	acked   bool
}

// ooSlot buffers one out-of-order arrival until the sequence gap fills.
type ooSlot struct {
	payload []byte
	fin     bool
}

// Conn is one reliable message stream to a peer.
type Conn struct {
	e     *Endpoint
	raddr uint32
	rport uint16

	// Send side: a sliding window of unacked entries, the shared
	// Jacobson/Karn estimator state, and the retransmission timer.
	sndNxt       uint16
	unacked      []*sndEntry
	srtt, rttvar sim.Time
	rtTiming     bool
	rtSeq        uint16
	rtStart      sim.Time
	rexmtShift   uint
	rexmtGen     int
	rexmtCb      func(uint64)
	sndWq        *sim.WaitQueue
	closed       bool

	// Receive side: the latest-sequence/ack-bitfield record, the
	// in-order delivery cursor with its out-of-order buffer, and the
	// queue of delivered-but-unread messages.
	rcvLatest uint16
	rcvAny    bool
	seen      map[uint16]struct{}
	rcvNxt    uint16
	oo        map[uint16]ooSlot
	rdy       [][]byte
	rcvFin    bool
	rcvWq     *sim.WaitQueue
}

// SRTT exposes the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// rto mirrors the TCP stack's timer: srtt + 4·rttvar, doubled per
// backoff, clamped to [minRTO, maxRTO]. The backoff shift saturates at
// maxRTO before it is applied: shifts up to maxRexmtShift would wrap
// the multiplication negative, and the minRTO clamp would then turn a
// 64-second timeout into a 1-second one.
func (c *Conn) rto() sim.Time {
	base := 2 * sim.Second
	if c.srtt != 0 {
		base = c.srtt + 4*c.rttvar
	}
	d := maxRTO
	if base <= maxRTO>>c.rexmtShift {
		d = base << c.rexmtShift
	}
	if d < minRTO {
		d = minRTO
	}
	return d
}

// rttUpdate folds a sample into srtt/rttvar (Jacobson 1988).
func (c *Conn) rttUpdate(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	delta := sample - c.srtt
	c.srtt += delta / 8
	if delta < 0 {
		delta = -delta
	}
	c.rttvar += (delta - c.rttvar) / 4
}

// setRexmt (re)arms the retransmission timer.
func (c *Conn) setRexmt() {
	c.rexmtGen++
	c.e.K.Env.AfterArg(c.rto(), "rudp.rexmt", c.rexmtCb, uint64(c.rexmtGen))
}

// clearRexmt cancels any pending timer (stale generations no-op).
func (c *Conn) clearRexmt() { c.rexmtGen++ }

// rexmtTimer fires when an armed deadline elapses.
func (c *Conn) rexmtTimer(gen uint64) {
	if gen != uint64(c.rexmtGen) {
		return
	}
	c.e.dispatch(c.rexmtFire)
}

// rexmtFire handles a retransmission timeout: back off, mark the timed
// sample dead (Karn), and resend every unacked message with refreshed
// ack state.
func (c *Conn) rexmtFire(p *sim.Proc) {
	if len(c.unacked) == 0 {
		return
	}
	if c.rexmtShift >= maxRexmtShift {
		if !c.e.DisableGiveUp {
			// Give up, like TCP past TCP_MAXRXTSHIFT: the peer is
			// unreachable or its endpoint is gone (datagrams to a
			// vanished peer vanish silently), so abandoning the window
			// is the only exit — retransmitting forever at maxRTO never
			// drains.
			c.abort()
			return
		}
		// Revert-guard behaviour: probe forever at maxRTO; the shift
		// stays pinned so rto() keeps saturating.
	} else {
		c.rexmtShift++
	}
	c.rtTiming = false
	c.setRexmt()
	p.Call(&rexmtAllFrame{c: c})
}

// Abort abandons the stream immediately and locally, as an application
// deadline would: nothing is transmitted, so the peer discovers the
// death only through its own retransmission timers.
func (c *Conn) Abort() { c.abort() }

// abort abandons the stream after retransmission give-up: the unacked
// window is discarded, the timer cancelled, and both directions wake —
// blocked senders find a closed stream, blocked receivers end-of-stream.
func (c *Conn) abort() {
	c.unacked = c.unacked[:0]
	c.clearRexmt()
	c.closed = true
	c.rcvFin = true
	c.sndWq.WakeAll()
	c.rcvWq.WakeAll()
}

// header returns the ack-bearing header for the next outgoing packet;
// seq is filled by the caller for Data/Fin packets. Before the first
// reception the header carries AckNone instead of ack state: Ack's zero
// value would otherwise read as "seq 0 received" and retire the peer's
// first message without delivery.
func (c *Conn) header() Header {
	if !c.rcvAny {
		return Header{Seq: c.sndNxt, AckNone: true}
	}
	return Header{Seq: c.sndNxt, Ack: c.rcvLatest, AckBits: c.ackBits()}
}

// ackBits builds the 32-bit bitfield behind rcvLatest from the seen set.
func (c *Conn) ackBits() uint32 {
	if !c.rcvAny {
		return 0
	}
	var bits uint32
	for i := 0; i < 32; i++ {
		if _, ok := c.seen[c.rcvLatest-1-uint16(i)]; ok {
			bits |= 1 << i
		}
	}
	return bits
}

// packet encodes one entry's (re)transmission with current ack state.
func (c *Conn) packet(ent *sndEntry) []byte {
	h := c.header()
	h.Seq = ent.seq
	h.Data = !ent.fin
	h.Fin = ent.fin
	buf := make([]byte, MaxHeaderBytes+len(ent.payload))
	n := h.Marshal(buf)
	c.e.HeaderBytes += int64(n)
	copy(buf[n:], ent.payload)
	return buf[:n+len(ent.payload)]
}

// ackPacket encodes a pure acknowledgement.
func (c *Conn) ackPacket() []byte {
	h := c.header()
	buf := make([]byte, MaxHeaderBytes)
	n := h.Marshal(buf)
	c.e.HeaderBytes += int64(n)
	return buf[:n]
}

// processAck retires entries the header acknowledges, samples RTT per
// Karn, and manages the timer. Returns true if anything newly retired.
func (c *Conn) processAck(h Header) bool {
	if h.AckNone {
		return false // peer has received nothing; no sequence is covered
	}
	retired := false
	for _, ent := range c.unacked {
		if ent.acked {
			continue
		}
		d := uint16(h.Ack - ent.seq)
		covered := ent.seq == h.Ack || (d >= 1 && d <= 32 && h.AckBits&(1<<(d-1)) != 0)
		if !covered {
			continue
		}
		ent.acked = true
		retired = true
		if c.rtTiming && ent.seq == c.rtSeq && !ent.rexmted {
			c.rtTiming = false
			c.rttUpdate(c.e.K.Env.Now() - c.rtStart)
		}
	}
	if !retired {
		return false
	}
	for len(c.unacked) > 0 && c.unacked[0].acked {
		c.unacked = c.unacked[1:]
	}
	c.rexmtShift = 0
	if len(c.unacked) == 0 {
		c.clearRexmt()
	} else {
		c.setRexmt()
	}
	c.sndWq.WakeAll()
	return true
}

// recordArrival folds a consumed sequence into the receiver's ack state.
func (c *Conn) recordArrival(seq uint16) {
	c.seen[seq] = struct{}{}
	if !c.rcvAny || seqLT(c.rcvLatest, seq) {
		c.rcvLatest = seq
		c.rcvAny = true
	}
	// Trim the seen set so it cannot grow with the stream.
	for s := range c.seen {
		if uint16(c.rcvLatest-s) > seenSpan {
			delete(c.seen, s)
		}
	}
}

// deliver buffers a data/fin packet and drains the in-order prefix into
// the ready queue, waking readers.
func (c *Conn) deliver(h Header, payload []byte) {
	if seqLT(h.Seq, c.rcvNxt) {
		return // duplicate of something already delivered
	}
	if _, dup := c.oo[h.Seq]; dup {
		return
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.oo[h.Seq] = ooSlot{payload: buf, fin: h.Fin}
	for {
		slot, ok := c.oo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.oo, c.rcvNxt)
		c.rcvNxt++
		if slot.fin {
			c.rcvFin = true
		} else {
			c.rdy = append(c.rdy, slot.payload)
		}
	}
	c.rcvWq.WakeAll()
}

// pumpFrame is the endpoint's receive service process: one datagram per
// cycle — parse, demultiplex, retire acks, deliver data, and answer
// consumed sequences with an immediate ack.
type pumpFrame struct {
	e *Endpoint

	pc     int
	recv   *udp.RecvFromOp
	ackTo  *Conn
	ackPkt []byte
}

// Step drives the pump.
func (f *pumpFrame) Step(p *sim.Proc) {
	e := f.e
	for {
		switch f.pc {
		case 0: // wait for the next datagram
			f.pc = 1
			f.recv = e.ep.RecvFrom(p)
			return
		case 1: // parse and process it
			d := f.recv.D
			f.recv = nil
			f.pc = 0
			h, n, err := ParseHeader(d.Data)
			if err != nil {
				e.BadHeaders++
				continue
			}
			e.PacketsIn++
			key := connKey{addr: d.Src, port: d.SrcPort}
			c := e.conns[key]
			if c == nil {
				if !e.listening {
					continue // stray datagram to a client port
				}
				c = e.conn(key)
				e.backlog = append(e.backlog, c)
				e.acceptWq.WakeAll()
			}
			c.processAck(h)
			if !h.Data && !h.Fin {
				continue
			}
			c.recordArrival(h.Seq)
			c.deliver(h, d.Data[n:])
			// Ack immediately: latency beats bandwidth for a
			// request/response rival, so there is no delayed-ack timer.
			f.ackTo = c
			f.ackPkt = c.ackPacket()
			f.pc = 2
			e.PacketsOut++
			e.ep.SendTo(p, c.raddr, c.rport, f.ackPkt)
			return
		case 2: // ack sent; next datagram
			f.ackTo, f.ackPkt = nil, nil
			f.pc = 0
		}
	}
}

// rexmtAllFrame resends every unacked entry, one datagram per Step.
type rexmtAllFrame struct {
	c *Conn

	pc int
	i  int
}

// Step drives the retransmission burst.
func (f *rexmtAllFrame) Step(p *sim.Proc) {
	c := f.c
	for {
		switch f.pc {
		case 0: // send the next unacked entry
			for f.i < len(c.unacked) && c.unacked[f.i].acked {
				f.i++
			}
			if f.i >= len(c.unacked) {
				p.Return()
				return
			}
			ent := c.unacked[f.i]
			ent.rexmted = true
			f.i++
			c.e.Retransmits++
			c.e.PacketsOut++
			f.pc = 0
			c.e.ep.SendTo(p, c.raddr, c.rport, c.packet(ent))
			return
		}
	}
}

// Send transmits one message reliably (as a frame call). Messages keep
// their boundaries: the peer's Recv returns exactly this payload.
type SendOp struct {
	c   *Conn
	msg []byte

	pc  int
	ent *sndEntry

	// Err reports a rejected send (oversized message, closed stream),
	// valid once the frame returns.
	Err error
}

// Send queues msg and transmits it, blocking while the window is full.
func (c *Conn) Send(p *sim.Proc, msg []byte) *SendOp {
	op := &SendOp{c: c, msg: msg}
	p.Call(op)
	return op
}

// Step drives the send.
func (f *SendOp) Step(p *sim.Proc) {
	c := f.c
	for {
		switch f.pc {
		case 0: // validate, then wait for window space
			if len(f.msg) > MaxMessage {
				f.Err = fmt.Errorf("rudp: message %d exceeds %d bytes", len(f.msg), MaxMessage)
				p.Return()
				return
			}
			if c.closed {
				f.Err = fmt.Errorf("rudp: send on closed stream")
				p.Return()
				return
			}
			if len(c.unacked) >= maxWindow {
				c.e.K.SleepOn(p, c.sndWq)
				return
			}
			f.pc = 1
		case 1: // assign a sequence and transmit
			payload := make([]byte, len(f.msg))
			copy(payload, f.msg)
			f.ent = &sndEntry{seq: c.sndNxt, payload: payload, sentAt: c.e.K.Env.Now()}
			c.sndNxt++
			c.unacked = append(c.unacked, f.ent)
			if !c.rtTiming {
				c.rtTiming = true
				c.rtSeq = f.ent.seq
				c.rtStart = f.ent.sentAt
			}
			if len(c.unacked) == 1 {
				c.setRexmt()
			}
			f.pc = 2
			c.e.PacketsOut++
			c.e.ep.SendTo(p, c.raddr, c.rport, c.packet(f.ent))
			return
		case 2: // done
			f.ent = nil
			p.Return()
			return
		}
	}
}

// RecvOp is the frame behind Recv.
type RecvOp struct {
	c   *Conn
	buf []byte

	pc int

	// N is the received message length (0 = end of stream), valid once
	// the frame returns. Err reports a message longer than buf.
	N   int
	Err error
}

// Recv blocks until one whole message (or the peer's fin) arrives, then
// copies it into buf.
func (c *Conn) Recv(p *sim.Proc, buf []byte) *RecvOp {
	op := &RecvOp{c: c, buf: buf}
	p.Call(op)
	return op
}

// Step drives the receive.
func (f *RecvOp) Step(p *sim.Proc) {
	c := f.c
	for {
		switch f.pc {
		case 0: // wait for a ready message or EOF
			if len(c.rdy) == 0 {
				if c.rcvFin {
					f.N = 0
					p.Return()
					return
				}
				c.e.K.SleepOn(p, c.rcvWq)
				return
			}
			msg := c.rdy[0]
			copy(c.rdy, c.rdy[1:])
			c.rdy[len(c.rdy)-1] = nil
			c.rdy = c.rdy[:len(c.rdy)-1]
			if len(msg) > len(f.buf) {
				f.Err = fmt.Errorf("rudp: %d-byte message exceeds %d-byte buffer", len(msg), len(f.buf))
				p.Return()
				return
			}
			f.N = copy(f.buf, msg)
			f.pc = 1
		case 1: // done
			p.Return()
			return
		}
	}
}

// CloseOp is the frame behind Close.
type CloseOp struct {
	c  *Conn
	pc int
}

// Close ends the stream: a fin rides the sequence space like a
// zero-length message (retransmitted until acknowledged), so the peer's
// Recv sees end-of-stream exactly after the last message.
func (c *Conn) Close(p *sim.Proc) {
	op := &CloseOp{c: c}
	p.Call(op)
}

// Step drives the close.
func (f *CloseOp) Step(p *sim.Proc) {
	c := f.c
	for {
		switch f.pc {
		case 0: // wait for window space, then send the fin
			if c.closed {
				p.Return()
				return
			}
			if len(c.unacked) >= maxWindow {
				c.e.K.SleepOn(p, c.sndWq)
				return
			}
			c.closed = true
			ent := &sndEntry{seq: c.sndNxt, fin: true, sentAt: c.e.K.Env.Now()}
			c.sndNxt++
			c.unacked = append(c.unacked, ent)
			if len(c.unacked) == 1 {
				c.setRexmt()
			}
			f.pc = 1
			c.e.PacketsOut++
			c.e.ep.SendTo(p, c.raddr, c.rport, c.packet(ent))
			return
		case 1: // done (the pump retires the fin's ack)
			p.Return()
			return
		}
	}
}
