package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/lab"
)

func TestSeedFor(t *testing.T) {
	if SeedFor(42, 0) != SeedFor(42, 0) {
		t.Fatal("SeedFor not deterministic")
	}
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := SeedFor(42, i)
		if s == 0 {
			t.Fatalf("index %d: zero seed", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide", prev, i)
		}
		seen[s] = i
	}
	if SeedFor(1, 3) == SeedFor(2, 3) {
		t.Error("seeds should depend on the base")
	}
}

// TestSerialParallelIdentical is the engine's core guarantee: a sweep's
// outcomes are bit-identical whether it runs on one worker or many,
// because per-trial seeds depend only on grid position.
func TestSerialParallelIdentical(t *testing.T) {
	grid := Grid{
		Modes:      []cost.ChecksumMode{cost.ChecksumStandard, cost.ChecksumNone},
		Sizes:      []int{4, 1400},
		LossRates:  []float64{0, 0.001},
		Iterations: 6,
		Warmup:     1,
	}
	trials := grid.Trials()

	serial, err := RunEchoSweep(context.Background(), trials,
		Options{Workers: 1, BaseSeed: 1994})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunEchoSweep(context.Background(), trials,
		Options{Workers: 8, BaseSeed: 1994})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	for _, o := range serial {
		if o.Error != "" {
			t.Fatalf("%s: %s", o.Label, o.Error)
		}
		if o.N == 0 || o.MeanMicros <= 0 {
			t.Fatalf("%s: empty outcome %+v", o.Label, o)
		}
	}
}

// TestBaseSeedZeroKeepsConfigSeeds checks the legacy path: without a base
// seed the engine must not touch per-config seeding, so existing serial
// call sites keep their exact outputs.
func TestBaseSeedZeroKeepsConfigSeeds(t *testing.T) {
	trial := EchoTrial{
		Label: "seeded", Cfg: lab.Config{Link: lab.LinkATM, Seed: 7}, Size: 4,
		Iterations: 4, Warmup: 1,
	}
	a, err := RunEchoSweep(context.Background(), []EchoTrial{trial}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEchoSweep(context.Background(), []EchoTrial{trial}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Seed != 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("zero base seed altered outcomes: %+v vs %+v", a, b)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Label: fmt.Sprintf("job%d", i),
			Run: func(context.Context, uint64) (any, error) {
				ran++
				if i == 1 {
					cancel()
				}
				return i, nil
			},
		}
	}
	outs, err := Run(ctx, jobs, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran >= len(jobs) {
		t.Error("cancellation did not stop the sweep")
	}
	if outs[0].Err != nil || outs[0].Value != 0 {
		t.Errorf("completed job lost its outcome: %+v", outs[0])
	}
	if outs[len(outs)-1].Err == nil {
		t.Error("unstarted job should carry the context error")
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	jobs := []Job{
		{Label: "ok", Run: func(context.Context, uint64) (any, error) { return 1, nil }},
		{Label: "boom", Run: func(context.Context, uint64) (any, error) { panic("kaboom") }},
	}
	outs, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Errorf("healthy job failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil {
		t.Fatal("panic not converted to an error")
	}
	if FirstError(outs) == nil {
		t.Error("FirstError missed the failure")
	}
}

func TestProgressReporting(t *testing.T) {
	var calls []int
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context, uint64) (any, error) { return nil, nil }}
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers:  3,
		Progress: func(done, total int) { calls = append(calls, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(jobs) || calls[len(calls)-1] != len(jobs) {
		t.Fatalf("progress calls %v", calls)
	}
	for i, c := range calls {
		if c != i+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}

// TestExtendedDimensionsMatter verifies the beyond-paper sweep knobs
// change what the simulation does: a smaller MTU means more segments and
// a longer round trip, and a socket buffer below the transfer size
// serializes an 8000-byte transfer behind window updates.
func TestExtendedDimensionsMatter(t *testing.T) {
	measure := func(cfg lab.Config) float64 {
		l := lab.New(cfg)
		res, err := l.RunEcho(8000, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanRTTMicros()
	}
	base := measure(lab.Config{Link: lab.LinkATM})
	smallMTU := measure(lab.Config{Link: lab.LinkATM, MTU: 1500})
	smallBuf := measure(lab.Config{Link: lab.LinkATM, SockBuf: 4096})
	if smallMTU <= base {
		t.Errorf("MTU 1500 RTT %.0fµs not above default-MTU %.0fµs", smallMTU, base)
	}
	if smallBuf <= base {
		t.Errorf("4KB socket buffer RTT %.0fµs not above 16KB %.0fµs", smallBuf, base)
	}
}

func TestGridExpansion(t *testing.T) {
	g := ExtendedGrid(5, 1)
	trials := g.Trials()
	want := len(g.Sizes) * len(g.MTUs) * len(g.SockBufs) * len(g.LossRates)
	if len(trials) != want {
		t.Fatalf("grid expanded to %d cells, want %d", len(trials), want)
	}
	labels := map[string]bool{}
	for _, tr := range trials {
		if labels[tr.Label] {
			t.Fatalf("duplicate cell label %q", tr.Label)
		}
		labels[tr.Label] = true
	}
	// The zero grid is the single baseline cell.
	if n := len((Grid{}).Trials()); n != 1 {
		t.Fatalf("zero grid expanded to %d cells", n)
	}
}
