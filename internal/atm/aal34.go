package atm

import "fmt"

// AAL3/4 segmentation and reassembly, the adaptation layer the paper's
// driver and adapter implement ("the ATM driver and adapter implement the
// Class 3/4 ATM Adaptation Layer (AAL), which is responsible for all
// segmentation and reassembly of datagrams and the detection of
// transmission errors and dropped cells", §1.1).
//
// Each 48-byte SAR-PDU is: 2 bytes of header (segment type, sequence
// number, multiplexing ID), 44 bytes of payload, 2 bytes of trailer
// (length indicator, CRC-10). The CPCS-PDU wraps the user datagram in a
// 4-byte header (CPI, Btag, BASize) and 4-byte trailer (AL, Etag, Length),
// padded to a 4-byte boundary.

// Segment types in the SAR header.
const (
	segBOM = 0x2 // beginning of message
	segCOM = 0x0 // continuation of message
	segEOM = 0x1 // end of message
	segSSM = 0x3 // single-segment message
)

// SARPayload is the per-cell AAL3/4 payload capacity.
const SARPayload = 44

// cpcsOverhead is the CPCS-PDU header plus trailer.
const cpcsOverhead = 8

// MaxDatagram is the largest user datagram AAL3/4 will carry here. The
// TCA-100's MTU is just over 9 KB ("also close to our ATM MTU of 9K").
const MaxDatagram = 9188

// crc10Table drives the byte-at-a-time CRC-10: entry v is the bitwise
// CRC of the single byte v. It is filled once at init from the bitwise
// reference (crc10Bitwise), which the tests also compare against — the
// table form computes identical values, it only removes the 8-iteration
// inner loop from the twice-per-cell hot path.
var crc10Table [256]uint16

func init() {
	for v := 0; v < 256; v++ {
		crc10Table[v] = crc10Bitwise(0, []byte{byte(v)})
	}
}

// crc10Bitwise is the reference AAL3/4 CRC-10 (polynomial
// x^10+x^9+x^5+x^4+x+1, 0x633), one bit at a time, continuing from crc.
func crc10Bitwise(crc uint16, b []byte) uint16 {
	for _, v := range b {
		crc ^= uint16(v) << 2
		for i := 0; i < 8; i++ {
			if crc&0x200 != 0 {
				crc = crc<<1 ^ 0x233
			} else {
				crc <<= 1
			}
		}
		crc &= 0x3ff
	}
	return crc
}

// crc10 computes the AAL3/4 CRC-10 over b, table-driven.
func crc10(b []byte) uint16 {
	var crc uint16
	for _, v := range b {
		crc = (crc&0x3)<<8 ^ crc10Table[(crc>>2)^uint16(v)]
	}
	return crc
}

// CellsForDatagram returns how many cells a datagram of n bytes occupies
// after CPCS encapsulation, the quantity the driver's per-cell costs
// scale with.
func CellsForDatagram(n int) int {
	padded := (n + 3) &^ 3
	total := padded + cpcsOverhead
	return (total + SARPayload - 1) / SARPayload
}

// Segmenter turns datagrams into cells on one virtual channel. It keeps
// a private CPCS-PDU scratch buffer that is overwritten on every
// segmentation, so steady-state transmission does not allocate.
type Segmenter struct {
	VCI  uint16
	MID  uint16
	btag uint8
	sn   uint8

	// pdu is the CPCS-PDU scratch, reused across Segment calls. Its
	// bytes never escape: each cell payload is copied out of it.
	pdu []byte
}

// Reset rewinds the segmenter's Btag and sequence counters to their
// initial values for testbed reuse, retaining the PDU scratch buffer. A
// reused channel must emit bit-identical cells to a fresh one: the Btag
// and SAR sequence numbers are on the wire, and resetting them is what
// keeps a recycled testbed's cell stream indistinguishable from a new
// testbed's.
func (s *Segmenter) Reset() {
	s.btag = 0
	s.sn = 0
}

// Segment encapsulates data in a CPCS-PDU and returns its cells in
// transmission order, in freshly allocated storage the caller owns.
// Every call uses a fresh Btag so that interleaved or lost frames cannot
// be spliced together undetected. The transmit hot path uses
// SegmentAppend instead, reusing the driver's cell scratch.
func (s *Segmenter) Segment(data []byte) []Cell {
	return s.SegmentAppend(nil, data)
}

// SegmentAppend appends the datagram's cells to dst and returns the
// extended slice. Passing a recycled dst (length zero, retained
// capacity) makes steady-state segmentation allocation-free; the ATM
// driver holds one such scratch per interface, which is safe because
// Output is serialized per driver.
func (s *Segmenter) SegmentAppend(dst []Cell, data []byte) []Cell {
	if len(data) > MaxDatagram {
		panic(fmt.Sprintf("atm: datagram of %d bytes exceeds AAL3/4 maximum %d", len(data), MaxDatagram))
	}
	s.btag++
	padded := (len(data) + 3) &^ 3
	need := padded + cpcsOverhead
	if cap(s.pdu) < need {
		s.pdu = make([]byte, need)
	}
	pdu := s.pdu[:need]
	// CPCS header: CPI, Btag, BASize.
	pdu[0] = 0
	pdu[1] = s.btag
	pdu[2] = byte(padded >> 8)
	pdu[3] = byte(padded)
	copy(pdu[4:], data)
	// Zero the alignment padding explicitly: the scratch may hold bytes
	// of an earlier datagram, and the pad must go out as zeros.
	for i := 4 + len(data); i < len(pdu)-4; i++ {
		pdu[i] = 0
	}
	// CPCS trailer: AL, Etag, Length.
	t := pdu[len(pdu)-4:]
	t[0] = 0
	t[1] = s.btag
	t[2] = byte(len(data) >> 8)
	t[3] = byte(len(data))

	n := (len(pdu) + SARPayload - 1) / SARPayload
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, Cell{})
	}
	cells := dst[base:]
	for i := 0; i < n; i++ {
		st := byte(segCOM)
		switch {
		case n == 1:
			st = segSSM
		case i == 0:
			st = segBOM
		case i == n-1:
			st = segEOM
		}
		chunk := pdu[i*SARPayload:]
		li := SARPayload
		if len(chunk) < SARPayload {
			li = len(chunk)
		} else {
			chunk = chunk[:SARPayload]
		}
		c := &cells[i]
		CellHeader{VCI: s.VCI, PT: 0}.Marshal(c)
		p := c.Payload()
		// SAR header: ST(2) SN(4) MID(10).
		p[0] = st<<6 | (s.sn&0xf)<<2 | byte(s.MID>>8)
		p[1] = byte(s.MID)
		s.sn = (s.sn + 1) & 0xf
		copy(p[2:2+SARPayload], chunk)
		for j := 2 + li; j < 2+SARPayload; j++ {
			p[j] = 0
		}
		// SAR trailer: LI(6) CRC10(10), CRC computed over the payload
		// with the CRC field zeroed.
		p[46] = byte(li) << 2
		p[47] = 0
		crc := crc10(p)
		p[46] |= byte(crc >> 8)
		p[47] = byte(crc)
	}
	return dst
}

// ReassemblyError describes why a frame was discarded.
type ReassemblyError struct{ Reason string }

func (e *ReassemblyError) Error() string { return "atm: reassembly: " + e.Reason }

// Reassembler rebuilds datagrams from cells on one virtual channel. Cells
// from the adapter are pushed in arrival order; a completed datagram or a
// reassembly error is returned when a frame ends.
type Reassembler struct {
	buf    []byte
	out    []byte // completed-datagram scratch, reused across frames
	active bool
	sn     uint8
	haveSN bool
	// Errors counts discarded frames, the quantity the paper's error
	// discussion (§4.2.1) cares about.
	Errors int64
}

// Reset abandons any partial frame and rewinds the sequence expectation
// and error count for testbed reuse, retaining both scratch buffers.
func (r *Reassembler) Reset() {
	r.buf = r.buf[:0]
	r.active = false
	r.sn = 0
	r.haveSN = false
	r.Errors = 0
}

// Idle reports whether no datagram is partially reassembled, i.e. the
// channel's context can be reclaimed without losing a frame in progress.
func (r *Reassembler) Idle() bool { return !r.active }

// Push processes one cell. It returns (datagram, nil) when a frame
// completes, (nil, error) when a frame is discarded, and (nil, nil) when
// more cells are needed. Detection is real: sequence-number gaps from
// dropped cells, CRC-10 failures from corruption, and Btag/Etag or length
// mismatches from spliced frames all surface here, exactly the failures
// AAL3/4 exists to catch.
//
// The returned datagram is the reassembler's reusable scratch buffer:
// it is valid until the next Push on this Reassembler. The driver copies
// it into mbufs before touching the FIFO again; callers that need to
// keep it longer must copy it.
func (r *Reassembler) Push(c *Cell) ([]byte, error) {
	p := c.Payload()
	// Validate the CRC-10: recompute over the payload with the CRC bits
	// zeroed and compare against the stored value.
	stored := uint16(p[46]&0x3)<<8 | uint16(p[47])
	var tmp [PayloadSize]byte
	copy(tmp[:], p)
	tmp[46] &^= 0x3
	tmp[47] = 0
	if crc10(tmp[:]) != stored {
		r.drop()
		return nil, &ReassemblyError{Reason: "CRC-10 mismatch"}
	}
	st := p[0] >> 6
	sn := p[0] >> 2 & 0xf
	li := int(p[46] >> 2)
	if li > SARPayload {
		r.drop()
		return nil, &ReassemblyError{Reason: "bad length indicator"}
	}
	if r.haveSN && sn != (r.sn+1)&0xf {
		r.drop()
		r.sn, r.haveSN = sn, true
		return nil, &ReassemblyError{Reason: "sequence gap (lost cell)"}
	}
	r.sn, r.haveSN = sn, true

	switch st {
	case segBOM, segSSM:
		if r.active {
			r.Errors++ // previous frame never finished
		}
		r.buf = r.buf[:0]
		r.active = true
	case segCOM, segEOM:
		if !r.active {
			r.drop()
			return nil, &ReassemblyError{Reason: "continuation without beginning"}
		}
	}
	r.buf = append(r.buf, p[2:2+li]...)
	if st == segEOM || st == segSSM {
		r.active = false
		return r.finish()
	}
	return nil, nil
}

// drop abandons any partial frame.
func (r *Reassembler) drop() {
	if r.active {
		r.active = false
		r.buf = r.buf[:0]
	}
	r.Errors++
}

// finish validates the completed CPCS-PDU and extracts the datagram.
func (r *Reassembler) finish() ([]byte, error) {
	pdu := r.buf
	if len(pdu) < cpcsOverhead {
		r.Errors++
		return nil, &ReassemblyError{Reason: "short CPCS-PDU"}
	}
	btag := pdu[1]
	baSize := int(pdu[2])<<8 | int(pdu[3])
	t := pdu[len(pdu)-4:]
	etag := t[1]
	length := int(t[2])<<8 | int(t[3])
	if btag != etag {
		r.Errors++
		return nil, &ReassemblyError{Reason: "Btag/Etag mismatch"}
	}
	if baSize != len(pdu)-cpcsOverhead {
		r.Errors++
		return nil, &ReassemblyError{Reason: "BASize mismatch"}
	}
	if length > len(pdu)-cpcsOverhead {
		r.Errors++
		return nil, &ReassemblyError{Reason: "length exceeds PDU"}
	}
	if cap(r.out) < length {
		r.out = make([]byte, length)
	}
	out := r.out[:length]
	copy(out, pdu[4:4+length])
	r.buf = r.buf[:0]
	return out, nil
}
