// Package lab assembles complete simulated testbeds: N DECstation
// 5000/200 hosts, each with a kernel, IP and TCP stacks, and either FORE
// TCA-100 ATM adapters or LANCE Ethernets. The two-host constructor New
// reproduces the configuration of §1.1 exactly — a private switchless
// ATM fiber or a private Ethernet segment — plus the round-trip echo
// benchmark of §1.2. NewTopology generalizes it: any number of hosts on
// a shared Ethernet Segment or attached to an output-queued ATM Switch
// with a full mesh of virtual channels, the substrate for fan-in and
// connection-churn workloads (internal/workload).
package lab

import (
	"errors"
	"fmt"

	"repro/internal/atm"
	"repro/internal/cost"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/udp"
)

// LinkKind selects the network technology under test (Table 1's variable).
type LinkKind int

// Available link kinds.
const (
	LinkATM LinkKind = iota
	LinkEther
)

// String names the link for reports.
func (l LinkKind) String() string {
	if l == LinkEther {
		return "Ethernet"
	}
	return "ATM"
}

// Config describes one experimental configuration: every knob the paper's
// experiments turn.
type Config struct {
	// Link selects ATM or Ethernet.
	Link LinkKind
	// Mode is the checksum configuration on both hosts.
	Mode cost.ChecksumMode
	// DisablePrediction builds the paper's §3 kernel with the PCB cache
	// and TCP fast path turned off.
	DisablePrediction bool
	// HashPCBs uses the hash-table PCB organization instead of the list.
	HashPCBs bool
	// ExtraPCBs populates each host's PCB table with this many inactive
	// connections before the benchmark connection is created, to exercise
	// lookup cost.
	ExtraPCBs int
	// LivePCBs opens this many real TCP connections (client to server,
	// established and left open) ahead of the benchmark connection — the
	// live-population counterpart of the synthetic ExtraPCBs knob. Both
	// ends' demultiplexing must walk past the same number of entries;
	// only the provenance differs.
	LivePCBs int
	// CellLossRate injects random ATM cell loss.
	CellLossRate float64
	// CellCorruptRate flips random bits in cells on the wire (caught by
	// HEC / AAL CRC-10).
	CellCorruptRate float64
	// HostCorruptRate flips random bits in reassembled datagrams during
	// the device-to-host transfer (invisible to the AAL; only the TCP
	// checksum can catch it — the §4.2.1 buggy-controller scenario).
	HostCorruptRate float64
	// BurstLoss layers a Gilbert–Elliott two-state burst-loss chain on
	// every host's receive path — correlated losses that kill several
	// cells of one AAL frame at once, unlike the independent drops of
	// CellLossRate. Each host's chain has a private RNG derived from
	// Seed, so enabling it perturbs no other random draw. Serial only:
	// sharded execution rejects it like the other fault knobs.
	BurstLoss sim.GEParams
	// ReorderRate holds each arriving ATM cell back past the next
	// ReorderDepth deliveries with this probability — bounded cell
	// reordering, which AAL3/4 sequence checking converts into frame
	// loss. Zero depth means 1. Serial only, like BurstLoss. Ignored on
	// Ethernet (frames are not split into cells).
	ReorderRate  float64
	ReorderDepth int
	// Qdisc installs a queue discipline on every switch egress port of a
	// routed ATM fabric (3+ hosts): drop-tail, RED, or per-VCI deficit
	// round robin. Ignored for Ethernet and the two-host switchless
	// fiber, which have no switch ports. Disciplines draw only private
	// per-port RNGs, so qdisc configurations stay shardable.
	Qdisc QdiscConfig
	// MTU, when positive, lowers the MTU the link's driver advertises to
	// IP (and so the MSS TCP negotiates) below the link default — a
	// sweep dimension beyond the paper's grid. Values below MinMTU are
	// ignored: an MTU that cannot hold the IP and TCP headers plus data
	// would leave the stack unable to form a segment.
	MTU int
	// SockBuf, when positive, overrides the socket-buffer high-water
	// marks on both hosts (default sock.DefaultHiwat). Buffers smaller
	// than the transfer size serialize segments behind window updates.
	SockBuf int
	// PacketTrace arms per-packet event recording on every host's
	// recorder (trace.Recorder.EnablePackets). Events are recorded
	// whenever span tracing is on — for the echo benchmark, the measured
	// iterations; for the other workloads, the whole run — and are
	// collected with Lab.PacketEvents. Tracing charges no simulated
	// time, so a traced run is bit-identical in timing to an untraced
	// one at the same seed.
	PacketTrace bool
	// CheckLeaks arms the pool-leak gate for testbed reuse: when the lab
	// is Reset for its next trial, the reset fails if any host's mbuf
	// pool still reports live headers or cluster pages — a chain the
	// finished trial never freed, which would otherwise ride silently
	// into every later trial on this testbed. Debug-only: it never
	// changes simulated behaviour, only whether Reset tolerates a leak.
	CheckLeaks bool
	// Fabric selects the switch arrangement of a multi-host ATM topology:
	// FabricHub (the default) is one switch with every host attached;
	// FabricFatTree arranges hosts on leaf switches (LeafPorts per leaf)
	// trunked to a spine. Ignored for Ethernet and for the two-host
	// switchless fiber. VC paths are installed on demand in either
	// arrangement, so topology memory is O(active flows), not O(hosts²).
	Fabric FabricKind
	// LeafPorts is the hosts-per-leaf of a fat-tree fabric; zero means
	// atm.DefaultLeafPorts.
	LeafPorts int
	// Cost overrides the cost model (nil means DECstation 5000/200).
	Cost *cost.Model
	// Seed seeds the simulation RNG.
	Seed uint64
	// Nagle leaves the Nagle algorithm enabled on the benchmark
	// connection. By default the harness disables it (TCP_NODELAY), the
	// standard setting for RPC-style benchmarks and the only sender
	// behaviour consistent with the paper's observation that the two
	// segments of an 8000-byte transfer leave back to back.
	Nagle bool
}

// Host is one assembled workstation.
type Host struct {
	Kern *kern.Kernel
	IP   *ip.Stack
	TCP  *tcp.Stack
	UDP  *udp.Stack

	ATMAdapter *atm.Adapter
	ATMDriver  *atm.Driver
	EthAdapter *ether.Adapter
	EthDriver  *ether.Driver
}

// Trace returns the host's span recorder.
func (h *Host) Trace() *trace.Recorder { return h.Kern.Trace }

// Lab is an assembled testbed of two or more hosts on one link substrate.
type Lab struct {
	Env *sim.Env
	// Hosts are the workstations, in address order (HostAddr(i)).
	Hosts []*Host
	// Client and Server alias Hosts[0] and Hosts[1], the pair every
	// two-host paper experiment runs on.
	Client *Host
	Server *Host
	Config Config

	// Segment is the shared broadcast domain of an Ethernet topology.
	Segment *ether.Segment
	// Switch is the core cell switch of an ATM topology with more than
	// two hosts — the hub of a hub fabric, the spine of a fat tree; nil
	// for the paper's switchless two-host fiber.
	Switch *atm.Switch
	// Fabric is the routed multi-switch topology behind Switch; nil for
	// Ethernet and the two-host fiber.
	Fabric *atm.Fabric

	// ownerShards is nonzero when this lab's hosts are spread across the
	// event loops of a multi-shard Cluster, which then owns resetting it.
	ownerShards int
	// flipLocal, when set (by Cluster.RunEcho), replaces setTracing's
	// all-host sweep: a sharded echo client may only flip recorders in
	// its own shard mid-round.
	flipLocal func(on bool)
	// eventsSince, when nonzero, filters PacketEvents to events at or
	// after it — the sharded echo run's substitute for flipping remote
	// recorders on exactly at the warmup boundary.
	eventsSince sim.Time

	// faultState is the fault tier's outage bookkeeping (fault.go),
	// allocated on first use; nil on the unfaulted hot path.
	faultState *faultState
	// wd is the armed no-progress watchdog, nil when disarmed.
	wd *sim.Watchdog
}

// FabricKind selects the ATM switch arrangement (see atm.FabricKind).
type FabricKind = atm.FabricKind

// Fabric kinds, re-exported for Config literals.
const (
	FabricHub     = atm.FabricHub
	FabricFatTree = atm.FabricFatTree
)

// BaseAddr is the first host address on the private network.
const BaseAddr = 0xc0a80101 // 192.168.1.1

// HostAddr returns the IP address of host i (Hosts[i]).
func HostAddr(i int) uint32 { return BaseAddr + uint32(i) }

// Host IP addresses of the two-host pair.
const (
	ClientAddr = BaseAddr     // 192.168.1.1
	ServerAddr = BaseAddr + 1 // 192.168.1.2
)

// MinMTU is the smallest MTU override the lab honors: room for the IP
// and TCP headers plus data. Config.MTU values below it are ignored.
const MinMTU = 64

// MaxMTU returns the link's native MTU — the largest value a Config.MTU
// override can usefully take; overrides at or above it are ignored by
// the drivers.
func MaxMTU(l LinkKind) int {
	if l == LinkEther {
		return ether.MTU
	}
	return atm.MTU
}

// New builds the paper's two-host testbed per the configuration.
func New(cfg Config) *Lab { return NewTopology(cfg, 2) }

// NewTopology builds a testbed of nHosts workstations on one link
// substrate. Two ATM hosts share the paper's switchless fiber; more
// attach to a routed fabric of output-queued switches (Config.Fabric:
// one hub by default, or a two-level fat tree), with each flow's virtual
// channels installed on demand by the first datagram — the VC from host
// i to host j is rewritten at the last switch so that the VCI arriving
// at j identifies the source, giving each flow its own reassembly
// context. Ethernet hosts of any number share a Segment with static IP
// bindings. Host i answers at HostAddr(i).
func NewTopology(cfg Config, nHosts int) *Lab {
	if nHosts < 2 {
		panic(fmt.Sprintf("lab: topology needs at least 2 hosts, got %d", nHosts))
	}
	env := sim.NewEnv()
	if cfg.Seed != 0 {
		env.Seed(cfg.Seed)
	}
	model := cfg.Cost
	if model == nil {
		model = cost.DECstation5000()
	}
	l := &Lab{Env: env, Config: cfg}
	for i := 0; i < nHosts; i++ {
		l.Hosts = append(l.Hosts, buildHost(env, model, cfg, hostName(i), HostAddr(i)))
	}
	l.Client, l.Server = l.Hosts[0], l.Hosts[1]

	switch cfg.Link {
	case LinkATM:
		if nHosts == 2 {
			atm.Connect(l.Client.ATMAdapter, l.Server.ATMAdapter)
		} else {
			drvs := make([]*atm.Driver, nHosts)
			for i, h := range l.Hosts {
				drvs[i] = h.ATMDriver
			}
			l.Fabric = atm.NewFabric(env, cfg.Fabric, model, cfg.LeafPorts, drvs)
			l.Switch = l.Fabric.Core
		}
		for _, h := range l.Hosts {
			h.ATMAdapter.LossRate = cfg.CellLossRate
			h.ATMAdapter.CorruptRate = cfg.CellCorruptRate
			h.ATMDriver.HostCorruptRate = cfg.HostCorruptRate
		}
		applyQdisc(l.Fabric, cfg)
	case LinkEther:
		l.Segment = ether.NewSegment()
		for i, h := range l.Hosts {
			l.Segment.Attach(h.EthAdapter)
			l.Segment.BindIP(HostAddr(i), h.EthAdapter)
		}
	}
	applyImpairments(l, cfg)
	return l
}

// Reset rebinds the assembled topology to a new trial configuration
// instead of reallocating it: the event heap's backing store, the mbuf
// pools' free-lists, every wait queue with its parked service process,
// the adapters, the switch VC tables, and the Ethernet segment bindings
// all survive; every piece of per-trial state — clock, RNG, PCB tables,
// listeners, port/ISS counters, trace records, FIFO contents, statistics
// — rewinds to what a freshly constructed lab would hold. A nonzero seed
// overrides cfg.Seed (the runner.ApplySeed convention).
//
// The contract is bit-identity: a reset lab must produce byte-identical
// results to lab.NewTopology(cfg, len(l.Hosts)) at every seed, which the
// reuse-determinism tests assert against the golden outputs. Reset only
// rebinds within a topology shape — the link kind and host count are the
// machines on the bench, not knobs — so asking for a different link is
// an error and the caller builds a new lab instead.
//
// When the finished trial ran with Config.CheckLeaks, Reset first
// verifies every host's mbuf pool has zero live headers and cluster
// pages, failing loudly rather than letting a leaked chain ride into
// later trials.
func (l *Lab) Reset(cfg Config, seed uint64) error {
	if l.ownerShards > 1 {
		// Resetting only shard 0's event loop would leave the other
		// shards' clocks and RNGs mid-trial — silently divergent state.
		return fmt.Errorf("lab: testbed is sharded %d ways; reset it through Cluster.Reset", l.ownerShards)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if cfg.Link != l.Config.Link {
		return fmt.Errorf("lab: cannot reset %v topology to %v", l.Config.Link, cfg.Link)
	}
	if cfg.Link == LinkATM && l.Fabric != nil &&
		(cfg.Fabric != l.Config.Fabric || cfg.LeafPorts != l.Config.LeafPorts) {
		// The switch arrangement is wiring on the bench, like the link
		// kind and host count — a different fabric shape is a new lab.
		return fmt.Errorf("lab: cannot reset %v fabric (leaf ports %d) to %v (leaf ports %d)",
			l.Config.Fabric, l.Config.LeafPorts, cfg.Fabric, cfg.LeafPorts)
	}
	if n := l.Env.Pending(); n != 0 {
		// The previous trial never drained its event loop (it errored or
		// was abandoned mid-run); resetting would strand scheduled work.
		return fmt.Errorf("lab: cannot reset with %d events pending", n)
	}
	if l.Config.CheckLeaks {
		if hdrs, pages := l.PoolLive(); hdrs != 0 || pages != 0 {
			return fmt.Errorf("lab: trial leaked %d mbuf headers and %d cluster pages: %w",
				hdrs, pages, ErrPoolLeak)
		}
	}
	l.Env.Reset()
	if cfg.Seed != 0 {
		l.Env.Seed(cfg.Seed)
	}
	model := cfg.Cost
	if model == nil {
		model = cost.DECstation5000()
	}
	for _, h := range l.Hosts {
		resetHost(h, model, cfg)
	}
	switch cfg.Link {
	case LinkATM:
		if l.Fabric != nil {
			l.Fabric.Reset()
		}
		for _, h := range l.Hosts {
			h.ATMAdapter.LossRate = cfg.CellLossRate
			h.ATMAdapter.CorruptRate = cfg.CellCorruptRate
			h.ATMDriver.HostCorruptRate = cfg.HostCorruptRate
		}
		applyQdisc(l.Fabric, cfg)
	case LinkEther:
		l.Segment.Reset()
	}
	applyImpairments(l, cfg)
	l.eventsSince = 0
	l.faultState = nil // outage refcounts and hooks are per-trial
	l.wd = nil
	l.Config = cfg
	return nil
}

// ErrPoolLeak marks a Reset refused by the Config.CheckLeaks gate: the
// finished trial left live mbuf chains behind. Callers that fall back
// to a fresh lab on other Reset failures (an undrained event loop, a
// shape mismatch) must NOT swallow this one — it reports a bug in the
// stack, not an unusable testbed.
var ErrPoolLeak = errors.New("mbuf pool leak")

// PoolLive sums the live mbuf headers and cluster pages across every
// host's pool — both zero between trials unless a chain leaked.
func (l *Lab) PoolLive() (hdrs, pages int64) {
	for _, h := range l.Hosts {
		hdrs += h.Kern.Pool.PoolStats.LiveHeaders
		pages += h.Kern.Pool.PoolStats.LivePages
	}
	return hdrs, pages
}

// resetHost rewinds one workstation to its just-built state, applying
// the new trial's configuration exactly as buildHost applies it to a
// fresh host (same knobs, same order).
func resetHost(h *Host, model *cost.Model, cfg Config) {
	if cfg.MTU != 0 && cfg.MTU < MinMTU {
		cfg.MTU = 0
	}
	h.Kern.Reset(model)
	if cfg.PacketTrace {
		h.Kern.Trace.EnablePackets()
	} else {
		h.Kern.Trace.DisablePackets()
	}
	h.IP.Reset()
	if h.ATMAdapter != nil {
		h.ATMAdapter.Reset()
		h.ATMDriver.Reset()
		h.ATMDriver.Mode = cfg.Mode
		h.ATMDriver.MTUOverride = cfg.MTU
	}
	if h.EthAdapter != nil {
		h.EthAdapter.Reset()
		h.EthDriver.Reset()
		h.EthDriver.MTUOverride = cfg.MTU
	}
	h.TCP.Reset()
	h.TCP.SockBuf = cfg.SockBuf
	h.TCP.Mode = cfg.Mode
	h.TCP.PredictionEnabled = !cfg.DisablePrediction
	h.TCP.Table.UseHash = cfg.HashPCBs
	h.UDP.Reset()
	h.UDP.ChecksumOff = cfg.Mode == cost.ChecksumNone
}

// HostName returns the trace host name of host i — the key
// trace.BreakdownFromEvents wants. The paper's echo pair fixed the
// names: host 0 is "client", host 1 is "server", the rest are numbered.
// Note the workload engine puts its SERVER on host 0, so a fan-in
// server's trace events carry the name "client".
func HostName(i int) string { return hostName(i) }

// hostName keeps the paper's names for the measurement pair and numbers
// the rest.
func hostName(i int) string {
	switch i {
	case 0:
		return "client"
	case 1:
		return "server"
	}
	return fmt.Sprintf("host%d", i)
}

// vciFor is the mesh VCI identifying host i on any fiber it shares.
func vciFor(i int) uint16 { return atm.DefaultVCI + uint16(i) }

// buildHost assembles one workstation.
func buildHost(env *sim.Env, model *cost.Model, cfg Config, name string, addr uint32) *Host {
	if cfg.MTU != 0 && cfg.MTU < MinMTU {
		cfg.MTU = 0
	}
	k := kern.New(env, model, name)
	if cfg.PacketTrace {
		k.Trace.EnablePackets()
	}
	h := &Host{Kern: k}
	h.IP = ip.NewStack(k, addr)
	switch cfg.Link {
	case LinkATM:
		h.ATMAdapter = atm.NewAdapter(k)
		h.ATMDriver = atm.NewDriver(k, h.ATMAdapter, h.IP)
		h.ATMDriver.Mode = cfg.Mode
		h.ATMDriver.MTUOverride = cfg.MTU
	case LinkEther:
		// Locally administered MAC carrying the host's IP address, so
		// every station on a shared segment is unique.
		station := [6]byte{2, 0, byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}
		h.EthAdapter = ether.NewAdapter(k, station)
		h.EthDriver = ether.NewDriver(k, h.EthAdapter, h.IP)
		h.EthDriver.MTUOverride = cfg.MTU
	}
	h.TCP = tcp.NewStack(k, h.IP)
	h.TCP.SockBuf = cfg.SockBuf
	h.TCP.Mode = cfg.Mode
	h.TCP.PredictionEnabled = !cfg.DisablePrediction
	h.TCP.Table.UseHash = cfg.HashPCBs
	h.UDP = udp.NewStack(k, h.IP)
	h.UDP.ChecksumOff = cfg.Mode == cost.ChecksumNone
	return h
}

// populatePCBs inserts n synthetic idle connections. The harness calls it
// after the benchmark connection is established, so the noise connections
// sit ahead of it on the list (BSD inserts at the head) and every
// cache-miss lookup must walk past them — the situation the §3 hash-table
// discussion addresses.
func populatePCBs(s *tcp.Stack, n int) {
	for i := 0; i < n; i++ {
		s.InsertIdlePCB(uint32(0x0a000000+i), uint16(20000+i%40000))
	}
}

// EchoResult is the outcome of one echo benchmark run.
type EchoResult struct {
	Size       int
	Iterations int
	// CorruptEchoes counts measured iterations whose echoed bytes did
	// not match what was sent — end-to-end data corruption that every
	// lower-layer check missed. Zero in every experiment except the
	// §4.2.1 study's no-checksum-plus-host-corruption configuration.
	CorruptEchoes int
	RTTs          []sim.Time
	// Windows give, for each measured iteration, the client-side
	// timestamps the breakdown computations need.
	Windows []IterWindow
}

// IterWindow delimits one measured round trip on the client.
type IterWindow struct {
	WriteStart sim.Time // client entered write(2)
	WriteEnd   sim.Time // write returned
	ReadReturn sim.Time // read of the full echo returned
}

// MeanRTT returns the average round-trip time.
func (r *EchoResult) MeanRTT() sim.Time {
	if len(r.RTTs) == 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range r.RTTs {
		sum += v
	}
	return sum / sim.Time(len(r.RTTs))
}

// MeanRTTMicros returns the average round-trip time in microseconds, the
// paper's reporting unit.
func (r *EchoResult) MeanRTTMicros() float64 { return r.MeanRTT().Micros() }

// MedianRTTMicros returns the median round-trip time in microseconds.
// Under injected loss the mean is dominated by retransmission-timeout
// stalls; the median shows the loss-free common case.
func (r *EchoResult) MedianRTTMicros() float64 {
	var s stats.Sample
	for _, v := range r.RTTs {
		s.Add(v.Micros())
	}
	return s.Percentile(50)
}

// echoPort is the server's listening port.
const echoPort = 7 // the echo service

// livePort accepts the Config.LivePCBs population connections.
const livePort = 9 // the discard service

// livePCBsFrame opens n real connections from the client to the
// server's discard port and leaves them established. Like the synthetic
// population, they insert at the head of both PCB lists, ahead of the
// benchmark connection; unlike it, they are genuine connections created
// by real handshakes.
type livePCBsFrame struct {
	l  *Lab
	n  int
	i  int
	op *tcp.ConnectOp

	Err error
}

// Step opens one connection per re-entry until n are established.
func (f *livePCBsFrame) Step(p *sim.Proc) {
	if f.op != nil {
		if f.op.Err != nil {
			f.Err = fmt.Errorf("lab: live PCB %d: %w", f.i, f.op.Err)
			p.Return()
			return
		}
		f.op = nil
		f.i++
	}
	if f.i >= f.n {
		p.Return()
		return
	}
	f.op = f.l.Client.TCP.Connect(p, ServerAddr, livePort)
}

// echoServerFrame is the echo server: accept one connection, then loop
// reading size bytes and writing them back until the peer closes.
type echoServerFrame struct {
	l    *Lab
	ln   *tcp.Listener
	size int

	pc     int
	accept *tcp.AcceptOp
	so     *sock.Socket
	buf    []byte
	total  int
	recv   *sock.RecvOp
	send   *sock.SendOp
}

// Step drives the server loop.
func (f *echoServerFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // accept the benchmark connection
			f.pc = 1
			f.accept = f.ln.Accept(p)
			return
		case 1: // configure it and enter the echo loop
			f.so = f.accept.So
			if !f.l.Config.Nagle {
				f.accept.C.SetNoDelay(true)
			}
			f.accept = nil
			f.buf = make([]byte, f.size)
			f.total = 0
			f.pc = 2
		case 2: // read until a full request is in
			if f.total < f.size {
				f.pc = 3
				f.recv = f.so.Recv(p, f.buf[f.total:])
				return
			}
			f.pc = 4
			f.send = f.so.Send(p, f.buf)
			return
		case 3: // fold in one read's result
			if f.recv.Err != nil || f.recv.N == 0 {
				p.Return()
				return
			}
			f.total += f.recv.N
			f.recv = nil
			f.pc = 2
		case 4: // echo written; next request
			if f.send.Err != nil {
				p.Return()
				return
			}
			f.send = nil
			f.total = 0
			f.pc = 2
		}
	}
}

// echoClientFrame is the benchmark client: connect, populate the PCB
// tables, then run warmup+iterations timed request/response round trips.
type echoClientFrame struct {
	l          *Lab
	size       int
	iterations int
	warmup     int
	res        *EchoResult
	runErr     *error

	pc       int
	conn     *tcp.ConnectOp
	live     *livePCBsFrame
	so       *sock.Socket
	msg, buf []byte
	i        int
	total    int
	w        IterWindow
	recv     *sock.RecvOp
	send     *sock.SendOp
}

// fail records the run error and finishes the frame.
func (f *echoClientFrame) fail(p *sim.Proc, err error) {
	*f.runErr = err
	p.Return()
}

// Step drives the client loop.
func (f *echoClientFrame) Step(p *sim.Proc) {
	l := f.l
	for {
		switch f.pc {
		case 0: // connect to the echo server
			f.pc = 1
			f.conn = l.Client.TCP.Connect(p, ServerAddr, echoPort)
			return
		case 1: // configure the connection, populate the PCB tables
			if f.conn.Err != nil {
				f.fail(p, f.conn.Err)
				return
			}
			f.so = f.conn.So
			if !l.Config.Nagle {
				f.conn.C.SetNoDelay(true)
			}
			f.conn = nil
			populatePCBs(l.Client.TCP, l.Config.ExtraPCBs)
			populatePCBs(l.Server.TCP, l.Config.ExtraPCBs)
			if l.Config.LivePCBs > 0 {
				f.live = &livePCBsFrame{l: l, n: l.Config.LivePCBs}
				f.pc = 2
				p.Call(f.live)
				return
			}
			f.pc = 3
		case 2: // fold in the live-population result
			if f.live.Err != nil {
				f.fail(p, f.live.Err)
				return
			}
			f.live = nil
			f.pc = 3
		case 3: // prepare the message buffers
			f.msg = make([]byte, f.size)
			l.Env.RNG().Fill(f.msg)
			f.buf = make([]byte, f.size)
			f.i = 0
			f.pc = 4
		case 4: // iteration head: write the request
			if f.i >= f.warmup+f.iterations {
				f.pc = 8
				f.so.Close(p)
				return
			}
			if f.i >= f.warmup && !l.tracing() {
				l.setTracing(true)
			}
			f.w = IterWindow{WriteStart: l.Env.Now()}
			f.pc = 5
			f.send = f.so.Send(p, f.msg)
			return
		case 5: // request written; read the echo
			if f.send.Err != nil {
				f.fail(p, f.send.Err)
				return
			}
			f.send = nil
			f.w.WriteEnd = l.Env.Now()
			f.total = 0
			f.pc = 6
		case 6: // read loop head
			if f.total < f.size {
				f.pc = 7
				f.recv = f.so.Recv(p, f.buf[f.total:])
				return
			}
			f.w.ReadReturn = l.Env.Now()
			if f.i >= f.warmup {
				f.res.RTTs = append(f.res.RTTs, f.w.ReadReturn-f.w.WriteStart)
				f.res.Windows = append(f.res.Windows, f.w)
				if !bytesEqual(f.buf, f.msg) {
					f.res.CorruptEchoes++
				}
			}
			f.i++
			f.pc = 4
		case 7: // fold in one read's result
			if f.recv.Err != nil {
				f.fail(p, f.recv.Err)
				return
			}
			if f.recv.N == 0 {
				f.fail(p, fmt.Errorf("lab: unexpected EOF at iteration %d", f.i))
				return
			}
			f.total += f.recv.N
			f.recv = nil
			f.pc = 6
		case 8: // closed; done
			p.Return()
			return
		}
	}
}

// RunEcho runs the paper's benchmark (§1.2): the client connects, then
// repeatedly sends size bytes and waits to receive size bytes back, for
// warmup unmeasured iterations followed by iterations measured ones.
// Tracing is enabled only for the measured iterations.
func (l *Lab) RunEcho(size, iterations, warmup int) (*EchoResult, error) {
	res := &EchoResult{Size: size, Iterations: iterations}
	var runErr error

	ln, err := l.Server.TCP.Listen(echoPort)
	if err != nil {
		return nil, err
	}
	if l.Config.LivePCBs > 0 {
		if _, err := l.Server.TCP.Listen(livePort); err != nil {
			return nil, err
		}
	}
	l.Env.Spawn("server.echo", &echoServerFrame{l: l, ln: ln, size: size})
	l.Env.Spawn("client.echo", &echoClientFrame{
		l: l, size: size, iterations: iterations, warmup: warmup,
		res: res, runErr: &runErr,
	})

	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if len(res.RTTs) != iterations {
		return nil, fmt.Errorf("lab: measured %d of %d iterations", len(res.RTTs), iterations)
	}
	return res, nil
}

// udpEchoServerFrame bounces rounds datagrams back to their senders.
type udpEchoServerFrame struct {
	srv    *udp.Endpoint
	rounds int

	pc   int
	i    int
	recv *udp.RecvFromOp
}

// Step drives the UDP echo server loop.
func (f *udpEchoServerFrame) Step(p *sim.Proc) {
	for {
		switch f.pc {
		case 0: // wait for the next request
			if f.i >= f.rounds {
				p.Return()
				return
			}
			f.pc = 1
			f.recv = f.srv.RecvFrom(p)
			return
		case 1: // bounce it back
			d := f.recv.D
			f.recv = nil
			f.i++
			f.pc = 0
			f.srv.SendTo(p, d.Src, d.SrcPort, d.Data)
			return
		}
	}
}

// udpEchoClientFrame runs the timed UDP request/response loop.
type udpEchoClientFrame struct {
	l      *Lab
	size   int
	warmup int
	rounds int
	port   uint16
	res    *EchoResult
	runErr *error

	pc   int
	cli  *udp.Endpoint
	msg  []byte
	i    int
	w    IterWindow
	recv *udp.RecvFromOp
}

// Step drives the UDP echo client loop.
func (f *udpEchoClientFrame) Step(p *sim.Proc) {
	l := f.l
	for {
		switch f.pc {
		case 0: // bind and prepare the message
			cli, err := l.Client.UDP.Bind(0)
			if err != nil {
				*f.runErr = err
				p.Return()
				return
			}
			f.cli = cli
			f.msg = make([]byte, f.size)
			l.Env.RNG().Fill(f.msg)
			f.pc = 1
		case 1: // iteration head: send the request
			if f.i >= f.rounds {
				p.Return()
				return
			}
			f.w = IterWindow{WriteStart: l.Env.Now()}
			f.pc = 2
			f.cli.SendTo(p, ServerAddr, f.port, f.msg)
			return
		case 2: // request sent; wait for the echo
			f.w.WriteEnd = l.Env.Now()
			f.pc = 3
			f.recv = f.cli.RecvFrom(p)
			return
		case 3: // echo received; record the round trip
			f.w.ReadReturn = l.Env.Now()
			if f.i >= f.warmup {
				f.res.RTTs = append(f.res.RTTs, f.w.ReadReturn-f.w.WriteStart)
				f.res.Windows = append(f.res.Windows, f.w)
				if !bytesEqual(f.recv.D.Data, f.msg) {
					f.res.CorruptEchoes++
				}
			}
			f.recv = nil
			f.i++
			f.pc = 1
		}
	}
}

// RunUDPEcho runs the same request/response benchmark over UDP: the
// datagram baseline for the paper's "is TCP viable for RPC?" question.
// Sizes above the link MTU are rejected (UDP here does not fragment).
func (l *Lab) RunUDPEcho(size, iterations, warmup int) (*EchoResult, error) {
	res := &EchoResult{Size: size, Iterations: iterations}
	const port = 2049 // the NFS port, in the spirit of §4.2
	srv, err := l.Server.UDP.Bind(port)
	if err != nil {
		return nil, err
	}
	var runErr error
	l.Env.Spawn("server.udpecho", &udpEchoServerFrame{srv: srv, rounds: warmup + iterations})
	l.Env.Spawn("client.udpecho", &udpEchoClientFrame{
		l: l, size: size, warmup: warmup, rounds: warmup + iterations,
		port: port, res: res, runErr: &runErr,
	})
	l.Env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if len(res.RTTs) != iterations {
		return nil, fmt.Errorf("lab: udp echo measured %d of %d iterations",
			len(res.RTTs), iterations)
	}
	return res, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (l *Lab) tracing() bool { return l.Client.Kern.Trace.Enabled() }

func (l *Lab) setTracing(on bool) {
	if l.flipLocal != nil {
		l.flipLocal(on)
		return
	}
	for _, h := range l.Hosts {
		if on {
			h.Kern.Trace.Enable()
		} else {
			h.Kern.Trace.Disable()
		}
	}
}

// EnableTracing turns span (and, when Config.PacketTrace armed it,
// event) recording on for every host. The echo benchmark manages this
// itself around its measured iterations; the other workload generators
// call it at the start of a traced run so the trace covers connection
// setup too.
func (l *Lab) EnableTracing() { l.setTracing(true) }

// PacketEvents merges every host's recorded packet events into one
// deterministic stream, ordered by virtual time with ties broken by
// host order (client, server, host2, …) and emission order. The result
// is a pure function of the simulation: the same configuration and seed
// produce byte-identical JSON at any sweep worker count.
func (l *Lab) PacketEvents() []trace.HostEvent {
	names := make([]string, len(l.Hosts))
	recs := make([]*trace.Recorder, len(l.Hosts))
	for i, h := range l.Hosts {
		names[i] = h.Kern.Name
		recs[i] = h.Kern.Trace
	}
	evs := trace.MergeEvents(names, recs)
	if l.eventsSince > 0 {
		// Sharded echo run: hosts outside the client's shard recorded
		// from time zero (they cannot be flipped mid-round); drop what
		// the serial benchmark would never have recorded.
		k := 0
		for _, ev := range evs {
			if ev.At >= l.eventsSince {
				evs[k] = ev
				k++
			}
		}
		evs = evs[:k]
	}
	return evs
}
