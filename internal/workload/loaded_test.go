package workload_test

import (
	"encoding/json"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/workload"
)

// loadedConfig is the canonical congested-regime configuration the
// loaded tests share: a hub fabric under RED, burst loss, and cell
// reordering.
func loadedConfig(seed uint64) lab.Config {
	return lab.Config{
		Link: lab.LinkATM, Seed: seed, PacketTrace: true,
		Qdisc:        lab.QdiscConfig{Kind: lab.QdiscRED},
		BurstLoss:    sim.GEParams{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.5},
		ReorderRate:  0.0005,
		ReorderDepth: 2,
	}
}

// TestFanInRUDPClean runs the fan-in workload on the rudp transport over
// an unimpaired fabric: every request must complete with its payload
// intact, just like TCP.
func TestFanInRUDPClean(t *testing.T) {
	l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 3}, 5)
	g := workload.FanIn{Transport: workload.TransportRUDP, Requests: 10, Size: 256}
	r, err := g.Run(l)
	if err != nil {
		t.Fatalf("rudp fan-in: %v", err)
	}
	if r.Errors != 0 {
		t.Errorf("%d payload errors on a clean network", r.Errors)
	}
	if want := 4 * 10; r.Requests != want {
		t.Errorf("%d requests, want %d", r.Requests, want)
	}
	for i, lat := range r.Latencies {
		if lat <= 0 || lat > sim.Second {
			t.Errorf("latency[%d] = %v out of range", i, lat)
		}
	}
}

// TestFanInRUDPUnderLoss runs the rudp transport through the
// Gilbert–Elliott burst-loss chain: retransmission must recover every
// request (latencies may include RTO waits, hence the loose bound).
func TestFanInRUDPUnderLoss(t *testing.T) {
	cfg := lab.Config{
		Link: lab.LinkATM, Seed: 11,
		BurstLoss: sim.GEParams{PGoodBad: 0.005, PBadGood: 0.2, LossBad: 0.6},
	}
	l := lab.NewTopology(cfg, 4)
	g := workload.FanIn{Transport: workload.TransportRUDP, Requests: 8, Size: 200}
	r, err := g.Run(l)
	if err != nil {
		t.Fatalf("rudp fan-in under burst loss: %v", err)
	}
	if r.Errors != 0 {
		t.Errorf("%d payload errors after recovery", r.Errors)
	}
	if want := 3 * 8; r.Requests != want {
		t.Errorf("%d requests, want %d", r.Requests, want)
	}
}

// TestFanInTCPLoaded runs the TCP fan-in with every load knob on at
// once — RED, burst loss, reordering, cross traffic — and requires the
// measured workload to complete exactly.
func TestFanInTCPLoaded(t *testing.T) {
	l := lab.NewTopology(loadedConfig(5), 6)
	g := workload.FanIn{
		Requests: 6, Size: 200,
		Cross: &workload.CrossTraffic{Flows: 2, Transfers: 2, MaxBytes: 65536},
	}
	r, err := g.Run(l)
	if err != nil {
		t.Fatalf("loaded fan-in: %v", err)
	}
	if want := 5 * 6; r.Requests != want {
		t.Errorf("%d requests, want %d", r.Requests, want)
	}
}

// TestLoadedDeterminism requires the full loaded configuration to be a
// pure function of its seed: two fresh labs agree byte for byte, and a
// lab.Reset reuse of the testbed reproduces the fresh run.
func TestLoadedDeterminism(t *testing.T) {
	run := func(l *lab.Lab) string {
		t.Helper()
		g := workload.FanIn{
			Requests: 5, Size: 200,
			Cross: &workload.CrossTraffic{Flows: 2, Transfers: 2, MaxBytes: 32768},
		}
		r, err := g.Run(l)
		if err != nil {
			t.Fatalf("loaded fan-in: %v", err)
		}
		b, _ := json.Marshal(r)
		return string(b)
	}
	cfg := loadedConfig(9)
	want := run(lab.NewTopology(cfg, 5))
	if got := run(lab.NewTopology(cfg, 5)); got != want {
		t.Errorf("fresh labs diverged:\n%.300s\n%.300s", want, got)
	}

	// Reset reuse: run a different seed first, then reset back.
	reuse := lab.NewTopology(loadedConfig(23), 5)
	run(reuse)
	if err := reuse.Reset(cfg, 0); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := run(reuse); got != want {
		t.Errorf("reset lab diverged from fresh:\n%.300s\n%.300s", want, got)
	}
}

// TestLoadedRUDPDeterminism is the rudp twin of TestLoadedDeterminism
// (without impairments, which slow rudp runs through 1-second RTOs).
func TestLoadedRUDPDeterminism(t *testing.T) {
	cfg := lab.Config{
		Link: lab.LinkATM, Seed: 13, PacketTrace: true,
		Qdisc: lab.QdiscConfig{Kind: lab.QdiscRED},
	}
	run := func(l *lab.Lab) string {
		t.Helper()
		g := workload.FanIn{
			Transport: workload.TransportRUDP, Requests: 5, Size: 200,
			Cross: &workload.CrossTraffic{Flows: 2, Transfers: 2, MaxBytes: 32768},
		}
		r, err := g.Run(l)
		if err != nil {
			t.Fatalf("loaded rudp fan-in: %v", err)
		}
		b, _ := json.Marshal(r)
		return string(b)
	}
	want := run(lab.NewTopology(cfg, 5))
	if got := run(lab.NewTopology(cfg, 5)); got != want {
		t.Errorf("fresh rudp labs diverged:\n%.300s\n%.300s", want, got)
	}
}

// TestShardedRejectsBurstLoss pins the construction-time rejection: the
// impairment knobs join the fault knobs sharded execution refuses.
func TestShardedRejectsBurstLoss(t *testing.T) {
	cfg := lab.Config{
		Link: lab.LinkATM, Seed: 1,
		BurstLoss: sim.GEParams{PGoodBad: 0.01, PBadGood: 0.5, LossBad: 0.5},
	}
	if _, err := lab.NewCluster(cfg, 4, 2); err == nil {
		t.Error("NewCluster accepted a burst-loss configuration")
	}
	cfg = lab.Config{Link: lab.LinkATM, Seed: 1, ReorderRate: 0.01}
	if _, err := lab.NewCluster(cfg, 4, 2); err == nil {
		t.Error("NewCluster accepted a reordering configuration")
	}
	// Reset must reject them too.
	c, err := lab.NewCluster(lab.Config{Link: lab.LinkATM, Seed: 1}, 4, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, err := workload.RunSharded(workload.FanIn{Requests: 2, Size: 64}, c); err != nil {
		t.Fatalf("sharded fan-in: %v", err)
	}
	bad := lab.Config{
		Link: lab.LinkATM, Seed: 2,
		BurstLoss: sim.GEParams{PGoodBad: 0.01, PBadGood: 0.5, LossBad: 0.5},
	}
	if err := c.Reset(bad, 0); err == nil {
		t.Error("Cluster.Reset accepted a burst-loss configuration")
	}
}

// TestShardedLoadedBitIdentity requires the shardable slice of the
// loaded tier — qdisc plus cross traffic, both transports — to
// reproduce its serial run byte for byte across shard counts.
func TestShardedLoadedBitIdentity(t *testing.T) {
	for _, transport := range []string{workload.TransportTCP, workload.TransportRUDP} {
		cfg := lab.Config{
			Link: lab.LinkATM, Seed: 17, PacketTrace: true,
			Qdisc: lab.QdiscConfig{Kind: lab.QdiscRED},
		}
		g := workload.FanIn{
			Transport: transport, Requests: 4, Size: 200,
			Cross: &workload.CrossTraffic{Flows: 2, Transfers: 2, MaxBytes: 32768},
		}
		serial, err := g.Run(lab.NewTopology(cfg, 5))
		if err != nil {
			t.Fatalf("%s serial: %v", transport, err)
		}
		want, _ := json.Marshal(serial)
		for _, shards := range []int{2, 3} {
			c, err := lab.NewCluster(cfg, 5, shards)
			if err != nil {
				t.Fatalf("NewCluster(%d): %v", shards, err)
			}
			got, err := workload.RunSharded(g, c)
			if err != nil {
				t.Fatalf("%s sharded(%d): %v", transport, shards, err)
			}
			gotJSON, _ := json.Marshal(got)
			if string(gotJSON) != string(want) {
				t.Errorf("%s on %d shards diverged from serial\nserial:  %.200s\nsharded: %.200s",
					transport, shards, want, gotJSON)
			}
		}
	}
}
