// Command cksum regenerates the user-level copy and checksum study
// (Table 5 / Figure 2), the §3 PCB lookup experiment, and the §4.1 Sun-3
// comparison. The checksum routines execute for real over random
// buffers; the reported times come from the DECstation 5000/200 cost
// calibration. The independent studies shard across a worker pool
// (-parallel); -seed reseeds the validation buffers; -json emits the
// structured results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cksum:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cksum", flag.ContinueOnError)
	var (
		pcb      = fs.Bool("pcb", true, "include the PCB lookup experiment")
		sun      = fs.Bool("sun3", true, "include the §4.1 Sun-3 comparison")
		parallel = fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
		seed     = fs.Uint64("seed", 0, "seed for the checksum validation buffers (0 = default)")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	// The three studies are independent; run them through the sweep
	// engine so -parallel applies here too.
	jobs := []runner.Job{
		{Label: "table5", Run: func(context.Context, uint64) (any, error) {
			return core.RunTable5Seeded(*seed)
		}},
	}
	if *pcb {
		jobs = append(jobs, runner.Job{
			Label: "pcb",
			Run: func(context.Context, uint64) (any, error) {
				return core.RunPCBExperiment(), nil
			},
		})
	}
	if *sun {
		jobs = append(jobs, runner.Job{
			Label: "sun3",
			Run: func(context.Context, uint64) (any, error) {
				return core.RunSun3Comparison(), nil
			},
		})
	}
	outs, err := runner.Run(context.Background(), jobs, runner.Options{Workers: *parallel})
	if err != nil {
		return err
	}
	if err := runner.FirstError(outs); err != nil {
		return err
	}

	if *jsonOut {
		payload := map[string]any{}
		for _, out := range outs {
			payload[out.Label] = out.Value
		}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(b))
		return nil
	}
	for _, out := range outs {
		switch v := out.Value.(type) {
		case *core.CksumResult:
			fmt.Fprintln(w, v.Render())
		case *core.PCBResult:
			fmt.Fprintln(w, v.Render())
		case core.Sun3Result:
			fmt.Fprintln(w, v.Render())
		}
	}
	return nil
}
