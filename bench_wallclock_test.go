// Wall-clock benchmarks of the simulator itself — the tier behind
// BENCH_wallclock.json. Where bench_test.go reports *simulated*
// microseconds (exact, machine-independent, gated by benchdiff's strict
// tolerance), this file reports how fast and how allocation-hungry the
// simulator is on the machine running it: ns/op and allocs/op for the
// sweep engine, the fan-in topology, and the traced and untraced echo
// paths. These numbers move when the event loop, the mbuf pool, or the
// trace engine changes — and must NOT move any sim-µs metric, which is
// exactly what `make benchdiff` plus `make bench-wallclock` together
// enforce (see docs/PERFORMANCE.md).
//
// Run with:
//
//	go test -run='^$' -bench=Wallclock -benchmem .
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// BenchmarkWallclockSweepSerial is the wall-clock cost of the 40-cell
// benchmark grid (sweepBenchTrials) on one worker — the reference
// number the ISSUE-4 hot-path overhaul is measured against.
func BenchmarkWallclockSweepSerial(b *testing.B) {
	b.ReportAllocs()
	benchSweep(b, 1)
}

// BenchmarkWallclockSweepParallel is the same grid on GOMAXPROCS
// workers; outputs stay bit-identical (TestSerialParallelIdentical).
func BenchmarkWallclockSweepParallel(b *testing.B) {
	b.ReportAllocs()
	benchSweep(b, 0)
}

// BenchmarkWallclockFanIn16 builds the 17-host ATM topology and runs the
// 16-client fan-in once per op — the per-packet hot path under live
// demultiplexing pressure.
func BenchmarkWallclockFanIn16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := lab.NewTopology(lab.Config{Link: lab.LinkATM, Seed: 1994}, 17)
		if _, err := (workload.FanIn{Size: 200, Requests: 4, Warmup: 1}).Run(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWallclockEchoTraced runs the 1400-byte echo with per-packet
// event recording armed, measuring what tracing costs in host time (it
// charges no simulated time; TestPacketTraceDoesNotPerturbTiming).
func BenchmarkWallclockEchoTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := lab.New(lab.Config{Link: lab.LinkATM, Seed: 1994, PacketTrace: true})
		if _, err := l.RunEcho(1400, 16, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWallclockFanInLoaded is the loaded-tier hot path: the
// 16-client fan-in with every switch egress port behind RED,
// Gilbert–Elliott burst loss armed on every link, and two heavy-tailed
// cross-traffic flows contending for the server's egress. Its ns/op
// prices what the impairment layer costs per run — RED's EWMA update
// and drop lottery per cell arrival, the GE chain's two draws per cell,
// the cross flows' extra connections. The unloaded FanIn16 number
// above is the control: work on the loaded path must not move it.
func BenchmarkWallclockFanInLoaded(b *testing.B) {
	b.ReportAllocs()
	cfg := lab.Config{Link: lab.LinkATM, Seed: 1994,
		Qdisc:     lab.QdiscConfig{Kind: lab.QdiscRED},
		BurstLoss: sim.GEParams{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.5},
	}
	gen := workload.FanIn{Size: 200, Requests: 4, Warmup: 1,
		Cross: &workload.CrossTraffic{Flows: 2}}
	for i := 0; i < b.N; i++ {
		l := lab.NewTopology(cfg, 17)
		if _, err := gen.Run(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWallclockFanIn10k is the scale benchmark the routed-fabric
// and streaming-statistics work exists for: 10,000 clients against one
// server on a fat-tree fabric, VCs installed on demand, per-request
// latencies folded into constant-memory aggregates, client starts
// staggered 5ms apart — above the server CPU's ~3.5ms per-connection
// service time — so the run measures traffic rather than
// SYN-retransmission collapse. Besides ns/op it reports peak-heap-MB —
// live heap after the run — which benchdiff carries into the baseline's
// metadata: the number that blows up if per-pair VC state or per-request
// latency retention ever creeps back in.
func BenchmarkWallclockFanIn10k(b *testing.B) {
	b.ReportAllocs()
	gen := workload.FanIn{
		Size:     200,
		Requests: 1,
		Warmup:   0,
		Stagger:  5000 * sim.Microsecond,
		Stats:    stats.Config{Streaming: true},
	}
	cfg := lab.Config{Link: lab.LinkATM, Fabric: lab.FabricFatTree, Seed: 1994, HashPCBs: true}
	var peak uint64
	for i := 0; i < b.N; i++ {
		l := lab.NewTopology(cfg, 10001)
		res, err := gen.Run(l)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("completed %d of 10000 requests", res.Requests)
		}
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
		runtime.KeepAlive(l)
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

// BenchmarkWallclockFanIn10kSharded is the 10,000-client fan-in driven
// through the 4-shard cluster executor: identical simulated results
// (the sharded golden tests pin this), with the event loops of the four
// host partitions running on concurrent goroutines under conservative
// lookahead. Compare its ns/op against BenchmarkWallclockFanIn10k at
// -cpu=2 or higher to read the parallel speedup; on a single-CPU
// machine it instead measures the barrier overhead sharding adds.
func BenchmarkWallclockFanIn10kSharded(b *testing.B) {
	b.ReportAllocs()
	gen := workload.FanIn{
		Size:     200,
		Requests: 1,
		Warmup:   0,
		Stagger:  5000 * sim.Microsecond,
		Stats:    stats.Config{Streaming: true},
	}
	cfg := lab.Config{Link: lab.LinkATM, Fabric: lab.FabricFatTree, Seed: 1994, HashPCBs: true}
	var peak uint64
	for i := 0; i < b.N; i++ {
		c, err := lab.NewCluster(cfg, 10001, 4)
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.RunSharded(gen, c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("completed %d of 10000 requests", res.Requests)
		}
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
		b.ReportMetric(float64(c.Rounds()), "rounds")
		runtime.KeepAlive(c)
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

// echoMallocs runs one 1400-byte echo lab to completion and returns the
// number of heap allocations it performed.
func echoMallocs(b *testing.B, iters int) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	l := lab.New(lab.Config{Link: lab.LinkATM, Seed: 1994})
	if _, err := l.RunEcho(1400, iters, 2); err != nil {
		b.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// BenchmarkWallclockEchoSteady measures the steady-state echo round
// trip: the marginal allocations between a 108-iteration and an
// 8-iteration run, divided by the 100 extra round trips, so topology
// setup and warmup cancel out exactly. The "allocs/rtt" metric is the
// one the mbuf pool and event-loop overhaul drive toward zero; ns/op
// times the 108-iteration run.
func BenchmarkWallclockEchoSteady(b *testing.B) {
	b.ReportAllocs()
	short := echoMallocs(b, 8)
	long := echoMallocs(b, 108)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := lab.New(lab.Config{Link: lab.LinkATM, Seed: 1994})
		if _, err := l.RunEcho(1400, 108, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(long-short)/100, "allocs/rtt")
}
