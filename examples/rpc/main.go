// RPC: demonstrates the paper's central header-prediction finding (§3).
//
// A round-trip RPC exchange carries data with a piggybacked ACK in every
// segment, which fails BSD's header-prediction predicates — the fast path
// was built for unidirectional transfer. This example runs the same
// request/response workload on two kernels (prediction on and off),
// prints the fast-path hit counters to show the path is simply never
// taken, and shows the latency difference is only the PCB cache.
//
// Run with: go run ./examples/rpc
package main

import (
	"fmt"
	"log"

	"repro/internal/lab"
)

func run(disablePrediction bool) (rttMicros float64, fastData, fastAck, slow, cacheHits int64) {
	cfg := lab.Config{Link: lab.LinkATM, DisablePrediction: disablePrediction}
	l := lab.New(cfg)
	res, err := l.RunEcho(80, 100, 10) // 80-byte RPC-sized messages
	if err != nil {
		log.Fatal(err)
	}
	st := l.Client.TCP.Stats
	sv := l.Server.TCP.Stats
	return res.MeanRTTMicros(),
		st.FastPathData + sv.FastPathData,
		st.FastPathAck + sv.FastPathAck,
		st.SlowPath + sv.SlowPath,
		st.PCBCacheHits + sv.PCBCacheHits
}

func main() {
	fmt.Println("80-byte RPC-style echo, 100 round trips over simulated ATM")
	fmt.Println()

	rtt, fd, fa, slow, hits := run(false)
	fmt.Println("Kernel with header prediction enabled:")
	fmt.Printf("  mean RTT          %8.1f µs\n", rtt)
	fmt.Printf("  fast path (data)  %8d   <- fails for RPC: every segment\n", fd)
	fmt.Printf("  fast path (ACK)   %8d      carries data AND acks new data\n", fa)
	fmt.Printf("  slow path         %8d\n", slow)
	fmt.Printf("  PCB cache hits    %8d   <- the only part that helps\n", hits)
	fmt.Println()

	rtt2, _, _, slow2, hits2 := run(true)
	fmt.Println("Kernel with header prediction disabled (the paper's §3 experiment):")
	fmt.Printf("  mean RTT          %8.1f µs\n", rtt2)
	fmt.Printf("  slow path         %8d\n", slow2)
	fmt.Printf("  PCB cache hits    %8d\n", hits2)
	fmt.Println()

	fmt.Printf("Prediction saves %.1f%% for RPC traffic (paper: ~3%% at 80 bytes,\n",
		(rtt2-rtt)/rtt2*100)
	fmt.Println("attributed to the PCB cache, not the fast path).")
}
