// Package tcp implements the transport under test: a TCP modeled on the
// BSD 4.4 alpha implementation the paper measures, including the pieces
// the paper's experiments turn on and off:
//
//   - segmentation against the interface MSS and the send window, with
//     the sender's data retained in the socket buffer and copied per
//     transmission (the mcopy row);
//   - the single-entry PCB cache and the header-prediction fast path with
//     BSD's exact predicates, which succeed only for the two
//     unidirectional-transfer cases (§3);
//   - the three checksum configurations: standard in-TCP checksum,
//     integrated copy-and-checksum using partial sums stashed in mbufs,
//     and checksum elimination (§4);
//   - retransmission with Jacobson RTT estimation and a reassembly queue,
//     so cell loss injected at the ATM layer is recovered end to end.
//
// All headers are real bytes with real checksums; corruption and loss are
// detected by the same arithmetic a production stack would use.
package tcp

import "fmt"

// Flag bits in the TCP header.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// HeaderLen is the length of a TCP header without options.
const HeaderLen = 20

// maxHeaderLen is the largest header this stack emits or parses: the
// base header plus the MSS and Alternate Checksum options (4 bytes
// each). Hot paths size their stack scratch buffers with it.
const maxHeaderLen = HeaderLen + 4 + 4

// AltCksumNone is the Alternate Checksum Request value meaning "no
// checksum" on this connection. The paper points at Kay and Pasquale's
// use of the Alternate Checksum Option (RFC 1146, kind 14) "to negotiate
// connections that do not use the checksum" (§4.2); both SYNs must carry
// the request for it to take effect.
const AltCksumNone = 1

// Header is a parsed TCP header. MSS and AltCksum are option values from
// a SYN segment (0 when absent); they are the only options this stack
// uses, which matches the paper's environment (RFC 1323 extensions
// postdate it).
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         Seq
	Flags            uint8
	Win              uint16
	Cksum            uint16
	MSS              uint16
	AltCksum         uint8 // Alternate Checksum Request (RFC 1146)
}

// Len returns the encoded header length including options.
func (h *Header) Len() int {
	n := HeaderLen
	if h.MSS != 0 {
		n += 4
	}
	if h.AltCksum != 0 {
		n += 4 // kind, len, value, padding no-op
	}
	return n
}

// Marshal encodes the header into b (which must be at least h.Len() bytes)
// with a zero checksum field, returning the encoded length. The caller
// computes and stores the checksum afterwards.
func (h *Header) Marshal(b []byte) int {
	n := h.Len()
	b[0] = byte(h.SrcPort >> 8)
	b[1] = byte(h.SrcPort)
	b[2] = byte(h.DstPort >> 8)
	b[3] = byte(h.DstPort)
	putSeq(b[4:], h.Seq)
	putSeq(b[8:], h.Ack)
	b[12] = byte(n / 4 << 4)
	b[13] = h.Flags
	b[14] = byte(h.Win >> 8)
	b[15] = byte(h.Win)
	b[16], b[17] = 0, 0 // checksum, filled in later
	b[18], b[19] = 0, 0 // urgent pointer, unused
	off := HeaderLen
	if h.MSS != 0 {
		b[off] = 2 // kind: MSS
		b[off+1] = 4
		b[off+2] = byte(h.MSS >> 8)
		b[off+3] = byte(h.MSS)
		off += 4
	}
	if h.AltCksum != 0 {
		b[off] = 14 // kind: Alternate Checksum Request
		b[off+1] = 3
		b[off+2] = h.AltCksum
		b[off+3] = 1 // no-op pad to a 4-byte boundary
		off += 4
	}
	return n
}

// Parse decodes a header from b, returning the header and its encoded
// length (data offset).
func Parse(b []byte) (Header, int, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, 0, fmt.Errorf("tcp: short header (%d bytes)", len(b))
	}
	h.SrcPort = uint16(b[0])<<8 | uint16(b[1])
	h.DstPort = uint16(b[2])<<8 | uint16(b[3])
	h.Seq = getSeq(b[4:])
	h.Ack = getSeq(b[8:])
	off := int(b[12]>>4) * 4
	if off < HeaderLen || off > len(b) {
		return h, 0, fmt.Errorf("tcp: bad data offset %d", off)
	}
	h.Flags = b[13]
	h.Win = uint16(b[14])<<8 | uint16(b[15])
	h.Cksum = uint16(b[16])<<8 | uint16(b[17])
	// Scan options for MSS.
	opts := b[HeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // no-op
			opts = opts[1:]
		case 2: // MSS
			if len(opts) < 4 || opts[1] != 4 {
				return h, 0, fmt.Errorf("tcp: malformed MSS option")
			}
			h.MSS = uint16(opts[2])<<8 | uint16(opts[3])
			opts = opts[4:]
		case 14: // Alternate Checksum Request
			if len(opts) < 3 || opts[1] != 3 {
				return h, 0, fmt.Errorf("tcp: malformed alternate checksum option")
			}
			h.AltCksum = opts[2]
			opts = opts[3:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return h, 0, fmt.Errorf("tcp: malformed option")
			}
			opts = opts[opts[1]:]
		}
	}
	return h, off, nil
}

// FlagString renders flags for diagnostics, e.g. "SYN|ACK".
func FlagString(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

func putSeq(b []byte, s Seq) {
	b[0] = byte(s >> 24)
	b[1] = byte(s >> 16)
	b[2] = byte(s >> 8)
	b[3] = byte(s)
}

func getSeq(b []byte) Seq {
	return Seq(b[0])<<24 | Seq(b[1])<<16 | Seq(b[2])<<8 | Seq(b[3])
}
