package stats

import (
	"math"
	"sort"
)

// Streaming aggregation: constant-memory moments, P² quantile estimators,
// and reservoir sampling behind the same Sample API.
//
// The exact Sample retains every observation, which is right for the
// paper-scale experiments (their golden tables depend on exact
// nearest-rank quantiles) and wrong for 10,000-host scenarios, where the
// observation stream is the last unbounded memory consumer. A Sample
// built with NewSample(Config{Streaming: true}) holds O(1) state per
// quantile plus a fixed-size reservoir, no matter how many observations
// arrive. The default zero-value Sample remains exact, so nothing about
// the paper-mode outputs can change.

// DefaultReservoirSize is the reservoir capacity when Config.Streaming is
// set without an explicit size: large enough that nearest-rank cuts of
// the reservoir track the true percentiles to a few percent, small enough
// to be irrelevant next to the topology.
const DefaultReservoirSize = 1024

// defaultReservoirSeed seeds the reservoir's replacement RNG when the
// caller does not: an arbitrary odd constant, fixed so that two runs over
// the same observation stream keep identical reservoirs.
const defaultReservoirSeed = 0x9e3779b97f4a7c15

// Config selects how a Sample aggregates.
type Config struct {
	// Streaming selects constant-memory aggregation: Welford moments,
	// P² (Jain–Chlamtac) estimators for the p50/p95/p99 summary, and a
	// reservoir for arbitrary Percentile calls. False — the zero value —
	// retains every observation and computes exact nearest-rank
	// quantiles, as the paper-scale golden tables require.
	Streaming bool
	// ReservoirSize caps the reservoir (zero means
	// DefaultReservoirSize). Only Percentile reads the reservoir;
	// Quantiles uses the P² estimators.
	ReservoirSize int
	// Seed seeds the reservoir's deterministic replacement RNG (zero
	// means a fixed default). The simulation's own RNG is never touched:
	// aggregation must not perturb simulated behaviour.
	Seed uint64
}

// NewSample returns a Sample aggregating per cfg. NewSample(Config{}) is
// equivalent to a zero-value Sample (exact mode).
func NewSample(cfg Config) *Sample {
	s := &Sample{}
	if cfg.Streaming {
		size := cfg.ReservoirSize
		if size <= 0 {
			size = DefaultReservoirSize
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = defaultReservoirSeed
		}
		s.stream = &streamState{
			min: math.Inf(1),
			max: math.Inf(-1),
			res: make([]float64, 0, size),
			rng: seed,
		}
		s.stream.q50.init(0.50)
		s.stream.q95.init(0.95)
		s.stream.q99.init(0.99)
	}
	return s
}

// Streaming reports whether the sample aggregates in constant memory.
func (s *Sample) Streaming() bool { return s.stream != nil }

// streamState is the constant-memory aggregate behind a streaming Sample.
type streamState struct {
	n    int64
	min  float64
	max  float64
	mean float64 // Welford running mean
	m2   float64 // Welford sum of squared deviations

	q50, q95, q99 p2

	res []float64 // reservoir (Algorithm R), capacity fixed at build
	rng uint64    // splitmix64 state for reservoir replacement
}

// add folds one observation into every estimator.
func (st *streamState) add(v float64) {
	st.n++
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	d := v - st.mean
	st.mean += d / float64(st.n)
	st.m2 += d * (v - st.mean)

	st.q50.add(v)
	st.q95.add(v)
	st.q99.add(v)

	if len(st.res) < cap(st.res) {
		st.res = append(st.res, v)
	} else if j := splitmix64(&st.rng) % uint64(st.n); j < uint64(cap(st.res)) {
		// Algorithm R: keep the new observation with probability
		// cap/n, replacing a uniformly chosen resident. The modulo
		// bias at 64-bit range is far below the reservoir's own
		// sampling error.
		st.res[j] = v
	}
}

// percentile is the reservoir-backed nearest-rank cut.
func (st *streamState) percentile(p float64) float64 {
	if len(st.res) == 0 {
		return 0
	}
	sorted := append([]float64(nil), st.res...)
	sort.Float64s(sorted)
	return atRank(sorted, p)
}

// splitmix64 advances the state and returns the next value of the
// sequence — the same generator the runner uses for trial seeds, chosen
// here for the same reason: a few arithmetic ops, full 64-bit
// equidistribution, trivially reproducible.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// p2 is the P² quantile estimator of Jain & Chlamtac (CACM 1985): five
// markers track the running p-quantile without storing observations.
// Markers 0 and 4 ride the observed min and max, marker 2 estimates the
// quantile, and markers 1 and 3 hold the shape of the distribution
// between them, each nudged toward its desired position by a parabolic
// (or, failing monotonicity, linear) adjustment per observation.
type p2 struct {
	p   float64
	cnt int64
	// first holds the initial observations until five have arrived (the
	// estimator needs five markers to start); before that, estimates
	// come from a nearest-rank cut of what exists.
	first [5]float64
	q     [5]float64 // marker heights
	pos   [5]int64   // marker positions (1-based observation counts)
	want  [5]float64 // desired positions
	dwant [5]float64 // desired-position increments per observation
}

// init prepares the estimator for quantile p.
func (e *p2) init(p float64) {
	e.p = p
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// add folds one observation in.
func (e *p2) add(x float64) {
	if e.cnt < 5 {
		e.first[e.cnt] = x
		e.cnt++
		if e.cnt == 5 {
			q := e.first
			sort.Float64s(q[:])
			e.q = q
			e.pos = [5]int64{1, 2, 3, 4, 5}
			p := e.p
			e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	e.cnt++

	// Find the cell the observation falls in, extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			var sign int64 = 1
			if d < 0 {
				sign = -1
			}
			if qn := e.parabolic(i, sign); e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height adjustment for marker i
// moving by d (±1).
func (e *p2) parabolic(i int, d int64) float64 {
	qi, qm, qp := e.q[i], e.q[i-1], e.q[i+1]
	ni, nm, np := float64(e.pos[i]), float64(e.pos[i-1]), float64(e.pos[i+1])
	df := float64(d)
	return qi + df/(np-nm)*((ni-nm+df)*(qp-qi)/(np-ni)+(np-ni-df)*(qi-qm)/(ni-nm))
}

// linear is the fallback height adjustment when the parabola would break
// marker monotonicity.
func (e *p2) linear(i int, d int64) float64 {
	j := i + int(d)
	return e.q[i] + float64(d)*(e.q[j]-e.q[i])/float64(e.pos[j]-e.pos[i])
}

// value returns the current estimate.
func (e *p2) value() float64 {
	if e.cnt == 0 {
		return 0
	}
	if e.cnt < 5 {
		sorted := append([]float64(nil), e.first[:e.cnt]...)
		sort.Float64s(sorted)
		return atRank(sorted, e.p*100)
	}
	return e.q[2]
}
