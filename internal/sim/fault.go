package sim

// GEParams configures a Gilbert–Elliott two-state burst-loss chain: a
// link alternates between a Good and a Bad state with per-step
// transition probabilities, and each transmission unit (cell, frame) is
// lost with the current state's loss probability. Unlike a Bernoulli
// CellLossRate, losses cluster — the Bad state's sojourn is geometric
// with mean 1/PBadGood units — which is what kills several cells of one
// AAL frame at once and so converts cell-level impairment into whole
// segment loss far more often than independent drops of the same rate.
//
// The zero value disables the chain.
type GEParams struct {
	// PGoodBad is the per-unit probability of entering the Bad state.
	PGoodBad float64
	// PBadGood is the per-unit probability of leaving the Bad state;
	// the mean burst length is 1/PBadGood units.
	PBadGood float64
	// LossGood is the per-unit loss probability in the Good state
	// (usually 0 or very small).
	LossGood float64
	// LossBad is the per-unit loss probability in the Bad state.
	LossBad float64
}

// Enabled reports whether the chain does anything.
func (p GEParams) Enabled() bool {
	return p.PGoodBad > 0 || p.LossGood > 0
}

// StationaryLoss returns the long-run loss probability of the chain:
// the Bad-state occupancy times LossBad plus the Good-state occupancy
// times LossGood. It is what the property tests compare empirical rates
// against.
func (p GEParams) StationaryLoss() float64 {
	if p.PGoodBad <= 0 && p.PBadGood <= 0 {
		return p.LossGood
	}
	piBad := p.PGoodBad / (p.PGoodBad + p.PBadGood)
	return piBad*p.LossBad + (1-piBad)*p.LossGood
}

// GEChain is the running state of one link's Gilbert–Elliott chain. It
// draws from its own RNG — seeded per link, never the simulation
// environment's stream — so enabling burst loss on one link perturbs no
// other random draw and runs stay bit-reproducible. (Sharded execution
// still rejects burst-loss configurations at construction, like the
// other fault knobs, so fault studies compare serial runs only.)
type GEChain struct {
	P    GEParams
	seed uint64
	bad  bool
	rng  RNG
}

// Init (re)starts the chain in the Good state with the given seed.
func (c *GEChain) Init(p GEParams, seed uint64) {
	c.P = p
	c.seed = seed
	c.Reset()
}

// Reset rewinds the chain to its initial state for testbed reuse.
func (c *GEChain) Reset() {
	c.bad = false
	c.rng = *NewRNG(c.seed)
}

// Enabled reports whether Drop does anything.
func (c *GEChain) Enabled() bool { return c.P.Enabled() }

// Bad exposes the current state for tests.
func (c *GEChain) Bad() bool { return c.bad }

// Drop advances the chain one transmission unit and reports whether
// that unit is lost. Two draws per unit: the state transition, then the
// loss lottery in the (possibly new) state.
func (c *GEChain) Drop() bool {
	if c.bad {
		if c.rng.Float64() < c.P.PBadGood {
			c.bad = false
		}
	} else {
		if c.rng.Float64() < c.P.PGoodBad {
			c.bad = true
		}
	}
	pl := c.P.LossGood
	if c.bad {
		pl = c.P.LossBad
	}
	return pl > 0 && c.rng.Float64() < pl
}
