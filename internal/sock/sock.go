// Package sock implements the BSD socket layer: send and receive socket
// buffers with high-water marks, sosend (the user-to-kernel copy with the
// ULTRIX mbuf sizing policy), soreceive (the kernel-to-user copy), and the
// sleep/wakeup protocol that produces the paper's Wakeup row.
//
// The socket layer is where two of the paper's experimental effects live:
//
//   - The normal-mbuf/cluster switch at 1 KB that causes the nonlinear
//     User and mcopy rows between 500 and 1400 bytes (§2.2.1). sosend
//     reproduces ULTRIX's policy: writes over 1 KB go into 4 KB cluster
//     mbufs, one protocol send per cluster — which is also why an
//     8000-byte transfer leaves as two TCP segments.
//   - The transmit half of the integrated copy-and-checksum (§4.1.1):
//     in that mode sosend folds the checksum into the copyin and stores
//     the partial sum in the mbuf for TCP to combine later.
package sock

import (
	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultHiwat is the socket buffer high-water mark. The paper's
// benchmark must have run with at least 8 KB of socket buffering: it
// observes the two segments of an 8000-byte transfer leaving back to back
// and overlapping at the receiver (Table 3's ATM row), which a 4 KB
// buffer would serialize behind a window update. 16 KB reproduces that
// behaviour; per-socket buffers remain adjustable via Buffer.Hiwat.
const DefaultHiwat = 16384

// Protocol is the interface the socket layer drives, the analogue of the
// BSD pr_usrreq entry points this stack needs.
type Protocol interface {
	// Send notifies the protocol that data was appended to the send
	// buffer (PRU_SEND).
	Send(p *sim.Proc)
	// Rcvd notifies the protocol that the application consumed receive
	// buffer space (PRU_RCVD), the window-update hook.
	Rcvd(p *sim.Proc)
	// Close begins an orderly release (PRU_DISCONNECT).
	Close(p *sim.Proc)
}

// Buffer is a socket buffer: an mbuf chain plus bookkeeping.
type Buffer struct {
	K     *kern.Kernel
	Hiwat int
	mb    *mbuf.Mbuf
	tail  *mbuf.Mbuf // last mbuf of the chain, so Append is O(appended)
	cc    int
	// WaitQ is where processes sleep for state changes (sbwait).
	WaitQ *sim.WaitQueue
}

// initBuffer prepares a buffer owned by kernel k.
func (b *Buffer) initBuffer(k *kern.Kernel, name string) {
	b.K = k
	b.Hiwat = DefaultHiwat
	b.WaitQ = k.Env.NewWaitQueue(name)
}

// Len returns the bytes queued.
func (b *Buffer) Len() int { return b.cc }

// Space returns the bytes of room below the high-water mark.
func (b *Buffer) Space() int { return b.Hiwat - b.cc }

// Chain returns the head of the buffered mbuf chain.
func (b *Buffer) Chain() *mbuf.Mbuf { return b.mb }

// Append adds a chain to the buffer (sbappend + sbcompress). Small
// normal mbufs that fit whole in the tail's trailing space are copied in
// and freed rather than linked, as in BSD's sbcompress. Without it a
// stream of sub-MSS writes builds a chain of tiny mbufs — ROADMAP 3b's
// "retransmission livelock": TCP output's mcopy then pays a per-mbuf
// alloc+copy charge per segment (a 9148-byte MSS carved from 1-byte
// mbufs costs ~50ms of simulated CPU per transmission, paid again on
// every retransmission), and each append walked the whole chain, so
// multi-client sub-MSS bulk runs blew up quadratically in wall-clock
// time on top of the inflated simulated charges.
func (b *Buffer) Append(m *mbuf.Mbuf) {
	b.cc += mbuf.ChainLen(m)
	for m != nil && !b.K.NoSbCompress && b.tail != nil && !b.tail.IsCluster() && !m.IsCluster() &&
		m.Len() <= b.tail.Cap() {
		b.tail.Append(m.Bytes())
		b.tail.CsumValid = false // stashed partial sum no longer covers the mbuf
		next := m.Next()
		m.SetNext(nil)
		b.K.Pool.Free(m)
		m = next
	}
	if m == nil {
		return
	}
	if b.tail == nil {
		b.mb = m
	} else {
		b.tail.SetNext(m)
	}
	t := m
	for t.Next() != nil {
		t = t.Next()
	}
	b.tail = t
}

// Drop releases n bytes from the front (sbdrop), returning the mbufs to
// the pool.
func (b *Buffer) Drop(n int) {
	if n > b.cc {
		panic("sock: sbdrop more than buffered")
	}
	b.mb = b.K.Pool.Drop(b.mb, n)
	b.cc -= n
	if b.mb == nil {
		b.tail = nil
	}
}

// Socket is a connected stream socket.
type Socket struct {
	K     *kern.Kernel
	Proto Protocol
	Snd   Buffer
	Rcv   Buffer

	// Mode selects the transmit-side checksum strategy for sosend.
	Mode cost.ChecksumMode

	// TraceID is the connection identity (4-tuple, Seq zero) stamped on
	// the socket's enqueue/dequeue trace events. The transport sets it
	// once the connection's addresses are known; until then socket
	// events record unattributed.
	TraceID trace.PacketID

	// Eof is set when the peer's FIN has been consumed.
	Eof bool
	// Err terminates operations with an error state (connection reset).
	Err error
	// Connected reflects protocol state; Recv/Send require it unless
	// data is already buffered.
	Connected bool

	// StateQ is where processes wait for connection state changes.
	StateQ *sim.WaitQueue

	// sendOp and recvOp cache the socket's Send/Recv frames. A socket
	// has at most one sender and one receiver in flight at a time in the
	// steady state, so the cached frame makes both paths allocation-free;
	// overlap falls back to a fresh allocation.
	sendOp *SendOp
	recvOp *RecvOp
}

// New returns a socket owned by kernel k. The protocol must be attached
// by the transport before use.
func New(k *kern.Kernel) *Socket {
	so := &Socket{K: k, StateQ: k.Env.NewWaitQueue(k.Name + ".so.state")}
	so.Snd.initBuffer(k, k.Name+".so.snd")
	so.Rcv.initBuffer(k, k.Name+".so.rcv")
	return so
}

// chunkPolicy decides the mbuf type for a write of resid bytes, per the
// ULTRIX 4.2A rule: cluster mbufs once the transfer exceeds 1 KB.
func chunkPolicy(resid int) bool { return resid > mbuf.ClusterThreshold }

// Send implements sosend for a stream socket as a frame call: block for
// buffer space, copy user data into mbufs (charging the User row),
// append, and kick the protocol once per chunk. The call must be in tail
// position — the caller's Step returns immediately and re-enters once
// the operation completes, at which point the returned op carries the
// results: N is the number of bytes accepted (len(data) unless the
// connection fails) and Err the socket error, if any.
func (so *Socket) Send(p *sim.Proc, data []byte) *SendOp {
	f := so.sendOp
	if f != nil {
		so.sendOp = nil
	} else {
		f = &SendOp{so: so}
	}
	f.pc = 0
	f.data = data
	f.sent = 0
	f.useClusters = chunkPolicy(len(data))
	f.N, f.Err = 0, nil
	p.Call(f)
	return f
}

// SendOp is the frame behind Socket.Send. Its states mirror the phases of
// the original sosend loop: the write() entry charge, the
// space-wait/chunk-carve loop head, the per-mbuf allocate/copyin charge
// pairs, the buffer append, and the protocol kick.
type SendOp struct {
	so   *Socket
	pc   int
	data []byte
	sent int

	// Per-chunk scratch, captured at the loop head so charges that park
	// resume against the values the decision was made with.
	space       int
	budget      int
	chain, tail *mbuf.Mbuf
	curM        *mbuf.Mbuf
	curN        int
	useClusters bool

	// Results, valid once the frame returns to its caller.
	N   int
	Err error
}

// Step drives the sosend state machine.
func (f *SendOp) Step(p *sim.Proc) {
	so := f.so
	k := so.K
	for {
		switch f.pc {
		case 0: // write() entry
			f.pc = 1
			if !k.Use(p, trace.LayerUserTx, k.Cost.WriteSyscall) {
				return
			}
		case 1: // chunk-loop head: done, error, or wait for space
			if f.sent >= len(f.data) || so.Err != nil {
				f.finish(p)
				return
			}
			if so.Snd.Space() <= 0 {
				k.SleepOn(p, so.Snd.WaitQ)
				return
			}
			f.space = so.Snd.Space()
			f.chain, f.tail = nil, nil
			if f.useClusters {
				// One cluster per protocol send, as in ULTRIX sosend.
				f.pc = 2
				if !k.Use(p, trace.LayerUserTx, k.Cost.ClusterAlloc) {
					return
				}
			} else {
				// Fill normal mbufs up to the available space, one
				// protocol send for the chain.
				resid := len(f.data) - f.sent
				f.budget = min3(resid, f.space, resid)
				f.pc = 4
				if !k.Use(p, trace.LayerUserTx, k.Cost.MbufAlloc) {
					return
				}
			}
		case 2: // cluster allocated; charge the copyin
			f.curM = k.Pool.AllocCluster()
			resid := len(f.data) - f.sent
			f.curN = min3(resid, mbuf.MCLBYTES, f.space)
			f.pc = 3
			if !k.Use(p, trace.LayerUserTx, so.copyinCost(f.curN)) {
				return
			}
		case 3: // cluster copyin done; append the chunk
			so.copyinAct(f.curM, f.data[f.sent:f.sent+f.curN])
			f.sent += f.curN
			f.chain = f.curM
			f.pc = 6
			if !k.Use(p, trace.LayerUserTx,
				sim.Time(mbuf.ChainCount(f.chain))*k.Cost.SockAppend) {
				return
			}
		case 4: // normal mbuf allocated; charge the copyin
			f.curM = k.Pool.Alloc()
			f.curN = f.budget
			if f.curN > mbuf.MLEN {
				f.curN = mbuf.MLEN
			}
			f.pc = 5
			if !k.Use(p, trace.LayerUserTx, so.copyinCost(f.curN)) {
				return
			}
		case 5: // normal copyin done; next mbuf or append the chain
			so.copyinAct(f.curM, f.data[f.sent:f.sent+f.curN])
			f.sent += f.curN
			f.budget -= f.curN
			if f.chain == nil {
				f.chain = f.curM
			} else {
				f.tail.SetNext(f.curM)
			}
			f.tail = f.curM
			if f.budget > 0 {
				f.pc = 4
				if !k.Use(p, trace.LayerUserTx, k.Cost.MbufAlloc) {
					return
				}
			} else {
				f.pc = 6
				if !k.Use(p, trace.LayerUserTx,
					sim.Time(mbuf.ChainCount(f.chain))*k.Cost.SockAppend) {
					return
				}
			}
		case 6: // append to the send buffer; charge the protocol dispatch
			recording := k.Trace.PacketRecording()
			var chainLen int
			if recording {
				chainLen = mbuf.ChainLen(f.chain)
			}
			so.Snd.Append(f.chain)
			if recording {
				k.Trace.Event(trace.Event{
					Kind: trace.EvSockEnqueue, At: k.Now(), ID: so.TraceID,
					Len: chainLen, Aux: int64(so.Snd.Len()),
				})
			}
			f.chain, f.tail, f.curM = nil, nil, nil
			f.pc = 7
			if !k.Use(p, trace.LayerUserTx, k.Cost.UsrreqDispatch) {
				return
			}
		case 7: // kick the protocol (tail call), then back to the loop head
			f.pc = 1
			so.Proto.Send(p)
			return
		}
	}
}

// finish publishes the results, returns the frame to the socket's cache,
// and pops it. The caller is re-stepped synchronously by the trampoline,
// so it reads the results before any later Send can reuse the frame.
func (f *SendOp) finish(p *sim.Proc) {
	f.N, f.Err = f.sent, f.so.Err
	f.data = nil
	f.chain, f.tail, f.curM = nil, nil, nil
	if f.so.sendOp == nil {
		f.so.sendOp = f
	}
	p.Return()
}

// copyinCost returns the CPU charge for copying n user bytes into an
// mbuf; in integrated mode the checksum is fused into the copy (§4.1.1).
func (so *Socket) copyinCost(n int) sim.Time {
	k := so.K
	perByte := k.Cost.CopyinPerByte
	if so.Mode == cost.ChecksumIntegrated {
		perByte += k.Cost.IntegratedTxPerByte
	}
	return k.Cost.CopyinFixed + sim.Time(perByte*float64(n))
}

// copyinAct moves user bytes into one mbuf and — in integrated mode —
// stashes the partial sum (§4.1.1: "we calculate the checksum for each
// chunk of data copied into an mbuf at the socket layer, and store the
// partial checksum in the mbuf header").
func (so *Socket) copyinAct(m *mbuf.Mbuf, data []byte) {
	if m.Append(data) != len(data) {
		panic("sock: mbuf overflow in copyin")
	}
	if so.Mode == cost.ChecksumIntegrated {
		var cs checksum.Partial
		cs.Add(data)
		m.Csum, m.CsumValid = cs, true
	}
}

// Recv implements soreceive as a frame call: block until data (or EOF or
// error), copy out up to len(buf) bytes, release the consumed mbufs, and
// give the protocol its window-update hook. The call must be in tail
// position; once the caller re-enters, the returned op's N is the byte
// count (0 at EOF) and Err the socket error, if any.
func (so *Socket) Recv(p *sim.Proc, buf []byte) *RecvOp {
	f := so.recvOp
	if f != nil {
		so.recvOp = nil
	} else {
		f = &RecvOp{so: so}
	}
	f.pc = 0
	f.buf = buf
	f.N, f.Err = 0, nil
	p.Call(f)
	return f
}

// RecvOp is the frame behind Socket.Recv: the data-wait loop, the read()
// entry charge, the per-mbuf copyout charges, the mbuf release, and the
// window-update kick.
type RecvOp struct {
	so *Socket
	pc int

	buf    []byte
	n      int
	copied int
	take   int
	m      *mbuf.Mbuf

	// Results, valid once the frame returns to its caller.
	N   int
	Err error
}

// Step drives the soreceive state machine.
func (f *RecvOp) Step(p *sim.Proc) {
	so := f.so
	k := so.K
	for {
		switch f.pc {
		case 0: // wait for data, EOF, or error
			if so.Rcv.Len() == 0 {
				if so.Err != nil {
					f.N, f.Err = 0, so.Err
					f.finish(p)
					return
				}
				if so.Eof {
					f.N, f.Err = 0, nil
					f.finish(p)
					return
				}
				k.SleepOn(p, so.Rcv.WaitQ)
				return
			}
			f.pc = 1
			if !k.Use(p, trace.LayerUserRx, k.Cost.ReadSyscall) {
				return
			}
		case 1: // size the read, start the copyout loop
			f.n = len(f.buf)
			if f.n > so.Rcv.Len() {
				f.n = so.Rcv.Len()
			}
			f.copied = 0
			f.m = so.Rcv.Chain()
			f.pc = 2
		case 2: // copyout loop head: charge the next mbuf's copy
			if f.copied < f.n {
				take := f.m.Len()
				if take > f.n-f.copied {
					take = f.n - f.copied
				}
				f.take = take
				f.pc = 3
				if !k.Use(p, trace.LayerUserRx,
					k.Cost.CopyoutFixed+sim.Time(k.Cost.CopyoutPerByte*float64(take))) {
					return
				}
				continue
			}
			// Free the consumed mbufs; the paper charges mbuf
			// bookkeeping separately from the copy.
			freed := 0
			for c := so.Rcv.Chain(); c != nil && freed+c.Len() <= f.n; c = c.Next() {
				freed++
			}
			f.pc = 4
			if freed > 0 {
				if !k.Use(p, trace.LayerMbuf, sim.Time(freed)*k.Cost.MbufFree) {
					return
				}
			}
		case 3: // copy one mbuf's bytes out
			copy(f.buf[f.copied:], f.m.Bytes()[:f.take])
			f.copied += f.take
			f.m = f.m.Next()
			f.pc = 2
		case 4: // release consumed mbufs; charge the protocol dispatch
			so.Rcv.Drop(f.n)
			k.Trace.Event(trace.Event{
				Kind: trace.EvSockDequeue, At: k.Now(), ID: so.TraceID,
				Len: f.n, Aux: int64(so.Rcv.Len()),
			})
			f.pc = 5
			if !k.Use(p, trace.LayerUserRx, k.Cost.UsrreqDispatch) {
				return
			}
		case 5: // window-update kick (tail call), then pop
			f.N, f.Err = f.n, nil
			f.pc = 6
			so.Proto.Rcvd(p)
			return
		case 6:
			f.finish(p)
			return
		}
	}
}

// finish returns the frame to the socket's cache and pops it; results
// were published by the terminating state.
func (f *RecvOp) finish(p *sim.Proc) {
	f.buf = nil
	f.m = nil
	if f.so.recvOp == nil {
		f.so.recvOp = f
	}
	p.Return()
}

// Close starts an orderly release. The protocol may transmit, so the call
// must be in tail position within the calling frame's Step.
func (so *Socket) Close(p *sim.Proc) {
	so.Proto.Close(p)
}

// --- Upcalls from the transport protocol. ---

// RcvWakeup wakes readers after the protocol appended data or EOF
// (sorwakeup).
func (so *Socket) RcvWakeup() { so.Rcv.WaitQ.WakeAll() }

// SndWakeup wakes writers after send-buffer space opened (sowwakeup).
func (so *Socket) SndWakeup() { so.Snd.WaitQ.WakeAll() }

// SetConnected marks the socket connected and wakes state waiters.
func (so *Socket) SetConnected() {
	so.Connected = true
	so.StateQ.WakeAll()
}

// SetEof marks the receive stream finished and wakes readers.
func (so *Socket) SetEof() {
	so.Eof = true
	so.RcvWakeup()
}

// SetError poisons the socket and wakes everyone.
func (so *Socket) SetError(err error) {
	so.Err = err
	so.Connected = false
	so.RcvWakeup()
	so.SndWakeup()
	so.StateQ.WakeAll()
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
