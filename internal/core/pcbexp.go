package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/kern"
	"repro/internal/lab"
	"repro/internal/paperdata"
	"repro/internal/pcb"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// PCBRow is one list length's measured lookup cost (§3: "we measured the
// cost of a search for a variety of lengths, ranging from 20 entries
// (26µs) to 1000 entries (1280µs), and found that the results scaled
// linearly").
type PCBRow struct {
	Entries     int
	ListMicros  float64 // linear list, worst case (entry at the tail)
	HashMicros  float64 // hash-table alternative
	CacheMicros float64 // single-entry cache hit
}

// PCBResult is the regenerated §3 lookup study.
type PCBResult struct {
	Rows           []PCBRow
	PerEntryMicros float64 // fitted slope
	// Live marks a study whose table populations are real established
	// connections (built by live handshakes) instead of synthetic
	// inserts. The per-entry search cost must be identical either way —
	// the list does not care how its entries were born — which
	// TestPCBLiveMatchesSynthetic asserts.
	Live bool
}

// RunPCBExperiment measures PCB lookup cost on the simulated CPU by
// driving real lookups through a populated table, exactly as the kernel
// input path does: the cost charged is per entry traversed.
func RunPCBExperiment() *PCBResult {
	model := cost.DECstation5000()
	res := &PCBResult{}
	for _, n := range pcbLengths {
		env := sim.NewEnv()
		k := kern.New(env, model, "pcbhost")
		k.Trace.Enable()

		measure := func(useHash, cache bool) float64 {
			var tb pcb.Table
			tb.UseHash = useHash
			tb.CacheDisabled = !cache
			var target pcb.Key
			for i := 0; i < n; i++ {
				key := pcb.Key{LocalAddr: 1, RemoteAddr: uint32(i + 10), LocalPort: 80, RemotePort: uint16(i + 1)}
				tb.Insert(&pcb.PCB{Key: key})
				if i == 0 {
					target = key // first inserted ends at the tail
				}
			}
			// Drive a real lookup; the searched-entry count it reports
			// is the measured quantity, converted to DECstation time by
			// the calibrated per-entry cost and charged to the simulated
			// CPU as the input path would charge it.
			var total sim.Time
			env.Spawn("lookup", sim.Steps(func(p *sim.Proc) {
				if cache {
					tb.Lookup(target) // prime the cache
				}
				_, r := tb.Lookup(target)
				var d sim.Time
				switch {
				case r.CacheHit:
					d = model.PCBCacheHit
				case useHash:
					d = model.PCBHashLookup
				default:
					d = model.PCBLookupFixed + sim.Time(r.Searched)*model.PCBLookupPerEntry
				}
				total = d
				k.Use(p, trace.LayerTCPSegmentRx, d)
			}))
			env.Run()
			if total == 0 {
				panic("core: pcb lookup never ran")
			}
			return total.Micros()
		}

		res.Rows = append(res.Rows, PCBRow{
			Entries:     n,
			ListMicros:  measure(false, false),
			HashMicros:  measure(true, false),
			CacheMicros: measure(false, true),
		})
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	res.PerEntryMicros = (last.ListMicros - first.ListMicros) / float64(last.Entries-first.Entries)
	return res
}

// pcbLengths is the population axis shared by the synthetic and live
// variants of the §3 study.
var pcbLengths = []int{20, 50, 100, 250, 500, 1000}

// RunPCBLiveExperiment is the live-population variant of the §3 study:
// instead of synthetically inserting PCBs, it establishes real TCP
// connections on a two-host testbed and measures lookup cost against the
// server's resulting demultiplexing table. The first connection opened
// ends deepest in the BSD head-inserted list, exactly where the
// synthetic study places its target.
func RunPCBLiveExperiment() *PCBResult {
	model := cost.DECstation5000()
	res := &PCBResult{Live: true}
	for _, n := range pcbLengths {
		l := lab.New(lab.Config{Link: lab.LinkATM})
		if _, err := l.Server.TCP.Listen(7); err != nil {
			panic(err)
		}
		var first *tcp.Conn
		var op *tcp.ConnectOp
		// Iteration i folds in connect i-1's result before launching
		// connect i; the extra trailing iteration folds in the last.
		l.Env.Spawn("populate", sim.LoopN(n+1, func(p *sim.Proc, i int) {
			if op != nil {
				if op.Err != nil {
					panic(fmt.Sprintf("core: live PCB %d: %v", i-1, op.Err))
				}
				if i == 1 {
					first = op.C
				}
			}
			if i < n {
				op = l.Client.TCP.Connect(p, lab.ServerAddr, 7)
			}
		}))
		l.Env.Run()

		// The server-side key of the first connection: the mirror of the
		// client's 4-tuple.
		ck := first.Key()
		target := pcb.Key{
			LocalAddr:  lab.ServerAddr,
			RemoteAddr: lab.ClientAddr,
			LocalPort:  7,
			RemotePort: ck.LocalPort,
		}
		tb := &l.Server.TCP.Table
		k := l.Server.Kern
		k.Trace.Enable()

		measure := func(useHash, cache bool) float64 {
			tb.UseHash = useHash
			tb.CacheDisabled = !cache
			var total sim.Time
			l.Env.Spawn("lookup", sim.Steps(func(p *sim.Proc) {
				if cache {
					tb.Lookup(target) // prime the cache
				}
				ent, r := tb.Lookup(target)
				if ent == nil {
					panic("core: live PCB lookup missed")
				}
				var d sim.Time
				switch {
				case r.CacheHit:
					d = model.PCBCacheHit
				case useHash:
					d = model.PCBHashLookup
				default:
					d = model.PCBLookupFixed + sim.Time(r.Searched)*model.PCBLookupPerEntry
				}
				total = d
				k.Use(p, trace.LayerTCPSegmentRx, d)
			}))
			l.Env.Run()
			if total == 0 {
				panic("core: pcb lookup never ran")
			}
			return total.Micros()
		}

		res.Rows = append(res.Rows, PCBRow{
			Entries:     n,
			ListMicros:  measure(false, false),
			HashMicros:  measure(true, false),
			CacheMicros: measure(false, true),
		})
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	res.PerEntryMicros = (last.ListMicros - first.ListMicros) / float64(last.Entries-first.Entries)
	return res
}

// Render formats the §3 experiment with the paper's endpoints.
func (r *PCBResult) Render() string {
	title := "§3: PCB lookup cost versus table organization (µs)"
	if r.Live {
		title = "§3 (live variant): PCB lookup cost, populations of real connections (µs)"
	}
	t := stats.NewTable(title,
		"Entries", "List", "Hash", "Cache hit")
	for _, row := range r.Rows {
		t.AddRow(row.Entries, row.ListMicros, row.HashMicros, row.CacheMicros)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Fitted slope: %.2f µs/entry (paper: %.1f; endpoints 20→%.0fµs, 1000→%.0fµs)\n",
		r.PerEntryMicros, paperdata.PCBSearch.PerEntry,
		paperdata.PCBSearch.Len20, paperdata.PCBSearch.Len1000)
	return b.String()
}

// PCBPopulationEffect measures the end-to-end RTT effect of PCB list
// population with prediction disabled — the situation the paper argues a
// hash table would fix. It returns mean RTTs for a 4-byte echo with the
// given numbers of extra PCBs inserted ahead of the benchmark connection.
// The populations run concurrently through the sweep engine.
func PCBPopulationEffect(populations []int, o Options) (map[int]float64, error) {
	return pcbPopulationEffect(populations, false, o)
}

// PCBPopulationEffectLive is the live-churn variant of
// PCBPopulationEffect: the population ahead of the benchmark connection
// is built from real established connections (lab.Config.LivePCBs)
// instead of synthetic inserts. Demultiplexing walks the same number of
// entries either way, so equal populations must cost the same per entry.
func PCBPopulationEffectLive(populations []int, o Options) (map[int]float64, error) {
	return pcbPopulationEffect(populations, true, o)
}

func pcbPopulationEffect(populations []int, live bool, o Options) (map[int]float64, error) {
	o = o.normalize()
	jobs := make([]runner.Job, 0, len(populations))
	for _, n := range populations {
		n := n
		label := fmt.Sprintf("pcbs=%d", n)
		if live {
			label = fmt.Sprintf("livepcbs=%d", n)
		}
		jobs = append(jobs, runner.Job{
			Label: label,
			RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
				cfg := lab.Config{
					Link:              lab.LinkATM,
					DisablePrediction: true,
				}
				if live {
					cfg.LivePCBs = n
				} else {
					cfg.ExtraPCBs = n
				}
				return MeasureRTTOn(tb, seeded(cfg, seed), 4, o)
			},
		})
	}
	outs, err := runner.Run(context.Background(), jobs, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	out := map[int]float64{}
	for i, n := range populations {
		out[n] = outs[i].Value.(float64)
	}
	return out, nil
}
