// The no-progress watchdog: the repo's answer to silent livelocks.
// Three of them were flushed out by accident in earlier work (the
// unrouted-first-cell retransmission loop, the orphaned-teardown storm,
// the sub-MSS bulk collapse), each presenting as a run that simply never
// returned. The watchdog converts that failure mode into a failing run
// with a diagnostic: if simulated time advances past a horizon with zero
// workload progress — only retransmission and timer events firing — the
// event loop refuses to continue and the workload surfaces an error
// naming the stuck state.
package sim

import (
	"fmt"
	"sync"
)

// Watchdog aborts a simulation that advances through virtual time
// without making workload progress. Workloads report progress (one call
// per completed unit of useful work — a measured request, a finished
// transfer) via Progress; Env.Step polls the watchdog at coarse
// intervals and stops the loop once the gap between the clock and the
// last progress stamp exceeds the horizon.
//
// The horizon is simulated time, not wall-clock time: a livelocked run
// burns through virtual hours in wall-clock seconds, so the watchdog
// fires quickly in real terms while legitimate quiet stretches (backoff
// recovery after a fault, the bounded post-completion retransmission
// drain that transport give-up guarantees) pass untouched as long as the
// horizon exceeds them.
//
// One Watchdog may be shared by several environments (sharded
// execution); all state is guarded by an internal lock.
type Watchdog struct {
	mu       sync.Mutex
	horizon  Time
	progress uint64 // completions reported via Progress
	lastSeen uint64 // progress count at the last stamp
	lastAt   Time   // clock at the last stamp
	fired    bool
	err      error
	onFire   func(*Env) string
}

// DefaultWatchdogHorizon is the no-progress bound workloads arm by
// default: one simulated hour. The longest legitimate quiet stretch in
// the suite is the post-completion retransmission drain of orphaned
// teardowns, bounded by transport give-up at roughly half a simulated
// hour; the default clears it with margin while still catching an
// unbounded livelock in wall-clock seconds.
const DefaultWatchdogHorizon = Time(3600) * Second

// NewWatchdog returns a watchdog that fires after horizon of simulated
// time passes with no progress report (0 selects the default horizon).
func NewWatchdog(horizon Time) *Watchdog {
	if horizon <= 0 {
		horizon = DefaultWatchdogHorizon
	}
	return &Watchdog{horizon: horizon}
}

// OnFire installs the diagnostic builder invoked once when the watchdog
// fires; its output is appended to the watchdog error. The environment
// passed is the one whose Step detected the stall.
func (w *Watchdog) OnFire(fn func(*Env) string) { w.onFire = fn }

// Progress records one unit of workload progress, pushing the
// no-progress deadline out by the horizon.
func (w *Watchdog) Progress() {
	w.mu.Lock()
	w.progress++
	w.mu.Unlock()
}

// Fired reports whether the watchdog has aborted the run.
func (w *Watchdog) Fired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Err returns the abort diagnostic, or nil if the watchdog has not
// fired.
func (w *Watchdog) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// pollEvery is the clock interval between watchdog polls: coarse enough
// to keep the armed per-event cost at one Time comparison, fine enough
// that a stall is detected within a small fraction of the horizon past
// the deadline.
func (w *Watchdog) pollEvery() Time { return w.horizon / 8 }

// check is Env.Step's poll: it stamps fresh progress, or fires if the
// next event's timestamp has moved more than the horizon past the last
// stamp. It returns true once fired, permanently.
func (w *Watchdog) check(e *Env, next Time) bool {
	w.mu.Lock()
	if w.fired {
		w.mu.Unlock()
		return true
	}
	if w.progress != w.lastSeen {
		w.lastSeen = w.progress
		w.lastAt = next
		w.mu.Unlock()
		return false
	}
	if next-w.lastAt <= w.horizon {
		w.mu.Unlock()
		return false
	}
	w.fired = true
	stalled, done := next-w.lastAt, w.lastSeen
	w.mu.Unlock()
	// Build the diagnostic outside the lock: it walks simulation state
	// and may consult the watchdog.
	diag := ""
	if w.onFire != nil {
		diag = w.onFire(e)
	}
	w.mu.Lock()
	w.err = fmt.Errorf("sim: watchdog: no workload progress for %v of simulated time (clock %v, %d completions); aborting instead of hanging%s",
		stalled, next, done, diag)
	w.mu.Unlock()
	return true
}
