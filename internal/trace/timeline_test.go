package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func testID(seq uint32) PacketID {
	return PacketID{
		Src: 0xc0a80101, Dst: 0xc0a80102,
		SrcPort: 1025, DstPort: 7, Seq: seq,
	}
}

func TestPacketIDString(t *testing.T) {
	got := testID(64001).String()
	want := "192.168.1.1:1025>192.168.1.2:7#64001"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if !(PacketID{}).IsZero() {
		t.Fatal("zero PacketID not IsZero")
	}
	if testID(1).IsZero() {
		t.Fatal("non-zero PacketID IsZero")
	}
}

func TestEventsRequireBothEnables(t *testing.T) {
	var r Recorder
	ev := Event{Kind: EvTCPOutput, At: 10, ID: testID(1)}
	r.Event(ev) // disabled entirely
	r.Enable()
	r.Event(ev) // spans on, packets not armed
	if len(r.Events()) != 0 {
		t.Fatalf("events recorded without EnablePackets: %d", len(r.Events()))
	}
	r.EnablePackets()
	r.Event(ev)
	if len(r.Events()) != 1 {
		t.Fatalf("events = %d, want 1", len(r.Events()))
	}
	r.Disable()
	r.Event(ev) // packets armed but recording off
	if len(r.Events()) != 1 {
		t.Fatal("event recorded while disabled")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset kept events")
	}
}

func TestSpanEmitsNoEventWithoutPackets(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Span(LayerIPTx, 0, 10)
	if len(r.Events()) != 0 {
		t.Fatal("Span alone produced events")
	}
}

// TestMergeEventsClockTies pins the tie-breaking contract: events with
// identical virtual timestamps order by host position and then by
// emission order, never by map iteration or scheduling accidents. Clock
// ties are routine in the simulation (instant events share the
// timestamp of the charge that preceded them), so a traced sweep's
// byte-identical-JSON guarantee rests on this ordering.
func TestMergeEventsClockTies(t *testing.T) {
	mk := func() (*Recorder, *Recorder) {
		a, b := &Recorder{}, &Recorder{}
		for _, r := range []*Recorder{a, b} {
			r.Enable()
			r.EnablePackets()
		}
		// Same instant on both hosts, multiple events each.
		a.Event(Event{Kind: EvTCPOutput, At: 100, ID: testID(1)})
		a.Event(Event{Kind: EvIPSend, At: 100, ID: testID(1)})
		b.Event(Event{Kind: EvWireArrive, At: 100, ID: testID(1)})
		// An out-of-order emission (backdated, like EvIPDequeue).
		b.Event(Event{Kind: EvIPDequeue, At: 50, ID: testID(1)})
		return a, b
	}
	a, b := mk()
	got := MergeEvents([]string{"client", "server"}, []*Recorder{a, b})
	wantKinds := []EventKind{EvIPDequeue, EvTCPOutput, EvIPSend, EvWireArrive}
	wantHosts := []string{"server", "client", "client", "server"}
	if len(got) != len(wantKinds) {
		t.Fatalf("merged %d events, want %d", len(got), len(wantKinds))
	}
	for i := range got {
		if got[i].Kind != wantKinds[i] || got[i].Host != wantHosts[i] {
			t.Fatalf("event %d = %s on %s, want %s on %s",
				i, got[i].Kind, got[i].Host, wantKinds[i], wantHosts[i])
		}
	}
	// Deterministic: merging fresh but identical recorders yields
	// byte-identical JSON.
	a2, b2 := mk()
	again := MergeEvents([]string{"client", "server"}, []*Recorder{a2, b2})
	j1, _ := json.Marshal(got)
	j2, _ := json.Marshal(again)
	if !bytes.Equal(j1, j2) {
		t.Fatal("merged streams differ across identical runs")
	}
}

func TestBuildTimelinesGroupsByIdentity(t *testing.T) {
	evs := []HostEvent{
		{Host: "client", Event: Event{Kind: EvTCPOutput, At: 10, Dur: 5, ID: testID(1)}},
		{Host: "client", Event: Event{Kind: EvWireDepart, At: 20, ID: testID(1)}},
		{Host: "server", Event: Event{Kind: EvWireArrive, At: 30, ID: testID(1)}},
		{Host: "server", Event: Event{Kind: EvTCPInput, At: 35, ID: testID(1)}},
		{Host: "client", Event: Event{Kind: EvTCPOutput, At: 40, ID: testID(2)}},
		{Host: "client", Event: Event{Kind: EvCPU, Layer: LayerWakeup, At: 50, Dur: 3}}, // no ID
	}
	set := BuildTimelines(evs)
	if len(set.Packets) != 2 {
		t.Fatalf("packets = %d, want 2", len(set.Packets))
	}
	if len(set.Unattributed) != 1 {
		t.Fatalf("unattributed = %d, want 1", len(set.Unattributed))
	}
	p := set.Packets[0]
	if p.ID != testID(1) || len(p.Events) != 4 {
		t.Fatalf("first packet %v with %d events", p.ID, len(p.Events))
	}
	root := p.Spans
	if root.StartNS != 10 || root.EndNS != 35 {
		t.Fatalf("root covers [%d,%d], want [10,35]", root.StartNS, root.EndNS)
	}
	// client visit, wire flight, server visit.
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(root.Children))
	}
	if root.Children[0].Host != "client" || root.Children[2].Host != "server" {
		t.Fatalf("host order %q,%q", root.Children[0].Host, root.Children[2].Host)
	}
	wire := root.Children[1]
	if wire.Name != "wire" || wire.StartNS != 20 || wire.EndNS != 30 {
		t.Fatalf("wire span %q [%d,%d], want wire [20,30]", wire.Name, wire.StartNS, wire.EndNS)
	}
	// Children stay inside the root.
	for _, c := range root.Children {
		if c.StartNS < root.StartNS || c.EndNS > root.EndNS {
			t.Fatalf("child [%d,%d] escapes root [%d,%d]",
				c.StartNS, c.EndNS, root.StartNS, root.EndNS)
		}
	}
}

func TestBreakdownFromEventsMatchesRecorderBreakdown(t *testing.T) {
	var r Recorder
	r.Enable()
	r.EnablePackets()
	spans := []struct {
		layer      Layer
		start, end sim.Time
	}{
		{LayerUserTx, 0, 100},
		{LayerIPTx, 60, 80},
		{LayerATMTx, 140, 200},
		{LayerWakeup, 300, 400},
	}
	for _, s := range spans {
		r.Span(s.layer, s.start, s.end)
		r.Event(Event{Kind: EvCPU, Layer: s.layer, At: s.start, Dur: s.end - s.start})
	}
	// A non-CPU event must not contribute to the breakdown.
	r.Event(Event{Kind: EvWireArrive, At: 70, ID: testID(1)})
	evs := MergeEvents([]string{"h"}, []*Recorder{&r})
	want := r.Breakdown(50, 150)
	got := BreakdownFromEvents(evs, "h", 50, 150)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for layer, d := range want {
		if got[layer] != d {
			t.Fatalf("layer %s = %v, want %v", layer, got[layer], d)
		}
	}
	if _, ok := got[LayerWakeup]; ok {
		t.Fatal("outside span included")
	}
	// Wrong host: nothing.
	if rows := BreakdownFromEvents(evs, "other", 0, 1000); len(rows) != 0 {
		t.Fatalf("foreign host rows = %v", rows)
	}
}

func TestLastArrival(t *testing.T) {
	evs := []HostEvent{
		{Host: "client", Event: Event{Kind: EvWireArrive, At: 100, ID: testID(1)}},
		{Host: "server", Event: Event{Kind: EvWireArrive, At: 150, ID: testID(1)}},
		{Host: "client", Event: Event{Kind: EvWireArrive, At: 300, ID: testID(2)}},
	}
	if at, ok := LastArrival(evs, "client", 250); !ok || at != 100 {
		t.Fatalf("LastArrival = %v,%v, want 100,true", at, ok)
	}
	if at, ok := LastArrival(evs, "client", 400); !ok || at != 300 {
		t.Fatalf("LastArrival = %v,%v, want 300,true", at, ok)
	}
	if _, ok := LastArrival(evs, "client", 50); ok {
		t.Fatal("found arrival before any exist")
	}
}

func TestChromeTraceShape(t *testing.T) {
	evs := []HostEvent{
		{Host: "client", Event: Event{Kind: EvCPU, Layer: LayerUserTx, At: 1000, Dur: 500, ID: testID(1), Len: 8}},
		{Host: "client", Event: Event{Kind: EvWireDepart, At: 2000, ID: testID(1)}},
		{Host: "server", Event: Event{Kind: EvWireArrive, At: 3000, ID: testID(1)}},
	}
	blob, err := ChromeTrace(evs)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &f); err != nil {
		t.Fatalf("invalid trace_event JSON: %v", err)
	}
	// 3 events + 2 process_name metadata records.
	if len(f.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d, want 5", len(f.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range f.TraceEvents {
		phases[e.Ph]++
		if e.Ph == "X" && e.Dur <= 0 {
			t.Fatalf("duration event %q without dur", e.Name)
		}
	}
	if phases["M"] != 2 || phases["X"] != 1 || phases["i"] != 2 {
		t.Fatalf("phase counts %v", phases)
	}
	// Determinism: the exporter is a pure function of its input.
	again, _ := ChromeTrace(evs)
	if !bytes.Equal(blob, again) {
		t.Fatal("ChromeTrace not deterministic")
	}
}

func TestEventNegativeDurationPanics(t *testing.T) {
	var r Recorder
	r.Enable()
	r.EnablePackets()
	defer func() {
		if recover() == nil {
			t.Fatal("negative-duration event accepted")
		}
	}()
	r.Event(Event{Kind: EvCPU, At: 100, Dur: -1})
}
