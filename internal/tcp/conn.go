package tcp

import (
	"errors"
	"fmt"

	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/pcb"
	"repro/internal/sim"
	"repro/internal/sock"
)

// State is a TCP connection state (RFC 793).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK",
	"TIME_WAIT",
}

// String returns the conventional state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// defaultMSS is used before an interface MSS is known.
const defaultMSS = 512

// Timer constants. Granularities follow BSD (200 ms fast timer, 500 ms
// slow timer); TIME_WAIT is shortened from 2×30 s to keep simulations
// bounded without changing any measured path.
const (
	delackTimeout = 200 * sim.Millisecond
	minRTO        = 1 * sim.Second
	maxRTO        = 64 * sim.Second
	msl           = 500 * sim.Millisecond
)

// ErrReset is delivered to a socket whose connection received a RST.
var ErrReset = errors.New("tcp: connection reset by peer")

// ErrTimeout is delivered to a socket whose connection gave up after
// maxRexmtShift consecutive retransmission timeouts (BSD's ETIMEDOUT
// from tcp_timers).
var ErrTimeout = errors.New("tcp: connection timed out")

// ErrAborted is delivered to a socket whose application tore the
// connection down with Conn.Abort — a local deadline, not a peer event.
var ErrAborted = errors.New("tcp: connection aborted")

// ErrCrashed is delivered to every socket of a stack that suffered a
// simulated kernel crash (Stack.Crash).
var ErrCrashed = errors.New("tcp: host crashed")

// maxRexmtShift plays BSD's TCP_MAXRXTSHIFT: the number of consecutive
// backed-off retransmissions after which the connection is dropped
// rather than probed forever — without it, a FIN whose peer's PCB has
// already vanished (silent drop, no RST) retransmits eternally at
// maxRTO and the simulation never drains. BSD's value is 12 (~10
// minutes of patience); this simulation uses 32 (~30 minutes) because
// its hosts share one perfectly synchronized clock: an unstaggered
// 1,000-client connect storm collapses into deterministic lock-step
// retry waves no real network produces, and the slowest client needs
// ~26 simulated minutes to get through.
const maxRexmtShift = 32

// reassSeg is one out-of-order segment held for reassembly.
type reassSeg struct {
	seq Seq
	m   *mbuf.Mbuf
}

// Conn is one TCP connection (the tcpcb).
type Conn struct {
	S        *Stack
	K        *kern.Kernel
	so       *sock.Socket
	pcbEntry *pcb.PCB
	listener *Listener // non-nil on passively opened connections
	state    State

	// Send sequence space.
	iss    Seq
	sndUna Seq // oldest unacknowledged
	sndNxt Seq // next to send
	sndMax Seq // highest ever sent
	sndWnd int // peer's advertised window

	// Receive sequence space.
	irs    Seq
	rcvNxt Seq
	rcvAdv Seq // highest window edge advertised to the peer

	mss      int
	cwnd     int
	ssthresh int
	noDelay  bool // disable Nagle when set

	// wantCksumOff is the local policy (stack configured for checksum
	// elimination); cksumOff becomes true only when BOTH ends carried
	// the Alternate Checksum Request on their SYNs (§4.2 / RFC 1146).
	// SYN segments themselves are always checksummed.
	wantCksumOff bool
	cksumOff     bool

	// ACK strategy flags.
	flagAckNow bool
	flagDelAck bool

	// Jacobson RTT estimation.
	srtt, rttvar sim.Time
	rtTiming     bool
	rtSeq        Seq
	rtStart      sim.Time
	rexmtShift   uint
	rexmtGen     int // invalidates outstanding retransmit timer events
	delackGen    int

	reass []reassSeg

	// dupAcks counts consecutive duplicate ACKs for fast retransmit
	// (BSD's tcprexmtthresh is 3).
	dupAcks int

	// finSent tracks whether our FIN occupies sequence space yet.
	finSent bool

	// outBusy marks an output invocation in progress (the splnet
	// serialization of tcp_output); outWait queues callers that found
	// it busy.
	outBusy bool
	outWait *sim.WaitQueue

	// outOp and inOp are the connection's cached output and input frames.
	// output and input are never re-entered on the same connection in the
	// steady state, so a single cached frame of each kind makes the hot
	// path allocation-free; an overlapping invocation (theoretically
	// possible through nesting) falls back to a fresh allocation.
	outOp *outputOp
	inOp  *connInputOp

	// rexmtCb and delackCb are the timer callbacks, bound once at
	// construction so (re)arming a timer schedules an arg-carrying event
	// (the generation number rides in the event) instead of allocating a
	// closure per arming — setRexmt runs once per transmitted data
	// segment, squarely on the hot path.
	rexmtCb  func(uint64)
	delackCb func(uint64)
}

// Socket returns the connection's socket.
func (c *Conn) Socket() *sock.Socket { return c.so }

// State returns the connection state, for tests and diagnostics.
func (c *Conn) State() State { return c.state }

// Key returns the connection's demultiplexing 4-tuple.
func (c *Conn) Key() pcb.Key { return c.pcbEntry.Key }

// MSS returns the negotiated maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// ChecksumEliminated reports whether both ends negotiated the TCP
// checksum off for this connection.
func (c *Conn) ChecksumEliminated() bool { return c.cksumOff }

// SRTT returns the smoothed round-trip estimate (0 before any sample).
func (c *Conn) SRTT() sim.Time { return c.srtt }

// RexmtShift returns the current retransmission backoff shift, for the
// watchdog's stuck-connection diagnostics.
func (c *Conn) RexmtShift() uint { return c.rexmtShift }

// Abort tears the connection down immediately and locally, as an
// application deadline would: timers disarmed, PCB removed, the socket
// poisoned with ErrAborted. Nothing is transmitted — this stack never
// sends RSTs — so the peer discovers the death only through its own
// retransmission timers, exactly as across a real host failure.
func (c *Conn) Abort() { c.abortWith(ErrAborted) }

// abortWith is the shared local-teardown path behind Abort and
// Stack.Crash. Unlike drop alone it also disarms the delayed-ACK state:
// delackFire does not check for StateClosed, so a pending delayed ACK
// left armed would transmit from a connection that no longer exists.
func (c *Conn) abortWith(err error) {
	if c.state == StateClosed {
		return
	}
	c.flagDelAck = false
	c.delackGen++
	// The reassembly queue is connection-internal — no parked operation
	// holds cursors into it the way socket buffers are held mid-copy —
	// so its segments free immediately. The socket buffers themselves
	// are reaped later (Stack.ReapCrashed, or the aborting client).
	for _, seg := range c.reass {
		c.K.Pool.Free(seg.m)
	}
	c.reass = nil
	c.drop(err)
}

// SetNoDelay disables the Nagle algorithm, as TCP_NODELAY does.
func (c *Conn) SetNoDelay(v bool) { c.noDelay = v }

func (c *Conn) remoteAddr() uint32 { return c.pcbEntry.Key.RemoteAddr }

// --- sock.Protocol ---

// Send implements sock.Protocol: new data is in the send buffer.
func (c *Conn) Send(p *sim.Proc) { c.output(p) }

// Rcvd implements sock.Protocol: the application drained receive buffer
// space, so a window update may be due.
func (c *Conn) Rcvd(p *sim.Proc) { c.output(p) }

// Close implements sock.Protocol: begin orderly release.
func (c *Conn) Close(p *sim.Proc) {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	case StateSynSent, StateSynRcvd:
		c.drop(nil)
		return
	default:
		return
	}
	c.output(p)
}

// drop tears the connection down, optionally with an error.
func (c *Conn) drop(err error) {
	c.state = StateClosed
	c.rexmtGen++
	c.S.Table.Remove(c.pcbEntry)
	if err != nil {
		c.so.SetError(err)
	} else {
		c.so.SetEof()
	}
}

// --- RTT estimation and the retransmit timer ---

// rto returns the current retransmission timeout with backoff applied.
// The backoff shift saturates at maxRTO before it is applied: at
// maxRexmtShift 32 a raw `base << shift` wraps int64 negative (3s<<22
// already overflows), and the minRTO clamp would then turn a 64-second
// timeout into a 1-second one.
func (c *Conn) rto() sim.Time {
	var base sim.Time
	if c.srtt == 0 {
		base = 3 * sim.Second // before the first sample, per BSD
	} else {
		base = c.srtt + 4*c.rttvar
	}
	d := maxRTO
	if base <= maxRTO>>c.rexmtShift {
		d = base << c.rexmtShift
	}
	if d < minRTO {
		d = minRTO
	}
	return d
}

// rttUpdate folds a measured sample into srtt/rttvar (Jacobson 1988).
func (c *Conn) rttUpdate(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	delta := sample - c.srtt
	c.srtt += delta / 8
	if delta < 0 {
		delta = -delta
	}
	c.rttvar += (delta - c.rttvar) / 4
}

// setRexmt (re)arms the retransmission timer.
func (c *Conn) setRexmt() {
	c.rexmtGen++
	c.K.Env.AfterArg(c.rto(), "tcp.rexmt", c.rexmtCb, uint64(c.rexmtGen))
}

// rexmtTimer fires when an armed retransmission deadline elapses; a
// stale generation means the timer was re-armed or cancelled since.
func (c *Conn) rexmtTimer(gen uint64) {
	if gen != uint64(c.rexmtGen) {
		return
	}
	c.S.dispatch(c.rexmtFire)
}

// clearRexmt cancels any pending retransmission timer.
func (c *Conn) clearRexmt() { c.rexmtGen++ }

// rexmtFire handles a retransmission timeout: back off, collapse the
// congestion window (Tahoe), rewind snd_nxt, and resend.
func (c *Conn) rexmtFire(p *sim.Proc) {
	if c.state == StateClosed || c.sndUna == c.sndMax {
		return
	}
	c.S.Stats.Retransmits++
	if c.rexmtShift >= maxRexmtShift {
		if !c.S.DisableGiveUp {
			c.drop(ErrTimeout)
			return
		}
		// Pre-give-up behaviour, kept for the revert-guard tests: probe
		// at maxRTO forever and let the watchdog be the backstop. The
		// shift stays pinned at maxRexmtShift so rto() keeps saturating.
	} else {
		c.rexmtShift++
	}
	flight := c.sndMax.Diff(c.sndUna)
	half := min2(flight, c.sndWnd) / 2
	if half < 2*c.mss {
		half = 2 * c.mss
	}
	c.ssthresh = half
	c.cwnd = c.mss
	c.sndNxt = c.sndUna
	c.rtTiming = false // Karn: do not time retransmitted data
	c.flagAckNow = true
	c.setRexmt()
	c.output(p)
}

// scheduleDelack arms the 200 ms delayed-ACK timer.
func (c *Conn) scheduleDelack() {
	c.delackGen++
	c.K.Env.AfterArg(delackTimeout, "tcp.delack", c.delackCb, uint64(c.delackGen))
}

// delackTimer fires when the delayed-ACK deadline elapses; a stale
// generation or an already-sent ACK makes it a no-op.
func (c *Conn) delackTimer(gen uint64) {
	if gen != uint64(c.delackGen) || !c.flagDelAck {
		return
	}
	c.S.dispatch(c.delackFire)
}

// delackFire sends the delayed ACK from the stack's service process.
func (c *Conn) delackFire(p *sim.Proc) {
	if c.flagDelAck {
		c.flagDelAck = false
		c.flagAckNow = true
		c.S.Stats.DelayedAcks++
		c.output(p)
	}
}

func min2(a, b int) int {
	if b < a {
		return b
	}
	return a
}
