package stats

import (
	"math"
	"math/rand"
	"testing"
)

// distributions are the latency-like shapes the property tests sweep:
// what fan-in RTT streams actually look like (tight unimodal bodies with
// heavy right tails), at paper scale (tens of thousands of observations).
var distributions = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return 1000 + 9000*r.Float64() }},
	{"exponential", func(r *rand.Rand) float64 { return 2000 * r.ExpFloat64() }},
	{"lognormal", func(r *rand.Rand) float64 { return math.Exp(7 + 0.5*r.NormFloat64()) }},
	{"shifted-tail", func(r *rand.Rand) float64 {
		// An RPC-like shape: a 1.5ms body with a 1-in-50 retransmission
		// tail an order of magnitude out.
		v := 1500 + 100*r.NormFloat64()
		if r.Intn(50) == 0 {
			v += 30000 * r.Float64()
		}
		return v
	}},
}

// TestStreamingQuantilesMatchExact is the satellite property test: on
// paper-scale observation streams, the P² p50/p95/p99 and the
// reservoir's Percentile must track the exact Sample's nearest-rank cuts
// within the documented tolerances — for P², 5% relative error at the
// median and 10% in the tails; for the 1024-slot reservoir, 15% in the
// body and 25% at p99 (its rank error is ~sqrt(p(1-p)/1024), under 2%,
// but heavy tails magnify rank error into value error at the extreme
// cut) — across the latency-like distribution family and several seeds.
func TestStreamingQuantilesMatchExact(t *testing.T) {
	const n = 20000
	for _, dist := range distributions {
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			exact := &Sample{}
			stream := NewSample(Config{Streaming: true})
			for i := 0; i < n; i++ {
				v := dist.gen(r)
				exact.Add(v)
				stream.Add(v)
			}

			eq, sq := exact.Quantiles(), stream.Quantiles()
			checkClose(t, dist.name, seed, "p2 p50", eq.P50, sq.P50, 0.05)
			checkClose(t, dist.name, seed, "p2 p95", eq.P95, sq.P95, 0.10)
			checkClose(t, dist.name, seed, "p2 p99", eq.P99, sq.P99, 0.10)
			for _, pt := range []struct{ p, tol float64 }{{50, 0.15}, {90, 0.15}, {99, 0.25}} {
				checkClose(t, dist.name, seed, "reservoir",
					exact.Percentile(pt.p), stream.Percentile(pt.p), pt.tol)
			}

			// The moment estimators are exact up to float error.
			checkClose(t, dist.name, seed, "mean", exact.Mean(), stream.Mean(), 1e-9)
			checkClose(t, dist.name, seed, "stddev", exact.StdDev(), stream.StdDev(), 1e-9)
			if exact.Min() != stream.Min() || exact.Max() != stream.Max() {
				t.Errorf("%s seed %d: min/max diverged: exact [%g,%g] stream [%g,%g]",
					dist.name, seed, exact.Min(), exact.Max(), stream.Min(), stream.Max())
			}
			if exact.N() != stream.N() {
				t.Errorf("%s seed %d: N %d vs %d", dist.name, seed, exact.N(), stream.N())
			}
		}
	}
}

func checkClose(t *testing.T, dist string, seed int64, what string, want, got, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s seed %d: %s exact value is 0; test distribution broken", dist, seed, what)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s seed %d: %s = %g, exact %g (relative error %.3f > %.2f)",
			dist, seed, what, got, want, rel, tol)
	}
}

// TestStreamingSmallSamples pins the warm-up path: below five
// observations the P² estimators cannot start, so quantiles must fall
// back to exact nearest-rank over what has arrived.
func TestStreamingSmallSamples(t *testing.T) {
	for n := 0; n <= 5; n++ {
		exact := &Sample{}
		stream := NewSample(Config{Streaming: true})
		for i := 0; i < n; i++ {
			v := float64((i*7)%5 + 1)
			exact.Add(v)
			stream.Add(v)
		}
		eq, sq := exact.Quantiles(), stream.Quantiles()
		if n < 5 && eq != sq {
			t.Errorf("n=%d: quantiles %+v vs exact %+v", n, sq, eq)
		}
		if exact.Percentile(50) != stream.Percentile(50) {
			t.Errorf("n=%d: p50 %g vs exact %g", n, stream.Percentile(50), exact.Percentile(50))
		}
	}
}

// TestStreamingDeterministic pins the reproducibility contract: the same
// observation stream through two streaming Samples yields identical
// estimates, because the reservoir RNG is seeded, not global.
func TestStreamingDeterministic(t *testing.T) {
	a := NewSample(Config{Streaming: true})
	b := NewSample(Config{Streaming: true})
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		v := r.ExpFloat64() * 1000
		a.Add(v)
		b.Add(v)
	}
	if a.Quantiles() != b.Quantiles() {
		t.Errorf("quantiles diverged: %+v vs %+v", a.Quantiles(), b.Quantiles())
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Errorf("p%.1f diverged: %g vs %g", p, a.Percentile(p), b.Percentile(p))
		}
	}
}

// TestStreamingConstantMemory pins the point of the exercise: the
// streaming aggregate must not grow with the observation count. The
// reservoir is the only sized buffer, and it is capped at construction.
func TestStreamingConstantMemory(t *testing.T) {
	s := NewSample(Config{Streaming: true, ReservoirSize: 64})
	for i := 0; i < 200000; i++ {
		s.Add(float64(i))
	}
	if s.values != nil {
		t.Fatalf("streaming sample retained %d observations in the exact buffer", len(s.values))
	}
	if got := cap(s.stream.res); got != 64 {
		t.Fatalf("reservoir capacity grew to %d (want 64)", got)
	}
	if s.N() != 200000 {
		t.Fatalf("N = %d, want 200000", s.N())
	}
}

// TestExactModeUnchanged is the paper-mode bit-identity guard at the
// unit level: a zero-value Sample and a NewSample(Config{}) both take
// the exact code path, retaining observations and computing the same
// nearest-rank quantiles as always. (The end-to-end guarantee is the
// golden SHA-256 suite over the cmd tools.)
func TestExactModeUnchanged(t *testing.T) {
	zero := &Sample{}
	cfged := NewSample(Config{})
	if zero.Streaming() || cfged.Streaming() {
		t.Fatal("exact-mode samples report Streaming()")
	}
	for i := 100; i >= 1; i-- {
		zero.Add(float64(i))
		cfged.Add(float64(i))
	}
	if len(zero.values) != 100 || len(cfged.values) != 100 {
		t.Fatal("exact mode no longer retains observations")
	}
	want := Quantiles{P50: 50, P95: 95, P99: 99}
	if zero.Quantiles() != want || cfged.Quantiles() != want {
		t.Fatalf("exact quantiles changed: %+v / %+v, want %+v",
			zero.Quantiles(), cfged.Quantiles(), want)
	}
}
