package lab

import (
	"reflect"
	"testing"

	"repro/internal/cost"
)

// runEchoOn runs the echo benchmark and returns the full result; any
// error fails the test.
func runEchoOn(t *testing.T, l *Lab, size int) *EchoResult {
	t.Helper()
	res, err := l.RunEcho(size, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResetBitIdentical is the testbed-reuse determinism contract: a lab
// previously used for a DIFFERENT trial (different link knobs, size, and
// seed) and then Reset to a new configuration must produce results
// byte-identical to a freshly constructed lab at that configuration.
func TestResetBitIdentical(t *testing.T) {
	cases := []struct {
		name    string
		warmCfg Config // the unrelated trial the reused lab runs first
		warmSz  int
		cfg     Config // the trial under comparison
		size    int
	}{
		{
			name:    "atm",
			warmCfg: Config{Link: LinkATM, Mode: cost.ChecksumNone, SockBuf: 4096, Seed: 3},
			warmSz:  200,
			cfg:     Config{Link: LinkATM, Seed: 7},
			size:    1400,
		},
		{
			name:    "atm-traced-then-untraced",
			warmCfg: Config{Link: LinkATM, PacketTrace: true, Seed: 11},
			warmSz:  8000,
			cfg:     Config{Link: LinkATM, DisablePrediction: true, Seed: 7},
			size:    4000,
		},
		{
			name:    "ether",
			warmCfg: Config{Link: LinkEther, MTU: 576, Seed: 5},
			warmSz:  80,
			cfg:     Config{Link: LinkEther, Seed: 9},
			size:    1400,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := runEchoOn(t, New(tc.cfg), tc.size)

			l := New(tc.warmCfg)
			runEchoOn(t, l, tc.warmSz)
			if err := l.Reset(tc.cfg, 0); err != nil {
				t.Fatal(err)
			}
			reused := runEchoOn(t, l, tc.size)

			if !reflect.DeepEqual(fresh.RTTs, reused.RTTs) {
				t.Errorf("RTTs diverge: fresh %v vs reused %v", fresh.RTTs[:3], reused.RTTs[:3])
			}
			if !reflect.DeepEqual(fresh.Windows, reused.Windows) {
				t.Errorf("iteration windows diverge after reuse")
			}
			if fresh.CorruptEchoes != reused.CorruptEchoes {
				t.Errorf("corrupt echoes: fresh %d vs reused %d", fresh.CorruptEchoes, reused.CorruptEchoes)
			}
		})
	}
}

// TestResetRepeatedReuse drives one testbed through a chain of unrelated
// trials and checks every one against a fresh lab — the worker-affine
// sweep pattern, where a warm lab serves many grid cells in sequence.
func TestResetRepeatedReuse(t *testing.T) {
	trials := []struct {
		cfg  Config
		size int
	}{
		{Config{Link: LinkATM, Seed: 1}, 4},
		{Config{Link: LinkATM, Mode: cost.ChecksumIntegrated, Seed: 2}, 8000},
		{Config{Link: LinkATM, DisablePrediction: true, ExtraPCBs: 50, Seed: 3}, 200},
		{Config{Link: LinkATM, SockBuf: 4096, Seed: 4}, 8000},
		{Config{Link: LinkATM, MTU: 1500, Seed: 5}, 4000},
		{Config{Link: LinkATM, CellLossRate: 0.001, Seed: 6}, 1400},
		{Config{Link: LinkATM, HashPCBs: true, LivePCBs: 8, Seed: 7}, 200},
	}
	var warm *Lab
	for i, tr := range trials {
		fresh := runEchoOn(t, New(tr.cfg), tr.size)
		if warm == nil {
			warm = New(tr.cfg)
		} else if err := warm.Reset(tr.cfg, 0); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		reused := runEchoOn(t, warm, tr.size)
		if !reflect.DeepEqual(fresh.RTTs, reused.RTTs) {
			t.Fatalf("trial %d (%+v): RTTs diverge between fresh and reused testbed", i, tr.cfg)
		}
	}
}

// TestResetSeedOverride checks the runner.ApplySeed convention: a
// nonzero seed argument overrides cfg.Seed.
func TestResetSeedOverride(t *testing.T) {
	fresh := runEchoOn(t, New(Config{Link: LinkATM, Seed: 99}), 200)

	l := New(Config{Link: LinkATM, Seed: 1})
	runEchoOn(t, l, 80)
	if err := l.Reset(Config{Link: LinkATM, Seed: 7}, 99); err != nil {
		t.Fatal(err)
	}
	if l.Config.Seed != 99 {
		t.Fatalf("seed override not applied: config seed %d", l.Config.Seed)
	}
	reused := runEchoOn(t, l, 200)
	if !reflect.DeepEqual(fresh.RTTs, reused.RTTs) {
		t.Fatal("seed-overridden reuse diverges from fresh lab at that seed")
	}
}

// TestResetRejectsLinkChange pins the shape contract: the link kind is
// part of the topology, not the trial.
func TestResetRejectsLinkChange(t *testing.T) {
	l := New(Config{Link: LinkATM})
	runEchoOn(t, l, 4)
	if err := l.Reset(Config{Link: LinkEther}, 0); err == nil {
		t.Fatal("Reset accepted a link-kind change")
	}
}

// TestPoolLeakGate is the reuse leak gate: after every echo trial —
// TCP at sizes straddling the cluster threshold, UDP, with loss, across
// topologies — every host's pool must report zero live headers and
// cluster pages, and a CheckLeaks reset must succeed.
func TestPoolLeakGate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		n    int
		size int
		udp  bool
	}{
		{"atm-small", Config{Link: LinkATM, CheckLeaks: true, Seed: 1}, 2, 80, false},
		{"atm-cluster", Config{Link: LinkATM, CheckLeaks: true, Seed: 2}, 2, 8000, false},
		{"atm-loss", Config{Link: LinkATM, CheckLeaks: true, CellLossRate: 0.002, Seed: 3}, 2, 1400, false},
		{"atm-corrupt", Config{Link: LinkATM, CheckLeaks: true, CellCorruptRate: 0.002, Seed: 4}, 2, 1400, false},
		{"ether", Config{Link: LinkEther, CheckLeaks: true, Seed: 5}, 2, 1400, false},
		{"udp", Config{Link: LinkATM, CheckLeaks: true, Seed: 6}, 2, 512, true},
		{"atm-mesh", Config{Link: LinkATM, CheckLeaks: true, Seed: 7}, 4, 200, false},
		{"live-pcbs", Config{Link: LinkATM, CheckLeaks: true, LivePCBs: 6, Seed: 8}, 2, 200, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewTopology(tc.cfg, tc.n)
			var err error
			if tc.udp {
				_, err = l.RunUDPEcho(tc.size, 10, 2)
			} else {
				_, err = l.RunEcho(tc.size, 10, 2)
			}
			if err != nil {
				t.Fatal(err)
			}
			hdrs, pages := l.PoolLive()
			if hdrs != 0 || pages != 0 {
				t.Fatalf("trial left %d live mbuf headers and %d live cluster pages", hdrs, pages)
			}
			if err := l.Reset(tc.cfg, 0); err != nil {
				t.Fatalf("CheckLeaks reset failed: %v", err)
			}
		})
	}
}
