// Sharded execution: conservative-lookahead parallel discrete-event
// simulation of one big scenario. A Cluster partitions a topology's
// hosts across shards, each driving its own sim.Env event loop on its
// own goroutine, and synchronizes them in barrier rounds: every round
// the coordinator reads each shard's earliest pending event, gives each
// shard its own safe horizon (see horizonFor), and lets every shard
// execute its events with timestamps strictly below its horizon in
// parallel. The horizons derive from the lookahead — the minimum
// latency a cell needs to cross a cut fiber (first-cell serialization
// plus propagation, plus the switch latency when only trunks are cut) —
// so nothing a shard does inside a round can affect another shard
// within that same round — the classic conservative-PDES argument, with
// the cut links of the ATM fabric as the only channels.
//
// The contract is bit-identity, not approximate equivalence: a sharded
// run must be event-for-event and byte-for-byte identical to the serial
// run at every shard count. Three mechanisms carry it. First, cut
// fibers stage each crossing cell with the exact (schedule, arrival)
// times the serial run would have used, and the coordinator injects
// them between rounds in canonical order — ascending schedule time,
// ties by source shard and emission order, the same order the serial
// event queue would have assigned sequence numbers. Second, VC-table
// installs that touch switches outside the calling shard are staged as
// control mutations applied at the next barrier, which is always before
// the flow's first data cell can arrive there (that cell itself must
// cross a cut, which delays it past the barrier). Third, each shard's
// env refuses to advance its clock past the horizon (sim.Env.SetHorizon
// bounds both RunWindow and SleepUntil's in-place fast path), so no
// shard ever runs ahead of what its peers might still deliver.
package lab

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/cost"
	"repro/internal/sim"
)

// Shard is one partition of a cluster: an event loop and the hosts
// living in it, in ascending host order.
type Shard struct {
	Env   *sim.Env
	Hosts []int
}

// stagedCell is one cell in flight across a shard boundary, with the
// serial run's two wire times: scheduleAt is when the serial run would
// have created the arrival event (the canonical ordering key) and at is
// the arrival itself.
type stagedCell struct {
	srcShard   int
	dstShard   int
	scheduleAt sim.Time
	at         sim.Time
	to         atm.CellDest
	cell       atm.Cell
}

// Cluster is a sharded testbed: one Lab whose hosts are spread across
// per-shard event loops. Build one with NewCluster, drive it with Run
// (or RunEcho for the paper's benchmark), and rewind it between trials
// with Cluster.Reset — the owned Lab rejects a direct Lab.Reset, which
// would rewind only shard 0.
type Cluster struct {
	Lab    *Lab
	Shards []*Shard

	// lookahead is the conservative safe-time window: the minimum time a
	// cell needs to cross any cut fiber. boomerang is the minimum time a
	// causal consequence of a staged cell needs to cross back INTO the
	// emitting shard (see stageCell).
	lookahead sim.Time
	boomerang sim.Time
	hostShard []int

	// rounds counts barrier rounds across the cluster's lifetime — the
	// number of coordinator wake-ups, the cost per-shard horizons drive
	// down.
	rounds int64

	// outbox and ctl are the per-source-shard staging areas written by
	// shard goroutines during a round and drained by the coordinator at
	// the barrier. pending holds drained cells per DESTINATION shard in
	// canonical order until the round whose horizon needs them: deferring
	// injection is what lets equal-time arrivals staged in different
	// rounds meet in one buffer and sort canonically (see applyStaged).
	outbox  [][]stagedCell
	ctl     [][]func()
	pending [][]stagedCell
	// pendStart is applyStaged's per-destination scratch: the pending
	// length before this round's appends, i.e. where re-sorting starts.
	pendStart []int
}

// NewCluster builds a testbed of nHosts ATM workstations partitioned
// across up to the requested number of shards. The partition is
// topology-aware: on a hub every host is its own unit, on a fat tree
// the unit is the leaf switch (hosts never straddle a cut host link or
// an uncut trunk), and unit 0 — the workload server's — always forms
// shard 0 alone with the core switch, so the fan-in hot spot gets a
// dedicated event loop. The shard count is clamped to the unit count,
// and a clamp to one shard (including the two-host switchless fiber,
// which has no cuttable boundary) degenerates to a plain serial lab.
//
// Sharded execution refuses configurations whose behaviour depends on a
// globally ordered RNG stream or on one host mutating another's state
// directly: Ethernet (one broadcast domain), cell loss or corruption
// injection, and the PCB-population knobs. Payload fills also draw from
// per-shard RNGs — that diverges from the serial stream, but payload
// bytes are behaviorally inert (checksum costs are data-independent and
// echo comparison is against the sender's own message), so bit-identity
// of every event, result, and trace is unaffected.
func NewCluster(cfg Config, nHosts, shards int) (*Cluster, error) {
	if shards < 1 {
		return nil, fmt.Errorf("lab: cluster needs at least 1 shard, got %d", shards)
	}
	if cfg.Link != LinkATM {
		return nil, fmt.Errorf("lab: sharded execution requires ATM; %v is one broadcast domain with no cuttable link", cfg.Link)
	}
	if cfg.CellLossRate != 0 || cfg.CellCorruptRate != 0 || cfg.HostCorruptRate != 0 {
		return nil, fmt.Errorf("lab: sharded execution cannot inject faults (loss %g, corrupt %g, host-corrupt %g): fault draws consume the serial RNG stream, which shards do not share",
			cfg.CellLossRate, cfg.CellCorruptRate, cfg.HostCorruptRate)
	}
	if cfg.impaired() {
		return nil, fmt.Errorf("lab: sharded execution cannot impair links (burst loss %+v, reorder %g): fault studies compare serial runs only",
			cfg.BurstLoss, cfg.ReorderRate)
	}
	if cfg.ExtraPCBs != 0 || cfg.LivePCBs != 0 {
		return nil, fmt.Errorf("lab: sharded execution cannot populate PCBs (extra %d, live %d): population mutates the peer host's tables directly",
			cfg.ExtraPCBs, cfg.LivePCBs)
	}
	leafPorts := cfg.LeafPorts
	if leafPorts <= 0 {
		leafPorts = atm.DefaultLeafPorts
	}
	units := nHosts
	if cfg.Fabric == FabricFatTree {
		units = (nHosts + leafPorts - 1) / leafPorts
	}
	if nHosts == 2 {
		units = 1 // switchless fiber: no switch, nothing to cut
	}
	eff := shards
	if eff > units {
		eff = units
	}
	if eff == 1 {
		l := NewTopology(cfg, nHosts)
		sh := &Shard{Env: l.Env}
		for i := range l.Hosts {
			sh.Hosts = append(sh.Hosts, i)
		}
		return &Cluster{
			Lab:       l,
			Shards:    []*Shard{sh},
			hostShard: make([]int, nHosts),
		}, nil
	}

	model := cfg.Cost
	if model == nil {
		model = cost.DECstation5000()
	}
	envs := make([]*sim.Env, eff)
	for s := range envs {
		envs[s] = sim.NewEnv()
		if cfg.Seed != 0 {
			envs[s].Seed(cfg.Seed)
		}
	}
	hostShard := partitionHosts(cfg.Fabric, nHosts, leafPorts, units, eff)

	l := &Lab{Env: envs[0], Config: cfg, ownerShards: eff}
	for i := 0; i < nHosts; i++ {
		l.Hosts = append(l.Hosts, buildHost(envs[hostShard[i]], model, cfg, hostName(i), HostAddr(i)))
	}
	l.Client, l.Server = l.Hosts[0], l.Hosts[1]

	c := &Cluster{
		Lab:       l,
		hostShard: hostShard,
		outbox:    make([][]stagedCell, eff),
		ctl:       make([][]func(), eff),
		pending:   make([][]stagedCell, eff),
		pendStart: make([]int, eff),
	}
	drvs := make([]*atm.Driver, nHosts)
	for i, h := range l.Hosts {
		drvs[i] = h.ATMDriver
	}
	plan := &atm.ShardPlan{
		Envs:      envs,
		HostShard: hostShard,
		StageCell: c.stageCell,
		StageCtl:  c.stageCtl,
	}
	l.Fabric = atm.NewShardedFabric(plan, cfg.Fabric, model, cfg.LeafPorts, drvs)
	l.Switch = l.Fabric.Core
	// Same per-port seed derivation as the serial build, so a sharded
	// run's RED lotteries replay the serial run's draw for draw.
	applyQdisc(l.Fabric, cfg)

	c.Shards = make([]*Shard, eff)
	for s := range c.Shards {
		c.Shards[s] = &Shard{Env: envs[s]}
	}
	for i, s := range hostShard {
		c.Shards[s].Hosts = append(c.Shards[s].Hosts, i)
	}

	// Lookahead: the latency floor of a cut fiber. On a hub the cuts are
	// host links, whose cheapest direction is adapter egress — one cell
	// time of serialization plus propagation. On a fat tree only trunk
	// fibers are cut, and every trunk crossing first pays the switch's
	// forwarding latency.
	cell := cost.WireTime(atm.CellSize, model.ATMLinkBitsPS)
	c.lookahead = cell + model.ATMPropagation
	if cfg.Fabric == FabricFatTree && !cfg.Qdisc.Enabled() {
		// Only trunk fibers are cut, and the legacy forward path stages a
		// trunk crossing before paying the switch latency — so the
		// latency widens the guaranteed gap. Under a qdisc the latency is
		// spent BEFORE the cell reaches the egress queue; the stage
		// happens at dequeue commit, leaving only serialization plus
		// propagation of provable gap.
		c.lookahead += l.Switch.Latency
	}
	// The earliest a staged cell's causal consequence can re-enter the
	// emitting shard: propagation to the far side of the cut, then —
	// because every egress pointed back at this shard is a switch forward
	// (the hub's port toward a cut host link, the spine toward a cut
	// trunk) — the switch's forwarding latency, one cell serialization,
	// and propagation home. Anything the arrival influences acts no
	// earlier than the arrival itself, so this floor holds for perturbed
	// traffic as well as direct responses.
	c.boomerang = 2*model.ATMPropagation + l.Switch.Latency + cell
	return c, nil
}

// partitionHosts assigns each host a shard: unit 0 is shard 0 alone,
// and the remaining units split contiguously and near-evenly across
// shards 1..eff-1 (monotone, so same-shard hosts keep their relative
// construction order — the tie-break order serial execution uses).
func partitionHosts(kind FabricKind, nHosts, leafPorts, units, eff int) []int {
	unitShard := make([]int, units)
	rest, workers := units-1, eff-1
	base, rem := rest/workers, rest%workers
	u := 1
	for w := 0; w < workers; w++ {
		n := base
		if w < rem {
			n++
		}
		for k := 0; k < n; k++ {
			unitShard[u] = w + 1
			u++
		}
	}
	hostShard := make([]int, nHosts)
	for i := range hostShard {
		if kind == FabricFatTree {
			hostShard[i] = unitShard[i/leafPorts]
		} else {
			hostShard[i] = unitShard[i]
		}
	}
	return hostShard
}

// NumShards returns the effective shard count after clamping.
func (c *Cluster) NumShards() int { return len(c.Shards) }

// Lookahead returns the conservative safe-time window.
func (c *Cluster) Lookahead() sim.Time { return c.lookahead }

// Rounds returns how many barrier rounds this cluster has executed.
func (c *Cluster) Rounds() int64 { return c.rounds }

// HostShard returns the shard index of host i.
func (c *Cluster) HostShard(i int) int { return c.hostShard[i] }

// EnvOf returns the event loop that owns host i. Workload generators
// spawn each host's processes on its owning shard's loop so that frame
// code reading p.Env() sees the clock the host lives on.
func (c *Cluster) EnvOf(i int) *sim.Env { return c.Shards[c.hostShard[i]].Env }

// stageCell implements atm.ShardPlan.StageCell: the sending shard's
// goroutine parks the crossing cell in its own outbox (no other
// goroutine touches that slice until the barrier).
func (c *Cluster) stageCell(srcShard, dstShard int, scheduleAt, at sim.Time, to atm.CellDest, cell atm.Cell) {
	// Dynamic horizon tightening (see horizonFor): this emission can
	// draw a causal response back into this shard no earlier than one
	// round trip across the cut, so cap the window there. Emission times
	// are not monotone across adapters (each has its own wire-busy
	// backlog), so every stage checks, not just the first.
	env := c.Shards[srcShard].Env
	if b := scheduleAt + c.boomerang; b < env.Horizon() {
		env.SetHorizon(b)
	}
	c.outbox[srcShard] = append(c.outbox[srcShard], stagedCell{
		srcShard: srcShard, dstShard: dstShard,
		scheduleAt: scheduleAt, at: at, to: to, cell: cell,
	})
}

// stageCtl implements atm.ShardPlan.StageCtl.
func (c *Cluster) stageCtl(srcShard int, apply func()) {
	c.ctl[srcShard] = append(c.ctl[srcShard], apply)
}

// applyStaged drains the staging areas at a round barrier: control
// mutations first (VC installs must precede any cell that needs them),
// then the staged cells into per-destination pending buffers kept in
// canonical order — ascending arrival time, ties broken by schedule
// time, source shard, and emission order, which is exactly the order
// the serial run's event queue assigned sequence numbers to the same
// arrivals. Injection into the destination heap is deferred to
// injectPending: an event heap breaks same-time ties by insertion
// order, so equal-time arrivals staged in DIFFERENT rounds (shards
// reach the common emission instant in different windows) must wait in
// one buffer until the round that needs them, where they sort
// canonically. Deferral never reorders against later rounds: a cell
// injected below horizon H arrived strictly before H, and every cell a
// future round stages arrives at or after H. Only the coordinator runs
// here, so it may touch any shard's switches and event heap freely.
func (c *Cluster) applyStaged() {
	for s := range c.ctl {
		for _, fn := range c.ctl[s] {
			fn()
		}
		c.ctl[s] = c.ctl[s][:0]
	}
	for d := range c.pendStart {
		c.pendStart[d] = len(c.pending[d])
	}
	for s := range c.outbox {
		for _, m := range c.outbox[s] {
			c.pending[m.dstShard] = append(c.pending[m.dstShard], m)
		}
		c.outbox[s] = c.outbox[s][:0]
	}
	for d := range c.pending {
		insertStaged(c.pending[d], c.pendStart[d])
	}
}

// stagedBefore is the canonical cross-shard arrival order: ascending
// arrival time, ties broken by schedule time, then source shard.
func stagedBefore(a, b stagedCell) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.scheduleAt != b.scheduleAt {
		return a.scheduleAt < b.scheduleAt
	}
	return a.srcShard < b.srcShard
}

// insertStaged restores canonical order after appends: p[:from] is
// already sorted (the invariant injectPending preserves by consuming a
// prefix), so a stable insertion of the tail suffices — and unlike
// sort.SliceStable it allocates nothing, which matters at one call per
// destination per barrier round.
func insertStaged(p []stagedCell, from int) {
	for i := from; i < len(p); i++ {
		m := p[i]
		j := i - 1
		for j >= 0 && stagedBefore(m, p[j]) {
			p[j+1] = p[j]
			j--
		}
		p[j+1] = m
	}
}

// injectPending schedules shard s's pending arrivals strictly below
// horizon h into its heap, in canonical order, and retains the rest for
// a later round (the shard executes strictly below h, so nothing at or
// beyond h can be missed this window).
func (c *Cluster) injectPending(s int, h sim.Time) {
	pend := c.pending[s]
	env := c.Shards[s].Env
	k := 0
	for k < len(pend) && pend[k].at < h {
		m := pend[k] // copy: the closure outlives the reused buffer
		env.At(m.at, "xshard.cellin", func() { m.to.InjectCell(m.cell) })
		k++
	}
	if k > 0 {
		c.pending[s] = append(pend[:0], pend[k:]...)
	}
}

// nextTimes fills ts with each shard's earliest future action — the
// head of its event heap or of its pending-arrival buffer, whichever is
// sooner (sim.MaxTime when both are empty) — and reports whether any
// shard has work at all. Counting un-injected arrivals is what keeps
// the horizon math sound under deferred injection: a peer's horizon is
// derived from this shard's earliest possible action, and a pending
// arrival is exactly such an action.
func (c *Cluster) nextTimes(ts []sim.Time) bool {
	any := false
	for i, sh := range c.Shards {
		t, ok := sh.Env.NextEventAt()
		if !ok {
			t = sim.MaxTime
		}
		if p := c.pending[i]; len(p) > 0 && p[0].at < t {
			t = p[0].at
		}
		if t != sim.MaxTime {
			any = true
		}
		ts[i] = t
	}
	return any
}

// horizonFor returns shard i's static safe-execution bound for the
// round: the earliest event any OTHER shard holds at the barrier, plus
// the minimum cross-shard latency. Shard i's own events never bound it —
// everything it emits to itself is already in its heap in order. This
// per-shard horizon (rather than one global min+L window) is what lets
// a busy shard stream through long stretches of local work in a single
// round while its peers sit at far-future timestamps; with only one
// shard holding events at all, that shard runs unbounded.
//
// The static bound alone is unsound: it ignores causal chains the shard
// itself starts mid-round. A cell it stages at emission time t can wake
// a far-future peer and draw a response back at t plus one cut round
// trip — inside its own supposedly-safe window. stageCell closes that
// hole dynamically by tightening the emitting shard's horizon to
// t + boomerang, the provable floor on that round trip. Chains through
// an intermediary are covered by the static term of the ORIGIN shard:
// whatever shard k emits this round is emitted at or after k's first
// event, so it lands in any third shard no earlier than that shard's
// static horizon. Progress is preserved under both terms — each exceeds
// the globally earliest event time, so every round retires at least one
// event.
func (c *Cluster) horizonFor(i int, ts []sim.Time) sim.Time {
	minOther := sim.MaxTime
	for k, t := range ts {
		if k != i && t < minOther {
			minOther = t
		}
	}
	if minOther == sim.MaxTime {
		return sim.MaxTime
	}
	return minOther + c.lookahead
}

// Run drives every shard's event loop to completion, round by round.
// One worker goroutine per shard lives for the duration of the call —
// O(shards) goroutines, which the footprint tests pin — and the
// coordinator (the calling goroutine) owns every barrier: it applies
// staged control, injects staged cells, computes the horizon, and only
// then releases the workers for the next window. All cross-goroutine
// visibility flows through the start/done channels, so the race
// detector sees a clean happens-before chain.
func (c *Cluster) Run() {
	if len(c.Shards) == 1 {
		c.Lab.Env.Run()
		return
	}
	nShards := len(c.Shards)
	start := make([]chan struct{}, nShards)
	done := make(chan struct{}, nShards)
	for s := range start {
		start[s] = make(chan struct{}, 1)
		env := c.Shards[s].Env
		ch := start[s]
		go func() {
			for range ch {
				env.RunWindow()
				done <- struct{}{}
			}
		}()
	}
	next := make([]sim.Time, nShards)
	for {
		c.applyStaged()
		if c.Lab.wd != nil && c.Lab.wd.Fired() {
			// A fired watchdog makes every shard's RunWindow return
			// without retiring events; without this break the barrier
			// loop would spin through empty rounds forever — the very
			// hang the watchdog exists to prevent.
			break
		}
		if !c.nextTimes(next) {
			break // every heap empty, nothing staged: the run is done
		}
		// Why a per-shard horizon is safe: shard i only processes events
		// strictly before H_i = min over k≠i of next_k, plus L. Any cell
		// shard k emits this round is emitted at a time >= next_k (its own
		// first event) and arrives at >= next_k + L >= H_i for every other
		// shard i — never inside a window a peer is executing, so the
		// barrier always injects it into the peer's future.
		// Release only shards holding an event below their horizon: an
		// idle shard's RunWindow would return without executing anything,
		// so waking it buys nothing and costs two goroutine switches —
		// most of a round's overhead when one flow ping-pongs between two
		// shards while the rest sit at far-future timestamps.
		c.rounds++
		released := 0
		for s, sh := range c.Shards {
			h := c.horizonFor(s, next)
			c.injectPending(s, h)
			sh.Env.SetHorizon(h)
			if next[s] < h {
				released++
				start[s] <- struct{}{}
			}
		}
		for i := 0; i < released; i++ {
			<-done
		}
	}
	for s := range start {
		close(start[s])
	}
	for _, sh := range c.Shards {
		sh.Env.SetHorizon(sim.MaxTime)
	}
}

// RunEcho runs the paper's echo benchmark on the sharded testbed (see
// Lab.RunEcho): the client lives in shard 0, the server in whatever
// shard owns host 1. The serial benchmark flips every host's trace
// recorder on at the client's warmup boundary; the sharded client
// cannot reach other shards' recorders mid-round, so hosts outside its
// shard record from time zero instead and PacketEvents drops everything
// before the flip instant — the same stream, filtered after the fact
// rather than gated at the source.
func (c *Cluster) RunEcho(size, iterations, warmup int) (*EchoResult, error) {
	l := c.Lab
	if len(c.Shards) == 1 {
		return l.RunEcho(size, iterations, warmup)
	}
	res := &EchoResult{Size: size, Iterations: iterations}
	var runErr error

	ln, err := l.Server.TCP.Listen(echoPort)
	if err != nil {
		return nil, err
	}
	// Config.LivePCBs is rejected at cluster construction, so the
	// discard-port listener is never needed here.
	c.Shards[c.hostShard[1]].Env.Spawn("server.echo", &echoServerFrame{l: l, ln: ln, size: size})
	l.Env.Spawn("client.echo", &echoClientFrame{
		l: l, size: size, iterations: iterations, warmup: warmup,
		res: res, runErr: &runErr,
	})

	clientShard := c.hostShard[0]
	for i, h := range l.Hosts {
		if c.hostShard[i] != clientShard {
			h.Kern.Trace.Enable()
		}
	}
	l.flipLocal = func(on bool) {
		for i, h := range l.Hosts {
			if c.hostShard[i] != clientShard {
				continue
			}
			if on {
				h.Kern.Trace.Enable()
			} else {
				h.Kern.Trace.Disable()
			}
		}
		if on && l.eventsSince == 0 {
			l.eventsSince = l.Env.Now()
		}
	}
	defer func() { l.flipLocal = nil }()

	c.Run()
	if runErr != nil {
		return nil, runErr
	}
	if len(res.RTTs) != iterations {
		return nil, fmt.Errorf("lab: measured %d of %d iterations", len(res.RTTs), iterations)
	}
	return res, nil
}

// Reset rewinds the sharded testbed for its next trial, mirroring
// Lab.Reset shard by shard: every shard's event loop, every host, and
// the fabric rewind to just-built state under the new configuration.
// The shard count is part of the topology shape — like the link kind
// and host count, it was fixed at construction — so a caller wanting a
// different shard count builds a new cluster; Testbeds keys its cache
// accordingly.
func (c *Cluster) Reset(cfg Config, seed uint64) error {
	if len(c.Shards) == 1 {
		return c.Lab.Reset(cfg, seed)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	l := c.Lab
	if cfg.Link != l.Config.Link {
		return fmt.Errorf("lab: cannot reset %v topology to %v", l.Config.Link, cfg.Link)
	}
	if cfg.Fabric != l.Config.Fabric || cfg.LeafPorts != l.Config.LeafPorts {
		return fmt.Errorf("lab: cannot reset %v fabric (leaf ports %d) to %v (leaf ports %d)",
			l.Config.Fabric, l.Config.LeafPorts, cfg.Fabric, cfg.LeafPorts)
	}
	if cfg.CellLossRate != 0 || cfg.CellCorruptRate != 0 || cfg.HostCorruptRate != 0 ||
		cfg.impaired() || cfg.ExtraPCBs != 0 || cfg.LivePCBs != 0 {
		return fmt.Errorf("lab: cannot reset a sharded cluster to a fault-injection or PCB-population configuration")
	}
	for s, sh := range c.Shards {
		if n := sh.Env.Pending(); n != 0 {
			return fmt.Errorf("lab: cannot reset with %d events pending in shard %d", n, s)
		}
	}
	if l.Config.CheckLeaks {
		if hdrs, pages := l.PoolLive(); hdrs != 0 || pages != 0 {
			return fmt.Errorf("lab: trial leaked %d mbuf headers and %d cluster pages: %w",
				hdrs, pages, ErrPoolLeak)
		}
	}
	for _, sh := range c.Shards {
		sh.Env.Reset()
		if cfg.Seed != 0 {
			sh.Env.Seed(cfg.Seed)
		}
	}
	model := cfg.Cost
	if model == nil {
		model = cost.DECstation5000()
	}
	for _, h := range l.Hosts {
		resetHost(h, model, cfg)
	}
	l.Fabric.Reset()
	applyQdisc(l.Fabric, cfg)
	for s := range c.ctl {
		c.ctl[s] = c.ctl[s][:0]
		c.outbox[s] = c.outbox[s][:0]
		c.pending[s] = c.pending[s][:0]
	}
	l.eventsSince = 0
	l.faultState = nil
	l.wd = nil
	l.Config = cfg
	return nil
}
