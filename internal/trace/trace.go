// Package trace records virtual-time latency spans attributed to protocol
// layers, reproducing the paper's instrumentation methodology (§1.2): the
// authors bracketed kernel code sections with reads of a 40 ns TurboChannel
// clock; we bracket the same code sections with reads of the simulation
// clock.
//
// A Recorder collects Spans (a layer name plus a start and end time) and
// Marks (named point events such as "the last cell of the last segment
// arrived", which the paper uses as the origin for receive-side
// attribution). The experiment harness then computes per-layer breakdowns
// over a window, mirroring Tables 2 and 3.
//
// On top of the aggregate spans sits the per-packet attribution engine:
// when packet tracing is armed (EnablePackets) the same instrumentation
// points also emit typed Events — CPU charges, socket enqueue/dequeue,
// tcp_output/tcp_input, PCB lookups, IP send/queue/deliver, driver
// TX/RX, and wire departure/arrival — each keyed by a PacketID derived
// from the bytes on the wire (connection 4-tuple plus sequence number).
// MergeEvents joins the per-host streams deterministically,
// BuildTimelines reconstructs each packet's life as a span tree, and
// ChromeTrace exports the stream in Chrome trace_event format for
// flamegraph-style inspection. BreakdownFromEvents re-derives the
// paper's tables from the event stream; core.RunTimelineStudy asserts
// the re-derivation agrees with the span-based tables exactly.
//
// The measurement methodology — which window each table uses, why the
// receive origin is the last wire arrival, and the fixed-seed
// determinism contract — is documented in docs/METHODOLOGY.md.
package trace

import "repro/internal/sim"

// Layer identifies a row of the paper's breakdown tables.
type Layer string

// The layers of the transmit-side (Table 2) and receive-side (Table 3)
// breakdowns. TCP is split into its three components exactly as the paper
// splits it. Transmit and receive variants are distinct because in the
// round-trip benchmark both directions execute on each host and the two
// tables attribute them separately.
const (
	LayerUserTx       Layer = "User(tx)"         // write syscall + copy into mbufs
	LayerUserRx       Layer = "User(rx)"         // read syscall + copy to user space
	LayerTCPCksumTx   Layer = "TCP.checksum(tx)" // checksum over outgoing header + data
	LayerTCPCksumRx   Layer = "TCP.checksum(rx)" // checksum over incoming header + data
	LayerTCPMcopy     Layer = "TCP.mcopy"        // transmit-side copy for retransmission
	LayerTCPSegmentTx Layer = "TCP.segment(tx)"  // remaining TCP output processing
	LayerTCPSegmentRx Layer = "TCP.segment(rx)"  // remaining TCP input processing
	LayerIPTx         Layer = "IP(tx)"           // ip_output
	LayerIPRx         Layer = "IP(rx)"           // ip_input
	LayerATMTx        Layer = "ATM(tx)"          // driver + adapter, transmit
	LayerATMRx        Layer = "ATM(rx)"          // driver + adapter, receive
	LayerEtherTx      Layer = "Ether(tx)"        // Ethernet driver, transmit
	LayerEtherRx      Layer = "Ether(rx)"        // Ethernet driver, receive
	LayerIPQ          Layer = "IPQ"              // IP input queue scheduling latency
	LayerWakeup       Layer = "Wakeup"           // run-queue wait after sowakeup
	LayerMbuf         Layer = "Mbuf"             // mbuf bookkeeping outside other rows
	LayerWire         Layer = "Wire"             // time on the physical link
	LayerIdle         Layer = "Idle"             // CPU idle inside a measured window
)

// MarkFrameArrival is the mark name drivers record when a link-level
// frame's final cell (ATM) or the frame itself (Ethernet) reaches the
// receive hardware. It is the origin of the paper's receive-side
// measurements ("the arrival of the last group of ATM cells comprising
// the last TCP segment").
const MarkFrameArrival = "frame-arrival"

// Span is one bracketed interval of virtual time attributed to a layer.
type Span struct {
	Layer Layer
	Start sim.Time
	End   sim.Time
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Mark is a named point event.
type Mark struct {
	Name string
	At   sim.Time
}

// Recorder accumulates spans and marks while enabled. The zero value is a
// valid, disabled recorder; recording calls on a disabled recorder are
// cheap no-ops, so the protocol code is always instrumented and the
// experiment harness flips recording on only for measured iterations
// (the paper likewise timed only the measured loop).
type Recorder struct {
	enabled bool
	packets bool
	spans   []Span
	marks   []Mark
	events  []Event
}

// Enable turns recording on, pre-sizing the record buffers the first
// time so the measured loop appends without growth reallocations (the
// buffers are retained across Reset, so repeated measured windows reuse
// one allocation).
func (r *Recorder) Enable() {
	r.enabled = true
	if cap(r.spans) == 0 {
		r.spans = make([]Span, 0, 2048)
	}
	if cap(r.marks) == 0 {
		r.marks = make([]Mark, 0, 128)
	}
	if r.packets && cap(r.events) == 0 {
		r.events = make([]Event, 0, 2048)
	}
}

// Disable turns recording off without discarding existing records.
func (r *Recorder) Disable() { r.enabled = false }

// Enabled reports whether the recorder is accepting records.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Reset discards all spans, marks, and events.
func (r *Recorder) Reset() {
	r.spans = r.spans[:0]
	r.marks = r.marks[:0]
	r.events = r.events[:0]
}

// Span records an interval attributed to a layer. Inverted intervals panic:
// they indicate a broken cost charge, not a measurement.
func (r *Recorder) Span(layer Layer, start, end sim.Time) {
	if !r.Enabled() {
		return
	}
	if end < start {
		panic("trace: span ends before it starts")
	}
	r.spans = append(r.spans, Span{Layer: layer, Start: start, End: end})
}

// Mark records a named point event.
func (r *Recorder) Mark(name string, at sim.Time) {
	if !r.Enabled() {
		return
	}
	r.marks = append(r.marks, Mark{Name: name, At: at})
}

// Spans returns the recorded spans in insertion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Marks returns the recorded marks in insertion order.
func (r *Recorder) Marks() []Mark { return r.marks }

// LastMark returns the time of the latest mark with the given name at or
// before limit, and whether one exists.
func (r *Recorder) LastMark(name string, limit sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, m := range r.marks {
		if m.Name == name && m.At <= limit && (!found || m.At > best) {
			best = m.At
			found = true
		}
	}
	return best, found
}

// FirstMarkAfter returns the time of the earliest mark with the given name
// at or after from, and whether one exists.
func (r *Recorder) FirstMarkAfter(name string, from sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, m := range r.marks {
		if m.Name == name && m.At >= from && (!found || m.At < best) {
			best = m.At
			found = true
		}
	}
	return best, found
}

// Breakdown sums span time per layer, clipped to the window [start, end].
// This is how the paper turns raw timestamps into table rows: a span
// contributes only the part of it that lies inside the measured window
// (§2.2: "we only measure the portion of the receive processing that
// actually contributes to the overall latency").
func (r *Recorder) Breakdown(start, end sim.Time) map[Layer]sim.Time {
	out := make(map[Layer]sim.Time)
	for _, s := range r.spans {
		lo, hi := s.Start, s.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			out[s.Layer] += hi - lo
		}
	}
	return out
}

// WindowSpans returns the spans overlapping [start, end], clipped to it.
func (r *Recorder) WindowSpans(start, end sim.Time) []Span {
	var out []Span
	for _, s := range r.spans {
		lo, hi := s.Start, s.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			out = append(out, Span{Layer: s.Layer, Start: lo, End: hi})
		}
	}
	return out
}
