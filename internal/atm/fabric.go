package atm

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
)

// Routed fabrics: multi-switch ATM topologies with on-demand VC setup.
//
// The paper's testbed is two hosts on one fiber; scaling its workloads to
// thousands of hosts needs a switched fabric, and building that fabric
// eagerly costs O(hosts²) VC state — the reason large topologies used to
// exhaust memory before simulating a single cell. A Fabric instead keeps
// only a routing view of the topology (which switch and port each host
// sits on) and installs a flow's VC path through the switches the first
// time a datagram heads to that destination, via the driver's SetupVC
// hook. Signaling is modeled as instantaneous, so the lazily built
// fabric is event-for-event identical to an eagerly meshed one; what
// changes is that memory follows *active* communication pairs.

// FabricKind selects the switch arrangement of a routed fabric.
type FabricKind int

const (
	// FabricHub is a single switch with every host attached — the
	// classic hub-and-spoke building network, and the shape whose
	// single-switch behaviour must stay bit-identical to the old eager
	// mesh.
	FabricHub FabricKind = iota
	// FabricFatTree is a two-level tree: hosts attach to leaf switches
	// (LeafPorts per leaf), and every leaf trunks to one spine switch.
	// Cross-leaf flows traverse leaf → spine → leaf and contend for the
	// trunk links, as in a building backbone.
	FabricFatTree
)

// String names the fabric kind for labels and errors.
func (k FabricKind) String() string {
	switch k {
	case FabricHub:
		return "hub"
	case FabricFatTree:
		return "fattree"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// DefaultLeafPorts is the fat-tree hosts-per-leaf when the caller does
// not choose one: the port count of a mid-90s workgroup ATM switch.
const DefaultLeafPorts = 64

// flowKey identifies a unidirectional host-to-host flow by host index.
type flowKey struct{ src, dst int }

// hop is one switch VC entry on a flow's path, with the allocator to
// refund when the path is torn down (nil for fixed host-link VCIs).
type hop struct {
	sw    *Switch
	port  int
	vci   uint16
	alloc *vciAlloc
}

// route is an installed flow path: the VCI the source host transmits on,
// the VCI the destination host receives on (naming the source, as the
// legacy mesh did), and the switch entries in path order.
type route struct {
	txVCI uint16
	rxVCI uint16
	hops  []hop
}

// fabricHost locates one host in the fabric.
type fabricHost struct {
	drv  *Driver
	sw   *Switch
	leaf int // leaf index, or -1 on a hub
	port int // host's port on sw
}

// Fabric is a routed multi-switch topology over a set of host drivers.
// It owns the switches, knows where every host attaches, and serves the
// drivers' SetupVC/TeardownVC hooks: VC paths through the switches exist
// only for flows that have actually carried traffic.
type Fabric struct {
	Kind FabricKind
	// Core is the single switch of a hub fabric or the spine of a
	// fat tree; Leaves are the fat tree's leaf switches (nil for a hub).
	Core   *Switch
	Leaves []*Switch

	hosts  []fabricHost
	byAddr map[uint32]int

	// leafUp[i] is leaf i's trunk port toward the spine; coreDown[i] is
	// the spine's port toward leaf i.
	leafUp   []int
	coreDown []int

	// routes remembers every installed flow path. It survives testbed
	// Reset — routing is topology once installed — which makes setup
	// idempotent: a driver whose on-demand transmit state was dropped by
	// Reset re-requests the path and gets the existing one back, with no
	// switch-table or VCI-allocator churn.
	routes map[flowKey]*route

	// VCsSetUp and VCsTornDown count path installs and reclaims.
	VCsSetUp    int64
	VCsTornDown int64
}

// NewFabric builds the switches for kind, attaches every driver's
// adapter, and wires the drivers' on-demand VC hooks. leafPorts only
// matters for FabricFatTree; zero means DefaultLeafPorts. The model
// prices the trunk links (host links are priced by each adapter's own
// cost model, as always).
func NewFabric(env *sim.Env, kind FabricKind, model *cost.Model, leafPorts int, drvs []*Driver) *Fabric {
	f := &Fabric{
		Kind:   kind,
		hosts:  make([]fabricHost, len(drvs)),
		byAddr: make(map[uint32]int, len(drvs)),
		routes: make(map[flowKey]*route),
	}
	switch kind {
	case FabricHub:
		f.Core = NewSwitch(env)
		for i, d := range drvs {
			port := f.Core.AttachPort(d.Adapter)
			f.hosts[i] = fabricHost{drv: d, sw: f.Core, leaf: -1, port: port}
		}
	case FabricFatTree:
		if leafPorts <= 0 {
			leafPorts = DefaultLeafPorts
		}
		f.Core = NewSwitch(env)
		nLeaves := (len(drvs) + leafPorts - 1) / leafPorts
		f.Leaves = make([]*Switch, nLeaves)
		f.leafUp = make([]int, nLeaves)
		f.coreDown = make([]int, nLeaves)
		for li := range f.Leaves {
			leaf := NewSwitch(env)
			f.Leaves[li] = leaf
			for i := li * leafPorts; i < (li+1)*leafPorts && i < len(drvs); i++ {
				port := leaf.AttachPort(drvs[i].Adapter)
				f.hosts[i] = fabricHost{drv: drvs[i], sw: leaf, leaf: li, port: port}
			}
			f.leafUp[li], f.coreDown[li] = ConnectTrunk(leaf, f.Core, model)
		}
	default:
		panic(fmt.Sprintf("atm: unknown fabric kind %d", int(kind)))
	}
	for i, d := range drvs {
		i := i // pre-1.22 loop-variable capture
		f.byAddr[d.IP.Addr] = i
		d.SetupVC = func(dst uint32) (uint16, bool) { return f.setup(i, dst) }
		d.TeardownVC = func(dst uint32) { f.teardown(i, dst) }
	}
	return f
}

// NumHosts returns how many hosts the fabric serves.
func (f *Fabric) NumHosts() int { return len(f.hosts) }

// NumRoutes returns how many flow paths are currently installed — the
// fabric-wide measure of active communication pairs.
func (f *Fabric) NumRoutes() int { return len(f.routes) }

// TotalVCs sums the VC table entries across every switch in the fabric.
func (f *Fabric) TotalVCs() int {
	n := f.Core.NumVCs()
	for _, leaf := range f.Leaves {
		n += leaf.NumVCs()
	}
	return n
}

// Reset rewinds every switch for testbed reuse. Installed routes
// survive (see the routes field).
func (f *Fabric) Reset() {
	f.Core.Reset()
	for _, leaf := range f.Leaves {
		leaf.Reset()
	}
	f.VCsSetUp, f.VCsTornDown = 0, 0
}

// setup installs (or finds) the VC path from host src to the host owning
// dstAddr and returns the VCI src transmits on. Host-facing links keep
// the legacy source-naming convention — src transmits on DefaultVCI+dst,
// the destination receives on DefaultVCI+src — so a hub fabric's wire
// bytes are byte-identical to the old eager mesh. Trunk hops use
// per-link allocated VCIs, invisible to hosts.
func (f *Fabric) setup(src int, dstAddr uint32) (uint16, bool) {
	dst, ok := f.byAddr[dstAddr]
	if !ok || dst == src {
		return 0, false
	}
	key := flowKey{src, dst}
	if rt, ok := f.routes[key]; ok {
		return rt.txVCI, true
	}
	hs, hd := &f.hosts[src], &f.hosts[dst]
	rt := &route{
		txVCI: DefaultVCI + uint16(dst),
		rxVCI: DefaultVCI + uint16(src),
	}
	if hs.sw == hd.sw {
		// Same switch (hub, or two hosts on one leaf): a single entry.
		hs.sw.AddVC(hs.port, rt.txVCI, hd.port, rt.rxVCI)
		rt.hops = []hop{{sw: hs.sw, port: hs.port, vci: rt.txVCI}}
	} else {
		// Cross-leaf: leaf(src) → spine → leaf(dst), one allocated VCI
		// per trunk hop (the reassembler demultiplexes on VCI alone, so
		// flows sharing a trunk cannot share one).
		up, down := f.leafUp[hs.leaf], f.coreDown[hd.leaf]
		upAlloc := hs.sw.ports[up].vci
		downAlloc := f.Core.ports[down].vci
		v1 := upAlloc.get()
		v2 := downAlloc.get()
		hs.sw.AddVC(hs.port, rt.txVCI, up, v1)
		f.Core.AddVC(f.coreDown[hs.leaf], v1, down, v2)
		hd.sw.AddVC(f.leafUp[hd.leaf], v2, hd.port, rt.rxVCI)
		rt.hops = []hop{
			{sw: hs.sw, port: hs.port, vci: rt.txVCI},
			{sw: f.Core, port: f.coreDown[hs.leaf], vci: v1, alloc: upAlloc},
			{sw: hd.sw, port: f.leafUp[hd.leaf], vci: v2, alloc: downAlloc},
		}
	}
	f.routes[key] = rt
	f.VCsSetUp++
	return rt.txVCI, true
}

// teardown removes the flow path from host src to the host owning
// dstAddr: every switch entry goes away, trunk VCIs return to their
// links' pools, and the destination's reassembly context is reclaimed
// (unless a datagram is mid-flight on it, in which case the context
// stays until the channel is next reclaimed). Cells still crossing the
// fabric on the torn-down path are discarded as unrouted — reclamation
// under TxVCLimit is deliberately the behaviour of a real switched
// network reprovisioning a channel, and transports recover by
// retransmitting (which re-installs the path).
func (f *Fabric) teardown(src int, dstAddr uint32) {
	dst, ok := f.byAddr[dstAddr]
	if !ok {
		return
	}
	key := flowKey{src, dst}
	rt, ok := f.routes[key]
	if !ok {
		return
	}
	for _, h := range rt.hops {
		h.sw.RemoveVC(h.port, h.vci)
		if h.alloc != nil {
			h.alloc.put(h.vci)
		}
	}
	f.hosts[dst].drv.DropRx(rt.rxVCI)
	delete(f.routes, key)
	f.VCsTornDown++
}
