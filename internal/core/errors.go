package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/runner"
)

// ErrorStudyRow is one configuration of the §4.2.1 error-detection study:
// where were injected errors caught, and did any corruption reach the
// application?
type ErrorStudyRow struct {
	Label          string
	Mode           cost.ChecksumMode
	WireCorrupted  int64 // cells with a flipped bit on the wire
	HECDrops       int64 // caught by the cell header checksum
	AALDrops       int64 // caught by CRC-10 / sequence / length checks
	HostCorrupted  int64 // datagrams corrupted after AAL validation
	TCPCksumDrops  int64 // caught by the TCP checksum
	CorruptEchoes  int   // reached the application undetected
	Retransmits    int64
	EchoesComplete int
}

// ErrorStudyResult is the full §4.2.1 study.
type ErrorStudyResult struct {
	Rows []ErrorStudyRow
}

// RunErrorStudy exercises the paper's §4.2.1 analysis of what the TCP
// checksum protects against once a link-level CRC exists:
//
//   - Wire noise (error sources 1, 3 and 4): bits flipped in cells are
//     caught below TCP, by the HEC or the AAL3/4 CRC-10, and repaired by
//     retransmission. The TCP checksum catches nothing — the simulated
//     analogue of the paper's Ethernet observation that "without
//     wide-area traffic, TCP detected no checksum errors" — so
//     eliminating it costs nothing in error detection.
//   - Host-side corruption (error source 2, a buggy controller moving
//     data between controller and host memory): invisible to the AAL.
//     With the checksum on, TCP catches and recovers it; with the
//     checksum eliminated, corrupt data reaches the application — the
//     hardware-problem caveat the paper attaches to elimination.
func RunErrorStudy(iterations int, o Options) (*ErrorStudyResult, error) {
	if iterations <= 0 {
		iterations = 150
	}
	o = o.normalize()
	res := &ErrorStudyResult{}
	type config struct {
		label    string
		mode     cost.ChecksumMode
		wireRate float64
		hostRate float64
	}
	configs := []config{
		{"wire noise, checksum on", cost.ChecksumStandard, 0.001, 0},
		{"wire noise, checksum off", cost.ChecksumNone, 0.001, 0},
		{"buggy controller, checksum on", cost.ChecksumStandard, 0, 0.01},
		{"buggy controller, checksum off", cost.ChecksumNone, 0, 0.01},
	}
	// The four configurations are independent simulations with a fixed
	// seed, so they shard across the sweep pool without affecting the
	// reported counters.
	jobs := make([]runner.Job, 0, len(configs))
	for _, c := range configs {
		c := c
		jobs = append(jobs, runner.Job{
			Label: c.label,
			RunOn: func(_ context.Context, tb *runner.Testbeds, _ uint64) (any, error) {
				cfg := lab.Config{
					Link:            lab.LinkATM,
					Mode:            c.mode,
					CellCorruptRate: c.wireRate,
					HostCorruptRate: c.hostRate,
					Seed:            1994,
				}
				l := tb.Lab(cfg, 2)
				echo, err := l.RunEcho(1400, iterations, 2)
				if err != nil {
					return nil, fmt.Errorf("core: error study %q: %w", c.label, err)
				}
				return ErrorStudyRow{
					Label: c.label,
					Mode:  c.mode,
					WireCorrupted: l.Client.ATMAdapter.CellsCorrupted +
						l.Server.ATMAdapter.CellsCorrupted,
					HECDrops: l.Client.ATMDriver.HECErrors + l.Server.ATMDriver.HECErrors,
					AALDrops: l.Client.ATMDriver.ReassemblyErrors +
						l.Server.ATMDriver.ReassemblyErrors,
					HostCorrupted: l.Client.ATMDriver.HostCorruptions +
						l.Server.ATMDriver.HostCorruptions,
					TCPCksumDrops: l.Client.TCP.Stats.ChecksumErrors +
						l.Server.TCP.Stats.ChecksumErrors,
					CorruptEchoes: echo.CorruptEchoes,
					Retransmits: l.Client.TCP.Stats.Retransmits + l.Server.TCP.Stats.Retransmits +
						l.Client.TCP.Stats.FastRetransmits + l.Server.TCP.Stats.FastRetransmits,
					EchoesComplete: len(echo.RTTs),
				}, nil
			},
		})
	}
	// Seeds are fixed per configuration, so only the worker count is
	// taken from the options; derived seeds would be ignored anyway.
	outs, err := runner.Run(context.Background(), jobs, runner.Options{Workers: o.Parallel})
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.Value.(ErrorStudyRow))
	}
	return res, nil
}

// Render formats the study.
func (r *ErrorStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2.1: Where injected errors are caught (1400-byte echoes)\n")
	fmt.Fprintf(&b, "%-30s %9s %8s %8s %9s %8s %8s\n",
		"configuration", "wire-bits", "HEC", "AAL", "host-bits", "TCPcksum", "corrupt")
	b.WriteString(strings.Repeat("-", 88) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %9d %8d %8d %9d %8d %8d\n",
			row.Label, row.WireCorrupted, row.HECDrops, row.AALDrops,
			row.HostCorrupted, row.TCPCksumDrops, row.CorruptEchoes)
	}
	b.WriteString(`Reading: wire noise never reaches TCP (HEC+AAL catch it; the checksum
detects nothing and can be eliminated); controller corruption is caught
only by the TCP checksum — with it eliminated, corruption reaches the
application, the paper's caveat for that error source.
`)
	return b.String()
}
