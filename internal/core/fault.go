package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FaultOptions configures the fault-recovery study: the paced fan-in
// workload with the server crashing mid-run and restarting after a
// fixed downtime, once per rival transport under identical fault
// schedules and seeds. The paper measured a healthy testbed; this study
// asks how quickly each transport's clients win their connections back
// when the far end vanishes and returns.
type FaultOptions struct {
	// Hosts is the topology size: one server plus Hosts-1 clients
	// (default 9).
	Hosts int
	// Requests is the measured requests per client (default 8).
	Requests int
	// Size is the request/response payload in bytes (default 200).
	Size int
	// CrashAt is when the server host crashes (default 500ms).
	CrashAt sim.Time
	// Downtime is the crash-to-restart gap (default 1s).
	Downtime sim.Time
	// Parallel is the sweep worker-pool size (the two transports run as
	// independent jobs); BaseSeed derives per-job seeds as elsewhere.
	// Execution machinery, excluded from the marshaled result — JSON
	// output must be byte-identical at any -parallel level.
	Parallel int `json:"-"`
	BaseSeed uint64
}

func (o FaultOptions) normalize() FaultOptions {
	if o.Hosts < 2 {
		o.Hosts = 9
	}
	if o.Requests <= 0 {
		o.Requests = 8
	}
	if o.Size <= 0 {
		o.Size = 200
	}
	if o.CrashAt <= 0 {
		o.CrashAt = 500 * sim.Millisecond
	}
	if o.Downtime <= 0 {
		o.Downtime = sim.Second
	}
	return o
}

// FaultRow is one transport's outcome under the crash schedule.
type FaultRow struct {
	Transport string
	Requests  int
	Errors    int
	// Outages counts client-visible outages survived (one recovery
	// sample each).
	Outages int
	// RecoveryMeanMillis and RecoveryQuantiles summarize the recovery
	// samples: detection of the dead server to the first completed
	// request afterwards, in milliseconds.
	RecoveryMeanMillis float64
	RecoveryQuantiles  stats.Quantiles
	// GoodputKBps is goodput through failure: completed payload bytes
	// over the whole run — downtime included — per simulated second.
	GoodputKBps   float64
	ElapsedMillis float64
}

// FaultResult is the study output: one row per transport, same crash
// schedule, same seeds.
type FaultResult struct {
	Opts FaultOptions
	Rows []FaultRow
}

// RunFaultStudy runs the fault-recovery workload once per transport
// (row order fixed by loadedTransports, as is each job's derived seed
// position) and returns recovery-time statistics and goodput through
// the failure for each.
func RunFaultStudy(o FaultOptions) (*FaultResult, error) {
	o = o.normalize()
	var jobs []runner.Job
	for _, tr := range loadedTransports {
		tr := tr
		jobs = append(jobs, runner.Job{
			Label: "faults/" + tr,
			RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
				// CheckLeaks holds the crash machinery to the same
				// standard as a healthy run: a trial that strands mbuf
				// chains fails its testbed's next acquisition loudly.
				cfg := seeded(lab.Config{Link: lab.LinkATM, CheckLeaks: true}, seed)
				g := workload.FaultRecovery{
					Transport: tr, Requests: o.Requests, Size: o.Size,
					CrashAt: o.CrashAt, Downtime: o.Downtime,
				}
				r, err := g.Run(tb.Lab(cfg, o.Hosts))
				if err != nil {
					return nil, err
				}
				return faultRowFrom(tr, r), nil
			},
		})
	}
	outs, err := runner.Run(context.Background(), jobs,
		runner.Options{Workers: o.Parallel, BaseSeed: o.BaseSeed})
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	res := &FaultResult{Opts: o}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.Value.(FaultRow))
	}
	return res, nil
}

// faultRowFrom reduces one workload result to a study row.
func faultRowFrom(transport string, r *workload.Result) FaultRow {
	var rec stats.Sample
	for _, d := range r.Recoveries {
		rec.Add(d.Millis())
	}
	row := FaultRow{
		Transport:          transport,
		Requests:           r.Requests,
		Errors:             r.Errors,
		Outages:            len(r.Recoveries),
		RecoveryMeanMillis: rec.Mean(),
		RecoveryQuantiles:  rec.Quantiles(),
		ElapsedMillis:      r.Elapsed.Millis(),
	}
	if r.Elapsed > 0 {
		row.GoodputKBps = float64(r.Bytes) / 1024 / (float64(r.Elapsed) / float64(sim.Second))
	}
	return row
}

// Render formats the study as the recovery comparison table.
func (r *FaultResult) Render() string {
	o := r.Opts
	t := stats.NewTable(
		fmt.Sprintf("Extension: crash recovery, TCP versus reliable UDP (%d clients, crash at %.0f ms, down %.0f ms)",
			o.Hosts-1, o.CrashAt.Millis(), o.Downtime.Millis()),
		"Transport", "Reqs", "Errors", "Outages",
		"Rec mean (ms)", "p50", "p95", "p99", "Goodput (KB/s)")
	for _, row := range r.Rows {
		t.AddRow(row.Transport, row.Requests, row.Errors, row.Outages,
			row.RecoveryMeanMillis, row.RecoveryQuantiles.P50,
			row.RecoveryQuantiles.P95, row.RecoveryQuantiles.P99,
			row.GoodputKBps)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString(`Both transports ride the same deterministic fault schedule and seeds:
the server's stack resets at the crash, its link goes dark, and clients
win their way back through deadline aborts and bounded-retry
reconnects. Recovery is dominated by detection and backoff, not by the
transport's steady-state speed — and goodput through failure shows what
the outage actually cost each protocol end to end.
`)
	return b.String()
}
