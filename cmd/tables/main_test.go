package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-iters", "3", "-parallel", "4", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4 / Figure 1",
		"Table 5", "Table 6", "Table 7",
		"PCB lookup cost", "Sun-3", "beyond-paper sweep",
		"Figure 1", "Figure 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-iters", "3", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Table1 struct {
			Rows []struct {
				Size int
				A, B float64
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Table1.Rows) == 0 || rep.Table1.Rows[0].A <= 0 {
		t.Fatalf("JSON report empty: %+v", rep)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// goldenTablesSHA256 is the SHA-256 of `tables -json -iters 3 -seed 7`,
// captured on the pre-overhaul (PR 3) tree. The wall-clock hot-path
// overhaul (ISSUE 4) promised byte-identical simulated results; this
// hash pins that promise for every future change, at any worker count.
const goldenTablesSHA256 = "d0839646ab008198db03e66cd449d4f81cd86ae3d0394dcb11f238b4be1987da"

func TestGoldenJSONByteIdentical(t *testing.T) {
	for _, parallel := range []string{"1", "4"} {
		var buf bytes.Buffer
		args := []string{"-json", "-iters", "3", "-seed", "7", "-parallel", parallel}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != goldenTablesSHA256 {
			t.Errorf("-parallel %s: output hash %s, want golden %s (simulated results changed)",
				parallel, got, goldenTablesSHA256)
		}
	}
}
