package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, n uint16) bool {
		h := Header{SrcPort: sp, DstPort: dp, Length: int(n)%9000 + HeaderLen}
		b := make([]byte, HeaderLen)
		h.Marshal(b)
		got, err := ParseHeader(b)
		return err == nil && got.SrcPort == sp && got.DstPort == dp &&
			got.Length == h.Length && got.Cksum == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// pair builds a two-host ATM testbed with UDP stacks.
type pair struct {
	env    *sim.Env
	sa, sb *Stack
	aa, ab *atm.Adapter
	da, db *atm.Driver
}

func newPair(t *testing.T) *pair {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	p := &pair{env: env}
	p.aa, p.ab = atm.NewAdapter(ka), atm.NewAdapter(kb)
	atm.Connect(p.aa, p.ab)
	p.da = atm.NewDriver(ka, p.aa, ipa)
	p.db = atm.NewDriver(kb, p.ab, ipb)
	p.sa = NewStack(ka, ipa)
	p.sb = NewStack(kb, ipb)
	return p
}

func TestSendRecvRoundTrip(t *testing.T) {
	p := newPair(t)
	payload := make([]byte, 1400)
	p.env.RNG().Fill(payload)
	var got Datagram
	eb, err := p.sb.Bind(53)
	if err != nil {
		t.Fatal(err)
	}
	var recv *RecvFromOp
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { recv = eb.RecvFrom(pr) },
		func(pr *sim.Proc) { got = recv.D },
	))
	p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
		ea, err := p.sa.Bind(0)
		if err != nil {
			t.Error(err)
			return
		}
		ea.SendTo(pr, 2, 53, payload)
	}))
	p.env.Run()
	if !bytes.Equal(got.Data, payload) {
		t.Fatal("payload corrupted")
	}
	if got.Src != 1 {
		t.Fatalf("source address %d", got.Src)
	}
}

func TestSizesProperty(t *testing.T) {
	f := func(n uint16) bool {
		p := newPair(t)
		size := int(n) % 8000
		payload := make([]byte, size)
		p.env.RNG().Fill(payload)
		eb, _ := p.sb.Bind(99)
		var got Datagram
		var recv *RecvFromOp
		p.env.Spawn("rx", sim.Steps(
			func(pr *sim.Proc) { recv = eb.RecvFrom(pr) },
			func(pr *sim.Proc) { got = recv.D },
		))
		p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
			ea, _ := p.sa.Bind(0)
			ea.SendTo(pr, 2, 99, payload)
		}))
		p.env.Run()
		return bytes.Equal(got.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsHostCorruption(t *testing.T) {
	p := newPair(t)
	p.db.HostCorruptRate = 1.0 // corrupt every datagram
	eb, _ := p.sb.Bind(7)
	received := false
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { eb.RecvFrom(pr) },
		func(pr *sim.Proc) { received = true },
	))
	p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
		ea, _ := p.sa.Bind(0)
		ea.SendTo(pr, 2, 7, make([]byte, 500))
	}))
	// RecvFrom never returns: run a bounded slice of virtual time.
	p.env.RunUntil(100 * sim.Millisecond)
	if received {
		t.Fatal("corrupted datagram delivered despite checksum")
	}
	if p.sb.ChecksumErrors != 1 {
		t.Fatalf("ChecksumErrors = %d, want 1", p.sb.ChecksumErrors)
	}
}

func TestChecksumOffDeliversCorruption(t *testing.T) {
	// The NFS-style configuration: no UDP checksum. Host-side corruption
	// is invisible (there is no recovery in UDP — the paper's point that
	// elimination is an application decision).
	p := newPair(t)
	p.sa.ChecksumOff = true
	p.db.HostCorruptRate = 1.0
	eb, _ := p.sb.Bind(7)
	payload := make([]byte, 500)
	p.env.RNG().Fill(payload)
	var got Datagram
	var recv *RecvFromOp
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { recv = eb.RecvFrom(pr) },
		func(pr *sim.Proc) { got = recv.D },
	))
	p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
		ea, _ := p.sa.Bind(0)
		ea.SendTo(pr, 2, 7, payload)
	}))
	p.env.Run()
	if got.Data == nil {
		t.Fatal("datagram not delivered")
	}
	if bytes.Equal(got.Data, payload) {
		t.Fatal("corruption did not occur; test vacuous")
	}
}

func TestNoChecksumFasterThanChecksum(t *testing.T) {
	rtt := func(off bool) sim.Time {
		p := newPair(t)
		p.sa.ChecksumOff = off
		p.sb.ChecksumOff = off
		eb, _ := p.sb.Bind(7)
		payload := make([]byte, 4000)
		var done sim.Time
		var srecv *RecvFromOp
		p.env.Spawn("server", sim.Steps(
			func(pr *sim.Proc) { srecv = eb.RecvFrom(pr) },
			func(pr *sim.Proc) {
				d := srecv.D
				eb.SendTo(pr, d.Src, d.SrcPort, d.Data)
			},
		))
		var ea *Endpoint
		p.env.Spawn("client", sim.Steps(
			func(pr *sim.Proc) {
				ea, _ = p.sa.Bind(0)
				ea.SendTo(pr, 2, 7, payload)
			},
			func(pr *sim.Proc) { ea.RecvFrom(pr) },
			func(pr *sim.Proc) { done = p.env.Now() },
		))
		p.env.Run()
		return done
	}
	on, off := rtt(false), rtt(true)
	if off >= on {
		t.Fatalf("checksum-off RTT %v not faster than on %v", off, on)
	}
}

func TestBindConflicts(t *testing.T) {
	p := newPair(t)
	if _, err := p.sb.Bind(80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.sb.Bind(80); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	e1, err := p.sb.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.sb.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Port() == e2.Port() {
		t.Fatal("ephemeral ports collided")
	}
}

func TestUnboundPortDrops(t *testing.T) {
	p := newPair(t)
	p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
		ea, _ := p.sa.Bind(0)
		ea.SendTo(pr, 2, 1234, []byte("nobody home"))
	}))
	p.env.Run()
	if p.sb.NoPortDrops != 1 {
		t.Fatalf("NoPortDrops = %d", p.sb.NoPortDrops)
	}
}

func TestQueueingMultipleDatagrams(t *testing.T) {
	p := newPair(t)
	eb, _ := p.sb.Bind(7)
	var got []byte
	p.env.Spawn("tx", sim.Steps(func(pr *sim.Proc) {
		ea, _ := p.sa.Bind(0)
		pr.Call(sim.LoopN(5, func(pr *sim.Proc, i int) {
			ea.SendTo(pr, 2, 7, []byte{byte(i)})
		}))
	}))
	var recv *RecvFromOp
	p.env.Spawn("rx", sim.Steps(
		func(pr *sim.Proc) { pr.Sleep(50 * sim.Millisecond) }, // let them queue
		func(pr *sim.Proc) {
			pr.Call(sim.LoopN(6, func(pr *sim.Proc, i int) {
				if i > 0 {
					got = append(got, recv.D.Data...)
				}
				if i < 5 {
					recv = eb.RecvFrom(pr)
				}
			}))
		},
	))
	p.env.Run()
	if !bytes.Equal(got, []byte{0, 1, 2, 3, 4}) {
		t.Fatalf("order/content wrong: %v", got)
	}
}
