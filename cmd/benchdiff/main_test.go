package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1_ATMvsEthernet-8   	       1	  51724260 ns/op	       470.1 sim-µs/rtt4B-atm	       894.7 sim-µs/rtt4B-ether
BenchmarkTable4_HeaderPrediction-8	       1	  49000000 ns/op	         3.100 %improvement-4B
BenchmarkSweepParallel-8          	       1	 860884515 ns/op	        40.00 cells	         8.000 workers
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkTable1_ATMvsEthernet/sim-µs/rtt4B-atm":   470.1,
		"BenchmarkTable1_ATMvsEthernet/sim-µs/rtt4B-ether": 894.7,
		"BenchmarkTable4_HeaderPrediction/%improvement-4B": 3.1,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestWriteThenCompareClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	var out bytes.Buffer
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(sampleBench, "470.1", "520.3", 1)
	var out bytes.Buffer
	err := run([]string{"-baseline", path}, strings.NewReader(drifted), &out)
	if err == nil {
		t.Fatalf("drift not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") ||
		!strings.Contains(out.String(), "rtt4B-atm") {
		t.Fatalf("drift report missing:\n%s", out.String())
	}
}

func TestCompareFlagsMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := run([]string{"-write", path}, strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	truncated := strings.SplitAfter(sampleBench, "rtt4B-ether\n")[0] + "PASS\n"
	var out bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(truncated), &out); err == nil {
		t.Fatalf("missing metric not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("missing report absent:\n%s", out.String())
	}
}

func TestEmptyInputRejected(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

const sampleWallclock = `goos: linux
goarch: amd64
pkg: repro
BenchmarkWallclockSweepSerial-8   	       2	 288152656 ns/op	        40.00 cells	         1.000 workers	33812764 B/op	   28784 allocs/op
BenchmarkWallclockEchoSteady-8    	       2	  20063557 ns/op	        12.21 allocs/rtt	 2755016 B/op	    1696 allocs/op
BenchmarkSweepSerial-8            	       2	 289856962 ns/op	        40.00 cells	   28787 allocs/op
PASS
`

func TestParseWallclock(t *testing.T) {
	got, err := parseWallclock(strings.NewReader(sampleWallclock))
	if err != nil {
		t.Fatal(err)
	}
	// Only the Wallclock tier counts, and B/op is excluded.
	want := map[string]float64{
		"BenchmarkWallclockSweepSerial/ns/op":     288152656,
		"BenchmarkWallclockSweepSerial/allocs/op": 28784,
		"BenchmarkWallclockEchoSteady/ns/op":      20063557,
		"BenchmarkWallclockEchoSteady/allocs/rtt": 12.21,
		"BenchmarkWallclockEchoSteady/allocs/op":  1696,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics (%v), want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestWallclockToleranceBands(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wall.json")
	if err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(sampleWallclock), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A 30% ns/op swing stays inside the wide ns/op band.
	slower := strings.Replace(sampleWallclock, "288152656", "374598452", 1)
	var out bytes.Buffer
	if err := run([]string{"-wallclock", "-baseline", path},
		strings.NewReader(slower), &out); err != nil {
		t.Fatalf("30%% ns/op swing should pass: %v\n%s", err, out.String())
	}
	// A 30% allocation regression breaks the tight allocation band.
	leaky := strings.Replace(sampleWallclock, "   28784 allocs/op", "   37419 allocs/op", 1)
	out.Reset()
	err := run([]string{"-wallclock", "-baseline", path}, strings.NewReader(leaky), &out)
	if err == nil {
		t.Fatalf("allocation regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") ||
		!strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("drift report missing:\n%s", out.String())
	}
}

func TestWallclockWriteRejectsMissingAllocs(t *testing.T) {
	// Forgetting -benchmem yields ns/op-only input; writing that as a
	// baseline would disable the allocation gate, so it must refuse.
	noAllocs := "BenchmarkWallclockSweepSerial-8   2   288152656 ns/op\nPASS\n"
	path := filepath.Join(t.TempDir(), "wall.json")
	err := run([]string{"-wallclock", "-write", path},
		strings.NewReader(noAllocs), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("ns/op-only wallclock baseline accepted: %v", err)
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("baseline file written despite rejection")
	}
}
