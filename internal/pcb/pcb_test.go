package pcb

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func key(i int) Key {
	return Key{LocalAddr: 1, RemoteAddr: uint32(i + 2), LocalPort: 80, RemotePort: uint16(i + 1000)}
}

func TestInsertAtHead(t *testing.T) {
	var tb Table
	a := &PCB{Key: key(1)}
	b := &PCB{Key: key(2)}
	tb.Insert(a)
	tb.Insert(b)
	ents := tb.Entries()
	if len(ents) != 2 || ents[0] != b || ents[1] != a {
		t.Fatal("most recent insertion is not at the head")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestLookupExact(t *testing.T) {
	var tb Table
	pcbs := make([]*PCB, 10)
	for i := range pcbs {
		pcbs[i] = &PCB{Key: key(i), Owner: i}
		tb.Insert(pcbs[i])
	}
	for i := range pcbs {
		p, _ := tb.Lookup(key(i))
		if p == nil || p.Owner.(int) != i {
			t.Fatalf("lookup %d found %v", i, p)
		}
	}
	if p, _ := tb.Lookup(key(99)); p != nil {
		t.Fatal("lookup of absent key succeeded")
	}
}

func TestCacheHit(t *testing.T) {
	var tb Table
	for i := 0; i < 50; i++ {
		tb.Insert(&PCB{Key: key(i)})
	}
	_, r1 := tb.Lookup(key(0)) // deep in the list: inserted first
	if r1.CacheHit {
		t.Fatal("first lookup cannot hit the cache")
	}
	if r1.Searched != 50 {
		t.Fatalf("first lookup searched %d, want 50 (key 0 is at the tail)", r1.Searched)
	}
	_, r2 := tb.Lookup(key(0))
	if !r2.CacheHit || r2.Searched != 0 {
		t.Fatalf("repeat lookup: %+v, want cache hit", r2)
	}
	if tb.CacheHits != 1 || tb.Lookups != 2 {
		t.Fatalf("counters: hits=%d lookups=%d", tb.CacheHits, tb.Lookups)
	}
}

func TestCacheDisabled(t *testing.T) {
	tb := Table{CacheDisabled: true}
	tb.Insert(&PCB{Key: key(1)})
	tb.Lookup(key(1))
	_, r := tb.Lookup(key(1))
	if r.CacheHit {
		t.Fatal("disabled cache hit")
	}
	if r.Searched != 1 {
		t.Fatalf("Searched = %d", r.Searched)
	}
}

func TestSearchLengthLinear(t *testing.T) {
	// The paper measures search cost linear in position; Searched must
	// equal the 1-based position from the head.
	var tb Table
	n := 1000
	for i := 0; i < n; i++ {
		tb.Insert(&PCB{Key: key(i)})
	}
	for _, pos := range []int{1, 20, 100, 500, 1000} {
		tb.cache = nil
		// key(n-pos) is at 1-based position pos from the head.
		_, r := tb.Lookup(key(n - pos))
		if r.Searched != pos {
			t.Fatalf("pos %d: searched %d", pos, r.Searched)
		}
	}
}

func TestHashLookupConstant(t *testing.T) {
	tb := Table{UseHash: true, CacheDisabled: true}
	for i := 0; i < 1000; i++ {
		tb.Insert(&PCB{Key: key(i)})
	}
	for _, i := range []int{0, 500, 999} {
		_, r := tb.Lookup(key(i))
		if r.Searched != 1 {
			t.Fatalf("hash lookup searched %d, want 1", r.Searched)
		}
	}
	// A miss in the hash also misses the wildcard scan, paying the scan.
	_, r := tb.Lookup(Key{LocalAddr: 9, LocalPort: 9})
	if r.Searched != 1001 {
		t.Fatalf("hash miss searched %d, want 1001", r.Searched)
	}
}

func TestWildcardListen(t *testing.T) {
	var tb Table
	listen := &PCB{Key: Key{LocalAddr: 0, LocalPort: 80}, Owner: "listen"}
	tb.Insert(listen)
	probe := Key{LocalAddr: 5, RemoteAddr: 6, LocalPort: 80, RemotePort: 1234}
	p, _ := tb.Lookup(probe)
	if p != listen {
		t.Fatal("wildcard listen PCB not found")
	}
	// A fully specified PCB must win over the wildcard even when the
	// wildcard is nearer the head.
	conn := &PCB{Key: probe, Owner: "conn"}
	tb.Insert(listen) // ensure order: listen at head
	tb.Remove(listen)
	tb.Insert(conn)
	tb.Insert(listen)
	tb.cache = nil
	p, _ = tb.Lookup(probe)
	if p != conn {
		t.Fatalf("specific PCB lost to wildcard: %v", p.Owner)
	}
}

func TestWrongPortNoMatch(t *testing.T) {
	var tb Table
	tb.Insert(&PCB{Key: Key{LocalAddr: 0, LocalPort: 80}})
	if p, _ := tb.Lookup(Key{LocalAddr: 5, RemoteAddr: 6, LocalPort: 81, RemotePort: 9}); p != nil {
		t.Fatal("matched wrong local port")
	}
}

func TestRemove(t *testing.T) {
	var tb Table
	a, b, c := &PCB{Key: key(1)}, &PCB{Key: key(2)}, &PCB{Key: key(3)}
	tb.Insert(a)
	tb.Insert(b)
	tb.Insert(c)
	tb.Remove(b)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if p, _ := tb.Lookup(key(2)); p != nil {
		t.Fatal("removed PCB still found")
	}
	tb.Remove(b) // no-op
	if tb.Len() != 2 {
		t.Fatal("double remove changed the table")
	}
	// Removing the cached PCB must invalidate the cache.
	tb.Lookup(key(3))
	tb.Remove(c)
	if p, _ := tb.Lookup(key(3)); p != nil {
		t.Fatal("stale cache entry returned after Remove")
	}
}

func TestRebind(t *testing.T) {
	var tb Table
	p := &PCB{Key: Key{LocalAddr: 0, LocalPort: 80}}
	tb.Insert(p)
	full := Key{LocalAddr: 1, RemoteAddr: 2, LocalPort: 80, RemotePort: 3}
	tb.Rebind(p, full)
	got, _ := tb.Lookup(full)
	if got != p {
		t.Fatal("rebound PCB not found by new key")
	}
	tbh := Table{UseHash: true}
	p2 := &PCB{Key: key(9)}
	tbh.Insert(p2)
	tbh.Rebind(p2, full)
	got2, _ := tbh.Lookup(full)
	if got2 != p2 {
		t.Fatal("hash table lost rebound PCB")
	}
}

// TestHashMatchesList cross-checks the two organizations against each
// other over random workloads: they must always resolve a probe to a PCB
// with the same key.
func TestHashMatchesList(t *testing.T) {
	r := sim.NewRNG(17)
	f := func(ops []uint16) bool {
		list := Table{CacheDisabled: true}
		hash := Table{CacheDisabled: true, UseHash: true}
		live := map[Key]bool{}
		for _, op := range ops {
			i := int(op % 64)
			k := key(i)
			switch {
			case op%3 == 0 && !live[k]:
				list.Insert(&PCB{Key: k})
				hash.Insert(&PCB{Key: k})
				live[k] = true
			default:
				probe := key(int(r.Uint64()) % 64)
				lp, _ := list.Lookup(probe)
				hp, _ := hash.Lookup(probe)
				if (lp == nil) != (hp == nil) {
					return false
				}
				if lp != nil && lp.Key != hp.Key {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
