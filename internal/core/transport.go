package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/runner"
	"repro/internal/stats"
)

// TransportRow compares one transfer size across TCP and UDP.
type TransportRow struct {
	Size           int
	TCPMicros      float64
	UDPMicros      float64
	TCPOverheadPct float64 // how much slower TCP is than UDP
}

// TransportResult is the extension experiment answering the paper's
// introductory question: "Can we provide evidence that TCP is a viable
// option for a transport layer for RPC?" It compares round-trip latency
// of the same echo workload over TCP (connection state, sequencing,
// ACKs, reliability) and UDP (none of that) on the same simulated ATM
// testbed. If TCP's overhead over the datagram baseline is modest, RPC
// over TCP is viable — the paper's affirmative conclusion.
type TransportResult struct {
	Mode cost.ChecksumMode
	Rows []TransportRow
}

// RunTransportComparison measures TCP and UDP echo latency. Sizes above
// ~4 KB are omitted: this UDP does not fragment, and such RPCs would use
// TCP anyway.
func RunTransportComparison(mode cost.ChecksumMode, o Options) (*TransportResult, error) {
	o = o.normalize()
	res := &TransportResult{Mode: mode}
	var sizes []int
	for _, size := range Sizes {
		if size <= 4000 {
			sizes = append(sizes, size)
		}
	}
	var jobs []runner.Job
	for _, size := range sizes {
		for _, udp := range [2]bool{false, true} {
			size, udp := size, udp
			proto := "tcp"
			if udp {
				proto = "udp"
			}
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("%s size %d", proto, size),
				RunOn: func(_ context.Context, tb *runner.Testbeds, seed uint64) (any, error) {
					cfg := seeded(lab.Config{Link: lab.LinkATM, Mode: mode}, seed)
					if !udp {
						return MeasureRTTOn(tb, cfg, size, o)
					}
					l := tb.Lab(cfg, 2)
					echo, err := l.RunUDPEcho(size, o.Iterations, o.Warmup)
					if err != nil {
						return nil, err
					}
					return echo.MeanRTTMicros(), nil
				},
			})
		}
	}
	outs, err := runner.Run(context.Background(), jobs, o.runnerOpts())
	if err != nil {
		return nil, err
	}
	if err := runner.FirstError(outs); err != nil {
		return nil, err
	}
	for i, size := range sizes {
		tcpRTT := outs[2*i].Value.(float64)
		udpRTT := outs[2*i+1].Value.(float64)
		res.Rows = append(res.Rows, TransportRow{
			Size:           size,
			TCPMicros:      tcpRTT,
			UDPMicros:      udpRTT,
			TCPOverheadPct: (tcpRTT - udpRTT) / udpRTT * 100,
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r *TransportResult) Render() string {
	t := stats.NewTable(
		fmt.Sprintf("Extension: TCP versus UDP echo latency (ATM, %s checksum)", r.Mode),
		"Size", "TCP (µs)", "UDP (µs)", "TCP overhead %")
	for _, row := range r.Rows {
		t.AddRow(row.Size, row.TCPMicros, row.UDPMicros, row.TCPOverheadPct)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString(`TCP's reliability costs tens of percent over a raw datagram — the
"viable transport for RPC" answer the paper's introduction anticipates,
with most of the residual gap being data-touching costs both share.
`)
	return b.String()
}
