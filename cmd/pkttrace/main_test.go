package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// chromeFile mirrors the trace_event shape the Chrome/Perfetto loaders
// require: a traceEvents array whose records carry name/ph/ts/pid.
type chromeFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		S    string  `json:"s"`
		Args map[string]any
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// checkChrome validates the structural contract of a chrome-format run.
func checkChrome(t *testing.T, out []byte) chromeFile {
	t.Helper()
	var f chromeFile
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("invalid Chrome trace_event JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	hosts := map[int]bool{}
	var durations, instants int
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			hosts[e.Pid] = true
		case "X":
			durations++
			if e.Dur <= 0 {
				t.Fatalf("event %d (%q): ph=X with dur %g", i, e.Name, e.Dur)
			}
		case "i":
			instants++
			if e.S == "" {
				t.Fatalf("event %d (%q): instant without scope", i, e.Name)
			}
		default:
			t.Fatalf("event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if e.Ph != "M" && !hosts[e.Pid] {
			t.Fatalf("event %d (%q) references pid %d with no process_name", i, e.Name, e.Pid)
		}
		if e.Ts < 0 {
			t.Fatalf("event %d (%q): negative ts", i, e.Name)
		}
	}
	if durations == 0 || instants == 0 {
		t.Fatalf("want both duration and instant events, got %d/%d", durations, instants)
	}
	return f
}

func TestEchoChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "echo", "-size", "1400", "-iters", "3",
		"-seed", "1994", "-format", "chrome"}, &buf); err != nil {
		t.Fatal(err)
	}
	f := checkChrome(t, buf.Bytes())
	// The two-host echo must show both hosts' lanes.
	pids := map[int]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "M" {
			pids[e.Pid] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("echo trace has %d process lanes, want 2", len(pids))
	}
}

func TestFanInChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "fanin", "-hosts", "5", "-iters", "2",
		"-seed", "7", "-format", "chrome"}, &buf); err != nil {
		t.Fatal(err)
	}
	f := checkChrome(t, buf.Bytes())
	pids := map[int]bool{}
	for _, e := range f.TraceEvents {
		pids[e.Pid] = true
	}
	if len(pids) != 5 {
		t.Fatalf("fan-in trace has %d process lanes, want 5", len(pids))
	}
}

func TestEchoSpansOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-size", "200", "-iters", "2", "-seed", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	var set struct {
		Packets []struct {
			Label  string `json:"label"`
			Events []struct {
				Kind string `json:"kind"`
			} `json:"events"`
			Spans struct {
				Name     string `json:"name"`
				StartNS  int64  `json:"start_ns"`
				EndNS    int64  `json:"end_ns"`
				Children []struct {
					Name    string `json:"name"`
					StartNS int64  `json:"start_ns"`
					EndNS   int64  `json:"end_ns"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"packets"`
	}
	if err := json.Unmarshal(buf.Bytes(), &set); err != nil {
		t.Fatalf("invalid span JSON: %v", err)
	}
	if len(set.Packets) == 0 {
		t.Fatal("no packets reconstructed")
	}
	sawWire := false
	for _, p := range set.Packets {
		if len(p.Events) == 0 {
			t.Fatalf("packet %s has no events", p.Label)
		}
		root := p.Spans
		if root.EndNS < root.StartNS {
			t.Fatalf("packet %s: inverted root span", p.Label)
		}
		for _, c := range root.Children {
			if c.StartNS < root.StartNS || c.EndNS > root.EndNS {
				t.Fatalf("packet %s: child %q escapes root", p.Label, c.Name)
			}
			if c.Name == "wire" {
				sawWire = true
			}
		}
	}
	if !sawWire {
		t.Fatal("no wire flight in any packet's span tree")
	}
}

func TestDeterministicOutput(t *testing.T) {
	once := func() []byte {
		var buf bytes.Buffer
		if err := run([]string{"-workload", "fanin", "-hosts", "4", "-iters", "2",
			"-seed", "3", "-format", "chrome"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(once(), once()) {
		t.Fatal("identical invocations produced different bytes")
	}
}

func TestBadFlagValues(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-link", "token-ring"},
		{"-format", "pcap"},
		{"-hosts", "1"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestWriteToFile(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	var buf bytes.Buffer
	if err := run([]string{"-iters", "2", "-format", "chrome", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("wrote to stdout despite -o")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkChrome(t, blob)
	if !strings.HasSuffix(string(blob), "\n") {
		t.Fatal("file not newline-terminated")
	}
}

// goldenChromeSHA256 is the SHA-256 of the 1400-byte traced echo's
// Chrome trace at seed 3, captured on the pre-overhaul (PR 3) tree; the
// per-packet event stream is the most aliasing-sensitive output the
// tools produce, so pinning it guards both determinism and the mbuf
// pool's no-aliasing contract.
const goldenChromeSHA256 = "0bb26aaadb55cfa71b019d19b2db6d68411d927ce983680e7e1453766e6f0b98"

func TestGoldenChromeByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-workload", "echo", "-size", "1400", "-iters", "4",
		"-seed", "3", "-format", "chrome"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenChromeSHA256 {
		t.Errorf("output hash %s, want golden %s (simulated results changed)",
			got, goldenChromeSHA256)
	}
}
