package atm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
)

// swSink records delivered payloads with their arrival times.
type swSink struct {
	env  *sim.Env
	got  [][]byte
	at   []sim.Time
	srcs []uint32
}

func (s *swSink) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	s.got = append(s.got, mbuf.Linearize(m))
	s.at = append(s.at, s.env.Now())
	s.srcs = append(s.srcs, h.Src)
}

// buildStar assembles n hosts attached to one switch with a full VC
// mesh: host i reaches host j on VCI 32+j, rewritten to 32+i at the
// egress so the arriving VCI names the source.
func buildStar(t *testing.T, env *sim.Env, n int) (*Switch, []*kern.Kernel, []*ip.Stack, []*Driver, []*swSink) {
	t.Helper()
	model := cost.DECstation5000()
	sw := NewSwitch(env)
	kerns := make([]*kern.Kernel, n)
	ips := make([]*ip.Stack, n)
	drvs := make([]*Driver, n)
	sinks := make([]*swSink, n)
	for i := 0; i < n; i++ {
		kerns[i] = kern.New(env, model, fmt.Sprintf("h%d", i))
		ips[i] = ip.NewStack(kerns[i], uint32(i+1))
		a := NewAdapter(kerns[i])
		drvs[i] = NewDriver(kerns[i], a, ips[i])
		sw.AttachPort(a)
		sinks[i] = &swSink{env: env}
		ips[i].Register(99, sinks[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			drvs[i].AddVC(uint32(j+1), DefaultVCI+uint16(j))
			sw.AddVC(i, DefaultVCI+uint16(j), j, DefaultVCI+uint16(i))
		}
	}
	return sw, kerns, ips, drvs, sinks
}

func TestSwitchDeliversOnlyToAddressedHost(t *testing.T) {
	env := sim.NewEnv()
	sw, kerns, ips, _, sinks := buildStar(t, env, 3)
	payload := make([]byte, 900)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := kerns[0].Pool.AllocCluster()
		m.Append(payload)
		ips[0].Output(p, 3, 99, m) // host 0 -> host 2
	}))
	env.Run()
	if len(sinks[2].got) != 1 || !bytes.Equal(sinks[2].got[0], payload) {
		t.Fatal("addressed host did not receive the datagram intact")
	}
	if len(sinks[1].got) != 0 {
		t.Fatal("unaddressed host received the datagram")
	}
	if sw.CellsSwitched == 0 {
		t.Fatal("switch forwarded no cells")
	}
}

func TestSwitchVCIRewriteNamesSource(t *testing.T) {
	// Hosts 1 and 2 both send to host 0; the cells must arrive on
	// distinct VCIs (32+1 and 32+2) and reassemble independently even
	// though they interleave at host 0's adapter.
	env := sim.NewEnv()
	_, kerns, ips, drvs, sinks := buildStar(t, env, 3)
	payloads := [][]byte{nil, make([]byte, 2000), make([]byte, 2000)}
	env.RNG().Fill(payloads[1])
	env.RNG().Fill(payloads[2])
	for i := 1; i <= 2; i++ {
		i := i
		env.Spawn(fmt.Sprintf("tx%d", i), sim.Steps(func(p *sim.Proc) {
			m := kerns[i].Pool.AllocCluster()
			m.Append(payloads[i])
			ips[i].Output(p, 1, 99, m)
		}))
	}
	env.Run()
	if len(sinks[0].got) != 2 {
		t.Fatalf("host 0 delivered %d datagrams, want 2", len(sinks[0].got))
	}
	for k, got := range sinks[0].got {
		src := sinks[0].srcs[k]
		if !bytes.Equal(got, payloads[src-1]) {
			t.Fatalf("datagram %d from host %d corrupted by interleaved reassembly", k, src-1)
		}
	}
	if len(drvs[0].reasms) != 2 {
		t.Fatalf("host 0 used %d reassembly contexts, want one per source VCI", len(drvs[0].reasms))
	}
}

func TestSwitchDropsUnroutedVC(t *testing.T) {
	env := sim.NewEnv()
	model := cost.DECstation5000()
	sw := NewSwitch(env)
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa := NewAdapter(ka)
	ab := NewAdapter(kb)
	NewDriver(ka, aa, ipa)
	NewDriver(kb, ab, ipb)
	sw.AttachPort(aa)
	sw.AttachPort(ab)
	// No VC table entries: everything the default PVC carries is
	// unrouted at the switch.
	sink := &swSink{env: env}
	ipb.Register(99, sink)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 40))
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(sink.got) != 0 {
		t.Fatal("datagram delivered despite missing VC route")
	}
	if sw.CellsUnrouted == 0 {
		t.Fatal("unrouted cells not counted")
	}
}

func TestSwitchThreeHostDeterminism(t *testing.T) {
	// A 3-host star exchanging random payloads must produce identical
	// delivery timelines for a fixed seed. CI runs this under the race
	// detector.
	run := func() ([]sim.Time, [][]byte) {
		env := sim.NewEnv()
		env.Seed(71)
		_, kerns, ips, _, sinks := buildStar(t, env, 3)
		for i := 0; i < 3; i++ {
			i := i
			env.Spawn(fmt.Sprintf("tx%d", i), sim.LoopN(4, func(p *sim.Proc, k int) {
				payload := make([]byte, 200+env.RNG().Intn(1800))
				env.RNG().Fill(payload)
				m := kerns[i].Pool.AllocCluster()
				m.Append(payload)
				ips[i].Output(p, uint32((i+1)%3+1), 99, m)
			}))
		}
		env.Run()
		var at []sim.Time
		var got [][]byte
		for _, s := range sinks {
			at = append(at, s.at...)
			got = append(got, s.got...)
		}
		return at, got
	}
	at1, got1 := run()
	at2, got2 := run()
	if len(at1) != len(at2) || len(at1) != 3*4 {
		t.Fatalf("delivery counts differ or short: %d vs %d", len(at1), len(at2))
	}
	for i := range at1 {
		if at1[i] != at2[i] || !bytes.Equal(got1[i], got2[i]) {
			t.Fatalf("delivery %d differs between runs", i)
		}
	}
}
