package tcp

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/pcb"
	"repro/internal/sim"
	"repro/internal/sock"
	"repro/internal/trace"
)

// Stats counts protocol events across a stack, for tests and reports.
type Stats struct {
	SegsIn          int64
	SegsOut         int64
	FastPathData    int64 // header-prediction hits, pure-data case
	FastPathAck     int64 // header-prediction hits, pure-ACK case
	SlowPath        int64
	ChecksumErrors  int64
	Retransmits     int64
	FastRetransmits int64
	DelayedAcks     int64
	DupSegs         int64
	OutOfOrderSegs  int64
	PCBCacheHits    int64
	PCBListSearched int64
}

// Stack is one host's TCP layer. It implements ip.Handler.
type Stack struct {
	K  *kern.Kernel
	IP *ip.Stack

	// Table demultiplexes incoming segments. Its organization (list
	// versus hash, cache on or off) is the §3 experimental variable.
	Table pcb.Table

	// PredictionEnabled controls both halves of header prediction: the
	// PCB cache and the tcp_input fast path. The paper's "no prediction"
	// kernel disables both.
	PredictionEnabled bool

	// Mode is the checksum configuration (§4). Both ends of a
	// connection must agree, which the paper arranges with the
	// Alternate Checksum Option at connection setup.
	Mode cost.ChecksumMode

	// SockBuf, when positive, overrides the send and receive socket
	// buffer high-water marks of every socket the stack creates — the
	// buffering knob behind the paper's back-to-back-segments
	// observation (sock.DefaultHiwat reproduces it; smaller values
	// serialize large transfers behind window updates).
	SockBuf int

	Stats Stats

	listeners map[uint16]*Listener
	nextPort  uint16
	nextISS   Seq

	// deferred protocol work (timer expirations) executed by the
	// stack's service process, which can block on driver FIFOs.
	due   []func(p *sim.Proc)
	workQ *sim.WaitQueue
}

// NewStack creates the TCP layer for a host, registers it with IP, and
// starts its timer service process.
func NewStack(k *kern.Kernel, ipStack *ip.Stack) *Stack {
	s := &Stack{
		K:                 k,
		IP:                ipStack,
		PredictionEnabled: true,
		listeners:         make(map[uint16]*Listener),
		nextPort:          1024,
		nextISS:           1, // deterministic ISS: reproducibility over security
		workQ:             k.Env.NewWaitQueue(k.Name + ".tcp.work"),
	}
	ipStack.Register(ip.ProtoTCP, s)
	k.Env.Spawn(k.Name+".tcptimer", s.workLoop)
	return s
}

// Reset returns the stack to its just-constructed state for testbed
// reuse: demultiplexing table emptied (retaining its hash buckets),
// listeners and connections discarded, the deterministic port and ISS
// counters rewound, statistics and deferred work cleared. The timer
// service process stays parked on its wait queue, exactly where a fresh
// stack's lands after its spawn event. Configuration knobs the lab
// applies after construction (Mode, SockBuf, PredictionEnabled,
// Table.UseHash) are reset to their constructed defaults; the caller
// re-applies the trial's values afterwards, as it would on a new stack.
func (s *Stack) Reset() {
	s.Table.Reset()
	clear(s.listeners)
	s.nextPort = 1024
	s.nextISS = 1
	s.Stats = Stats{}
	s.PredictionEnabled = true
	s.Mode = cost.ChecksumStandard
	s.SockBuf = 0
	for i := range s.due {
		s.due[i] = nil
	}
	s.due = s.due[:0]
}

// dispatch queues protocol work for the service process. Timer events use
// it because event callbacks cannot block on FIFO space.
func (s *Stack) dispatch(fn func(p *sim.Proc)) {
	s.due = append(s.due, fn)
	s.workQ.Wake()
}

func (s *Stack) workLoop(p *sim.Proc) {
	for {
		for len(s.due) == 0 {
			s.workQ.Wait(p)
		}
		fn := s.due[0]
		copy(s.due, s.due[1:])
		s.due = s.due[:len(s.due)-1]
		fn(p)
	}
}

// allocPort returns a fresh ephemeral port.
func (s *Stack) allocPort() uint16 {
	s.nextPort++
	return s.nextPort
}

// newConn builds a connection bound to a fresh socket.
func (s *Stack) newConn() *Conn {
	so := sock.New(s.K)
	so.Mode = s.Mode
	if s.SockBuf > 0 {
		so.Snd.Hiwat = s.SockBuf
		so.Rcv.Hiwat = s.SockBuf
	}
	c := &Conn{
		S:            s,
		K:            s.K,
		so:           so,
		state:        StateClosed,
		mss:          defaultMSS,
		wantCksumOff: s.Mode == cost.ChecksumNone,
		outWait:      s.K.Env.NewWaitQueue(s.K.Name + ".tcp.outlock"),
	}
	c.rexmtCb = c.rexmtTimer
	c.delackCb = c.delackTimer
	so.Proto = c
	return c
}

// mtuMSS derives the MSS from the attached interface.
func (s *Stack) mtuMSS() int {
	return s.IP.If.MTU() - ip.HeaderLen - HeaderLen
}

// Connect opens a connection to dst:port, blocking the calling process
// until establishment completes (or fails). It returns the connected
// socket.
func (s *Stack) Connect(p *sim.Proc, dst uint32, port uint16) (*sock.Socket, *Conn, error) {
	c := s.newConn()
	key := pcb.Key{
		LocalAddr:  s.IP.Addr,
		RemoteAddr: dst,
		LocalPort:  s.allocPort(),
		RemotePort: port,
	}
	c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
	c.so.TraceID = connTraceID(key)
	s.Table.Insert(c.pcbEntry)
	s.nextISS += 64000
	c.iss = s.nextISS
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.mss = s.mtuMSS()
	c.cwnd = c.mss
	c.ssthresh = 65535
	c.state = StateSynSent
	c.output(p)
	for !c.so.Connected && c.so.Err == nil {
		c.so.StateQ.Wait(p)
	}
	if c.so.Err != nil {
		return nil, nil, c.so.Err
	}
	return c.so, c, nil
}

// InsertIdlePCB inserts a synthetic inactive connection into the
// demultiplexing table. The §3 experiments use it to control the PCB list
// length the lookup must search, standing in for the paper's population of
// daemon connections.
func (s *Stack) InsertIdlePCB(remoteAddr uint32, remotePort uint16) {
	c := s.newConn()
	key := pcb.Key{
		LocalAddr:  s.IP.Addr,
		RemoteAddr: remoteAddr,
		LocalPort:  s.allocPort(),
		RemotePort: remotePort,
	}
	c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
	s.Table.Insert(c.pcbEntry)
}

// Listener accepts incoming connections on a port.
type Listener struct {
	s       *Stack
	port    uint16
	pcbEnt  *pcb.PCB
	backlog []*Conn
	wq      *sim.WaitQueue
}

// Listen starts accepting connections on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if _, busy := s.listeners[port]; busy {
		return nil, fmt.Errorf("tcp: port %d already listening", port)
	}
	l := &Listener{
		s:    s,
		port: port,
		wq:   s.K.Env.NewWaitQueue(fmt.Sprintf("%s.tcp.accept:%d", s.K.Name, port)),
	}
	l.pcbEnt = &pcb.PCB{Key: pcb.Key{LocalPort: port}, Owner: l}
	s.Table.Insert(l.pcbEnt)
	s.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection is established and returns its socket.
func (l *Listener) Accept(p *sim.Proc) (*sock.Socket, *Conn) {
	for len(l.backlog) == 0 {
		l.wq.Wait(p)
	}
	c := l.backlog[0]
	copy(l.backlog, l.backlog[1:])
	l.backlog = l.backlog[:len(l.backlog)-1]
	return c.so, c
}

// Input implements ip.Handler: checksum verification, PCB demultiplexing
// (with the single-entry cache), header prediction, and the slow path.
// The mbuf chain m holds the TCP segment (header plus data).
func (s *Stack) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	k := s.K
	s.Stats.SegsIn++
	segLen := mbuf.ChainLen(m)

	// Header scratch on the stack (20 bytes plus the two options this
	// stack uses); Parse copies what it keeps, so this must not escape.
	var raw [maxHeaderLen]byte
	nn := mbuf.CopyBytesTo(m, 0, maxHeaderLen, raw[:])
	th, off, err := Parse(raw[:nn])
	if err != nil {
		k.Pool.Free(m)
		return
	}

	// Tag the process with the segment's on-wire identity for the rest
	// of input processing: the PCB lookup, checksum verification, and
	// tcp_input charges all attribute to this packet in the event
	// stream. (A response transmitted from inside input pushes its own
	// identity on top.) Untraced runs skip the push — the tag stack
	// exists only for trace attribution and pushing boxes the identity,
	// one heap allocation per segment.
	var pktID trace.PacketID
	if k.Trace.PacketsEnabled() {
		pktID = trace.PacketID{
			Src:     h.Src,
			Dst:     h.Dst,
			SrcPort: th.SrcPort,
			DstPort: th.DstPort,
			Seq:     uint32(th.Seq),
		}
		p.PushTag(pktID)
		defer p.PopTag()
		k.Trace.Event(trace.Event{
			Kind: trace.EvTCPInput, At: k.Now(), ID: pktID,
			Len: segLen, Aux: int64(th.Flags),
		})
	}

	// PCB demultiplexing: single-entry cache, then list or hash search.
	probe := pcb.Key{
		LocalAddr:  h.Dst,
		RemoteAddr: h.Src,
		LocalPort:  th.DstPort,
		RemotePort: th.SrcPort,
	}
	s.Table.CacheDisabled = !s.PredictionEnabled
	ent, res := s.Table.Lookup(probe)
	if k.Trace.PacketRecording() {
		searched := int64(res.Searched)
		if res.CacheHit {
			searched = -1
		}
		k.Trace.Event(trace.Event{
			Kind: trace.EvPCBLookup, At: k.Now(), ID: pktID, Aux: searched,
		})
	}
	if res.CacheHit {
		s.Stats.PCBCacheHits++
		k.Use(p, trace.LayerTCPSegmentRx, k.Cost.PCBCacheHit)
	} else {
		s.Stats.PCBListSearched += int64(res.Searched)
		var searchCost sim.Time
		if s.Table.UseHash {
			searchCost = k.Cost.PCBHashLookup
		} else {
			searchCost = k.Cost.PCBLookupFixed +
				sim.Time(res.Searched)*k.Cost.PCBLookupPerEntry
		}
		k.Use(p, trace.LayerTCPSegmentRx, searchCost)
	}
	if ent == nil {
		// No connection: drop (a full stack would send RST).
		k.Pool.Free(m)
		return
	}

	// Checksum verification. BSD verifies before the PCB lookup; with
	// the Alternate Checksum Option the mode is per connection, so the
	// lookup has to come first. A segment whose corrupted ports demux
	// to the wrong (or no) connection is still dropped — here, by that
	// connection's own checksum, or by the sequence checks. Whether the
	// checksum applies: never for SYNs (negotiation is not complete),
	// and not when both ends negotiated it off.
	verify := true
	if conn, ok := ent.Owner.(*Conn); ok &&
		conn.cksumOff && th.Flags&FlagSYN == 0 {
		verify = false
	}
	if verify && !s.verifyChecksum(p, h, m, segLen) {
		s.Stats.ChecksumErrors++
		k.Pool.Free(m)
		return
	}

	// Strip the TCP header; the remaining chain is the segment data.
	m = k.Pool.Drop(m, off)

	switch owner := ent.Owner.(type) {
	case *Listener:
		k.Pool.Free(m)
		s.listenerInput(p, owner, h, th)
	case *Conn:
		owner.input(p, th, m)
	default:
		panic("tcp: unknown PCB owner")
	}
}

// listenerInput handles a segment addressed to a listening socket: a SYN
// creates an embryonic connection; anything else is dropped.
func (s *Stack) listenerInput(p *sim.Proc, l *Listener, h ip.Header, th Header) {
	k := s.K
	k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputSlow)
	s.Stats.SlowPath++
	if th.Flags&FlagSYN == 0 || th.Flags&FlagACK != 0 {
		return
	}
	c := s.newConn()
	key := pcb.Key{
		LocalAddr:  s.IP.Addr,
		RemoteAddr: h.Src,
		LocalPort:  l.port,
		RemotePort: th.SrcPort,
	}
	c.pcbEntry = &pcb.PCB{Key: key, Owner: c}
	c.so.TraceID = connTraceID(key)
	s.Table.Insert(c.pcbEntry)
	c.listener = l
	s.nextISS += 64000
	c.iss = s.nextISS
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.irs = th.Seq
	c.rcvNxt = th.Seq.Add(1)
	c.mss = s.mtuMSS()
	if th.MSS != 0 && int(th.MSS) < c.mss {
		c.mss = int(th.MSS)
	}
	if th.AltCksum == AltCksumNone && c.wantCksumOff {
		c.cksumOff = true
	}
	c.cwnd = c.mss
	c.ssthresh = 65535
	c.sndWnd = int(th.Win)
	c.state = StateSynRcvd
	c.flagAckNow = true
	c.output(p)
}

// connTraceID is the connection-scoped trace identity (4-tuple, Seq
// zero) socket-layer events are stamped with.
func connTraceID(key pcb.Key) trace.PacketID {
	return trace.PacketID{
		Src:     key.LocalAddr,
		Dst:     key.RemoteAddr,
		SrcPort: key.LocalPort,
		DstPort: key.RemotePort,
	}
}

// verifyChecksum checks the segment's TCP checksum according to the
// stack's mode, charging the appropriate cost, and reports validity.
func (s *Stack) verifyChecksum(p *sim.Proc, h ip.Header, m *mbuf.Mbuf, segLen int) bool {
	k := s.K
	switch s.Mode {
	case cost.ChecksumIntegrated:
		return verifyIntegrated(p, k, h, m, segLen)
	default:
		nm := mbuf.ChainCount(m)
		k.Use(p, trace.LayerTCPCksumRx,
			k.Cost.TCPKernelChecksum.Cost(segLen)+sim.Time(nm)*k.Cost.TCPCksumPerMbuf)
		ps := pseudoPartial(h, segLen)
		for c := m; c != nil; c = c.Next() {
			ps.Add(c.Bytes())
		}
		return ps.Sum16() == 0xffff
	}
}
