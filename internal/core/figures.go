package core

import (
	"fmt"
	"strings"
)

// barChart renders grouped horizontal bars, one group per transfer size,
// one bar per series — an ASCII rendering of the paper's figures.
func barChart(title string, sizes []int, series []string, value func(series string, size int) float64, unit string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	maxV := 0.0
	for _, s := range series {
		for _, sz := range sizes {
			if v := value(s, sz); v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		return b.String()
	}
	const width = 56
	labelW := 0
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for _, sz := range sizes {
		fmt.Fprintf(&b, "%d bytes\n", sz)
		for _, s := range series {
			v := value(s, sz)
			n := int(v / maxV * width)
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %.0f%s\n", labelW, s, strings.Repeat("#", n), v, unit)
		}
	}
	return b.String()
}

// RenderFigure1 draws Figure 1 — round-trip times with and without header
// prediction — from a regenerated Table 4.
func RenderFigure1(t4 *CompareResult) string {
	byuSize := map[int]CompareRow{}
	for _, r := range t4.Rows {
		byuSize[r.Size] = r
	}
	return barChart(
		"Figure 1: Effects of Header Prediction (round-trip µs)",
		Sizes,
		[]string{"Without Prediction", "With Prediction"},
		func(series string, size int) float64 {
			if series == "Without Prediction" {
				return byuSize[size].A
			}
			return byuSize[size].B
		},
		"µs",
	)
}

// RenderFigure2 draws Figure 2 — the three copy/checksum strategies —
// from a regenerated Table 5.
func RenderFigure2(t5 *CksumResult) string {
	bySize := map[int]CksumRow{}
	for _, r := range t5.Rows {
		bySize[r.Size] = r
	}
	return barChart(
		"Figure 2: Copy and Checksum Measurements (µs)",
		Sizes,
		[]string{"Copy & ULTRIX Checksum", "Copy & Optimized Checksum", "Integrated Copy & Checksum"},
		func(series string, size int) float64 {
			row := bySize[size]
			switch series {
			case "Copy & ULTRIX Checksum":
				return row.ULTRIXTotal
			case "Copy & Optimized Checksum":
				return row.ULTRIXBcopy + row.OptimizedChecksum
			default:
				return row.IntegratedCopyCk
			}
		},
		"µs",
	)
}
