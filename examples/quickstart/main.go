// Quickstart: build the paper's testbed — two simulated DECstation
// 5000/200s joined by FORE TCA-100 ATM adapters — run one round-trip echo
// measurement, and print the transmit- and receive-side latency
// breakdowns for a 200-byte transfer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lab"
)

func main() {
	// A Config describes one experimental setup; the zero value plus a
	// link choice is the paper's baseline (BSD 4.4 alpha TCP, standard
	// checksum, header prediction on).
	cfg := lab.Config{Link: lab.LinkATM}

	// Measure the mean round-trip time of a 200-byte echo, the way the
	// paper does: repeated send/receive pairs on one connection.
	l := lab.New(cfg)
	res, err := l.RunEcho(200, 50, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("200-byte round trip over %s: %.1f µs (paper: 1520 µs)\n\n",
		cfg.Link, res.MeanRTTMicros())

	// Decompose the latency by protocol layer, reproducing the paper's
	// Tables 2 and 3 for this size.
	tx, rx, err := core.MeasureBreakdowns(cfg, 200, 50, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Transmit side (write syscall → last byte at the adapter):")
	for i, layer := range core.TxLayers {
		label := []string{"User", "TCP.checksum", "TCP.mcopy", "TCP.segment", "IP", "ATM"}[i]
		fmt.Printf("  %-13s %7.1f µs\n", label, tx.Rows[layer])
	}
	fmt.Printf("  %-13s %7.1f µs\n\n", "Total", tx.Total)

	fmt.Println("Receive side (last cell arrival → read returns):")
	for i, layer := range core.RxLayers {
		label := []string{"ATM", "IPQ", "IP", "TCP.checksum", "TCP.segment", "Wakeup", "User"}[i]
		fmt.Printf("  %-13s %7.1f µs\n", label, rx.Rows[layer])
	}
	fmt.Printf("  %-13s %7.1f µs\n", "Total", rx.Total)
}
