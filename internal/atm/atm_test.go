package atm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestCellHeaderRoundTrip(t *testing.T) {
	f := func(gfc, vpi uint8, vci uint16, pt uint8, clp bool) bool {
		h := CellHeader{GFC: gfc & 0xf, VPI: vpi, VCI: vci, PT: pt & 0x7, CLP: clp}
		var c Cell
		h.Marshal(&c)
		got, err := ParseHeader(&c)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellHeaderHECDetectsCorruption(t *testing.T) {
	var c Cell
	CellHeader{VCI: 32}.Marshal(&c)
	for i := 0; i < 4; i++ {
		for bit := 0; bit < 8; bit++ {
			c[i] ^= 1 << bit
			if _, err := ParseHeader(&c); err == nil {
				t.Fatalf("HEC missed flip at byte %d bit %d", i, bit)
			}
			c[i] ^= 1 << bit
		}
	}
}

func TestCellsForDatagram(t *testing.T) {
	cases := map[int]int{
		0:    1, // CPCS overhead alone
		1:    1,
		36:   1, // 36+8=44, exactly one cell
		37:   2, // padded to 40, +8 = 48 > 44
		4000: 92,
		8000: 182, // 8008/44 exactly
	}
	for n, want := range cases {
		if got := CellsForDatagram(n); got != want {
			t.Errorf("CellsForDatagram(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	var seg Segmenter
	seg.VCI = 32
	var re Reassembler
	f := func(n uint16) bool {
		size := int(n) % MaxDatagram
		data := make([]byte, size)
		rng.Fill(data)
		cells := seg.Segment(data)
		if len(cells) != CellsForDatagram(size) {
			return false
		}
		for i := range cells[:len(cells)-1] {
			dg, err := re.Push(&cells[i])
			if dg != nil || err != nil {
				return false
			}
		}
		dg, err := re.Push(&cells[len(cells)-1])
		return err == nil && dg != nil && bytes.Equal(dg, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTooLargePanics(t *testing.T) {
	var seg Segmenter
	defer func() {
		if recover() == nil {
			t.Fatal("oversized datagram did not panic")
		}
	}()
	seg.Segment(make([]byte, MaxDatagram+1))
}

func TestReassemblerDetectsLostCell(t *testing.T) {
	var seg Segmenter
	var re Reassembler
	data := make([]byte, 500)
	cells := seg.Segment(data)
	if len(cells) < 3 {
		t.Fatal("want multi-cell frame")
	}
	// Drop a middle cell.
	gotErr := false
	for i := range cells {
		if i == 2 {
			continue
		}
		dg, err := re.Push(&cells[i])
		if err != nil {
			gotErr = true
		}
		if dg != nil {
			t.Fatal("reassembled despite a lost cell")
		}
	}
	if !gotErr {
		t.Fatal("lost cell not detected")
	}
	if re.Errors == 0 {
		t.Fatal("error counter not incremented")
	}
	// Recovery: the next whole frame must reassemble.
	cells2 := seg.Segment(data)
	var dg []byte
	for i := range cells2 {
		var err error
		dg, err = re.Push(&cells2[i])
		if err != nil {
			t.Fatalf("clean frame after loss failed: %v", err)
		}
	}
	if dg == nil {
		t.Fatal("clean frame after loss did not complete")
	}
}

func TestReassemblerDetectsPayloadCorruption(t *testing.T) {
	var seg Segmenter
	var re Reassembler
	data := make([]byte, 100)
	cells := seg.Segment(data)
	cells[0][7] ^= 0x40 // corrupt SAR payload
	sawErr := false
	for i := range cells {
		if _, err := re.Push(&cells[i]); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("CRC-10 missed payload corruption")
	}
}

func TestReassemblerDetectsSplicedFrames(t *testing.T) {
	var seg Segmenter
	var re Reassembler
	a := seg.Segment(make([]byte, 200)) // 5 cells
	b := seg.Segment(make([]byte, 200))
	// Frame B's head replaced with frame A's head: Btag/SN mismatch must
	// prevent silent splicing.
	mixed := append(append([]Cell{}, a[:2]...), b[2:]...)
	ok := false
	for i := range mixed {
		dg, err := re.Push(&mixed[i])
		if err != nil {
			ok = true
		}
		if dg != nil {
			t.Fatal("spliced frame reassembled")
		}
	}
	if !ok {
		t.Fatal("splice undetected")
	}
}

func TestCRC10KnownProperties(t *testing.T) {
	if crc10(nil) != 0 {
		t.Fatal("crc10(nil) != 0")
	}
	a := crc10([]byte{1, 2, 3})
	b := crc10([]byte{1, 2, 4})
	if a == b {
		t.Fatal("crc10 collision on adjacent inputs")
	}
	if a > 0x3ff || b > 0x3ff {
		t.Fatal("crc10 wider than 10 bits")
	}
}

// twoAdapters builds a connected adapter pair on one simulation.
func twoAdapters(t *testing.T) (*sim.Env, *kern.Kernel, *kern.Kernel, *Adapter, *Adapter) {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	a, b := NewAdapter(ka), NewAdapter(kb)
	Connect(a, b)
	return env, ka, kb, a, b
}

func TestAdapterWirePacing(t *testing.T) {
	env, _, _, a, b := twoAdapters(t)
	var seg Segmenter
	cells := seg.Segment(make([]byte, 200))
	for _, c := range cells {
		a.PushTx(c)
	}
	env.Run()
	if b.RxAvail() != len(cells) {
		t.Fatalf("delivered %d of %d cells", b.RxAvail(), len(cells))
	}
	// Wire time: n cells at CellTime each plus propagation.
	want := sim.Time(len(cells))*a.CellTime() + a.K.Cost.ATMPropagation
	if env.Now() != want {
		t.Fatalf("delivery finished at %v, want %v", env.Now(), want)
	}
	if b.FramesPending() != 1 {
		t.Fatalf("FramesPending = %d, want 1", b.FramesPending())
	}
}

func TestAdapterTxFIFOLimit(t *testing.T) {
	_, _, _, a, _ := twoAdapters(t)
	var c Cell
	CellHeader{VCI: 32}.Marshal(&c)
	for i := 0; i < TxFIFOCells; i++ {
		a.PushTx(c)
	}
	if a.TxSpace() != 0 {
		t.Fatalf("TxSpace = %d after filling", a.TxSpace())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push into full FIFO did not panic")
		}
	}()
	a.PushTx(c)
}

func TestAdapterRxOverflowDropsCells(t *testing.T) {
	env, _, _, a, b := twoAdapters(t)
	var seg Segmenter
	// Push far more cells than the 292-cell receive FIFO without
	// draining b; excess must be dropped and counted.
	for i := 0; i < 10; i++ {
		cells := seg.Segment(make([]byte, 1400))
		for _, c := range cells {
			for a.TxSpace() == 0 {
				env.Step()
			}
			a.PushTx(c)
		}
	}
	env.Run()
	if b.RxAvail() != RxFIFOCells {
		t.Fatalf("rx FIFO holds %d, want cap %d", b.RxAvail(), RxFIFOCells)
	}
	if b.RxOverflows == 0 || b.CellsDropped == 0 {
		t.Fatal("overflow not counted")
	}
}

// TestReorderHeldCellFlushed pins the hold-back backstop: a cell held
// for reordering on a link that then goes quiet must be released by the
// flush timer, not stranded forever as silent uncounted loss (e.g. the
// final cell of a teardown segment, with no retransmission to flush it).
func TestReorderHeldCellFlushed(t *testing.T) {
	env, _, _, a, b := twoAdapters(t)
	b.SetImpairments(sim.GEParams{}, 1.0, 4, 7) // hold every arrival
	var c Cell
	CellHeader{VCI: 32}.Marshal(&c)
	a.PushTx(c) // the link's only traffic
	env.Run()
	if b.RxAvail() != 1 {
		t.Fatalf("RxAvail = %d, want 1 (held cell flushed on idle link)", b.RxAvail())
	}
	if b.CellsReordered != 1 {
		t.Fatalf("CellsReordered = %d, want 1", b.CellsReordered)
	}
}

func TestAdapterDropNext(t *testing.T) {
	env, _, _, a, b := twoAdapters(t)
	b.DropNext = true
	var c Cell
	CellHeader{VCI: 32}.Marshal(&c)
	a.PushTx(c)
	a.PushTx(c)
	env.Run()
	if b.RxAvail() != 1 {
		t.Fatalf("RxAvail = %d, want 1 (first cell dropped)", b.RxAvail())
	}
	if b.CellsDropped != 1 {
		t.Fatalf("CellsDropped = %d", b.CellsDropped)
	}
}

// buildStack wires adapter+driver+ip+sink for driver-level tests.
type sinkHandler struct {
	got [][]byte
}

func (s *sinkHandler) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	s.got = append(s.got, mbuf.Linearize(m))
}

func TestDriverEndToEndDatagram(t *testing.T) {
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa, ab := NewAdapter(ka), NewAdapter(kb)
	Connect(aa, ab)
	NewDriver(ka, aa, ipa)
	db := NewDriver(kb, ab, ipb)
	sink := &sinkHandler{}
	ipb.Register(99, sink)

	payload := make([]byte, 3000)
	env.RNG().Fill(payload)
	env.Spawn("sender", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.AllocCluster()
		m.Append(payload)
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(sink.got))
	}
	if !bytes.Equal(sink.got[0], payload) {
		t.Fatal("payload corrupted in transit")
	}
	if db.FramesIn != 1 {
		t.Fatalf("FramesIn = %d", db.FramesIn)
	}
}

func TestDriverChargesATMLayer(t *testing.T) {
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ka.Trace.Enable()
	kb.Trace.Enable()
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa, ab := NewAdapter(ka), NewAdapter(kb)
	Connect(aa, ab)
	NewDriver(ka, aa, ipa)
	NewDriver(kb, ab, ipb)
	ipb.Register(99, &sinkHandler{})

	env.Spawn("sender", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 50))
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()

	txSum := sim.Time(0)
	for _, s := range ka.Trace.Spans() {
		if s.Layer == trace.LayerATMTx {
			txSum += s.Duration()
		}
	}
	// 70-byte datagram: 2 cells. Expect frame fixed + 2 per-cell.
	want := model.ATMTxFrameFixed + 2*model.ATMTxPerCell
	if txSum != want {
		t.Fatalf("ATM tx charge %v, want %v", txSum, want)
	}
	rxSum := sim.Time(0)
	for _, s := range kb.Trace.Spans() {
		if s.Layer == trace.LayerATMRx {
			rxSum += s.Duration()
		}
	}
	// Frame fixed + 2 per-cell + 2 mbuf allocations (header mbuf and
	// payload mbuf) charged by deliver.
	wantRx := model.ATMRxFrameFixed + 2*model.ATMRxPerCell + 2*model.MbufAlloc
	if rxSum != wantRx {
		t.Fatalf("ATM rx charge %v, want %v", rxSum, wantRx)
	}
}

func TestDriverRecoversAfterCellLoss(t *testing.T) {
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa, ab := NewAdapter(ka), NewAdapter(kb)
	Connect(aa, ab)
	NewDriver(ka, aa, ipa)
	db := NewDriver(kb, ab, ipb)
	sink := &sinkHandler{}
	ipb.Register(99, sink)

	ab.DropNext = true // lose the first cell of datagram 1
	// Alternating steps: even iterations transmit, odd ones space the two
	// datagrams apart (each blocking action must end its own step).
	env.Spawn("sender", sim.LoopN(4, func(p *sim.Proc, i int) {
		if i%2 == 0 {
			m := ka.Pool.AllocCluster()
			m.Append(make([]byte, 2000))
			ipa.Output(p, 2, 99, m)
		} else {
			p.Sleep(5 * sim.Millisecond)
		}
	}))
	env.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1 (first lost)", len(sink.got))
	}
	if db.ReassemblyErrors == 0 {
		t.Fatal("loss not surfaced as reassembly error")
	}
}

// TestHECErrorOnFrameEndConsumesPending pins the bookkeeping fix for
// corrupted frame-end cells: when the HEC rejects a cell whose payload
// marks end-of-frame, the driver must still consume the adapter's
// pending-frame count and queued arrival stamp. Otherwise both stay
// desynchronized forever and every later frame's wire-arrival event is
// stamped with the previous frame's time.
func TestHECErrorOnFrameEndConsumesPending(t *testing.T) {
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	kb.Trace.EnablePackets()
	kb.Trace.Enable()
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa, ab := NewAdapter(ka), NewAdapter(kb)
	Connect(aa, ab)
	NewDriver(ka, aa, ipa)
	db := NewDriver(kb, ab, ipb)
	sink := &sinkHandler{}
	ipb.Register(99, sink)

	// First frame: single-cell datagram whose header is corrupted on
	// the wire — the HEC rejects it at the driver, but its payload
	// still reads as frame-end at the adapter.
	var seg Segmenter
	seg.VCI = DefaultVCI
	small := make([]byte, 20)
	cells := seg.Segment(small)
	if len(cells) != 1 || !IsFrameEnd(&cells[0]) {
		t.Fatalf("expected one frame-end cell, got %d", len(cells))
	}
	cells[0][0] ^= 0x01 // header bit flip: caught by the HEC
	ab.receive(cells[0])
	env.Run()
	if db.HECErrors != 1 {
		t.Fatalf("HECErrors = %d, want 1", db.HECErrors)
	}
	if got := ab.FramesPending(); got != 0 {
		t.Fatalf("FramesPending = %d after HEC-discarded frame end", got)
	}
	if got := len(ab.arrivals); got != 0 {
		t.Fatalf("arrivals queue holds %d stale entries", got)
	}

	// Second frame: a clean datagram must carry its own arrival time,
	// not the corrupted frame's.
	payload := make([]byte, 200)
	env.RNG().Fill(payload)
	env.Spawn("sender", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.AllocCluster()
		m.Append(payload)
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(sink.got))
	}
	var arrive []trace.Event
	for _, e := range kb.Trace.Events() {
		if e.Kind == trace.EvWireArrive {
			arrive = append(arrive, e)
		}
	}
	if len(arrive) != 1 {
		t.Fatalf("EvWireArrive events = %d, want 1", len(arrive))
	}
	if mark, ok := kb.Trace.LastMark(trace.MarkFrameArrival, sim.MaxTime); !ok || arrive[0].At != mark {
		t.Fatalf("wire-arrival stamped %v, want the frame's own arrival %v", arrive[0].At, mark)
	}
}

// TestCRCTablesMatchBitwiseReference pins the table-driven CRC-10 and
// HEC to the bit-at-a-time reference implementations: the tables are a
// wall-clock optimization and must compute identical values, or cells
// would stop reassembling and corruption detection would drift.
func TestCRCTablesMatchBitwiseReference(t *testing.T) {
	rng := sim.NewRNG(11)
	buf := make([]byte, 256)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(len(buf))
		b := buf[:n]
		rng.Fill(b)
		if got, want := crc10(b), crc10Bitwise(0, b); got != want {
			t.Fatalf("crc10(%d bytes) = %#x, bitwise reference %#x", n, got, want)
		}
		if got, want := hec(b[:4:4]), hecBitwise(b[:4:4]); n >= 4 && got != want {
			t.Fatalf("hec = %#x, bitwise reference %#x", got, want)
		}
	}
}

// TestSegmentAppendMatchesSegment proves the scratch-reusing transmit
// path produces bit-identical cells to the allocating public API, and
// that reusing the scratch across datagrams cannot leak bytes of an
// earlier, larger datagram into a later one's padding.
func TestSegmentAppendMatchesSegment(t *testing.T) {
	rng := sim.NewRNG(12)
	var fresh, reuse Segmenter
	fresh.VCI, reuse.VCI = 32, 32
	var scratch []Cell
	for _, size := range []int{4000, 37, 1400, 5, 0, 8000, 1} {
		data := make([]byte, size)
		rng.Fill(data)
		want := fresh.Segment(data)
		scratch = reuse.SegmentAppend(scratch[:0], data)
		if len(want) != len(scratch) {
			t.Fatalf("size %d: %d cells vs %d", size, len(scratch), len(want))
		}
		for i := range want {
			if want[i] != scratch[i] {
				t.Fatalf("size %d: cell %d differs between Segment and SegmentAppend", size, i)
			}
		}
	}
}
