package atm

import (
	"testing"
)

// TestREDNeverDropsBelowMinTh holds the instantaneous queue at zero or
// one cell — the EWMA can never reach MinTh — and requires RED to
// accept every arrival: below the minimum threshold RED is a plain
// FIFO, whatever the lottery RNG says.
func TestREDNeverDropsBelowMinTh(t *testing.T) {
	r := NewRED(4, 12, 0.5, 0.5, 32, 99)
	var c Cell
	for i := 0; i < 10000; i++ {
		if !r.Enqueue(c, 0) {
			t.Fatalf("arrival %d dropped with avg %.3f < MinTh %d", i, r.AvgQueue(), r.MinTh)
		}
		if avg := r.AvgQueue(); avg >= float64(r.MinTh) {
			t.Fatalf("EWMA %.3f crossed MinTh with an empty-ish queue", avg)
		}
		if _, ok := r.Dequeue(); !ok {
			t.Fatal("Dequeue empty after accepted Enqueue")
		}
	}
}

// TestREDAlwaysDropsAtMaxTh backs the queue up until the EWMA crosses
// MaxTh and requires every subsequent arrival to be refused — the
// forced-drop region admits nothing, independent of the lottery.
func TestREDAlwaysDropsAtMaxTh(t *testing.T) {
	// Heavy weight so the EWMA tracks the standing queue quickly.
	r := NewRED(4, 8, 0.02, 0.5, 64, 7)
	var c Cell
	// Never dequeue: the standing queue grows until the average pins.
	for i := 0; i < 200 && r.AvgQueue() < float64(r.MaxTh); i++ {
		r.Enqueue(c, 0)
	}
	if r.AvgQueue() < float64(r.MaxTh) {
		t.Fatalf("EWMA %.3f never reached MaxTh %d under a standing queue", r.AvgQueue(), r.MaxTh)
	}
	for i := 0; i < 1000; i++ {
		if r.Enqueue(c, 0) {
			t.Fatalf("arrival %d accepted with avg %.3f >= MaxTh %d", i, r.AvgQueue(), r.MaxTh)
		}
	}
}

// TestREDHardLimit fills the physical queue while keeping the EWMA
// low (fresh discipline, burst arrival) and requires the hard bound to
// refuse arrivals even though the average would admit them.
func TestREDHardLimit(t *testing.T) {
	r := NewRED(100, 200, 0.02, 0.001, 8, 3)
	var c Cell
	for i := 0; i < 8; i++ {
		if !r.Enqueue(c, 0) {
			t.Fatalf("arrival %d dropped below the physical limit", i)
		}
	}
	if r.Enqueue(c, 0) {
		t.Error("arrival beyond Limit accepted")
	}
	if r.Len() != 8 {
		t.Errorf("Len %d, want 8", r.Len())
	}
}

// TestREDDeterministicLottery drives two identically-seeded REDs and a
// Reset replay through the same arrival pattern and requires identical
// accept/drop decisions: the lottery draws only from the private seeded
// RNG.
func TestREDDeterministicLottery(t *testing.T) {
	pattern := func(r *RED) string {
		var c Cell
		out := make([]byte, 0, 4000)
		for i := 0; i < 4000; i++ {
			if r.Enqueue(c, 0) {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
			// Drain slowly: 3 arrivals per departure keeps the average
			// wandering through the early-drop band.
			if i%3 == 0 {
				r.Dequeue()
			}
		}
		return string(out)
	}
	a := NewRED(4, 16, 0.1, 0.2, 32, 42)
	b := NewRED(4, 16, 0.1, 0.2, 32, 42)
	pa, pb := pattern(a), pattern(b)
	if pa != pb {
		t.Error("identically seeded REDs made different drop decisions")
	}
	a.Reset()
	if got := pattern(a); got != pa {
		t.Error("Reset did not replay the drop lottery")
	}
	diff := NewRED(4, 16, 0.1, 0.2, 32, 43)
	if pattern(diff) == pa {
		t.Error("differently seeded RED reproduced the same decisions — lottery not seed-driven")
	}
}

// TestDRRFairness backlogs two flows with adversarial arrival order —
// every cell of one flow enqueued before any of the other — and
// requires the byte service gap between them to stay within one quantum
// plus one cell for as long as both are backlogged: the deficit
// round-robin guarantee, independent of FIFO arrival order.
func TestDRRFairness(t *testing.T) {
	const perFlow = 120
	d := NewDRR(4*CellSize, 2*perFlow)
	// Tag each cell's payload with its flow so departures attribute
	// themselves (cells are stored by value).
	tagged := func(tag byte) Cell {
		var c Cell
		c.Payload()[0] = tag
		return c
	}
	for i := 0; i < perFlow; i++ {
		if !d.Enqueue(tagged('a'), 100) {
			t.Fatalf("flow 100 arrival %d dropped below the limit", i)
		}
	}
	for i := 0; i < perFlow; i++ {
		if !d.Enqueue(tagged('b'), 200) {
			t.Fatalf("flow 200 arrival %d dropped below the limit", i)
		}
	}
	served := map[byte]int{}
	bound := d.Quantum + CellSize
	for d.Len() > 0 {
		before := d.Len()
		c, ok := d.Dequeue()
		if !ok || d.Len() != before-1 {
			t.Fatal("Dequeue lost track of the backlog")
		}
		served[c.Payload()[0]]++
		if served['a'] < perFlow && served['b'] < perFlow {
			sa, sb := served['a']*CellSize, served['b']*CellSize
			if gap := sa - sb; gap > bound || -gap > bound {
				t.Fatalf("service gap %d bytes exceeds quantum+cell %d (A=%d B=%d)", sa-sb, bound, sa, sb)
			}
		}
	}
	if served['a'] != perFlow || served['b'] != perFlow {
		t.Errorf("served %d/%d cells, want %d each", served['a'], served['b'], perFlow)
	}
}

// TestDRRAggregateLimit checks the aggregate bound drops arrivals once
// the queues hold Limit cells in total.
func TestDRRAggregateLimit(t *testing.T) {
	d := NewDRR(CellSize, 10)
	var c Cell
	for i := 0; i < 10; i++ {
		if !d.Enqueue(c, uint16(i%3)) {
			t.Fatalf("arrival %d dropped below the aggregate limit", i)
		}
	}
	if d.Enqueue(c, 0) {
		t.Error("arrival beyond the aggregate limit accepted")
	}
	d.Dequeue()
	if !d.Enqueue(c, 0) {
		t.Error("arrival refused after a departure freed a slot")
	}
}
