package tcp

// Seq is a TCP sequence number with the modular comparison semantics of
// RFC 793 (the SEQ_LT/SEQ_GEQ macros in BSD).
type Seq uint32

// Lt reports a < b in sequence space.
func (a Seq) Lt(b Seq) bool { return int32(a-b) < 0 }

// Leq reports a <= b in sequence space.
func (a Seq) Leq(b Seq) bool { return int32(a-b) <= 0 }

// Gt reports a > b in sequence space.
func (a Seq) Gt(b Seq) bool { return int32(a-b) > 0 }

// Geq reports a >= b in sequence space.
func (a Seq) Geq(b Seq) bool { return int32(a-b) >= 0 }

// Add advances the sequence number by n bytes.
func (a Seq) Add(n int) Seq { return a + Seq(uint32(n)) }

// Diff returns a-b as a byte count; callers must know a >= b.
func (a Seq) Diff(b Seq) int { return int(int32(a - b)) }

// maxSeq returns the later of two sequence numbers.
func maxSeq(a, b Seq) Seq {
	if a.Geq(b) {
		return a
	}
	return b
}

// minSeq returns the earlier of two sequence numbers.
func minSeq(a, b Seq) Seq {
	if a.Leq(b) {
		return a
	}
	return b
}
