package tcp

import (
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

// input processes one inbound segment for an existing connection. The
// chain m holds the segment data (header already parsed and stripped);
// it may be nil for a pure ACK. It is a frame call: the resumable input
// frame is pushed onto p, so input must be the caller's last action
// before its Step returns.
func (c *Conn) input(p *sim.Proc, th Header, m *mbuf.Mbuf) {
	f := c.inOp
	if f != nil {
		c.inOp = nil
	} else {
		f = &connInputOp{c: c}
	}
	f.pc, f.th, f.m = 0, th, m
	p.Call(f)
}

// connInputOp is the resumable state of one segment's tcp_input
// processing on an established connection: header prediction, then the
// full slow path. Each connection caches one — segments arrive from the
// netisr one at a time.
type connInputOp struct {
	c     *Conn
	pc    int
	th    Header // mutated by duplicate-data trimming
	m     *mbuf.Mbuf
	dlen  int
	saved Seq // snd_nxt snapshot across the fast-retransmit output
}

func (f *connInputOp) Step(p *sim.Proc) {
	c := f.c
	k := c.K
	for {
		switch f.pc {
		case 0: // header prediction (§3), then slow-path dispatch
			th := f.th
			f.dlen = mbuf.ChainLen(f.m)

			// BSD 4.4 alpha precomputes the expected next header and takes
			// a fast path when the incoming segment matches: ESTABLISHED,
			// no unusual flags, in-sequence, window unchanged, and not
			// retransmitting. Within that, exactly two cases exist — the
			// two common cases of *unidirectional* transfer:
			//
			//   (a) a pure ACK that acknowledges new data (the sender's
			//       side);
			//   (b) a pure in-sequence data segment acknowledging nothing
			//       new (the receiver's side).
			//
			// An RPC-style exchange delivers data *with* a piggybacked ACK
			// of new data, which fits neither case — the paper's central
			// observation about why header prediction does not help
			// request-response traffic.
			if c.S.PredictionEnabled && c.state == StateEstablished &&
				th.Flags&(FlagSYN|FlagFIN|FlagRST|FlagURG) == 0 &&
				th.Flags&FlagACK != 0 &&
				th.Seq == c.rcvNxt &&
				int(th.Win) == c.sndWnd &&
				c.sndNxt == c.sndMax {

				if f.dlen == 0 && th.Ack.Gt(c.sndUna) && th.Ack.Leq(c.sndMax) {
					// Case (a): pure ACK for outstanding data.
					f.pc = 1
					if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast) {
						return
					}
					continue
				}
				if f.dlen > 0 && th.Ack == c.sndUna && len(c.reass) == 0 &&
					f.dlen <= c.so.Rcv.Space() {
					// Case (b): pure in-sequence data, nothing new acked.
					f.pc = 2
					if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputFast) {
						return
					}
					continue
				}
			}
			// Slow path: the full tcp_input processing.
			f.pc = 3
			if !k.Use(p, trace.LayerTCPSegmentRx, k.Cost.TCPInputSlow) {
				return
			}

		case 1: // fast path (a): pure ACK for outstanding data
			c.S.Stats.FastPathAck++
			c.processAck(f.th.Ack)
			c.so.SndWakeup()
			if c.so.Snd.Len() > c.sndNxt.Diff(c.sndUna) {
				f.pc = 7
				c.output(p)
				return
			}
			f.pc = 7

		case 2: // fast path (b): pure in-sequence data
			c.S.Stats.FastPathData++
			c.rcvNxt = c.rcvNxt.Add(f.dlen)
			c.so.Rcv.Append(f.m)
			f.m = nil
			c.so.RcvWakeup()
			// BSD's receive-side ACK strategy: delay the first ACK, force
			// one on every second unacknowledged segment.
			if c.flagDelAck {
				c.flagDelAck = false
				c.flagAckNow = true
				f.pc = 7
				c.output(p)
				return
			}
			c.flagDelAck = true
			c.scheduleDelack()
			f.pc = 7

		case 3: // slow path entry
			c.S.Stats.SlowPath++
			f.pc = 4

		case 4:
			if f.slowStep(p) {
				return
			}

		case 5: // resume after the fast-retransmit output
			if f.saved.Gt(c.sndNxt) {
				c.sndNxt = f.saved
			}
			// Window update from the most recent segment.
			c.sndWnd = int(f.th.Win)
			f.pc = 6

		case 6:
			f.finishSlow(p)
			return

		case 7: // finish: recycle the frame
			f.m = nil
			if c.inOp == nil {
				c.inOp = f
			}
			p.Return()
			return
		}
	}
}

// processAck advances the send window for an acceptable new ACK.
func (c *Conn) processAck(ack Seq) {
	acked := ack.Diff(c.sndUna)
	if acked <= 0 {
		return
	}
	// Congestion window growth: slow start below ssthresh, linear
	// (per-ACK mss*mss/cwnd) above.
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss
	} else {
		c.cwnd += c.mss * c.mss / c.cwnd
		if c.cwnd > 65535 {
			c.cwnd = 65535
		}
	}
	// RTT sample if the timed sequence number is covered (Karn's rule
	// is handled by rtTiming being cleared on retransmission).
	if c.rtTiming && ack.Gt(c.rtSeq) {
		c.rttUpdate(c.K.Now() - c.rtStart)
		c.rtTiming = false
	}
	// Release acknowledged bytes (the FIN and SYN occupy sequence space
	// but no buffer bytes).
	drop := acked
	if drop > c.so.Snd.Len() {
		drop = c.so.Snd.Len()
	}
	if drop > 0 {
		c.so.Snd.Drop(drop)
	}
	c.sndUna = ack
	if c.sndNxt.Lt(c.sndUna) {
		c.sndNxt = c.sndUna
	}
	c.rexmtShift = 0
	if c.sndUna == c.sndMax {
		c.clearRexmt()
	} else {
		c.setRexmt()
	}
}

// slowStep is the front half of the full state-machine processing for
// segments the fast path rejected: RST, connection-state handling,
// duplicate-data trimming, and ACK processing. It reports whether the
// frame's Step must return (because a frame was pushed or the processing
// terminated with one in tail position); otherwise it has set f.pc for
// the driving loop to continue.
func (f *connInputOp) slowStep(p *sim.Proc) bool {
	c := f.c
	k := c.K
	th := &f.th

	if th.Flags&FlagRST != 0 {
		k.Pool.Free(f.m)
		f.m = nil
		c.drop(ErrReset)
		f.pc = 7
		return false
	}

	switch c.state {
	case StateSynSent:
		k.Pool.Free(f.m)
		f.m = nil
		if th.Flags&(FlagSYN|FlagACK) != FlagSYN|FlagACK ||
			!th.Ack.Gt(c.iss) || !th.Ack.Leq(c.sndMax) {
			f.pc = 7
			return false
		}
		c.irs = th.Seq
		c.rcvNxt = th.Seq.Add(1)
		if th.MSS != 0 && int(th.MSS) < c.mss {
			c.mss = int(th.MSS)
		}
		if th.AltCksum == AltCksumNone && c.wantCksumOff {
			c.cksumOff = true
		}
		c.cwnd = c.mss
		c.sndWnd = int(th.Win)
		c.processAck(th.Ack)
		c.state = StateEstablished
		c.flagAckNow = true
		c.so.SetConnected()
		f.pc = 7
		c.output(p)
		return true
	case StateClosed, StateListen:
		k.Pool.Free(f.m)
		f.m = nil
		f.pc = 7
		return false
	}

	// Trim duplicate data at the front (retransmissions overlapping
	// what we already have).
	if th.Seq.Lt(c.rcvNxt) {
		todrop := c.rcvNxt.Diff(th.Seq)
		if th.Flags&FlagSYN != 0 {
			th.Flags &^= FlagSYN
			th.Seq = th.Seq.Add(1)
			todrop--
		}
		if todrop >= f.dlen {
			// Entirely duplicate: ACK it and drop the data, but
			// still process the ACK field below.
			c.S.Stats.DupSegs++
			c.flagAckNow = true
			k.Pool.Free(f.m)
			f.m, f.dlen = nil, 0
			th.Flags &^= FlagFIN
			th.Seq = c.rcvNxt
		} else {
			f.m = k.Pool.Drop(f.m, todrop)
			th.Seq = th.Seq.Add(todrop)
			f.dlen -= todrop
		}
	}

	// ACK processing.
	if th.Flags&FlagACK != 0 {
		if c.state == StateSynRcvd {
			if th.Ack.Gt(c.iss) && th.Ack.Leq(c.sndMax) {
				c.state = StateEstablished
				c.so.SetConnected()
				if c.listener != nil {
					c.listener.backlog = append(c.listener.backlog, c)
					c.listener.wq.WakeAll()
				}
			}
		}
		switch {
		case th.Ack == c.sndUna && f.dlen == 0 && c.sndUna != c.sndMax &&
			int(th.Win) == c.sndWnd:
			// Duplicate ACK while data is outstanding: after three,
			// assume the segment at snd_una was lost and retransmit it
			// without waiting for the timer (BSD 4.4 fast retransmit).
			c.dupAcks++
			if c.dupAcks == 3 {
				flight := c.sndMax.Diff(c.sndUna)
				half := min2(flight, c.sndWnd) / 2
				if half < 2*c.mss {
					half = 2 * c.mss
				}
				c.ssthresh = half
				c.cwnd = c.mss
				f.saved = c.sndNxt
				c.sndNxt = c.sndUna
				c.rtTiming = false
				c.flagAckNow = true
				c.S.Stats.FastRetransmits++
				// Resume at state 5: restore snd_nxt past the
				// retransmission, then fall into data processing.
				f.pc = 5
				c.output(p)
				return true
			}
		case th.Ack.Gt(c.sndUna) && th.Ack.Leq(c.sndMax):
			c.dupAcks = 0
			finWasOutstanding := c.finSent && c.sndMax == th.Ack
			c.processAck(th.Ack)
			c.so.SndWakeup()
			if finWasOutstanding && c.sndUna == c.sndMax {
				switch c.state {
				case StateFinWait1:
					c.state = StateFinWait2
				case StateClosing:
					c.enterTimeWait()
				case StateLastAck:
					c.drop(nil)
					k.Pool.Free(f.m)
					f.m = nil
					f.pc = 7
					return false
				}
			}
		}
		// Window update from the most recent segment.
		c.sndWnd = int(th.Win)
	}
	f.pc = 6
	return false
}

// finishSlow is the back half of the slow path: data processing, FIN
// processing, and the final send decision. It always leaves the frame at
// the finish state, pushing the output frame in tail position when an
// ACK or data transmission is due.
func (f *connInputOp) finishSlow(p *sim.Proc) {
	c := f.c
	k := c.K
	th := &f.th

	// Data processing.
	if f.dlen > 0 {
		switch c.state {
		case StateEstablished, StateFinWait1, StateFinWait2:
			if th.Seq == c.rcvNxt && len(c.reass) == 0 {
				c.rcvNxt = c.rcvNxt.Add(f.dlen)
				c.so.Rcv.Append(f.m)
				f.m = nil
				c.so.RcvWakeup()
				if c.flagDelAck {
					c.flagDelAck = false
					c.flagAckNow = true
				} else {
					c.flagDelAck = true
					c.scheduleDelack()
				}
			} else {
				// Out of order: queue for reassembly, ACK now to
				// trigger the peer's recovery.
				c.S.Stats.OutOfOrderSegs++
				c.insertReass(th.Seq, f.m)
				f.m = nil
				c.pullReass()
				c.flagAckNow = true
			}
		default:
			k.Pool.Free(f.m)
			f.m = nil
		}
	} else if f.m != nil {
		k.Pool.Free(f.m)
		f.m = nil
	}

	// FIN processing (only once all data up to the FIN has arrived).
	if th.Flags&FlagFIN != 0 && th.Seq.Add(f.dlen) == c.rcvNxt && len(c.reass) == 0 {
		c.rcvNxt = c.rcvNxt.Add(1)
		c.flagAckNow = true
		c.so.SetEof()
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait1:
			// Our FIN is unacknowledged: simultaneous close.
			c.state = StateClosing
		case StateFinWait2:
			c.enterTimeWait()
		}
	}

	f.pc = 7
	if c.flagAckNow || c.flagDelAck {
		// flagDelAck alone waits for the fast timer; AckNow sends.
		if c.flagAckNow {
			c.output(p)
		}
	} else {
		c.output(p)
	}
}

// enterTimeWait moves the connection into TIME_WAIT and schedules the
// 2MSL release.
func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.flagAckNow = true
	c.clearRexmt()
	c.K.Env.After(2*msl, "tcp.2msl", func() {
		if c.state == StateTimeWait {
			c.S.dispatch(func(p *sim.Proc) {
				if c.state == StateTimeWait {
					c.drop(nil)
				}
			})
		}
	})
}

// insertReass adds an out-of-order segment to the reassembly queue,
// keeping it sorted and non-overlapping.
func (c *Conn) insertReass(seq Seq, m *mbuf.Mbuf) {
	dlen := mbuf.ChainLen(m)
	// Discard anything that duplicates queued data wholesale; partial
	// overlaps trim the incoming segment.
	for _, r := range c.reass {
		rl := mbuf.ChainLen(r.m)
		if seq.Geq(r.seq) && seq.Add(dlen).Leq(r.seq.Add(rl)) {
			c.K.Pool.Free(m)
			return
		}
	}
	// Trim overlap with rcv_nxt already handled by caller. Insert in
	// sequence order.
	idx := len(c.reass)
	for i, r := range c.reass {
		if seq.Lt(r.seq) {
			idx = i
			break
		}
	}
	c.reass = append(c.reass, reassSeg{})
	copy(c.reass[idx+1:], c.reass[idx:])
	c.reass[idx] = reassSeg{seq: seq, m: m}
}

// pullReass appends any now-contiguous queued segments to the receive
// buffer.
func (c *Conn) pullReass() {
	woke := false
	for len(c.reass) > 0 {
		r := c.reass[0]
		rl := mbuf.ChainLen(r.m)
		if r.seq.Gt(c.rcvNxt) {
			break
		}
		// Trim any duplicated prefix.
		if r.seq.Lt(c.rcvNxt) {
			over := c.rcvNxt.Diff(r.seq)
			if over >= rl {
				c.K.Pool.Free(r.m)
				c.reass = c.reass[1:]
				continue
			}
			r.m = c.K.Pool.Drop(r.m, over)
			rl -= over
		}
		c.rcvNxt = c.rcvNxt.Add(rl)
		c.so.Rcv.Append(r.m)
		woke = true
		c.reass = c.reass[1:]
	}
	if woke {
		c.so.RcvWakeup()
	}
}
