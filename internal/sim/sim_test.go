package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", int64(Microsecond))
	}
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", int64(Second))
	}
	if got := Time(1500).Micros(); got != 1.5 {
		t.Fatalf("Micros = %v, want 1.5", got)
	}
	if got := Micros(2.5); got != 2500 {
		t.Fatalf("Micros(2.5) = %v, want 2500ns", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Fatalf("Millis = %v, want 2", got)
	}
	if s := (3 * Microsecond).String(); s != "3.0µs" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.At(30, "c", func() { order = append(order, 3) })
	e.At(10, "a", func() { order = append(order, 1) })
	e.At(20, "b", func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, "tie", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEnv()
	e.At(100, "x", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	ran := 0
	e.At(10, "a", func() { ran++ })
	e.At(20, "b", func() { ran++ })
	e.At(30, "c", func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	e.RunUntil(25)
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEnv()
	var hits []Time
	e.At(10, "outer", func() {
		e.After(5, "inner", func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 1 || hits[0] != 15 {
		t.Fatalf("hits = %v, want [15]", hits)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var marks []Time
	e.Spawn("sleeper", Steps(
		func(p *Proc) { marks = append(marks, e.Now()); p.Sleep(100) },
		func(p *Proc) { marks = append(marks, e.Now()); p.Sleep(50) },
		func(p *Proc) { marks = append(marks, e.Now()) },
	))
	e.Run()
	want := []Time{0, 100, 150}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcSleepUntilPastIsNoop(t *testing.T) {
	e := NewEnv()
	done := false
	e.Spawn("p", Steps(
		func(p *Proc) { p.Sleep(10) },
		func(p *Proc) {
			if !p.SleepUntil(5) { // in the past: completes inline
				t.Error("SleepUntil into the past parked")
			}
			done = true
		},
	))
	e.Run()
	if !done {
		t.Fatal("proc did not finish")
	}
}

func TestSleepFastPathInline(t *testing.T) {
	// With no event scheduled before the target time, a Sleep is an
	// ordinary function call: the clock advances inline, nothing is
	// pushed onto the event queue, and the frame keeps running.
	e := NewEnv()
	var trace []string
	e.Spawn("p", Steps(func(p *Proc) {
		if !p.Sleep(100) {
			t.Error("uncontended Sleep parked")
		}
		trace = append(trace, "after-sleep")
		if e.Pending() != 0 {
			t.Errorf("fast-path Sleep left %d events pending", e.Pending())
		}
		if e.Now() != 100 {
			t.Errorf("Now = %v, want 100", e.Now())
		}
	}))
	e.Run()
	if len(trace) != 1 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestSleepParksWhenEventIntervenes(t *testing.T) {
	// An event queued inside the sleep interval — or exactly at its end —
	// forces the slow path: the earlier-scheduled event must run first.
	e := NewEnv()
	var order []string
	e.At(50, "mid", func() { order = append(order, "mid") })
	e.Spawn("p", Steps(
		func(p *Proc) {
			if p.Sleep(100) {
				t.Error("contended Sleep did not park")
			}
		},
		func(p *Proc) { order = append(order, "woke") },
	))
	e.Run()
	if len(order) != 2 || order[0] != "mid" || order[1] != "woke" {
		t.Fatalf("order = %v, want [mid woke]", order)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", Steps(
		func(p *Proc) { order = append(order, "a0"); p.Sleep(10) },
		func(p *Proc) { order = append(order, "a10"); p.Sleep(20) },
		func(p *Proc) { order = append(order, "a30") },
	))
	e.Spawn("b", Steps(
		func(p *Proc) { order = append(order, "b0"); p.Sleep(15) },
		func(p *Proc) { order = append(order, "b15") },
	))
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcCallStack(t *testing.T) {
	// A Call pushes the callee; Return pops back into the caller, which
	// resumes at its recorded state — all within one event when nothing
	// parks, and across parks when the callee sleeps.
	e := NewEnv()
	var order []string
	callee := Steps(
		func(p *Proc) { order = append(order, "callee0"); p.Sleep(10) },
		func(p *Proc) { order = append(order, "callee10") },
	)
	e.Spawn("caller", Steps(
		func(p *Proc) { order = append(order, "caller0"); p.Call(callee) },
		func(p *Proc) {
			if e.Now() != 10 {
				t.Errorf("resumed caller at %d, want 10", int64(e.Now()))
			}
			order = append(order, "back")
		},
	))
	e.Run()
	want := []string{"caller0", "callee0", "callee10", "back"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOnWakeHookRunsBeforeResume(t *testing.T) {
	// The one-shot wake hook runs before the frame stack re-enters —
	// the mechanism kern.SleepOn uses to charge the scheduler's wakeup
	// path on the woken process's own clock.
	e := NewEnv()
	wq := e.NewWaitQueue("wq")
	var order []string
	e.Spawn("sleeper", Steps(
		func(p *Proc) {
			wq.Wait(p)
			p.OnWake(func(p *Proc) bool {
				order = append(order, "hook")
				return true
			})
		},
		func(p *Proc) { order = append(order, "resumed") },
	))
	e.Spawn("waker", Steps(
		func(p *Proc) { p.Sleep(5) },
		func(p *Proc) { wq.Wake() },
	))
	e.Run()
	if len(order) != 2 || order[0] != "hook" || order[1] != "resumed" {
		t.Fatalf("order = %v, want [hook resumed]", order)
	}
}

func TestWaitQueue(t *testing.T) {
	e := NewEnv()
	wq := e.NewWaitQueue("test")
	var woken []string
	e.Spawn("w1", Steps(
		func(p *Proc) { wq.Wait(p) },
		func(p *Proc) { woken = append(woken, "w1@"+e.Now().String()) },
	))
	e.Spawn("w2", Steps(
		func(p *Proc) { wq.Wait(p) },
		func(p *Proc) { woken = append(woken, "w2@"+e.Now().String()) },
	))
	e.Spawn("waker", Steps(
		func(p *Proc) { p.Sleep(100 * Microsecond) },
		func(p *Proc) {
			if !wq.Wake() {
				t.Error("Wake found nobody")
			}
			p.Sleep(100 * Microsecond)
		},
		func(p *Proc) { wq.WakeAll() },
	))
	e.Run()
	if len(woken) != 2 {
		t.Fatalf("woken = %v", woken)
	}
	if woken[0] != "w1@100.0µs" || woken[1] != "w2@200.0µs" {
		t.Fatalf("woken = %v", woken)
	}
}

func TestWaitQueueWakeEmpty(t *testing.T) {
	e := NewEnv()
	wq := e.NewWaitQueue("empty")
	if wq.Wake() {
		t.Fatal("Wake on empty queue returned true")
	}
	wq.WakeAll() // must not panic or loop
	if wq.Len() != 0 {
		t.Fatalf("Len = %d", wq.Len())
	}
}

func TestWaitQueueWakeAt(t *testing.T) {
	e := NewEnv()
	wq := e.NewWaitQueue("at")
	var at Time = -1
	e.Spawn("w", Steps(
		func(p *Proc) { wq.Wait(p) },
		func(p *Proc) { at = e.Now() },
	))
	e.Spawn("k", Steps(
		func(p *Proc) { p.Sleep(10) },
		func(p *Proc) { wq.WakeAt(500) },
	))
	e.Run()
	if at != 500 {
		t.Fatalf("woke at %v, want 500", at)
	}
}

func TestProcDone(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("d", Steps(func(p *Proc) { p.Sleep(5) }))
	if p.Done() {
		t.Fatal("Done before running")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("not Done after running")
	}
	if p.Name() != "d" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		var ts []Time
		for i := 0; i < 5; i++ {
			e.Spawn("p", LoopN(4, func(p *Proc, j int) {
				if j > 0 {
					ts = append(ts, e.Now())
				}
				if j < 3 {
					p.Sleep(Time(e.RNG().Intn(100) + 1))
				}
			}))
		}
		e.Run()
		return ts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zeros")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFill(t *testing.T) {
	r := NewRNG(11)
	b := make([]byte, 37)
	r.Fill(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero > 10 {
		t.Fatalf("suspiciously many zero bytes: %d of %d", zero, len(b))
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(13)
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

// stressFrame is TestManyProcsStress's per-process body: ten sleeps with
// a monotonic-clock check, an optional barrier wait, then a finish mark.
type stressFrame struct {
	t        *testing.T
	e        *Env
	wq       *WaitQueue
	i        int
	finished *int
	lastSeen *Time

	pc, j int
}

func (f *stressFrame) Step(p *Proc) {
	for {
		switch f.pc {
		case 0: // sleep loop
			if f.j >= 10 {
				f.pc = 1
				continue
			}
			if f.e.Now() < *f.lastSeen {
				f.t.Error("clock went backwards")
			}
			*f.lastSeen = f.e.Now()
			d := Time(1 + (f.i*7+f.j*13)%50)
			f.j++
			if !p.Sleep(d) {
				return
			}
		case 1: // every tenth proc blocks on the barrier
			f.pc = 2
			if f.i%10 == 0 {
				f.wq.Wait(p)
				return
			}
		case 2:
			*f.finished++
			p.Return()
			return
		}
	}
}

func TestManyProcsStress(t *testing.T) {
	// 100 processes interleaving sleeps and wait queues: all must finish
	// and the clock must advance monotonically through every resumption.
	e := NewEnv()
	wq := e.NewWaitQueue("barrier")
	finished := 0
	var lastSeen Time
	for i := 0; i < 100; i++ {
		e.Spawn("p", &stressFrame{t: t, e: e, wq: wq, i: i,
			finished: &finished, lastSeen: &lastSeen})
	}
	e.Spawn("waker", Steps(
		func(p *Proc) {
			p.Call(While(
				func() bool { return finished < 90 },
				func(p *Proc) { p.Sleep(100) },
			))
		},
		func(p *Proc) { wq.WakeAll() },
	))
	e.Run()
	if finished != 100 {
		t.Fatalf("finished = %d, want 100", finished)
	}
}

func TestEventHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv()
		var fired []Time
		for _, d := range delays {
			e.After(Time(d), "x", func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
