package ether

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/ip"
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	addrA = [6]byte{2, 0, 0, 0, 0, 1}
	addrB = [6]byte{2, 0, 0, 0, 0, 2}
)

func TestEncapsulateDecapsulate(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(n uint16) bool {
		payload := make([]byte, int(n)%MTU)
		rng.Fill(payload)
		fr := Encapsulate(addrB, addrA, EtherTypeIPv4, payload)
		got, et, ok := Decapsulate(fr)
		if !ok || et != EtherTypeIPv4 {
			return false
		}
		// Short payloads come back padded to the minimum.
		want := payload
		if len(want) < MinPayload {
			padded := make([]byte, MinPayload)
			copy(padded, want)
			want = padded
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	fr := Encapsulate(addrB, addrA, EtherTypeIPv4, []byte("hello ethernet"))
	for i := range fr {
		fr[i] ^= 0x01
		if _, _, ok := Decapsulate(fr); ok {
			t.Fatalf("FCS missed corruption at byte %d", i)
		}
		fr[i] ^= 0x01
	}
	if _, _, ok := Decapsulate(fr); !ok {
		t.Fatal("pristine frame rejected")
	}
}

func TestDecapsulateShortFrame(t *testing.T) {
	if _, _, ok := Decapsulate(make(Frame, 10)); ok {
		t.Fatal("runt frame accepted")
	}
}

func TestMinimumFramePadding(t *testing.T) {
	fr := Encapsulate(addrB, addrA, EtherTypeIPv4, []byte{1})
	if len(fr) != HeaderLen+MinPayload+FCSLen {
		t.Fatalf("frame length %d, want minimum %d", len(fr), HeaderLen+MinPayload+FCSLen)
	}
}

type sink struct{ got [][]byte }

func (s *sink) Input(p *sim.Proc, h ip.Header, m *mbuf.Mbuf) {
	s.got = append(s.got, mbuf.Linearize(m))
}

func buildPair(t *testing.T) (*sim.Env, *kern.Kernel, *kern.Kernel, *ip.Stack, *ip.Stack, *Adapter, *Adapter) {
	t.Helper()
	env := sim.NewEnv()
	model := cost.DECstation5000()
	ka := kern.New(env, model, "a")
	kb := kern.New(env, model, "b")
	ipa := ip.NewStack(ka, 1)
	ipb := ip.NewStack(kb, 2)
	aa := NewAdapter(ka, addrA)
	ab := NewAdapter(kb, addrB)
	Connect(aa, ab)
	NewDriver(ka, aa, ipa)
	NewDriver(kb, ab, ipb)
	return env, ka, kb, ipa, ipb, aa, ab
}

func TestDriverEndToEnd(t *testing.T) {
	env, ka, _, ipa, ipb, _, _ := buildPair(t)
	s := &sink{}
	ipb.Register(99, s)
	payload := make([]byte, 1200)
	env.RNG().Fill(payload)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.AllocCluster()
		m.Append(payload)
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(s.got) != 1 || !bytes.Equal(s.got[0], payload) {
		t.Fatal("payload corrupted or lost")
	}
}

func TestDriverStripsPadding(t *testing.T) {
	// A 5-byte datagram rides a padded minimum frame; IP must trim the
	// padding using the header's total length.
	env, ka, _, ipa, ipb, _, _ := buildPair(t)
	s := &sink{}
	ipb.Register(99, s)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append([]byte{9, 8, 7, 6, 5})
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(s.got) != 1 {
		t.Fatal("datagram lost")
	}
	if !bytes.Equal(s.got[0], []byte{9, 8, 7, 6, 5}) {
		t.Fatalf("padding not stripped: got %d bytes", len(s.got[0]))
	}
}

func TestWireSlowerThanATM(t *testing.T) {
	// 1400 bytes at 10 Mb/s must occupy the wire for over a millisecond,
	// the bandwidth gap Table 1 attributes the large-size difference to.
	env, ka, _, ipa, ipb, aa, _ := buildPair(t)
	ipb.Register(99, &sink{})
	start := sim.Time(0)
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.AllocCluster()
		m.Append(make([]byte, 1400))
		start = env.Now()
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if aa.FramesSent != 1 {
		t.Fatal("frame not sent")
	}
	elapsed := env.Now() - start
	if elapsed < 1100*sim.Microsecond {
		t.Fatalf("1400B took %v end to end; 10 Mb/s wire should dominate", elapsed)
	}
}

func TestFrameLossDrops(t *testing.T) {
	env, ka, _, ipa, ipb, _, ab := buildPair(t)
	s := &sink{}
	ipb.Register(99, s)
	ab.LossRate = 1.0 // drop everything
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 50))
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if len(s.got) != 0 {
		t.Fatal("frame delivered despite 100% loss")
	}
}

func TestEtherChargesLayer(t *testing.T) {
	env, ka, kb, ipa, ipb, _, _ := buildPair(t)
	ka.Trace.Enable()
	kb.Trace.Enable()
	ipb.Register(99, &sink{})
	env.Spawn("tx", sim.Steps(func(p *sim.Proc) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 80))
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	var tx, rx sim.Time
	for _, s := range ka.Trace.Spans() {
		if s.Layer == trace.LayerEtherTx {
			tx += s.Duration()
		}
	}
	for _, s := range kb.Trace.Spans() {
		if s.Layer == trace.LayerEtherRx {
			rx += s.Duration()
		}
	}
	if tx == 0 || rx == 0 {
		t.Fatal("Ether layers uncharged")
	}
	if rx <= tx {
		t.Fatalf("LANCE receive (%v) should cost more than transmit (%v)", rx, tx)
	}
}

func TestIFGSerializesBackToBackFrames(t *testing.T) {
	env, ka, _, ipa, ipb, aa, _ := buildPair(t)
	s := &sink{}
	ipb.Register(99, s)
	env.Spawn("tx", sim.LoopN(3, func(p *sim.Proc, i int) {
		m := ka.Pool.Alloc()
		m.Append(make([]byte, 60))
		ipa.Output(p, 2, 99, m)
	}))
	env.Run()
	if aa.FramesSent != 3 || len(s.got) != 3 {
		t.Fatalf("sent %d delivered %d", aa.FramesSent, len(s.got))
	}
}

// TestFCSMatchesBitwiseReference pins the stdlib CRC-32 the frame FCS
// now uses to the bit-at-a-time reference it replaced.
func TestFCSMatchesBitwiseReference(t *testing.T) {
	rng := sim.NewRNG(13)
	for _, n := range []int{1, 14, 64, 1500} {
		b := make([]byte, n)
		rng.Fill(b)
		if got, want := fcs(b), fcsBitwise(b); got != want {
			t.Fatalf("fcs(%d bytes) = %#x, bitwise reference %#x", n, got, want)
		}
	}
}
