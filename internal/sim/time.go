// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, coroutine-style simulated processes,
// wait queues, and a seedable random number generator.
//
// The engine is single-threaded in the logical sense: although simulated
// processes run on goroutines, exactly one of them executes at a time and
// control is handed off synchronously, so every run with the same seed and
// the same program produces the same event ordering and the same virtual
// timestamps. This determinism is what lets the latency experiments in the
// rest of the repository report exact, reproducible microsecond breakdowns.
//
// # The event queue
//
// The queue is engineered for wall-clock speed, because every CPU charge,
// timer, cell transmission, and process wakeup in the testbed passes
// through it (see docs/PERFORMANCE.md). Events are stored BY VALUE in a
// 4-ary min-heap (env.go): scheduling appends into the heap's backing
// slice and popping moves values within it, so the steady-state event
// loop performs no per-event allocation and no interface boxing, and the
// slice's reusable storage is the event free-list. Processes additionally
// cache their wake-up closure and event name (proc.go), making the
// sleep/wake cycle — the single hottest path in the simulator —
// allocation-free; when no queued event fires before a sleeping
// process's wake time, SleepUntil advances the clock in place instead of
// parking the goroutine at all (two goroutine switches saved per CPU
// charge, with the total order provably unchanged — see the method
// comment). Repeat schedulers can carry one word of context in the
// event itself (AtArg/AfterArg) instead of allocating a closure per
// scheduling, which is how TCP's timers re-arm allocation-free. An
// environment is also reusable: Env.Reset rewinds the clock, sequence
// counter, and RNG while keeping the heap's backing storage and any
// processes parked on wait queues, the foundation of testbed reuse
// (lab.Lab.Reset).
//
// None of this affects simulated time: events fire in exactly the order
// defined by (timestamp, scheduling sequence number), a total order, so
// any correct priority queue produces the identical simulation. That
// contract is what lets the wall-clock overhaul promise byte-identical
// paper tables (enforced by the golden-output tests in cmd/tables,
// cmd/load, and cmd/pkttrace).
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. It is also used for durations. The paper's measurement
// clock had a 40 ns period; 1 ns resolution comfortably exceeds that.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns the time as a floating-point number of microseconds,
// the unit used throughout the paper's tables.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in microseconds, matching the paper's unit.
func (t Time) String() string { return fmt.Sprintf("%.1fµs", t.Micros()) }

// Micros converts a floating-point number of microseconds to a Time.
// It is the inverse of Time.Micros and is used by the cost model, whose
// calibration constants are naturally expressed in microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)
