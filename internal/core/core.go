package core

import (
	"repro/internal/cost"
	"repro/internal/lab"
	"repro/internal/runner"
)

// Options controls how the experiments run. The paper used 40000
// iterations and three repetitions; the simulation is deterministic, so
// far fewer iterations give stable means, but the counts remain
// configurable for fidelity.
type Options struct {
	Iterations int
	Warmup     int
	// Parallel is the sweep worker-pool size: 0 uses GOMAXPROCS, 1
	// forces serial execution. Every trial is an independent simulation
	// with a position-derived seed, so the results are bit-identical at
	// any worker count.
	Parallel int
	// BaseSeed, when nonzero, derives a deterministic per-trial RNG seed
	// from the trial's grid position (runner.SeedFor). Zero keeps each
	// configuration's own seeding, matching the historical serial output.
	BaseSeed uint64
}

// DefaultOptions returns the iteration counts the experiment suite uses
// by default.
func DefaultOptions() Options { return Options{Iterations: 100, Warmup: 8} }

// normalize applies defaults to zero fields.
func (o Options) normalize() Options {
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	return o
}

// runnerOpts translates experiment options into sweep-engine options.
func (o Options) runnerOpts() runner.Options {
	return runner.Options{Workers: o.Parallel, BaseSeed: o.BaseSeed}
}

// seeded applies a derived trial seed to a configuration (see
// runner.ApplySeed).
func seeded(cfg lab.Config, seed uint64) lab.Config {
	return runner.ApplySeed(cfg, seed)
}

// MeasureRTT runs the echo benchmark under one configuration and returns
// the mean round-trip time in microseconds.
func MeasureRTT(cfg lab.Config, size int, o Options) (float64, error) {
	return MeasureRTTOn(nil, cfg, size, o)
}

// MeasureRTTOn is MeasureRTT on the testbed-reuse path: the lab comes
// from the worker's warm cache (or is built fresh when tb is nil or
// holds no lab of the right shape). Reuse is invisible to the result —
// lab.Reset restores bit-identical initial state.
func MeasureRTTOn(tb *runner.Testbeds, cfg lab.Config, size int, o Options) (float64, error) {
	o = o.normalize()
	l := tb.Lab(cfg, 2)
	res, err := l.RunEcho(size, o.Iterations, o.Warmup)
	if err != nil {
		return 0, err
	}
	return res.MeanRTTMicros(), nil
}

// Sizes is the transfer-size set shared by every round-trip experiment
// (§1.2: 500 bytes and smaller from RPC/TCP traffic studies, plus 1400,
// 4000 and 8000).
var Sizes = []int{4, 20, 80, 200, 500, 1400, 4000, 8000}

// baseConfig is the paper's baseline system: BSD 4.4 alpha TCP over ATM,
// header prediction enabled, standard checksum.
func baseConfig() lab.Config {
	return lab.Config{Link: lab.LinkATM, Mode: cost.ChecksumStandard}
}
