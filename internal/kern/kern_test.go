package kern

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newKernel() (*sim.Env, *Kernel) {
	env := sim.NewEnv()
	k := New(env, cost.DECstation5000(), "host")
	return env, k
}

func TestUseAdvancesBusyCursor(t *testing.T) {
	env, k := newKernel()
	k.Trace.Enable()
	env.Spawn("p", sim.Steps(func(p *sim.Proc) {
		// With nothing else queued both charges complete inline: the CPU
		// charge is an ordinary function call, no park, no wake event.
		if !k.Use(p, trace.LayerIPTx, 100*sim.Microsecond) {
			t.Error("uncontended charge parked")
		}
		if !k.Use(p, trace.LayerIPTx, 50*sim.Microsecond) {
			t.Error("second charge parked")
		}
	}))
	env.Run()
	spans := k.Trace.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Start != 0 || spans[0].End != 100*sim.Microsecond {
		t.Fatalf("first charge [%v,%v]", spans[0].Start, spans[0].End)
	}
	if spans[1].Start != spans[0].End || spans[1].End != 150*sim.Microsecond {
		t.Fatalf("second charge [%v,%v]", spans[1].Start, spans[1].End)
	}
	if k.BusyUntil() != spans[1].End {
		t.Fatalf("BusyUntil = %v", k.BusyUntil())
	}
}

func TestUseSerializesAcrossProcs(t *testing.T) {
	env, k := newKernel()
	k.Trace.Enable()
	env.Spawn("a", sim.Steps(func(p *sim.Proc) {
		k.Use(p, trace.LayerIPTx, 200*sim.Microsecond)
	}))
	env.Spawn("b", sim.Steps(func(p *sim.Proc) {
		k.Use(p, trace.LayerIPRx, 10*sim.Microsecond)
	}))
	env.Run()
	// b spawned second at t=0: its charge must start when a's ends.
	var endA, startB sim.Time = -1, -1
	for _, s := range k.Trace.Spans() {
		switch s.Layer {
		case trace.LayerIPTx:
			endA = s.End
		case trace.LayerIPRx:
			startB = s.Start
		}
	}
	if startB != endA {
		t.Fatalf("b started at %v, a ended at %v: CPU not serialized", startB, endA)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	env, k := newKernel()
	env.Spawn("p", sim.Steps(func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative charge did not panic")
			}
		}()
		k.Use(p, trace.LayerIPTx, -1)
	}))
	env.Run()
}

func TestSleepOnChargesWakeup(t *testing.T) {
	env, k := newKernel()
	k.Trace.Enable()
	wq := env.NewWaitQueue("w")
	var resumed sim.Time
	env.Spawn("sleeper", sim.Steps(
		func(p *sim.Proc) { k.SleepOn(p, wq) },
		func(p *sim.Proc) { resumed = env.Now() },
	))
	env.Spawn("waker", sim.Steps(
		func(p *sim.Proc) { p.Sleep(1 * sim.Millisecond) },
		func(p *sim.Proc) { wq.Wake() },
	))
	env.Run()
	want := 1*sim.Millisecond + k.Cost.Wakeup
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
	found := false
	for _, s := range k.Trace.Spans() {
		if s.Layer == trace.LayerWakeup && s.Duration() == k.Cost.Wakeup {
			found = true
		}
	}
	if !found {
		t.Fatal("Wakeup span not recorded")
	}
}

func TestAllocChargeAndFreeChainCost(t *testing.T) {
	// The allocation idiom after the run-to-completion redesign: charge
	// the CPU with Use, then perform the pool operation inline.
	env, k := newKernel()
	k.Trace.Enable()
	env.Spawn("p", sim.Steps(func(p *sim.Proc) {
		k.Use(p, trace.LayerUserTx, k.Cost.MbufAlloc)
		m := k.Pool.Alloc()
		k.Use(p, trace.LayerUserTx, k.Cost.ClusterAlloc)
		c := k.Pool.AllocCluster()
		m.SetNext(c)
		if cst := k.FreeChainCost(m); cst > 0 {
			k.Use(p, trace.LayerMbuf, cst)
		}
		k.Pool.Free(m)
	}))
	env.Run()
	st := k.Pool.Stats
	if st.MbufAllocs != 2 || st.MbufFrees != 2 || st.ClusterAllocs != 1 || st.ClusterFrees != 1 {
		t.Fatalf("stats %+v", st)
	}
	if k.BusyUntil() != k.Cost.MbufAlloc+k.Cost.ClusterAlloc+2*k.Cost.MbufFree {
		t.Fatalf("charge total %v", k.BusyUntil())
	}
}

func TestFreeChainCostNilIsZero(t *testing.T) {
	_, k := newKernel()
	if c := k.FreeChainCost(nil); c != 0 {
		t.Fatalf("FreeChainCost(nil) = %v, want 0", c)
	}
}

func TestMbufAllocFreeCostMatchesPaper(t *testing.T) {
	// §2.2.1: "the measured time to allocate and free an mbuf ... is
	// just over 7µs".
	m := cost.DECstation5000()
	got := m.MbufAllocFree().Micros()
	if got < 7.0 || got > 7.5 {
		t.Fatalf("mbuf alloc+free = %.2fµs, paper says just over 7", got)
	}
}
